// Package fsoi's root benchmark harness maps every table and figure of
// the paper's evaluation to a testing.B benchmark. Each benchmark runs a
// scaled-down configuration (exp.BenchOptions) and reports the headline
// metric of its figure through b.ReportMetric, so `go test -bench=.`
// regenerates the whole evaluation in miniature. cmd/experiments runs the
// full-size versions; EXPERIMENTS.md records paper-vs-measured values.
package fsoi

import (
	"fmt"
	"testing"

	"fsoi/internal/core"
	"fsoi/internal/exp"
	"fsoi/internal/system"
	"fsoi/internal/workload"
)

// runExp executes one experiment per benchmark iteration and returns the
// last result for metric reporting.
func runExp(b *testing.B, id string, o exp.Options) exp.Result {
	b.Helper()
	runner, ok := exp.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	var res exp.Result
	for i := 0; i < b.N; i++ {
		res = runner(o)
	}
	return res
}

func BenchmarkTable1LinkBudget(b *testing.B) {
	res := runExp(b, "table1", exp.BenchOptions())
	b.ReportMetric(res.Values["path_loss_db"], "dB-loss")
	b.ReportMetric(res.Values["snr_db"], "dB-SNR")
	b.ReportMetric(res.Values["jitter_ps"], "ps-jitter")
}

func BenchmarkFig3CollisionProbability(b *testing.B) {
	o := exp.BenchOptions()
	res := runExp(b, "fig3", o)
	b.ReportMetric(res.Values["p0.10_r2"], "Pc(p=0.1,R=2)")
}

func BenchmarkFig4BackoffSurface(b *testing.B) {
	o := exp.BenchOptions()
	o.Trials = 2000
	res := runExp(b, "fig4", o)
	b.ReportMetric(res.Values["opt_delay_g1"], "cycles-at-optimum")
	b.ReportMetric(res.Values["opt_b_g1"], "optimal-B")
}

func BenchmarkFig5ReplyLatencyDistribution(b *testing.B) {
	res := runExp(b, "fig5", exp.BenchOptions())
	b.ReportMetric(res.Values["mode_frac"]*100, "%-in-modal-bin")
	b.ReportMetric(res.Values["mean"], "cycles-mean")
}

func BenchmarkFig6Sixteen(b *testing.B) {
	res := runExp(b, "fig6", exp.BenchOptions())
	b.ReportMetric(res.Values["geomean_fsoi"], "speedup-fsoi")
	b.ReportMetric(res.Values["geomean_L0"], "speedup-L0")
	b.ReportMetric(res.Values["geomean_Lr1"], "speedup-Lr1")
	b.ReportMetric(res.Values["geomean_Lr2"], "speedup-Lr2")
}

func BenchmarkFig7SixtyFour(b *testing.B) {
	o := exp.BenchOptions()
	o.Apps = []string{"jacobi", "mp3d"} // 64-node runs are the heaviest
	res := runExp(b, "fig7", o)
	b.ReportMetric(res.Values["geomean_fsoi"], "speedup-fsoi")
	b.ReportMetric(res.Values["geomean_L0"], "speedup-L0")
}

func BenchmarkTable4MemoryBW(b *testing.B) {
	o := exp.BenchOptions()
	o.Apps = []string{"jacobi", "fft"}
	res := runExp(b, "table4", o)
	b.ReportMetric(res.Values["fsoi_16_8.8"], "speedup-8.8GBps")
	b.ReportMetric(res.Values["fsoi_16_52.8"], "speedup-52.8GBps")
}

func BenchmarkFig8Energy(b *testing.B) {
	res := runExp(b, "fig8", exp.BenchOptions())
	b.ReportMetric(res.Values["avg_saving"]*100, "%-energy-saving")
	b.ReportMetric(res.Values["net_ratio"], "x-network-energy-ratio")
}

func BenchmarkFig9AckElision(b *testing.B) {
	res := runExp(b, "fig9", exp.BenchOptions())
	b.ReportMetric(res.Values["traffic_cut"]*100, "%-meta-traffic-cut")
	b.ReportMetric(res.Values["collision_cut"]*100, "%-meta-collision-cut")
}

func BenchmarkFig10DataCollisions(b *testing.B) {
	res := runExp(b, "fig10", exp.BenchOptions())
	b.ReportMetric(res.Values["rate_off"]*100, "%-collisions-base")
	b.ReportMetric(res.Values["rate_on"]*100, "%-collisions-opt")
}

func BenchmarkFig11BandwidthSweep(b *testing.B) {
	o := exp.BenchOptions()
	o.Apps = []string{"jacobi"}
	res := runExp(b, "fig11", o)
	b.ReportMetric(res.Values["fsoi_0.50"], "relperf-fsoi-50%")
	b.ReportMetric(res.Values["mesh_0.50"], "relperf-mesh-50%")
}

func BenchmarkHints(b *testing.B) {
	o := exp.BenchOptions()
	o.Apps = []string{"mp3d"}
	res := runExp(b, "hints", o)
	b.ReportMetric(res.Values["accuracy"]*100, "%-hint-accuracy")
}

func BenchmarkLLSC(b *testing.B) {
	o := exp.BenchOptions()
	res := runExp(b, "llsc", o)
	b.ReportMetric(res.Values["speedup"], "speedup")
}

func BenchmarkCorona(b *testing.B) {
	o := exp.BenchOptions()
	o.Apps = []string{"jacobi"}
	res := runExp(b, "corona", o)
	b.ReportMetric(res.Values["ratio"], "x-vs-corona")
}

func BenchmarkFrontier(b *testing.B) {
	o := exp.BenchOptions()
	o.Apps = []string{"jacobi"}
	res := runExp(b, "frontier", o)
	b.ReportMetric(res.Values["fsoi_vs_corona_16"], "x-vs-token-crossbar")
	b.ReportMetric(res.Values["loss_fsoi_256"], "dB-fsoi-256")
	b.ReportMetric(res.Values["loss_matrix_256"], "dB-matrix-256")
}

// ---------------------------------------------------------------------
// Ablation benchmarks: the §4.3 design choices, each swept around the
// paper's operating point.
// ---------------------------------------------------------------------

// runAblation executes one FSOI run with a mutated config and returns
// its metrics.
func runAblation(b *testing.B, mutate func(*system.Config)) system.Metrics {
	b.Helper()
	app, _ := workload.ByName("mp3d", 0.05)
	var m system.Metrics
	for i := 0; i < b.N; i++ {
		cfg := system.Default(16, system.NetFSOI)
		mutate(&cfg)
		m = system.New(cfg).Run(app)
		if !m.Finished {
			b.Fatal("ablation run did not finish")
		}
	}
	return m
}

// BenchmarkAblationReceivers sweeps receivers per lane (the paper picks
// 2: halving collisions vs 1, diminishing returns beyond).
func BenchmarkAblationReceivers(b *testing.B) {
	for _, r := range []int{1, 2, 3} {
		r := r
		b.Run(fmt.Sprintf("R=%d", r), func(b *testing.B) {
			m := runAblation(b, func(c *system.Config) { c.FSOI.Receivers = r })
			b.ReportMetric(m.FSOI.CollisionRate(core.LaneMeta)*100, "%-meta-collisions")
			b.ReportMetric(float64(m.Cycles), "cycles")
		})
	}
}

// BenchmarkAblationBackoffBase compares the paper's gentle B=1.1 against
// the classic Ethernet doubling.
func BenchmarkAblationBackoffBase(b *testing.B) {
	for _, base := range []float64{1.1, 2.0} {
		base := base
		b.Run(fmt.Sprintf("B=%.1f", base), func(b *testing.B) {
			m := runAblation(b, func(c *system.Config) { c.FSOI.BackoffB = base })
			b.ReportMetric(m.Latency.Resolution.Mean(), "cycles-resolution")
			b.ReportMetric(float64(m.Cycles), "cycles")
		})
	}
}

// BenchmarkAblationLaneSplit sweeps the meta/data VCSEL split around the
// analytically optimal 3/6.
func BenchmarkAblationLaneSplit(b *testing.B) {
	for _, split := range [][2]int{{2, 7}, {3, 6}, {4, 5}} {
		split := split
		b.Run(fmt.Sprintf("meta=%d_data=%d", split[0], split[1]), func(b *testing.B) {
			m := runAblation(b, func(c *system.Config) {
				c.FSOI.MetaVCSELs = split[0]
				c.FSOI.DataVCSELs = split[1]
			})
			b.ReportMetric(m.Latency.MeanTotal(), "cycles-latency")
			b.ReportMetric(float64(m.Cycles), "cycles")
		})
	}
}

// BenchmarkAblationQueueDepth sweeps the outgoing-queue depth, the
// remaining §4.3 sizing choice (Table 3 picks 8 packets per lane).
func BenchmarkAblationQueueDepth(b *testing.B) {
	for _, q := range []int{2, 8, 32} {
		q := q
		b.Run(fmt.Sprintf("q=%d", q), func(b *testing.B) {
			m := runAblation(b, func(c *system.Config) { c.FSOI.OutQueue = q })
			b.ReportMetric(m.Latency.Queuing.Mean(), "cycles-queuing")
			b.ReportMetric(float64(m.Cycles), "cycles")
		})
	}
}

// BenchmarkFaultSweep runs the margin-penalty sweep at bench scale and
// reports the endpoint speedups: the gap between the clean and the
// 3.5 dB point is the measured cost of resilience.
func BenchmarkFaultSweep(b *testing.B) {
	res := runExp(b, "faults", exp.BenchOptions())
	b.ReportMetric(res.Values["speedup_p0.0"], "speedup-clean")
	b.ReportMetric(res.Values["speedup_p3.5"], "speedup-3.5dB")
	b.ReportMetric(res.Values["retrans_p3.5"], "retrans-3.5dB")
}
