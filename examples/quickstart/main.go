// Quickstart: assemble the paper's 16-node CMP twice — once on the
// free-space optical interconnect, once on the electrical mesh baseline —
// run the same workload on both, and compare.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"fsoi/internal/system"
	"fsoi/internal/workload"
)

func main() {
	// Pick a workload. The suite carries sixteen applications calibrated
	// to the paper's evaluation; scale 0.25 runs a quarter-length
	// version in a few seconds.
	app, ok := workload.ByName("ocean", 0.25)
	if !ok {
		panic("unknown application")
	}

	// The mesh baseline: canonical 4-stage virtual-channel routers.
	meshCfg := system.Default(16, system.NetMesh)
	mesh := system.New(meshCfg).Run(app)

	// The FSOI system: dedicated VCSEL lanes, slotted transmission,
	// collision detection with exponential backoff, and the §5
	// confirmation-channel optimizations (all on by default).
	fsoiCfg := system.Default(16, system.NetFSOI)
	fsoi := system.New(fsoiCfg).Run(app)

	fmt.Printf("workload            %s (16 threads)\n\n", app.Name)
	fmt.Printf("mesh run time       %d cycles\n", mesh.Cycles)
	fmt.Printf("FSOI run time       %d cycles\n", fsoi.Cycles)
	fmt.Printf("speedup             %.2fx\n\n", fsoi.Speedup(mesh))

	q, s, n, r := fsoi.Latency.Breakdown()
	fmt.Printf("mesh packet latency %.1f cycles\n", mesh.Latency.MeanTotal())
	fmt.Printf("FSOI packet latency %.1f cycles (queue %.1f + schedule %.1f + network %.1f + collisions %.1f)\n\n",
		fsoi.Latency.MeanTotal(), q, s, n, r)

	fmt.Printf("mesh network energy %.2f mJ\n", mesh.Energy.Network*1e3)
	fmt.Printf("FSOI network energy %.2f mJ (%.0fx less)\n",
		fsoi.Energy.Network*1e3, mesh.Energy.Network/fsoi.Energy.Network)
	fmt.Printf("total energy        %.1f mJ vs %.1f mJ (%.0f%% saving)\n",
		mesh.Energy.Total()*1e3, fsoi.Energy.Total()*1e3,
		(1-fsoi.Energy.Total()/mesh.Energy.Total())*100)
}
