// Coherencetrace watches the Table 2 directory protocol at work: it
// traces every protocol message about one contended cache line through a
// 16-node FSOI system and prints the annotated event log — requests,
// downgrades, invalidations, writebacks, and the race resolutions the
// transient states exist for.
//
//	go run ./examples/coherencetrace
package main

import (
	"fmt"

	"fsoi/internal/cache"
	"fsoi/internal/coherence"
	"fsoi/internal/system"
	"fsoi/internal/workload"
)

func main() {
	// Trace one hot shared line. The workload generator puts shared
	// lines at workload.SharedBase; line SharedBase+1 is homed at the
	// directory slice of node 1.
	target := workload.SharedBase + 1
	coherence.TraceAddr = target

	var events []string
	coherence.TraceFn = func(f string, a ...any) {
		events = append(events, fmt.Sprintf(f, a...))
	}

	app, _ := workload.ByName("mp3d", 0.05) // migratory: lines bounce between owners
	cfg := system.Default(16, system.NetFSOI)
	s := system.New(cfg)
	m := s.Run(app)

	fmt.Printf("ran %s on %d-node FSOI: %d cycles, %d protocol events on line %#x (home: node %d)\n\n",
		app.Name, m.Nodes, m.Cycles, len(events), uint64(target), int(uint64(target)%16))

	limit := 60
	if len(events) < limit {
		limit = len(events)
	}
	for _, e := range events[:limit] {
		fmt.Println(e)
	}
	if len(events) > limit {
		fmt.Printf("... (%d more events)\n", len(events)-limit)
	}

	fmt.Printf("\nfinal directory state for the line: %s\n", s.Directory(int(uint64(target)%16)).EntryState(cache.LineAddr(target)))
}
