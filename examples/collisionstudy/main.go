// Collisionstudy explores the design decisions of §4.3 analytically and
// validates them against the full system simulator: how many receivers
// per node, how to split bandwidth between the meta and data lanes, and
// how to tune the retransmission backoff.
//
//	go run ./examples/collisionstudy
package main

import (
	"fmt"

	"fsoi/internal/analytic"
	"fsoi/internal/core"
	"fsoi/internal/sim"
	"fsoi/internal/stats"
	"fsoi/internal/system"
	"fsoi/internal/workload"
)

func main() {
	rng := sim.NewRNG(7)

	// 1. Receivers per node: collision probability is ~inverse in R,
	// with diminishing returns past 2-3 (the paper picks 2).
	fmt.Println("1. Collision probability per transmitted packet (N=16, p=10%):")
	for r := 1; r <= 4; r++ {
		p := analytic.PacketCollisionProbability(analytic.CollisionParams{N: 16, R: r, P: 0.10})
		fmt.Printf("   R=%d  %.4f\n", r, p)
	}

	// 2. Bandwidth allocation between lanes: the latency model's optimum
	// puts ~28.5% of transmit bandwidth on the meta lane, which at the
	// paper's 9-VCSEL budget means 3 meta + 6 data.
	m := analytic.PaperBandwidthModel()
	meta, data := m.LaneAllocation(9)
	fmt.Printf("\n2. Optimal meta-lane share BM* = %.3f -> %d meta + %d data VCSELs\n",
		m.OptimalMetaShare(), meta, data)

	// 3. Backoff tuning: gentle exponential growth (B=1.1) beats the
	// classic doubling in the common two-collider case.
	fmt.Println("\n3. Mean collision resolution delay (2 colliders, G=1%):")
	for _, b := range []float64{1.05, 1.1, 1.5, 2.0} {
		model := analytic.PaperBackoff(0.01)
		model.B = b
		fmt.Printf("   B=%.2f  %.2f cycles\n", b, model.MeanResolutionDelay(rng.NewStream(fmt.Sprint(b)), 20000, 1))
	}

	// 4. Cross-check against the full system: measured meta-lane
	// transmission probability and collision rate for one application,
	// against the analytic curve at the same p.
	app, _ := workload.ByName("fft", 0.1)
	cfg := system.Default(16, system.NetFSOI)
	met := system.New(cfg).Run(app)
	p := met.FSOI.TransmissionProbability(core.LaneMeta)
	measured := met.FSOI.CollisionRate(core.LaneMeta)
	theory := analytic.PacketCollisionProbability(analytic.CollisionParams{N: 16, R: 2, P: p})
	t := stats.NewTable("source", "p", "collision rate")
	t.AddRow("simulated (fft)", fmt.Sprintf("%.4f", p), fmt.Sprintf("%.4f", measured))
	t.AddRow("analytic model", fmt.Sprintf("%.4f", p), fmt.Sprintf("%.4f", theory))
	fmt.Println("\n4. Model vs full-system simulation (meta lane):")
	fmt.Print(t.String())
}
