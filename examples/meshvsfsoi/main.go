// Meshvsfsoi reproduces a slice of the Figure 6/7 study interactively:
// it runs a handful of applications across all five interconnect
// configurations (mesh, FSOI, L0, Lr1, Lr2) and prints the latency
// breakdowns and speedups, at both 16 and 64 nodes.
//
//	go run ./examples/meshvsfsoi
package main

import (
	"fmt"

	"fsoi/internal/stats"
	"fsoi/internal/system"
	"fsoi/internal/workload"
)

func main() {
	apps := []string{"jacobi", "mp3d", "raytrace"}
	kinds := []system.NetworkKind{system.NetMesh, system.NetFSOI, system.NetL0, system.NetLr1, system.NetLr2}

	for _, nodes := range []int{16, 64} {
		scale := 0.2
		if nodes == 64 {
			scale = 0.1 // keep the demo quick; cmd/experiments runs full size
		}
		fmt.Printf("=== %d nodes ===\n", nodes)
		t := stats.NewTable("app", "network", "cycles", "latency", "queue", "sched", "net", "resolve", "speedup")
		for _, name := range apps {
			app, _ := workload.ByName(name, scale)
			var base system.Metrics
			for _, kind := range kinds {
				cfg := system.Default(nodes, kind)
				m := system.New(cfg).Run(app)
				if kind == system.NetMesh {
					base = m
				}
				q, s, n, r := m.Latency.Breakdown()
				t.AddRow(name, m.Net, fmt.Sprint(m.Cycles),
					fmt.Sprintf("%.1f", m.Latency.MeanTotal()),
					fmt.Sprintf("%.1f", q), fmt.Sprintf("%.1f", s),
					fmt.Sprintf("%.1f", n), fmt.Sprintf("%.1f", r),
					fmt.Sprintf("%.3f", m.Speedup(base)))
			}
		}
		fmt.Print(t.String())
		fmt.Println()
	}
}
