// Command fsoilint runs the repository's determinism-and-invariant
// static-analysis suite (internal/lint) over the module.
//
// Usage:
//
//	fsoilint ./...                 # whole module
//	fsoilint ./internal/core       # one package
//	fsoilint -json ./...           # machine-readable output for CI
//	fsoilint -sarif out.sarif ./...# SARIF 2.1.0 for code-scanning upload
//	fsoilint -j 8 ./...            # parallel package loading/analysis
//	fsoilint -list                 # describe the analyzers
//
// Suppress a finding on one line with a mandatory justification:
//
//	total := a + b //lint:allow floateq comparing against an exact sentinel
//
// Suppressions are budgeted: .lint-budget.json at the module root
// entitles each (analyzer, file) pair to a count and records when it
// was granted. `-budget .lint-budget.json` fails on any growth;
// `-writebudget .lint-budget.json` regenerates the file (preserving
// grant dates) after a reviewed change to the suppression set.
//
// Exit status: 0 clean, 1 findings or budget violations, 2 usage or
// load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"fsoi/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	list := flag.Bool("list", false, "list analyzers and exit")
	sarifPath := flag.String("sarif", "", "also write findings as SARIF 2.1.0 to this file")
	budgetPath := flag.String("budget", "", "check //lint:allow counts against this committed budget file")
	writeBudget := flag.String("writebudget", "", "regenerate this budget file from the current suppressions and exit")
	jobs := flag.Int("j", 1, "worker count for package loading and analysis (order-independent output)")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name(), a.Doc())
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(wd)
	if err != nil {
		fatal(err)
	}
	loader.Jobs = *jobs
	pkgs, err := loader.LoadAll()
	if err != nil {
		fatal(err)
	}

	selected := pkgs[:0]
	for _, p := range pkgs {
		if matchesAny(loader, p, patterns, wd) {
			selected = append(selected, p)
		}
	}
	if len(selected) == 0 {
		fatal(fmt.Errorf("fsoilint: no packages match %v", patterns))
	}

	analyzers := lint.Analyzers()
	findings := lint.RunWorkers(selected, analyzers, *jobs)

	if *sarifPath != "" {
		f, err := os.Create(*sarifPath)
		if err != nil {
			fatal(err)
		}
		if err := lint.WriteSARIF(f, findings, analyzers, loader.Root); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	if *jsonOut {
		if findings == nil {
			findings = []lint.Finding{} // emit [] rather than null for consumers
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
		if len(findings) > 0 {
			fmt.Fprintf(os.Stderr, "fsoilint: %d finding(s)\n", len(findings))
		}
	}

	failed := len(findings) > 0

	if *writeBudget != "" {
		if err := regenerateBudget(*writeBudget, selected, analyzers, loader.Root); err != nil {
			fatal(err)
		}
	} else if *budgetPath != "" {
		ok, err := checkBudget(*budgetPath, selected, analyzers, loader.Root)
		if err != nil {
			fatal(err)
		}
		if !ok {
			failed = true
		}
	}

	if failed {
		os.Exit(1)
	}
}

// checkBudget enforces the suppression ratchet: every //lint:allow in
// the selected packages must fit inside the committed entitlement.
func checkBudget(path string, pkgs []*lint.Package, analyzers []lint.Analyzer, root string) (ok bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return false, fmt.Errorf("fsoilint: reading budget: %w", err)
	}
	budget, err := lint.ParseBudget(data)
	if err != nil {
		return false, err
	}
	sups := lint.Suppressions(pkgs, analyzers)
	violations, notes := lint.CheckBudget(budget, sups, root)
	for _, v := range violations {
		fmt.Fprintf(os.Stderr, "fsoilint: budget: %s\n", v)
	}
	for _, n := range notes {
		fmt.Fprintf(os.Stderr, "fsoilint: budget note: %s\n", n)
	}
	fmt.Fprintf(os.Stderr, "fsoilint: budget: %d suppression(s) across %d budgeted key(s)\n",
		len(sups), len(budget.Entries))
	return len(violations) == 0, nil
}

// regenerateBudget rewrites the budget file from the current
// suppression set, preserving the grant date of keys that survive.
func regenerateBudget(path string, pkgs []*lint.Package, analyzers []lint.Analyzer, root string) error {
	prev := lint.Budget{}
	if data, err := os.ReadFile(path); err == nil {
		if prev, err = lint.ParseBudget(data); err != nil {
			return err
		}
	}
	sups := lint.Suppressions(pkgs, analyzers)
	today := time.Now().UTC().Format("2006-01-02")
	out, err := lint.MarshalBudget(lint.MakeBudget(sups, prev, root, today))
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "fsoilint: wrote %s (%d suppression(s))\n", path, len(sups))
	return nil
}

// matchesAny reports whether package p matches one of the argument
// patterns: "./..." (everything), a "dir/..." subtree, a relative
// directory, or a plain import path.
func matchesAny(l *lint.Loader, p *lint.Package, patterns []string, wd string) bool {
	for _, pat := range patterns {
		if pat == "./..." || pat == "..." {
			return true
		}
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			if under(l, p, rest, wd) || relOf(l, rest, wd) == p.ModuleRel {
				return true
			}
			continue
		}
		if relOf(l, pat, wd) == p.ModuleRel || pat == p.ImportPath {
			return true
		}
	}
	return false
}

// relOf normalizes a pattern to a module-relative path.
func relOf(l *lint.Loader, pat, wd string) string {
	pat = strings.TrimPrefix(pat, "./")
	if strings.HasPrefix(pat, l.ModPath+"/") {
		return strings.TrimPrefix(pat, l.ModPath+"/")
	}
	abs := filepath.Join(wd, filepath.FromSlash(pat))
	rel, err := filepath.Rel(l.Root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return pat
	}
	return filepath.ToSlash(rel)
}

// under reports whether p sits inside the subtree named by pattern
// prefix.
func under(l *lint.Loader, p *lint.Package, prefix, wd string) bool {
	rel := relOf(l, prefix, wd)
	return rel == "." || rel == "" || strings.HasPrefix(p.ModuleRel, rel+"/")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
