// Command fsoilint runs the repository's determinism-and-invariant
// static-analysis suite (internal/lint) over the module.
//
// Usage:
//
//	fsoilint ./...                 # whole module
//	fsoilint ./internal/core       # one package
//	fsoilint -json ./...           # machine-readable output for CI
//	fsoilint -list                 # describe the analyzers
//
// Suppress a finding on one line with a mandatory justification:
//
//	total := a + b //lint:allow floateq comparing against an exact sentinel
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"fsoi/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name(), a.Doc())
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(wd)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fatal(err)
	}

	selected := pkgs[:0]
	for _, p := range pkgs {
		if matchesAny(loader, p, patterns, wd) {
			selected = append(selected, p)
		}
	}
	if len(selected) == 0 {
		fatal(fmt.Errorf("fsoilint: no packages match %v", patterns))
	}

	findings := lint.Run(selected, lint.Analyzers())
	if *jsonOut {
		if findings == nil {
			findings = []lint.Finding{} // emit [] rather than null for consumers
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
		if len(findings) > 0 {
			fmt.Fprintf(os.Stderr, "fsoilint: %d finding(s)\n", len(findings))
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// matchesAny reports whether package p matches one of the argument
// patterns: "./..." (everything), a "dir/..." subtree, a relative
// directory, or a plain import path.
func matchesAny(l *lint.Loader, p *lint.Package, patterns []string, wd string) bool {
	for _, pat := range patterns {
		if pat == "./..." || pat == "..." {
			return true
		}
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			if under(l, p, rest, wd) || relOf(l, rest, wd) == p.ModuleRel {
				return true
			}
			continue
		}
		if relOf(l, pat, wd) == p.ModuleRel || pat == p.ImportPath {
			return true
		}
	}
	return false
}

// relOf normalizes a pattern to a module-relative path.
func relOf(l *lint.Loader, pat, wd string) string {
	pat = strings.TrimPrefix(pat, "./")
	if strings.HasPrefix(pat, l.ModPath+"/") {
		return strings.TrimPrefix(pat, l.ModPath+"/")
	}
	abs := filepath.Join(wd, filepath.FromSlash(pat))
	rel, err := filepath.Rel(l.Root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return pat
	}
	return filepath.ToSlash(rel)
}

// under reports whether p sits inside the subtree named by pattern
// prefix.
func under(l *lint.Loader, p *lint.Package, prefix, wd string) bool {
	rel := relOf(l, prefix, wd)
	return rel == "." || rel == "" || strings.HasPrefix(p.ModuleRel, rel+"/")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
