// Command fsoitrace analyzes packet-lifecycle trace files produced by
// fsoisim -tracefile or experiments -trace: event counts by kind, a
// collision heat-map over src->dst pairs, the retry-count CDF of
// delivered packets, rebuilt latency percentile tables, and drop
// accounting.
//
//	fsoisim -app jacobi -net fsoi -tracefile trace.jsonl
//	fsoitrace trace.jsonl
//	experiments -run fig5 -trace all.jsonl && fsoitrace -top 8 all.jsonl
//
// Input is JSON Lines: one event object per line, plus the {"run":...}
// separator lines experiments -trace writes (counted, otherwise
// ignored) and the {"ev":"truncated"} marker a capped recorder ends
// with (reported, never silently swallowed).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"fsoi/internal/obs"
	"fsoi/internal/sim"
	"fsoi/internal/stats"
)

// line is the decoded union of every line shape in a trace file.
type line struct {
	At      int64   `json:"at"`
	Ev      string  `json:"ev"`
	ID      uint64  `json:"id"`
	Src     int     `json:"src"`
	Dst     int     `json:"dst"`
	Class   string  `json:"class"`
	Lane    string  `json:"lane"`
	Attempt int     `json:"attempt"`
	Aux     int64   `json:"aux"`
	Run     *string `json:"run"`
}

// pair is one directed src->dst stream in the heat-map.
type pair struct{ src, dst int }

// analysis accumulates everything one pass over the file produces.
type analysis struct {
	runs       int
	byKind     map[string]int64
	collisions map[pair]int64
	retries    map[int]int64 // delivered-packet retry count -> packets
	reg        *obs.Registry
	drops      int64
	truncated  int64
	maxNode    int
	lines      int64
	events     []obs.Event // rebuilt events, only when detection is on
}

func analyze(r io.Reader, keepEvents bool) (*analysis, error) {
	a := &analysis{
		byKind:     make(map[string]int64),
		collisions: make(map[pair]int64),
		retries:    make(map[int]int64),
		reg:        obs.NewRegistry(),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		a.lines++
		var l line
		if err := json.Unmarshal([]byte(text), &l); err != nil {
			return nil, fmt.Errorf("line %d: %v", a.lines, err)
		}
		if l.Run != nil {
			a.runs++
			continue
		}
		if l.Ev == "truncated" {
			a.truncated += l.Aux
			continue
		}
		a.byKind[l.Ev]++
		if l.Src > a.maxNode {
			a.maxNode = l.Src
		}
		if l.Dst > a.maxNode {
			a.maxNode = l.Dst
		}
		if keepEvents {
			if k, ok := obs.ParseKind(l.Ev); ok {
				a.events = append(a.events, obs.Event{
					At: sim.Cycle(l.At), Kind: k, ID: l.ID, Aux: l.Aux,
					Src: int32(l.Src), Dst: int32(l.Dst), Attempt: int32(l.Attempt),
				})
			}
		}
		switch l.Ev {
		case "collision":
			a.collisions[pair{l.Src, l.Dst}]++
		case "deliver":
			a.retries[l.Attempt]++
			class := obs.ClassMeta
			if l.Class == "data" {
				class = obs.ClassData
			}
			a.reg.Observe(class, l.Src, l.Dst, l.Aux)
		case "drop":
			a.drops++
		}
	}
	return a, sc.Err()
}

// kindOrder lists event kinds in lifecycle order for the counts table;
// unknown kinds (from future trace versions) sort after, alphabetically.
var kindOrder = []string{"fault", "inject", "tx-start", "retransmit",
	"collision", "backoff", "confirm-drop", "deliver", "drop"}

func (a *analysis) countsTable() string {
	known := make(map[string]bool, len(kindOrder))
	order := append([]string(nil), kindOrder...)
	for _, k := range kindOrder {
		known[k] = true
	}
	var extra []string
	for k := range a.byKind {
		if !known[k] {
			extra = append(extra, k)
		}
	}
	sort.Strings(extra)
	order = append(order, extra...)
	t := stats.NewTable("event", "count")
	for _, k := range order {
		if n := a.byKind[k]; n > 0 {
			t.AddRowf(k, n)
		}
	}
	return t.String()
}

// heatMap renders collisions per src->dst pair: a full matrix up to 16
// nodes, the busiest pairs beyond that.
func (a *analysis) heatMap(top int) string {
	if len(a.collisions) == 0 {
		return "no collisions recorded\n"
	}
	pairs := make([]pair, 0, len(a.collisions))
	for p := range a.collisions {
		pairs = append(pairs, p)
	}
	nodes := a.maxNode + 1
	if nodes <= 16 {
		sort.Slice(pairs, func(i, j int) bool {
			if pairs[i].src != pairs[j].src {
				return pairs[i].src < pairs[j].src
			}
			return pairs[i].dst < pairs[j].dst
		})
		header := []string{"src \\ dst"}
		for d := 0; d < nodes; d++ {
			header = append(header, fmt.Sprintf("%d", d))
		}
		t := stats.NewTable(header...)
		for s := 0; s < nodes; s++ {
			row := []string{fmt.Sprintf("%d", s)}
			for d := 0; d < nodes; d++ {
				if n := a.collisions[pair{s, d}]; n > 0 {
					row = append(row, fmt.Sprintf("%d", n))
				} else {
					row = append(row, ".")
				}
			}
			t.AddRow(row...)
		}
		return t.String()
	}
	sort.Slice(pairs, func(i, j int) bool {
		ci, cj := a.collisions[pairs[i]], a.collisions[pairs[j]]
		if ci != cj {
			return ci > cj
		}
		if pairs[i].src != pairs[j].src {
			return pairs[i].src < pairs[j].src
		}
		return pairs[i].dst < pairs[j].dst
	})
	truncatedPairs := 0
	if top > 0 && len(pairs) > top {
		truncatedPairs = len(pairs) - top
		pairs = pairs[:top]
	}
	t := stats.NewTable("pair", "collisions")
	for _, p := range pairs {
		t.AddRowf(fmt.Sprintf("%d->%d", p.src, p.dst), a.collisions[p])
	}
	out := t.String()
	if truncatedPairs > 0 {
		out += fmt.Sprintf("(%d quieter pairs omitted)\n", truncatedPairs)
	}
	return out
}

// retryCDF renders the cumulative distribution of delivered-packet
// retry counts.
func (a *analysis) retryCDF() string {
	if len(a.retries) == 0 {
		return "no deliveries recorded\n"
	}
	var counts []int
	var total int64
	for r := range a.retries {
		counts = append(counts, r)
	}
	sort.Ints(counts)
	for _, r := range counts {
		total += a.retries[r]
	}
	t := stats.NewTable("retries", "packets", "cumulative %")
	var seen int64
	for _, r := range counts {
		seen += a.retries[r]
		t.AddRow(fmt.Sprintf("%d", r), fmt.Sprintf("%d", a.retries[r]),
			fmt.Sprintf("%.2f", float64(seen)/float64(total)*100))
	}
	return t.String()
}

func main() {
	top := flag.Int("top", 16, "rows in the busiest-links and busiest-pairs tables (<= 0: all)")
	detect := flag.Bool("detect", false, "run the windowed contention detector over the trace (single-run traces only)")
	window := flag.Int64("window", 0, "detector window length in cycles (0 = default)")
	flag.Parse()

	in := os.Stdin
	name := "stdin"
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "fsoitrace:", err)
			os.Exit(2)
		}
		defer f.Close()
		in, name = f, flag.Arg(0)
	}
	a, err := analyze(in, *detect)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fsoitrace:", err)
		os.Exit(1)
	}

	fmt.Printf("%s: %d lines", name, a.lines)
	if a.runs > 0 {
		fmt.Printf(", %d runs", a.runs)
	}
	fmt.Println()
	if a.truncated > 0 {
		fmt.Printf("WARNING: recording truncated, %d events lost past the recorder cap\n", a.truncated)
	}
	fmt.Println("\nevent counts")
	fmt.Print(a.countsTable())
	fmt.Println("\ncollision heat-map (src -> dst)")
	fmt.Print(a.heatMap(*top))
	fmt.Println("\nretry CDF (delivered packets)")
	fmt.Print(a.retryCDF())
	fmt.Println("\nlatency percentiles by packet class (cycles)")
	fmt.Print(a.reg.ClassTable())
	fmt.Println("\nlatency percentiles by link (cycles)")
	fmt.Print(a.reg.LinkTable(*top))
	if a.drops > 0 {
		fmt.Printf("\n%d packets DROPPED after retry exhaustion\n", a.drops)
	}
	if *detect {
		fmt.Println("\ncontention anomaly detection")
		if a.runs > 1 {
			fmt.Printf("WARNING: %d runs in one file; detection windows assume a single run's timeline\n", a.runs)
		}
		report := obs.Detect(a.events, obs.DetectorConfig{WindowCycles: *window})
		fmt.Print(report.Table())
	}
}
