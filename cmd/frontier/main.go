// Command frontier renders the optical-topology worst-case-loss and
// laser-energy frontier from the analytic models alone — no simulation,
// so it answers "which topology survives at this radix" in milliseconds.
//
//	frontier                        # every topology at 16/64/256 nodes
//	frontier -nodes 64              # one node count
//	frontier -topos fsoi,corona     # subset of the registry
//	frontier -detail -nodes 64      # full per-topology loss budgets
//
// The simulated half of the frontier (latency and run time on the same
// topology names) lives in `experiments -run frontier`.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"fsoi/internal/optnet"
	"fsoi/internal/stats"
)

func main() {
	nodesFlag := flag.String("nodes", "16,64,256", "comma-separated node counts (perfect squares)")
	toposFlag := flag.String("topos", "", "comma-separated topology subset (default: whole registry)")
	detail := flag.Bool("detail", false, "print the full loss budget of every (topology, nodes) point")
	flag.Parse()

	var nodeCounts []int
	for _, f := range strings.Split(*nodesFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			fmt.Fprintf(os.Stderr, "frontier: bad node count %q\n", f)
			os.Exit(2)
		}
		if _, err := optnet.MeshDim(n); err != nil {
			fmt.Fprintln(os.Stderr, "frontier:", err)
			os.Exit(2)
		}
		nodeCounts = append(nodeCounts, n)
	}

	names := optnet.Names()
	if *toposFlag != "" {
		names = nil
		for _, t := range strings.Split(*toposFlag, ",") {
			t = strings.TrimSpace(t)
			if _, ok := optnet.Get(t); !ok {
				fmt.Fprintf(os.Stderr, "frontier: unknown topology %q (have %v)\n", t, optnet.Names())
				os.Exit(2)
			}
			names = append(names, t)
		}
	}

	table := stats.NewTable("topology", "nodes", "worst loss dB", "launch/λ mW", "channels", "laser W", "energy/bit pJ")
	for _, name := range names {
		topo, _ := optnet.Get(name)
		for _, n := range nodeCounts {
			r := topo.Loss(n)
			table.AddRow(name, fmt.Sprint(n),
				fmt.Sprintf("%.2f", r.WorstCaseDB),
				fmt.Sprintf("%.3f", r.LaserPowerMW),
				fmt.Sprint(r.Channels),
				fmt.Sprintf("%.3f", r.TotalLaserW),
				fmt.Sprintf("%.3f", r.EnergyPerBitJ*1e12))
		}
	}
	fmt.Print(table.String())

	// Chart the frontier at the largest requested radix: worst-case dB is
	// the axis the topologies actually compete on.
	top := nodeCounts[len(nodeCounts)-1]
	chart := stats.NewBarChart(fmt.Sprintf("\nworst-case insertion loss @ %d nodes (dB)", top), 40)
	for _, name := range names {
		topo, _ := optnet.Get(name)
		chart.Add(name, float64(topo.Loss(top).WorstCaseDB))
	}
	fmt.Print(chart.String())

	if *detail {
		for _, name := range names {
			topo, _ := optnet.Get(name)
			for _, n := range nodeCounts {
				fmt.Println()
				fmt.Print(topo.Loss(n).String())
			}
		}
	}
}
