// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -run fig6           # one experiment
//	experiments -run all            # everything, paper order
//	experiments -scale 0.25 -run fig7
//	experiments -list
//
// Scale multiplies workload length: 1.0 is the full-size experiment,
// smaller values trade fidelity for time (0.5 is the calibrated default;
// see EXPERIMENTS.md for recorded paper-vs-measured values).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fsoi/internal/exp"
	"fsoi/internal/parallel"
)

func main() {
	run := flag.String("run", "all", "experiment id (table1, fig3..fig11, table4, hints, llsc, corona) or 'all'")
	scale := flag.Float64("scale", 0.5, "workload scale factor (1.0 = full size)")
	seed := flag.Uint64("seed", 1, "random seed")
	trials := flag.Int("trials", 30000, "Monte Carlo trials")
	apps := flag.String("apps", "", "comma-separated app subset (default: all sixteen)")
	jobs := flag.Int("j", 1, "concurrent simulations (0 = one per CPU); output is identical at any setting")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, e := range exp.Registry {
			fmt.Println(e.ID)
		}
		return
	}

	o := exp.Options{Scale: *scale, Seed: *seed, Trials: *trials, Workers: parallel.Workers(*jobs)}
	if *apps != "" {
		o.Apps = strings.Split(*apps, ",")
	}

	var runners []exp.Runner
	var ids []string
	if *run == "all" {
		for _, e := range exp.Registry {
			runners = append(runners, e.Runner)
			ids = append(ids, e.ID)
		}
	} else {
		for _, id := range strings.Split(*run, ",") {
			r, ok := exp.Lookup(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			runners = append(runners, r)
			ids = append(ids, id)
		}
	}

	for i, r := range runners {
		start := time.Now()
		res := r(o)
		fmt.Printf("==== %s — %s (%.1fs) ====\n", ids[i], res.Title, time.Since(start).Seconds())
		fmt.Println(res.Text)
	}
}
