// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -run fig6           # one experiment
//	experiments -run all            # everything, paper order
//	experiments -scale 0.25 -run fig7
//	experiments -list
//
// Scale multiplies workload length: 1.0 is the full-size experiment,
// smaller values trade fidelity for time (0.5 is the calibrated default;
// see EXPERIMENTS.md for recorded paper-vs-measured values).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"fsoi/internal/exp"
	"fsoi/internal/obs"
	"fsoi/internal/parallel"
)

// fileSink streams every simulated run's lifecycle recording to one
// JSONL file. Runs are separated by {"run":...} header lines; the exp
// package feeds sinks strictly in job order after each grid's barrier,
// so the file bytes are identical at every -j setting.
type fileSink struct {
	w   *bufio.Writer
	f   *os.File
	err error
}

func newFileSink(path string) (*fileSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &fileSink{w: bufio.NewWriter(f), f: f}, nil
}

func (s *fileSink) WriteRun(label string, rec *obs.Recorder) {
	if s.err != nil {
		return
	}
	if _, err := fmt.Fprintf(s.w, "{\"run\":%q}\n", label); err != nil {
		s.err = err
		return
	}
	s.err = obs.WriteJSONL(s.w, rec)
}

func (s *fileSink) Close() error {
	if err := s.w.Flush(); s.err == nil {
		s.err = err
	}
	if err := s.f.Close(); s.err == nil {
		s.err = err
	}
	return s.err
}

func main() {
	run := flag.String("run", "all", "experiment id (table1, fig3..fig11, table4, hints, llsc, corona, frontier, faults) or 'all'")
	scale := flag.Float64("scale", 0.5, "workload scale factor (1.0 = full size)")
	seed := flag.Uint64("seed", 1, "random seed")
	trials := flag.Int("trials", 30000, "Monte Carlo trials")
	apps := flag.String("apps", "", "comma-separated app subset (default: all sixteen)")
	jobs := flag.Int("j", 1, "concurrent simulations (0 = one per CPU); output is identical at any setting")
	shards := flag.Int("shards", 0, "shard count for the sharded-engine grids (frontier 256/1024 nodes; 0 = 8); output is identical at any setting")
	tracePath := flag.String("trace", "", "record every run's packet-lifecycle events into this JSONL file (read with cmd/fsoitrace)")
	profilePath := flag.String("profile", "", "write a host CPU profile (pprof) of the whole invocation")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, e := range exp.Registry {
			fmt.Println(e.ID)
		}
		return
	}

	o := exp.Options{Scale: *scale, Seed: *seed, Trials: *trials, Workers: parallel.Workers(*jobs), Shards: *shards}
	if *apps != "" {
		o.Apps = strings.Split(*apps, ",")
	}
	if *tracePath != "" {
		sink, err := newFileSink(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(2)
		}
		defer func() {
			if err := sink.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
		}()
		o.Trace = sink
	}
	if *profilePath != "" {
		f, err := os.Create(*profilePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(2)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}

	var runners []exp.Runner
	var ids []string
	if *run == "all" {
		for _, e := range exp.Registry {
			runners = append(runners, e.Runner)
			ids = append(ids, e.ID)
		}
	} else {
		for _, id := range strings.Split(*run, ",") {
			r, ok := exp.Lookup(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			runners = append(runners, r)
			ids = append(ids, id)
		}
	}

	for i, r := range runners {
		start := time.Now()
		res := r(o)
		fmt.Printf("==== %s — %s (%.1fs) ====\n", ids[i], res.Title, time.Since(start).Seconds())
		fmt.Println(res.Text)
	}
}
