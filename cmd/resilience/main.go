// Command resilience runs the adversarial-traffic resilience sweep:
// hostile role x intensity x node count, each point compared against an
// attack-free control run with the contention detector enabled.
//
// Usage:
//
//	resilience                                  # default grid, 16+64 nodes
//	resilience -roles jammer -intensities 0.9 -nodes 64
//	resilience -apps mp3d -scale 0.25 -j 4
//
// Output is byte-identical at any -j setting. The attack-free control
// doubles as the false-positive gate: it must report zero flagged links.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"fsoi/internal/adversary"
	"fsoi/internal/exp"
	"fsoi/internal/parallel"
)

func main() {
	scale := flag.Float64("scale", 0.5, "workload scale factor (1.0 = full size)")
	seed := flag.Uint64("seed", 1, "random seed")
	apps := flag.String("apps", "", "comma-separated app subset; the first app is the honest workload")
	jobs := flag.Int("j", 1, "concurrent simulations (0 = one per CPU); output is identical at any setting")
	roles := flag.String("roles", "jammer,spoofer,starver", "comma-separated adversary roles to sweep")
	intensities := flag.String("intensities", "0.3,0.6,0.9", "comma-separated attack intensities in (0,1)")
	nodes := flag.String("nodes", "16,64", "comma-separated node counts")
	flag.Parse()

	rs, err := parseRoles(*roles)
	if err != nil {
		fmt.Fprintf(os.Stderr, "resilience: bad -roles: %v\n", err)
		os.Exit(2)
	}
	is, err := parseFloats(*intensities)
	if err != nil {
		fmt.Fprintf(os.Stderr, "resilience: bad -intensities: %v\n", err)
		os.Exit(2)
	}
	ns, err := parseInts(*nodes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "resilience: bad -nodes: %v\n", err)
		os.Exit(2)
	}

	o := exp.Options{Scale: *scale, Seed: *seed, Workers: parallel.Workers(*jobs)}
	if *apps != "" {
		o.Apps = strings.Split(*apps, ",")
	}
	res := exp.ResilienceSweep(o, rs, is, ns)
	fmt.Printf("==== %s ====\n", res.Title)
	fmt.Println(res.Text)
}

func parseRoles(csv string) ([]adversary.Role, error) {
	var out []adversary.Role
	for _, f := range strings.Split(csv, ",") {
		r, ok := adversary.ParseRole(strings.TrimSpace(f))
		if !ok {
			return nil, fmt.Errorf("unknown role %q", strings.TrimSpace(f))
		}
		out = append(out, r)
	}
	return out, nil
}

func parseFloats(csv string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(csv, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, err
		}
		if v <= 0 || v >= 1 {
			return nil, fmt.Errorf("intensity %g outside (0,1)", v)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		if v < 4 {
			return nil, fmt.Errorf("node count %d too small", v)
		}
		out = append(out, v)
	}
	return out, nil
}
