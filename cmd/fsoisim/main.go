// Command fsoisim runs one application on one interconnect configuration
// and prints the full metric set: run time, packet-latency breakdown,
// collision statistics, traffic, and energy.
//
//	fsoisim -app jacobi -net fsoi -nodes 16
//	fsoisim -app mp3d -net mesh -nodes 64 -scale 0.25
//	fsoisim -app raytrace -net fsoi -no-opt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"

	"fsoi/internal/config"
	"fsoi/internal/core"
	"fsoi/internal/obs"
	"fsoi/internal/optnet"
	"fsoi/internal/system"
	"fsoi/internal/workload"
)

func main() {
	appName := flag.String("app", "jacobi", "application (see -listapps)")
	netName := flag.String("net", "fsoi", "interconnect: fsoi | mesh | L0 | Lr1 | Lr2 | corona | any optnet topology (matrix, snake, ...)")
	nodes := flag.Int("nodes", 16, "node count (16 or 64)")
	scale := flag.Float64("scale", 0.5, "workload scale factor")
	seed := flag.Uint64("seed", 1, "random seed")
	memGBps := flag.Float64("membw", 8.8, "total memory bandwidth, GB/s")
	noOpt := flag.Bool("no-opt", false, "disable all §5 FSOI optimizations")
	trace := flag.Int("trace", 0, "dump the last N terminated packets")
	traceFile := flag.String("tracefile", "", "record packet-lifecycle events and write them as JSON Lines (read with cmd/fsoitrace)")
	chromeTrace := flag.String("chrometrace", "", "record packet-lifecycle events and write a Chrome trace-event file (chrome://tracing, Perfetto)")
	profilePath := flag.String("profile", "", "write a host CPU profile (pprof) of the run and print engine counters")
	detect := flag.Bool("detect", false, "run the windowed contention detector and print its report (implies observation)")
	shards := flag.Int("shards", 0, "run on the exact sharded engine with N shards (output is byte-identical to serial; 0/1 = serial engine)")
	par := flag.Int("par", 0, "run on the windowed parallel engine with N workers (FSOI only; byte-identical across worker/shard counts; combine with -shards to set the partition, default N shards)")
	canonicalPath := flag.String("canonical", "", "write the canonical metric listing to a file (- for stdout), the byte-comparison surface of the equivalence CI")
	configPath := flag.String("config", "", "JSON spec overriding the flags (see internal/config)")
	listApps := flag.Bool("listapps", false, "list applications and exit")
	flag.Parse()

	if *listApps {
		for _, a := range workload.Suite(1) {
			fmt.Println(a.Name)
		}
		return
	}

	app, ok := workload.ByName(*appName, *scale)
	if !ok {
		fmt.Fprintf(os.Stderr, "fsoisim: unknown app %q (use -listapps)\n", *appName)
		os.Exit(2)
	}
	kind, ok := map[string]system.NetworkKind{
		"fsoi": system.NetFSOI, "mesh": system.NetMesh, "L0": system.NetL0,
		"Lr1": system.NetLr1, "Lr2": system.NetLr2, "corona": system.NetCorona,
	}[*netName]
	cfg := system.Default(*nodes, kind)
	if !ok {
		// Fall back to the optical-topology registry (matrix, snake, ...).
		if _, reg := optnet.Get(*netName); !reg {
			fmt.Fprintf(os.Stderr, "fsoisim: unknown network %q (optical topologies: %v)\n",
				*netName, optnet.Names())
			os.Exit(2)
		}
		cfg = system.DefaultOptical(*nodes, *netName)
	}
	cfg.Seed = *seed
	cfg.Memory.TotalGBps = *memGBps
	if *noOpt {
		cfg.FSOI.Opt = core.Optimizations{}
	}
	cfg.TracePackets = *trace
	if *configPath != "" {
		spec, err := config.Load(*configPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fsoisim:", err)
			os.Exit(2)
		}
		cfg, err = spec.Build()
		if err != nil {
			fmt.Fprintln(os.Stderr, "fsoisim:", err)
			os.Exit(2)
		}
		name, sc := spec.AppAndScale()
		if a, ok := workload.ByName(name, sc); ok {
			app = a
			*scale = sc
		} else {
			fmt.Fprintf(os.Stderr, "fsoisim: unknown app %q in config\n", name)
			os.Exit(2)
		}
	}
	if *traceFile != "" || *chromeTrace != "" {
		cfg.Observe = true
	}
	if *detect {
		cfg.Detect = true
	}
	if *shards > 0 {
		cfg.Shards = *shards
	}
	if *par > 0 {
		cfg.ParWorkers = *par
	}
	s := system.New(cfg)
	if *profilePath != "" {
		f, err := os.Create(*profilePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fsoisim:", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "fsoisim:", err)
			os.Exit(2)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	m := s.Run(app)

	fmt.Printf("app=%s net=%s nodes=%d scale=%.2f\n", app.Name, m.Net, m.Nodes, *scale)
	fmt.Printf("run time            %d cycles (finished=%v)\n", m.Cycles, m.Finished)
	q, sc, nw, res := m.Latency.Breakdown()
	fmt.Printf("packet latency      %.2f cycles = queuing %.2f + scheduling %.2f + network %.2f + resolution %.2f\n",
		m.Latency.MeanTotal(), q, sc, nw, res)
	fmt.Printf("traffic             %d meta + %d data packets, %d invalidations (%d acks elided), %d NACKs\n",
		m.MetaPackets, m.DataPackets, m.Invalidations, m.ElidedAcks, m.Nacks)
	if m.FSOI != nil {
		fmt.Printf("meta lane           p=%.4f collision rate=%.4f\n",
			m.FSOI.TransmissionProbability(core.LaneMeta), m.FSOI.CollisionRate(core.LaneMeta))
		fmt.Printf("data lane           p=%.4f collision rate=%.4f\n",
			m.FSOI.TransmissionProbability(core.LaneData), m.FSOI.CollisionRate(core.LaneData))
		fmt.Printf("confirmation lane   %d packet confirms + %d boolean pushes\n",
			m.FSOI.ConfirmSignals, m.FSOI.ConfirmBits)
		fmt.Printf("hints               %d issued, %d correct, %d wrong-winner\n",
			m.FSOI.HintsIssued, m.FSOI.HintsCorrect, m.FSOI.HintsWrong)
	}
	if m.FaultCounters != nil {
		fmt.Printf("faults              %d bit errors (%d header, %d CRC), %d confirm drops -> %d timeouts, %d VCSELs failed on %d nodes\n",
			m.FaultCounters.Get("bit_errors"), m.FaultCounters.Get("header_corruptions"),
			m.FaultCounters.Get("payload_crc_errors"), m.FaultCounters.Get("confirm_drops"),
			m.FaultCounters.Get("timeout_retransmits"), m.FaultCounters.Get("vcsels_failed"),
			m.FaultCounters.Get("nodes_degraded"))
	}
	fmt.Printf("energy              %.4f J (network %.4f, core+cache %.4f, leakage %.4f), avg power %.1f W\n",
		m.Energy.Total(), m.Energy.Network, m.Energy.CoreCache, m.Energy.Leakage, m.AvgPowerW)
	if bucket, frac := m.ReplyHist.ModeFraction(); m.ReplyHist.Total() > 0 {
		fmt.Printf("reply latency       mean %.1f cycles, modal bin %d-%d holds %.0f%%\n",
			m.ReplyHist.Mean(), bucket*5, bucket*5+4, frac*100)
	}
	if m.DroppedPackets > 0 {
		fmt.Printf("dropped             %d packets abandoned after retry exhaustion\n", m.DroppedPackets)
	}
	if m.AdversaryNodes > 0 {
		fmt.Printf("adversaries         %d hostile nodes (%d spoofed headers, %d starved confirms), honest cores finished at cycle %d\n",
			m.AdversaryNodes, m.FSOI.SpoofedHeaders, m.FSOI.StarvedConfirms, m.HonestFinish)
	}
	if *trace > 0 {
		fmt.Printf("\nlast %d packets:\n%s", *trace, s.Trace().String())
	}
	if rec := s.Obs(); rec != nil {
		fmt.Printf("\nlifecycle events    %d recorded", rec.Len())
		if rec.Lost() > 0 {
			fmt.Printf(" (%d lost past the cap)", rec.Lost())
		}
		fmt.Println()
		fmt.Println()
		fmt.Print(s.ObsRegistry().String())
		writeTrace(*traceFile, rec, obs.WriteJSONL)
		writeTrace(*chromeTrace, rec, obs.WriteChromeTrace)
	}
	if m.Detection != nil {
		fmt.Println()
		fmt.Print(m.Detection.Table())
	}
	if *profilePath != "" {
		e := s.Engine()
		fmt.Printf("\nengine              %d events fired, event-queue high-water mark %d\n",
			e.EventsFired(), e.MaxQueueDepth())
		fmt.Printf("cpu profile         written to %s\n", *profilePath)
	}
	if se := s.ShardEngine(); se != nil {
		fmt.Printf("shards              %d shards, %d cross-shard handoffs (%d under the %d-cycle lookahead)\n",
			se.Shards(), se.Handoffs(), se.UnderLookahead(), se.Lookahead())
	}
	if w := s.WindowEngine(); w != nil {
		fmt.Printf("parallel            %d shards x %d workers, %d windows of %d cycles, %d cross-shard handoffs (%d tight)\n",
			w.Shards(), w.Workers(), w.WindowCount(), w.Lookahead(), w.Handoffs(), w.TightHandoffs())
	}
	if *canonicalPath != "" {
		text := m.Canonical()
		if *canonicalPath == "-" {
			fmt.Print(text)
		} else if err := os.WriteFile(*canonicalPath, []byte(text), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "fsoisim:", err)
			os.Exit(1)
		} else {
			fmt.Printf("canonical metrics   written to %s\n", *canonicalPath)
		}
	}
}

// writeTrace exports a recording through the given encoder, or does
// nothing when no path was requested.
func writeTrace(path string, rec *obs.Recorder, encode func(w io.Writer, r *obs.Recorder) error) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err == nil {
		err = encode(f, rec)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fsoisim:", err)
		os.Exit(1)
	}
	fmt.Printf("trace               written to %s\n", path)
}
