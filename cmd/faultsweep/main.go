// Command faultsweep studies FSOI resilience under eroded link margin.
//
// Usage:
//
//	faultsweep                                 # default sweep, 0..3.5 dB
//	faultsweep -penalties 0,1.5,3 -scale 0.25
//	faultsweep -confirm-drop 0.05 -vcsel-fail 0.05
//	faultsweep -droop 0.03 -cooling air        # add thermal power droop
//
// Each margin penalty (dB) is subtracted from the Table 1 Q factor; the
// resulting bit-error rate corrupts packets, and the table reports how
// the paper's own mechanisms (PID/~PID misdetection, backoff
// retransmission, confirmation timeout) absorb the damage. The mesh
// baseline is immune by construction.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"fsoi/internal/exp"
	"fsoi/internal/fault"
	"fsoi/internal/parallel"
	"fsoi/internal/thermal"
)

func main() {
	scale := flag.Float64("scale", 0.5, "workload scale factor (1.0 = full size)")
	seed := flag.Uint64("seed", 1, "random seed")
	apps := flag.String("apps", "", "comma-separated app subset (default: all sixteen)")
	jobs := flag.Int("j", 1, "concurrent simulations (0 = one per CPU); output is identical at any setting")
	penalties := flag.String("penalties", "0,1,2,2.5,3,3.5", "margin penalties to sweep, dB")
	confirmDrop := flag.Float64("confirm-drop", 0.01, "confirmation-beam drop probability")
	vcselFail := flag.Float64("vcsel-fail", 0.02, "per-VCSEL start-of-life failure probability")
	droop := flag.Float64("droop", 0, "thermal droop coefficient, dB/K (0 = off)")
	cooling := flag.String("cooling", "air", "cooling for the droop model: air | microchannel | diamond-spreader")
	powerW := flag.Float64("power", 4, "per-node power fed to the thermal solver, W")
	tau := flag.Float64("tau", 100000, "thermal ramp time constant, cycles")
	flag.Parse()

	pens, err := parseFloats(*penalties)
	if err != nil {
		fmt.Fprintf(os.Stderr, "faultsweep: bad -penalties: %v\n", err)
		os.Exit(2)
	}

	base := fault.Config{
		VCSELFailProb:   *vcselFail,
		ConfirmDropProb: *confirmDrop,
	}
	if *droop > 0 {
		c, ok := map[string]thermal.Cooling{
			"air": thermal.AirCooled, "microchannel": thermal.Microchannel,
			"diamond-spreader": thermal.DiamondSpreader,
		}[*cooling]
		if !ok {
			fmt.Fprintf(os.Stderr, "faultsweep: unknown cooling %q\n", *cooling)
			os.Exit(2)
		}
		base.Thermal = fault.ThermalSpec{
			Enabled: true, Cooling: c, PowerPerNodeW: *powerW,
			TauCycles: *tau, DroopDBPerK: *droop,
		}
	}
	if err := base.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "faultsweep: %v\n", err)
		os.Exit(2)
	}

	o := exp.Options{Scale: *scale, Seed: *seed, Workers: parallel.Workers(*jobs)}
	if *apps != "" {
		o.Apps = strings.Split(*apps, ",")
	}
	res := exp.FaultSweep(o, pens, base)
	fmt.Printf("==== %s ====\n", res.Title)
	fmt.Println(res.Text)
}

func parseFloats(csv string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(csv, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, err
		}
		if v < 0 {
			return nil, fmt.Errorf("negative penalty %g", v)
		}
		out = append(out, v)
	}
	return out, nil
}
