// Command linkbudget computes the Table 1 optical-link parameters from
// device first principles: Gaussian-beam propagation through the
// micro-lens/micro-mirror route, VCSEL and photodetector operating
// points, receiver noise, Q factor and BER, and signaling-chain power.
//
// Flags override the paper's device constants for what-if studies, e.g.:
//
//	linkbudget -distance 0.03 -rate 50e9
package main

import (
	"flag"
	"fmt"

	"fsoi/internal/optics"
)

func main() {
	distance := flag.Float64("distance", 2e-2, "optical path length, m")
	rate := flag.Float64("rate", 40e9, "target data rate, bit/s")
	bias := flag.Float64("bias", 0.48e-3, "VCSEL bias current, A")
	txLens := flag.Float64("txlens", 90e-6, "transmit micro-lens aperture, m")
	rxLens := flag.Float64("rxlens", 190e-6, "receive micro-lens aperture, m")
	mirrors := flag.Int("mirrors", 2, "micro-mirror reflections on the route")
	flag.Parse()

	cfg := optics.PaperLink()
	cfg.Path.Distance = *distance
	cfg.Path.TxLensAperture = *txLens
	cfg.Path.RxLensAperture = *rxLens
	cfg.Path.MirrorCount = *mirrors
	cfg.DataRate = *rate
	cfg.VCSEL.BiasCurrent = *bias

	fmt.Printf("FSOI link budget — %.1f mm route at %.0f Gbps\n\n", *distance*1e3, *rate/1e9)
	fmt.Print(cfg.Budget().String())

	chip := optics.PaperChip(4)
	fmt.Printf("\nChip geometry (4x4 nodes, %.0f mm die):\n", chip.DieEdge*1e3)
	fmt.Printf("  worst-case route  %.1f mm\n", chip.WorstCasePath()*1e3)
	fmt.Printf("  flight time       %.3f core cycles @3.3 GHz\n", optics.FlightCycles(chip.WorstCasePath(), 3.3e9))
	fmt.Printf("  skew padding      %d line bits for the shortest route\n",
		optics.SkewPaddingBits(chip.PathLength(0, 1), chip.WorstCasePath(), *rate))
}
