// Command benchtrend snapshots the repository's performance trajectory.
// Each invocation measures the engine hot path with testing.Benchmark,
// times a representative slice of the experiment registry at bench
// scale, and times one fsoilint pass over the module (load and
// analysis separately), then writes BENCH_<n>.json next to the
// previous snapshots so the ns/op, allocs/op, and wall-clock history
// is machine-readable across PRs.
//
// Usage:
//
//	benchtrend              # writes BENCH_<next>.json in the cwd
//	benchtrend -n 0 -dir .  # explicit index and directory
//	benchtrend -j 4         # experiment timings with 4 workers
//	benchtrend -check BENCH_0.json   # regression gate, writes nothing
//
// Engine numbers are scheduler-independent; experiment wall-clock
// depends on -j and the host, so snapshots record both alongside
// GOMAXPROCS for honest comparison.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"testing"
	"time"

	"fsoi/internal/exp"
	"fsoi/internal/lint"
	"fsoi/internal/parallel"
	"fsoi/internal/sim"
	"fsoi/internal/system"
	"fsoi/internal/workload"
)

// engineBench is one testing.Benchmark measurement of the event queue.
type engineBench struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	N           int     `json:"n"`
}

// expBench is one registry experiment timed at bench scale.
type expBench struct {
	WallSeconds float64            `json:"wall_seconds"`
	Values      map[string]float64 `json:"values"`
}

// lintBench times one in-process fsoilint run over the whole module:
// load (parse + type-check, parallel parse pre-pass) and analysis
// (RunWorkers) separately, since they scale differently with -j.
type lintBench struct {
	LoadSeconds float64 `json:"load_seconds"`
	RunSeconds  float64 `json:"run_seconds"`
	Packages    int     `json:"packages"`
	Findings    int     `json:"findings"`
}

// scaleBench times the 1024-node scale-half run (EXPERIMENTS.md's
// wall-clock table) on the serial exact engine and on the windowed
// parallel engine at the same partition. The two engines execute
// legally different schedules — the windowed run lands cross-node
// interactions one lookahead later — so both cycle counts are
// recorded; the speedup is the wall-clock ratio, which depends on
// GOMAXPROCS (a 1-core host can only measure the windowing overhead).
type scaleBench struct {
	Nodes             int     `json:"nodes"`
	App               string  `json:"app"`
	Scale             float64 `json:"scale"`
	Shards            int     `json:"shards"`
	ParWorkers        int     `json:"par_workers"`
	SerialCycles      int64   `json:"serial_cycles"`
	ParCycles         int64   `json:"par_cycles"`
	SerialWallSeconds float64 `json:"serial_wall_seconds"`
	ParWallSeconds    float64 `json:"par_wall_seconds"`
	Speedup           float64 `json:"speedup"`
}

// snapshot is the schema of one BENCH_<n>.json file. Map keys marshal
// sorted, so diffs between snapshots stay stable.
type snapshot struct {
	Index       int                    `json:"index"`
	GoVersion   string                 `json:"go_version"`
	GOMAXPROCS  int                    `json:"gomaxprocs"`
	Workers     int                    `json:"workers"`
	Engine      map[string]engineBench `json:"engine"`
	Experiments map[string]expBench    `json:"experiments"`
	// Lint is absent from snapshots predating the static-analysis
	// suite; omitempty keeps old BENCH_<n>.json files comparable.
	Lint *lintBench `json:"lint,omitempty"`
	// Scale is absent from snapshots predating the windowed parallel
	// engine; omitempty keeps old BENCH_<n>.json files comparable, and
	// -check gates the parallel speedup only when its baseline has it.
	Scale *scaleBench `json:"scale,omitempty"`
}

// benchSchedule mirrors BenchmarkEngineSchedule in internal/sim: a
// rolling window of timed callbacks, the FSOI slot machinery's access
// pattern. The slab-backed queue must hold 0 allocs/op here.
func benchSchedule(b *testing.B) {
	e := sim.NewEngine()
	fn := func(sim.Cycle) {}
	for i := 0; i < 1024; i++ {
		e.After(sim.Cycle(i%17), fn)
	}
	e.Run(32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(sim.Cycle(i%7+1), fn)
		if i%64 == 63 {
			e.Run(8)
		}
	}
	b.StopTimer()
	e.Run(16)
}

// benchChurn mirrors BenchmarkEngineChurn: 4096 pending events with
// continuous push/pop churn, where heap arity dominates.
func benchChurn(b *testing.B) {
	e := sim.NewEngine()
	var fn func(now sim.Cycle)
	fn = func(now sim.Cycle) { e.After(sim.Cycle(int(now)%31+1), fn) }
	for i := 0; i < 4096; i++ {
		e.After(sim.Cycle(i%63+1), fn)
	}
	e.Run(64)
	b.ReportAllocs()
	b.ResetTimer()
	e.Run(sim.Cycle(b.N))
}

// trackedExperiments is the registry slice each snapshot times: the
// cheap analytic table, one simulation-light figure, and the heavy
// app×network grids that the parallel layer exists to accelerate.
var trackedExperiments = []string{"table1", "fig5", "fig6", "fig8", "faults"}

// nextIndex scans dir for BENCH_<n>.json files and returns max+1 (0 on
// a clean directory).
func nextIndex(dir string) (int, error) {
	re := regexp.MustCompile(`^BENCH_(\d+)\.json$`)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	next := 0
	for _, e := range entries {
		m := re.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err == nil && n+1 > next {
			next = n + 1
		}
	}
	return next, nil
}

func main() {
	dir := flag.String("dir", ".", "directory holding the BENCH_<n>.json history")
	index := flag.Int("n", -1, "snapshot index (-1 = one past the highest existing)")
	jobs := flag.Int("j", 1, "concurrent simulations for experiment timings (0 = one per CPU)")
	check := flag.String("check", "", "regression-gate mode: re-measure the engine hot path, compare against this snapshot, exit 1 on regression; writes nothing")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional ns/op slowdown in -check mode (allocs/op must never grow)")
	noScale := flag.Bool("noscale", false, "skip the 1024-node scale measurement (about two serial minutes of simulation)")
	flag.Parse()

	if *check != "" {
		if err := checkEngine(*check, *tolerance); err != nil {
			fmt.Fprintf(os.Stderr, "benchtrend: %v\n", err)
			os.Exit(1)
		}
		return
	}

	n := *index
	if n < 0 {
		var err error
		if n, err = nextIndex(*dir); err != nil {
			fmt.Fprintf(os.Stderr, "benchtrend: %v\n", err)
			os.Exit(1)
		}
	}

	snap := snapshot{
		Index:      n,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    parallel.Workers(*jobs),
		Engine: map[string]engineBench{
			"schedule": record(testing.Benchmark(benchSchedule)),
			"churn":    record(testing.Benchmark(benchChurn)),
		},
		Experiments: make(map[string]expBench, len(trackedExperiments)),
	}

	o := exp.BenchOptions()
	o.Workers = snap.Workers
	for _, id := range trackedExperiments {
		runner, ok := exp.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchtrend: unknown experiment %q\n", id)
			os.Exit(1)
		}
		start := time.Now()
		res := runner(o)
		snap.Experiments[id] = expBench{
			WallSeconds: time.Since(start).Seconds(),
			Values:      res.Values,
		}
	}

	lb, err := timeLint(snap.Workers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtrend: lint timing: %v\n", err)
		os.Exit(1)
	}
	snap.Lint = lb

	if !*noScale {
		snap.Scale = measureScale()
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtrend: %v\n", err)
		os.Exit(1)
	}
	path := filepath.Join(*dir, fmt.Sprintf("BENCH_%d.json", n))
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchtrend: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (engine schedule %.1f ns/op, %d allocs/op)\n",
		path, snap.Engine["schedule"].NsPerOp, snap.Engine["schedule"].AllocsPerOp)
	fmt.Printf("fsoilint: %d packages loaded in %.2fs, analyzed in %.3fs (%d findings, %d workers)\n",
		lb.Packages, lb.LoadSeconds, lb.RunSeconds, lb.Findings, snap.Workers)
	if sc := snap.Scale; sc != nil {
		fmt.Printf("scale: %d nodes serial %.1fs, -par %d %.1fs, speedup %.2fx (GOMAXPROCS %d)\n",
			sc.Nodes, sc.SerialWallSeconds, sc.ParWorkers, sc.ParWallSeconds, sc.Speedup, snap.GOMAXPROCS)
	}
}

// measureScale times the 1024-node scale-half run — jacobi at scale
// 0.008, the EXPERIMENTS.md wall-clock table's row — on the serial
// exact engine (8 shards, one goroutine) and on the windowed parallel
// engine (8 shards, 8 workers).
func measureScale() *scaleBench {
	const (
		nodes      = 1024
		appName    = "jacobi"
		appScale   = 0.008
		shards     = 8
		parWorkers = 8
	)
	app, ok := workload.ByName(appName, appScale)
	if !ok {
		fmt.Fprintf(os.Stderr, "benchtrend: unknown scale app %q\n", appName)
		os.Exit(1)
	}
	run := func(par int) (int64, float64) {
		cfg := system.Default(nodes, system.NetFSOI)
		cfg.Shards = shards
		cfg.ParWorkers = par
		s := system.New(cfg)
		start := time.Now()
		m := s.Run(app)
		wall := time.Since(start).Seconds()
		if !m.Finished {
			fmt.Fprintf(os.Stderr, "benchtrend: %d-node scale run did not finish\n", nodes)
			os.Exit(1)
		}
		return int64(m.Cycles), wall
	}
	sc := &scaleBench{
		Nodes: nodes, App: appName, Scale: appScale,
		Shards: shards, ParWorkers: parWorkers,
	}
	sc.SerialCycles, sc.SerialWallSeconds = run(0)
	sc.ParCycles, sc.ParWallSeconds = run(parWorkers)
	sc.Speedup = sc.SerialWallSeconds / sc.ParWallSeconds
	return sc
}

// timeLint measures one fsoilint pass over the module the snapshot is
// taken in: it walks up from the cwd to the enclosing go.mod like the
// fsoilint binary does.
func timeLint(workers int) (*lintBench, error) {
	wd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	loader, err := lint.NewLoader(wd)
	if err != nil {
		return nil, err
	}
	loader.Jobs = workers
	start := time.Now()
	pkgs, err := loader.LoadAll()
	if err != nil {
		return nil, err
	}
	loaded := time.Now()
	findings := lint.RunWorkers(pkgs, lint.Analyzers(), workers)
	return &lintBench{
		LoadSeconds: loaded.Sub(start).Seconds(),
		RunSeconds:  time.Since(loaded).Seconds(),
		Packages:    len(pkgs),
		Findings:    len(findings),
	}, nil
}

// checkEngine is the CI regression gate: it re-measures the engine hot
// path and fails when the schedule or churn benchmark regressed past
// the tolerance. Allocation counts are machine-independent and must
// never grow; ns/op is compared with the fractional tolerance to
// absorb host-to-host variance.
func checkEngine(baselinePath string, tolerance float64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base snapshot
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("%s: %w", baselinePath, err)
	}
	fresh := map[string]engineBench{
		"schedule": record(testing.Benchmark(benchSchedule)),
		"churn":    record(testing.Benchmark(benchChurn)),
	}
	failed := false
	for _, name := range []string{"schedule", "churn"} {
		want, ok := base.Engine[name]
		if !ok {
			return fmt.Errorf("%s has no engine benchmark %q", baselinePath, name)
		}
		got := fresh[name]
		limit := want.NsPerOp * (1 + tolerance)
		verdict := "ok"
		if got.AllocsPerOp > want.AllocsPerOp {
			verdict = fmt.Sprintf("FAIL: %d allocs/op, baseline %d", got.AllocsPerOp, want.AllocsPerOp)
			failed = true
		} else if got.NsPerOp > limit {
			verdict = fmt.Sprintf("FAIL: exceeds baseline by more than %.0f%%", tolerance*100)
			failed = true
		}
		fmt.Printf("engine %-8s  %10.1f ns/op (baseline %.1f, limit %.1f)  %d allocs/op  %s\n",
			name, got.NsPerOp, want.NsPerOp, limit, got.AllocsPerOp, verdict)
	}
	if failed {
		return fmt.Errorf("engine hot path regressed against %s", baselinePath)
	}
	fmt.Printf("engine hot path within %.0f%% of %s\n", tolerance*100, baselinePath)

	// The parallel-speedup gate exists only for baselines that recorded
	// a scale section; older snapshots (BENCH_0.json predates the
	// windowed engine) skip it, keeping -check backward-compatible.
	if base.Scale != nil {
		fresh := measureScale()
		floor := base.Scale.Speedup * (1 - tolerance)
		verdict := "ok"
		if fresh.Speedup < floor {
			verdict = fmt.Sprintf("FAIL: below %.2fx", floor)
		}
		fmt.Printf("scale %-8d  %6.2fx speedup, serial %.1fs vs -par %d %.1fs (baseline %.2fx, floor %.2fx)  %s\n",
			fresh.Nodes, fresh.Speedup, fresh.SerialWallSeconds, fresh.ParWorkers,
			fresh.ParWallSeconds, base.Scale.Speedup, floor, verdict)
		if fresh.Speedup < floor {
			return fmt.Errorf("parallel speedup regressed against %s", baselinePath)
		}
	}
	return nil
}

// record converts a testing.BenchmarkResult to the snapshot schema.
func record(r testing.BenchmarkResult) engineBench {
	return engineBench{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		N:           r.N,
	}
}
