// Command collision explores the analytical models of §4.3.2: the
// collision-probability expression behind Figure 3 and the
// exponential-backoff resolution-delay surface behind Figure 4.
//
//	collision -mode fig3 -n 16
//	collision -mode fig4 -g 0.10
//	collision -mode patho -n 64
//	collision -mode bw            # bandwidth-allocation optimum (BM*)
package main

import (
	"flag"
	"fmt"
	"os"

	"fsoi/internal/analytic"
	"fsoi/internal/parallel"
	"fsoi/internal/sim"
	"fsoi/internal/stats"
)

func main() {
	mode := flag.String("mode", "fig3", "fig3 | fig4 | patho | bw")
	n := flag.Int("n", 16, "number of nodes")
	g := flag.Float64("g", 0.01, "background transmission probability per slot")
	trials := flag.Int("trials", 50000, "Monte Carlo trials")
	seed := flag.Uint64("seed", 1, "random seed")
	jobs := flag.Int("j", 1, "concurrent Monte Carlo shards (0 = one per CPU); output is identical at any setting")
	flag.Parse()
	workers := parallel.Workers(*jobs)

	rng := sim.NewRNG(*seed)
	switch *mode {
	case "fig3":
		t := stats.NewTable("p", "R=1", "R=2", "R=3", "R=4", "MC R=2 pkt", "MC R=2 node")
		for _, p := range []float64{0.33, 0.25, 0.20, 0.15, 0.10, 0.07, 0.05, 0.04, 0.03, 0.02, 0.01} {
			row := []string{fmt.Sprintf("%.2f", p)}
			for r := 1; r <= 4; r++ {
				row = append(row, fmt.Sprintf("%.4f",
					analytic.PacketCollisionProbability(analytic.CollisionParams{N: *n, R: r, P: p})))
			}
			pkt, node := analytic.MonteCarloCollision(analytic.CollisionParams{N: *n, R: 2, P: p}, rng, *trials, workers)
			row = append(row, fmt.Sprintf("%.4f", pkt), fmt.Sprintf("%.4f", node))
			t.AddRow(row...)
		}
		fmt.Print(t.String())
	case "fig4":
		ws := []float64{1.5, 2.0, 2.7, 3.0, 4.0, 5.0}
		bs := []float64{1.05, 1.1, 1.2, 1.5, 2.0}
		surf := analytic.ResolutionDelaySurface(ws, bs, *g, rng, *trials, workers)
		header := []string{"W \\ B"}
		for _, b := range bs {
			header = append(header, fmt.Sprintf("%.2f", b))
		}
		t := stats.NewTable(header...)
		for i, w := range ws {
			row := []string{fmt.Sprintf("%.1f", w)}
			for j := range bs {
				row = append(row, fmt.Sprintf("%.2f", surf[i][j]))
			}
			t.AddRow(row...)
		}
		fmt.Print(t.String())
		w, b, d := analytic.OptimalWB(ws, bs, *g, rng, *trials, workers)
		fmt.Printf("\noptimum on grid: W=%.1f B=%.2f -> %.2f cycles (paper: 2.7/1.1 -> 7.26)\n", w, b, d)
	case "patho":
		for _, b := range []float64{1.1, 2.0} {
			m := analytic.BackoffModel{W: 2.7, B: b, SlotCycles: 2}
			res := m.Pathological(rng.NewStream(fmt.Sprint(b)), *n, 2, 200, 1<<17, workers)
			fmt.Printf("B=%.1f: first packet through after %.1f retries, %.0f cycles (resolved=%v)\n",
				b, res.MeanRetriesFirst, res.MeanCyclesFirst, res.Resolved)
		}
	case "bw":
		m := analytic.PaperBandwidthModel()
		bm := m.OptimalMetaShare()
		meta, data := m.LaneAllocation(9)
		fmt.Printf("optimal meta-lane share BM* = %.4f (paper: 0.285)\n", bm)
		fmt.Printf("9-VCSEL budget splits as %d meta + %d data (paper: 3 + 6)\n", meta, data)
		t := stats.NewTable("BM", "modeled latency")
		for _, b := range []float64{0.1, 0.2, 0.285, 0.4, 0.5, 0.7} {
			t.AddRow(fmt.Sprintf("%.3f", b), fmt.Sprintf("%.3f", m.Latency(b)))
		}
		fmt.Print(t.String())
	default:
		fmt.Fprintf(os.Stderr, "collision: unknown mode %q\n", *mode)
		os.Exit(2)
	}
}
