module fsoi

go 1.22
