package cpu_test

import (
	"testing"

	"fsoi/internal/cache"
	"fsoi/internal/coherence"
	"fsoi/internal/cpu"
	"fsoi/internal/sim"
)

// fabric is a trivial message fabric: 1-cycle delivery to a single
// directory with a stub memory answering instantly.
type fabric struct {
	engine *sim.Engine
	l1     *coherence.L1
	dir    *coherence.Directory
}

func (f *fabric) Send(m coherence.Msg) bool {
	f.engine.After(1, func(now sim.Cycle) {
		switch m.Type {
		case coherence.ReqMem:
			f.engine.After(5, func(at sim.Cycle) {
				f.Send(coherence.Msg{Type: coherence.MemAck, Addr: m.Addr, From: m.To, To: m.From, HasData: true})
			})
		case coherence.MemWrite:
		case coherence.MemAck, coherence.ReqSh, coherence.ReqEx, coherence.ReqUpg,
			coherence.WriteBack, coherence.InvAck, coherence.DwgAck, coherence.SyncReq:
			f.dir.Handle(m, now)
		default:
			f.l1.Handle(m, now)
		}
	})
	return true
}
func (f *fabric) ConfirmationElision() bool                    { return false }
func (f *fabric) BooleanSubscription() bool                    { return false }
func (f *fabric) SendBit(from, to int, tag uint64, value bool) {}

// syncStub counts sync calls and completes them after a fixed delay.
type syncStub struct {
	engine   *sim.Engine
	acquires int
	releases int
	barriers int
}

func (s *syncStub) Acquire(core, id int, done func(sim.Cycle)) {
	s.acquires++
	s.engine.After(3, done)
}
func (s *syncStub) Release(core, id int, done func(sim.Cycle)) {
	s.releases++
	s.engine.After(1, done)
}
func (s *syncStub) Barrier(core, id int, done func(sim.Cycle)) {
	s.barriers++
	s.engine.After(5, done)
}

// opStream replays a fixed op list.
type opStream struct {
	ops []cpu.Op
	i   int
}

func (s *opStream) Next() (cpu.Op, bool) {
	if s.i >= len(s.ops) {
		return cpu.Op{}, false
	}
	op := s.ops[s.i]
	s.i++
	return op, true
}

func rig(t *testing.T, ops []cpu.Op) (*cpu.Core, *sim.Engine, *syncStub, *bool) {
	t.Helper()
	engine := sim.NewEngine()
	f := &fabric{engine: engine}
	rng := sim.NewRNG(1)
	l1 := coherence.NewL1(0, coherence.PaperL1(), engine, rng, f, func(cache.LineAddr) int { return 0 })
	dir := coherence.NewDirectory(0, coherence.PaperDir(), engine, f, func(int) int { return 0 })
	f.l1, f.dir = l1, dir
	engine.Register(l1)
	engine.Register(dir)
	sync := &syncStub{engine: engine}
	finished := false
	core := cpu.New(0, cpu.PaperCore(), engine, l1, &opStream{ops: ops}, sync,
		func(int, sim.Cycle) { finished = true })
	core.Start()
	return core, engine, sync, &finished
}

func TestComputeTiming(t *testing.T) {
	core, engine, _, finished := rig(t, []cpu.Op{
		{Kind: cpu.OpCompute, Cycles: 10},
		{Kind: cpu.OpCompute, Cycles: 5},
	})
	engine.Run(14)
	if *finished {
		t.Fatal("finished too early")
	}
	engine.Run(20)
	if !*finished {
		t.Fatal("never finished")
	}
	if core.Stats().ComputeCyc != 15 {
		t.Fatalf("compute cycles = %d", core.Stats().ComputeCyc)
	}
}

func TestLoadBlocksUntilFill(t *testing.T) {
	core, engine, _, finished := rig(t, []cpu.Op{
		{Kind: cpu.OpLoad, Addr: 0x10},
	})
	engine.Run(3)
	if *finished {
		t.Fatal("a miss cannot complete in 3 cycles")
	}
	engine.Run(200)
	if !*finished {
		t.Fatal("load never completed")
	}
	if core.Stats().StallLoad == 0 {
		t.Fatal("load stall cycles must be recorded")
	}
	if core.Stats().LoadLatency.N() != 1 {
		t.Fatal("load latency must be sampled")
	}
}

func TestStoresDoNotBlock(t *testing.T) {
	var ops []cpu.Op
	for i := 0; i < 8; i++ {
		ops = append(ops, cpu.Op{Kind: cpu.OpStore, Addr: cache.LineAddr(0x20 + i)})
	}
	core, engine, _, _ := rig(t, ops)
	// All 8 stores issue within ~16 cycles even though each miss takes
	// tens of cycles.
	engine.Run(20)
	if core.Stats().Stores != 8 {
		t.Fatalf("issued %d stores in 20 cycles, want 8 (non-blocking)", core.Stats().Stores)
	}
}

func TestStoreBufferLimitStalls(t *testing.T) {
	var ops []cpu.Op
	for i := 0; i < 24; i++ {
		ops = append(ops, cpu.Op{Kind: cpu.OpStore, Addr: cache.LineAddr(0x40 + i)})
	}
	core, engine, _, finished := rig(t, ops)
	engine.Run(20)
	if core.Stats().Stores >= 24 {
		t.Fatal("a 16-entry store buffer cannot absorb 24 misses instantly")
	}
	engine.Run(3000)
	if !*finished {
		t.Fatal("stores never drained")
	}
	if core.Stats().StallStore == 0 {
		t.Fatal("store-buffer stalls must be recorded")
	}
}

func TestSyncDrainsStores(t *testing.T) {
	_, engine, sync, finished := rig(t, []cpu.Op{
		{Kind: cpu.OpStore, Addr: 0x60},
		{Kind: cpu.OpBarrier, ID: 0},
	})
	// The barrier must not be entered until the store drains.
	engine.Run(2)
	if sync.barriers != 0 {
		t.Fatal("barrier entered before the store buffer drained")
	}
	engine.Run(3000)
	if sync.barriers != 1 || !*finished {
		t.Fatalf("barriers=%d finished=%v", sync.barriers, *finished)
	}
}

func TestLockOpsRouteToFabric(t *testing.T) {
	core, engine, sync, finished := rig(t, []cpu.Op{
		{Kind: cpu.OpLockAcquire, ID: 3},
		{Kind: cpu.OpCompute, Cycles: 2},
		{Kind: cpu.OpLockRelease, ID: 3},
	})
	engine.Run(100)
	if sync.acquires != 1 || sync.releases != 1 {
		t.Fatalf("acquires=%d releases=%d", sync.acquires, sync.releases)
	}
	if !*finished {
		t.Fatal("never finished")
	}
	if core.Stats().LockAcquires != 1 {
		t.Fatal("lock stat missing")
	}
	if core.Stats().StallSync == 0 {
		t.Fatal("sync stall cycles must be recorded")
	}
}

func TestFinishWaitsForStores(t *testing.T) {
	core, engine, _, finished := rig(t, []cpu.Op{
		{Kind: cpu.OpStore, Addr: 0x70},
	})
	engine.Run(2)
	if *finished {
		t.Fatal("cannot finish with a store in flight")
	}
	engine.Run(3000)
	if !*finished || !core.Done() {
		t.Fatal("never finished")
	}
	if core.Stats().FinishCycle == 0 {
		t.Fatal("finish cycle must be recorded")
	}
}

func TestOpsCounted(t *testing.T) {
	core, engine, _, _ := rig(t, []cpu.Op{
		{Kind: cpu.OpCompute, Cycles: 1},
		{Kind: cpu.OpLoad, Addr: 0x80},
		{Kind: cpu.OpStore, Addr: 0x80},
	})
	engine.Run(2000)
	st := core.Stats()
	if st.Ops != 3 || st.Loads != 1 || st.Stores != 1 {
		t.Fatalf("ops=%d loads=%d stores=%d", st.Ops, st.Loads, st.Stores)
	}
}
