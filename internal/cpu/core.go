// Package cpu models the processor cores driving the memory hierarchy: a
// sequential timing core with a store buffer, blocking loads, and
// synchronization operations delegated to a pluggable fabric (coherent
// ll/sc spinning or the §5.1 confirmation-channel path).
//
// The paper runs Alpha binaries on an adapted SimpleScalar; here the
// instruction stream is replaced by workload-generated operation streams
// (see internal/workload), preserving the traffic the interconnect study
// depends on — see DESIGN.md's substitution table.
package cpu

import (
	"fsoi/internal/cache"
	"fsoi/internal/coherence"
	"fsoi/internal/sim"
	"fsoi/internal/stats"
)

// OpKind enumerates core operations.
type OpKind int

// Operation kinds.
const (
	OpCompute OpKind = iota
	OpLoad
	OpStore
	OpLockAcquire
	OpLockRelease
	OpBarrier
)

// Op is one unit of work for a core.
type Op struct {
	Kind   OpKind
	Addr   cache.LineAddr // loads/stores
	Cycles int            // compute duration
	ID     int            // lock or barrier id
}

// Stream supplies a core's operations. Next returns false when the
// thread has finished its work.
type Stream interface {
	Next() (Op, bool)
}

// SyncFabric executes synchronization operations; the system layer
// provides either the coherent-spinning implementation or the
// confirmation-channel implementation depending on network capabilities.
type SyncFabric interface {
	Acquire(core int, id int, done func(now sim.Cycle))
	Release(core int, id int, done func(now sim.Cycle))
	Barrier(core int, id int, done func(now sim.Cycle))
}

// Config sizes a core.
type Config struct {
	StoreBuffer int // outstanding stores tolerated before stalling (16)
}

// PaperCore returns the evaluation core model.
func PaperCore() Config { return Config{StoreBuffer: 16} }

// Stats counts core activity.
type Stats struct {
	Ops          int64
	Loads        int64
	Stores       int64
	ComputeCyc   int64
	LockAcquires int64
	Barriers     int64
	StallLoad    int64 // cycles blocked on loads
	StallStore   int64
	StallSync    int64
	FinishCycle  sim.Cycle
	LoadLatency  stats.Summary
}

// Core is one processor.
type Core struct {
	id     int
	cfg    Config
	engine sim.Scheduler
	l1     *coherence.L1
	stream Stream
	sync   SyncFabric
	stats  Stats

	storesOut int
	storeWait func(now sim.Cycle) // resume when a store drains
	done      bool
	onFinish  func(core int, now sim.Cycle)
}

// New builds a core; onFinish fires once when the stream is exhausted and
// all stores have drained.
func New(id int, cfg Config, engine sim.Scheduler, l1 *coherence.L1, stream Stream, sync SyncFabric, onFinish func(int, sim.Cycle)) *Core {
	return &Core{id: id, cfg: cfg, engine: engine, l1: l1, stream: stream, sync: sync, onFinish: onFinish}
}

// Stats exposes the counters.
func (c *Core) Stats() *Stats { return &c.stats }

// Done reports completion.
func (c *Core) Done() bool { return c.done }

// Start begins execution at the current cycle.
func (c *Core) Start() {
	c.engine.After(0, func(now sim.Cycle) { c.step(now) })
}

// step executes the next operation.
func (c *Core) step(now sim.Cycle) {
	op, ok := c.stream.Next()
	if !ok {
		c.finish(now)
		return
	}
	c.stats.Ops++
	switch op.Kind {
	case OpCompute:
		c.stats.ComputeCyc += int64(op.Cycles)
		c.engine.After(sim.Cycle(op.Cycles), c.step)
	case OpLoad:
		c.stats.Loads++
		start := now
		c.l1.AccessRetry(op.Addr, false, func(at sim.Cycle) {
			c.stats.StallLoad += int64(at - start)
			c.stats.LoadLatency.Add(float64(at - start))
			c.step(at)
		})
	case OpStore:
		c.stats.Stores++
		if c.storesOut >= c.cfg.StoreBuffer {
			// Store buffer full: block until one drains.
			start := now
			c.storeWait = func(at sim.Cycle) {
				c.stats.StallStore += int64(at - start)
				c.issueStore(op.Addr, at)
				c.step(at + 1)
			}
			return
		}
		c.issueStore(op.Addr, now)
		c.engine.After(1, c.step)
	case OpLockAcquire:
		c.stats.LockAcquires++
		c.drainThen(now, func(at sim.Cycle) {
			start := at
			c.sync.Acquire(c.id, op.ID, func(end sim.Cycle) {
				c.stats.StallSync += int64(end - start)
				c.step(end)
			})
		})
	case OpLockRelease:
		c.drainThen(now, func(at sim.Cycle) {
			c.sync.Release(c.id, op.ID, c.step)
		})
	case OpBarrier:
		c.stats.Barriers++
		c.drainThen(now, func(at sim.Cycle) {
			start := at
			c.sync.Barrier(c.id, op.ID, func(end sim.Cycle) {
				c.stats.StallSync += int64(end - start)
				c.step(end)
			})
		})
	}
}

// issueStore fires a non-blocking store through the L1.
func (c *Core) issueStore(addr cache.LineAddr, now sim.Cycle) {
	c.storesOut++
	c.l1.AccessRetry(addr, true, func(at sim.Cycle) {
		c.storesOut--
		if w := c.storeWait; w != nil && c.storesOut < c.cfg.StoreBuffer {
			c.storeWait = nil
			w(at)
		}
	})
}

// drainThen waits for the store buffer to empty (release consistency at
// synchronization points) before running fn.
func (c *Core) drainThen(now sim.Cycle, fn func(now sim.Cycle)) {
	if c.storesOut == 0 {
		fn(now)
		return
	}
	c.engine.After(1, func(at sim.Cycle) { c.drainThen(at, fn) })
}

// finish completes the thread once stores drain.
func (c *Core) finish(now sim.Cycle) {
	if c.storesOut > 0 {
		c.engine.After(1, c.finish)
		return
	}
	if c.done {
		return
	}
	c.done = true
	c.stats.FinishCycle = now
	if c.onFinish != nil {
		c.onFinish(c.id, now)
	}
}
