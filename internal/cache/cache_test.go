package cache

import (
	"testing"
	"testing/quick"
)

func TestLookupMissOnEmpty(t *testing.T) {
	c := New(16, 2)
	if c.Lookup(5) != nil {
		t.Fatal("empty cache should miss")
	}
}

func TestInstallThenLookup(t *testing.T) {
	c := New(16, 2)
	c.Install(5, Shared)
	l := c.Lookup(5)
	if l == nil || l.State != Shared || l.Addr != 5 {
		t.Fatalf("lookup after install: %+v", l)
	}
}

func TestInstallSameLineUpdatesInPlace(t *testing.T) {
	c := New(16, 2)
	c.Install(5, Shared)
	ev := c.Install(5, Modified)
	if ev.State != Invalid {
		t.Fatalf("reinstall must not evict: %+v", ev)
	}
	count := 0
	for _, a := range []LineAddr{5} {
		if c.Peek(a) != nil {
			count++
		}
	}
	if count != 1 || c.Peek(5).State != Modified {
		t.Fatal("line must exist exactly once with updated state")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(4, 2) // 2 sets x 2 ways
	// Set 0 holds even addresses.
	c.Install(0, Exclusive)
	c.Install(2, Exclusive)
	c.Lookup(0) // refresh 0; 2 becomes LRU
	ev := c.Install(4, Exclusive)
	if ev.Addr != 2 || ev.State != Exclusive {
		t.Fatalf("evicted %+v, want line 2", ev)
	}
	if c.Peek(0) == nil || c.Peek(4) == nil || c.Peek(2) != nil {
		t.Fatal("wrong set contents after eviction")
	}
}

func TestInvalidWayPreferred(t *testing.T) {
	c := New(4, 2)
	c.Install(0, Modified)
	ev := c.Install(2, Shared)
	if ev.State != Invalid {
		t.Fatalf("installing into a free way must not evict: %+v", ev)
	}
}

func TestInvalidate(t *testing.T) {
	c := New(16, 2)
	c.Install(5, Modified)
	if st := c.Invalidate(5); st != Modified {
		t.Fatalf("Invalidate returned %v", st)
	}
	if c.Peek(5) != nil {
		t.Fatal("line still present after invalidate")
	}
	if st := c.Invalidate(5); st != Invalid {
		t.Fatal("double invalidate should report Invalid")
	}
}

func TestSetIsolation(t *testing.T) {
	c := New(8, 2) // 4 sets
	for a := LineAddr(0); a < 4; a++ {
		c.Install(a, Shared)
	}
	for a := LineAddr(0); a < 4; a++ {
		if c.Peek(a) == nil {
			t.Fatalf("line %d displaced from its own set", a)
		}
	}
}

func TestCapacityInvariant(t *testing.T) {
	err := quick.Check(func(addrs []uint16) bool {
		c := New(32, 4)
		for _, a := range addrs {
			c.Install(LineAddr(a), Shared)
		}
		// Count resident lines; must never exceed capacity, and no
		// duplicates.
		seen := map[LineAddr]bool{}
		count := 0
		for _, a := range addrs {
			l := c.Peek(LineAddr(a))
			if l != nil && !seen[l.Addr] {
				seen[l.Addr] = true
				count++
			}
		}
		return count <= 32
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	for _, bad := range [][2]int{{0, 1}, {7, 2}, {12, 5}} {
		func() {
			defer func() { recover() }()
			New(bad[0], bad[1])
			t.Errorf("New(%d,%d) should panic", bad[0], bad[1])
		}()
	}
}

func TestStateStrings(t *testing.T) {
	want := map[State]string{Invalid: "I", Shared: "S", Exclusive: "E", Modified: "M"}
	for st, s := range want {
		if st.String() != s {
			t.Errorf("%v.String() = %q", st, st.String())
		}
	}
}

func TestMSHRBasics(t *testing.T) {
	m := NewMSHR(2)
	if m.Full() {
		t.Fatal("fresh MSHR should not be full")
	}
	e := m.Allocate(10, true)
	if e.Addr != 10 || !e.ForWrite || e.Waiters != 1 {
		t.Fatalf("entry: %+v", e)
	}
	if m.Lookup(10) != e {
		t.Fatal("lookup should find the entry")
	}
	m.Allocate(11, false)
	if !m.Full() {
		t.Fatal("2-entry MSHR should be full")
	}
	m.Release(10)
	if m.Outstanding() != 1 || m.Lookup(10) != nil {
		t.Fatal("release failed")
	}
}

func TestMSHRDuplicatePanics(t *testing.T) {
	m := NewMSHR(4)
	m.Allocate(1, false)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate allocation must panic")
		}
	}()
	m.Allocate(1, true)
}

func TestMSHROverflowPanics(t *testing.T) {
	m := NewMSHR(1)
	m.Allocate(1, false)
	defer func() {
		if recover() == nil {
			t.Fatal("overflow must panic")
		}
	}()
	m.Allocate(2, false)
}
