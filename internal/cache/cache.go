// Package cache provides the set-associative cache arrays and miss
// tracking used by the L1 controllers and L2 slices. Lines are tracked at
// 64-byte granularity (the paper's L2 line size; the 32-byte L1 lines of
// Table 3 are unified to 64 bytes here to avoid sub-line coherence —
// recorded as a substitution in DESIGN.md).
package cache

import "fmt"

// LineSize is the coherence granularity in bytes.
const LineSize = 64

// LineAddr is a line-granular address (byte address >> 6).
type LineAddr uint64

// State is a MESI line state as held by an L1 cache.
type State uint8

// MESI stable states. Transient states live in the controllers, not the
// array.
const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

// String names the state.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Line is one resident cache line.
type Line struct {
	Addr  LineAddr
	State State
	lru   uint64
}

// Cache is a set-associative array with LRU replacement.
type Cache struct {
	sets    [][]Line
	ways    int
	setMask uint64
	clock   uint64
}

// New builds a cache with the given capacity in lines and associativity.
// Lines must be a power-of-two multiple of ways.
func New(lines, ways int) *Cache {
	if lines <= 0 || ways <= 0 || lines%ways != 0 {
		panic("cache: capacity must be a positive multiple of ways")
	}
	nsets := lines / ways
	if nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d is not a power of two", nsets))
	}
	c := &Cache{ways: ways, setMask: uint64(nsets - 1)}
	c.sets = make([][]Line, nsets)
	for i := range c.sets {
		c.sets[i] = make([]Line, ways)
	}
	return c
}

// NumLines reports the total capacity in lines.
func (c *Cache) NumLines() int { return len(c.sets) * c.ways }

func (c *Cache) set(addr LineAddr) []Line {
	return c.sets[uint64(addr)&c.setMask]
}

// Lookup returns the resident line for addr, or nil. It refreshes LRU.
func (c *Cache) Lookup(addr LineAddr) *Line {
	for i := range c.set(addr) {
		l := &c.set(addr)[i]
		if l.State != Invalid && l.Addr == addr {
			c.clock++
			l.lru = c.clock
			return l
		}
	}
	return nil
}

// Peek returns the resident line without touching LRU.
func (c *Cache) Peek(addr LineAddr) *Line {
	for i := range c.set(addr) {
		l := &c.set(addr)[i]
		if l.State != Invalid && l.Addr == addr {
			return l
		}
	}
	return nil
}

// Victim returns the line that would be evicted to make room for addr:
// an invalid way if one exists, else the LRU way. The returned pointer
// aliases the array; the caller installs the new line through it.
func (c *Cache) Victim(addr LineAddr) *Line {
	set := c.set(addr)
	var victim *Line
	for i := range set {
		l := &set[i]
		if l.State == Invalid {
			return l
		}
		if victim == nil || l.lru < victim.lru {
			victim = l
		}
	}
	return victim
}

// Install places addr in the array with the given state, returning the
// evicted line's previous contents (Addr valid only when State !=
// Invalid). If addr is already resident its state is updated in place —
// a set must never hold two copies of one line.
func (c *Cache) Install(addr LineAddr, st State) (evicted Line) {
	c.clock++
	if l := c.Peek(addr); l != nil {
		l.State = st
		l.lru = c.clock
		return Line{}
	}
	v := c.Victim(addr)
	evicted = *v
	*v = Line{Addr: addr, State: st, lru: c.clock}
	return evicted
}

// Invalidate removes addr if resident, reporting its prior state.
func (c *Cache) Invalidate(addr LineAddr) State {
	if l := c.Peek(addr); l != nil {
		st := l.State
		l.State = Invalid
		return st
	}
	return Invalid
}

// MSHR tracks outstanding misses and merges requests to the same line.
type MSHR struct {
	entries map[LineAddr]*MSHREntry
	max     int
}

// MSHREntry is one outstanding miss.
type MSHREntry struct {
	Addr     LineAddr
	ForWrite bool
	Waiters  int // merged accesses waiting on this fill
}

// NewMSHR builds a miss-status file with max entries.
func NewMSHR(max int) *MSHR {
	return &MSHR{entries: make(map[LineAddr]*MSHREntry), max: max}
}

// Lookup returns the entry for addr, if any.
func (m *MSHR) Lookup(addr LineAddr) *MSHREntry { return m.entries[addr] }

// Full reports whether a new miss can be accepted.
func (m *MSHR) Full() bool { return len(m.entries) >= m.max }

// Allocate registers a new outstanding miss. It panics if addr is already
// present or the file is full; callers check first.
func (m *MSHR) Allocate(addr LineAddr, forWrite bool) *MSHREntry {
	if m.Full() {
		panic("cache: MSHR overflow")
	}
	if m.entries[addr] != nil {
		panic("cache: duplicate MSHR allocation")
	}
	e := &MSHREntry{Addr: addr, ForWrite: forWrite, Waiters: 1}
	m.entries[addr] = e
	return e
}

// Release removes the entry for addr.
func (m *MSHR) Release(addr LineAddr) {
	delete(m.entries, addr)
}

// Outstanding reports the number of active entries.
func (m *MSHR) Outstanding() int { return len(m.entries) }
