// Package corona models a Corona-style nanophotonic crossbar (Vantrease
// et al., ISCA 2008) as the related-work baseline of §7.1: every
// destination owns a WDM channel on a shared waveguide, and senders
// arbitrate for it with an optical token that circulates at light speed.
// There is no packet switching and no collision — the cost is the token
// wait plus channel serialization.
//
// The paper reports FSOI about 1.06x faster than a corona-style design in
// the 64-way system; this model captures the arbitration latency that
// drives the gap.
package corona

import (
	"fsoi/internal/noc"
	"fsoi/internal/sim"
)

// Config parameterizes the crossbar.
type Config struct {
	Nodes int
	// TokenRoundTrip is the time for a channel's token to circulate the
	// full ring, in core cycles (Corona's waveguide loops the die).
	TokenRoundTrip float64
	// MetaCycles / DataCycles are the channel serialization times.
	MetaCycles int
	DataCycles int
	// FlightCycles is the propagation delay after grant.
	FlightCycles int
	InjectQueue  int
}

// PaperCorona returns a 64-node configuration with bandwidth comparable
// to the FSOI lanes.
func PaperCorona(nodes int) Config {
	return Config{
		Nodes:          nodes,
		TokenRoundTrip: 8,
		MetaCycles:     2,
		DataCycles:     5,
		FlightCycles:   1,
		InjectQueue:    16,
	}
}

// channel is the per-destination shared medium.
type channel struct {
	waiting  []*noc.Packet // FIFO per requesting order
	busyTill sim.Cycle
	armed    bool // a grant event is scheduled
}

// Network is the token-arbitrated crossbar.
type Network struct {
	cfg       Config
	engine    *sim.Engine
	deliverFn noc.DeliveryFunc
	lat       noc.LatencyStats
	channels  []*channel
	queued    []int // per-node injected count (for queue bound)
	TokenWait stats
}

// stats is a tiny mean accumulator for token waits.
type stats struct {
	n   int64
	sum float64
}

// Mean reports the average token wait in cycles.
func (s stats) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// New builds the crossbar.
func New(cfg Config, engine *sim.Engine) *Network {
	n := &Network{cfg: cfg, engine: engine}
	n.channels = make([]*channel, cfg.Nodes)
	for i := range n.channels {
		n.channels[i] = &channel{}
	}
	n.queued = make([]int, cfg.Nodes)
	return n
}

// Name identifies the configuration.
func (n *Network) Name() string { return "corona" }

// LatencyStats exposes accumulated measurements.
func (n *Network) LatencyStats() *noc.LatencyStats { return &n.lat }

// SetDelivery installs the destination callback.
func (n *Network) SetDelivery(fn noc.DeliveryFunc) { n.deliverFn = fn }

// tokenRate returns token positions advanced per cycle.
func (n *Network) tokenRate() float64 {
	return float64(n.cfg.Nodes) / n.cfg.TokenRoundTrip
}

// tokenWait returns the cycles until the token of channel dst reaches
// node src, at or after cycle t.
func (n *Network) tokenWait(src, dst int, t sim.Cycle) float64 {
	rate := n.tokenRate()
	pos := float64(t) * rate
	cur := int(pos) % n.cfg.Nodes
	dist := (src - cur + n.cfg.Nodes) % n.cfg.Nodes
	return float64(dist) / rate
}

// Send enqueues a packet; arbitration is event-driven per channel.
func (n *Network) Send(p *noc.Packet) bool {
	if n.queued[p.Src] >= n.cfg.InjectQueue {
		return false
	}
	n.queued[p.Src]++
	p.Created = n.engine.Now()
	ch := n.channels[p.Dst]
	ch.waiting = append(ch.waiting, p)
	n.arm(p.Dst)
	return true
}

// arm schedules the next grant on channel dst if not already pending.
func (n *Network) arm(dst int) {
	ch := n.channels[dst]
	if ch.armed || len(ch.waiting) == 0 {
		return
	}
	now := n.engine.Now()
	start := ch.busyTill
	if start < now {
		start = now
	}
	// The oldest waiter grabs the token when it next passes its station.
	p := ch.waiting[0]
	wait := n.tokenWait(p.Src, dst, start)
	n.TokenWait.n++
	n.TokenWait.sum += wait
	grant := start + sim.Cycle(wait+0.9999)
	ch.armed = true
	n.engine.At(grant, func(at sim.Cycle) {
		ch.armed = false
		n.grant(dst, at)
	})
}

// grant transmits the head packet on channel dst.
func (n *Network) grant(dst int, now sim.Cycle) {
	ch := n.channels[dst]
	if len(ch.waiting) == 0 {
		return
	}
	p := ch.waiting[0]
	ch.waiting = ch.waiting[1:]
	ser := n.cfg.MetaCycles
	if p.Type == noc.Data {
		ser = n.cfg.DataCycles
	}
	ch.busyTill = now + sim.Cycle(ser)
	p.QueuingDelay = int64(now - p.Created)
	p.NetworkDelay = int64(ser + n.cfg.FlightCycles)
	done := ch.busyTill + sim.Cycle(n.cfg.FlightCycles)
	n.queued[p.Src]--
	n.engine.At(done, func(at sim.Cycle) {
		n.lat.Record(p)
		if n.deliverFn != nil {
			n.deliverFn(p, at)
		}
	})
	n.arm(dst)
}

// Tick is a no-op; the crossbar is fully event-driven.
func (n *Network) Tick(now sim.Cycle) {}
