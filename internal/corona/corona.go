// Package corona models the family of waveguide-based optical crossbars
// the FSOI design is compared against: the Corona-style token crossbar
// (Vantrease et al., ISCA 2008) of §7.1, plus the matrix/λ-router and
// snake/SWMR WDM variants of the comparative study in arXiv:1512.07492.
// All three share one event machinery — per-channel FIFOs with
// serialization and flight delay — and differ only in how packets map
// onto channels and how senders acquire one:
//
//   - ArbToken (Corona): every destination owns a WDM channel on a
//     shared waveguide; senders arbitrate with an optical token that
//     circulates at light speed. No packet switching, no collisions —
//     the cost is the token wait plus channel serialization.
//   - ArbWavelength (matrix/λ-router): every (src, dst) pair owns a
//     dedicated wavelength route through the ring matrix, so the fabric
//     is fully non-blocking; only the channel's own serialization
//     limits it. The price is paid in the physical layer (n² rings and
//     the worst-case crossing loss internal/optics/losses.go budgets).
//   - ArbSourceOwned (snake/SWMR): every source owns one broadcast
//     channel that snakes past all readers, so a source's packets
//     serialize regardless of destination. The price is the 1:n
//     broadcast split loss in the physical layer.
//
// The paper reports FSOI about 1.06x faster than a corona-style design
// in the 64-way system; the token model captures the arbitration
// latency that drives the gap, and the WDM variants bound it from the
// contention-free side.
package corona

import (
	"fsoi/internal/noc"
	"fsoi/internal/obs"
	"fsoi/internal/sim"
	"fsoi/internal/stats"
)

// Arbitration selects how senders acquire a channel — the resource the
// crossbar serializes on.
type Arbitration int

// Crossbar arbitration modes.
const (
	// ArbToken is the Corona MWSR crossbar: one channel per destination,
	// writers arbitrate with a circulating optical token.
	ArbToken Arbitration = iota
	// ArbWavelength is the matrix/λ-router crossbar: one dedicated
	// channel per (src, dst) pair, contention-free.
	ArbWavelength
	// ArbSourceOwned is the snake/SWMR crossbar: one broadcast channel
	// per source; its packets serialize regardless of destination.
	ArbSourceOwned
)

// Config parameterizes the crossbar.
type Config struct {
	Nodes int
	// Label names the configuration through noc.Network.Name().
	Label string
	// Arb selects the channel topology and arbitration model.
	Arb Arbitration
	// TokenRoundTrip is the time for a channel's token to circulate the
	// full ring, in core cycles (Corona's waveguide loops the die).
	// Used only under ArbToken.
	TokenRoundTrip float64
	// MetaCycles / DataCycles are the channel serialization times.
	MetaCycles int
	DataCycles int
	// FlightCycles is the propagation delay after grant.
	FlightCycles int
	InjectQueue  int
}

// PaperCorona returns a 64-node token-crossbar configuration with
// bandwidth comparable to the FSOI lanes.
func PaperCorona(nodes int) Config {
	return Config{
		Nodes:          nodes,
		Label:          "corona",
		Arb:            ArbToken,
		TokenRoundTrip: 8,
		MetaCycles:     2,
		DataCycles:     5,
		FlightCycles:   1,
		InjectQueue:    16,
	}
}

// MatrixCrossbar returns the matrix/λ-router variant: same serialization
// and flight budget as the token crossbar, but fully non-blocking.
func MatrixCrossbar(nodes int) Config {
	c := PaperCorona(nodes)
	c.Label = "matrix"
	c.Arb = ArbWavelength
	return c
}

// SnakeCrossbar returns the snake/SWMR variant: same serialization and
// flight budget, one broadcast channel per source.
func SnakeCrossbar(nodes int) Config {
	c := PaperCorona(nodes)
	c.Label = "snake"
	c.Arb = ArbSourceOwned
	return c
}

// channels returns how many independent channels the arbitration mode
// provides.
func (c Config) channels() int {
	if c.Arb == ArbWavelength {
		return c.Nodes * c.Nodes
	}
	return c.Nodes
}

// channelOf maps a packet onto its serializing channel.
func (c Config) channelOf(p *noc.Packet) int {
	switch c.Arb {
	case ArbWavelength:
		return p.Src*c.Nodes + p.Dst
	case ArbSourceOwned:
		return p.Src
	}
	return p.Dst
}

// channel is the per-channel shared medium.
type channel struct {
	waiting  []*noc.Packet // FIFO per requesting order
	busyTill sim.Cycle
	armed    bool // a grant event is scheduled
}

// Network is the event-driven crossbar.
type Network struct {
	cfg       Config
	engine    sim.Scheduler
	deliverFn noc.DeliveryFunc
	lat       noc.LatencyStats
	channels  []*channel
	queued    []int         // per-node injected count (for queue bound)
	obs       *obs.Recorder // nil unless lifecycle tracing is on
	// TokenWait accumulates the per-grant token wait in cycles
	// (ArbToken only; the WDM variants never wait for a grant).
	TokenWait stats.Summary
}

// New builds the crossbar.
func New(cfg Config, engine sim.Scheduler) *Network {
	n := &Network{cfg: cfg, engine: engine}
	n.channels = make([]*channel, cfg.channels())
	for i := range n.channels {
		n.channels[i] = &channel{}
	}
	n.queued = make([]int, cfg.Nodes)
	return n
}

// Name identifies the configuration.
func (n *Network) Name() string {
	if n.cfg.Label == "" {
		return "corona"
	}
	return n.cfg.Label
}

// LatencyStats exposes accumulated measurements.
func (n *Network) LatencyStats() *noc.LatencyStats { return &n.lat }

// Lookahead declares the crossbar's cross-shard window: a delivery is
// never sooner than the shortest serialization plus ring flight.
func (n *Network) Lookahead() sim.Cycle {
	la := sim.Cycle(n.cfg.MetaCycles + n.cfg.FlightCycles)
	if la < 1 {
		return 1
	}
	return la
}

// SetDelivery installs the destination callback.
func (n *Network) SetDelivery(fn noc.DeliveryFunc) { n.deliverFn = fn }

// SetObserver attaches a lifecycle-event recorder. The crossbars emit
// tx-start events when a packet's serialization begins (injection and
// delivery come from the system layer); with no recorder attached every
// emission site is a single nil check.
func (n *Network) SetObserver(r *obs.Recorder) { n.obs = r }

// tokenRate returns token positions advanced per cycle.
func (n *Network) tokenRate() float64 {
	return float64(n.cfg.Nodes) / n.cfg.TokenRoundTrip
}

// tokenWait returns the cycles until the token of channel dst reaches
// node src, at or after cycle t.
func (n *Network) tokenWait(src, dst int, t sim.Cycle) float64 {
	rate := n.tokenRate()
	pos := float64(t) * rate
	cur := int(pos) % n.cfg.Nodes
	dist := (src - cur + n.cfg.Nodes) % n.cfg.Nodes
	return float64(dist) / rate
}

// Send enqueues a packet; arbitration is event-driven per channel.
func (n *Network) Send(p *noc.Packet) bool {
	if n.queued[p.Src] >= n.cfg.InjectQueue {
		return false
	}
	n.queued[p.Src]++
	p.Created = n.engine.Now()
	ch := n.channels[n.cfg.channelOf(p)]
	ch.waiting = append(ch.waiting, p)
	n.arm(ch)
	return true
}

// arm schedules the next grant on the channel if not already pending.
func (n *Network) arm(ch *channel) {
	if ch.armed || len(ch.waiting) == 0 {
		return
	}
	now := n.engine.Now()
	start := ch.busyTill
	if start < now {
		start = now
	}
	p := ch.waiting[0]
	var wait float64
	if n.cfg.Arb == ArbToken {
		// The oldest waiter grabs the token when it next passes its
		// station; the WDM variants own their channel outright.
		wait = n.tokenWait(p.Src, p.Dst, start)
		n.TokenWait.Add(wait)
	}
	grant := start + sim.Cycle(wait+0.9999)
	ch.armed = true
	// A channel is the shared arbitration medium itself, not any node's
	// state: it has no owning shard for ScheduleAt to route to. The
	// exact engine serializes every event by global (cycle, seq), so
	// arm/grant ordering is identical at any shard count.
	n.engine.At(grant, func(at sim.Cycle) { //lint:allow shardsafety channel arbitration state is the shared medium, serialized by the exact engine's global order
		ch.armed = false
		n.grant(ch, at)
	})
}

// grant transmits the head packet on the channel.
func (n *Network) grant(ch *channel, now sim.Cycle) {
	if len(ch.waiting) == 0 {
		return
	}
	p := ch.waiting[0]
	ch.waiting = ch.waiting[1:]
	ser := n.cfg.MetaCycles
	if p.Type == noc.Data {
		ser = n.cfg.DataCycles
	}
	ch.busyTill = now + sim.Cycle(ser)
	p.QueuingDelay = int64(now - p.Created)
	p.NetworkDelay = int64(ser + n.cfg.FlightCycles)
	if n.obs != nil {
		n.obs.Emit(obs.Event{
			At: now, Kind: obs.KindTxStart, ID: p.ID,
			Src: int32(p.Src), Dst: int32(p.Dst),
			Class: uint8(p.Type), Lane: int8(p.Type),
		})
	}
	done := ch.busyTill + sim.Cycle(n.cfg.FlightCycles)
	n.queued[p.Src]--
	noc.ScheduleAt(n.engine, p.Dst, done, func(at sim.Cycle) {
		n.lat.Record(p)
		if n.deliverFn != nil {
			n.deliverFn(p, at)
		}
	})
	n.arm(ch)
}

// Tick is a no-op; the crossbar is fully event-driven.
func (n *Network) Tick(now sim.Cycle) {}
