package corona

import (
	"testing"

	"fsoi/internal/noc"
	"fsoi/internal/sim"
)

func testNet(t *testing.T) (*Network, *sim.Engine, *[]*noc.Packet) {
	t.Helper()
	engine := sim.NewEngine()
	n := New(PaperCorona(64), engine)
	delivered := &[]*noc.Packet{}
	n.SetDelivery(func(p *noc.Packet, now sim.Cycle) { *delivered = append(*delivered, p) })
	engine.Register(sim.TickFunc(n.Tick))
	return n, engine, delivered
}

func TestDeliveryIncludesTokenWait(t *testing.T) {
	n, engine, delivered := testNet(t)
	p := &noc.Packet{Src: 32, Dst: 5, Type: noc.Meta}
	n.Send(p)
	engine.Run(50)
	if len(*delivered) != 1 {
		t.Fatal("packet lost")
	}
	// Token circulates 64 positions in 8 cycles; max wait 8 cycles, plus
	// 2-cycle serialization and 1-cycle flight.
	if p.TotalLatency() < 3 || p.TotalLatency() > 14 {
		t.Fatalf("latency = %d", p.TotalLatency())
	}
}

func TestChannelSerializesSenders(t *testing.T) {
	n, engine, delivered := testNet(t)
	for src := 1; src <= 6; src++ {
		n.Send(&noc.Packet{Src: src, Dst: 0, Type: noc.Data})
	}
	engine.Run(500)
	if len(*delivered) != 6 {
		t.Fatalf("delivered %d of 6", len(*delivered))
	}
	// Six 5-cycle transmissions cannot all finish within one channel's
	// first 10 cycles: check the last delivery shows queueing.
	var maxLat int64
	for _, p := range *delivered {
		if p.TotalLatency() > maxLat {
			maxLat = p.TotalLatency()
		}
	}
	if maxLat < 25 {
		t.Fatalf("max latency %d; channel must serialize the burst", maxLat)
	}
}

func TestDistinctChannelsRunInParallel(t *testing.T) {
	n, engine, delivered := testNet(t)
	for dst := 0; dst < 8; dst++ {
		n.Send(&noc.Packet{Src: 20, Dst: dst, Type: noc.Meta})
	}
	engine.Run(100)
	if len(*delivered) != 8 {
		t.Fatalf("delivered %d of 8", len(*delivered))
	}
}

func TestNoCollisionsEver(t *testing.T) {
	n, engine, delivered := testNet(t)
	rng := sim.NewRNG(11)
	sent := 0
	for cyc := 0; cyc < 2000; cyc++ {
		engine.Run(1)
		for i := 0; i < 4; i++ {
			if rng.Bool(0.2) {
				if n.Send(&noc.Packet{Src: rng.Intn(64), Dst: rng.Intn(64), Type: noc.Data}) {
					sent++
				}
			}
		}
	}
	engine.Run(20000)
	if len(*delivered) != sent {
		t.Fatalf("delivered %d of %d; token arbitration must never drop", len(*delivered), sent)
	}
	for _, p := range *delivered {
		if p.ResolutionDelay != 0 {
			t.Fatal("corona has no collisions to resolve")
		}
	}
}

func TestInjectQueueBound(t *testing.T) {
	n, _, _ := testNet(t)
	ok := 0
	for i := 0; i < 100; i++ {
		if n.Send(&noc.Packet{Src: 1, Dst: 2, Type: noc.Data}) {
			ok++
		}
	}
	if ok != PaperCorona(64).InjectQueue {
		t.Fatalf("accepted %d, want the queue bound", ok)
	}
}

func TestName(t *testing.T) {
	n, _, _ := testNet(t)
	if n.Name() != "corona" {
		t.Fatal("name wrong")
	}
}

func TestTokenWaitRecorded(t *testing.T) {
	n, engine, _ := testNet(t)
	n.Send(&noc.Packet{Src: 40, Dst: 1, Type: noc.Meta})
	engine.Run(40)
	if n.TokenWait.N() == 0 {
		t.Fatal("token wait must be sampled")
	}
	if m := n.TokenWait.Mean(); m < 0 || m > 8 {
		t.Fatalf("mean token wait %.1f outside one round trip", m)
	}
}

// variantNet builds a crossbar from an arbitrary config.
func variantNet(t *testing.T, cfg Config) (*Network, *sim.Engine, *[]*noc.Packet) {
	t.Helper()
	engine := sim.NewEngine()
	n := New(cfg, engine)
	delivered := &[]*noc.Packet{}
	n.SetDelivery(func(p *noc.Packet, now sim.Cycle) { *delivered = append(*delivered, p) })
	engine.Register(sim.TickFunc(n.Tick))
	return n, engine, delivered
}

func TestMatrixIsNonBlocking(t *testing.T) {
	n, engine, delivered := variantNet(t, MatrixCrossbar(64))
	// Six senders to one destination: dedicated (src,dst) wavelengths
	// mean none of them waits on another.
	for src := 1; src <= 6; src++ {
		n.Send(&noc.Packet{Src: src, Dst: 0, Type: noc.Data})
	}
	engine.Run(100)
	if len(*delivered) != 6 {
		t.Fatalf("delivered %d of 6", len(*delivered))
	}
	for _, p := range *delivered {
		// 5-cycle serialization + 1 flight, no queuing, no token.
		if p.TotalLatency() != 6 {
			t.Fatalf("matrix latency = %d, want contention-free 6", p.TotalLatency())
		}
	}
	if n.TokenWait.N() != 0 {
		t.Fatal("matrix crossbar must never sample a token wait")
	}
}

func TestSnakeSerializesPerSource(t *testing.T) {
	n, engine, delivered := variantNet(t, SnakeCrossbar(64))
	// One source to six distinct destinations: the source-owned snake
	// channel serializes them even though the destinations differ.
	for dst := 1; dst <= 6; dst++ {
		n.Send(&noc.Packet{Src: 0, Dst: dst, Type: noc.Data})
	}
	engine.Run(200)
	if len(*delivered) != 6 {
		t.Fatalf("delivered %d of 6", len(*delivered))
	}
	var maxLat int64
	for _, p := range *delivered {
		if p.TotalLatency() > maxLat {
			maxLat = p.TotalLatency()
		}
	}
	// Six 5-cycle transmissions back to back: the last waits ~25 cycles.
	if maxLat < 25 {
		t.Fatalf("max latency %d; source channel must serialize the burst", maxLat)
	}
}

func TestSnakeDistinctSourcesRunInParallel(t *testing.T) {
	n, engine, delivered := variantNet(t, SnakeCrossbar(64))
	for src := 0; src < 8; src++ {
		n.Send(&noc.Packet{Src: src, Dst: 63, Type: noc.Meta})
	}
	engine.Run(100)
	if len(*delivered) != 8 {
		t.Fatalf("delivered %d of 8", len(*delivered))
	}
	for _, p := range *delivered {
		// Per-source channels with per-source drop filters: concurrent
		// arrivals at one reader never queue behind each other.
		if p.TotalLatency() != 3 {
			t.Fatalf("snake latency = %d, want contention-free 3", p.TotalLatency())
		}
	}
}

func TestVariantNames(t *testing.T) {
	for _, tc := range []struct {
		cfg  Config
		want string
	}{
		{PaperCorona(16), "corona"},
		{MatrixCrossbar(16), "matrix"},
		{SnakeCrossbar(16), "snake"},
	} {
		n, _, _ := variantNet(t, tc.cfg)
		if n.Name() != tc.want {
			t.Fatalf("Name() = %q, want %q", n.Name(), tc.want)
		}
	}
}
