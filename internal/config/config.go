// Package config provides the JSON configuration surface of the
// simulator: a flat, documented schema that deserializes into a
// system.Config, so parameter studies can be scripted without
// recompiling (fsoisim -config study.json).
package config

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"fsoi/internal/core"
	"fsoi/internal/system"
)

// Spec is the serializable view of a simulation configuration. Zero
// fields inherit the paper defaults for the chosen node count and
// network, so a spec needs to mention only what it changes.
type Spec struct {
	Nodes   int     `json:"nodes"`           // 16 or 64
	Network string  `json:"network"`         // fsoi | mesh | L0 | Lr1 | Lr2 | corona
	App     string  `json:"app,omitempty"`   // workload name
	Scale   float64 `json:"scale,omitempty"` // workload scale factor
	Seed    uint64  `json:"seed,omitempty"`

	// FSOI knobs (ignored on other networks).
	MetaVCSELs    int      `json:"meta_vcsels,omitempty"`
	DataVCSELs    int      `json:"data_vcsels,omitempty"`
	Receivers     int      `json:"receivers,omitempty"`
	WindowW       float64  `json:"window_w,omitempty"`
	BackoffB      float64  `json:"backoff_b,omitempty"`
	OutQueue      int      `json:"out_queue,omitempty"`
	Optimizations *OptSpec `json:"optimizations,omitempty"`

	// Memory system.
	MemoryGBps float64 `json:"memory_gbps,omitempty"`
	Channels   int     `json:"memory_channels,omitempty"`

	// Mesh.
	RouterCycles      int     `json:"router_cycles,omitempty"`
	MeshBandwidthFrac float64 `json:"mesh_bandwidth_frac,omitempty"`

	// Diagnostics.
	TracePackets int `json:"trace_packets,omitempty"`
}

// OptSpec toggles the §5 optimizations; nil means all on (the paper
// default), a present struct specifies each explicitly.
type OptSpec struct {
	AckElision          bool `json:"ack_elision"`
	BooleanSubscription bool `json:"boolean_subscription"`
	ReceiverScheduling  bool `json:"receiver_scheduling"`
	WritebackSplit      bool `json:"writeback_split"`
	RetransmitHints     bool `json:"retransmit_hints"`
}

// networkKinds maps spec names to system kinds.
var networkKinds = map[string]system.NetworkKind{
	"fsoi": system.NetFSOI, "mesh": system.NetMesh, "L0": system.NetL0,
	"Lr1": system.NetLr1, "Lr2": system.NetLr2, "corona": system.NetCorona,
}

// Load reads a Spec from a JSON file.
func Load(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("config: %w", err)
	}
	return Parse(data)
}

// Parse decodes a Spec from JSON bytes, rejecting unknown fields so
// typos fail loudly.
func Parse(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("config: %w", err)
	}
	return s, nil
}

// Build converts the spec into a runnable system configuration.
func (s Spec) Build() (system.Config, error) {
	nodes := s.Nodes
	if nodes == 0 {
		nodes = 16
	}
	netName := s.Network
	if netName == "" {
		netName = "fsoi"
	}
	kind, ok := networkKinds[netName]
	if !ok {
		return system.Config{}, fmt.Errorf("config: unknown network %q", netName)
	}
	cfg := system.Default(nodes, kind)
	if s.Seed != 0 {
		cfg.Seed = s.Seed
	}
	if s.MetaVCSELs > 0 {
		cfg.FSOI.MetaVCSELs = s.MetaVCSELs
	}
	if s.DataVCSELs > 0 {
		cfg.FSOI.DataVCSELs = s.DataVCSELs
	}
	if s.Receivers > 0 {
		cfg.FSOI.Receivers = s.Receivers
	}
	if s.WindowW > 0 {
		cfg.FSOI.WindowW = s.WindowW
	}
	if s.BackoffB > 0 {
		cfg.FSOI.BackoffB = s.BackoffB
	}
	if s.OutQueue > 0 {
		cfg.FSOI.OutQueue = s.OutQueue
	}
	if s.Optimizations != nil {
		o := s.Optimizations
		cfg.FSOI.Opt = core.Optimizations{
			AckElision:          o.AckElision,
			BooleanSubscription: o.BooleanSubscription,
			ReceiverScheduling:  o.ReceiverScheduling,
			WritebackSplit:      o.WritebackSplit,
			RetransmitHints:     o.RetransmitHints,
		}
	}
	if s.MemoryGBps > 0 {
		cfg.Memory.TotalGBps = s.MemoryGBps
	}
	if s.Channels > 0 {
		cfg.Memory.Channels = s.Channels
	}
	if s.MeshBandwidthFrac > 0 {
		cfg.MeshBandwidthFrac = s.MeshBandwidthFrac
	}
	if s.RouterCycles > 0 {
		cfg.MeshRouterCycles = s.RouterCycles
	}
	if s.TracePackets > 0 {
		cfg.TracePackets = s.TracePackets
	}
	if err := cfg.FSOI.Validate(); kind == system.NetFSOI && err != nil {
		return system.Config{}, err
	}
	return cfg, nil
}

// AppAndScale returns the workload selection with defaults applied.
func (s Spec) AppAndScale() (string, float64) {
	app := s.App
	if app == "" {
		app = "jacobi"
	}
	scale := s.Scale
	if scale == 0 {
		scale = 0.5
	}
	return app, scale
}
