// Package config provides the JSON configuration surface of the
// simulator: a flat, documented schema that deserializes into a
// system.Config, so parameter studies can be scripted without
// recompiling (fsoisim -config study.json).
package config

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"fsoi/internal/adversary"
	"fsoi/internal/core"
	"fsoi/internal/fault"
	"fsoi/internal/optnet"
	"fsoi/internal/sim"
	"fsoi/internal/system"
	"fsoi/internal/thermal"
)

// Spec is the serializable view of a simulation configuration. Zero
// fields inherit the paper defaults for the chosen node count and
// network, so a spec needs to mention only what it changes.
type Spec struct {
	Nodes   int     `json:"nodes"`           // 16 or 64
	Network string  `json:"network"`         // fsoi | mesh | L0 | Lr1 | Lr2 | corona | any optnet topology
	App     string  `json:"app,omitempty"`   // workload name
	Scale   float64 `json:"scale,omitempty"` // workload scale factor
	Seed    uint64  `json:"seed,omitempty"`

	// FSOI knobs (ignored on other networks).
	MetaVCSELs          int      `json:"meta_vcsels,omitempty"`
	DataVCSELs          int      `json:"data_vcsels,omitempty"`
	Receivers           int      `json:"receivers,omitempty"`
	WindowW             float64  `json:"window_w,omitempty"`
	BackoffB            float64  `json:"backoff_b,omitempty"`
	OutQueue            int      `json:"out_queue,omitempty"`
	MaxBackoffSlots     float64  `json:"max_backoff_slots,omitempty"`
	ConfirmTimeoutSlots int      `json:"confirm_timeout_slots,omitempty"`
	Optimizations       *OptSpec `json:"optimizations,omitempty"`

	// Faults switches on physical-fault injection (FSOI only); nil
	// injects nothing and keeps runs bit-identical to fault-free builds.
	Faults *FaultSpec `json:"faults,omitempty"`

	// Adversaries assigns hostile workload streams to nodes (FSOI only);
	// an empty list keeps runs bit-identical to adversary-free builds.
	Adversaries []AdversarySpec `json:"adversaries,omitempty"`

	// Detect switches on the windowed contention detector (implies
	// observation); DetectWindow overrides its window length in cycles.
	Detect       bool  `json:"detect,omitempty"`
	DetectWindow int64 `json:"detect_window,omitempty"`

	// Memory system.
	MemoryGBps float64 `json:"memory_gbps,omitempty"`
	Channels   int     `json:"memory_channels,omitempty"`

	// Mesh.
	RouterCycles      int     `json:"router_cycles,omitempty"`
	MeshBandwidthFrac float64 `json:"mesh_bandwidth_frac,omitempty"`

	// Diagnostics.
	TracePackets int `json:"trace_packets,omitempty"`

	// Shards > 1 selects the exact sharded engine (internal/sim/shard);
	// results are byte-identical to the serial engine at any value.
	Shards int `json:"shards,omitempty"`

	// ParWorkers > 0 selects the windowed parallel engine (FSOI only):
	// shards advance concurrently through lookahead-wide windows on
	// ParWorkers OS threads. Results are byte-identical across worker
	// and shard counts but run a conservatively windowed schedule, so
	// they are not comparable cycle-for-cycle with the serial engine.
	ParWorkers int `json:"par_workers,omitempty"`
}

// OptSpec toggles the §5 optimizations; nil means all on (the paper
// default), a present struct specifies each explicitly.
type OptSpec struct {
	AckElision          bool `json:"ack_elision"`
	BooleanSubscription bool `json:"boolean_subscription"`
	ReceiverScheduling  bool `json:"receiver_scheduling"`
	WritebackSplit      bool `json:"writeback_split"`
	RetransmitHints     bool `json:"retransmit_hints"`
}

// FaultSpec is the serializable view of fault.Config. Thermal droop is
// enabled by a positive droop coefficient; the remaining thermal fields
// then inherit paper-plausible defaults unless overridden.
type FaultSpec struct {
	MarginPenaltyDB float64 `json:"margin_penalty_db,omitempty"`
	VCSELFailProb   float64 `json:"vcsel_fail_prob,omitempty"`
	ConfirmDropProb float64 `json:"confirm_drop_prob,omitempty"`
	// ThermalCooling: "air", "microchannel" or "diamond-spreader".
	ThermalCooling   string  `json:"thermal_cooling,omitempty"`
	ThermalPowerW    float64 `json:"thermal_power_w,omitempty"`
	ThermalTauCycles float64 `json:"thermal_tau_cycles,omitempty"`
	DroopDBPerK      float64 `json:"droop_db_per_k,omitempty"`
}

// AdversarySpec is the serializable view of adversary.Spec: one hostile
// node, its role, victim set, attack intensity in (0,1), and optional
// activity window / operation budget.
type AdversarySpec struct {
	Role      string  `json:"role"` // jammer | spoofer | starver
	Node      int     `json:"node"`
	Victims   []int   `json:"victims"`
	Intensity float64 `json:"intensity"`
	Start     int64   `json:"start,omitempty"`
	Stop      int64   `json:"stop,omitempty"`
	Ops       int     `json:"ops,omitempty"`
}

// build converts the spec into an adversary.Spec.
func (a AdversarySpec) build() (adversary.Spec, error) {
	role, ok := adversary.ParseRole(a.Role)
	if !ok {
		return adversary.Spec{}, fmt.Errorf("config: unknown adversary role %q", a.Role)
	}
	return adversary.Spec{
		Role:      role,
		Node:      a.Node,
		Victims:   a.Victims,
		Intensity: a.Intensity,
		Start:     sim.Cycle(a.Start),
		Stop:      sim.Cycle(a.Stop),
		Ops:       a.Ops,
	}, nil
}

// coolings maps spec names to thermal technologies.
var coolings = map[string]thermal.Cooling{
	"air": thermal.AirCooled, "microchannel": thermal.Microchannel,
	"diamond-spreader": thermal.DiamondSpreader,
}

// build converts the spec into a fault configuration.
func (f FaultSpec) build() (fault.Config, error) {
	cfg := fault.Config{
		MarginPenaltyDB: f.MarginPenaltyDB,
		VCSELFailProb:   f.VCSELFailProb,
		ConfirmDropProb: f.ConfirmDropProb,
	}
	if f.DroopDBPerK > 0 {
		cooling := thermal.AirCooled
		if f.ThermalCooling != "" {
			c, ok := coolings[f.ThermalCooling]
			if !ok {
				return fault.Config{}, fmt.Errorf("config: unknown cooling %q", f.ThermalCooling)
			}
			cooling = c
		}
		cfg.Thermal = fault.ThermalSpec{
			Enabled:       true,
			Cooling:       cooling,
			PowerPerNodeW: f.ThermalPowerW,
			TauCycles:     f.ThermalTauCycles,
			DroopDBPerK:   f.DroopDBPerK,
		}
		if cfg.Thermal.PowerPerNodeW == 0 { //lint:allow floateq unset-field sentinel: the value is assigned, never computed
			cfg.Thermal.PowerPerNodeW = 4 // §3.3 evaluates ~4 W/node
		}
		if cfg.Thermal.TauCycles == 0 { //lint:allow floateq unset-field sentinel: the value is assigned, never computed
			cfg.Thermal.TauCycles = 100000 // package thermal time constant
		}
	} else if f.ThermalCooling != "" || f.ThermalPowerW != 0 || f.ThermalTauCycles != 0 { //lint:allow floateq unset-field sentinels on user-assigned spec values
		return fault.Config{}, fmt.Errorf("config: thermal fields need droop_db_per_k > 0")
	}
	if err := cfg.Validate(); err != nil {
		return fault.Config{}, err
	}
	return cfg, nil
}

// networkKinds maps spec names to system kinds.
var networkKinds = map[string]system.NetworkKind{
	"fsoi": system.NetFSOI, "mesh": system.NetMesh, "L0": system.NetL0,
	"Lr1": system.NetLr1, "Lr2": system.NetLr2, "corona": system.NetCorona,
}

// Load reads a Spec from a JSON file.
func Load(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("config: %w", err)
	}
	return Parse(data)
}

// Parse decodes a Spec from JSON bytes, rejecting unknown fields so
// typos fail loudly.
func Parse(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("config: %w", err)
	}
	return s, nil
}

// Build converts the spec into a runnable system configuration.
func (s Spec) Build() (system.Config, error) {
	nodes := s.Nodes
	if nodes == 0 {
		nodes = 16
	}
	netName := s.Network
	if netName == "" {
		netName = "fsoi"
	}
	kind, ok := networkKinds[netName]
	cfg := system.Default(nodes, kind)
	if !ok {
		// Optical-topology registry members (matrix, snake, ...) ride the
		// NetOptical kind.
		if _, reg := optnet.Get(netName); !reg {
			return system.Config{}, fmt.Errorf("config: unknown network %q", netName)
		}
		cfg = system.DefaultOptical(nodes, netName)
	}
	if s.Seed != 0 {
		cfg.Seed = s.Seed
	}
	if s.Shards > 0 {
		cfg.Shards = s.Shards
	}
	if s.ParWorkers > 0 {
		cfg.ParWorkers = s.ParWorkers
	}
	if s.MetaVCSELs > 0 {
		cfg.FSOI.MetaVCSELs = s.MetaVCSELs
	}
	if s.DataVCSELs > 0 {
		cfg.FSOI.DataVCSELs = s.DataVCSELs
	}
	if s.Receivers > 0 {
		cfg.FSOI.Receivers = s.Receivers
	}
	if s.WindowW > 0 {
		cfg.FSOI.WindowW = s.WindowW
	}
	if s.BackoffB > 0 {
		cfg.FSOI.BackoffB = s.BackoffB
	}
	if s.OutQueue > 0 {
		cfg.FSOI.OutQueue = s.OutQueue
	}
	if s.MaxBackoffSlots > 0 {
		cfg.FSOI.MaxBackoffSlots = s.MaxBackoffSlots
	}
	if s.ConfirmTimeoutSlots > 0 {
		cfg.FSOI.ConfirmTimeoutSlots = s.ConfirmTimeoutSlots
	}
	if s.Faults != nil {
		fc, err := s.Faults.build()
		if err != nil {
			return system.Config{}, err
		}
		cfg.Fault = fc
	}
	for _, a := range s.Adversaries {
		sp, err := a.build()
		if err != nil {
			return system.Config{}, err
		}
		cfg.Adversaries = append(cfg.Adversaries, sp)
	}
	if err := adversary.Validate(cfg.Adversaries, cfg.Nodes); len(cfg.Adversaries) > 0 && err != nil {
		return system.Config{}, fmt.Errorf("config: %w", err)
	}
	if s.Detect {
		cfg.Detect = true
	}
	if s.DetectWindow > 0 {
		cfg.DetectWindow = s.DetectWindow
	}
	if s.Optimizations != nil {
		o := s.Optimizations
		cfg.FSOI.Opt = core.Optimizations{
			AckElision:          o.AckElision,
			BooleanSubscription: o.BooleanSubscription,
			ReceiverScheduling:  o.ReceiverScheduling,
			WritebackSplit:      o.WritebackSplit,
			RetransmitHints:     o.RetransmitHints,
		}
	}
	if s.MemoryGBps > 0 {
		cfg.Memory.TotalGBps = s.MemoryGBps
	}
	if s.Channels > 0 {
		cfg.Memory.Channels = s.Channels
	}
	if s.MeshBandwidthFrac > 0 {
		cfg.MeshBandwidthFrac = s.MeshBandwidthFrac
	}
	if s.RouterCycles > 0 {
		cfg.MeshRouterCycles = s.RouterCycles
	}
	if s.TracePackets > 0 {
		cfg.TracePackets = s.TracePackets
	}
	if err := cfg.FSOI.Validate(); kind == system.NetFSOI && err != nil {
		return system.Config{}, err
	}
	return cfg, nil
}

// AppAndScale returns the workload selection with defaults applied.
func (s Spec) AppAndScale() (string, float64) {
	app := s.App
	if app == "" {
		app = "jacobi"
	}
	scale := s.Scale
	if scale == 0 { //lint:allow floateq unset-field sentinel: scale is assigned, never computed
		scale = 0.5
	}
	return app, scale
}
