package config

import (
	"os"
	"path/filepath"
	"testing"

	"fsoi/internal/system"
	"fsoi/internal/thermal"
)

func TestParseDefaults(t *testing.T) {
	s, err := Parse([]byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Nodes != 16 || cfg.Net != system.NetFSOI {
		t.Fatalf("defaults wrong: nodes=%d net=%v", cfg.Nodes, cfg.Net)
	}
	app, scale := s.AppAndScale()
	if app != "jacobi" || scale != 0.5 {
		t.Fatalf("workload defaults: %s %g", app, scale)
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	if _, err := Parse([]byte(`{"nodse": 16}`)); err == nil {
		t.Fatal("typos must fail loudly")
	}
}

func TestBuildOverrides(t *testing.T) {
	s, err := Parse([]byte(`{
		"nodes": 64,
		"network": "fsoi",
		"app": "mp3d",
		"scale": 0.25,
		"seed": 9,
		"meta_vcsels": 2,
		"data_vcsels": 7,
		"receivers": 3,
		"window_w": 3.5,
		"backoff_b": 1.2,
		"memory_gbps": 52.8,
		"trace_packets": 32,
		"optimizations": {"ack_elision": true}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Nodes != 64 || cfg.Seed != 9 {
		t.Fatal("node/seed overrides lost")
	}
	if cfg.FSOI.MetaVCSELs != 2 || cfg.FSOI.DataVCSELs != 7 || cfg.FSOI.Receivers != 3 {
		t.Fatal("lane overrides lost")
	}
	if cfg.FSOI.WindowW != 3.5 || cfg.FSOI.BackoffB != 1.2 {
		t.Fatal("backoff overrides lost")
	}
	if cfg.Memory.TotalGBps != 52.8 || cfg.TracePackets != 32 {
		t.Fatal("memory/trace overrides lost")
	}
	if !cfg.FSOI.Opt.AckElision || cfg.FSOI.Opt.RetransmitHints {
		t.Fatal("explicit optimizations must replace the default set")
	}
	app, scale := s.AppAndScale()
	if app != "mp3d" || scale != 0.25 {
		t.Fatal("workload overrides lost")
	}
}

func TestBuildRejectsBadNetwork(t *testing.T) {
	s := Spec{Network: "hypercube"}
	if _, err := s.Build(); err == nil {
		t.Fatal("unknown network must error")
	}
}

func TestBuildValidatesFSOI(t *testing.T) {
	s := Spec{Network: "fsoi", WindowW: 0.1} // below one slot
	if _, err := s.Build(); err == nil {
		t.Fatal("invalid FSOI config must error")
	}
}

func TestLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(path, []byte(`{"network":"mesh","nodes":16}`), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Net != system.NetMesh {
		t.Fatal("network lost in round trip")
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing files must error")
	}
}

func TestBuildFaultSection(t *testing.T) {
	s, err := Parse([]byte(`{
		"max_backoff_slots": 128,
		"confirm_timeout_slots": 6,
		"faults": {
			"margin_penalty_db": 2.5,
			"vcsel_fail_prob": 0.05,
			"confirm_drop_prob": 0.02,
			"droop_db_per_k": 0.03,
			"thermal_cooling": "microchannel"
		}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.FSOI.MaxBackoffSlots != 128 || cfg.FSOI.ConfirmTimeoutSlots != 6 {
		t.Fatal("backoff cap / confirm timeout overrides lost")
	}
	f := cfg.Fault
	if !f.Enabled() {
		t.Fatal("fault section must enable injection")
	}
	if f.MarginPenaltyDB != 2.5 || f.VCSELFailProb != 0.05 || f.ConfirmDropProb != 0.02 {
		t.Fatal("fault knobs lost")
	}
	if !f.Thermal.Enabled || f.Thermal.Cooling != thermal.Microchannel {
		t.Fatal("thermal cooling lost")
	}
	if f.Thermal.PowerPerNodeW != 4 || f.Thermal.TauCycles != 100000 {
		t.Fatal("thermal defaults not applied")
	}
}

func TestBuildFaultOmittedStaysDisabled(t *testing.T) {
	s, err := Parse([]byte(`{"network": "fsoi"}`))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Fault.Enabled() {
		t.Fatal("no faults section must mean no injection")
	}
}

func TestBuildFaultRejectsBadSections(t *testing.T) {
	bad := []string{
		`{"faults": {"margin_penalty_db": -1}}`,
		`{"faults": {"vcsel_fail_prob": 1.5}}`,
		`{"faults": {"thermal_cooling": "peltier", "droop_db_per_k": 0.1}}`,
		`{"faults": {"thermal_power_w": 4}}`,
	}
	for i, js := range bad {
		s, err := Parse([]byte(js))
		if err != nil {
			t.Fatalf("case %d failed to parse: %v", i, err)
		}
		if _, err := s.Build(); err == nil {
			t.Errorf("case %d: bad fault section must error", i)
		}
	}
}
