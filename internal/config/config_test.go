package config

import (
	"os"
	"path/filepath"
	"testing"

	"fsoi/internal/system"
)

func TestParseDefaults(t *testing.T) {
	s, err := Parse([]byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Nodes != 16 || cfg.Net != system.NetFSOI {
		t.Fatalf("defaults wrong: nodes=%d net=%v", cfg.Nodes, cfg.Net)
	}
	app, scale := s.AppAndScale()
	if app != "jacobi" || scale != 0.5 {
		t.Fatalf("workload defaults: %s %g", app, scale)
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	if _, err := Parse([]byte(`{"nodse": 16}`)); err == nil {
		t.Fatal("typos must fail loudly")
	}
}

func TestBuildOverrides(t *testing.T) {
	s, err := Parse([]byte(`{
		"nodes": 64,
		"network": "fsoi",
		"app": "mp3d",
		"scale": 0.25,
		"seed": 9,
		"meta_vcsels": 2,
		"data_vcsels": 7,
		"receivers": 3,
		"window_w": 3.5,
		"backoff_b": 1.2,
		"memory_gbps": 52.8,
		"trace_packets": 32,
		"optimizations": {"ack_elision": true}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Nodes != 64 || cfg.Seed != 9 {
		t.Fatal("node/seed overrides lost")
	}
	if cfg.FSOI.MetaVCSELs != 2 || cfg.FSOI.DataVCSELs != 7 || cfg.FSOI.Receivers != 3 {
		t.Fatal("lane overrides lost")
	}
	if cfg.FSOI.WindowW != 3.5 || cfg.FSOI.BackoffB != 1.2 {
		t.Fatal("backoff overrides lost")
	}
	if cfg.Memory.TotalGBps != 52.8 || cfg.TracePackets != 32 {
		t.Fatal("memory/trace overrides lost")
	}
	if !cfg.FSOI.Opt.AckElision || cfg.FSOI.Opt.RetransmitHints {
		t.Fatal("explicit optimizations must replace the default set")
	}
	app, scale := s.AppAndScale()
	if app != "mp3d" || scale != 0.25 {
		t.Fatal("workload overrides lost")
	}
}

func TestBuildRejectsBadNetwork(t *testing.T) {
	s := Spec{Network: "hypercube"}
	if _, err := s.Build(); err == nil {
		t.Fatal("unknown network must error")
	}
}

func TestBuildValidatesFSOI(t *testing.T) {
	s := Spec{Network: "fsoi", WindowW: 0.1} // below one slot
	if _, err := s.Build(); err == nil {
		t.Fatal("invalid FSOI config must error")
	}
}

func TestLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(path, []byte(`{"network":"mesh","nodes":16}`), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Net != system.NetMesh {
		t.Fatal("network lost in round trip")
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing files must error")
	}
}
