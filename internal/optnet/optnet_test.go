package optnet

import (
	"reflect"
	"testing"

	"fsoi/internal/noc"
	"fsoi/internal/sim"
)

func TestNamesSortedAndComplete(t *testing.T) {
	want := []string{"corona", "fsoi", "matrix", "snake"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
}

func TestBuildEveryTopology(t *testing.T) {
	for _, name := range Names() {
		engine := sim.NewEngine()
		n, err := Build(name, 16, engine, sim.NewRNG(1))
		if err != nil {
			t.Fatalf("Build(%s): %v", name, err)
		}
		if n.Name() != name {
			t.Fatalf("Build(%s).Name() = %q; registry name and network name must agree", name, n.Name())
		}
		if n.LatencyStats() == nil {
			t.Fatalf("Build(%s): nil latency stats", name)
		}
	}
}

func TestBuildUnknown(t *testing.T) {
	if _, err := Build("warpdrive", 16, sim.NewEngine(), sim.NewRNG(1)); err == nil {
		t.Fatal("unknown topology must error")
	}
}

func TestLossModelsCoverAnalyticGrid(t *testing.T) {
	for _, name := range Names() {
		topo, _ := Get(name)
		for _, nodes := range []int{16, 64, 256} {
			r := topo.Loss(nodes)
			if r.Topology != name || r.Nodes != nodes {
				t.Fatalf("%s loss report mislabeled: %q @ %d", name, r.Topology, r.Nodes)
			}
			if r.WorstCaseDB <= 0 || r.EnergyPerBitJ <= 0 {
				t.Fatalf("%s@%d: loss model did not close: %+v", name, nodes, r)
			}
		}
	}
}

func TestRegisterValidation(t *testing.T) {
	mustPanic := func(name string, topo Topology) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: Register must panic", name)
			}
		}()
		Register(topo)
	}
	mustPanic("empty", Topology{})
	existing, _ := Get("corona")
	mustPanic("duplicate", existing)
}

func TestMeshDim(t *testing.T) {
	for nodes, want := range map[int]int{16: 4, 64: 8, 256: 16, 1024: 32} {
		d, err := MeshDim(nodes)
		if err != nil || d != want {
			t.Fatalf("MeshDim(%d) = %d, %v; want %d", nodes, d, err, want)
		}
	}
	if _, err := MeshDim(48); err == nil {
		t.Fatal("non-square node count must error")
	}
}

// TestTopologiesAreDistinct drives the three crossbars with one burst
// and checks the arbitration models actually diverge: the matrix is
// contention-free, the token crossbar pays arbitration, and the snake
// serializes per source.
func TestTopologiesAreDistinct(t *testing.T) {
	run := func(name string) (maxLat int64) {
		engine := sim.NewEngine()
		n, err := Build(name, 64, engine, sim.NewRNG(1))
		if err != nil {
			t.Fatal(err)
		}
		var lats []int64
		n.SetDelivery(func(p *noc.Packet, now sim.Cycle) { lats = append(lats, p.TotalLatency()) })
		engine.Register(sim.TickFunc(n.Tick))
		// One source sprays six destinations back to back.
		for dst := 1; dst <= 6; dst++ {
			if !n.Send(&noc.Packet{ID: uint64(dst), Src: 0, Dst: dst, Type: noc.Data}) {
				t.Fatalf("%s rejected packet %d", name, dst)
			}
		}
		engine.Run(500)
		if len(lats) != 6 {
			t.Fatalf("%s delivered %d of 6", name, len(lats))
		}
		for _, l := range lats {
			if l > maxLat {
				maxLat = l
			}
		}
		return maxLat
	}
	matrix, snake := run("matrix"), run("snake")
	if matrix != 6 {
		t.Fatalf("matrix burst max latency %d, want contention-free 6", matrix)
	}
	if snake < 25 {
		t.Fatalf("snake burst max latency %d, want source-serialized >= 25", snake)
	}
}
