package optnet_test

import (
	"testing"

	"fsoi/internal/mesh"
	"fsoi/internal/noc"
	"fsoi/internal/noc/noctest"
	"fsoi/internal/optnet"
	"fsoi/internal/sim"
)

// TestRegistryConformance runs the shared noc.Network conformance
// harness over every registered optical topology. The Ordered flag
// comes from the registry itself, so a new member declaring in-order
// delivery is held to it automatically. Every topology must also
// reproduce its transcript exactly on the sharded engine.
func TestRegistryConformance(t *testing.T) {
	for _, name := range optnet.Names() {
		topo, _ := optnet.Get(name)
		noctest.Harness{
			Name: name,
			Build: func(engine sim.Scheduler, rng *sim.RNG) noc.Network {
				return topo.Build(16, engine, rng)
			},
			Nodes:   16,
			Ordered: topo.Ordered,
			Seed:    42,
			Shards:  []int{2, 4},
		}.Run(t)
	}
}

// TestMeshConformance holds the electrical baseline to the same
// contract. The mesh injects one packet at a time per source and
// dimension-order routes, but per-hop VC allocation can let a later
// packet overtake an earlier one on the same pair, so it does not
// declare ordered delivery.
func TestMeshConformance(t *testing.T) {
	noctest.Harness{
		Name: "mesh",
		Build: func(engine sim.Scheduler, rng *sim.RNG) noc.Network {
			return mesh.New(mesh.PaperMesh(4), engine)
		},
		Nodes:  16,
		Seed:   42,
		Shards: []int{2, 4},
	}.Run(t)
}

// TestSharded256Conformance runs the paper's FSOI design and the
// electrical mesh at 256 nodes on the exact sharded engine: delivery
// must be exactly-once and the transcript replay-identical across
// shard counts — the contract that makes 256/1024-node frontier runs
// trustworthy.
func TestSharded256Conformance(t *testing.T) {
	if testing.Short() {
		t.Skip("256-node conformance runs only without -short")
	}
	fsoi, _ := optnet.Get("fsoi")
	noctest.Harness{
		Name: "fsoi-256",
		Build: func(engine sim.Scheduler, rng *sim.RNG) noc.Network {
			return fsoi.Build(256, engine, rng)
		},
		Nodes:       256,
		Seed:        42,
		Shards:      []int{2, 4, 8},
		DrainCycles: 30000,
	}.Run(t)
	noctest.Harness{
		Name: "mesh-256",
		Build: func(engine sim.Scheduler, rng *sim.RNG) noc.Network {
			return mesh.New(mesh.PaperMesh(16), engine)
		},
		Nodes:  256,
		Seed:   42,
		Shards: []int{2, 4, 8},
		// 256 routers tick every cycle, so the drain bound is the whole
		// cost of the run; injections stop by cycle 400 and the longest
		// 16x16 dimension-order route is well under 1k cycles.
		DrainCycles: 5000,
	}.Run(t)
}

// TestWindowedConformance replays the paper's FSOI design on the
// windowed parallel engine (shard.Windows): the transcript must be
// byte-identical to the engine's own 1-worker replay at 2, 4, and 8
// workers and across three partitions. This is the transport-level
// twin of the full-system worker-invariance tests — it isolates the
// network model from the coherence stack above it.
func TestWindowedConformance(t *testing.T) {
	fsoi, _ := optnet.Get("fsoi")
	noctest.Harness{
		Name: "fsoi-windowed",
		Build: func(engine sim.Scheduler, rng *sim.RNG) noc.Network {
			return fsoi.Build(16, engine, rng)
		},
		Nodes:          16,
		Seed:           42,
		Windowed:       []int{2, 4, 8},
		WindowedShards: []int{4, 2, 8},
	}.Run(t)
}

// TestWindowedConformance256 repeats the windowed replay at 256 nodes
// and 16 shards — the scale the parallel engine exists for.
func TestWindowedConformance256(t *testing.T) {
	if testing.Short() {
		t.Skip("256-node windowed conformance runs only without -short")
	}
	fsoi, _ := optnet.Get("fsoi")
	noctest.Harness{
		Name: "fsoi-windowed-256",
		Build: func(engine sim.Scheduler, rng *sim.RNG) noc.Network {
			return fsoi.Build(256, engine, rng)
		},
		Nodes:          256,
		Seed:           42,
		Windowed:       []int{4, 8},
		WindowedShards: []int{16, 8},
		DrainCycles:    30000,
	}.Run(t)
}
