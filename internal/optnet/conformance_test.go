package optnet_test

import (
	"testing"

	"fsoi/internal/mesh"
	"fsoi/internal/noc"
	"fsoi/internal/noc/noctest"
	"fsoi/internal/optnet"
	"fsoi/internal/sim"
)

// TestRegistryConformance runs the shared noc.Network conformance
// harness over every registered optical topology. The Ordered flag
// comes from the registry itself, so a new member declaring in-order
// delivery is held to it automatically.
func TestRegistryConformance(t *testing.T) {
	for _, name := range optnet.Names() {
		topo, _ := optnet.Get(name)
		noctest.Harness{
			Name: name,
			Build: func(engine *sim.Engine, rng *sim.RNG) noc.Network {
				return topo.Build(16, engine, rng)
			},
			Nodes:   16,
			Ordered: topo.Ordered,
			Seed:    42,
		}.Run(t)
	}
}

// TestMeshConformance holds the electrical baseline to the same
// contract. The mesh injects one packet at a time per source and
// dimension-order routes, but per-hop VC allocation can let a later
// packet overtake an earlier one on the same pair, so it does not
// declare ordered delivery.
func TestMeshConformance(t *testing.T) {
	noctest.Harness{
		Name: "mesh",
		Build: func(engine *sim.Engine, rng *sim.RNG) noc.Network {
			return mesh.New(mesh.PaperMesh(4), engine)
		},
		Nodes: 16,
		Seed:  42,
	}.Run(t)
}
