// Package optnet is the registry of optical interconnect topologies —
// the "topology zoo" behind the frontier sweep. Every member implements
// noc.Network for cycle-level simulation and pairs it with an analytic
// worst-case physical model (internal/optics LossReport), so a single
// name selects both how the fabric behaves under traffic and what its
// worst-case insertion loss costs in laser power and energy per bit.
//
// The built-in family (see topologies.go): the Corona-style token
// crossbar, the matrix/λ-router and snake/SWMR WDM crossbars of
// arXiv:1512.07492, and the paper's beam-steered FSOI as the reference
// member. internal/system builds registered topologies through the
// NetOptical network kind, and the exp "frontier" grid sweeps the whole
// registry across node counts.
package optnet

import (
	"fmt"
	"sort"

	"fsoi/internal/noc"
	"fsoi/internal/optics"
	"fsoi/internal/sim"
)

// Topology is one member of the optical-baseline family.
type Topology struct {
	// Name selects the topology (system.Config.Optical, -net flags).
	Name string
	// Description is a one-line summary for listings.
	Description string
	// Ordered reports whether the network delivers packets in order per
	// (src, dst) pair with no further help; the conformance test checks
	// it. FSOI declares false: collision backoff can reorder a source's
	// packets, and the system layer restores ordering per cache line.
	Ordered bool
	// Build constructs a fresh network over the engine. The RNG is the
	// run's root; topologies that need randomness must derive named
	// streams from it, and deterministic ones ignore it.
	Build func(nodes int, engine sim.Scheduler, rng *sim.RNG) noc.Network
	// Loss returns the analytic worst-case physical model at a node
	// count (perfect squares only, matching the die floorplan).
	Loss func(nodes int) optics.LossReport
}

// registry maps names to topologies. It is only ever indexed or
// iterated through the sorted Names slice, so map order cannot leak.
var registry = map[string]Topology{}

// Register adds a topology to the family. It panics on a duplicate or
// incomplete registration: the zoo is assembled at init time and a bad
// member is a programming error, not a runtime condition.
func Register(t Topology) {
	if t.Name == "" || t.Build == nil || t.Loss == nil {
		panic("optnet: topology needs a name, a builder, and a loss model")
	}
	if _, dup := registry[t.Name]; dup {
		panic(fmt.Sprintf("optnet: duplicate topology %q", t.Name))
	}
	registry[t.Name] = t
}

// Get looks up a topology by name.
func Get(name string) (Topology, bool) {
	t, ok := registry[name]
	return t, ok
}

// Names lists the registered topologies in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Build constructs a registered topology by name.
func Build(name string, nodes int, engine sim.Scheduler, rng *sim.RNG) (noc.Network, error) {
	t, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("optnet: unknown topology %q (have %v)", name, Names())
	}
	return t.Build(nodes, engine, rng), nil
}

// MeshDim returns the die edge in tiles for a node count, or an error
// when the count is not a perfect square (the floorplans, and therefore
// the loss models, assume a square tile grid).
func MeshDim(nodes int) (int, error) {
	for d := 1; d*d <= nodes; d++ {
		if d*d == nodes {
			return d, nil
		}
	}
	return 0, fmt.Errorf("optnet: node count %d is not a perfect square", nodes)
}
