package optnet

import (
	"fsoi/internal/core"
	"fsoi/internal/corona"
	"fsoi/internal/noc"
	"fsoi/internal/optics"
	"fsoi/internal/sim"
)

// chipFor returns the paper floorplan scaled to a node count.
func chipFor(nodes int) optics.ChipGeometry {
	dim, err := MeshDim(nodes)
	if err != nil {
		panic(err)
	}
	return optics.PaperChip(dim)
}

// The built-in family. Registration order is irrelevant — lookups go
// through the sorted Names slice.
func init() {
	dev := optics.PaperWaveguideDevices()

	Register(Topology{
		Name:        "corona",
		Description: "Corona-style MWSR token crossbar (§7.1 baseline)",
		Ordered:     true,
		Build: func(nodes int, engine sim.Scheduler, rng *sim.RNG) noc.Network {
			return corona.New(corona.PaperCorona(nodes), engine)
		},
		Loss: func(nodes int) optics.LossReport {
			return dev.TokenCrossbarLoss(nodes, chipFor(nodes))
		},
	})

	Register(Topology{
		Name:        "matrix",
		Description: "matrix/λ-router WDM crossbar, fully non-blocking (arXiv:1512.07492)",
		Ordered:     true,
		Build: func(nodes int, engine sim.Scheduler, rng *sim.RNG) noc.Network {
			return corona.New(corona.MatrixCrossbar(nodes), engine)
		},
		Loss: func(nodes int) optics.LossReport {
			return dev.MatrixCrossbarLoss(nodes, chipFor(nodes))
		},
	})

	Register(Topology{
		Name:        "snake",
		Description: "snake/SWMR broadcast crossbar, source-serialized (arXiv:1512.07492)",
		Ordered:     true,
		Build: func(nodes int, engine sim.Scheduler, rng *sim.RNG) noc.Network {
			return corona.New(corona.SnakeCrossbar(nodes), engine)
		},
		Loss: func(nodes int) optics.LossReport {
			return dev.SnakeCrossbarLoss(nodes, chipFor(nodes))
		},
	})

	Register(Topology{
		Name:        "fsoi",
		Description: "beam-steered free-space interconnect (the paper's design)",
		Ordered:     false,
		Build: func(nodes int, engine sim.Scheduler, rng *sim.RNG) noc.Network {
			return core.New(core.PaperConfig(nodes), engine, rng)
		},
		Loss: func(nodes int) optics.LossReport {
			return dev.FSOILoss(nodes, optics.PaperLink(), optics.PaperPhaseArray(), chipFor(nodes))
		},
	})
}
