// Typed physical units for the physics layer. The quantities that flow
// between internal/optics, internal/power, and internal/thermal — loss
// budgets in dB, absolute optical levels in dBm, electrical powers in
// watts, event energies in joules, wall-clock spans in seconds — are
// defined types over float64, so the fsoilint "units" pass can reject
// cross-unit arithmetic (dB+dBm, W+J, cycles×Hz) at type-check time.
//
// Conventions:
//
//   - DB is a relative power ratio on the log scale; positive values are
//     loss. DB values add. DBm is an absolute level referenced to 1 mW;
//     two DBm values never add, but a DB loss applies to a DBm level
//     through Plus.
//   - Watts and Joules are linear; they scale by dimensionless factors
//     (Scale) and convert into each other only through Seconds
//     (Times, Over) or a bit rate (Per).
//   - Conversions that tag a bare float64 with a unit (Watts(x)) are
//     free anywhere; conversions that strip or relabel a unit are
//     confined to this file, which the units analyzer exempts — every
//     other crossing needs a //lint:allow units justification.
//
// Every helper body is a single commutation of the expression it
// replaced, never a re-association, so adopting the types keeps all
// experiment outputs byte-identical (IEEE-754 * and + commute exactly
// but do not associate).
package optics

import (
	"math"

	"fsoi/internal/sim"
)

// DB is a relative optical power ratio in decibels; positive is loss.
type DB float64

// DBm is an absolute optical power level in dB referenced to 1 mW.
type DBm float64

// Watts is electrical or optical power.
type Watts float64

// Joules is energy.
type Joules float64

// Seconds is a wall-clock span.
type Seconds float64

// DBFromRatio converts a power ratio (<= 1 for loss) to decibels of
// loss (positive for loss).
func DBFromRatio(ratio float64) DB {
	if ratio <= 0 {
		return DB(math.Inf(1))
	}
	return DB(-10 * math.Log10(ratio))
}

// Ratio converts a loss in dB (positive) back to a power ratio.
func (d DB) Ratio() float64 {
	return math.Pow(10, -float64(d)/10)
}

// Scale multiplies a per-element loss by an element count.
func (d DB) Scale(k float64) DB { return DB(float64(d) * k) }

// Plus applies a dB loss (or, negated, a gain) to an absolute level.
// This is the only sanctioned way DB and DBm meet.
func (p DBm) Plus(loss DB) DBm { return p + DBm(loss) }

// MilliWatts converts an absolute level back to linear milliwatts.
func (p DBm) MilliWatts() float64 {
	return math.Pow(10, float64(p)/10)
}

// Scale multiplies a power by a dimensionless factor (a count, a duty
// cycle).
func (w Watts) Scale(k float64) Watts { return Watts(float64(w) * k) }

// Times integrates a power over a span: W × s = J.
func (w Watts) Times(s Seconds) Joules { return Joules(float64(w) * float64(s)) }

// Per spreads a power over a bit rate: W / (bit/s) = J per bit.
func (w Watts) Per(rateHz float64) Joules { return Joules(float64(w) / rateHz) }

// Scale multiplies an energy by a dimensionless factor.
func (j Joules) Scale(k float64) Joules { return Joules(float64(j) * k) }

// Over averages an energy over a span: J / s = W.
func (j Joules) Over(s Seconds) Watts { return Watts(float64(j) / float64(s)) }

// CycleSeconds converts a simulated cycle count at the given clock into
// wall time. It is the one sanctioned cycles→seconds crossing; dividing
// a bare float64(Cycle) by a frequency elsewhere is a units finding.
func CycleSeconds(c sim.Cycle, hz float64) Seconds {
	return Seconds(float64(c) / hz)
}
