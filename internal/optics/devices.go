package optics

import "math"

// Physical constants.
const (
	ElectronCharge = 1.602176634e-19 // C
	Boltzmann      = 1.380649e-23    // J/K
)

// VCSEL models a vertical-cavity surface-emitting laser as used for the
// transmit side of every lane: a threshold current, a slope efficiency
// converting above-threshold current to optical power, electrical
// parasitics, and a bias/modulation operating point.
type VCSEL struct {
	ThresholdCurrent float64 // A (paper: 0.14 mA)
	SlopeEfficiency  float64 // W/A above threshold
	ParasiticR       float64 // ohm (paper: 235)
	ParasiticC       float64 // F (paper: 90 fF)
	ForwardVoltage   float64 // V at the operating point (paper: ~2 V)
	ApertureDiameter float64 // m (paper: 5 um)
	ExtinctionRatio  float64 // P1/P0 (paper: 11)
	BiasCurrent      float64 // A average drive current when transmitting (paper: 0.48 mA)
	RelaxationFreq   float64 // Hz small-signal relaxation-oscillation frequency at bias
}

// PaperVCSEL returns the device point used throughout the evaluation.
func PaperVCSEL() VCSEL {
	return VCSEL{
		ThresholdCurrent: 0.14e-3,
		SlopeEfficiency:  0.35,
		ParasiticR:       235,
		ParasiticC:       90e-15,
		ForwardVoltage:   2.0,
		ApertureDiameter: 5e-6,
		ExtinctionRatio:  11,
		BiasCurrent:      0.48e-3,
		RelaxationFreq:   30e9,
	}
}

// averagePowerW is the mean emitted optical power at the bias point as
// a bare float64, shared by AveragePower and LevelPowers so both tag
// the identical IEEE-754 expression.
func (v VCSEL) averagePowerW() float64 {
	i := v.BiasCurrent - v.ThresholdCurrent
	if i < 0 {
		return 0
	}
	return i * v.SlopeEfficiency
}

// AveragePower returns the mean emitted optical power at the bias point.
func (v VCSEL) AveragePower() Watts {
	return Watts(v.averagePowerW())
}

// LevelPowers splits the average power into the one/zero levels implied by
// the extinction ratio re: P1 = 2*Pavg*re/(re+1), P0 = P1/re.
func (v VCSEL) LevelPowers() (p1, p0 Watts) {
	avg := v.averagePowerW()
	re := v.ExtinctionRatio
	one := 2 * avg * re / (re + 1)
	return Watts(one), Watts(one / re)
}

// ElectricalPower returns the DC power drawn by the laser itself
// (paper: 0.96 mW = 0.48 mA at 2 V).
func (v VCSEL) ElectricalPower() Watts {
	return Watts(v.BiasCurrent * v.ForwardVoltage)
}

// ParasiticBandwidth returns the RC-limited 3 dB bandwidth of the
// electrical parasitics, 1/(2 pi R C). The transmitter equalizes through
// this pole (see Driver), so it bounds the link only without equalization.
func (v VCSEL) ParasiticBandwidth() float64 {
	return 1 / (2 * math.Pi * v.ParasiticR * v.ParasiticC)
}

// ModeFieldWaist estimates the emitted beam waist as 0.6x the aperture
// radius, the usual oxide-aperture approximation.
func (v VCSEL) ModeFieldWaist() float64 {
	return 0.6 * v.ApertureDiameter / 2
}

// Photodetector models the resonant-cavity photodiode on the receive side.
type Photodetector struct {
	Responsivity float64 // A/W (paper: 0.5)
	Capacitance  float64 // F (paper: 100 fF)
	DarkCurrent  float64 // A
}

// PaperPhotodetector returns the evaluation device point.
func PaperPhotodetector() Photodetector {
	return Photodetector{Responsivity: 0.5, Capacitance: 100e-15, DarkCurrent: 5e-9}
}

// Photocurrent converts incident optical power to current. The
// responsivity is the sanctioned optics→electronics dimension crossing
// (A/W), so stripping the watt tag here is the conversion itself.
func (p Photodetector) Photocurrent(power Watts) float64 {
	return p.Responsivity*float64(power) + p.DarkCurrent //lint:allow units responsivity (A/W) is the watt-to-ampere conversion
}

// TIA models the transimpedance amplifier plus limiting amplifier chain.
type TIA struct {
	Bandwidth        float64 // Hz (paper: 36 GHz)
	Transimpedance   float64 // V/A (paper: 15000)
	InputNoiseAmps   float64 // A/sqrt(Hz) input-referred current noise density
	SupplyPower      Watts   // for the full receive chain (paper: 4.2 mW)
	TemperatureKelvn float64 // for shot/thermal accounting
}

// PaperTIA returns the evaluation receiver chain.
func PaperTIA() TIA {
	return TIA{
		Bandwidth:        36e9,
		Transimpedance:   15000,
		InputNoiseAmps:   22e-12,
		SupplyPower:      4.2e-3,
		TemperatureKelvn: 350,
	}
}

// ThermalNoise returns the RMS input-referred circuit noise current over
// the amplifier bandwidth.
func (t TIA) ThermalNoise() float64 {
	return t.InputNoiseAmps * math.Sqrt(t.Bandwidth)
}

// ShotNoise returns the RMS shot-noise current for a given photocurrent
// over the amplifier bandwidth: sqrt(2 q I B).
func (t TIA) ShotNoise(photocurrent float64) float64 {
	if photocurrent < 0 {
		photocurrent = 0
	}
	return math.Sqrt(2 * ElectronCharge * photocurrent * t.Bandwidth)
}

// Driver models the laser driver: its bandwidth gates the modulation rate
// and its supply power dominates transmit energy. The driver includes
// feed-forward equalization that compensates the VCSEL parasitic pole, so
// the transmit chain is driver-bandwidth-limited.
type Driver struct {
	Bandwidth    float64 // Hz (paper: 43 GHz)
	SupplyPower  Watts   // while transmitting (paper: 6.3 mW)
	StandbyPower Watts   // whole transmitter in standby (paper: 0.43 mW)
}

// PaperDriver returns the evaluation driver.
func PaperDriver() Driver {
	return Driver{Bandwidth: 43e9, SupplyPower: 6.3e-3, StandbyPower: 0.43e-3}
}
