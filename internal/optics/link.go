package optics

import (
	"fmt"
	"math"
	"strings"
)

// LinkConfig assembles a complete single-bit FSOI link: one VCSEL, one
// free-space route, one photodetector, and the transceiver circuits.
type LinkConfig struct {
	VCSEL    VCSEL
	Path     FreeSpacePath
	PD       Photodetector
	TIA      TIA
	Driver   Driver
	DataRate float64 // bit/s target (paper: 40e9)
	CoreHz   float64 // processor clock for cycle conversions (paper: 3.3e9)
}

// PaperLink returns the Table 1 link: diagonal 2 cm route at 40 Gbps.
func PaperLink() LinkConfig {
	return LinkConfig{
		VCSEL:    PaperVCSEL(),
		Path:     PaperPath(),
		PD:       PaperPhotodetector(),
		TIA:      PaperTIA(),
		Driver:   PaperDriver(),
		DataRate: 40e9,
		CoreHz:   3.3e9,
	}
}

// LinkReport carries every derived quantity in Table 1.
type LinkReport struct {
	// Optics.
	PathLoss       PathLossBreakdown
	TxPowerOneW    Watts // optical power for a one, at the VCSEL
	TxPowerZeroW   Watts
	RxPowerOneW    Watts // at the photodetector
	RxPowerZeroW   Watts
	PhotocurrentI1 float64 // A
	PhotocurrentI0 float64 // A

	// Noise and signal quality.
	NoiseOneRMS  float64 // A, shot + circuit on a one
	NoiseZeroRMS float64 // A
	QFactor      float64
	BER          float64
	OpticalSNRdB DB      // 10*log10(Q) convention for optical links
	JitterRMS    float64 // s, noise-to-jitter conversion at the sampling edge

	// Rate support.
	ChainBandwidth float64 // Hz, equalized transmit chain + receiver
	MaxDataRate    float64 // bit/s NRZ capability
	RateSupported  bool
	BitsPerCycle   int // line bits per core cycle per VCSEL

	// Power.
	TxActivePowerW  Watts // driver + VCSEL while transmitting
	TxStandbyPowerW Watts
	RxPowerW        Watts
	EnergyPerBitTxJ Joules
	EnergyPerBitRxJ Joules
}

// Budget evaluates the link from device first principles.
func (c LinkConfig) Budget() LinkReport {
	var r LinkReport
	r.PathLoss = c.Path.PathLoss()
	t := r.PathLoss.TotalDB.Ratio()

	r.TxPowerOneW, r.TxPowerZeroW = c.VCSEL.LevelPowers()
	r.RxPowerOneW = r.TxPowerOneW.Scale(t)
	r.RxPowerZeroW = r.TxPowerZeroW.Scale(t)
	r.PhotocurrentI1 = c.PD.Photocurrent(r.RxPowerOneW)
	r.PhotocurrentI0 = c.PD.Photocurrent(r.RxPowerZeroW)

	circuit := c.TIA.ThermalNoise()
	r.NoiseOneRMS = math.Hypot(circuit, c.TIA.ShotNoise(r.PhotocurrentI1))
	r.NoiseZeroRMS = math.Hypot(circuit, c.TIA.ShotNoise(r.PhotocurrentI0))
	r.QFactor = (r.PhotocurrentI1 - r.PhotocurrentI0) / (r.NoiseOneRMS + r.NoiseZeroRMS)
	r.BER = BERFromQ(r.QFactor)
	r.OpticalSNRdB = DB(10 * math.Log10(r.QFactor))

	// The driver equalizes the VCSEL parasitic pole, so the chain
	// bandwidth is the driver and TIA in cascade.
	r.ChainBandwidth = 1 / math.Sqrt(1/(c.Driver.Bandwidth*c.Driver.Bandwidth)+1/(c.TIA.Bandwidth*c.TIA.Bandwidth))
	// NRZ with decision-feedback equalization in the limiting amplifier
	// needs roughly 0.65x the bit rate in bandwidth.
	r.MaxDataRate = r.ChainBandwidth / 0.65
	r.RateSupported = r.MaxDataRate >= c.DataRate
	r.BitsPerCycle = int(c.DataRate / c.CoreHz)

	// Jitter: amplitude noise divided by the signal slew at the decision
	// edge (10-90% rise ~ 0.35/BW).
	rise := 0.35 / r.ChainBandwidth
	r.JitterRMS = (r.NoiseOneRMS + r.NoiseZeroRMS) / (r.PhotocurrentI1 - r.PhotocurrentI0) * rise

	r.TxActivePowerW = c.Driver.SupplyPower + c.VCSEL.ElectricalPower()
	r.TxStandbyPowerW = c.Driver.StandbyPower
	r.RxPowerW = c.TIA.SupplyPower
	r.EnergyPerBitTxJ = r.TxActivePowerW.Per(c.DataRate)
	r.EnergyPerBitRxJ = r.RxPowerW.Per(c.DataRate)
	return r
}

// String renders the report in the shape of Table 1.
func (r LinkReport) String() string {
	var b strings.Builder
	w2 := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }
	w2("Free-Space Optics")
	w2("  Optical path loss        %.2f dB (clip %.3f, spread %.2f, mirrors %.2f, substrate %.2f)",
		r.PathLoss.TotalDB, r.PathLoss.TxClipDB, r.PathLoss.SpreadingDB, r.PathLoss.MirrorDB, r.PathLoss.SubstrateDB)
	w2("  Beam radius at receiver  %.0f um", r.PathLoss.BeamRadiusRx*1e6)
	w2("Transmitter & Receiver")
	w2("  TX power (1/0)           %.1f / %.1f uW", r.TxPowerOneW*1e6, r.TxPowerZeroW*1e6)
	w2("  RX photocurrent (1/0)    %.1f / %.1f uA", r.PhotocurrentI1*1e6, r.PhotocurrentI0*1e6)
	w2("Link")
	w2("  Chain bandwidth          %.1f GHz (max NRZ %.1f Gbps, supported=%v)",
		r.ChainBandwidth/1e9, r.MaxDataRate/1e9, r.RateSupported)
	w2("  Signal-to-noise ratio    %.1f dB (Q=%.2f)", r.OpticalSNRdB, r.QFactor)
	w2("  Bit-error-rate (BER)     %.1e", r.BER)
	w2("  Cycle-to-cycle jitter    %.2f ps", r.JitterRMS*1e12)
	w2("  Bits per core cycle      %d", r.BitsPerCycle)
	w2("Power Consumption")
	w2("  Transmitter (active)     %.2f mW", r.TxActivePowerW*1e3)
	w2("  Transmitter (standby)    %.2f mW", r.TxStandbyPowerW*1e3)
	w2("  Receiver                 %.2f mW", r.RxPowerW*1e3)
	w2("  Energy per bit (TX/RX)   %.3f / %.3f pJ", r.EnergyPerBitTxJ*1e12, r.EnergyPerBitRxJ*1e12)
	return b.String()
}

// PhaseArray models the beam-steering transmitter used at 64 nodes: k
// emitters acting as a single steerable source. Steering to a new target
// costs SetupCycles (re-loading the phase controller register) and an
// off-axis pointing loss that grows with steering angle.
type PhaseArray struct {
	Elements    int     // emitters in the array
	Pitch       float64 // emitter spacing, m
	Wavelength  float64 // m
	SetupCycles int     // phase-register reload delay (paper: 1 cycle)
	MaxSteerRad float64 // usable steering half-angle
}

// PaperPhaseArray returns the 64-node transmitter.
func PaperPhaseArray() PhaseArray {
	return PhaseArray{Elements: 16, Pitch: 10e-6, Wavelength: 980e-9, SetupCycles: 1, MaxSteerRad: 0.35}
}

// BeamDivergence returns the array's far-field half-angle: lambda over
// the array extent.
func (a PhaseArray) BeamDivergence() float64 {
	return a.Wavelength / (math.Pi * float64(a.Elements) * a.Pitch / 2)
}

// SteeringLossDB returns the scan loss at the given off-axis angle,
// the standard cos^3 element-pattern roll-off.
func (a PhaseArray) SteeringLossDB(angle float64) DB {
	if math.Abs(angle) > a.MaxSteerRad {
		return DB(math.Inf(1))
	}
	return DBFromRatio(math.Pow(math.Cos(angle), 3))
}

// CanSteer reports whether the required off-axis angle is inside the
// array's usable range. The micro-mirror layer folds each route so that
// the steering demanded of the OPA is the deviation from that route's
// nominal mirror direction, not the raw die-crossing angle.
func (a PhaseArray) CanSteer(angle float64) bool {
	return math.Abs(angle) <= a.MaxSteerRad
}
