package optics

import (
	"fmt"
	"math"
	"strings"
)

// LayoutConfig sizes the photonic layer of §4.1: per-node VCSEL arrays
// (Figure 1c puts the transmit arrays at the node center and the
// photodetectors on the periphery) and the micro-mirror plane above.
type LayoutConfig struct {
	Nodes        int
	MetaVCSELs   int // transmit VCSELs per meta lane
	DataVCSELs   int // per data lane
	PhaseArray   bool
	PhaseElems   int     // emitters per steerable array
	VCSELEdge    float64 // device edge length, m (paper: ~20 um)
	VCSELSpacing float64 // center-to-center pitch, m (paper assumes 30 um)
	Receivers    int     // receivers per lane per node
	PDEdge       float64 // photodetector + lens footprint edge, m
	Chip         ChipGeometry
}

// PaperLayout returns the 16-node evaluation layout.
func PaperLayout(nodes int) LayoutConfig {
	return LayoutConfig{
		Nodes:        nodes,
		MetaVCSELs:   3,
		DataVCSELs:   6,
		PhaseArray:   nodes > 16,
		PhaseElems:   16,
		VCSELEdge:    20e-6,
		VCSELSpacing: 30e-6,
		Receivers:    2,
		PDEdge:       190e-6, // dominated by the receive micro-lens
		Chip:         PaperChip(int(math.Sqrt(float64(nodes)))),
	}
}

// LayoutReport is the area accounting of §4.1.
type LayoutReport struct {
	TxVCSELsPerNode  int
	TxVCSELsTotal    int     // including the confirmation lane
	VCSELAreaTotal   float64 // m²
	PDsPerNode       int
	PDAreaTotal      float64 // m²
	MirrorCount      int     // fixed micro-mirrors (at most n² per §3.2)
	PhotonicAreaFrac float64 // photonic footprint / die area
}

// Layout computes the report.
func (c LayoutConfig) Layout() LayoutReport {
	var r LayoutReport
	lanes := c.MetaVCSELs + c.DataVCSELs
	if c.PhaseArray {
		// One steerable array per lane plus the confirmation VCSEL.
		r.TxVCSELsPerNode = lanes*c.PhaseElems + 1
		r.TxVCSELsTotal = c.Nodes * r.TxVCSELsPerNode
	} else {
		// Dedicated per-destination arrays: (N-1) destinations x k bits,
		// plus one confirmation VCSEL per node.
		r.TxVCSELsPerNode = (c.Nodes-1)*lanes + 1
		r.TxVCSELsTotal = c.Nodes * r.TxVCSELsPerNode
	}
	cell := c.VCSELSpacing * c.VCSELSpacing
	r.VCSELAreaTotal = float64(r.TxVCSELsTotal) * cell

	// Receivers: 2 per lane class (meta, data) plus 1 confirmation.
	r.PDsPerNode = 2*c.Receivers + 1
	r.PDAreaTotal = float64(c.Nodes*r.PDsPerNode) * c.PDEdge * c.PDEdge

	// Fixed mirrors: one per directed node pair in the mirror-guided
	// configuration, n(n-1) <= n².
	r.MirrorCount = c.Nodes * (c.Nodes - 1)

	die := c.Chip.DieEdge * c.Chip.DieEdge
	r.PhotonicAreaFrac = (r.VCSELAreaTotal + r.PDAreaTotal) / die
	return r
}

// String renders the report.
func (r LayoutReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TX VCSELs        %d per node, %d total\n", r.TxVCSELsPerNode, r.TxVCSELsTotal)
	fmt.Fprintf(&b, "VCSEL area       %.2f mm^2 (paper estimates ~5 mm^2 at 16 nodes)\n", r.VCSELAreaTotal*1e6)
	fmt.Fprintf(&b, "Photodetectors   %d per node, %.2f mm^2 total\n", r.PDsPerNode, r.PDAreaTotal*1e6)
	fmt.Fprintf(&b, "Fixed mirrors    %d\n", r.MirrorCount)
	fmt.Fprintf(&b, "Photonic share   %.1f%% of die area\n", r.PhotonicAreaFrac*100)
	return b.String()
}
