package optics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGaussianRayleighRange(t *testing.T) {
	b := GaussianBeam{Waist: 45e-6, Wavelength: 980e-9, Index: 1}
	zr := b.RayleighRange()
	want := math.Pi * 45e-6 * 45e-6 / 980e-9
	if math.Abs(zr-want)/want > 1e-12 {
		t.Fatalf("zR = %g, want %g", zr, want)
	}
}

func TestGaussianRadiusGrowth(t *testing.T) {
	b := GaussianBeam{Waist: 45e-6, Wavelength: 980e-9, Index: 1}
	if r := b.RadiusAt(0); r != b.Waist {
		t.Fatalf("radius at waist = %g", r)
	}
	zr := b.RayleighRange()
	if r := b.RadiusAt(zr); math.Abs(r-b.Waist*math.Sqrt2) > 1e-9 {
		t.Fatalf("radius at zR = %g, want w0*sqrt2", r)
	}
	// Far field: w(z) ~ theta * z.
	far := b.RadiusAt(100 * zr)
	if math.Abs(far-b.Divergence()*100*zr)/far > 0.01 {
		t.Fatalf("far-field radius inconsistent with divergence")
	}
}

func TestGaussianRadiusMonotonic(t *testing.T) {
	b := GaussianBeam{Waist: 10e-6, Wavelength: 980e-9, Index: 1}
	err := quick.Check(func(a, c uint16) bool {
		z1, z2 := float64(a)*1e-5, float64(c)*1e-5
		if z1 > z2 {
			z1, z2 = z2, z1
		}
		return b.RadiusAt(z1) <= b.RadiusAt(z2)+1e-15
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestApertureTransmission(t *testing.T) {
	// Aperture at the 1/e² radius passes 1-exp(-2) ≈ 86.5%.
	got := ApertureTransmission(30e-6, 30e-6)
	if math.Abs(got-(1-math.Exp(-2))) > 1e-12 {
		t.Fatalf("T(a=w) = %g", got)
	}
	if ApertureTransmission(0, 1) != 0 {
		t.Fatal("zero aperture should pass nothing")
	}
	if big := ApertureTransmission(1, 1e-9); big < 0.9999 {
		t.Fatal("huge aperture should pass everything")
	}
}

func TestDBRoundTrip(t *testing.T) {
	err := quick.Check(func(raw uint8) bool {
		db := DB(raw) / 10
		ratio := db.Ratio()
		return math.Abs(float64(DBFromRatio(ratio)-db)) < 1e-9
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(float64(DBFromRatio(0)), 1) {
		t.Fatal("DBFromRatio(0) should be +Inf")
	}
}

func TestBERQRelation(t *testing.T) {
	// Q ~ 6 corresponds to BER ~ 1e-9; Q ~ 7 to ~1e-12.
	if ber := BERFromQ(6); ber > 2e-9 || ber < 1e-10 {
		t.Fatalf("BER(Q=6) = %g", ber)
	}
	for _, ber := range []float64{1e-5, 1e-10, 1e-12} {
		q := QFromBER(ber)
		back := BERFromQ(q)
		if math.Abs(math.Log10(back)-math.Log10(ber)) > 0.01 {
			t.Fatalf("QFromBER round trip: %g -> %g", ber, back)
		}
	}
}

func TestVCSELPowerLevels(t *testing.T) {
	v := PaperVCSEL()
	p1, p0 := v.LevelPowers()
	if math.Abs(float64(p1/p0)-v.ExtinctionRatio) > 1e-9 {
		t.Fatalf("extinction ratio = %g, want %g", p1/p0, v.ExtinctionRatio)
	}
	if avg := (p1 + p0) / 2; math.Abs(float64(avg-v.AveragePower())) > 1e-15 {
		t.Fatalf("levels do not average to the bias power")
	}
	// Paper: 0.48 mA at 2 V = 0.96 mW.
	if ep := v.ElectricalPower(); math.Abs(float64(ep)-0.96e-3) > 1e-9 {
		t.Fatalf("electrical power = %g, want 0.96 mW", ep)
	}
}

func TestVCSELBelowThreshold(t *testing.T) {
	v := PaperVCSEL()
	v.BiasCurrent = v.ThresholdCurrent / 2
	if v.AveragePower() != 0 {
		t.Fatal("below threshold the laser emits nothing")
	}
}

func TestVCSELParasiticBandwidth(t *testing.T) {
	v := PaperVCSEL()
	f := v.ParasiticBandwidth()
	want := 1 / (2 * math.Pi * 235 * 90e-15)
	if math.Abs(f-want)/want > 1e-12 {
		t.Fatalf("RC bandwidth = %g, want %g", f, want)
	}
}

func TestPathLossNearPaper(t *testing.T) {
	// Table 1: 2.6 dB over the 2 cm diagonal.
	b := PaperPath().PathLoss()
	if b.TotalDB < 2.2 || b.TotalDB > 3.2 {
		t.Fatalf("path loss %.2f dB, paper reports 2.6 dB", b.TotalDB)
	}
	if b.SpreadingDB < b.TxClipDB {
		t.Fatal("diffraction spreading should dominate transmit clipping")
	}
}

func TestPathLossGrowsWithDistance(t *testing.T) {
	p := PaperPath()
	short := p
	short.Distance = 5e-3
	if short.PathLoss().TotalDB >= p.PathLoss().TotalDB {
		t.Fatal("shorter routes should lose less")
	}
}

func TestChipGeometryWorstCase(t *testing.T) {
	g := PaperChip(4)
	worst := g.WorstCasePath()
	if worst < 15e-3 || worst > 25e-3 {
		t.Fatalf("worst-case path %.1f mm; the paper evaluates a 2 cm diagonal", worst*1e3)
	}
	if g.PathLength(0, 0) != 2*g.LayerHeight {
		t.Fatal("self path should be just the vertical excursion")
	}
	if g.PathLength(0, 15) != g.PathLength(15, 0) {
		t.Fatal("paths must be symmetric")
	}
}

func TestFlightWithinCycles(t *testing.T) {
	// 2 cm at light speed is ~67 ps, well under one 3.3 GHz cycle... but
	// in communication cycles (40 GHz) it is ~2.7 line bits: the paper's
	// footnote about padding bits.
	cyc := FlightCycles(2e-2, 3.3e9)
	if cyc > 0.3 {
		t.Fatalf("flight = %.3f core cycles; should be a fraction", cyc)
	}
	pad := SkewPaddingBits(5e-3, 2e-2, 40e9)
	if pad < 1 || pad > 5 {
		t.Fatalf("padding bits = %d; the paper cites tens of ps ≈ a few bits", pad)
	}
}

func TestLinkBudgetTable1(t *testing.T) {
	r := PaperLink().Budget()
	if !r.RateSupported {
		t.Fatalf("40 Gbps must be supported (max %.1f Gbps)", r.MaxDataRate/1e9)
	}
	if r.BER > 1e-8 || r.BER < 1e-14 {
		t.Fatalf("BER = %g, paper reports 1e-10", r.BER)
	}
	if r.OpticalSNRdB < 6.5 || r.OpticalSNRdB > 9.5 {
		t.Fatalf("SNR = %.1f dB, paper reports 7.5 dB", r.OpticalSNRdB)
	}
	if r.BitsPerCycle != 12 {
		t.Fatalf("bits per cycle = %d, want 12", r.BitsPerCycle)
	}
	if r.JitterRMS > 5e-12 {
		t.Fatalf("jitter = %.2f ps, paper reports 1.7 ps", r.JitterRMS*1e12)
	}
	if math.Abs(float64(r.TxActivePowerW)-7.26e-3) > 1e-6 {
		t.Fatalf("TX power = %g, want 6.3+0.96 mW", r.TxActivePowerW)
	}
	if r.EnergyPerBitTxJ > 0.5e-12 {
		t.Fatalf("TX energy %.3f pJ/bit too high", r.EnergyPerBitTxJ*1e12)
	}
}

func TestLinkBudgetDegradesWithLoss(t *testing.T) {
	c := PaperLink()
	c.Path.MirrorReflect = 0.5 // terrible mirrors
	bad := c.Budget()
	good := PaperLink().Budget()
	if bad.QFactor >= good.QFactor {
		t.Fatal("more loss must reduce Q")
	}
	if bad.BER <= good.BER {
		t.Fatal("more loss must raise BER")
	}
}

func TestLinkReportString(t *testing.T) {
	s := PaperLink().Budget().String()
	for _, want := range []string{"path loss", "Bit-error-rate", "Receiver", "standby"} {
		if !containsFold(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}
}

func containsFold(s, sub string) bool {
	return len(s) >= len(sub) && (stringsIndexFold(s, sub) >= 0)
}

func stringsIndexFold(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		ok := true
		for j := 0; j < len(sub); j++ {
			a, b := s[i+j], sub[j]
			if 'A' <= a && a <= 'Z' {
				a += 32
			}
			if 'A' <= b && b <= 'Z' {
				b += 32
			}
			if a != b {
				ok = false
				break
			}
		}
		if ok {
			return i
		}
	}
	return -1
}

func TestPhaseArraySteering(t *testing.T) {
	a := PaperPhaseArray()
	if a.SteeringLossDB(0) != 0 {
		t.Fatal("boresight should be lossless")
	}
	if a.SteeringLossDB(0.3) <= 0 {
		t.Fatal("off-axis steering must cost power")
	}
	if !math.IsInf(float64(a.SteeringLossDB(a.MaxSteerRad+0.1)), 1) {
		t.Fatal("beyond max steer the link is dead")
	}
	if !a.CanSteer(0.2) || a.CanSteer(2) {
		t.Fatal("CanSteer range wrong")
	}
	single := GaussianBeam{Waist: 5e-6, Wavelength: 980e-9, Index: 1}
	if a.BeamDivergence() >= single.Divergence() {
		t.Fatal("an array should beat a single small emitter on divergence")
	}
}

func TestLayoutSixteenNodeScale(t *testing.T) {
	r := PaperLayout(16).Layout()
	// §4.1: roughly 2000 transmit VCSELs at 16 nodes.
	if r.TxVCSELsTotal < 2000 || r.TxVCSELsTotal > 2400 {
		t.Fatalf("VCSEL count %d, paper estimates ~2000", r.TxVCSELsTotal)
	}
	// ~5 mm² at 30 um spacing (the paper's conservative figure).
	if mm2 := r.VCSELAreaTotal * 1e6; mm2 < 1 || mm2 > 6 {
		t.Fatalf("VCSEL area %.2f mm², paper estimates ~5 mm²", mm2)
	}
	if r.PhotonicAreaFrac <= 0 || r.PhotonicAreaFrac > 0.2 {
		t.Fatalf("photonic area share %.3f implausible", r.PhotonicAreaFrac)
	}
	if r.MirrorCount != 16*15 {
		t.Fatalf("mirrors = %d, want n(n-1)", r.MirrorCount)
	}
}

func TestLayoutPhaseArrayScaling(t *testing.T) {
	phased := PaperLayout(64).Layout()
	dedicated64 := PaperLayout(64)
	dedicated64.PhaseArray = false
	// The phase array makes the per-node VCSEL count constant in N —
	// far below the (N-1)*k a dedicated 64-node design would need.
	if phased.TxVCSELsPerNode*3 >= dedicated64.Layout().TxVCSELsPerNode {
		t.Fatalf("phase array per-node count %d should be far below dedicated %d",
			phased.TxVCSELsPerNode, dedicated64.Layout().TxVCSELsPerNode)
	}
	if s := PaperLayout(16).Layout().String(); len(s) == 0 {
		t.Fatal("report must render")
	}
}
