// Package optics models the physical substrate of the free-space optical
// interconnect: Gaussian-beam propagation through the micro-lens /
// micro-mirror path, VCSEL and photodetector device behaviour, receiver
// noise, and the end-to-end link budget that Table 1 of the paper
// summarizes. All quantities are SI (meters, watts, amperes, hertz)
// unless a name says otherwise.
package optics

import "math"

// GaussianBeam describes a fundamental-mode (TEM00) beam by its waist
// radius (1/e² intensity) and wavelength.
type GaussianBeam struct {
	Waist      float64 // waist radius w0, m
	Wavelength float64 // vacuum wavelength, m
	Index      float64 // refractive index of the propagation medium (1 for free space)
}

// RayleighRange returns z_R = pi * w0^2 * n / lambda, the distance over
// which the beam stays roughly collimated.
func (b GaussianBeam) RayleighRange() float64 {
	n := b.Index
	if n == 0 { //lint:allow floateq unset-field sentinel: Index is assigned, never computed
		n = 1
	}
	return math.Pi * b.Waist * b.Waist * n / b.Wavelength
}

// RadiusAt returns the 1/e² beam radius after propagating distance z from
// the waist: w(z) = w0 * sqrt(1 + (z/zR)^2).
func (b GaussianBeam) RadiusAt(z float64) float64 {
	zr := b.RayleighRange()
	r := z / zr
	return b.Waist * math.Sqrt(1+r*r)
}

// Divergence returns the far-field half-angle divergence lambda/(pi w0 n).
func (b GaussianBeam) Divergence() float64 {
	n := b.Index
	if n == 0 { //lint:allow floateq unset-field sentinel: Index is assigned, never computed
		n = 1
	}
	return b.Wavelength / (math.Pi * b.Waist * n)
}

// ApertureTransmission returns the fraction of beam power passing a
// centered circular aperture of the given radius when the local beam
// radius is w: T = 1 - exp(-2 a² / w²).
func ApertureTransmission(apertureRadius, beamRadius float64) float64 {
	if apertureRadius <= 0 {
		return 0
	}
	if beamRadius <= 0 {
		return 1
	}
	r := apertureRadius / beamRadius
	return 1 - math.Exp(-2*r*r)
}

// erfc is math.Erfc; aliased here so BER code reads like the textbook
// formula.
func erfc(x float64) float64 { return math.Erfc(x) }

// BERFromQ returns the on-off-keying bit error rate for Gaussian noise
// with the given Q factor: BER = 0.5 * erfc(Q / sqrt 2).
func BERFromQ(q float64) float64 {
	return 0.5 * erfc(q/math.Sqrt2)
}

// QFromBER inverts BERFromQ by bisection; it panics on ber outside (0, 0.5).
func QFromBER(ber float64) float64 {
	if ber <= 0 || ber >= 0.5 {
		panic("optics: BER must be in (0, 0.5)")
	}
	lo, hi := 0.0, 40.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if BERFromQ(mid) > ber {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
