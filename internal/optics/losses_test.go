package optics

import (
	"math"
	"strings"
	"testing"
)

// dim returns the mesh edge for a square node count.
func dim(nodes int) int {
	d := int(math.Round(math.Sqrt(float64(nodes))))
	return d
}

func reports(nodes int) []LossReport {
	d := PaperWaveguideDevices()
	g := PaperChip(dim(nodes))
	return []LossReport{
		d.TokenCrossbarLoss(nodes, g),
		d.MatrixCrossbarLoss(nodes, g),
		d.SnakeCrossbarLoss(nodes, g),
		d.FSOILoss(nodes, PaperLink(), PaperPhaseArray(), g),
	}
}

func TestLossBudgetsClose(t *testing.T) {
	for _, nodes := range []int{16, 64, 256} {
		for _, r := range reports(nodes) {
			if r.WorstCaseDB <= 0 {
				t.Fatalf("%s@%d: non-positive worst-case loss %.2f", r.Topology, nodes, r.WorstCaseDB)
			}
			if r.LaserPowerMW <= 0 || r.TotalLaserW <= 0 || r.EnergyPerBitJ <= 0 {
				t.Fatalf("%s@%d: budget did not close: %+v", r.Topology, nodes, r)
			}
			// The launch power must be exactly sensitivity + loss.
			wantDBm := r.SensitivityDBm.Plus(r.WorstCaseDB)
			if math.Abs(float64(r.LaserPowerDBm-wantDBm)) > 1e-9 {
				t.Fatalf("%s@%d: launch %.3f dBm, want %.3f", r.Topology, nodes, r.LaserPowerDBm, wantDBm)
			}
		}
	}
}

func TestWaveguideLossGrowsWithRadix(t *testing.T) {
	for i, topo := range []string{"corona", "matrix", "snake"} {
		l16 := reports(16)[i]
		l64 := reports(64)[i]
		l256 := reports(256)[i]
		if topo != l16.Topology {
			t.Fatalf("report order changed: got %s want %s", l16.Topology, topo)
		}
		if !(l16.WorstCaseDB < l64.WorstCaseDB && l64.WorstCaseDB < l256.WorstCaseDB) {
			t.Fatalf("%s: loss must grow with node count: %.2f, %.2f, %.2f",
				topo, l16.WorstCaseDB, l64.WorstCaseDB, l256.WorstCaseDB)
		}
	}
}

func TestFSOILossFlatInRadix(t *testing.T) {
	f64 := reports(64)[3]
	f256 := reports(256)[3]
	if f64.Topology != "fsoi" {
		t.Fatalf("report order changed: got %s", f64.Topology)
	}
	// Free-space loss depends on die size and steering only; with the
	// same die it must not grow by more than a fraction of a dB from 64
	// to 256 nodes (the geometry's worst-case diagonal is unchanged).
	if d := math.Abs(float64(f256.WorstCaseDB - f64.WorstCaseDB)); d > 0.5 {
		t.Fatalf("fsoi loss moved %.2f dB from 64 to 256 nodes; must stay flat", d)
	}
}

func TestFSOIWinsWorstCaseLossAtScale(t *testing.T) {
	// The frontier headline: at 256 nodes every waveguide crossbar pays
	// more worst-case loss than relay-free free-space optics.
	rs := reports(256)
	fsoi := rs[3]
	for _, r := range rs[:3] {
		if r.WorstCaseDB <= fsoi.WorstCaseDB {
			t.Fatalf("%s@256 loss %.2f dB <= fsoi %.2f dB", r.Topology, r.WorstCaseDB, fsoi.WorstCaseDB)
		}
	}
}

func TestMatrixCrossingDominatesAtScale(t *testing.T) {
	m := PaperWaveguideDevices().MatrixCrossbarLoss(256, PaperChip(16))
	if m.CrossingDB < m.PropagationDB+m.RingDB+m.BendDB {
		t.Fatalf("matrix@256: crossings %.2f dB should dominate the guided terms", m.CrossingDB)
	}
}

func TestSnakeSplitterIsLogarithmic(t *testing.T) {
	d := PaperWaveguideDevices()
	s64 := d.SnakeCrossbarLoss(64, PaperChip(8))
	s256 := d.SnakeCrossbarLoss(256, PaperChip(16))
	if math.Abs(float64(s64.SplitterDB)-10*math.Log10(64)) > 1e-9 {
		t.Fatalf("snake@64 splitter %.2f dB, want 10·log10(64)", s64.SplitterDB)
	}
	if growth := float64(s256.SplitterDB - s64.SplitterDB); math.Abs(growth-10*math.Log10(4)) > 1e-9 {
		t.Fatalf("snake splitter growth %.2f dB for 4x radix, want %.2f", growth, 10*math.Log10(4))
	}
}

func TestLossReportString(t *testing.T) {
	s := reports(64)[1].String()
	for _, want := range []string{"matrix @ 64 nodes", "worst-case loss", "energy per bit", "channels lit"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report rendering missing %q:\n%s", want, s)
		}
	}
}
