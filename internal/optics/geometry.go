package optics

import "math"

// FreeSpacePath describes the optical route between one transmitter and
// one receiver: collimation at the GaAs backside, a mirror-guided hop
// through the free-space layer, and focusing onto the photodetector.
type FreeSpacePath struct {
	Distance        float64 // total optical path length, m (paper: 2 cm diagonal)
	TxLensAperture  float64 // collimating micro-lens diameter, m (paper: 90 um)
	RxLensAperture  float64 // focusing micro-lens diameter, m (paper: 190 um)
	MirrorCount     int     // number of micro-mirror reflections (2 in Figure 1a)
	MirrorReflect   float64 // power reflectivity per mirror
	SubstrateLossDB DB      // GaAs substrate absorption + residual Fresnel
	Wavelength      float64 // m (paper: 980 nm)
}

// PaperPath returns the worst-case diagonal route used for Table 1.
func PaperPath() FreeSpacePath {
	return FreeSpacePath{
		Distance:        2e-2,
		TxLensAperture:  90e-6,
		RxLensAperture:  190e-6,
		MirrorCount:     2,
		MirrorReflect:   0.98,
		SubstrateLossDB: 0.10,
		Wavelength:      980e-9,
	}
}

// CollimatedWaist returns the 1/e² waist radius of the beam leaving the
// transmit micro-lens. The design collimates to a waist radius of half
// the lens diameter; the lens mount provides a clear aperture of twice
// the waist so transmit-side truncation is 1-exp(-8) ≈ 0.03%.
func (p FreeSpacePath) CollimatedWaist() float64 {
	return p.TxLensAperture / 2
}

// PathLoss returns the end-to-end optical power loss of the route, in dB,
// and its components. The dominant terms are diffraction spreading over
// the free-space hop (receiver-lens clipping) and mirror reflectivity.
func (p FreeSpacePath) PathLoss() PathLossBreakdown {
	w0 := p.CollimatedWaist()
	beam := GaussianBeam{Waist: w0, Wavelength: p.Wavelength, Index: 1}
	wAtRx := beam.RadiusAt(p.Distance)

	txClip := 1 - math.Exp(-8.0) // collimator clear aperture at 2x waist
	rxClip := ApertureTransmission(p.RxLensAperture/2, wAtRx)
	mirror := math.Pow(p.MirrorReflect, float64(p.MirrorCount))

	b := PathLossBreakdown{
		TxClipDB:      DBFromRatio(txClip),
		SpreadingDB:   DBFromRatio(rxClip),
		MirrorDB:      DBFromRatio(mirror),
		SubstrateDB:   p.SubstrateLossDB,
		BeamRadiusRx:  wAtRx,
		RayleighRange: beam.RayleighRange(),
	}
	b.TotalDB = b.TxClipDB + b.SpreadingDB + b.MirrorDB + b.SubstrateDB
	return b
}

// PathLossBreakdown itemizes the optical loss along a free-space route.
type PathLossBreakdown struct {
	TxClipDB      DB // collimating-lens truncation
	SpreadingDB   DB // diffraction spreading vs receive-lens aperture
	MirrorDB      DB // accumulated mirror reflectivity
	SubstrateDB   DB // GaAs substrate and coating losses
	TotalDB       DB
	BeamRadiusRx  float64 // 1/e² beam radius arriving at the receive lens, m
	RayleighRange float64 // collimated-beam Rayleigh range, m
}

// ChipGeometry positions nodes on a square die and derives per-pair
// optical path lengths including the vertical excursion through the
// free-space layer.
type ChipGeometry struct {
	DieEdge     float64 // m (20 mm die gives the 2 cm worst-case diagonal)
	LayerHeight float64 // free-space layer height above the GaAs backside, m
	MeshDim     int     // nodes per edge (4 for 16 nodes, 8 for 64)
}

// PaperChip returns the evaluation floorplan: a 4x4 grid on a die whose
// diagonal route is about 2 cm.
func PaperChip(dim int) ChipGeometry {
	return ChipGeometry{DieEdge: 13.0e-3, LayerHeight: 2.0e-3, MeshDim: dim}
}

// NodeCenter returns the (x, y) center of node i on the die.
func (g ChipGeometry) NodeCenter(i int) (x, y float64) {
	tile := g.DieEdge / float64(g.MeshDim)
	row := i / g.MeshDim
	col := i % g.MeshDim
	return (float64(col) + 0.5) * tile, (float64(row) + 0.5) * tile
}

// PathLength returns the optical distance between nodes a and b: the
// lateral separation plus the up-and-down excursion into the mirror layer.
func (g ChipGeometry) PathLength(a, b int) float64 {
	ax, ay := g.NodeCenter(a)
	bx, by := g.NodeCenter(b)
	lateral := math.Hypot(bx-ax, by-ay)
	return lateral + 2*g.LayerHeight
}

// WorstCasePath returns the longest node-to-node optical distance.
func (g ChipGeometry) WorstCasePath() float64 {
	n := g.MeshDim * g.MeshDim
	return g.PathLength(0, n-1)
}

// FlightCycles converts an optical distance into whole communication
// cycles at the given core clock: time = distance / c.
func FlightCycles(distance float64, coreClockHz float64) float64 {
	const c = 299792458.0
	return distance / c * coreClockHz
}

// SkewPaddingBits returns the number of serializer padding bits needed to
// equalize a path against the worst case at the given line rate, matching
// the paper's footnote that path-length differences (tens of ps) are
// absorbed by padding and digital delay lines.
func SkewPaddingBits(distance, worst float64, lineRateHz float64) int {
	const c = 299792458.0
	dt := (worst - distance) / c
	return int(math.Ceil(dt * lineRateHz))
}
