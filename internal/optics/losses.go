package optics

import (
	"fmt"
	"math"
	"strings"
)

// This file holds the worst-case insertion-loss models behind the
// optical-topology frontier sweep (internal/optnet, exp "frontier").
// The methodology follows the comparative study of on-chip optical
// crossbars in arXiv:1512.07492: for each topology, count the lossy
// elements (ring resonators passed off- and on-resonance, waveguide
// crossings, bends, couplers, broadcast splitters) along the lossiest
// source→destination route, sum their dB contributions, and derive the
// laser power each channel needs so the photodetector still sees its
// sensitivity floor after the worst-case path. Per arXiv:1303.3954 that
// laser power — through the laser's wall-plug efficiency — is what sets
// the interconnect's energy per bit, which is why worst-case loss, not
// average latency, decides which topology survives as node count grows.

// WaveguideDevices collects the silicon-photonics device constants the
// waveguide-crossbar loss models share. The defaults sit at the
// conservative end of the ranges surveyed in arXiv:1512.07492.
type WaveguideDevices struct {
	PropagationDBPerCm float64 // waveguide propagation loss, dB/cm (a density, not a DB)
	CrossingDB         DB      // per waveguide crossing
	BendDB             DB      // per 90° bend
	RingThroughDB      DB      // passing a ring off-resonance
	RingDropDB         DB      // dropped through a ring on-resonance
	CouplerDB          DB      // laser-to-waveguide coupling
	SensitivityDBm     DBm     // photodetector sensitivity floor
	MarginDB           DB      // system margin on top of the budget
	LaserEfficiency    float64 // laser wall-plug efficiency (optical/electrical)
	LineRate           float64 // bit/s per wavelength channel
}

// PaperWaveguideDevices returns the device operating point used by the
// frontier sweep: 0.274 dB/cm propagation, 0.12 dB per crossing,
// 0.005 dB ring through-loss, 0.5 dB drop loss, 1 dB coupler, -20 dBm
// sensitivity, 3 dB margin, 5% wall-plug efficiency, and the FSOI
// paper's 40 Gbps line rate so the energy columns compare directly.
func PaperWaveguideDevices() WaveguideDevices {
	return WaveguideDevices{
		PropagationDBPerCm: 0.274,
		CrossingDB:         0.12,
		BendDB:             0.01,
		RingThroughDB:      0.005,
		RingDropDB:         0.5,
		CouplerDB:          1.0,
		SensitivityDBm:     -20,
		MarginDB:           3,
		LaserEfficiency:    0.05,
		LineRate:           40e9,
	}
}

// LossReport is the topology-level analogue of LinkReport: the
// worst-case insertion-loss budget of one optical interconnect at one
// node count, and the laser power and energy per bit it implies.
type LossReport struct {
	Topology string
	Nodes    int

	// Element counts along the lossiest source→destination route.
	Crossings    int
	ThroughRings int
	DropRings    int
	Bends        int
	PathLengthCm float64 // worst-case guided (or free-space) route

	// Loss budget.
	PropagationDB DB
	CrossingDB    DB
	RingDB        DB // through + drop
	BendDB        DB
	CouplerDB     DB
	SplitterDB    DB // SWMR broadcast split (10·log10 n), 0 elsewhere
	MarginDB      DB
	WorstCaseDB   DB // total: what the laser must overcome

	// Power and energy derived from the budget.
	SensitivityDBm  DBm // receiver floor the budget is closed against
	LaserPowerDBm   DBm // optical launch power per wavelength channel
	LaserPowerMW    float64
	Channels        int     // wavelength channels the topology keeps lit
	TotalLaserW     Watts   // electrical wall-plug power, all channels lit
	EnergyPerBitJ   Joules  // electrical laser energy per bit on one channel
	LineRate        float64 // bit/s per channel the energy is quoted at
	LaserEfficiency float64
}

// finish sums the component losses and derives power and energy.
func (d WaveguideDevices) finish(r LossReport) LossReport {
	r.PropagationDB = DB(r.PathLengthCm * d.PropagationDBPerCm)
	r.CrossingDB = d.CrossingDB.Scale(float64(r.Crossings))
	r.RingDB = d.RingThroughDB.Scale(float64(r.ThroughRings)) + d.RingDropDB.Scale(float64(r.DropRings))
	r.BendDB = d.BendDB.Scale(float64(r.Bends))
	r.CouplerDB = d.CouplerDB
	r.MarginDB = d.MarginDB
	r.WorstCaseDB = r.PropagationDB + r.CrossingDB + r.RingDB + r.BendDB +
		r.CouplerDB + r.SplitterDB + r.MarginDB
	r.SensitivityDBm = d.SensitivityDBm
	r.LineRate = d.LineRate
	r.LaserEfficiency = d.LaserEfficiency
	return closeBudget(r)
}

// closeBudget derives laser power and energy from a summed budget.
func closeBudget(r LossReport) LossReport {
	r.LaserPowerDBm = r.SensitivityDBm.Plus(r.WorstCaseDB)
	r.LaserPowerMW = r.LaserPowerDBm.MilliWatts()
	perChannel := Watts(r.LaserPowerMW * 1e-3 / r.LaserEfficiency)
	r.TotalLaserW = perChannel.Scale(float64(r.Channels))
	r.EnergyPerBitJ = perChannel.Per(r.LineRate)
	return r
}

// serpentineCm returns the length of a waveguide snaking through every
// tile of the die: one die-edge per tile row plus the return legs.
func serpentineCm(g ChipGeometry) float64 {
	return float64(g.MeshDim+1) * g.DieEdge * 100
}

// TokenCrossbarLoss budgets the Corona-style MWSR crossbar: one
// serpentine waveguide per destination channel visits every writer's
// modulator, so the worst-case route runs the full serpentine, passes
// the other n-1 rings off-resonance, and drops once at the reader.
// The token itself is lossless here — its cost is latency, which the
// corona simulation model charges.
func (d WaveguideDevices) TokenCrossbarLoss(nodes int, g ChipGeometry) LossReport {
	return d.finish(LossReport{
		Topology:     "corona",
		Nodes:        nodes,
		ThroughRings: nodes - 1,
		DropRings:    1,
		Bends:        2 * (g.MeshDim - 1),
		PathLengthCm: serpentineCm(g),
		Channels:     nodes,
	})
}

// MatrixCrossbarLoss budgets the matrix/λ-router crossbar: an n×n ring
// matrix where the worst-case route traverses a full input row and a
// full output column — 2(n-1) waveguide crossings and as many rings
// passed off-resonance — before its single drop. Crossing loss grows
// linearly in n, which is what kills the matrix at high radix.
func (d WaveguideDevices) MatrixCrossbarLoss(nodes int, g ChipGeometry) LossReport {
	return d.finish(LossReport{
		Topology:     "matrix",
		Nodes:        nodes,
		Crossings:    2 * (nodes - 1),
		ThroughRings: 2 * (nodes - 1),
		DropRings:    1,
		Bends:        1,
		PathLengthCm: 2 * g.DieEdge * 100,
		Channels:     nodes * nodes,
	})
}

// SnakeCrossbarLoss budgets the snake/SWMR crossbar: each source owns a
// serpentine broadcast channel every reader taps, so beyond the
// serpentine propagation and the n-1 off-resonance taps, the launch
// power is split 1:n across readers — a 10·log10(n) dB broadcast loss
// that grows without bound in the radix.
func (d WaveguideDevices) SnakeCrossbarLoss(nodes int, g ChipGeometry) LossReport {
	return d.finish(LossReport{
		Topology:     "snake",
		Nodes:        nodes,
		ThroughRings: nodes - 1,
		DropRings:    1,
		Bends:        2 * (g.MeshDim - 1),
		PathLengthCm: serpentineCm(g),
		SplitterDB:   DB(10 * math.Log10(float64(nodes))),
		Channels:     nodes,
	})
}

// FSOILoss adapts the free-space Table 1 budget into the same report
// shape: the worst-case route is the folded die diagonal, whose loss is
// the Gaussian-beam path loss plus (at 64 nodes and beyond) the phase
// array's maximum steering roll-off. Free-space loss depends on die
// size, not node count — the relay-free property the frontier sweep is
// built to expose. The budget is closed against the same receiver
// sensitivity, margin, and line rate as the waveguide designs so the
// laser-power and energy columns compare like for like.
func (d WaveguideDevices) FSOILoss(nodes int, link LinkConfig, array PhaseArray, g ChipGeometry) LossReport {
	path := link.Path
	path.Distance = g.WorstCasePath()
	r := LossReport{
		Topology:     "fsoi",
		Nodes:        nodes,
		PathLengthCm: path.Distance * 100,
		Channels:     nodes,
	}
	pl := path.PathLoss()
	r.PropagationDB = pl.SpreadingDB + pl.TxClipDB // diffraction, not absorption
	r.BendDB = pl.MirrorDB                         // the two fold mirrors
	r.CouplerDB = pl.SubstrateDB
	if nodes > 16 {
		// Beam-steered phase arrays replace fixed mirrors at 64+; charge
		// the worst-case scan loss at the edge of the steering range.
		r.SplitterDB = array.SteeringLossDB(array.MaxSteerRad)
	}
	r.MarginDB = d.MarginDB
	r.WorstCaseDB = r.PropagationDB + r.BendDB + r.CouplerDB + r.SplitterDB + r.MarginDB
	r.SensitivityDBm = d.SensitivityDBm
	r.LineRate = d.LineRate
	r.LaserEfficiency = d.LaserEfficiency
	return closeBudget(r)
}

// String renders the budget in the shape of LinkReport.String.
func (r LossReport) String() string {
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }
	w("%s @ %d nodes — worst-case insertion loss", r.Topology, r.Nodes)
	w("  route length             %.2f cm (%.2f dB propagation)", r.PathLengthCm, r.PropagationDB)
	w("  crossings                %d (%.2f dB)", r.Crossings, r.CrossingDB)
	w("  rings                    %d through + %d drop (%.2f dB)", r.ThroughRings, r.DropRings, r.RingDB)
	w("  bends                    %d (%.2f dB)", r.Bends, r.BendDB)
	w("  coupler                  %.2f dB", r.CouplerDB)
	if r.SplitterDB > 0 {
		w("  broadcast/steering       %.2f dB", r.SplitterDB)
	}
	w("  margin                   %.2f dB", r.MarginDB)
	w("  worst-case loss          %.2f dB", r.WorstCaseDB)
	w("Laser budget (sensitivity %.0f dBm, %.0f%% wall-plug, %.0f Gbps/λ)",
		r.SensitivityDBm, r.LaserEfficiency*100, r.LineRate/1e9)
	w("  launch power per λ       %.3f mW (%.1f dBm)", r.LaserPowerMW, r.LaserPowerDBm)
	w("  channels lit             %d", r.Channels)
	w("  total laser (electrical) %.3f W", r.TotalLaserW)
	w("  energy per bit           %.3f pJ", r.EnergyPerBitJ*1e12)
	return b.String()
}
