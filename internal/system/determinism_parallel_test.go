package system

import (
	"testing"

	"fsoi/internal/fault"
	"fsoi/internal/parallel"
	"fsoi/internal/workload"
)

// TestParallelFaultRunsByteIdentical extends the cross-run determinism
// guarantee to the worker pool: a batch of 16-node fault-enabled runs —
// the heaviest consumer of named RNG streams — fanned out through
// parallel.Map must merge to exactly the Canonical strings the same
// batch produces serially, at every worker count. Each job owns its own
// System (engine, RNG tree, packet free-list); nothing is shared.
func TestParallelFaultRunsByteIdentical(t *testing.T) {
	names := []string{"mp3d", "fft", "jacobi", "mp3d", "fft", "jacobi"}
	apps := make([]workload.App, len(names))
	for i, name := range names {
		apps[i] = tinyApp(t, name) // resolved on the test goroutine
	}
	batch := func(workers int) []string {
		return parallel.Map(len(apps), workers, func(i int) string {
			cfg := Default(16, NetFSOI)
			cfg.Seed = uint64(i + 1)
			cfg.Fault = fault.Config{
				MarginPenaltyDB: 2.5,
				VCSELFailProb:   0.05,
				ConfirmDropProb: 0.05,
			}
			return New(cfg).Run(apps[i]).Canonical()
		})
	}
	serial := batch(1)
	for _, w := range []int{2, 8} {
		got := batch(w)
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: run %d (%s, seed %d) diverges from serial canonical output",
					w, i, names[i], i+1)
			}
		}
	}
}
