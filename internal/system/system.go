// Package system assembles a chip multiprocessor: cores, private L1s,
// the distributed L2/directory slices, memory controllers, and one of
// the interconnects (FSOI, the mesh baseline, or the L0/Lr1/Lr2 ideal
// networks), then runs a workload and reports the paper's metrics.
package system

import (
	"fmt"

	"fsoi/internal/cache"
	"fsoi/internal/coherence"
	"fsoi/internal/core"
	"fsoi/internal/corona"
	"fsoi/internal/cpu"
	"fsoi/internal/fault"
	"fsoi/internal/memory"
	"fsoi/internal/mesh"
	"fsoi/internal/noc"
	"fsoi/internal/obs"
	"fsoi/internal/optics"
	"fsoi/internal/optnet"
	"fsoi/internal/power"
	"fsoi/internal/sim"
	"fsoi/internal/sim/shard"
	"fsoi/internal/stats"
	"fsoi/internal/workload"
)

// NetworkKind selects the interconnect under test.
type NetworkKind int

// Interconnect configurations of Figures 6/7.
const (
	NetFSOI    NetworkKind = iota
	NetMesh                // canonical 4-cycle routers, full contention
	NetL0                  // idealized: serialization + source queuing only
	NetLr1                 // 1-cycle routers, contention-free
	NetLr2                 // 2-cycle routers, contention-free
	NetCorona              // corona-style token-arbitrated optical crossbar
	NetOptical             // any member of the optnet registry (Config.Optical)
)

// String names the network kind.
func (k NetworkKind) String() string {
	switch k {
	case NetFSOI:
		return "fsoi"
	case NetMesh:
		return "mesh"
	case NetL0:
		return "L0"
	case NetLr1:
		return "Lr1"
	case NetLr2:
		return "Lr2"
	case NetCorona:
		return "corona"
	case NetOptical:
		return "optical"
	}
	return fmt.Sprintf("NetworkKind(%d)", int(k))
}

// Config assembles a run.
type Config struct {
	Nodes int
	Net   NetworkKind
	// Optical names the optnet registry member to build when Net ==
	// NetOptical. The "fsoi" member is normalized to the NetFSOI path so
	// it keeps its confirmation channel, packet recycling, and fault
	// hooks; the registry entry exists for the frontier loss models and
	// the conformance suite.
	Optical   string
	FSOI      core.Config // used when Net == NetFSOI
	Memory    memory.Config
	L1        coherence.L1Config
	Dir       coherence.DirConfig
	Core      cpu.Config
	Power     power.Params
	Seed      uint64
	MaxCycles sim.Cycle
	// Shards, when > 1, runs the simulation on the exact sharded engine
	// (internal/sim/shard): per-node-group event queues popped in the
	// serial engine's global (cycle, seq) order, so metrics and traces
	// stay byte-identical to Shards <= 1 at any shard count. Components
	// register on their node's home shard and networks hand cross-node
	// events to the owning shard inside the topology's declared
	// lookahead discipline, which the engine meters.
	Shards int
	// ForceCoherentSync disables the §5.1 confirmation-channel sync path
	// even when the network supports it (for the ll/sc ablation).
	ForceCoherentSync bool
	// MeshBandwidthFrac throttles mesh injection bandwidth (Figure 11).
	MeshBandwidthFrac float64
	// MeshRouterCycles overrides the 4-stage router depth when positive.
	MeshRouterCycles int
	// TracePackets, when positive, keeps the last N delivered packets in
	// a ring buffer exposed through Trace().
	TracePackets int
	// Observe attaches the packet-lifecycle observability layer
	// (internal/obs): every packet's inject/deliver events plus, on FSOI,
	// the per-attempt tx-start/collision/backoff/confirm-drop/drop
	// lifecycle, exported through Metrics.Obs and Metrics.ObsRegistry.
	// Off (the default) the recorder stays nil and every emission site is
	// a single nil check, so metrics are byte-identical either way.
	Observe bool
	// ObserveLimit caps the recorded event count when Observe is on;
	// zero or negative means unbounded. Past the cap, events are counted
	// as lost, never silently discarded.
	ObserveLimit int
	// Fault selects the physical-fault models to inject (FSOI only; the
	// mesh baselines have no optical layer to degrade). The zero value
	// attaches nothing and leaves every code path and RNG draw identical
	// to a fault-free build.
	Fault fault.Config
}

// Default returns the paper configuration for the given node count and
// network.
func Default(nodes int, net NetworkKind) Config {
	channels := 4
	if nodes > 16 {
		channels = 8
	}
	return Config{
		Nodes:     nodes,
		Net:       net,
		FSOI:      core.PaperConfig(nodes),
		Memory:    memory.PaperMemory(channels),
		L1:        coherence.PaperL1(),
		Dir:       coherence.PaperDir(),
		Core:      cpu.PaperCore(),
		Power:     power.PaperPower(),
		Seed:      1,
		MaxCycles: 40_000_000,
	}
}

// DefaultOptical returns the paper configuration wired to an optnet
// registry topology by name.
func DefaultOptical(nodes int, topology string) Config {
	cfg := Default(nodes, NetOptical)
	cfg.Optical = topology
	return cfg
}

// meshDim returns the mesh edge for a node count (must be square).
func meshDim(nodes int) int {
	for d := 1; d*d <= nodes; d++ {
		if d*d == nodes {
			return d
		}
	}
	panic(fmt.Sprintf("system: node count %d is not a square", nodes))
}

// Metrics is the outcome of one run.
type Metrics struct {
	App       string
	Net       string
	Nodes     int
	Cycles    sim.Cycle
	Finished  bool // all threads completed before MaxCycles
	Latency   *noc.LatencyStats
	FSOI      *core.Stats // nil on electrical networks
	Energy    power.Breakdown
	AvgPowerW optics.Watts

	// FaultCounters aggregates the injected-fault census and the
	// resilience events it triggered; nil unless fault injection was on.
	FaultCounters *stats.CounterSet

	// Obs holds the packet-lifecycle event recorder and ObsRegistry the
	// percentile latency tables; both nil unless Config.Observe was set.
	Obs         *obs.Recorder
	ObsRegistry *obs.Registry
	// DroppedPackets counts packets the network permanently gave up on
	// (FSOI retry exhaustion under Config.FSOI.MaxRetries).
	DroppedPackets int64

	// Traffic and protocol counters aggregated over nodes.
	MetaPackets   int64
	DataPackets   int64
	Invalidations int64
	ElidedAcks    int64
	Nacks         int64
	SyncStall     int64

	// Reply-latency distribution over all read misses (Figure 5).
	ReplyHist *stats.Histogram
}

// Speedup compares run times (baseline cycles / this cycles).
func (m Metrics) Speedup(baseline Metrics) float64 {
	if m.Cycles == 0 {
		return 0
	}
	return float64(baseline.Cycles) / float64(m.Cycles)
}

// System is one assembled CMP.
type System struct {
	cfg      Config
	engine   sim.Driver
	shardEng *shard.Engine // non-nil when cfg.Shards > 1
	rng      *sim.RNG
	net      noc.Network
	fsoi     *core.Network
	meshNet  *mesh.Network
	l1s      []*coherence.L1
	dirs     []*coherence.Directory
	mems     map[int]*memory.Controller
	cores    []*cpu.Core
	sync     syncFabric
	injector *fault.Injector
	finished int
	pktID    uint64
	tracer   *noc.Tracer
	obsRec   *obs.Recorder
	obsReg   *obs.Registry

	// pktFree recycles retired noc.Packets so the transport's steady
	// state allocates nothing per message. It is a plain slice,
	// deliberately NOT a sync.Pool: pool reuse order depends on the Go
	// scheduler and GC, which would let host-machine timing leak into
	// pointer identities, while LIFO reuse from a slice is a pure
	// function of simulated history and keeps runs byte-identical.
	pktFree []*noc.Packet

	// Point-to-point ordering state (§4.4): one in-flight message per
	// (src, dst, line); the rest wait here.
	ordInFlight map[orderKey]bool
	ordQueue    map[orderKey][]coherence.Msg
}

// orderKey identifies one ordered message stream.
type orderKey struct {
	src, dst int
	addr     cache.LineAddr
}

// transport adapts the system to coherence.Transport.
type transport struct{ s *System }

// packetFor wraps a protocol message for the wire, reusing a retired
// packet from the free-list when one is available.
func (t transport) packetFor(m coherence.Msg) *noc.Packet {
	s := t.s
	s.pktID++
	var p *noc.Packet
	if n := len(s.pktFree); n > 0 {
		p = s.pktFree[n-1]
		s.pktFree[n-1] = nil
		s.pktFree = s.pktFree[:n-1]
	} else {
		p = new(noc.Packet)
	}
	p.ID = s.pktID
	p.Src = m.From
	p.Dst = m.To
	p.Payload = m
	if m.HasData {
		p.Type = noc.Data
	}
	switch m.Type {
	case coherence.DataS, coherence.DataE, coherence.DataM, coherence.MemAck:
		p.IsReply = true
	case coherence.WriteBack:
		p.IsWriteback = m.HasData
	}
	switch m.Type {
	case coherence.ReqMem, coherence.MemWrite, coherence.MemAck:
		p.IsMemory = true
	case coherence.ReqSh, coherence.ReqEx:
		p.ExpectsDataReply = true
	}
	return p
}

// Send enforces the §4.4 point-to-point ordering invariant Table 2
// assumes: at most one message per (source, destination, line) is in
// flight; later ones queue at the source until the earlier is delivered.
// On FSOI this is the confirmation-based serialization the paper
// describes; on the mesh it models deterministic routing with ordered
// per-class channels.
func (t transport) Send(m coherence.Msg) bool {
	s := t.s
	key := orderKey{src: m.From, dst: m.To, addr: m.Addr}
	if s.ordInFlight[key] {
		s.ordQueue[key] = append(s.ordQueue[key], m)
		return true
	}
	p := t.packetFor(m)
	if !s.net.Send(p) {
		s.recycle(p)
		return false
	}
	s.observeInject(p)
	s.ordInFlight[key] = true
	return true
}

func (t transport) ConfirmationElision() bool {
	return t.s.fsoi != nil && t.s.fsoi.SupportsConfirmation()
}

func (t transport) BooleanSubscription() bool {
	return t.s.fsoi != nil && t.s.fsoi.SupportsBooleanSubscription() && !t.s.cfg.ForceCoherentSync
}

func (t transport) SendBit(from, to int, tag uint64, value bool) {
	if t.s.fsoi == nil {
		panic("system: SendBit without FSOI network")
	}
	t.s.fsoi.SendConfirmBit(from, to, tag, value)
}

// New assembles a system.
func New(cfg Config) *System {
	if cfg.Net == NetOptical && cfg.Optical == "fsoi" {
		// The FSOI registry member must run through the dedicated path:
		// its packets stay live until confirmation, which the generic
		// optical delivery path (recycle at delivery) would violate.
		cfg.Net = NetFSOI
	}
	s := &System{
		cfg:         cfg,
		rng:         sim.NewRNG(cfg.Seed),
		mems:        make(map[int]*memory.Controller),
		ordInFlight: make(map[orderKey]bool),
		ordQueue:    make(map[orderKey][]coherence.Msg),
	}
	if cfg.Shards > 1 {
		s.shardEng = shard.New(cfg.Shards)
		s.shardEng.AssignNodes(cfg.Nodes)
		s.engine = s.shardEng
	} else {
		s.engine = sim.NewEngine()
	}
	dim := meshDim(cfg.Nodes)
	tr := transport{s}
	// onShard brackets a node's component construction so tickers and
	// initial events register on the node's home shard; a no-op serially.
	onShard := func(node int) {
		if s.shardEng != nil {
			s.shardEng.SetShard(s.shardEng.NodeShard(node))
		}
	}

	switch cfg.Net {
	case NetFSOI:
		fc := cfg.FSOI
		fc.Nodes = cfg.Nodes
		s.fsoi = core.New(fc, s.engine, s.rng)
		s.net = s.fsoi
		if cfg.Fault.Enabled() {
			// The injector's streams derive only when injection is on, so
			// fault-free runs keep the pre-existing stream genealogy and
			// stay bit-identical.
			s.injector = fault.New(cfg.Fault, fc, s.rng.NewStream("fault"))
			s.fsoi.SetFaultModel(s.injector)
		}
	case NetMesh:
		mc := mesh.PaperMesh(dim)
		mc.BandwidthFrac = cfg.MeshBandwidthFrac
		if cfg.MeshRouterCycles > 0 {
			mc.RouterCycles = cfg.MeshRouterCycles
		}
		s.meshNet = mesh.New(mc, s.engine)
		s.net = s.meshNet
	case NetL0:
		s.net = mesh.NewL0(dim, s.engine)
	case NetLr1:
		s.net = mesh.NewLr(dim, 1, s.engine)
	case NetLr2:
		s.net = mesh.NewLr(dim, 2, s.engine)
	case NetCorona:
		s.net = corona.New(corona.PaperCorona(cfg.Nodes), s.engine)
	case NetOptical:
		n, err := optnet.Build(cfg.Optical, cfg.Nodes, s.engine, s.rng)
		if err != nil {
			panic(fmt.Sprintf("system: %v", err))
		}
		s.net = n
	default:
		panic("system: unknown network kind")
	}
	// The network is a global component; it ticks on shard 0 and hands
	// per-node events to their owning shards through noc.ScheduleAt. Its
	// declared lookahead sizes the engine's cross-shard window.
	s.engine.Register(sim.TickFunc(s.net.Tick))
	if s.shardEng != nil {
		if la, ok := s.net.(noc.Lookaheader); ok {
			s.shardEng.SetLookahead(la.Lookahead())
		}
	}

	home := func(a cache.LineAddr) int { return int(uint64(a) % uint64(cfg.Nodes)) }
	attach := memory.AttachNodes(dim, cfg.Memory.Channels)
	memNode := func(h int) int { return attach[h%cfg.Memory.Channels] }

	for i := 0; i < cfg.Nodes; i++ {
		onShard(i)
		l1 := coherence.NewL1(i, cfg.L1, s.engine, s.rng.NewStream(fmt.Sprintf("l1-%d", i)), tr, home)
		s.l1s = append(s.l1s, l1)
		s.engine.Register(l1)
		dir := coherence.NewDirectory(i, cfg.Dir, s.engine, tr, memNode)
		s.dirs = append(s.dirs, dir)
		s.engine.Register(dir)
	}
	for c := 0; c < cfg.Memory.Channels; c++ {
		node := attach[c]
		if _, dup := s.mems[node]; dup {
			continue
		}
		onShard(node)
		ctl := memory.NewController(node, cfg.Memory, s.engine, func(m coherence.Msg) {
			if !tr.Send(m) {
				// Memory replies retry through the engine until the NIC
				// accepts them.
				s.retrySend(m)
			}
		})
		s.mems[node] = ctl
	}
	if s.shardEng != nil {
		s.shardEng.SetShard(0)
	}

	if cfg.TracePackets > 0 {
		s.tracer = noc.NewTracer(cfg.TracePackets)
	}
	if cfg.Observe {
		s.obsRec = obs.NewRecorder(cfg.ObserveLimit)
		s.obsReg = obs.NewRegistry()
		// Any network exposing the observer hook gets the recorder: FSOI
		// emits the full per-attempt lifecycle, the crossbar family emits
		// tx-start at arbitration grant.
		if o, ok := s.net.(interface{ SetObserver(r *obs.Recorder) }); ok {
			o.SetObserver(s.obsRec)
		}
		if s.injector != nil {
			s.injector.AnnotateTrace(s.obsRec)
		}
	}
	s.net.SetDelivery(s.deliver)
	if s.fsoi != nil {
		s.fsoi.SetConfirmDelivery(s.onConfirm)
		s.fsoi.SetBitDelivery(s.onBit)
		s.fsoi.SetDropDelivery(s.onDrop)
	}

	if tr.BooleanSubscription() {
		s.sync = newSubscriptionSync(s, tr)
	} else {
		s.sync = newCoherentSync(s)
	}
	return s
}

// retrySend keeps attempting a message until the network accepts it.
func (s *System) retrySend(m coherence.Msg) {
	s.engine.After(1, func(sim.Cycle) {
		if !(transport{s}).Send(m) {
			s.retrySend(m)
		}
	})
}

// orderedDone releases the (src, dst, line) stream after a delivery and
// launches the next queued message, retrying through the engine when the
// NIC pushes back.
func (s *System) orderedDone(m coherence.Msg) {
	key := orderKey{src: m.From, dst: m.To, addr: m.Addr}
	q := s.ordQueue[key]
	if len(q) == 0 {
		delete(s.ordInFlight, key)
		delete(s.ordQueue, key)
		return
	}
	next := q[0]
	s.ordQueue[key] = q[1:]
	s.launchOrdered(key, next)
}

func (s *System) launchOrdered(key orderKey, m coherence.Msg) {
	p := (transport{s}).packetFor(m)
	if s.net.Send(p) {
		s.observeInject(p)
		return
	}
	s.recycle(p)
	s.engine.After(1, func(sim.Cycle) { s.launchOrdered(key, m) })
}

// observeInject records a packet's acceptance by the network. Injection
// time is the current engine cycle: Send only succeeds synchronously, so
// no separate timestamp needs to ride on the packet.
func (s *System) observeInject(p *noc.Packet) {
	if s.obsRec == nil {
		return
	}
	s.obsRec.Emit(obs.Event{
		At: s.engine.Now(), Kind: obs.KindInject, ID: p.ID,
		Src: int32(p.Src), Dst: int32(p.Dst),
		Class: uint8(p.Type), Lane: obs.LaneNone,
	})
}

// recycle retires a packet to the free-list. Callers must guarantee the
// network holds no further reference: a rejected Send, a non-FSOI
// delivery (the networks' last touch), or an FSOI confirmation (which
// fires strictly after delivery, exactly once per packet — a duplicate
// re-delivery only ever re-confirms when the earlier confirmation beam
// was dropped, and that earlier confirmation never ran this callback).
// Packets are scrubbed here, at retirement, not lazily at reuse: the
// historical code zeroed only in packetFor, which left the Payload Msg
// pinned for the whole idle period and meant any new reuse path that
// forgot the reset would hand out a packet still carrying the previous
// message's retry count and cycle stamps.
func (s *System) recycle(p *noc.Packet) {
	*p = noc.Packet{}
	s.pktFree = append(s.pktFree, p)
}

// deliver routes an arriving packet to its destination controller.
func (s *System) deliver(p *noc.Packet, now sim.Cycle) {
	m, ok := p.Payload.(coherence.Msg)
	if !ok {
		panic("system: foreign payload on the interconnect")
	}
	s.orderedDone(m)
	if s.tracer != nil {
		s.tracer.Record(p, now)
	}
	if s.obsRec != nil {
		lat := p.TotalLatency()
		s.obsRec.Emit(obs.Event{
			At: now, Kind: obs.KindDeliver, ID: p.ID, Aux: lat,
			Src: int32(p.Src), Dst: int32(p.Dst), Attempt: int32(p.Retries),
			Class: uint8(p.Type), Lane: obs.LaneNone,
		})
		s.obsReg.Observe(uint8(p.Type), p.Src, p.Dst, lat)
	}
	switch m.Type {
	case coherence.ReqMem, coherence.MemWrite:
		ctl := s.mems[m.To]
		if ctl == nil {
			panic(fmt.Sprintf("system: no memory controller at node %d", m.To))
		}
		ctl.Handle(m, now)
	case coherence.MemAck,
		coherence.ReqSh, coherence.ReqEx, coherence.ReqUpg,
		coherence.WriteBack, coherence.InvAck, coherence.DwgAck,
		coherence.SyncReq:
		s.dirs[m.To].Handle(m, now)
	case coherence.SyncResp:
		s.sync.onSyncResp(m, now)
	default:
		s.l1s[m.To].Handle(m, now)
	}
	if s.fsoi == nil {
		// Electrical networks never touch a packet after delivery; FSOI
		// packets stay live until their confirmation callback.
		s.recycle(p)
	}
}

// onConfirm handles sender-side confirmations (FSOI): an elided-ack Inv's
// confirmation is the invalidation ack.
func (s *System) onConfirm(p *noc.Packet, now sim.Cycle) {
	if m, ok := p.Payload.(coherence.Msg); ok {
		if m.Type == coherence.Inv && m.Value {
			s.dirs[m.From].OnInvConfirm(m.Addr, now)
		}
	}
	s.recycle(p)
}

// onDrop handles the FSOI network permanently giving up on a packet
// (Config.FSOI.MaxRetries). The ordered (src, dst, line) stream is
// released so later messages do not wedge behind the corpse, the fate
// lands in the ring buffer with a terminal DROPPED status, and the
// packet retires to the free-list — a drop is the network's last touch.
// The coherence message itself is lost by design; a run with drops may
// legitimately report Finished=false, which is exactly the resilience
// signal the fault experiments measure.
func (s *System) onDrop(p *noc.Packet, now sim.Cycle) {
	if m, ok := p.Payload.(coherence.Msg); ok {
		s.orderedDone(m)
	}
	if s.tracer != nil {
		s.tracer.RecordStatus(p, now, noc.StatusDropped)
	}
	s.recycle(p)
}

// onBit routes confirmation-lane booleans to the sync fabric.
func (s *System) onBit(src, dst int, tag uint64, value bool, now sim.Cycle) {
	s.sync.onBit(dst, tag, value, now)
}

// Run executes one application to completion (or MaxCycles) and gathers
// metrics.
func (s *System) Run(app workload.App) Metrics {
	// Barrier target: every core participates in barrier 0.
	for _, d := range s.dirs {
		d.Sync().SetBarrierTarget(0, s.cfg.Nodes)
	}
	s.sync.setBarrierTarget(0, s.cfg.Nodes)

	for i := 0; i < s.cfg.Nodes; i++ {
		if s.shardEng != nil {
			s.shardEng.SetShard(s.shardEng.NodeShard(i))
		}
		stream := workload.NewStream(app, i, s.cfg.Nodes, s.cfg.Seed)
		c := cpu.New(i, s.cfg.Core, s.engine, s.l1s[i], stream, s.sync, func(core int, at sim.Cycle) {
			s.finished++
			if s.finished == s.cfg.Nodes {
				s.engine.Stop()
			}
		})
		s.cores = append(s.cores, c)
		c.Start()
	}
	if s.shardEng != nil {
		s.shardEng.SetShard(0)
	}
	s.engine.Run(s.cfg.MaxCycles)
	return s.collect(app.Name)
}

// collect assembles the metrics of a finished run.
func (s *System) collect(app string) Metrics {
	netName := s.cfg.Net.String()
	if s.cfg.Net == NetOptical {
		// Report the concrete topology, not the umbrella kind.
		netName = s.net.Name()
	}
	m := Metrics{
		App:      app,
		Net:      netName,
		Nodes:    s.cfg.Nodes,
		Cycles:   s.engine.Now(),
		Finished: s.finished == s.cfg.Nodes,
		Latency:  s.net.LatencyStats(),
	}
	if s.fsoi != nil {
		m.FSOI = s.fsoi.Stats()
		m.DroppedPackets = m.FSOI.Dropped[core.LaneMeta] + m.FSOI.Dropped[core.LaneData]
	}
	m.Obs = s.obsRec
	m.ObsRegistry = s.obsReg
	if s.injector != nil {
		m.FaultCounters = s.injector.Counters()
		st := s.fsoi.Stats()
		m.FaultCounters.Inc("bit_errors", st.BitErrors)
		m.FaultCounters.Inc("header_corruptions", st.HeaderCorruptions)
		m.FaultCounters.Inc("payload_crc_errors", st.PayloadCRCErrors)
		m.FaultCounters.Inc("confirm_drops", st.ConfirmDrops)
		m.FaultCounters.Inc("timeout_retransmits", st.TimeoutRetransmits)
		m.FaultCounters.Inc("duplicate_deliveries", st.DuplicateDeliveries)
		m.FaultCounters.Inc("degraded_transmissions", st.DegradedTransmissions)
	}
	m.ReplyHist = stats.NewHistogram(5, 60)
	var ops, l1acc, l2acc int64
	for i, l1 := range s.l1s {
		st := l1.Stats()
		m.Invalidations += st.Invalidations
		m.ElidedAcks += st.ElidedAcks
		m.Nacks += st.Nacks
		l1acc += st.Hits + st.Misses
		mergeHist(m.ReplyHist, st.MissHist)
		ops += s.cores[i].Stats().Ops
		m.SyncStall += s.cores[i].Stats().StallSync
	}
	for _, d := range s.dirs {
		l2acc += d.Stats().Requests + d.Stats().MemReads
	}
	m.MetaPackets = int64(s.net.LatencyStats().ByType[noc.Meta].N())
	m.DataPackets = int64(s.net.LatencyStats().ByType[noc.Data].N())

	act := power.Activity{
		Cycles:     m.Cycles,
		Nodes:      s.cfg.Nodes,
		Ops:        ops,
		L1Accesses: l1acc,
		L2Accesses: l2acc,
	}
	if s.fsoi != nil {
		st := s.fsoi.Stats()
		bitsTx := st.Attempts[core.LaneMeta]*72 + st.Attempts[core.LaneData]*360
		act.OpticalBitsTx = bitsTx
		act.OpticalBitsRx = bitsTx
		act.ConfirmBits = st.ConfirmBits + st.ConfirmSignals
		act.OpticalLanes = 3 // meta + data + confirmation
		act.OpticalRxPerNode = 2*s.cfg.FSOI.Receivers + 1
		slots := st.SlotsObserved[core.LaneMeta] + st.SlotsObserved[core.LaneData]
		if slots > 0 {
			act.TxBusyFraction = float64(st.Attempts[core.LaneMeta]+st.Attempts[core.LaneData]) / float64(slots)
		}
		m.Energy = s.cfg.Power.FSOIEnergy(act)
	} else {
		if s.meshNet != nil {
			act.FlitHops = s.meshNet.FlitHops()
		} else {
			// Ideal networks: charge hop activity as if routed, so the
			// energy comparison stays conservative.
			act.FlitHops = estimateFlitHops(s.net.LatencyStats(), s.cfg.Nodes)
		}
		act.Routers = s.cfg.Nodes
		m.Energy = s.cfg.Power.MeshEnergy(act)
	}
	m.AvgPowerW = s.cfg.Power.AveragePower(m.Energy, m.Cycles)
	return m
}

// estimateFlitHops approximates flit-hop activity for contention-free
// networks from delivered packet counts and the average hop count of a
// dim x dim mesh.
func estimateFlitHops(l *noc.LatencyStats, nodes int) int64 {
	dim := meshDim(nodes)
	avgHops := float64(2*dim) / 3
	flits := float64(l.ByType[noc.Meta].N())*1 + float64(l.ByType[noc.Data].N())*5
	return int64(flits * (avgHops + 1))
}

// mergeHist folds src into dst bucket-wise (same shape by construction).
func mergeHist(dst, src *stats.Histogram) {
	for i := 0; i < src.NumBuckets(); i++ {
		dst.AddN(int64(i)*5, src.Bucket(i))
	}
	dst.AddN(int64(src.NumBuckets())*5, src.Overflow())
}

// Diagnose reports stuck state after a run that failed to finish: cores
// that never completed and lines wedged in transient states.
func (s *System) Diagnose() string {
	out := ""
	for i, c := range s.cores {
		if c != nil && !c.Done() {
			out += fmt.Sprintf("core %d not done: ops=%d outstandingL1=%d\n", i, c.Stats().Ops, s.l1s[i].Outstanding())
		}
	}
	for i, d := range s.dirs {
		out += d.DumpTransients(fmt.Sprintf("dir %d", i))
	}
	return out
}

// Engine exposes the simulation engine (tests, fsoisim -profile).
func (s *System) Engine() sim.Driver { return s.engine }

// ShardEngine exposes the exact sharded engine when Config.Shards > 1
// selected it, for the handoff/lookahead meters; nil serially.
func (s *System) ShardEngine() *shard.Engine { return s.shardEng }

// L1 exposes a node's L1 controller (tests).
func (s *System) L1(i int) *coherence.L1 { return s.l1s[i] }

// Trace exposes the delivered-packet ring buffer (nil unless
// Config.TracePackets was set).
func (s *System) Trace() *noc.Tracer { return s.tracer }

// Obs exposes the lifecycle-event recorder (nil unless Config.Observe).
func (s *System) Obs() *obs.Recorder { return s.obsRec }

// ObsRegistry exposes the percentile latency registry (nil unless
// Config.Observe).
func (s *System) ObsRegistry() *obs.Registry { return s.obsReg }

// CoreStats exposes a core's counters (tests, diagnostics).
func (s *System) CoreStats(i int) *cpu.Stats { return s.cores[i].Stats() }

// Directory exposes a node's home slice (tests).
func (s *System) Directory(i int) *coherence.Directory { return s.dirs[i] }
