// Package system assembles a chip multiprocessor: cores, private L1s,
// the distributed L2/directory slices, memory controllers, and one of
// the interconnects (FSOI, the mesh baseline, or the L0/Lr1/Lr2 ideal
// networks), then runs a workload and reports the paper's metrics.
package system

import (
	"fmt"

	"fsoi/internal/adversary"
	"fsoi/internal/cache"
	"fsoi/internal/coherence"
	"fsoi/internal/core"
	"fsoi/internal/corona"
	"fsoi/internal/cpu"
	"fsoi/internal/fault"
	"fsoi/internal/memory"
	"fsoi/internal/mesh"
	"fsoi/internal/noc"
	"fsoi/internal/obs"
	"fsoi/internal/optics"
	"fsoi/internal/optnet"
	"fsoi/internal/power"
	"fsoi/internal/sim"
	"fsoi/internal/sim/shard"
	"fsoi/internal/stats"
	"fsoi/internal/workload"
)

// NetworkKind selects the interconnect under test.
type NetworkKind int

// Interconnect configurations of Figures 6/7.
const (
	NetFSOI    NetworkKind = iota
	NetMesh                // canonical 4-cycle routers, full contention
	NetL0                  // idealized: serialization + source queuing only
	NetLr1                 // 1-cycle routers, contention-free
	NetLr2                 // 2-cycle routers, contention-free
	NetCorona              // corona-style token-arbitrated optical crossbar
	NetOptical             // any member of the optnet registry (Config.Optical)
)

// String names the network kind.
func (k NetworkKind) String() string {
	switch k {
	case NetFSOI:
		return "fsoi"
	case NetMesh:
		return "mesh"
	case NetL0:
		return "L0"
	case NetLr1:
		return "Lr1"
	case NetLr2:
		return "Lr2"
	case NetCorona:
		return "corona"
	case NetOptical:
		return "optical"
	}
	return fmt.Sprintf("NetworkKind(%d)", int(k))
}

// Config assembles a run.
type Config struct {
	Nodes int
	Net   NetworkKind
	// Optical names the optnet registry member to build when Net ==
	// NetOptical. The "fsoi" member is normalized to the NetFSOI path so
	// it keeps its confirmation channel, packet recycling, and fault
	// hooks; the registry entry exists for the frontier loss models and
	// the conformance suite.
	Optical   string
	FSOI      core.Config // used when Net == NetFSOI
	Memory    memory.Config
	L1        coherence.L1Config
	Dir       coherence.DirConfig
	Core      cpu.Config
	Power     power.Params
	Seed      uint64
	MaxCycles sim.Cycle
	// Shards, when > 1, runs the simulation on the exact sharded engine
	// (internal/sim/shard): per-node-group event queues popped in the
	// serial engine's global (cycle, seq) order, so metrics and traces
	// stay byte-identical to Shards <= 1 at any shard count. Components
	// register on their node's home shard and networks hand cross-node
	// events to the owning shard inside the topology's declared
	// lookahead discipline, which the engine meters.
	//
	// With ParWorkers > 0, Shards instead sets the windowed engine's
	// shard count (defaulting to ParWorkers when left <= 1).
	Shards int
	// ParWorkers, when > 0, runs the simulation on the windowed parallel
	// engine (internal/sim/shard.Windows): shards advance concurrently
	// through lookahead-wide windows on a worker pool, with cross-shard
	// events buffered and committed at each window barrier. The run is
	// byte-identical at every worker count (ParWorkers 1 is the serial
	// replay of the same schedule) and at every shard count, but is a
	// *different* schedule from the serial engine: cross-node
	// interactions land one lookahead later, exactly as the conservative
	// window discipline requires. Only the FSOI network supports it —
	// the model was restructured so every event executes in the context
	// of the node whose state it touches — and the subscription sync
	// fabric is required (coherent ll/sc spinning shares lock tables
	// across nodes).
	ParWorkers int
	// ForceCoherentSync disables the §5.1 confirmation-channel sync path
	// even when the network supports it (for the ll/sc ablation).
	ForceCoherentSync bool
	// MeshBandwidthFrac throttles mesh injection bandwidth (Figure 11).
	MeshBandwidthFrac float64
	// MeshRouterCycles overrides the 4-stage router depth when positive.
	MeshRouterCycles int
	// TracePackets, when positive, keeps the last N delivered packets in
	// a ring buffer exposed through Trace().
	TracePackets int
	// Observe attaches the packet-lifecycle observability layer
	// (internal/obs): every packet's inject/deliver events plus, on FSOI,
	// the per-attempt tx-start/collision/backoff/confirm-drop/drop
	// lifecycle, exported through Metrics.Obs and Metrics.ObsRegistry.
	// Off (the default) the recorder stays nil and every emission site is
	// a single nil check, so metrics are byte-identical either way.
	Observe bool
	// ObserveLimit caps the recorded event count when Observe is on;
	// zero or negative means unbounded. Past the cap, events are counted
	// as lost, never silently discarded.
	ObserveLimit int
	// Fault selects the physical-fault models to inject (FSOI only; the
	// mesh baselines have no optical layer to degrade). The zero value
	// attaches nothing and leaves every code path and RNG draw identical
	// to a fault-free build.
	Fault fault.Config
	// Adversaries places hostile nodes on the fabric (FSOI only): each
	// spec'd node runs a hostile operation stream instead of its
	// application thread, and spoofer/starver roles additionally attach
	// an adversary.Model to the optical layer. Honest nodes still run
	// the full application; barrier targets shrink to the honest count.
	// Empty (the default) attaches nothing and leaves every code path
	// and RNG draw identical to an adversary-free build.
	Adversaries []adversary.Spec
	// Detect runs the obs-based anomaly detector over the recorded
	// lifecycle events at collect time, exporting the verdict through
	// Metrics.Detection and the canonical form. Implies Observe.
	Detect bool
	// DetectWindow overrides the detector's collision-counting window in
	// cycles; 0 selects the default.
	DetectWindow int64
}

// Default returns the paper configuration for the given node count and
// network.
func Default(nodes int, net NetworkKind) Config {
	channels := 4
	if nodes > 16 {
		channels = 8
	}
	return Config{
		Nodes:     nodes,
		Net:       net,
		FSOI:      core.PaperConfig(nodes),
		Memory:    memory.PaperMemory(channels),
		L1:        coherence.PaperL1(),
		Dir:       coherence.PaperDir(),
		Core:      cpu.PaperCore(),
		Power:     power.PaperPower(),
		Seed:      1,
		MaxCycles: 40_000_000,
	}
}

// DefaultOptical returns the paper configuration wired to an optnet
// registry topology by name.
func DefaultOptical(nodes int, topology string) Config {
	cfg := Default(nodes, NetOptical)
	cfg.Optical = topology
	return cfg
}

// meshDim returns the mesh edge for a node count (must be square).
func meshDim(nodes int) int {
	for d := 1; d*d <= nodes; d++ {
		if d*d == nodes {
			return d
		}
	}
	panic(fmt.Sprintf("system: node count %d is not a square", nodes))
}

// Metrics is the outcome of one run.
type Metrics struct {
	App       string
	Net       string
	Nodes     int
	Cycles    sim.Cycle
	Finished  bool // all threads completed before MaxCycles
	Latency   *noc.LatencyStats
	FSOI      *core.Stats // nil on electrical networks
	Energy    power.Breakdown
	AvgPowerW optics.Watts

	// FaultCounters aggregates the injected-fault census and the
	// resilience events it triggered; nil unless fault injection was on.
	FaultCounters *stats.CounterSet

	// Obs holds the packet-lifecycle event recorder and ObsRegistry the
	// percentile latency tables; both nil unless Config.Observe was set.
	Obs         *obs.Recorder
	ObsRegistry *obs.Registry
	// DroppedPackets counts packets the network permanently gave up on
	// (FSOI retry exhaustion under Config.FSOI.MaxRetries).
	DroppedPackets int64

	// AdversaryNodes counts configured hostile nodes; HonestFinish is
	// the cycle the last *honest* core finished — Cycles includes the
	// attackers' tails, so honest-traffic degradation compares
	// HonestFinish against the attack-free control. Both zero unless
	// Config.Adversaries was set.
	AdversaryNodes int
	HonestFinish   sim.Cycle
	// Detection is the adversarial-traffic detector's verdict over the
	// run's lifecycle events; nil unless Config.Detect was set.
	Detection *obs.Report

	// Traffic and protocol counters aggregated over nodes.
	MetaPackets   int64
	DataPackets   int64
	Invalidations int64
	ElidedAcks    int64
	Nacks         int64
	SyncStall     int64

	// Reply-latency distribution over all read misses (Figure 5).
	ReplyHist *stats.Histogram
}

// Speedup compares run times (baseline cycles / this cycles).
func (m Metrics) Speedup(baseline Metrics) float64 {
	if m.Cycles == 0 {
		return 0
	}
	return float64(baseline.Cycles) / float64(m.Cycles)
}

// System is one assembled CMP.
//
// Every piece of per-packet mutable state — the ordering tables, the
// packet free-lists, the packet-ID counters, the observability sinks —
// is indexed by the node whose execution context touches it, so the
// assembly runs unchanged on the serial engine, the exact sharded
// engine, and the windowed parallel engine.
type System struct {
	cfg      Config
	engine   sim.Driver
	shardEng *shard.Engine  // non-nil when cfg.Shards > 1 without ParWorkers
	winEng   *shard.Windows // non-nil when cfg.ParWorkers > 0
	la       sim.Cycle      // cross-node handback delay (the network's lookahead)
	rng      *sim.RNG
	net      noc.Network
	fsoi     *core.Network
	meshNet  *mesh.Network
	l1s      []*coherence.L1
	dirs     []*coherence.Directory
	mems     map[int]*memory.Controller
	cores    []*cpu.Core
	sync     syncFabric
	injector *fault.Injector
	finished int // owned by node 0: finish notices ride handbacks there
	tracer   *noc.ShardedTracer
	obsRec   *obs.Sharded
	obsReg   []*obs.Registry // per destination node; merged in collect

	// pktSeq counts packets injected per source node; a packet's ID is
	// src+1 + nodes*seq — unique, nonzero, and a pure function of that
	// node's own injection history, so IDs are identical at every shard
	// and worker count.
	pktSeq []uint64
	// pktFree recycles retired noc.Packets per source node, so the
	// transport's steady state allocates nothing per message. Plain
	// slices, deliberately NOT sync.Pools: pool reuse order depends on
	// the Go scheduler and GC, which would let host-machine timing leak
	// into pointer identities, while LIFO reuse from the source node's
	// own slice is a pure function of simulated history and keeps runs
	// byte-identical. Every retirement site executes in the source
	// node's context (a rejected send, a confirmation, a drop) except
	// the electrical networks' delivery-time retirement, which only ever
	// runs single-threaded.
	pktFree [][]*noc.Packet

	// Point-to-point ordering state (§4.4), indexed by source node: one
	// in-flight message per (src, dst, line); the rest wait here.
	ordInFlight []map[ordKey]bool
	ordQueue    []map[ordKey][]coherence.Msg
}

// ordKey identifies one ordered message stream within its source node.
type ordKey struct {
	dst  int
	addr cache.LineAddr
}

// sched resolves the scheduling surface for one node: the node's proxy
// on the windowed engine, the engine itself otherwise.
func (s *System) sched(node int) sim.Scheduler { return sim.SchedulerFor(s.engine, node) }

// transport adapts the system to coherence.Transport.
type transport struct{ s *System }

// packetFor wraps a protocol message for the wire, reusing a retired
// packet from the source node's free-list when one is available.
func (t transport) packetFor(m coherence.Msg) *noc.Packet {
	s := t.s
	src := m.From
	s.pktSeq[src]++
	var p *noc.Packet
	if free := s.pktFree[src]; len(free) > 0 {
		n := len(free) - 1
		p = free[n]
		free[n] = nil
		s.pktFree[src] = free[:n]
	} else {
		p = new(noc.Packet)
	}
	p.ID = uint64(src) + 1 + uint64(s.cfg.Nodes)*s.pktSeq[src]
	p.Src = m.From
	p.Dst = m.To
	p.Payload = m
	if m.HasData {
		p.Type = noc.Data
	}
	switch m.Type {
	case coherence.DataS, coherence.DataE, coherence.DataM, coherence.MemAck:
		p.IsReply = true
	case coherence.WriteBack:
		p.IsWriteback = m.HasData
	}
	switch m.Type {
	case coherence.ReqMem, coherence.MemWrite, coherence.MemAck:
		p.IsMemory = true
	case coherence.ReqSh, coherence.ReqEx:
		p.ExpectsDataReply = true
	}
	return p
}

// Send enforces the §4.4 point-to-point ordering invariant Table 2
// assumes: at most one message per (source, destination, line) is in
// flight; later ones queue at the source until the earlier is known
// delivered. On FSOI "known delivered" is the confirmation's arrival
// back at the sender — the confirmation-based serialization the paper
// describes — so the release runs in the source node's own context; on
// the mesh it models deterministic routing with ordered per-class
// channels and releases at delivery.
func (t transport) Send(m coherence.Msg) bool {
	s := t.s
	key := ordKey{dst: m.To, addr: m.Addr}
	if s.ordInFlight[m.From][key] {
		s.ordQueue[m.From][key] = append(s.ordQueue[m.From][key], m)
		return true
	}
	p := t.packetFor(m)
	if !s.net.Send(p) {
		s.recycle(p)
		return false
	}
	s.observeInject(p)
	s.ordInFlight[m.From][key] = true
	return true
}

func (t transport) ConfirmationElision() bool {
	return t.s.fsoi != nil && t.s.fsoi.SupportsConfirmation()
}

func (t transport) BooleanSubscription() bool {
	return t.s.fsoi != nil && t.s.fsoi.SupportsBooleanSubscription() && !t.s.cfg.ForceCoherentSync
}

func (t transport) SendBit(from, to int, tag uint64, value bool) {
	if t.s.fsoi == nil {
		panic("system: SendBit without FSOI network")
	}
	t.s.fsoi.SendConfirmBit(from, to, tag, value)
}

// New assembles a system.
func New(cfg Config) *System {
	if cfg.Net == NetOptical && cfg.Optical == "fsoi" {
		// The FSOI registry member must run through the dedicated path:
		// its packets stay live until confirmation, which the generic
		// optical delivery path (recycle at delivery) would violate.
		cfg.Net = NetFSOI
	}
	if cfg.Detect {
		// The detector consumes the lifecycle-event record.
		cfg.Observe = true
	}
	if len(cfg.Adversaries) > 0 {
		if cfg.Net != NetFSOI {
			panic(fmt.Sprintf("system: adversaries target the FSOI shared medium (got %v)", cfg.Net))
		}
		if err := adversary.Validate(cfg.Adversaries, cfg.Nodes); err != nil {
			panic(fmt.Sprintf("system: %v", err))
		}
		if len(cfg.Adversaries) >= cfg.Nodes {
			panic("system: at least one honest node is required")
		}
	}
	s := &System{
		cfg:         cfg,
		rng:         sim.NewRNG(cfg.Seed),
		mems:        make(map[int]*memory.Controller),
		la:          1,
		pktSeq:      make([]uint64, cfg.Nodes),
		pktFree:     make([][]*noc.Packet, cfg.Nodes),
		ordInFlight: make([]map[ordKey]bool, cfg.Nodes),
		ordQueue:    make([]map[ordKey][]coherence.Msg, cfg.Nodes),
	}
	for i := 0; i < cfg.Nodes; i++ {
		s.ordInFlight[i] = make(map[ordKey]bool)
		s.ordQueue[i] = make(map[ordKey][]coherence.Msg)
	}
	switch {
	case cfg.ParWorkers > 0:
		if cfg.Net != NetFSOI {
			panic(fmt.Sprintf("system: ParWorkers requires the FSOI network (got %v): only its model keeps every event in the touched node's context", cfg.Net))
		}
		if !cfg.FSOI.Opt.BooleanSubscription || cfg.ForceCoherentSync {
			panic("system: ParWorkers requires the subscription sync fabric; coherent ll/sc spinning shares lock tables across nodes")
		}
		k := cfg.Shards
		if k < 2 {
			k = cfg.ParWorkers
		}
		s.winEng = shard.NewWindows(k, cfg.ParWorkers)
		s.winEng.AssignNodes(cfg.Nodes)
		s.engine = s.winEng
	case cfg.Shards > 1:
		s.shardEng = shard.New(cfg.Shards)
		s.shardEng.AssignNodes(cfg.Nodes)
		s.engine = s.shardEng
	default:
		s.engine = sim.NewEngine()
	}
	dim := meshDim(cfg.Nodes)
	tr := transport{s}
	// onShard brackets a node's component construction so tickers and
	// initial events register on the node's home shard under the exact
	// engine; the windowed engine routes through per-node proxies
	// (s.sched) instead, and serially both are no-ops.
	onShard := func(node int) {
		if s.shardEng != nil {
			s.shardEng.SetShard(s.shardEng.NodeShard(node))
		}
	}

	switch cfg.Net {
	case NetFSOI:
		fc := cfg.FSOI
		fc.Nodes = cfg.Nodes
		s.fsoi = core.New(fc, s.engine, s.rng)
		s.net = s.fsoi
		if cfg.Fault.Enabled() {
			// The injector's streams derive only when injection is on, so
			// fault-free runs keep the pre-existing stream genealogy and
			// stay bit-identical.
			s.injector = fault.New(cfg.Fault, fc, s.rng.NewStream("fault"))
			s.fsoi.SetFaultModel(s.injector)
		}
		if len(cfg.Adversaries) > 0 {
			// The optical-layer half of the roster; the hostile streams
			// are installed per node in Run. Adversary-free runs attach
			// nothing and draw nothing.
			s.fsoi.SetAdversaryModel(adversary.NewModel(cfg.Adversaries, cfg.Nodes))
		}
	case NetMesh:
		mc := mesh.PaperMesh(dim)
		mc.BandwidthFrac = cfg.MeshBandwidthFrac
		if cfg.MeshRouterCycles > 0 {
			mc.RouterCycles = cfg.MeshRouterCycles
		}
		s.meshNet = mesh.New(mc, s.engine)
		s.net = s.meshNet
	case NetL0:
		s.net = mesh.NewL0(dim, s.engine)
	case NetLr1:
		s.net = mesh.NewLr(dim, 1, s.engine)
	case NetLr2:
		s.net = mesh.NewLr(dim, 2, s.engine)
	case NetCorona:
		s.net = corona.New(corona.PaperCorona(cfg.Nodes), s.engine)
	case NetOptical:
		n, err := optnet.Build(cfg.Optical, cfg.Nodes, s.engine, s.rng)
		if err != nil {
			panic(fmt.Sprintf("system: %v", err))
		}
		s.net = n
	default:
		panic("system: unknown network kind")
	}
	if la, ok := s.net.(noc.Lookaheader); ok && la.Lookahead() > 1 {
		s.la = la.Lookahead()
	}
	if s.shardEng != nil {
		if la, ok := s.net.(noc.Lookaheader); ok {
			s.shardEng.SetLookahead(la.Lookahead())
		}
	}
	if s.winEng != nil {
		s.winEng.SetLookahead(s.la)
	}
	if s.fsoi != nil {
		// FSOI has no global tick sweep: each node's slice of the network
		// ticks in that node's own shard context, in node order, so the
		// sweep is the serial Tick loop with accurate shard accounting —
		// required by the windowed engine (whose scheduling surface is
		// per-node proxies) and kept on the serial and exact engines so
		// all three run the same registration sequence.
		for i := 0; i < cfg.Nodes; i++ {
			onShard(i)
			id := i
			s.sched(i).Register(sim.TickFunc(func(now sim.Cycle) { s.fsoi.TickNode(id, now) }))
		}
		if s.shardEng != nil {
			s.shardEng.SetShard(0)
		}
	} else {
		// The electrical and crossbar networks tick globally; on the
		// exact engine the tick runs on shard 0 and hands per-node events
		// to their owning shards through noc.ScheduleAt. The declared
		// lookahead sizes the engine's cross-shard window.
		s.engine.Register(sim.TickFunc(s.net.Tick))
	}

	home := func(a cache.LineAddr) int { return int(uint64(a) % uint64(cfg.Nodes)) }
	attach := memory.AttachNodes(dim, cfg.Memory.Channels)
	memNode := func(h int) int { return attach[h%cfg.Memory.Channels] }

	for i := 0; i < cfg.Nodes; i++ {
		onShard(i)
		l1 := coherence.NewL1(i, cfg.L1, s.sched(i), s.rng.NewStream(fmt.Sprintf("l1-%d", i)), tr, home)
		s.l1s = append(s.l1s, l1)
		s.sched(i).Register(l1)
		dir := coherence.NewDirectory(i, cfg.Dir, s.sched(i), tr, memNode)
		s.dirs = append(s.dirs, dir)
		s.sched(i).Register(dir)
	}
	for c := 0; c < cfg.Memory.Channels; c++ {
		node := attach[c]
		if _, dup := s.mems[node]; dup {
			continue
		}
		onShard(node)
		ctl := memory.NewController(node, cfg.Memory, s.sched(node), func(m coherence.Msg) {
			if !tr.Send(m) {
				// Memory replies retry through the engine until the NIC
				// accepts them.
				s.retrySend(m)
			}
		})
		s.mems[node] = ctl
	}
	if s.shardEng != nil {
		s.shardEng.SetShard(0)
	}

	if cfg.TracePackets > 0 {
		s.tracer = noc.NewShardedTracer(cfg.Nodes, cfg.TracePackets)
	}
	if cfg.Observe {
		s.obsRec = obs.NewSharded(cfg.Nodes, cfg.ObserveLimit)
		s.obsReg = make([]*obs.Registry, cfg.Nodes)
		for i := range s.obsReg {
			s.obsReg[i] = obs.NewRegistry()
		}
		// Any network exposing an observer hook gets the recorder: FSOI
		// emits the full per-attempt lifecycle into per-node recorders,
		// the crossbar family (single-threaded by construction) emits
		// tx-start at arbitration grant into node 0's.
		switch o := s.net.(type) {
		case interface{ SetObserver(r *obs.Sharded) }:
			o.SetObserver(s.obsRec)
		case interface{ SetObserver(r *obs.Recorder) }:
			o.SetObserver(s.obsRec.For(0))
		}
		if s.injector != nil {
			s.injector.AnnotateTrace(s.obsRec)
		}
		if s.fsoi != nil {
			// Per-link contention tracking for the detection layer: every
			// observation lands in the executing node's own registry.
			sinks := make([]core.LinkObserver, cfg.Nodes)
			for i := range sinks {
				sinks[i] = s.obsReg[i]
			}
			s.fsoi.SetLinkObservers(sinks)
		}
	}
	s.net.SetDelivery(s.deliver)
	if s.fsoi != nil {
		s.fsoi.SetConfirmDelivery(s.onConfirm)
		s.fsoi.SetBitDelivery(s.onBit)
		s.fsoi.SetDropDelivery(s.onDrop)
	}

	if tr.BooleanSubscription() {
		s.sync = newSubscriptionSync(s, tr)
	} else {
		s.sync = newCoherentSync(s)
	}
	return s
}

// retrySend keeps attempting a message until the network accepts it,
// always from the source node's own context.
func (s *System) retrySend(m coherence.Msg) {
	s.sched(m.From).After(1, func(sim.Cycle) {
		if !(transport{s}).Send(m) {
			s.retrySend(m)
		}
	})
}

// orderedDone releases the (src, dst, line) stream and launches the next
// queued message, retrying through the engine when the NIC pushes back.
// It must run in the source node's context: at the confirmation or drop
// on FSOI, at delivery (single-threaded by construction) elsewhere.
func (s *System) orderedDone(m coherence.Msg) {
	key := ordKey{dst: m.To, addr: m.Addr}
	q := s.ordQueue[m.From][key]
	if len(q) == 0 {
		delete(s.ordInFlight[m.From], key)
		delete(s.ordQueue[m.From], key)
		return
	}
	next := q[0]
	s.ordQueue[m.From][key] = q[1:]
	s.launchOrdered(next)
}

func (s *System) launchOrdered(m coherence.Msg) {
	p := (transport{s}).packetFor(m)
	if s.net.Send(p) {
		s.observeInject(p)
		return
	}
	s.recycle(p)
	s.sched(m.From).After(1, func(sim.Cycle) { s.launchOrdered(m) })
}

// observeInject records a packet's acceptance by the network, in the
// source node's context. Injection time is the source's current cycle:
// Send only succeeds synchronously, so no separate timestamp needs to
// ride on the packet.
func (s *System) observeInject(p *noc.Packet) {
	if s.obsRec == nil {
		return
	}
	s.obsRec.For(p.Src).Emit(obs.Event{
		At: s.sched(p.Src).Now(), Kind: obs.KindInject, ID: p.ID,
		Src: int32(p.Src), Dst: int32(p.Dst),
		Class: uint8(p.Type), Lane: obs.LaneNone,
	})
}

// recycle retires a packet to its source node's free-list. Callers must
// guarantee the network holds no further reference: a rejected Send, a
// non-FSOI delivery (the networks' last touch), or an FSOI confirmation
// (which fires strictly after delivery, exactly once per packet — a
// duplicate re-delivery only ever re-confirms when the earlier
// confirmation beam was dropped, and that earlier confirmation never ran
// this callback). Packets are scrubbed here, at retirement, not lazily
// at reuse: zeroing only in packetFor would leave the Payload Msg pinned
// for the whole idle period and would let any new reuse path that forgot
// the reset hand out a packet still carrying the previous message's
// retry count and cycle stamps.
func (s *System) recycle(p *noc.Packet) {
	src := p.Src
	*p = noc.Packet{}
	s.pktFree[src] = append(s.pktFree[src], p)
}

// deliver routes an arriving packet to its destination controller. It
// runs in the destination node's context; everything it touches —
// tracer ring, recorder, registry, the controller itself — is the
// destination's own.
func (s *System) deliver(p *noc.Packet, now sim.Cycle) {
	m, ok := p.Payload.(coherence.Msg)
	if !ok {
		panic("system: foreign payload on the interconnect")
	}
	if s.fsoi == nil {
		// Electrical networks have no confirmation; delivery is the
		// moment the ordered stream releases (deterministic routing
		// keeps per-class channels ordered). FSOI streams release at the
		// confirmation instead — see onConfirm.
		s.orderedDone(m)
	}
	if s.tracer != nil {
		s.tracer.For(p.Dst).Record(p, now)
	}
	if s.obsRec != nil {
		lat := p.TotalLatency()
		s.obsRec.For(p.Dst).Emit(obs.Event{
			At: now, Kind: obs.KindDeliver, ID: p.ID, Aux: lat,
			Src: int32(p.Src), Dst: int32(p.Dst), Attempt: int32(p.Retries),
			Class: uint8(p.Type), Lane: obs.LaneNone,
		})
		s.obsReg[p.Dst].Observe(uint8(p.Type), p.Src, p.Dst, lat)
	}
	switch m.Type {
	case coherence.ReqMem, coherence.MemWrite:
		ctl := s.mems[m.To]
		if ctl == nil {
			panic(fmt.Sprintf("system: no memory controller at node %d", m.To))
		}
		ctl.Handle(m, now)
	case coherence.MemAck,
		coherence.ReqSh, coherence.ReqEx, coherence.ReqUpg,
		coherence.WriteBack, coherence.InvAck, coherence.DwgAck,
		coherence.SyncReq:
		s.dirs[m.To].Handle(m, now)
	case coherence.SyncResp:
		s.sync.onSyncResp(m, now)
	default:
		s.l1s[m.To].Handle(m, now)
	}
	if s.fsoi == nil {
		// Electrical networks never touch a packet after delivery; FSOI
		// packets stay live until their confirmation callback.
		s.recycle(p)
	}
}

// onConfirm handles sender-side confirmations (FSOI), in the source
// node's context: an elided-ack Inv's confirmation is the invalidation
// ack, and the confirmation is the sender's proof of delivery that
// releases the packet's ordered (src, dst, line) stream.
func (s *System) onConfirm(p *noc.Packet, now sim.Cycle) {
	if m, ok := p.Payload.(coherence.Msg); ok {
		if m.Type == coherence.Inv && m.Value {
			s.dirs[m.From].OnInvConfirm(m.Addr, now)
		}
		s.orderedDone(m)
	}
	s.recycle(p)
}

// onDrop handles the FSOI network permanently giving up on a packet
// (Config.FSOI.MaxRetries), in the source node's context. The ordered
// (src, dst, line) stream is released so later messages do not wedge
// behind the corpse, the fate lands in the ring buffer with a terminal
// DROPPED status, and the packet retires to the free-list — a drop is
// the network's last touch. The coherence message itself is lost by
// design; a run with drops may legitimately report Finished=false,
// which is exactly the resilience signal the fault experiments measure.
func (s *System) onDrop(p *noc.Packet, now sim.Cycle) {
	if m, ok := p.Payload.(coherence.Msg); ok {
		s.orderedDone(m)
	}
	if s.tracer != nil {
		s.tracer.For(p.Src).RecordStatus(p, now, noc.StatusDropped)
	}
	s.recycle(p)
}

// onBit routes confirmation-lane booleans to the sync fabric; it runs
// in the receiving node's context.
func (s *System) onBit(src, dst int, tag uint64, value bool, now sim.Cycle) {
	s.sync.onBit(dst, tag, value, now)
}

// Run executes one application to completion (or MaxCycles) and gathers
// metrics.
func (s *System) Run(app workload.App) Metrics {
	// Barrier target: every honest core participates in barrier 0.
	// Hostile streams emit no barriers, so counting the attackers would
	// wedge every honest thread at its first barrier.
	advBy := make(map[int]adversary.Spec, len(s.cfg.Adversaries))
	for _, sp := range s.cfg.Adversaries {
		advBy[sp.Node] = sp
	}
	honest := s.cfg.Nodes - len(advBy)
	for _, d := range s.dirs {
		d.Sync().SetBarrierTarget(0, honest)
	}
	s.sync.setBarrierTarget(0, honest)

	for i := 0; i < s.cfg.Nodes; i++ {
		if s.shardEng != nil {
			s.shardEng.SetShard(s.shardEng.NodeShard(i))
		}
		var stream cpu.Stream
		if sp, hostile := advBy[i]; hostile {
			stream = workload.NewAdversaryStream(sp, app, s.cfg.Nodes, s.cfg.Seed, s.sched(i).Now)
		} else {
			stream = workload.NewStream(app, i, s.cfg.Nodes, s.cfg.Seed)
		}
		c := cpu.New(i, s.cfg.Core, s.sched(i), s.l1s[i], stream, s.sync, s.onCoreFinish)
		s.cores = append(s.cores, c)
		c.Start()
	}
	if s.shardEng != nil {
		s.shardEng.SetShard(0)
	}
	s.engine.Run(s.cfg.MaxCycles)
	if s.winEng != nil {
		s.winEng.Close()
	}
	return s.collect(app.Name)
}

// onCoreFinish counts thread completions and stops the engine when the
// last one lands. The counter is owned by node 0: each finishing core
// hands its notice there one lookahead ahead, so the count never races
// and the stop commits at a window barrier — the final cycle count is
// identical at every shard and worker count.
func (s *System) onCoreFinish(core int, at sim.Cycle) {
	noc.ScheduleAt(s.sched(core), 0, at+s.la, func(sim.Cycle) {
		s.finished++
		if s.finished == s.cfg.Nodes {
			s.sched(0).Stop()
		}
	})
}

// collect assembles the metrics of a finished run.
func (s *System) collect(app string) Metrics {
	netName := s.cfg.Net.String()
	if s.cfg.Net == NetOptical {
		// Report the concrete topology, not the umbrella kind.
		netName = s.net.Name()
	}
	m := Metrics{
		App:      app,
		Net:      netName,
		Nodes:    s.cfg.Nodes,
		Cycles:   s.engine.Now(),
		Finished: s.finished == s.cfg.Nodes,
		Latency:  s.net.LatencyStats(),
	}
	if s.fsoi != nil {
		m.FSOI = s.fsoi.Stats()
		m.DroppedPackets = m.FSOI.Dropped[core.LaneMeta] + m.FSOI.Dropped[core.LaneData]
	}
	m.Obs = s.obsRec.Merged()
	m.ObsRegistry = s.ObsRegistry()
	if len(s.cfg.Adversaries) > 0 {
		m.AdversaryNodes = len(s.cfg.Adversaries)
		hostile := make(map[int]bool, m.AdversaryNodes)
		for _, sp := range s.cfg.Adversaries {
			hostile[sp.Node] = true
		}
		for i, c := range s.cores {
			if f := c.Stats().FinishCycle; !hostile[i] && f > m.HonestFinish {
				m.HonestFinish = f
			}
		}
	}
	if s.cfg.Detect {
		m.Detection = obs.Detect(m.Obs.Events(), obs.DetectorConfig{WindowCycles: s.cfg.DetectWindow})
	}
	if s.injector != nil {
		m.FaultCounters = s.injector.Counters()
		st := s.fsoi.Stats()
		m.FaultCounters.Inc("bit_errors", st.BitErrors)
		m.FaultCounters.Inc("header_corruptions", st.HeaderCorruptions)
		m.FaultCounters.Inc("payload_crc_errors", st.PayloadCRCErrors)
		m.FaultCounters.Inc("confirm_drops", st.ConfirmDrops)
		m.FaultCounters.Inc("timeout_retransmits", st.TimeoutRetransmits)
		m.FaultCounters.Inc("duplicate_deliveries", st.DuplicateDeliveries)
		m.FaultCounters.Inc("degraded_transmissions", st.DegradedTransmissions)
	}
	m.ReplyHist = stats.NewHistogram(5, 60)
	var ops, l1acc, l2acc int64
	for i, l1 := range s.l1s {
		st := l1.Stats()
		m.Invalidations += st.Invalidations
		m.ElidedAcks += st.ElidedAcks
		m.Nacks += st.Nacks
		l1acc += st.Hits + st.Misses
		mergeHist(m.ReplyHist, st.MissHist)
		ops += s.cores[i].Stats().Ops
		m.SyncStall += s.cores[i].Stats().StallSync
	}
	for _, d := range s.dirs {
		l2acc += d.Stats().Requests + d.Stats().MemReads
	}
	m.MetaPackets = int64(m.Latency.ByType[noc.Meta].N())
	m.DataPackets = int64(m.Latency.ByType[noc.Data].N())

	act := power.Activity{
		Cycles:     m.Cycles,
		Nodes:      s.cfg.Nodes,
		Ops:        ops,
		L1Accesses: l1acc,
		L2Accesses: l2acc,
	}
	if s.fsoi != nil {
		st := m.FSOI
		bitsTx := st.Attempts[core.LaneMeta]*72 + st.Attempts[core.LaneData]*360
		act.OpticalBitsTx = bitsTx
		act.OpticalBitsRx = bitsTx
		act.ConfirmBits = st.ConfirmBits + st.ConfirmSignals
		act.OpticalLanes = 3 // meta + data + confirmation
		act.OpticalRxPerNode = 2*s.cfg.FSOI.Receivers + 1
		slots := st.SlotsObserved[core.LaneMeta] + st.SlotsObserved[core.LaneData]
		if slots > 0 {
			act.TxBusyFraction = float64(st.Attempts[core.LaneMeta]+st.Attempts[core.LaneData]) / float64(slots)
		}
		m.Energy = s.cfg.Power.FSOIEnergy(act)
	} else {
		if s.meshNet != nil {
			act.FlitHops = s.meshNet.FlitHops()
		} else {
			// Ideal networks: charge hop activity as if routed, so the
			// energy comparison stays conservative.
			act.FlitHops = estimateFlitHops(m.Latency, s.cfg.Nodes)
		}
		act.Routers = s.cfg.Nodes
		m.Energy = s.cfg.Power.MeshEnergy(act)
	}
	m.AvgPowerW = s.cfg.Power.AveragePower(m.Energy, m.Cycles)
	return m
}

// estimateFlitHops approximates flit-hop activity for contention-free
// networks from delivered packet counts and the average hop count of a
// dim x dim mesh.
func estimateFlitHops(l *noc.LatencyStats, nodes int) int64 {
	dim := meshDim(nodes)
	avgHops := float64(2*dim) / 3
	flits := float64(l.ByType[noc.Meta].N())*1 + float64(l.ByType[noc.Data].N())*5
	return int64(flits * (avgHops + 1))
}

// mergeHist folds src into dst bucket-wise (same shape by construction).
func mergeHist(dst, src *stats.Histogram) {
	for i := 0; i < src.NumBuckets(); i++ {
		dst.AddN(int64(i)*5, src.Bucket(i))
	}
	dst.AddN(int64(src.NumBuckets())*5, src.Overflow())
}

// Diagnose reports stuck state after a run that failed to finish: cores
// that never completed and lines wedged in transient states.
func (s *System) Diagnose() string {
	out := ""
	for i, c := range s.cores {
		if c != nil && !c.Done() {
			out += fmt.Sprintf("core %d not done: ops=%d outstandingL1=%d\n", i, c.Stats().Ops, s.l1s[i].Outstanding())
		}
	}
	for i, d := range s.dirs {
		out += d.DumpTransients(fmt.Sprintf("dir %d", i))
	}
	return out
}

// Engine exposes the simulation engine (tests, fsoisim -profile).
func (s *System) Engine() sim.Driver { return s.engine }

// Lookahead reports the cross-node handback delay the assembly honours
// for its own scheduling (the finish-notice handbacks): the network's
// declared lookahead, floor 1.
func (s *System) Lookahead() sim.Cycle { return s.la }

// ShardEngine exposes the exact sharded engine when Config.Shards > 1
// selected it, for the handoff/lookahead meters; nil serially.
func (s *System) ShardEngine() *shard.Engine { return s.shardEng }

// WindowEngine exposes the windowed parallel engine when
// Config.ParWorkers > 0 selected it, for the window/handoff/stall
// meters; nil otherwise.
func (s *System) WindowEngine() *shard.Windows { return s.winEng }

// L1 exposes a node's L1 controller (tests).
func (s *System) L1(i int) *coherence.L1 { return s.l1s[i] }

// Trace exposes the delivered-packet ring buffer, merged across nodes
// in canonical order (nil unless Config.TracePackets was set).
func (s *System) Trace() *noc.Tracer {
	if s.tracer == nil {
		return nil
	}
	return s.tracer.Merged()
}

// Obs exposes the lifecycle-event recorder, merged across nodes in
// canonical order (nil unless Config.Observe).
func (s *System) Obs() *obs.Recorder { return s.obsRec.Merged() }

// ObsRegistry exposes the percentile latency registry, merged across
// nodes (nil unless Config.Observe).
func (s *System) ObsRegistry() *obs.Registry {
	if s.obsReg == nil {
		return nil
	}
	out := obs.NewRegistry()
	for _, g := range s.obsReg {
		out.Merge(g)
	}
	return out
}

// CoreStats exposes a core's counters (tests, diagnostics).
func (s *System) CoreStats(i int) *cpu.Stats { return s.cores[i].Stats() }

// Directory exposes a node's home slice (tests).
func (s *System) Directory(i int) *coherence.Directory { return s.dirs[i] }
