package system

import (
	"testing"

	"fsoi/internal/fault"
)

// faultyConfig enables every fault model at once.
func faultyConfig(c *Config) {
	c.Fault = fault.Config{
		MarginPenaltyDB: 2.5,
		VCSELFailProb:   0.05,
		ConfirmDropProb: 0.05,
	}
}

func TestFaultDeterminism(t *testing.T) {
	// The golden property: two identical fault-enabled runs are
	// bit-identical — every fault draw comes from named streams.
	a := runTiny(t, "mp3d", NetFSOI, 16, faultyConfig)
	b := runTiny(t, "mp3d", NetFSOI, 16, faultyConfig)
	if a.Cycles != b.Cycles || a.MetaPackets != b.MetaPackets || a.DataPackets != b.DataPackets {
		t.Fatalf("same-seed faulty runs differ: %d/%d vs %d/%d packets, %d vs %d cycles",
			a.MetaPackets, a.DataPackets, b.MetaPackets, b.DataPackets, a.Cycles, b.Cycles)
	}
	for _, key := range []string{"bit_errors", "confirm_drops", "vcsels_failed", "timeout_retransmits"} {
		if a.FaultCounters.Get(key) != b.FaultCounters.Get(key) {
			t.Fatalf("%s differs: %d vs %d", key, a.FaultCounters.Get(key), b.FaultCounters.Get(key))
		}
	}
	if a.FaultCounters.Get("bit_errors") == 0 {
		t.Fatal("2.5 dB of lost margin must corrupt some packets")
	}
	if a.FaultCounters.Get("confirm_drops") == 0 {
		t.Fatal("5% confirmation drops must fire")
	}
}

func TestZeroFaultConfigIsBitIdentical(t *testing.T) {
	// The pay-for-what-you-use guarantee: a zero Fault section changes
	// nothing — not even RNG stream genealogy — versus the default run.
	plain := runTiny(t, "jacobi", NetFSOI, 16, nil)
	zeroed := runTiny(t, "jacobi", NetFSOI, 16, func(c *Config) { c.Fault = fault.Config{} })
	if plain.Cycles != zeroed.Cycles ||
		plain.MetaPackets != zeroed.MetaPackets ||
		plain.DataPackets != zeroed.DataPackets ||
		plain.FSOI.Collisions[0] != zeroed.FSOI.Collisions[0] ||
		plain.FSOI.Collisions[1] != zeroed.FSOI.Collisions[1] {
		t.Fatalf("zero fault config perturbed the run: %d vs %d cycles", plain.Cycles, zeroed.Cycles)
	}
	if zeroed.FaultCounters != nil {
		t.Fatal("no injector means no fault counters")
	}
}

func TestConfirmDropsDoNotWedgeSystem(t *testing.T) {
	m := runTiny(t, "fft", NetFSOI, 16, func(c *Config) {
		c.Fault = fault.Config{ConfirmDropProb: 0.15}
	})
	// runTiny already asserts m.Finished; the recovery path must also
	// have been exercised and every timeout retransmission deduplicated.
	if m.FaultCounters.Get("confirm_drops") == 0 {
		t.Fatal("15% drop probability produced no drops")
	}
	if m.FaultCounters.Get("timeout_retransmits") != m.FaultCounters.Get("confirm_drops") {
		t.Fatalf("every drop must trigger a timeout retransmission: %d drops, %d timeouts",
			m.FaultCounters.Get("confirm_drops"), m.FaultCounters.Get("timeout_retransmits"))
	}
}

func TestMarginPenaltyDegradesPerformance(t *testing.T) {
	clean := runTiny(t, "jacobi", NetFSOI, 16, nil)
	faulty := runTiny(t, "jacobi", NetFSOI, 16, func(c *Config) {
		c.Fault = fault.Config{MarginPenaltyDB: 3.5}
	})
	if faulty.Cycles <= clean.Cycles {
		t.Fatalf("3.5 dB of lost margin should cost cycles: %d vs %d", faulty.Cycles, clean.Cycles)
	}
	if faulty.FSOI.PayloadCRCErrors == 0 {
		t.Fatal("heavy corruption must trip the modelled CRC")
	}
}
