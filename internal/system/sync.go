package system

import (
	"fsoi/internal/cache"
	"fsoi/internal/coherence"
	"fsoi/internal/sim"
	"fsoi/internal/workload"
)

// syncFabric is the system-side synchronization implementation handed to
// the cores; it extends cpu.SyncFabric with the delivery hooks the system
// routes into it.
type syncFabric interface {
	Acquire(core int, id int, done func(now sim.Cycle))
	Release(core int, id int, done func(now sim.Cycle))
	Barrier(core int, id int, done func(now sim.Cycle))
	onBit(node int, tag uint64, value bool, now sim.Cycle)
	onSyncResp(m coherence.Msg, now sim.Cycle)
	setBarrierTarget(id, target int)
}

// ---------------------------------------------------------------------
// Subscription fabric: the §5.1 path. Lock and barrier state lives at
// the home directory; requests are meta packets and replies/updates ride
// reserved confirmation mini-cycles.
// ---------------------------------------------------------------------

type subscriptionSync struct {
	s  *System
	tr transport
	// Per-node continuations keyed by tag (one outstanding sync op per
	// core by construction of the core model).
	waiting []map[uint64]func(value bool, now sim.Cycle)
}

func newSubscriptionSync(s *System, tr transport) *subscriptionSync {
	f := &subscriptionSync{s: s, tr: tr}
	f.waiting = make([]map[uint64]func(bool, sim.Cycle), s.cfg.Nodes)
	for i := range f.waiting {
		f.waiting[i] = make(map[uint64]func(bool, sim.Cycle))
	}
	return f
}

// home spreads sync objects across directories.
func (f *subscriptionSync) home(id int) int { return id % f.s.cfg.Nodes }

func (f *subscriptionSync) request(core int, op coherence.SyncOp, id int) {
	m := coherence.Msg{
		Type: coherence.SyncReq, Op: op, SyncID: id,
		From: core, To: f.home(id),
	}
	if !f.tr.Send(m) {
		f.s.retrySend(m)
	}
}

// Acquire sends the sc-through-request and waits for the single-bit
// reply; on failure it waits for the release update and re-attempts.
func (f *subscriptionSync) Acquire(core int, id int, done func(now sim.Cycle)) {
	replyTag := coherence.LockTag(id, false)
	updateTag := coherence.LockTag(id, true)
	var attempt func()
	attempt = func() {
		f.waiting[core][replyTag] = func(got bool, now sim.Cycle) {
			if got {
				delete(f.waiting[core], updateTag)
				done(now)
				return
			}
			// Subscribed: re-attempt on the next update push (handlers
			// are one-shot, so each attempt re-registers both).
			f.waiting[core][updateTag] = func(_ bool, at sim.Cycle) { attempt() }
		}
		f.request(core, coherence.SyncAcquire, id)
	}
	attempt()
}

// Release frees the lock; completion is local (the release packet is
// confirmed by the network independently), so the done event schedules
// on the releasing core's own node.
func (f *subscriptionSync) Release(core int, id int, done func(now sim.Cycle)) {
	f.request(core, coherence.SyncRelease, id)
	f.s.sched(core).After(1, done)
}

// Barrier arrives and waits for the release push.
func (f *subscriptionSync) Barrier(core int, id int, done func(now sim.Cycle)) {
	replyTag := coherence.BarrierTag(id, false)
	updateTag := coherence.BarrierTag(id, true)
	f.waiting[core][updateTag] = func(_ bool, now sim.Cycle) {
		delete(f.waiting[core], replyTag)
		done(now)
	}
	f.waiting[core][replyTag] = func(bool, sim.Cycle) {} // "wait" ack
	f.request(core, coherence.SyncArrive, id)
}

func (f *subscriptionSync) onBit(node int, tag uint64, value bool, now sim.Cycle) {
	if fn := f.waiting[node][tag]; fn != nil {
		delete(f.waiting[node], tag)
		fn(value, now)
	}
}

func (f *subscriptionSync) onSyncResp(m coherence.Msg, now sim.Cycle) {
	// The directory falls back to SyncResp packets only without the
	// confirmation channel; route identically.
	f.onBit(m.To, uint64(m.SyncID), m.Value, now)
}

func (f *subscriptionSync) setBarrierTarget(id, target int) {
	// Directory-side targets are set by the system during Run.
}

// ---------------------------------------------------------------------
// Coherent fabric: conventional ll/sc spinning through the cache
// hierarchy. Lock and barrier values live on ordinary cache lines; the
// fabric's tables hold the values while the coherence traffic provides
// the timing (test-and-test-and-set, invalidate-and-reread spinning).
// ---------------------------------------------------------------------

// Sync line addresses live above the workload regions.
const syncBase cache.LineAddr = 1 << 28

func lockLine(id int) cache.LineAddr { return syncBase + cache.LineAddr(2*id) }
func barrierLine(id int) cache.LineAddr {
	return syncBase + cache.LineAddr(1<<16) + cache.LineAddr(2*id)
}
func flagLine(id int) cache.LineAddr { return barrierLine(id) + 1 }

type coherentLock struct {
	held   bool
	holder int
}

type coherentBarrier struct {
	count  int
	target int
	epoch  int
}

type coherentSync struct {
	s        *System
	locks    map[int]*coherentLock
	barriers map[int]*coherentBarrier
}

func newCoherentSync(s *System) *coherentSync {
	return &coherentSync{s: s, locks: make(map[int]*coherentLock), barriers: make(map[int]*coherentBarrier)}
}

func (f *coherentSync) lock(id int) *coherentLock {
	l := f.locks[id]
	if l == nil {
		l = &coherentLock{holder: -1}
		f.locks[id] = l
	}
	return l
}

func (f *coherentSync) barrier(id int) *coherentBarrier {
	b := f.barriers[id]
	if b == nil {
		b = &coherentBarrier{target: 1}
		f.barriers[id] = b
	}
	return b
}

func (f *coherentSync) setBarrierTarget(id, target int) {
	f.barrier(id).target = target
}

// Acquire spins test-and-test-and-set: read the lock line; if free,
// upgrade to exclusive and claim atomically; otherwise wait for the line
// to be invalidated (the release's write) and retry. A slow periodic
// re-poll guards against lost wakeups.
func (f *coherentSync) Acquire(core int, id int, done func(now sim.Cycle)) {
	l1 := f.s.l1s[core]
	addr := lockLine(id)
	var attempt func(now sim.Cycle)
	waitInv := func(now sim.Cycle) {
		woke := false
		wake := func(at sim.Cycle) {
			if !woke {
				woke = true
				attempt(at)
			}
		}
		l1.OnInvalidate(addr, wake)
		f.s.sched(core).After(2500, wake)
	}
	attempt = func(now sim.Cycle) {
		l1.AccessRetry(addr, false, func(at sim.Cycle) {
			if f.lock(id).held {
				waitInv(at)
				return
			}
			// Looks free: take it with an exclusive access (ll/sc pair).
			l1.AccessRetry(addr, true, func(end sim.Cycle) {
				lk := f.lock(id)
				if lk.held {
					// sc failed: someone else won the race.
					waitInv(end)
					return
				}
				lk.held = true
				lk.holder = core
				done(end)
			})
		})
	}
	attempt(f.s.sched(core).Now())
}

// Release writes the lock line, invalidating the spinners.
func (f *coherentSync) Release(core int, id int, done func(now sim.Cycle)) {
	l1 := f.s.l1s[core]
	l1.AccessRetry(lockLine(id), true, func(at sim.Cycle) {
		lk := f.lock(id)
		lk.held = false
		lk.holder = -1
		done(at)
	})
}

// Barrier is a combining-tree-free central barrier: lock-protected
// counter increment, then spinning on the flag line (invalidate + reread).
func (f *coherentSync) Barrier(core int, id int, done func(now sim.Cycle)) {
	b := f.barrier(id)
	myEpoch := b.epoch
	l1 := f.s.l1s[core]
	f.Acquire(core, 1<<20|id, func(now sim.Cycle) {
		// Update the barrier counter line under the lock.
		l1.AccessRetry(barrierLine(id), true, func(at sim.Cycle) {
			b.count++
			last := b.count >= b.target
			f.Release(core, 1<<20|id, func(rel sim.Cycle) {
				if last {
					b.count = 0
					b.epoch++
					// Release the spinners by writing the flag line.
					l1.AccessRetry(flagLine(id), true, func(end sim.Cycle) {
						done(end)
					})
					return
				}
				f.spinFlag(core, id, myEpoch, done)
			})
		})
	})
}

// spinFlag rereads the flag line until the epoch advances.
func (f *coherentSync) spinFlag(core, id, epoch int, done func(now sim.Cycle)) {
	b := f.barrier(id)
	l1 := f.s.l1s[core]
	addr := flagLine(id)
	var poll func(now sim.Cycle)
	poll = func(now sim.Cycle) {
		l1.AccessRetry(addr, false, func(at sim.Cycle) {
			if b.epoch > epoch {
				done(at)
				return
			}
			woke := false
			wake := func(w sim.Cycle) {
				if !woke {
					woke = true
					poll(w)
				}
			}
			l1.OnInvalidate(addr, wake)
			f.s.sched(core).After(2500, wake)
		})
	}
	poll(f.s.sched(core).Now())
}

func (f *coherentSync) onBit(node int, tag uint64, value bool, now sim.Cycle) {}

func (f *coherentSync) onSyncResp(m coherence.Msg, now sim.Cycle) {}

// Ensure the fabrics satisfy the core-facing interface.
var (
	_ syncFabric = (*subscriptionSync)(nil)
	_ syncFabric = (*coherentSync)(nil)
)

// Apps re-exports the workload suite at the system level for callers that
// only import system (examples, benches).
func Apps(scale float64) []workload.App { return workload.Suite(scale) }
