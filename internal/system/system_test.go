package system

import (
	"testing"

	"fsoi/internal/workload"
)

// tinyApp returns a short workload for fast integration runs.
func tinyApp(t *testing.T, name string) workload.App {
	t.Helper()
	app, ok := workload.ByName(name, 0.01)
	if !ok {
		t.Fatalf("unknown app %s", name)
	}
	return app
}

func runTiny(t *testing.T, name string, kind NetworkKind, nodes int, mutate func(*Config)) Metrics {
	t.Helper()
	cfg := Default(nodes, kind)
	cfg.MaxCycles = 3_000_000
	if mutate != nil {
		mutate(&cfg)
	}
	m := New(cfg).Run(tinyApp(t, name))
	if !m.Finished {
		t.Fatalf("%s on %s (%d nodes) did not finish", name, kind, nodes)
	}
	return m
}

func TestEveryNetworkCompletes(t *testing.T) {
	for _, kind := range []NetworkKind{NetFSOI, NetMesh, NetL0, NetLr1, NetLr2, NetCorona} {
		m := runTiny(t, "jacobi", kind, 16, nil)
		if m.Cycles <= 0 || m.Latency.Delivered == 0 {
			t.Fatalf("%v: degenerate run %+v", kind, m.Cycles)
		}
	}
}

func TestSixtyFourNodesComplete(t *testing.T) {
	m := runTiny(t, "fft", NetFSOI, 64, nil)
	if m.Nodes != 64 {
		t.Fatal("node count wrong")
	}
	mm := runTiny(t, "fft", NetMesh, 64, nil)
	if mm.Latency.MeanTotal() <= m.Latency.MeanTotal() {
		t.Fatalf("64-node mesh latency %.1f should exceed FSOI %.1f",
			mm.Latency.MeanTotal(), m.Latency.MeanTotal())
	}
}

func TestDeterminism(t *testing.T) {
	a := runTiny(t, "mp3d", NetFSOI, 16, nil)
	b := runTiny(t, "mp3d", NetFSOI, 16, nil)
	if a.Cycles != b.Cycles || a.MetaPackets != b.MetaPackets || a.DataPackets != b.DataPackets {
		t.Fatalf("same-seed runs differ: %d/%d vs %d/%d packets, %d vs %d cycles",
			a.MetaPackets, a.DataPackets, b.MetaPackets, b.DataPackets, a.Cycles, b.Cycles)
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	a := runTiny(t, "mp3d", NetFSOI, 16, nil)
	b := runTiny(t, "mp3d", NetFSOI, 16, func(c *Config) { c.Seed = 2 })
	if a.Cycles == b.Cycles && a.MetaPackets == b.MetaPackets {
		t.Fatal("different seeds should perturb the run")
	}
}

func TestFSOILatencyBeatsMesh(t *testing.T) {
	f := runTiny(t, "ocean", NetFSOI, 16, nil)
	m := runTiny(t, "ocean", NetMesh, 16, nil)
	if f.Latency.MeanTotal() >= m.Latency.MeanTotal() {
		t.Fatalf("FSOI latency %.1f should beat mesh %.1f",
			f.Latency.MeanTotal(), m.Latency.MeanTotal())
	}
}

func TestLockHeavyAppOnBothSyncFabrics(t *testing.T) {
	sub := runTiny(t, "raytrace", NetFSOI, 16, nil)
	coh := runTiny(t, "raytrace", NetFSOI, 16, func(c *Config) { c.ForceCoherentSync = true })
	if sub.FSOI.ConfirmBits == 0 {
		t.Fatal("subscription sync must use confirmation bits")
	}
	if coh.FSOI.ConfirmBits > sub.FSOI.ConfirmBits {
		t.Fatal("coherent sync should not use more confirmation bits")
	}
}

func TestMeshSyncCompletes(t *testing.T) {
	m := runTiny(t, "raytrace", NetMesh, 16, nil)
	if m.SyncStall == 0 {
		t.Fatal("lock-heavy app must record sync stalls")
	}
}

func TestOptimizationsReduceCollisions(t *testing.T) {
	app, _ := workload.ByName("mp3d", 0.05)
	run := func(opt bool) Metrics {
		cfg := Default(16, NetFSOI)
		cfg.MaxCycles = 10_000_000
		if !opt {
			cfg.FSOI.Opt.AckElision = false
			cfg.FSOI.Opt.ReceiverScheduling = false
			cfg.FSOI.Opt.WritebackSplit = false
			cfg.FSOI.Opt.RetransmitHints = false
			cfg.ForceCoherentSync = true
		}
		m := New(cfg).Run(app)
		if !m.Finished {
			t.Fatal("run did not finish")
		}
		return m
	}
	off := run(false)
	on := run(true)
	if on.ElidedAcks == 0 {
		t.Fatal("ack elision inactive")
	}
	if on.MetaPackets >= off.MetaPackets {
		t.Fatalf("elision should cut meta packets: %d vs %d", on.MetaPackets, off.MetaPackets)
	}
}

func TestEnergyAccounting(t *testing.T) {
	f := runTiny(t, "lu", NetFSOI, 16, nil)
	m := runTiny(t, "lu", NetMesh, 16, nil)
	if f.Energy.Total() <= 0 || m.Energy.Total() <= 0 {
		t.Fatal("energy must be positive")
	}
	if f.Energy.Network >= m.Energy.Network {
		t.Fatalf("FSOI network energy %.2g should be far below mesh %.2g",
			f.Energy.Network, m.Energy.Network)
	}
	if f.AvgPowerW <= 0 || f.AvgPowerW > 1000 {
		t.Fatalf("implausible power %.1f W", f.AvgPowerW)
	}
}

func TestMemoryBandwidthMatters(t *testing.T) {
	slow := runTiny(t, "radix", NetFSOI, 16, nil)
	fast := runTiny(t, "radix", NetFSOI, 16, func(c *Config) { c.Memory.TotalGBps = 52.8 })
	if fast.Cycles >= slow.Cycles {
		t.Fatalf("6x memory bandwidth should help: %d vs %d cycles", fast.Cycles, slow.Cycles)
	}
}

func TestSpeedupHelper(t *testing.T) {
	a := Metrics{Cycles: 100}
	b := Metrics{Cycles: 200}
	if a.Speedup(b) != 2 {
		t.Fatal("speedup math wrong")
	}
	var zero Metrics
	if zero.Speedup(b) != 0 {
		t.Fatal("zero-cycle guard missing")
	}
}

func TestReplyHistogramPopulated(t *testing.T) {
	m := runTiny(t, "em3d", NetFSOI, 16, nil)
	if m.ReplyHist.Total() == 0 {
		t.Fatal("reply-latency histogram empty")
	}
	if m.ReplyHist.Mean() <= 0 {
		t.Fatal("reply latency mean must be positive")
	}
}

func TestNetworkKindStrings(t *testing.T) {
	want := map[NetworkKind]string{
		NetFSOI: "fsoi", NetMesh: "mesh", NetL0: "L0",
		NetLr1: "Lr1", NetLr2: "Lr2", NetCorona: "corona",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
}

func TestMeshDimPanicsOnNonSquare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-square node counts must panic")
		}
	}()
	meshDim(15)
}

func TestPacketCountsConsistent(t *testing.T) {
	m := runTiny(t, "shallow", NetFSOI, 16, nil)
	if m.MetaPackets == 0 || m.DataPackets == 0 {
		t.Fatal("both packet classes must flow")
	}
	if m.Invalidations == 0 {
		t.Fatal("a sharing workload must invalidate")
	}
}
