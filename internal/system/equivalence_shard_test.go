package system

import (
	"bytes"
	"strings"
	"testing"

	"fsoi/internal/obs"
	"fsoi/internal/sim"
	"fsoi/internal/workload"
)

// shardedRun executes one fault- and trace-enabled run at the given
// shard count and returns both byte-identity surfaces: the canonical
// metric serialization and the lifecycle-trace JSONL bytes.
func shardedRun(t *testing.T, name string, kind NetworkKind, nodes, shards int, scale float64, maxCycles sim.Cycle) (canon, trace string, m Metrics) {
	t.Helper()
	app, ok := workload.ByName(name, scale)
	if !ok {
		t.Fatalf("unknown app %s", name)
	}
	cfg := Default(nodes, kind)
	cfg.MaxCycles = maxCycles
	cfg.Shards = shards
	cfg.Observe = true
	cfg.TracePackets = 16
	if kind == NetFSOI {
		faultyConfig(&cfg)
	}
	s := New(cfg)
	m = s.Run(app)
	if !m.Finished {
		t.Fatalf("%s on %v (%d nodes, %d shards) did not finish", name, kind, nodes, shards)
	}
	var buf bytes.Buffer
	if err := obs.WriteJSONL(&buf, m.Obs); err != nil {
		t.Fatalf("trace export: %v", err)
	}
	if se := s.ShardEngine(); se != nil {
		if shards <= 1 {
			t.Fatal("shard engine selected for a serial config")
		}
		if kind == NetFSOI && se.UnderLookahead() != 0 {
			t.Errorf("%d of %d cross-shard handoffs violate FSOI's declared %d-cycle lookahead",
				se.UnderLookahead(), se.Handoffs(), se.Lookahead())
		}
	} else if shards > 1 {
		t.Fatal("serial engine selected for a sharded config")
	}
	return m.Canonical(), buf.String(), m
}

// diffLines reports the first line where two multiline strings diverge.
func diffLines(t *testing.T, label, a, b string) {
	t.Helper()
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	n := min(len(al), len(bl))
	for i := 0; i < n; i++ {
		if al[i] != bl[i] {
			t.Fatalf("%s diverges at line %d:\n  serial:  %s\n  sharded: %s", label, i+1, al[i], bl[i])
		}
	}
	t.Fatalf("%s diverges in length: %d vs %d lines", label, len(al), len(bl))
}

// TestShardedEquivalence16 is the PR 4 equivalence harness extended to
// the sharded engine: a 16-node run with every fault model and the
// lifecycle trace enabled must be byte-identical — canonical metrics
// AND trace JSONL — between the serial engine and the exact sharded
// engine at 2, 3, and 4 shards. This is the in-repo twin of the
// shard-equivalence CI job.
func TestShardedEquivalence16(t *testing.T) {
	for _, kind := range []NetworkKind{NetFSOI, NetMesh} {
		wantCanon, wantTrace, _ := shardedRun(t, "mp3d", kind, 16, 1, 0.01, 3_000_000)
		for _, shards := range []int{2, 3, 4} {
			canon, trace, _ := shardedRun(t, "mp3d", kind, 16, shards, 0.01, 3_000_000)
			if canon != wantCanon {
				diffLines(t, kind.String()+" canonical metrics", wantCanon, canon)
			}
			if trace != wantTrace {
				diffLines(t, kind.String()+" trace JSONL", wantTrace, trace)
			}
		}
	}
}

// TestShardedEquivalence64 repeats the byte-identity check at 64 nodes
// with faults and tracing on; skipped under -short to keep the quick
// loop quick (CI runs it in full).
func TestShardedEquivalence64(t *testing.T) {
	if testing.Short() {
		t.Skip("64-node equivalence runs only without -short")
	}
	wantCanon, wantTrace, _ := shardedRun(t, "fft", NetFSOI, 64, 1, 0.01, 3_000_000)
	for _, shards := range []int{2, 4} {
		canon, trace, _ := shardedRun(t, "fft", NetFSOI, 64, shards, 0.01, 3_000_000)
		if canon != wantCanon {
			diffLines(t, "64-node canonical metrics", wantCanon, canon)
		}
		if trace != wantTrace {
			diffLines(t, "64-node trace JSONL", wantTrace, trace)
		}
	}
}

// TestSharded256Smoke is the sharded-only scale smoke: a 256-node CMP
// assembles and completes a short workload on the sharded engine. No
// serial twin is run — at this node count that is the point.
func TestSharded256Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("256-node smoke runs only without -short")
	}
	app, ok := workload.ByName("jacobi", 0.002)
	if !ok {
		t.Fatal("unknown app jacobi")
	}
	cfg := Default(256, NetFSOI)
	cfg.MaxCycles = 3_000_000
	cfg.Shards = 8
	m := New(cfg).Run(app)
	if !m.Finished {
		t.Fatal("256-node sharded run did not finish")
	}
	if m.Nodes != 256 || m.Latency.Delivered == 0 {
		t.Fatalf("degenerate 256-node run: nodes=%d delivered=%d", m.Nodes, m.Latency.Delivered)
	}
}
