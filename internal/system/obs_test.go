package system

import (
	"bytes"
	"testing"

	"fsoi/internal/coherence"
	"fsoi/internal/noc"
	"fsoi/internal/obs"
)

// TestObserveDoesNotPerturbMetrics: the observability layer must be a
// pure read — an observed run and an unobserved run of the same
// configuration produce byte-identical canonical metrics. This is the
// contract that lets experiments -trace claim its tables match the
// untraced ones.
func TestObserveDoesNotPerturbMetrics(t *testing.T) {
	plain := runTiny(t, "jacobi", NetFSOI, 16, nil)
	observed := runTiny(t, "jacobi", NetFSOI, 16, func(c *Config) { c.Observe = true })
	if plain.Canonical() != observed.Canonical() {
		t.Fatal("Observe changed simulation results; it must be a pure read")
	}
	if observed.Obs == nil || observed.ObsRegistry == nil {
		t.Fatal("observed run did not expose its recorder and registry")
	}
	if plain.Obs != nil {
		t.Fatal("unobserved run must not carry a recorder")
	}
}

// TestObserveLifecycleAccounting cross-checks the recorder against the
// run's own metrics: every packet injects once and delivers once, and
// the registry saw every delivery.
func TestObserveLifecycleAccounting(t *testing.T) {
	m := runTiny(t, "jacobi", NetFSOI, 16, func(c *Config) { c.Observe = true })
	counts := m.Obs.CountByKind()
	packets := m.MetaPackets + m.DataPackets
	if counts[obs.KindInject] != packets {
		t.Fatalf("inject events = %d, delivered packets = %d; every delivered packet injects exactly once",
			counts[obs.KindInject], packets)
	}
	if counts[obs.KindDeliver] != packets {
		t.Fatalf("deliver events = %d, want %d", counts[obs.KindDeliver], packets)
	}
	if counts[obs.KindDrop] != 0 || m.DroppedPackets != 0 {
		t.Fatal("a default configuration must not drop packets")
	}
	regTotal := m.ObsRegistry.Class(obs.ClassMeta).Total() + m.ObsRegistry.Class(obs.ClassData).Total()
	if regTotal != packets {
		t.Fatalf("registry observed %d latencies, want %d", regTotal, packets)
	}
	if counts[obs.KindTxStart] == 0 || counts[obs.KindBackoff] != counts[obs.KindCollision] {
		t.Fatalf("FSOI lifecycle events inconsistent: tx-start=%d collision=%d backoff=%d",
			counts[obs.KindTxStart], counts[obs.KindCollision], counts[obs.KindBackoff])
	}
	var buf bytes.Buffer
	if err := obs.WriteJSONL(&buf, m.Obs); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("JSONL export empty")
	}
}

// TestObserveByteIdenticalAcrossRuns: two observed runs of the same
// seed export byte-identical traces — the whole point of the sorted,
// hand-rolled encoding.
func TestObserveByteIdenticalAcrossRuns(t *testing.T) {
	export := func() ([]byte, []byte) {
		m := runTiny(t, "mp3d", NetFSOI, 16, func(c *Config) { c.Observe = true })
		var j, c bytes.Buffer
		if err := obs.WriteJSONL(&j, m.Obs); err != nil {
			t.Fatal(err)
		}
		if err := obs.WriteChromeTrace(&c, m.Obs); err != nil {
			t.Fatal(err)
		}
		return j.Bytes(), c.Bytes()
	}
	j1, c1 := export()
	j2, c2 := export()
	if !bytes.Equal(j1, j2) {
		t.Fatal("JSONL traces differ across same-seed runs")
	}
	if !bytes.Equal(c1, c2) {
		t.Fatal("chrome traces differ across same-seed runs")
	}
}

// TestRecycleResetsPacketState pins the free-list audit: a packet
// retired with retry counts and cycle stamps must come back from the
// free-list fully scrubbed, not carrying the previous life's state.
func TestRecycleResetsPacketState(t *testing.T) {
	s := New(Default(16, NetFSOI))
	p := &noc.Packet{
		ID: 99, Src: 1, Dst: 2, Type: noc.Data, Retries: 7,
		QueuingDelay: 11, SchedulingDelay: 13, NetworkDelay: 17, ResolutionDelay: 19,
		IsReply: true, IsWriteback: true, IsMemory: true, ExpectsDataReply: true,
		Payload: "stale",
	}
	s.recycle(p)
	if *p != (noc.Packet{}) {
		t.Fatalf("recycle left state behind: %+v", *p)
	}
	tr := transport{s}
	// Free-lists are per source node: the retired packet went onto node
	// 1's list (its Src), so node 1's next injection must reuse it.
	reused := tr.packetFor(coherence.Msg{Type: coherence.ReqSh, From: 1, To: 4})
	if reused != p {
		t.Fatal("free-list did not hand back the recycled packet (LIFO reuse)")
	}
	if reused.Retries != 0 || reused.QueuingDelay != 0 || reused.NetworkDelay != 0 {
		t.Fatalf("reused packet carries a previous life: %+v", *reused)
	}
}

// TestObserveLimitLosesLoudly: a capped recorder reports how much it
// discarded instead of silently looking complete.
func TestObserveLimitLosesLoudly(t *testing.T) {
	m := runTiny(t, "jacobi", NetFSOI, 16, func(c *Config) {
		c.Observe = true
		c.ObserveLimit = 10
	})
	if m.Obs.Len() != 10 {
		t.Fatalf("recorder kept %d events, cap was 10", m.Obs.Len())
	}
	if m.Obs.Lost() == 0 {
		t.Fatal("a saturated recorder must count its losses")
	}
	var buf bytes.Buffer
	if err := obs.WriteJSONL(&buf, m.Obs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"ev":"truncated"`)) {
		t.Fatal("truncated export must end with the marker line")
	}
}
