package system

import (
	"strings"
	"testing"

	"fsoi/internal/fault"
)

// TestCrossRunDeterminismByteIdentical is the regression test for the
// repository's core claim: an identically configured run — including
// fault injection, the heaviest consumer of named RNG streams — is
// bit-identical across executions in the same process. The comparison
// is a byte-compare of the full canonical metric serialization, not a
// spot-check of a few counters; any divergence reports the first
// counter that differs.
func TestCrossRunDeterminismByteIdentical(t *testing.T) {
	run := func() string {
		cfg := Default(16, NetFSOI)
		cfg.Fault = fault.Config{
			MarginPenaltyDB: 2.5,
			VCSELFailProb:   0.05,
			ConfirmDropProb: 0.05,
		}
		m := New(cfg).Run(tinyApp(t, "mp3d"))
		if !m.Finished {
			t.Fatal("determinism run did not finish")
		}
		return m.Canonical()
	}
	a, b := run(), run()
	if a == b {
		return
	}
	al := strings.Split(a, "\n")
	bl := strings.Split(b, "\n")
	n := min(len(al), len(bl))
	for i := 0; i < n; i++ {
		if al[i] != bl[i] {
			t.Fatalf("runs diverge at line %d:\n  run A: %s\n  run B: %s", i+1, al[i], bl[i])
		}
	}
	t.Fatalf("runs diverge in length: %d vs %d lines", len(al), len(bl))
}

// TestCanonicalCoversFaultCensus guards the serializer itself: a
// fault-enabled run must surface its counters in the canonical form,
// otherwise the byte-compare above silently loses coverage.
func TestCanonicalCoversFaultCensus(t *testing.T) {
	m := runTiny(t, "fft", NetFSOI, 16, faultyConfig)
	c := m.Canonical()
	for _, want := range []string{"fault.bit_errors ", "fault.confirm_drops ", "fsoi.lane0.attempts ", "latency.total n="} {
		if !strings.Contains(c, want) {
			t.Fatalf("canonical form is missing %q:\n%s", want, c)
		}
	}
}
