package system

import (
	"bytes"
	"testing"

	"fsoi/internal/obs"
	"fsoi/internal/sim"
	"fsoi/internal/workload"
)

// windowedRun executes one fault- and trace-enabled FSOI run on the
// windowed parallel engine and returns both byte-identity surfaces: the
// canonical metric serialization and the lifecycle-trace JSONL bytes.
func windowedRun(t *testing.T, name string, nodes, shards, workers int, scale float64, maxCycles sim.Cycle) (canon, trace string, m Metrics) {
	t.Helper()
	app, ok := workload.ByName(name, scale)
	if !ok {
		t.Fatalf("unknown app %s", name)
	}
	cfg := Default(nodes, NetFSOI)
	cfg.MaxCycles = maxCycles
	cfg.Shards = shards
	cfg.ParWorkers = workers
	cfg.Observe = true
	cfg.TracePackets = 16
	faultyConfig(&cfg)
	s := New(cfg)
	w := s.WindowEngine()
	if w == nil {
		t.Fatal("windowed config did not select the windowed engine")
	}
	if w.Shards() != shards || w.Workers() != workers {
		t.Fatalf("engine built with %d shards / %d workers, want %d / %d",
			w.Shards(), w.Workers(), shards, workers)
	}
	m = s.Run(app)
	if !m.Finished {
		t.Fatalf("%s (%d nodes, %d shards, %d workers) did not finish:\n%s",
			name, nodes, shards, workers, s.Diagnose())
	}
	if w.WindowCount() == 0 {
		t.Fatal("windowed run executed zero windows")
	}
	var buf bytes.Buffer
	if err := obs.WriteJSONL(&buf, m.Obs); err != nil {
		t.Fatalf("trace export: %v", err)
	}
	return m.Canonical(), buf.String(), m
}

// TestWindowedWorkerInvariance16 is the tentpole's determinism claim at
// the full-system level: a fault- and trace-enabled 16-node run on the
// windowed engine is byte-identical — canonical metrics AND lifecycle
// JSONL — at 1, 2, 4, and 8 workers. Workers=1 runs the identical
// schedule on a serial pool (no goroutines), so any divergence is a
// worker-count leak, not a model change.
func TestWindowedWorkerInvariance16(t *testing.T) {
	wantCanon, wantTrace, _ := windowedRun(t, "mp3d", 16, 4, 1, 0.01, 3_000_000)
	for _, workers := range []int{2, 4, 8} {
		canon, trace, _ := windowedRun(t, "mp3d", 16, 4, workers, 0.01, 3_000_000)
		if canon != wantCanon {
			diffLines(t, "windowed canonical metrics", wantCanon, canon)
		}
		if trace != wantTrace {
			diffLines(t, "windowed trace JSONL", wantTrace, trace)
		}
	}
}

// TestWindowedShardInvariance16 is the partition-invariance claim: the
// same 16-node run is byte-identical at 2, 4, and 8 shards. The event
// key is (at, schedulingNode, perNodeSeq) — never a shard index — so
// repartitioning the nodes must not move a single event.
func TestWindowedShardInvariance16(t *testing.T) {
	wantCanon, wantTrace, _ := windowedRun(t, "mp3d", 16, 2, 2, 0.01, 3_000_000)
	for _, shards := range []int{4, 8} {
		canon, trace, _ := windowedRun(t, "mp3d", 16, shards, 2, 0.01, 3_000_000)
		if canon != wantCanon {
			diffLines(t, "windowed canonical metrics", wantCanon, canon)
		}
		if trace != wantTrace {
			diffLines(t, "windowed trace JSONL", wantTrace, trace)
		}
	}
}

// TestWindowedWorkerInvariance64 repeats the worker sweep at 64 nodes
// with faults and tracing on; skipped under -short to keep the quick
// loop quick (CI runs it in full — it is the par-equivalence job's
// in-repo twin).
func TestWindowedWorkerInvariance64(t *testing.T) {
	if testing.Short() {
		t.Skip("64-node windowed invariance runs only without -short")
	}
	wantCanon, wantTrace, _ := windowedRun(t, "fft", 64, 8, 1, 0.01, 3_000_000)
	for _, workers := range []int{2, 4, 8} {
		canon, trace, _ := windowedRun(t, "fft", 64, 8, workers, 0.01, 3_000_000)
		if canon != wantCanon {
			diffLines(t, "64-node windowed canonical metrics", wantCanon, canon)
		}
		if trace != wantTrace {
			diffLines(t, "64-node windowed trace JSONL", wantTrace, trace)
		}
	}
}

// TestWindowedShardInvariance64 repeats the shard sweep at 64 nodes:
// byte identity across 2, 4, and 8 shards at a fixed worker count.
func TestWindowedShardInvariance64(t *testing.T) {
	if testing.Short() {
		t.Skip("64-node windowed invariance runs only without -short")
	}
	wantCanon, wantTrace, _ := windowedRun(t, "fft", 64, 2, 4, 0.01, 3_000_000)
	for _, shards := range []int{4, 8} {
		canon, trace, _ := windowedRun(t, "fft", 64, shards, 4, 0.01, 3_000_000)
		if canon != wantCanon {
			diffLines(t, "64-node windowed canonical metrics", wantCanon, canon)
		}
		if trace != wantTrace {
			diffLines(t, "64-node windowed trace JSONL", wantTrace, trace)
		}
	}
}

// TestWindowedMetersExposed: the window/handoff meters the fsoisim
// -par flag prints must be live — a real run crosses shards, and every
// one of those crossings cleared its window.
func TestWindowedMetersExposed(t *testing.T) {
	app, _ := workload.ByName("jacobi", 0.01)
	cfg := Default(16, NetFSOI)
	cfg.MaxCycles = 3_000_000
	cfg.ParWorkers = 4
	s := New(cfg)
	if !s.Run(app).Finished {
		t.Fatal("windowed jacobi run did not finish")
	}
	w := s.WindowEngine()
	if w.Handoffs() == 0 {
		t.Fatal("a 16-node run must hand events across shards")
	}
	if w.TightHandoffs() > w.Handoffs() {
		t.Fatal("tight handoffs cannot exceed total handoffs")
	}
	if got := s.Lookahead(); got != w.Lookahead() {
		t.Fatalf("system lookahead %d disagrees with the engine's %d", got, w.Lookahead())
	}
}

// TestWindowedRequiresSubscriptionSync pins the construction gate: the
// coherent ll/sc fabric shares lock tables across nodes, so a windowed
// run must refuse it loudly instead of racing quietly.
func TestWindowedRequiresSubscriptionSync(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ParWorkers with ForceCoherentSync must panic")
		}
	}()
	cfg := Default(16, NetFSOI)
	cfg.ParWorkers = 2
	cfg.ForceCoherentSync = true
	New(cfg)
}

// TestWindowedRequiresFSOI pins the other gate: only the FSOI model has
// been restructured into node-owned state.
func TestWindowedRequiresFSOI(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ParWorkers on the mesh must panic")
		}
	}()
	cfg := Default(16, NetMesh)
	cfg.ParWorkers = 2
	New(cfg)
}
