package system

import (
	"strings"
	"testing"

	"fsoi/internal/adversary"
	"fsoi/internal/obs"
	"fsoi/internal/workload"
)

// jammerRoster is the resilience sweep's attack shape: two hostile
// nodes at the top of the id range (both receiver parities) storming
// lines homed at node 0.
func jammerRoster(role adversary.Role, nodes int, intensity float64) []adversary.Spec {
	return []adversary.Spec{
		{Role: role, Node: nodes - 1, Victims: []int{0}, Intensity: intensity},
		{Role: role, Node: nodes - 2, Victims: []int{0}, Intensity: intensity},
	}
}

// runAttack executes one detection-enabled 16-node run at a scale large
// enough for the windowed detector to see past its warm-up exclusion.
func runAttack(t *testing.T, shards int, specs []adversary.Spec) Metrics {
	t.Helper()
	app, ok := workload.ByName("jacobi", 0.1)
	if !ok {
		t.Fatal("unknown app jacobi")
	}
	cfg := Default(16, NetFSOI)
	cfg.MaxCycles = 3_000_000
	cfg.Detect = true
	cfg.Shards = shards
	cfg.Adversaries = specs
	m := New(cfg).Run(app)
	if !m.Finished {
		t.Fatalf("run with %d adversaries did not finish", len(specs))
	}
	return m
}

func TestJammerDegradesHonestTrafficAndIsDetected(t *testing.T) {
	control := runAttack(t, 1, nil)
	if n := len(control.Detection.Flagged); n != 0 {
		t.Fatalf("attack-free control flagged %d links: %+v", n, control.Detection.Flagged)
	}
	if control.AdversaryNodes != 0 || control.HonestFinish != 0 {
		t.Fatal("adversary metrics must stay zero without a roster")
	}

	m := runAttack(t, 1, jammerRoster(adversary.RoleJammer, 16, 0.9))
	if m.AdversaryNodes != 2 {
		t.Fatalf("want 2 adversary nodes, got %d", m.AdversaryNodes)
	}
	if m.HonestFinish <= control.Cycles {
		t.Fatalf("collision storm must delay honest cores: honest finish %d vs control %d",
			m.HonestFinish, control.Cycles)
	}
	if m.Latency.MeanTotal() <= control.Latency.MeanTotal() {
		t.Fatalf("collision storm must raise mean latency: %.2f vs %.2f",
			m.Latency.MeanTotal(), control.Latency.MeanTotal())
	}
	if m.FSOI.SpoofedHeaders != 0 || m.FSOI.StarvedConfirms != 0 {
		t.Fatal("a pure-traffic jammer must not touch the optical layer")
	}
	if len(m.Detection.Flagged) == 0 {
		t.Fatal("detector missed the collision storm entirely")
	}
	// Precision: every flag must localize the attack — a link touching
	// an attacker, or inbound at the victim.
	hostile := map[int]bool{15: true, 14: true}
	for _, f := range m.Detection.Flagged {
		if !hostile[f.Src] && !hostile[f.Dst] && f.Dst != 0 {
			t.Errorf("false positive on bystander link %d->%d (%s)", f.Src, f.Dst, f.Reason)
		}
	}
	// Recall: at least one of the attackers' own transmit links flagged.
	attacker := false
	for _, f := range m.Detection.Flagged {
		if hostile[f.Src] {
			attacker = true
		}
	}
	if !attacker {
		t.Fatal("no attacker transmit link flagged: blame landed only on symptoms")
	}
}

func TestSpooferAndStarverTouchTheOpticalLayer(t *testing.T) {
	sp := runAttack(t, 1, jammerRoster(adversary.RoleSpoofer, 16, 0.3))
	if sp.FSOI.SpoofedHeaders == 0 {
		t.Fatal("spoofer forged no headers")
	}
	if sp.FSOI.StarvedConfirms != 0 {
		t.Fatal("spoofer must not starve confirmations")
	}

	st := runAttack(t, 1, jammerRoster(adversary.RoleStarver, 16, 0.6))
	if st.FSOI.StarvedConfirms == 0 {
		t.Fatal("starver suppressed no confirmations")
	}
	confirm := false
	for _, f := range st.Detection.Flagged {
		if f.Dst == 0 && hasReasonPart(f, "confirm") {
			confirm = true
		}
	}
	if !confirm {
		t.Fatalf("no victim-inbound link flagged for confirmation loss: %+v", st.Detection.Flagged)
	}
}

// hasReasonPart reports whether the "+"-joined reason list contains one
// specific rule name.
func hasReasonPart(f obs.LinkProfile, want string) bool {
	for _, r := range strings.Split(f.Reason, "+") {
		if r == want {
			return true
		}
	}
	return false
}

func TestAdversaryRunsAreDeterministicAndShardEquivalent(t *testing.T) {
	roster := jammerRoster(adversary.RoleJammer, 16, 0.9)
	serial := runAttack(t, 1, roster)
	again := runAttack(t, 1, roster)
	if a, b := serial.Canonical(), again.Canonical(); a != b {
		diffLines(t, "same-seed adversary canonical", a, b)
	}
	sharded := runAttack(t, 2, roster)
	if a, b := serial.Canonical(), sharded.Canonical(); a != b {
		diffLines(t, "serial-vs-sharded adversary canonical", a, b)
	}
}

func TestAdversaryRosterRejectedAtBuild(t *testing.T) {
	for _, bad := range [][]adversary.Spec{
		{{Role: adversary.RoleJammer, Node: 15, Victims: []int{15}, Intensity: 0.5}}, // self-targeting
		{{Role: adversary.RoleJammer, Node: 99, Victims: []int{0}, Intensity: 0.5}},  // out of range
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("invalid roster %+v accepted", bad)
				}
			}()
			cfg := Default(16, NetFSOI)
			cfg.Adversaries = bad
			New(cfg)
		}()
	}
}
