package system

import (
	"fmt"
	"strconv"
	"strings"

	"fsoi/internal/noc"
	"fsoi/internal/stats"
)

// Canonical serializes every metric a run produces into one line per
// value, in a fixed order, with floats rendered in shortest
// round-trip form (distinct bit patterns always yield distinct
// strings). Two runs of the same configuration and seed must produce
// byte-identical canonical forms — that is the repository's core
// determinism claim, and the cross-run regression test enforces it by
// comparing exactly this string.
func (m Metrics) Canonical() string {
	var b strings.Builder
	put := func(key string, val any) {
		switch v := val.(type) {
		case float64:
			fmt.Fprintf(&b, "%s %s\n", key, strconv.FormatFloat(v, 'g', -1, 64))
		default:
			fmt.Fprintf(&b, "%s %v\n", key, val)
		}
	}
	put("app", m.App)
	put("net", m.Net)
	put("nodes", m.Nodes)
	put("cycles", int64(m.Cycles))
	put("finished", m.Finished)

	if m.Latency != nil {
		putSummary(&b, "latency.queuing", &m.Latency.Queuing)
		putSummary(&b, "latency.scheduling", &m.Latency.Scheduling)
		putSummary(&b, "latency.network", &m.Latency.Network)
		putSummary(&b, "latency.resolution", &m.Latency.Resolution)
		putSummary(&b, "latency.total", &m.Latency.Total)
		for i := range m.Latency.ByType {
			putSummary(&b, fmt.Sprintf("latency.type.%s", noc.PacketType(i)), &m.Latency.ByType[i])
		}
		put("latency.delivered", m.Latency.Delivered)
		put("latency.collisions", m.Latency.Collisions)
		put("latency.attempts", m.Latency.Attempts)
	}

	if m.FSOI != nil {
		for l := 0; l < len(m.FSOI.Attempts); l++ {
			put(fmt.Sprintf("fsoi.lane%d.attempts", l), m.FSOI.Attempts[l])
			put(fmt.Sprintf("fsoi.lane%d.collided", l), m.FSOI.Collided[l])
			put(fmt.Sprintf("fsoi.lane%d.collisions", l), m.FSOI.Collisions[l])
			put(fmt.Sprintf("fsoi.lane%d.delivered", l), m.FSOI.Delivered[l])
			put(fmt.Sprintf("fsoi.lane%d.dropped", l), m.FSOI.Dropped[l])
			put(fmt.Sprintf("fsoi.lane%d.slots", l), m.FSOI.SlotsObserved[l])
		}
		for k := 0; k < len(m.FSOI.DataByKind); k++ {
			put(fmt.Sprintf("fsoi.kind%d", k), m.FSOI.DataByKind[k])
		}
		put("fsoi.hints.issued", m.FSOI.HintsIssued)
		put("fsoi.hints.correct", m.FSOI.HintsCorrect)
		put("fsoi.hints.wrong", m.FSOI.HintsWrong)
		put("fsoi.confirm.bits", m.FSOI.ConfirmBits)
		put("fsoi.confirm.signals", m.FSOI.ConfirmSignals)
		put("fsoi.bit_errors", m.FSOI.BitErrors)
		put("fsoi.scheduled_holds", m.FSOI.ScheduledHolds)
		put("fsoi.header_corruptions", m.FSOI.HeaderCorruptions)
		put("fsoi.payload_crc_errors", m.FSOI.PayloadCRCErrors)
		put("fsoi.confirm_drops", m.FSOI.ConfirmDrops)
		put("fsoi.timeout_retransmits", m.FSOI.TimeoutRetransmits)
		put("fsoi.duplicate_deliveries", m.FSOI.DuplicateDeliveries)
		put("fsoi.degraded_transmissions", m.FSOI.DegradedTransmissions)
		put("fsoi.spoofed_headers", m.FSOI.SpoofedHeaders)
		put("fsoi.starved_confirms", m.FSOI.StarvedConfirms)
		for l := 0; l < len(m.FSOI.MaxBackoffDepth); l++ {
			put(fmt.Sprintf("fsoi.lane%d.max_backoff_depth", l), m.FSOI.MaxBackoffDepth[l])
		}
	}

	if m.AdversaryNodes > 0 {
		put("adversary.nodes", m.AdversaryNodes)
		put("adversary.honest_finish", int64(m.HonestFinish))
	}
	if m.Detection != nil {
		for _, line := range m.Detection.CanonicalLines() {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}

	put("energy.network", float64(m.Energy.Network))
	put("energy.corecache", float64(m.Energy.CoreCache))
	put("energy.leakage", float64(m.Energy.Leakage))
	put("power.avg_w", float64(m.AvgPowerW))

	put("traffic.meta", m.MetaPackets)
	put("traffic.data", m.DataPackets)
	put("protocol.invalidations", m.Invalidations)
	put("protocol.elided_acks", m.ElidedAcks)
	put("protocol.nacks", m.Nacks)
	put("protocol.sync_stall", m.SyncStall)

	if m.FaultCounters != nil {
		for _, name := range m.FaultCounters.Names() {
			put("fault."+name, m.FaultCounters.Get(name))
		}
	}
	if m.ReplyHist != nil {
		for i := 0; i < m.ReplyHist.NumBuckets(); i++ {
			put(fmt.Sprintf("replyhist.bucket%d", i), m.ReplyHist.Bucket(i))
		}
		put("replyhist.overflow", m.ReplyHist.Overflow())
		put("replyhist.total", m.ReplyHist.Total())
	}
	return b.String()
}

// putSummary emits one summary's five independent moments.
func putSummary(b *strings.Builder, key string, s *stats.Summary) {
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	fmt.Fprintf(b, "%s n=%d sum=%s min=%s max=%s stddev=%s\n",
		key, s.N(), f(s.Sum()), f(s.Min()), f(s.Max()), f(s.StdDev()))
}
