// Package obs is the deterministic packet-lifecycle observability
// layer: every packet moving through an interconnect emits cycle-stamped
// lifecycle events (inject, tx-start, retransmit, collision, backoff,
// confirmation-drop, deliver, drop) into a Recorder, which exports them
// as sorted JSONL and Chrome trace-event JSON and feeds a registry of
// percentile latency tables (p50/p90/p99/p999 per packet class and per
// src->dst link) that extends the paper's Figure 5 reporting.
//
// The package obeys the same determinism rules as the simulation
// packages (fsoilint's detsource/maporder analyzers enforce them):
// events are appended in simulated-time order, never stamped with host
// time, and every map-backed aggregation iterates in sorted key order.
// A nil *Recorder is the disabled state — every emission site guards
// with a single nil check and the hot path allocates nothing.
package obs

import (
	"fmt"
	"sort"

	"fsoi/internal/sim"
)

// Kind classifies one lifecycle event.
type Kind uint8

// Lifecycle event kinds, in the order a packet experiences them.
const (
	// KindInject marks the packet being accepted by the network.
	KindInject Kind = iota
	// KindTxStart marks the first transmission attempt entering a slot.
	KindTxStart
	// KindRetransmit marks a repeated attempt entering a slot.
	KindRetransmit
	// KindCollision marks an attempt that ended in a (possibly
	// misdetected) collision at the receiver.
	KindCollision
	// KindBackoff marks a retry being scheduled; Aux carries the slot
	// index the retry becomes eligible in.
	KindBackoff
	// KindConfirmDrop marks a lost confirmation beam: the payload landed
	// but the sender rides the confirmation-timeout retransmission path.
	KindConfirmDrop
	// KindDeliver marks final delivery; Aux carries the end-to-end
	// latency in cycles.
	KindDeliver
	// KindDrop marks the network permanently giving up on a packet after
	// retry exhaustion; Aux carries the attempt count it died with.
	KindDrop
	// KindFault marks a start-of-life physical fault annotation (failed
	// VCSELs); Aux carries the failure count, Src the afflicted node.
	KindFault
	numKinds
)

// String names the kind with the stable on-wire identifier used in the
// JSONL export.
func (k Kind) String() string {
	switch k {
	case KindInject:
		return "inject"
	case KindTxStart:
		return "tx-start"
	case KindRetransmit:
		return "retransmit"
	case KindCollision:
		return "collision"
	case KindBackoff:
		return "backoff"
	case KindConfirmDrop:
		return "confirm-drop"
	case KindDeliver:
		return "deliver"
	case KindDrop:
		return "drop"
	case KindFault:
		return "fault"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// ParseKind inverts String: it maps an on-wire identifier from the
// JSONL export back to its Kind (false for unknown names), letting
// cmd/fsoitrace rebuild events for offline detection.
func ParseKind(s string) (Kind, bool) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

// Packet classes, mirroring noc.PacketType without importing it (obs
// sits below every network package in the dependency order).
const (
	// ClassMeta is a short control packet.
	ClassMeta uint8 = 0
	// ClassData is a long cache-line packet.
	ClassData uint8 = 1
)

// ClassName names a packet class with its stable on-wire identifier.
func ClassName(c uint8) string {
	if c == ClassData {
		return "data"
	}
	return "meta"
}

// LaneNone marks events that do not belong to a slotted lane.
const LaneNone int8 = -1

// LaneName names a lane with its stable on-wire identifier.
func LaneName(l int8) string {
	switch l {
	case 0:
		return "meta"
	case 1:
		return "data"
	}
	return "-"
}

// Event is one cycle-stamped lifecycle observation.
type Event struct {
	// At is the simulated cycle of the event.
	At sim.Cycle
	// ID is the packet id (0 for non-packet events such as KindFault).
	ID uint64
	// Aux is kind-specific: deliver latency, backoff retry slot, drop
	// attempt count, fault failure count; 0 elsewhere.
	Aux int64
	// Src and Dst are the packet endpoints (Dst is -1 when absent).
	Src, Dst int32
	// Attempt is the transmission attempt the event belongs to (0 on the
	// first attempt).
	Attempt int32
	// Kind classifies the event.
	Kind Kind
	// Class is the packet class (ClassMeta or ClassData).
	Class uint8
	// Lane is the slotted lane (0 meta, 1 data, LaneNone otherwise).
	Lane int8
}

// Recorder accumulates lifecycle events for one simulation run. Events
// must be emitted in non-decreasing simulated time, which every caller
// driven by a sim.Engine does naturally; Events re-establishes the
// invariant with a stable sort so exports are deterministically ordered
// even if a caller violates it.
//
// The zero of *Recorder (nil) is the disabled state: emission sites
// guard with a nil check and pay nothing else.
type Recorder struct {
	events []Event
	limit  int
	lost   int64
	sorted bool
}

// NewRecorder builds a recorder holding at most limit events; limit <= 0
// means unbounded. Once full, further events are counted in Lost rather
// than silently vanishing.
func NewRecorder(limit int) *Recorder {
	return &Recorder{limit: limit}
}

// Emit appends one event.
func (r *Recorder) Emit(e Event) {
	if r.limit > 0 && len(r.events) >= r.limit {
		r.lost++
		return
	}
	r.sorted = false
	r.events = append(r.events, e)
}

// Len reports the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}

// Lost reports how many events the limit discarded.
func (r *Recorder) Lost() int64 {
	if r == nil {
		return 0
	}
	return r.lost
}

// Events returns the recorded events sorted by cycle, with emission
// order breaking ties (the sort is stable and emission order is itself
// deterministic under the engine, so the result is byte-stable across
// runs and worker counts).
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	if !r.sorted {
		sort.SliceStable(r.events, func(i, j int) bool {
			return r.events[i].At < r.events[j].At
		})
		r.sorted = true
	}
	return r.events
}

// CountByKind tallies events per kind in kind order.
func (r *Recorder) CountByKind() [numKinds]int64 {
	var out [numKinds]int64
	if r == nil {
		return out
	}
	for _, e := range r.events {
		if int(e.Kind) < len(out) {
			out[e.Kind]++
		}
	}
	return out
}

// NumKinds reports how many event kinds exist (the length of
// CountByKind's result).
func NumKinds() int { return int(numKinds) }
