package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"fsoi/internal/stats"
)

// Detector configuration defaults; see DetectorConfig.
const (
	defaultWindowCycles        = 2048
	defaultWarmupWindows       = 2
	defaultQuantile            = 0.75
	defaultFloodFactor         = 6.0
	defaultMinFloodAttempts    = 96
	defaultVolumeFactor        = 4.0
	defaultMinVolumeAttempts   = 24
	defaultRateFactor          = 4.0
	defaultMinWindowCollisions = 32
	defaultDepthLimit          = 14
	defaultDepthMinPeak        = 8
	defaultConfirmFactor       = 4.0
	defaultMinConfirmDrops     = 16
)

// DetectorConfig tunes the adversarial-traffic detector. The zero value
// selects the defaults above, which hold zero false positives on every
// attack-free configuration in the test suite while flagging the
// attacker-adjacent links of the resilience sweep.
type DetectorConfig struct {
	// WindowCycles is the counting window length.
	WindowCycles int64
	// WarmupWindows excludes the run's first windows from every count:
	// at cold start all nodes miss at once and briefly storm the memory
	// controller links, a transient that looks exactly like an attack
	// but ends within a couple of windows. Negative disables exclusion.
	WarmupWindows int64
	// Quantile picks each baseline from the distribution of per-link
	// peak window counts (0.75 = upper quartile). A percentile-derived
	// baseline self-calibrates to the run's honest traffic level, so
	// the same factors serve a quiet 16-node run and a saturated
	// 64-node one.
	Quantile float64
	// FloodFactor scales the volume baseline into the flood threshold:
	// a link pushing this many times the typical busy link's window
	// peak is hostile on volume alone, collisions or not. A jammer
	// cannot jam without transmitting.
	FloodFactor float64
	// MinFloodAttempts floors the flood threshold, guarding
	// nearly-idle runs where the baseline is tiny.
	MinFloodAttempts int64
	// VolumeFactor scales the volume baseline into the corroboration
	// threshold the rate and depth rules require: congestion symptoms
	// only implicate a link that is itself anomalously busy. Without
	// this gate, honest senders backing off from a jammed receiver
	// would be flagged for the attacker's crime.
	VolumeFactor float64
	// MinVolumeAttempts floors the corroboration threshold.
	MinVolumeAttempts int64
	// RateFactor scales the collision baseline into the rate-anomaly
	// threshold.
	RateFactor float64
	// MinWindowCollisions floors the rate threshold, guarding
	// nearly-collision-free runs where the baseline is ~0.
	MinWindowCollisions int64
	// DepthLimit flags a link whose deepest backoff attempt reaches it...
	DepthLimit int64
	// ...provided the link also saw DepthMinPeak collisions in one
	// window (and passes the volume gate).
	DepthMinPeak int64
	// ConfirmFactor and MinConfirmDrops mirror the rate rule for
	// confirmation losses (the starver's signature). Confirmation
	// drops need no volume corroboration: a healthy fault-free link
	// loses none, so any pile-up is anomalous wherever it appears.
	ConfirmFactor   float64
	MinConfirmDrops int64
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.WindowCycles <= 0 {
		c.WindowCycles = defaultWindowCycles
	}
	if c.WarmupWindows == 0 {
		c.WarmupWindows = defaultWarmupWindows
	}
	if c.WarmupWindows < 0 {
		c.WarmupWindows = 0
	}
	if c.Quantile <= 0 || c.Quantile >= 1 {
		c.Quantile = defaultQuantile
	}
	if c.FloodFactor <= 0 {
		c.FloodFactor = defaultFloodFactor
	}
	if c.MinFloodAttempts <= 0 {
		c.MinFloodAttempts = defaultMinFloodAttempts
	}
	if c.VolumeFactor <= 0 {
		c.VolumeFactor = defaultVolumeFactor
	}
	if c.MinVolumeAttempts <= 0 {
		c.MinVolumeAttempts = defaultMinVolumeAttempts
	}
	if c.RateFactor <= 0 {
		c.RateFactor = defaultRateFactor
	}
	if c.MinWindowCollisions <= 0 {
		c.MinWindowCollisions = defaultMinWindowCollisions
	}
	if c.DepthLimit <= 0 {
		c.DepthLimit = defaultDepthLimit
	}
	if c.DepthMinPeak <= 0 {
		c.DepthMinPeak = defaultDepthMinPeak
	}
	if c.ConfirmFactor <= 0 {
		c.ConfirmFactor = defaultConfirmFactor
	}
	if c.MinConfirmDrops <= 0 {
		c.MinConfirmDrops = defaultMinConfirmDrops
	}
	return c
}

// LinkProfile is one link's contention record with its verdict.
type LinkProfile struct {
	Link
	Attempts     int64  // transmission attempts over the whole run
	PeakAttempts int64  // most attempts in any one window
	Collisions   int64  // collision events over the whole run
	PeakWindow   int64  // most collisions in any one window
	MaxDepth     int64  // deepest backoff attempt
	ConfirmDrops int64  // lost confirmations
	FlaggedAt    int64  // cycle of the first threshold crossing (-1 = clean)
	Reason       string // "flood", "rate", "depth", "confirm", "+"-joined when several
}

// Report is the detector's output over one run's lifecycle events.
type Report struct {
	Cfg              DetectorConfig
	Windows          int64 // windows spanned by the observed events
	VolumeBaseline   int64 // Quantile of per-link peak attempt windows
	FloodThreshold   int64
	VolumeThreshold  int64 // corroboration gate for the rate/depth rules
	RateBaseline     int64 // Quantile of per-link peak collision windows
	RateThreshold    int64
	ConfirmBaseline  int64 // Quantile of per-link confirmation-loss totals
	ConfirmThreshold int64
	Links            []LinkProfile // every link with contention signal, by (src, dst)
	Flagged          []LinkProfile // the anomalous subset, by (src, dst)
}

// linkAcc accumulates one link's signals during an event scan.
type linkAcc struct {
	att       int64
	attWindow int64
	attIn     int64
	attPeak   int64
	coll      int64
	window    int64 // window index currently being counted
	inWindow  int64 // collisions in that window
	peak      int64
	depth     int64
	confirms  int64
	flaggedAt int64
	reasons   []string
}

// noteAttempt folds one transmission attempt into the windows.
func (a *linkAcc) noteAttempt(at, windowCycles int64) {
	a.att++
	if w := at / windowCycles; w != a.attWindow {
		a.attWindow, a.attIn = w, 0
	}
	a.attIn++
	if a.attIn > a.attPeak {
		a.attPeak = a.attIn
	}
}

// noteCollision folds one collision event into the windows.
func (a *linkAcc) noteCollision(at, windowCycles int64) {
	a.coll++
	if w := at / windowCycles; w != a.window {
		a.window, a.inWindow = w, 0
	}
	a.inWindow++
	if a.inWindow > a.peak {
		a.peak = a.inWindow
	}
}

// Detect runs the windowed per-link anomaly detector over one run's
// lifecycle events. Events must be in non-decreasing At order —
// Recorder.Events and the JSONL export both guarantee it — and the
// result is a pure function of the event sequence, so a run that is
// byte-identical across engines yields a byte-identical report.
func Detect(events []Event, cfg DetectorConfig) *Report {
	cfg = cfg.withDefaults()
	acc := make(map[Link]*linkAcc)
	at := func(e Event) (*linkAcc, bool) {
		if e.Src < 0 || e.Dst < 0 {
			return nil, false
		}
		k := Link{Src: int(e.Src), Dst: int(e.Dst)}
		a := acc[k]
		if a == nil {
			a = &linkAcc{attWindow: -1, window: -1, flaggedAt: -1}
			acc[k] = a
		}
		return a, true
	}
	warmCycles := cfg.WarmupWindows * cfg.WindowCycles
	var lastAt int64
	for _, e := range events {
		if v := int64(e.At); v > lastAt {
			lastAt = v
		}
		if int64(e.At) < warmCycles {
			continue
		}
		switch e.Kind {
		case KindTxStart, KindRetransmit:
			if a, ok := at(e); ok {
				a.noteAttempt(int64(e.At), cfg.WindowCycles)
			}
		case KindCollision:
			if a, ok := at(e); ok {
				a.noteCollision(int64(e.At), cfg.WindowCycles)
			}
		case KindBackoff:
			a, ok := at(e)
			if !ok {
				continue
			}
			if d := int64(e.Attempt); d > a.depth {
				a.depth = d
			}
		case KindConfirmDrop:
			if a, ok := at(e); ok {
				a.confirms++
			}
		}
	}

	keys := make([]Link, 0, len(acc))
	for k := range acc {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Src != keys[j].Src {
			return keys[i].Src < keys[j].Src
		}
		return keys[i].Dst < keys[j].Dst
	})

	// Percentile-derived baselines over the per-link distributions.
	var attPeaks, peaks, confirms []int64
	for _, k := range keys {
		a := acc[k]
		if a.att > 0 {
			attPeaks = append(attPeaks, a.attPeak)
		}
		if a.coll > 0 {
			peaks = append(peaks, a.peak)
		}
		// Confirm losses baseline over every active link, zeros included:
		// a healthy link loses nothing, so when only the victim's links
		// pile up drops the quantile stays at the honest level instead of
		// being dragged up by the attack itself. Uniform physical-fault
		// drops (fault.Config.ConfirmDropProb) still lift it everywhere.
		confirms = append(confirms, a.confirms)
	}
	r := &Report{
		Cfg:             cfg,
		Windows:         lastAt/cfg.WindowCycles + 1,
		VolumeBaseline:  quantileInt(attPeaks, cfg.Quantile),
		RateBaseline:    quantileInt(peaks, cfg.Quantile),
		ConfirmBaseline: quantileInt(confirms, cfg.Quantile),
	}
	r.FloodThreshold = maxInt64(cfg.MinFloodAttempts,
		int64(math.Ceil(cfg.FloodFactor*float64(r.VolumeBaseline))))
	r.VolumeThreshold = maxInt64(cfg.MinVolumeAttempts,
		int64(math.Ceil(cfg.VolumeFactor*float64(r.VolumeBaseline))))
	r.RateThreshold = maxInt64(cfg.MinWindowCollisions,
		int64(math.Ceil(cfg.RateFactor*float64(r.RateBaseline))))
	r.ConfirmThreshold = maxInt64(cfg.MinConfirmDrops,
		int64(math.Ceil(cfg.ConfirmFactor*float64(r.ConfirmBaseline))))

	// Verdicts.
	for _, k := range keys {
		a := acc[k]
		busy := a.attPeak >= r.VolumeThreshold
		if a.attPeak >= r.FloodThreshold {
			a.reasons = append(a.reasons, "flood")
		}
		if busy && a.peak >= r.RateThreshold {
			a.reasons = append(a.reasons, "rate")
		}
		if busy && a.depth >= cfg.DepthLimit && a.peak >= cfg.DepthMinPeak {
			a.reasons = append(a.reasons, "depth")
		}
		if a.confirms >= r.ConfirmThreshold {
			a.reasons = append(a.reasons, "confirm")
		}
	}

	// Second scan: the cycle each flagged link first crossed its
	// thresholds, the detection-latency numerator.
	run := make(map[Link]*linkAcc, len(acc))
	for _, e := range events {
		if e.Src < 0 || e.Dst < 0 || int64(e.At) < warmCycles {
			continue
		}
		k := Link{Src: int(e.Src), Dst: int(e.Dst)}
		a := acc[k]
		if a == nil || len(a.reasons) == 0 || a.flaggedAt >= 0 {
			continue
		}
		s := run[k]
		if s == nil {
			s = &linkAcc{attWindow: -1, window: -1}
			run[k] = s
		}
		switch e.Kind {
		case KindTxStart, KindRetransmit:
			s.noteAttempt(int64(e.At), cfg.WindowCycles)
		case KindCollision:
			s.noteCollision(int64(e.At), cfg.WindowCycles)
		case KindBackoff:
			if d := int64(e.Attempt); d > s.depth {
				s.depth = d
			}
		case KindConfirmDrop:
			s.confirms++
		}
		busy := s.attPeak >= r.VolumeThreshold
		switch {
		case hasReason(a, "flood") && s.attIn >= r.FloodThreshold,
			hasReason(a, "rate") && busy && s.inWindow >= r.RateThreshold,
			hasReason(a, "depth") && busy && s.depth >= cfg.DepthLimit && s.peak >= cfg.DepthMinPeak,
			hasReason(a, "confirm") && s.confirms >= r.ConfirmThreshold:
			a.flaggedAt = int64(e.At)
		}
	}

	for _, k := range keys {
		a := acc[k]
		p := LinkProfile{
			Link: k, Attempts: a.att, PeakAttempts: a.attPeak,
			Collisions: a.coll, PeakWindow: a.peak,
			MaxDepth: a.depth, ConfirmDrops: a.confirms,
			FlaggedAt: a.flaggedAt, Reason: strings.Join(a.reasons, "+"),
		}
		r.Links = append(r.Links, p)
		if p.Reason != "" {
			r.Flagged = append(r.Flagged, p)
		}
	}
	return r
}

func hasReason(a *linkAcc, want string) bool {
	for _, r := range a.reasons {
		if r == want {
			return true
		}
	}
	return false
}

// quantileInt returns the q-quantile of vs by the nearest-rank method
// (0 for an empty sample). Integer in, integer out: no float compare
// ambiguity enters the byte surface.
func quantileInt(vs []int64, q float64) int64 {
	if len(vs) == 0 {
		return 0
	}
	sorted := make([]int64, len(vs))
	copy(sorted, vs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// FlaggedLinks returns just the anomalous links, by (src, dst).
func (r *Report) FlaggedLinks() []Link {
	out := make([]Link, len(r.Flagged))
	for i, p := range r.Flagged {
		out[i] = p.Link
	}
	return out
}

// Table renders the verdicts: thresholds first, then the flagged links.
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "detector: %d windows of %d cycles over %d links (first %d windows are warm-up)\n",
		r.Windows, r.Cfg.WindowCycles, len(r.Links), r.Cfg.WarmupWindows)
	fmt.Fprintf(&b, "thresholds: flood %d, volume gate %d (baseline %d), rate %d (baseline %d), confirm %d (baseline %d), depth limit %d\n",
		r.FloodThreshold, r.VolumeThreshold, r.VolumeBaseline,
		r.RateThreshold, r.RateBaseline, r.ConfirmThreshold, r.ConfirmBaseline, r.Cfg.DepthLimit)
	if len(r.Flagged) == 0 {
		b.WriteString("no anomalous links\n")
		return b.String()
	}
	t := stats.NewTable("link", "reason", "attempts", "peak-att", "collisions", "peak-coll", "max-backoff", "confirm-drops", "flagged-at")
	for _, p := range r.Flagged {
		t.AddRow(fmt.Sprintf("%d->%d", p.Src, p.Dst), p.Reason,
			fmt.Sprintf("%d", p.Attempts), fmt.Sprintf("%d", p.PeakAttempts),
			fmt.Sprintf("%d", p.Collisions), fmt.Sprintf("%d", p.PeakWindow),
			fmt.Sprintf("%d", p.MaxDepth), fmt.Sprintf("%d", p.ConfirmDrops),
			fmt.Sprintf("%d", p.FlaggedAt))
	}
	b.WriteString(t.String())
	return b.String()
}

// CanonicalLines serializes the report for the canonical-metrics byte
// surface, one "key value" line per entry, flagged links included — the
// equivalence CI compares detection verdicts across engines, not just
// raw counters.
func (r *Report) CanonicalLines() []string {
	out := []string{
		fmt.Sprintf("detection.windows %d", r.Windows),
		fmt.Sprintf("detection.links %d", len(r.Links)),
		fmt.Sprintf("detection.volume_baseline %d", r.VolumeBaseline),
		fmt.Sprintf("detection.flood_threshold %d", r.FloodThreshold),
		fmt.Sprintf("detection.volume_threshold %d", r.VolumeThreshold),
		fmt.Sprintf("detection.rate_baseline %d", r.RateBaseline),
		fmt.Sprintf("detection.rate_threshold %d", r.RateThreshold),
		fmt.Sprintf("detection.confirm_baseline %d", r.ConfirmBaseline),
		fmt.Sprintf("detection.confirm_threshold %d", r.ConfirmThreshold),
		fmt.Sprintf("detection.flagged %d", len(r.Flagged)),
	}
	for _, p := range r.Flagged {
		out = append(out, fmt.Sprintf("detection.flag %d->%d %s at=%d peak=%d depth=%d confirms=%d",
			p.Src, p.Dst, p.Reason, p.FlaggedAt, p.PeakWindow, p.MaxDepth, p.ConfirmDrops))
	}
	return out
}
