package obs

import (
	"fmt"
	"io"
)

// WriteJSONL writes the recorder's events as JSON Lines, one event per
// line, sorted by cycle. The encoder is hand-rolled fmt so field order
// is fixed by construction; two identical runs produce byte-identical
// files at any worker count. A truncated recording ends with an explicit
// marker line instead of silently looking complete.
func WriteJSONL(w io.Writer, r *Recorder) error {
	for _, e := range r.Events() {
		if _, err := fmt.Fprintf(w,
			`{"at":%d,"ev":%q,"id":%d,"src":%d,"dst":%d,"class":%q,"lane":%q,"attempt":%d,"aux":%d}`+"\n",
			int64(e.At), e.Kind.String(), e.ID, e.Src, e.Dst,
			ClassName(e.Class), LaneName(e.Lane), e.Attempt, e.Aux); err != nil {
			return err
		}
	}
	if r.Lost() > 0 {
		if _, err := fmt.Fprintf(w, `{"ev":"truncated","aux":%d}`+"\n", r.Lost()); err != nil {
			return err
		}
	}
	return nil
}

// WriteChromeTrace writes the events in Chrome trace-event JSON (open in
// chrome://tracing or Perfetto). Delivered packets become complete ("X")
// spans from injection to delivery on their source node's track;
// collisions, backoffs, confirmation drops, and terminal drops become
// instant ("i") events. Timestamps are simulated cycles, not
// microseconds: the viewer's time axis reads directly in cycles.
func WriteChromeTrace(w io.Writer, r *Recorder) error {
	if _, err := io.WriteString(w, `{"traceEvents":[`); err != nil {
		return err
	}
	// injectAt pairs each packet's injection with its terminal event; it
	// is only ever indexed, never iterated, so map order cannot leak.
	injectAt := make(map[uint64]int64)
	first := true
	emit := func(format string, args ...any) error {
		if !first {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		first = false
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	for _, e := range r.Events() {
		switch e.Kind {
		case KindInject:
			injectAt[e.ID] = int64(e.At)
		case KindDeliver, KindDrop:
			start, ok := injectAt[e.ID]
			if !ok {
				start = int64(e.At)
			}
			delete(injectAt, e.ID)
			status := "delivered"
			if e.Kind == KindDrop {
				status = "dropped"
			}
			if err := emit(
				`{"name":"%s %d->%d","cat":"packet","ph":"X","ts":%d,"dur":%d,"pid":0,"tid":%d,"args":{"id":%d,"status":%q,"retries":%d,"aux":%d}}`,
				ClassName(e.Class), e.Src, e.Dst, start, int64(e.At)-start,
				e.Src, e.ID, status, e.Attempt, e.Aux); err != nil {
				return err
			}
		case KindCollision, KindBackoff, KindConfirmDrop, KindFault:
			if err := emit(
				`{"name":%q,"cat":"event","ph":"i","ts":%d,"pid":0,"tid":%d,"s":"t","args":{"id":%d,"dst":%d,"lane":%q,"attempt":%d,"aux":%d}}`,
				e.Kind.String(), int64(e.At), e.Src, e.ID, e.Dst,
				LaneName(e.Lane), e.Attempt, e.Aux); err != nil {
				return err
			}
		}
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}
