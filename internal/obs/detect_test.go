package obs

import (
	"strings"
	"testing"

	"fsoi/internal/sim"
)

// ev builds one lifecycle event on the src->dst link.
func ev(kind Kind, at int64, src, dst, attempt int) Event {
	return Event{At: sim.Cycle(at), Kind: kind, Src: int32(src), Dst: int32(dst), Attempt: int32(attempt)}
}

// honestBackground emits a light, even load on n links into dst so the
// percentile baselines have an honest population to calibrate against:
// each link attempts a handful of transmissions per window.
func honestBackground(n int, from, until int64) []Event {
	var out []Event
	for at := from; at < until; at += 256 {
		for s := 0; s < n; s++ {
			out = append(out, ev(KindTxStart, at+int64(s), s+1, 0, 0))
		}
	}
	return out
}

// burst emits count attempt+collision pairs on src->dst packed into a
// single detector window starting at from.
func burst(src, dst int, from int64, count int) []Event {
	var out []Event
	for i := 0; i < count; i++ {
		at := from + int64(i)
		out = append(out, ev(KindTxStart, at, src, dst, 0))
		out = append(out, ev(KindCollision, at, src, dst, 0))
	}
	return out
}

func TestDetectEmptyAndCleanRuns(t *testing.T) {
	if r := Detect(nil, DetectorConfig{}); len(r.Flagged) != 0 {
		t.Fatalf("empty event stream flagged %d links", len(r.Flagged))
	}
	r := Detect(honestBackground(8, 0, 1<<16), DetectorConfig{})
	if len(r.Flagged) != 0 {
		t.Fatalf("uniform honest traffic flagged %d links: %+v", len(r.Flagged), r.Flagged)
	}
	if len(r.Links) != 8 {
		t.Fatalf("want 8 profiled links, got %d", len(r.Links))
	}
}

func TestDetectWarmupExclusion(t *testing.T) {
	// A violent burst confined to the warm-up windows (the cold-start
	// transient) must be invisible; the identical burst after warm-up
	// must be flagged.
	cfg := DetectorConfig{WindowCycles: 2048, WarmupWindows: 2}
	base := honestBackground(8, 0, 1<<16)

	cold := append(append([]Event(nil), burst(15, 0, 100, 400)...), base...)
	sortEvents(cold)
	if r := Detect(cold, cfg); len(r.Flagged) != 0 {
		t.Fatalf("burst inside warm-up flagged %d links", len(r.Flagged))
	}

	hot := append(append([]Event(nil), burst(15, 0, 3*2048+100, 400)...), base...)
	sortEvents(hot)
	r := Detect(hot, cfg)
	if len(r.Flagged) != 1 || r.Flagged[0].Src != 15 || r.Flagged[0].Dst != 0 {
		t.Fatalf("post-warm-up burst not pinned to 15->0: %+v", r.Flagged)
	}
	if !strings.Contains(r.Flagged[0].Reason, "flood") {
		t.Fatalf("volume burst must trip the flood rule, got %q", r.Flagged[0].Reason)
	}
	if at := r.Flagged[0].FlaggedAt; at < 3*2048 || at >= 4*2048 {
		t.Fatalf("flagged-at %d outside the burst window", at)
	}
}

func TestDetectVolumeGateShieldsBystanders(t *testing.T) {
	// A link suffering many collisions while transmitting at an honest
	// rate is a victim of congestion, not its cause: without anomalous
	// volume the rate and depth rules must stay quiet.
	var events []Event
	events = append(events, honestBackground(8, 0, 1<<16)...)
	for at := int64(3 * 2048); at < 4*2048; at += 16 {
		events = append(events, ev(KindCollision, at, 2, 0, 0))
		events = append(events, ev(KindBackoff, at, 2, 0, 20))
	}
	sortEvents(events)
	if r := Detect(events, DetectorConfig{WindowCycles: 2048}); len(r.Flagged) != 0 {
		t.Fatalf("low-volume victim link flagged: %+v", r.Flagged)
	}
}

func TestDetectDepthRule(t *testing.T) {
	// Anomalous volume + deep backoff + collisions, but spread thin
	// enough that no single window crosses the rate threshold.
	var events []Event
	events = append(events, honestBackground(8, 0, 1<<16)...)
	for at := int64(3 * 2048); at < 8*2048; at += 8 {
		events = append(events, ev(KindTxStart, at, 15, 0, 0))
		if at%64 == 0 {
			events = append(events, ev(KindCollision, at, 15, 0, 0))
			events = append(events, ev(KindBackoff, at, 15, 0, 20))
		}
	}
	sortEvents(events)
	r := Detect(events, DetectorConfig{WindowCycles: 2048, FloodFactor: 1000, MinFloodAttempts: 1 << 30})
	if len(r.Flagged) != 1 || !strings.Contains(r.Flagged[0].Reason, "depth") {
		t.Fatalf("deep-backoff busy link not flagged by the depth rule: %+v", r.Flagged)
	}
}

func TestDetectConfirmRuleBaselineOverZeros(t *testing.T) {
	// Only the victim's inbound links lose confirmations. The baseline
	// quantile runs over every active link, zeros included, so the
	// attack cannot inflate its own threshold out of reach.
	var events []Event
	events = append(events, honestBackground(8, 0, 1<<16)...)
	for at := int64(3 * 2048); at < 6*2048; at += 32 {
		events = append(events, ev(KindConfirmDrop, at, 3, 0, 0))
	}
	sortEvents(events)
	r := Detect(events, DetectorConfig{WindowCycles: 2048})
	if len(r.Flagged) != 1 || !strings.Contains(r.Flagged[0].Reason, "confirm") {
		t.Fatalf("confirmation-loss pile-up not flagged: %+v", r.Flagged)
	}
	if r.ConfirmBaseline != 0 {
		t.Fatalf("confirm baseline %d should be 0: most links lose nothing", r.ConfirmBaseline)
	}
}

func TestDetectDeterministicReport(t *testing.T) {
	var events []Event
	events = append(events, honestBackground(8, 0, 1<<16)...)
	events = append(events, burst(15, 0, 3*2048, 400)...)
	sortEvents(events)
	a := strings.Join(Detect(events, DetectorConfig{}).CanonicalLines(), "\n")
	b := strings.Join(Detect(events, DetectorConfig{}).CanonicalLines(), "\n")
	if a != b {
		t.Fatal("identical event streams produced different canonical reports")
	}
	if !strings.Contains(a, "detection.flag 15->0") {
		t.Fatalf("canonical report missing the flagged link:\n%s", a)
	}
}

func TestQuantileIntNearestRank(t *testing.T) {
	cases := []struct {
		vs   []int64
		q    float64
		want int64
	}{
		{nil, 0.75, 0},
		{[]int64{5}, 0.75, 5},
		{[]int64{1, 2, 3, 4}, 0.75, 3},
		{[]int64{4, 3, 2, 1}, 0.75, 3}, // order-independent
		{[]int64{1, 2, 3, 4}, 0.5, 2},
		{[]int64{1, 2, 3, 4}, 0.01, 1},
		{[]int64{1, 2, 3, 4}, 0.99, 4},
	}
	for _, c := range cases {
		if got := quantileInt(c.vs, c.q); got != c.want {
			t.Errorf("quantileInt(%v, %g) = %d, want %d", c.vs, c.q, got, c.want)
		}
	}
}

// sortEvents re-establishes the non-decreasing At order Detect requires.
func sortEvents(events []Event) {
	r := &Recorder{events: events}
	r.Events()
}
