package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestRecorderNilIsDisabled(t *testing.T) {
	var r *Recorder
	if r.Len() != 0 || r.Lost() != 0 || r.Events() != nil {
		t.Fatal("nil recorder must report empty")
	}
	counts := r.CountByKind()
	for _, c := range counts {
		if c != 0 {
			t.Fatal("nil recorder must count nothing")
		}
	}
}

func TestRecorderLimitCountsLost(t *testing.T) {
	r := NewRecorder(2)
	for i := 0; i < 5; i++ {
		r.Emit(Event{At: 1, Kind: KindInject, ID: uint64(i)})
	}
	if r.Len() != 2 || r.Lost() != 3 {
		t.Fatalf("len=%d lost=%d, want 2/3", r.Len(), r.Lost())
	}
}

// TestEventsSortedStable: events re-sort by cycle with emission order
// breaking ties, so out-of-order emission cannot perturb exports.
func TestEventsSortedStable(t *testing.T) {
	r := NewRecorder(0)
	r.Emit(Event{At: 30, ID: 3})
	r.Emit(Event{At: 10, ID: 1})
	r.Emit(Event{At: 10, ID: 2})
	ev := r.Events()
	if ev[0].ID != 1 || ev[1].ID != 2 || ev[2].ID != 3 {
		t.Fatalf("sort order wrong: %d %d %d", ev[0].ID, ev[1].ID, ev[2].ID)
	}
}

func sampleRecorder() *Recorder {
	r := NewRecorder(0)
	r.Emit(Event{At: 1, Kind: KindInject, ID: 1, Src: 0, Dst: 2, Class: ClassMeta, Lane: LaneNone})
	r.Emit(Event{At: 2, Kind: KindTxStart, ID: 1, Src: 0, Dst: 2, Class: ClassMeta, Lane: 0})
	r.Emit(Event{At: 4, Kind: KindCollision, ID: 1, Src: 0, Dst: 2, Class: ClassMeta, Lane: 0, Aux: 1})
	r.Emit(Event{At: 4, Kind: KindBackoff, ID: 1, Src: 0, Dst: 2, Attempt: 1, Class: ClassMeta, Lane: 0, Aux: 3})
	r.Emit(Event{At: 8, Kind: KindRetransmit, ID: 1, Src: 0, Dst: 2, Attempt: 1, Class: ClassMeta, Lane: 0})
	r.Emit(Event{At: 12, Kind: KindDeliver, ID: 1, Src: 0, Dst: 2, Attempt: 1, Class: ClassMeta, Lane: LaneNone, Aux: 11})
	r.Emit(Event{At: 3, Kind: KindInject, ID: 2, Src: 1, Dst: 3, Class: ClassData, Lane: LaneNone})
	r.Emit(Event{At: 20, Kind: KindDrop, ID: 2, Src: 1, Dst: 3, Attempt: 4, Class: ClassData, Lane: 1, Aux: 4})
	return r
}

// TestWriteJSONLStable: the hand-rolled encoder emits one fixed-order
// object per line, sorted by cycle, and two identical recordings yield
// byte-identical files.
func TestWriteJSONLStable(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteJSONL(&a, sampleRecorder()); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&b, sampleRecorder()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical recordings must serialize to identical bytes")
	}
	lines := strings.Split(strings.TrimRight(a.String(), "\n"), "\n")
	if len(lines) != 8 {
		t.Fatalf("lines = %d, want 8", len(lines))
	}
	want := `{"at":1,"ev":"inject","id":1,"src":0,"dst":2,"class":"meta","lane":"-","attempt":0,"aux":0}`
	if lines[0] != want {
		t.Fatalf("first line:\n got %s\nwant %s", lines[0], want)
	}
	if !strings.Contains(a.String(), `"ev":"drop"`) {
		t.Fatal("drop event missing from JSONL")
	}
	for i := 1; i < len(lines); i++ {
		if strings.Compare(lines[i-1][len(`{"at":`):], "") == 0 {
			t.Fatal("malformed line")
		}
	}
}

func TestWriteJSONLTruncationMarker(t *testing.T) {
	r := NewRecorder(1)
	r.Emit(Event{At: 1, Kind: KindInject, ID: 1})
	r.Emit(Event{At: 2, Kind: KindDeliver, ID: 1})
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `{"ev":"truncated","aux":1}`) {
		t.Fatalf("truncated recording must end with an explicit marker:\n%s", buf.String())
	}
}

// TestWriteChromeTrace pairs injections with terminal events into "X"
// spans and renders mid-life events as instants.
func TestWriteChromeTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, sampleRecorder()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, `{"traceEvents":[`) || !strings.HasSuffix(out, "]}\n") {
		t.Fatalf("not a trace-event envelope: %s", out)
	}
	if !strings.Contains(out, `"name":"meta 0->2","cat":"packet","ph":"X","ts":1,"dur":11`) {
		t.Fatalf("delivered span missing or mispaired:\n%s", out)
	}
	if !strings.Contains(out, `"status":"dropped"`) {
		t.Fatalf("dropped packet must produce a span with dropped status:\n%s", out)
	}
	if !strings.Contains(out, `"ph":"i"`) {
		t.Fatal("instant events missing")
	}
	var again bytes.Buffer
	if err := WriteChromeTrace(&again, sampleRecorder()); err != nil {
		t.Fatal(err)
	}
	if out != again.String() {
		t.Fatal("chrome trace must be byte-stable across identical recordings")
	}
}

func TestCountByKind(t *testing.T) {
	counts := sampleRecorder().CountByKind()
	if counts[KindInject] != 2 || counts[KindDeliver] != 1 || counts[KindDrop] != 1 {
		t.Fatalf("counts wrong: %v", counts)
	}
}

func TestRegistryPercentiles(t *testing.T) {
	g := NewRegistry()
	for i := 0; i < 99; i++ {
		g.Observe(ClassMeta, 0, 1, 10)
	}
	g.Observe(ClassMeta, 0, 1, 5000) // overflow: beyond the 2000-cycle table
	g.Observe(ClassData, 2, 3, 42)
	if g.Links() != 2 {
		t.Fatalf("links = %d, want 2", g.Links())
	}
	table := g.ClassTable()
	if !strings.Contains(table, "meta") || !strings.Contains(table, "data") {
		t.Fatalf("class table missing rows:\n%s", table)
	}
	// p50 of the meta stream: latency 10 falls in the [10,15) bucket, so
	// the reported bound is 15.
	if p, over := g.Class(ClassMeta).PercentileBound(0.5); p != 15 || over {
		t.Fatalf("meta p50 = (%d, %v), want (15, false)", p, over)
	}
	// p999 lands on the overflow observation and must render as ">2000".
	if !strings.Contains(table, ">2000") {
		t.Fatalf("overflow percentile must render with a > prefix:\n%s", table)
	}
	links := g.LinkTable(0)
	if !strings.Contains(links, "0->1") || !strings.Contains(links, "2->3") {
		t.Fatalf("link table missing links:\n%s", links)
	}
}

func TestRegistryLinkTableTruncationAnnounced(t *testing.T) {
	g := NewRegistry()
	for src := 0; src < 8; src++ {
		g.Observe(ClassMeta, src, src+1, int64(10*src+5))
	}
	out := g.LinkTable(3)
	if !strings.Contains(out, "(5 quieter links omitted)") {
		t.Fatalf("truncation must be announced:\n%s", out)
	}
}

func TestKindNamesStable(t *testing.T) {
	want := map[Kind]string{
		KindInject: "inject", KindTxStart: "tx-start", KindRetransmit: "retransmit",
		KindCollision: "collision", KindBackoff: "backoff", KindConfirmDrop: "confirm-drop",
		KindDeliver: "deliver", KindDrop: "drop", KindFault: "fault",
	}
	for k, name := range want {
		if k.String() != name {
			t.Fatalf("Kind(%d).String() = %q, want %q (on-wire name is frozen)", k, k.String(), name)
		}
	}
	if ClassName(ClassMeta) != "meta" || ClassName(ClassData) != "data" {
		t.Fatal("class names are frozen")
	}
	if LaneName(LaneNone) != "-" || LaneName(0) != "meta" || LaneName(1) != "data" {
		t.Fatal("lane names are frozen")
	}
}
