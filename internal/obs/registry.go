package obs

import (
	"fmt"
	"sort"
	"strings"

	"fsoi/internal/stats"
)

// Link identifies one directed src->dst packet stream.
type Link struct {
	Src, Dst int
}

// registry histogram shape: 5-cycle buckets out to 2000 cycles covers
// every latency the paper's configurations produce; beyond that the
// overflow bucket is reported explicitly (">2000"), never folded into
// the last bound.
const (
	registryWidth   = 5
	registryBuckets = 400
)

// Registry accumulates delivered-packet latencies into percentile tables
// per packet class and per src->dst link, extending the Figure 5
// distribution reporting with the tail statistics (p50/p90/p99/p999)
// a production observability layer reports.
type Registry struct {
	byClass [2]*stats.Histogram
	byLink  map[Link]*stats.Histogram

	// Contention tracking for the detection layer (core.LinkObserver):
	// collision-event counts and deepest backoff attempt per link.
	collByLink  map[Link]int64
	depthByLink map[Link]int64
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byClass: [2]*stats.Histogram{
			stats.NewHistogram(registryWidth, registryBuckets),
			stats.NewHistogram(registryWidth, registryBuckets),
		},
		byLink:      make(map[Link]*stats.Histogram),
		collByLink:  make(map[Link]int64),
		depthByLink: make(map[Link]int64),
	}
}

// NoteCollision counts one collision event on src->dst.
func (g *Registry) NoteCollision(src, dst int) {
	g.collByLink[Link{Src: src, Dst: dst}]++
}

// NoteBackoff tracks the deepest backoff attempt seen on src->dst.
func (g *Registry) NoteBackoff(src, dst, attempt int) {
	key := Link{Src: src, Dst: dst}
	if int64(attempt) > g.depthByLink[key] {
		g.depthByLink[key] = int64(attempt)
	}
}

// Observe folds one delivered packet into the tables.
func (g *Registry) Observe(class uint8, src, dst int, latency int64) {
	if class > ClassData {
		class = ClassMeta
	}
	g.byClass[class].Add(latency)
	key := Link{Src: src, Dst: dst}
	h := g.byLink[key]
	if h == nil {
		h = stats.NewHistogram(registryWidth, registryBuckets)
		g.byLink[key] = h
	}
	h.Add(latency)
}

// Merge folds other into g. Histogram merges are exact bucket
// addition, so the result is independent of merge order; per-node
// registries merged in node order therefore aggregate identically at
// every shard and worker count.
func (g *Registry) Merge(other *Registry) {
	for c := range g.byClass {
		g.byClass[c].Merge(other.byClass[c])
	}
	for k, h := range other.byLink { // additive per-key merge: iteration order is immaterial
		mine := g.byLink[k]
		if mine == nil {
			mine = stats.NewHistogram(registryWidth, registryBuckets)
			g.byLink[k] = mine
		}
		mine.Merge(h)
	}
	for k, v := range other.collByLink { // additive per-key merge
		g.collByLink[k] += v
	}
	for k, v := range other.depthByLink { // per-key max merge: order-independent
		if v > g.depthByLink[k] {
			g.depthByLink[k] = v
		}
	}
}

// quantiles are the reported percentile points.
var quantiles = []struct {
	name string
	frac float64
}{
	{"p50", 0.50},
	{"p90", 0.90},
	{"p99", 0.99},
	{"p999", 0.999},
}

// fmtQuantile renders one percentile bound, prefixing ">" when the mass
// lands in the overflow bucket so a saturated tail is never mistaken for
// the last real bound.
func fmtQuantile(h *stats.Histogram, frac float64) string {
	bound, over := h.PercentileBound(frac)
	if over {
		return fmt.Sprintf(">%d", bound)
	}
	return fmt.Sprintf("%d", bound)
}

// addRow appends one histogram's row to a percentile table.
func addRow(t *stats.Table, label string, h *stats.Histogram) {
	cells := []string{label, fmt.Sprintf("%d", h.Total()), fmt.Sprintf("%.1f", h.Mean())}
	for _, q := range quantiles {
		cells = append(cells, fmtQuantile(h, q.frac))
	}
	t.AddRow(cells...)
}

// ClassTable renders the per-packet-class percentile table.
func (g *Registry) ClassTable() string {
	t := stats.NewTable("class", "n", "mean", "p50", "p90", "p99", "p999")
	addRow(t, "meta", g.byClass[ClassMeta])
	addRow(t, "data", g.byClass[ClassData])
	return t.String()
}

// links returns the observed links in sorted (src, dst) order, so every
// rendering is independent of map iteration order.
func (g *Registry) links() []Link {
	keys := make([]Link, 0, len(g.byLink))
	for k := range g.byLink {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Src != keys[j].Src {
			return keys[i].Src < keys[j].Src
		}
		return keys[i].Dst < keys[j].Dst
	})
	return keys
}

// LinkTable renders the per-link percentile table, busiest links first
// (ties broken by src, dst), truncated to at most top rows (top <= 0
// means every link). The truncation is announced, never silent.
func (g *Registry) LinkTable(top int) string {
	keys := g.links()
	sort.SliceStable(keys, func(i, j int) bool {
		return g.byLink[keys[i]].Total() > g.byLink[keys[j]].Total()
	})
	truncated := 0
	if top > 0 && len(keys) > top {
		truncated = len(keys) - top
		keys = keys[:top]
	}
	t := stats.NewTable("link", "n", "mean", "p50", "p90", "p99", "p999")
	for _, k := range keys {
		addRow(t, fmt.Sprintf("%d->%d", k.Src, k.Dst), g.byLink[k])
	}
	var b strings.Builder
	b.WriteString(t.String())
	if truncated > 0 {
		fmt.Fprintf(&b, "(%d quieter links omitted)\n", truncated)
	}
	return b.String()
}

// contentionLinks returns every link with a collision or backoff record
// in sorted (src, dst) order.
func (g *Registry) contentionLinks() []Link {
	keys := make([]Link, 0, len(g.collByLink))
	for k := range g.collByLink {
		keys = append(keys, k)
	}
	for k := range g.depthByLink {
		if _, dup := g.collByLink[k]; !dup {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Src != keys[j].Src {
			return keys[i].Src < keys[j].Src
		}
		return keys[i].Dst < keys[j].Dst
	})
	return keys
}

// LinkCollisions reports the collision-event count recorded for one link.
func (g *Registry) LinkCollisions(k Link) int64 { return g.collByLink[k] }

// LinkDepth reports the deepest backoff attempt recorded for one link.
func (g *Registry) LinkDepth(k Link) int64 { return g.depthByLink[k] }

// ContentionTable renders the per-link contention table, most-collided
// links first (ties broken by src, dst), truncated to at most top rows
// (top <= 0 means every link). The truncation is announced, never
// silent.
func (g *Registry) ContentionTable(top int) string {
	keys := g.contentionLinks()
	sort.SliceStable(keys, func(i, j int) bool {
		return g.collByLink[keys[i]] > g.collByLink[keys[j]]
	})
	truncated := 0
	if top > 0 && len(keys) > top {
		truncated = len(keys) - top
		keys = keys[:top]
	}
	t := stats.NewTable("link", "collisions", "max-backoff")
	for _, k := range keys {
		t.AddRow(fmt.Sprintf("%d->%d", k.Src, k.Dst),
			fmt.Sprintf("%d", g.collByLink[k]), fmt.Sprintf("%d", g.depthByLink[k]))
	}
	var b strings.Builder
	b.WriteString(t.String())
	if truncated > 0 {
		fmt.Fprintf(&b, "(%d quieter links omitted)\n", truncated)
	}
	return b.String()
}

// String renders every table (the contention table only once something
// was recorded into it).
func (g *Registry) String() string {
	var b strings.Builder
	b.WriteString("latency percentiles by packet class (cycles)\n")
	b.WriteString(g.ClassTable())
	b.WriteString("\nlatency percentiles by link (cycles)\n")
	b.WriteString(g.LinkTable(16))
	if len(g.collByLink)+len(g.depthByLink) > 0 {
		b.WriteString("\nlink contention (collision events, deepest backoff)\n")
		b.WriteString(g.ContentionTable(16))
	}
	return b.String()
}

// Links reports how many distinct src->dst links were observed.
func (g *Registry) Links() int { return len(g.byLink) }

// Class exposes one class histogram (tests, fsoitrace).
func (g *Registry) Class(c uint8) *stats.Histogram {
	if c > ClassData {
		c = ClassMeta
	}
	return g.byClass[c]
}
