package obs

import "sort"

// Sharded is a per-node family of Recorders, the observability shape
// the windowed parallel engine requires: every emission happens into
// the emitting node's own recorder (deliveries and collisions at the
// destination, injections and backoffs at the source), so no recorder
// is ever touched from two shards. Merged restores the single-recorder
// view in a canonical order for export.
//
// Each per-node recorder gets the full event limit; the merged view is
// re-truncated to the limit, keeping the earliest events — the same
// "head of the run" semantics the single Recorder's limit has.
type Sharded struct {
	recs  []*Recorder
	limit int
}

// NewSharded builds per-node recorders, each bounded by limit (<= 0
// means unbounded, like NewRecorder).
func NewSharded(nodes, limit int) *Sharded {
	s := &Sharded{recs: make([]*Recorder, nodes), limit: limit}
	for i := range s.recs {
		s.recs[i] = NewRecorder(limit)
	}
	return s
}

// For returns the recorder owned by a node. A nil *Sharded returns the
// nil *Recorder, which is the disabled state — call sites keep the
// single nil-check idiom. Out-of-range nodes (setup-time annotations
// from components without a node identity) map to node 0's recorder.
func (s *Sharded) For(node int) *Recorder {
	if s == nil {
		return nil
	}
	if node < 0 || node >= len(s.recs) {
		node = 0
	}
	return s.recs[node]
}

// Merged collapses the per-node recorders into one: events
// concatenated in node order, stably sorted by cycle, truncated to the
// limit. Within a cycle the order is (node, that node's emission
// order) — both partition-invariant — so the merged stream is
// byte-identical at every shard and worker count. Lost events are
// summed, plus whatever the re-truncation discards.
func (s *Sharded) Merged() *Recorder {
	if s == nil {
		return nil
	}
	out := &Recorder{limit: s.limit}
	for _, r := range s.recs {
		out.events = append(out.events, r.Events()...)
		out.lost += r.lost
	}
	sort.SliceStable(out.events, func(i, j int) bool {
		return out.events[i].At < out.events[j].At
	})
	if s.limit > 0 && len(out.events) > s.limit {
		out.lost += int64(len(out.events) - s.limit)
		out.events = out.events[:s.limit]
	}
	out.sorted = true
	return out
}
