package workload

import (
	"testing"

	"fsoi/internal/cache"
	"fsoi/internal/cpu"
)

func TestSuiteHasSixteenApps(t *testing.T) {
	apps := Suite(1.0)
	if len(apps) != 16 {
		t.Fatalf("suite has %d apps, want 16", len(apps))
	}
	names := map[string]bool{}
	for _, a := range apps {
		if names[a.Name] {
			t.Fatalf("duplicate app %s", a.Name)
		}
		names[a.Name] = true
		if a.Steps <= 0 || a.ReadFrac <= 0 || a.ReadFrac > 1 || a.SharedFrac < 0 || a.SharedFrac > 1 {
			t.Fatalf("%s has invalid parameters: %+v", a.Name, a)
		}
	}
	for _, want := range []string{"barnes", "fft", "mp3d", "tsp", "em3d", "jacobi", "shallow", "ilink"} {
		if !names[want] {
			t.Fatalf("suite missing %s", want)
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("fft", 1); !ok {
		t.Fatal("fft should exist")
	}
	if _, ok := ByName("doom", 1); ok {
		t.Fatal("doom should not exist")
	}
}

func TestScaleShortensStreams(t *testing.T) {
	full, _ := ByName("lu", 1.0)
	short, _ := ByName("lu", 0.1)
	if short.Steps >= full.Steps {
		t.Fatal("scaling down must shorten the stream")
	}
	tiny, _ := ByName("lu", 0.000001)
	if tiny.Steps < 64 {
		t.Fatal("streams have a minimum length")
	}
}

// drain pulls every op from a stream.
func drain(s *Stream) []cpu.Op {
	var ops []cpu.Op
	for {
		op, ok := s.Next()
		if !ok {
			return ops
		}
		ops = append(ops, op)
	}
}

func TestStreamDeterminism(t *testing.T) {
	app, _ := ByName("barnes", 0.05)
	a := drain(NewStream(app, 3, 16, 42))
	b := drain(NewStream(app, 3, 16, 42))
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestStreamsDifferAcrossNodes(t *testing.T) {
	app, _ := ByName("barnes", 0.05)
	a := drain(NewStream(app, 0, 16, 42))
	b := drain(NewStream(app, 1, 16, 42))
	same := 0
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] == b[i] {
			same++
		}
	}
	if float64(same)/float64(n) > 0.9 {
		t.Fatal("per-node streams should not be near-identical")
	}
}

func TestBarrierCountsMatchAcrossThreads(t *testing.T) {
	app, _ := ByName("ocean", 0.2)
	count := func(node int) int {
		n := 0
		for _, op := range drain(NewStream(app, node, 16, 1)) {
			if op.Kind == cpu.OpBarrier {
				n++
			}
		}
		return n
	}
	c0 := count(0)
	if c0 == 0 {
		t.Fatal("ocean must emit barriers")
	}
	for node := 1; node < 16; node++ {
		if c := count(node); c != c0 {
			t.Fatalf("node %d emits %d barriers, node 0 emits %d — deadlock", node, c, c0)
		}
	}
	if c0 != app.Barriers() {
		t.Fatalf("emitted %d, Barriers() reports %d", c0, app.Barriers())
	}
}

func TestLockSectionsAreBalanced(t *testing.T) {
	app, _ := ByName("raytrace", 0.2)
	acq, rel := 0, 0
	depth := 0
	for _, op := range drain(NewStream(app, 2, 16, 1)) {
		switch op.Kind {
		case cpu.OpLockAcquire:
			acq++
			depth++
			if depth > 1 {
				t.Fatal("nested critical sections not expected")
			}
		case cpu.OpLockRelease:
			rel++
			depth--
			if depth < 0 {
				t.Fatal("release without acquire")
			}
		}
	}
	if acq == 0 || acq != rel {
		t.Fatalf("acquires=%d releases=%d", acq, rel)
	}
}

func TestAddressRegions(t *testing.T) {
	app, _ := ByName("fft", 0.1)
	s := NewStream(app, 5, 16, 1)
	sawPrivate, sawShared := false, false
	for _, op := range drain(s) {
		if op.Kind != cpu.OpLoad && op.Kind != cpu.OpStore {
			continue
		}
		switch {
		case op.Addr >= SharedBase:
			sawShared = true
		case op.Addr >= PrivateBase:
			sawPrivate = true
		default:
			t.Fatalf("address %#x below the private base", uint64(op.Addr))
		}
	}
	if !sawPrivate || !sawShared {
		t.Fatalf("private=%v shared=%v; both regions must be touched", sawPrivate, sawShared)
	}
}

func TestPrivateRegionsDisjoint(t *testing.T) {
	app, _ := ByName("tsp", 0.1)
	mine := map[cache.LineAddr]bool{}
	for _, op := range drain(NewStream(app, 3, 16, 1)) {
		if (op.Kind == cpu.OpLoad || op.Kind == cpu.OpStore) && op.Addr < SharedBase && op.Addr >= PrivateBase {
			mine[op.Addr] = true
		}
	}
	for _, op := range drain(NewStream(app, 4, 16, 1)) {
		if (op.Kind == cpu.OpLoad || op.Kind == cpu.OpStore) && op.Addr < SharedBase && op.Addr >= PrivateBase {
			if mine[op.Addr] {
				t.Fatalf("address %#x appears in two private regions", uint64(op.Addr))
			}
		}
	}
}

// TestStreamsDistinctAtLargeN is the regression test for the node%64
// stream-derivation bug: at 256 nodes, nodes 64 apart drew from the
// same RNG stream and emitted byte-identical operation sequences. No
// two of the 256 threads may share their first-K op prefix.
func TestStreamsDistinctAtLargeN(t *testing.T) {
	const nodes, k = 256, 64
	app, _ := ByName("fft", 0.05)
	seen := map[string]int{}
	for node := 0; node < nodes; node++ {
		s := NewStream(app, node, nodes, 7)
		var sig []byte
		for i := 0; i < k; i++ {
			op, ok := s.Next()
			if !ok {
				break
			}
			sig = append(sig, []byte(opKey(op))...)
		}
		if prev, dup := seen[string(sig)]; dup {
			t.Fatalf("nodes %d and %d emit identical first-%d op sequences", prev, node, k)
		}
		seen[string(sig)] = node
	}
}

func opKey(op cpu.Op) string {
	return string(rune(op.Kind)) + "/" + string(rune(op.ID)) + "/" +
		string(rune(op.Cycles)) + "/" + addrKey(op.Addr)
}

func addrKey(a cache.LineAddr) string {
	return string([]byte{byte(a), byte(a >> 8), byte(a >> 16), byte(a >> 24)})
}

// TestPrivateRegionsBelowSharedBase is the regression test for the
// node<<14 packing bug: at 1024 nodes the top nodes' private regions
// crossed SharedBase. Every private address must stay strictly below
// SharedBase at every supported node count.
func TestPrivateRegionsBelowSharedBase(t *testing.T) {
	app, _ := ByName("ocean", 0.01) // PrivateLines 512, the suite maximum
	for _, nodes := range []int{64, 256, 1024} {
		for _, node := range []int{0, nodes / 2, nodes - 1} {
			s := NewStream(app, node, nodes, 1)
			for j := 0; j < app.PrivateLines; j++ {
				if a := s.privateAddr(j); a >= SharedBase || a < PrivateBase {
					t.Fatalf("nodes=%d node=%d line=%d: private address %#x outside [%#x,%#x)",
						nodes, node, j, uint64(a), uint64(PrivateBase), uint64(SharedBase))
				}
			}
		}
	}
}

func TestMigratoryPatternPairsLoadStore(t *testing.T) {
	app, _ := ByName("mp3d", 0.1)
	ops := drain(NewStream(app, 1, 16, 1))
	pairs := 0
	for i := 0; i+1 < len(ops); i++ {
		if ops[i].Kind == cpu.OpLoad && ops[i+1].Kind == cpu.OpStore && ops[i].Addr == ops[i+1].Addr &&
			ops[i].Addr >= SharedBase {
			pairs++
		}
	}
	if pairs < app.Steps/10 {
		t.Fatalf("migratory read-modify-write pairs too rare: %d", pairs)
	}
}

func TestReadFractionRoughlyHonored(t *testing.T) {
	app, _ := ByName("raytrace", 0.2) // ReadFrac 0.82
	loads, stores := 0, 0
	for _, op := range drain(NewStream(app, 0, 16, 1)) {
		switch op.Kind {
		case cpu.OpLoad:
			loads++
		case cpu.OpStore:
			stores++
		}
	}
	frac := float64(loads) / float64(loads+stores)
	if frac < 0.70 || frac > 0.92 {
		t.Fatalf("load fraction %.2f, parameter 0.82", frac)
	}
}

func TestComputeOpsPresent(t *testing.T) {
	app, _ := ByName("water-sp", 0.1)
	saw := 0
	for _, op := range drain(NewStream(app, 0, 16, 1)) {
		if op.Kind == cpu.OpCompute {
			saw++
			if op.Cycles <= 0 {
				t.Fatal("compute ops need positive duration")
			}
		}
	}
	if saw == 0 {
		t.Fatal("no compute ops emitted")
	}
}
