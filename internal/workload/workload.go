// Package workload generates the per-thread operation streams standing in
// for the paper's application suite (SPLASH2 plus em3d, ilink, jacobi,
// mp3d, shallow, tsp). Each application is a parameter point controlling
// compute density, working-set size, sharing pattern, read/write mix, and
// synchronization intensity, calibrated to the published characterization
// of the original programs; the substitution is recorded in DESIGN.md.
package workload

import (
	"fmt"
	"strconv"

	"fsoi/internal/cache"
	"fsoi/internal/cpu"
	"fsoi/internal/sim"
)

// Address-space layout (line-granular). Private lines interleave so each
// node's private data is homed at that node; shared lines stripe across
// all homes.
const (
	PrivateBase cache.LineAddr = 1 << 20
	SharedBase  cache.LineAddr = 1 << 24
	// privateStrideBits sizes each thread's private region: 1024 lines,
	// comfortably above the suite's largest PrivateLines (512). The full
	// span PrivateBase + nodes<<privateStrideBits stays below SharedBase
	// for every supported node count (up to 15360 nodes); NewStream
	// asserts both bounds so a layout regression fails loudly instead of
	// silently turning private misses into phantom coherence traffic.
	privateStrideBits = 10
)

// Pattern selects the sharing behaviour of an application.
type Pattern int

// Sharing patterns.
const (
	// PatternUniform spreads shared accesses over the whole shared
	// region.
	PatternUniform Pattern = iota
	// PatternMigratory does read-modify-write on shared lines that move
	// from node to node (mp3d-style).
	PatternMigratory
	// PatternProducerConsumer reads mostly the neighbour's partition and
	// writes its own (em3d-style).
	PatternProducerConsumer
	// PatternNeighbor touches its own and adjacent partitions
	// (jacobi/ocean/shallow-style grids).
	PatternNeighbor
	// PatternAllToAll rotates the target partition phase by phase
	// (fft/radix transposes).
	PatternAllToAll
	// PatternReadShared reads a widely shared structure and rarely
	// writes it (raytrace/ilink-style).
	PatternReadShared
)

// App parameterizes one application.
type App struct {
	Name         string
	Pattern      Pattern
	Steps        int     // memory operations per thread
	ComputeMean  int     // mean compute cycles between memory operations
	ReadFrac     float64 // fraction of accesses that are loads
	SharedFrac   float64 // fraction of accesses to the shared region
	PrivateLines int     // private working set per thread, lines
	SharedLines  int     // shared region size, lines (global)
	Locks        int     // distinct locks (0 disables locking)
	LockEvery    int     // steps per critical section
	BarrierEvery int     // steps per global barrier (0 disables)
	Zipf         float64 // skew of shared accesses (0 = uniform)
	// HotFrac of private accesses hit a small L1-resident hot set; the
	// remainder walk the full private working set. This reproduces the
	// paper's L1 scaling that targets realistic (≈5%) miss rates.
	HotFrac  float64
	HotLines int
}

// Suite returns the sixteen evaluation applications. Steps scale with
// the `scale` factor so tests and benchmarks can run shortened versions
// (scale 1.0 is the full experiment length).
func Suite(scale float64) []App {
	s := func(n int) int {
		v := int(float64(n) * scale)
		if v < 64 {
			v = 64
		}
		return v
	}
	return []App{
		{Name: "barnes", Pattern: PatternUniform, Steps: s(20000), ComputeMean: 4, ReadFrac: 0.72, SharedFrac: 0.38, PrivateLines: 448, SharedLines: 3072, Locks: 64, LockEvery: 160, BarrierEvery: 5000, Zipf: 0.6},
		{Name: "cholesky", Pattern: PatternUniform, Steps: s(18000), ComputeMean: 5, ReadFrac: 0.70, SharedFrac: 0.32, PrivateLines: 512, SharedLines: 3072, Locks: 32, LockEvery: 220, BarrierEvery: 0, Zipf: 0.5},
		{Name: "fmm", Pattern: PatternNeighbor, Steps: s(20000), ComputeMean: 6, ReadFrac: 0.74, SharedFrac: 0.30, PrivateLines: 448, SharedLines: 3072, Locks: 32, LockEvery: 300, BarrierEvery: 6000},
		{Name: "fft", Pattern: PatternAllToAll, Steps: s(16000), ComputeMean: 3, ReadFrac: 0.64, SharedFrac: 0.50, PrivateLines: 384, SharedLines: 4096, BarrierEvery: 2500},
		{Name: "lu", Pattern: PatternUniform, Steps: s(18000), ComputeMean: 4, ReadFrac: 0.68, SharedFrac: 0.35, PrivateLines: 448, SharedLines: 3072, BarrierEvery: 1800, Zipf: 0.4},
		{Name: "ocean", Pattern: PatternNeighbor, Steps: s(20000), ComputeMean: 3, ReadFrac: 0.66, SharedFrac: 0.45, PrivateLines: 512, SharedLines: 4096, BarrierEvery: 1600},
		{Name: "radiosity", Pattern: PatternUniform, Steps: s(18000), ComputeMean: 4, ReadFrac: 0.71, SharedFrac: 0.35, PrivateLines: 448, SharedLines: 3072, Locks: 128, LockEvery: 120, BarrierEvery: 0, Zipf: 0.7},
		{Name: "radix", Pattern: PatternAllToAll, Steps: s(16000), ComputeMean: 2, ReadFrac: 0.55, SharedFrac: 0.55, PrivateLines: 384, SharedLines: 4096, BarrierEvery: 2200},
		{Name: "raytrace", Pattern: PatternReadShared, Steps: s(20000), ComputeMean: 5, ReadFrac: 0.82, SharedFrac: 0.42, PrivateLines: 448, SharedLines: 4096, Locks: 64, LockEvery: 140, Zipf: 0.8},
		{Name: "water-sp", Pattern: PatternNeighbor, Steps: s(18000), ComputeMean: 6, ReadFrac: 0.73, SharedFrac: 0.28, PrivateLines: 512, SharedLines: 2048, Locks: 32, LockEvery: 260, BarrierEvery: 4500},
		{Name: "em3d", Pattern: PatternProducerConsumer, Steps: s(18000), ComputeMean: 3, ReadFrac: 0.70, SharedFrac: 0.55, PrivateLines: 384, SharedLines: 4096, BarrierEvery: 3000},
		{Name: "ilink", Pattern: PatternReadShared, Steps: s(18000), ComputeMean: 4, ReadFrac: 0.80, SharedFrac: 0.40, PrivateLines: 448, SharedLines: 4096, Locks: 16, LockEvery: 200, Zipf: 0.7},
		{Name: "jacobi", Pattern: PatternNeighbor, Steps: s(20000), ComputeMean: 3, ReadFrac: 0.67, SharedFrac: 0.42, PrivateLines: 512, SharedLines: 4096, BarrierEvery: 2000},
		{Name: "mp3d", Pattern: PatternMigratory, Steps: s(16000), ComputeMean: 2, ReadFrac: 0.55, SharedFrac: 0.58, PrivateLines: 384, SharedLines: 3072, BarrierEvery: 4000},
		{Name: "shallow", Pattern: PatternNeighbor, Steps: s(18000), ComputeMean: 4, ReadFrac: 0.68, SharedFrac: 0.40, PrivateLines: 512, SharedLines: 3072, BarrierEvery: 2400},
		{Name: "tsp", Pattern: PatternUniform, Steps: s(18000), ComputeMean: 6, ReadFrac: 0.75, SharedFrac: 0.25, PrivateLines: 448, SharedLines: 2048, Locks: 8, LockEvery: 180, Zipf: 0.9},
	}
}

// ByName finds an application in the suite.
func ByName(name string, scale float64) (App, bool) {
	for _, a := range Suite(scale) {
		if a.Name == name {
			return a, true
		}
	}
	return App{}, false
}

// Stream generates one thread's operations deterministically.
type Stream struct {
	app     App
	node    int
	nodes   int
	rng     *sim.RNG
	zipf    *sim.Zipf
	step    int
	barrier int
	queue   []cpu.Op // pending ops emitted ahead (critical sections)
}

// NewStream builds the operation stream for thread `node` of `nodes`.
// The per-node RNG stream is derived from the full decimal node index:
// deriving it from a folded byte (the pre-PR-10 `node%64` rune) made
// nodes 64 apart draw byte-identical operation streams at 256/1024
// nodes. The fix changes RNG stream genealogy, so every simulated
// metric shifts relative to pre-fix runs; determinism is still checked
// run-against-run (see system.TestCrossRunDeterminismByteIdentical).
func NewStream(app App, node, nodes int, seed uint64) *Stream {
	assertLayout(app, node, nodes)
	rng := sim.NewRNG(seed).NewStream(app.Name).NewStream(strconv.Itoa(node))
	s := &Stream{app: app, node: node, nodes: nodes, rng: rng}
	if app.Zipf > 0 {
		s.zipf = sim.NewZipf(rng.NewStream("zipf"), app.SharedLines, app.Zipf)
	}
	return s
}

// assertLayout panics when the address-space layout cannot hold this
// configuration: the per-thread private regions must fit their stride
// and the last node's region must stay strictly below SharedBase.
func assertLayout(app App, node, nodes int) {
	if app.PrivateLines > 1<<privateStrideBits {
		panic(fmt.Sprintf("workload: %s PrivateLines %d exceeds the %d-line private stride",
			app.Name, app.PrivateLines, 1<<privateStrideBits))
	}
	if top := PrivateBase + cache.LineAddr(nodes)<<privateStrideBits; top > SharedBase {
		panic(fmt.Sprintf("workload: %d nodes overflow the private region (top %#x > SharedBase %#x)",
			nodes, uint64(top), uint64(SharedBase)))
	}
	if node < 0 || node >= nodes {
		panic(fmt.Sprintf("workload: node %d out of range [0,%d)", node, nodes))
	}
}

// privateAddr maps private line j of this node into a contiguous
// per-thread region. The distributed L2 is address-interleaved, so even
// private data is homed across the whole chip — every L1 miss crosses
// the interconnect, as in the paper's system.
func (s *Stream) privateAddr(j int) cache.LineAddr {
	return PrivateBase + cache.LineAddr(s.node)<<privateStrideBits + cache.LineAddr(j)
}

// sharedAddr picks a shared line per the application's pattern.
func (s *Stream) sharedAddr() cache.LineAddr {
	n := s.app.SharedLines
	part := n / s.nodes
	if part == 0 {
		part = 1
	}
	// Shared accesses reuse a small drifting window of the partition
	// (temporal locality captured by the L1), with a tail of scattered
	// accesses. Sharing arises where windows of different threads
	// overlap the same partition.
	const window = 48
	const driftEvery = 384
	pick := func(partition int) cache.LineAddr {
		off := s.rng.Intn(part)
		if s.rng.Bool(0.85) && part > window {
			base := (s.step / driftEvery * window) % (part - window)
			off = base + s.rng.Intn(window)
		}
		return SharedBase + cache.LineAddr((partition%s.nodes)*part+off)
	}
	switch s.app.Pattern {
	case PatternProducerConsumer:
		if s.rng.Bool(0.7) {
			return pick(s.node + 1)
		}
		return pick(s.node)
	case PatternNeighbor:
		switch s.rng.Intn(4) {
		case 0:
			return pick(s.node + 1)
		case 1:
			return pick(s.node + s.nodes - 1)
		default:
			return pick(s.node)
		}
	case PatternAllToAll:
		phase := s.step / 512
		return pick(s.node + phase)
	default:
		if s.zipf != nil {
			return SharedBase + cache.LineAddr(s.zipf.Next())
		}
		return SharedBase + cache.LineAddr(s.rng.Intn(n))
	}
}

// Next implements cpu.Stream.
func (s *Stream) Next() (cpu.Op, bool) {
	if len(s.queue) > 0 {
		op := s.queue[0]
		s.queue = s.queue[1:]
		return op, true
	}
	if s.step >= s.app.Steps {
		return cpu.Op{}, false
	}
	s.step++
	// Barriers fire at identical step counts on every thread.
	if s.app.BarrierEvery > 0 && s.step%s.app.BarrierEvery == 0 {
		s.barrier++
		s.push(cpu.Op{Kind: cpu.OpBarrier, ID: 0})
	}
	// Critical sections: acquire, a few accesses to lock-protected
	// shared data, release.
	if s.app.Locks > 0 && s.app.LockEvery > 0 && s.step%s.app.LockEvery == 0 {
		id := s.rng.Intn(s.app.Locks)
		s.push(cpu.Op{Kind: cpu.OpLockAcquire, ID: id})
		prot := SharedBase + cache.LineAddr(s.app.SharedLines+id)
		s.push(cpu.Op{Kind: cpu.OpLoad, Addr: prot})
		s.push(cpu.Op{Kind: cpu.OpStore, Addr: prot})
		s.push(cpu.Op{Kind: cpu.OpLockRelease, ID: id})
	}
	// The regular compute + access pair.
	if s.app.ComputeMean > 0 {
		s.push(cpu.Op{Kind: cpu.OpCompute, Cycles: 1 + int(s.rng.Exp(float64(s.app.ComputeMean)))})
	}
	shared := s.rng.Bool(s.app.SharedFrac)
	var addr cache.LineAddr
	if shared {
		addr = s.sharedAddr()
	} else {
		hot := s.app.HotLines
		if hot <= 0 {
			hot = 72
		}
		hf := s.app.HotFrac
		if hf <= 0 {
			hf = 0.78
		}
		if s.rng.Bool(hf) && hot < s.app.PrivateLines {
			addr = s.privateAddr(s.rng.Intn(hot))
		} else {
			addr = s.privateAddr(s.rng.Intn(s.app.PrivateLines))
		}
	}
	if s.app.Pattern == PatternMigratory && shared {
		// Read-modify-write migration.
		s.push(cpu.Op{Kind: cpu.OpLoad, Addr: addr})
		s.push(cpu.Op{Kind: cpu.OpStore, Addr: addr})
	} else if s.rng.Bool(s.app.ReadFrac) {
		s.push(cpu.Op{Kind: cpu.OpLoad, Addr: addr})
	} else {
		s.push(cpu.Op{Kind: cpu.OpStore, Addr: addr})
	}
	op := s.queue[0]
	s.queue = s.queue[1:]
	return op, true
}

func (s *Stream) push(op cpu.Op) { s.queue = append(s.queue, op) }

// Barriers reports how many barriers this stream will emit in total; the
// system uses it to size barrier targets.
func (a App) Barriers() int {
	if a.BarrierEvery <= 0 {
		return 0
	}
	return a.Steps / a.BarrierEvery
}
