// Hostile operation streams: the workload-level half of the adversary
// model (internal/adversary holds the optical-layer half). Each
// adversary node runs one of these instead of its application thread.
// The streams are deterministic cpu.Streams — a pure function of the
// spec, the seed, and the node's own simulated clock — and emit no
// barriers or locks, so the honest threads synchronize among themselves
// while the attacker free-runs.
package workload

import (
	"strconv"

	"fsoi/internal/adversary"
	"fsoi/internal/cache"
	"fsoi/internal/cpu"
	"fsoi/internal/sim"
)

// AttackBase is the line region hostile streams walk. It sits well above
// the largest shared working set (SharedBase + SharedLines + locks) and
// is a multiple of every supported node count, so AttackBase + k*nodes +
// v is always homed at victim v: every attack access is an L1/L2 miss
// that lands a request on the victim's receiver.
const AttackBase cache.LineAddr = SharedBase + (1 << 20)

// attackWindowLines bounds the distinct lines walked per victim. The
// window is sized to hurt: small enough that every line stays resident
// in the victim's L2 home slice (1024 lines), so the storm is never
// throttled by memory bandwidth, yet — because the walk strides by the
// node count — spread over so few L1 sets that every wrapped access
// still misses the attacker's own cache and lands a fresh request (and
// usually an eviction writeback) on the victim.
const attackWindowLines = 1 << 8

// AdversaryStream generates one attacker's hostile operations.
type AdversaryStream struct {
	spec      adversary.Spec
	nodes     int
	rng       *sim.RNG
	clock     func() sim.Cycle
	ops       int     // remaining hostile-op budget
	seq       int     // walking line index
	vi        int     // victim rotation cursor
	rate      float64 // probability a step is an attack access
	storeFrac float64 // store share of attack accesses
}

// NewAdversaryStream builds the hostile stream for spec.Node. The op
// budget defaults to the honest application's Steps so attacker threads
// retire alongside the honest ones; clock is the node's own scheduler
// view, giving the stream the spec's start/stop cycle gating.
func NewAdversaryStream(spec adversary.Spec, honest App, nodes int, seed uint64, clock func() sim.Cycle) *AdversaryStream {
	ops := spec.Ops
	if ops == 0 {
		ops = honest.Steps
	}
	s := &AdversaryStream{
		spec:  spec,
		nodes: nodes,
		rng:   sim.NewRNG(seed).NewStream("adversary").NewStream(strconv.Itoa(spec.Node)),
		clock: clock,
		ops:   ops,
	}
	switch spec.Role {
	case adversary.RoleJammer:
		// The storm itself: mostly stores (non-blocking behind the store
		// buffer, and each ReqEx invalidates) at full intensity.
		s.rate, s.storeFrac = spec.Intensity, 0.8
	case adversary.RoleSpoofer:
		// Enough traffic to keep forged headers arriving; the damage is
		// done by the Model corrupting them on arrival.
		s.rate, s.storeFrac = spec.Intensity, 0.5
	case adversary.RoleStarver:
		// Light cover traffic; the attack is the Model suppressing
		// confirmations at the victims.
		s.rate, s.storeFrac = 0.25*spec.Intensity, 0.5
	}
	return s
}

// Next implements cpu.Stream.
func (s *AdversaryStream) Next() (cpu.Op, bool) {
	if s.ops <= 0 {
		return cpu.Op{}, false
	}
	now := s.clock()
	if now < s.spec.Start {
		// Sleep until the attack window opens (does not burn budget).
		return cpu.Op{Kind: cpu.OpCompute, Cycles: int(s.spec.Start - now)}, true
	}
	if s.spec.Stop > 0 && now >= s.spec.Stop {
		return cpu.Op{}, false
	}
	s.ops--
	if !s.rng.Bool(s.rate) {
		return cpu.Op{Kind: cpu.OpCompute, Cycles: 1}, true
	}
	v := s.spec.Victims[s.vi%len(s.spec.Victims)]
	s.vi++
	addr := AttackBase +
		cache.LineAddr(s.seq%attackWindowLines)*cache.LineAddr(s.nodes) +
		cache.LineAddr(v)
	s.seq++
	if s.rng.Bool(s.storeFrac) {
		return cpu.Op{Kind: cpu.OpStore, Addr: addr}, true
	}
	return cpu.Op{Kind: cpu.OpLoad, Addr: addr}, true
}
