// Package power models the energy accounting behind Figure 8: Wattch-
// style core and cache event energies, Orion-style mesh router energies,
// the optical signaling-chain energies of Table 1, and a temperature-
// scaled leakage term. The absolute constants target 45 nm at 3.3 GHz;
// Figure 8 depends on the ratios, which these constants preserve.
//
// All energies and powers carry the optics unit types (Joules, Watts,
// Seconds), so the fsoilint units pass rejects W+J and cycles/Hz
// mistakes at type-check time. Every arithmetic rewrite below is a
// single operand commutation of the original expression (never a
// re-association), keeping Figure 8 byte-identical.
package power

import (
	"fsoi/internal/optics"
	"fsoi/internal/sim"
)

// Params collects the per-event energies and static powers of the
// modeled system.
type Params struct {
	// Cores and caches (Wattch-style).
	CoreEnergyPerOp   optics.Joules // dynamic energy per committed operation
	CoreIdlePower     optics.Watts  // clock + unmanaged switching per core
	L1AccessEnergy    optics.Joules
	L2AccessEnergy    optics.Joules
	LeakagePerNode    optics.Watts // temperature-adjusted static power per node
	LeakageTempCoeff  float64      // fractional leakage growth per kelvin
	NominalTempKelvin float64
	HotTempKelvin     float64 // operating hotspot estimate

	// Electrical mesh network (Orion-style).
	RouterEnergyPerFlitHop optics.Joules // buffers + arbitration + crossbar
	LinkEnergyPerFlitHop   optics.Joules
	RouterStaticPower      optics.Watts // per router: clocking + leakage

	// Optical network (Table 1 signaling chain).
	OpticalTxEnergyPerBit optics.Joules
	OpticalRxEnergyPerBit optics.Joules
	OpticalRxStatic       optics.Watts // per always-on receiver
	OpticalTxStandby      optics.Watts // per lane in standby

	CoreGHz float64
}

// PaperPower returns the 45 nm calibration.
func PaperPower() Params {
	return Params{
		CoreEnergyPerOp:   1.8e-9,
		CoreIdlePower:     3.6,
		L1AccessEnergy:    0.05e-9,
		L2AccessEnergy:    0.35e-9,
		LeakagePerNode:    2.4,
		LeakageTempCoeff:  0.012,
		NominalTempKelvin: 330,
		HotTempKelvin:     355,

		// An aggressive 3.3 GHz 4-stage router (the Alpha 21364 router
		// occupied 20% of the core+L1 area; its share of clocking and
		// leakage is correspondingly large).
		RouterEnergyPerFlitHop: 30e-12,
		LinkEnergyPerFlitHop:   10e-12,
		RouterStaticPower:      0.9,

		OpticalTxEnergyPerBit: 0.182e-12,
		OpticalRxEnergyPerBit: 0.105e-12,
		OpticalRxStatic:       4.2e-3,
		OpticalTxStandby:      0.43e-3,

		CoreGHz: 3.3,
	}
}

// seconds converts cycles to wall time.
func (p Params) seconds(c sim.Cycle) optics.Seconds {
	return optics.CycleSeconds(c, p.CoreGHz*1e9)
}

// Breakdown is the Figure 8 energy decomposition.
type Breakdown struct {
	Network   optics.Joules // interconnect dynamic + static
	CoreCache optics.Joules // core + cache dynamic + core idle
	Leakage   optics.Joules
}

// Total sums the components.
func (b Breakdown) Total() optics.Joules { return b.Network + b.CoreCache + b.Leakage }

// Activity is the platform-independent activity record a run produces.
type Activity struct {
	Cycles     sim.Cycle
	Nodes      int
	Ops        int64 // committed core operations
	L1Accesses int64
	L2Accesses int64

	// Mesh-only.
	FlitHops int64 // flits x hops traversed (including ejection hop)
	Routers  int

	// FSOI-only.
	OpticalBitsTx    int64 // line bits transmitted including retries
	OpticalBitsRx    int64
	ConfirmBits      int64
	OpticalLanes     int // transmit lanes per node (meta + data + confirm)
	OpticalRxPerNode int
	// TxBusyFraction approximates the duty cycle of the transmit lanes
	// (laser driver active vs standby).
	TxBusyFraction float64
}

// leakage returns the temperature-scaled static energy.
func (p Params) leakage(a Activity) optics.Joules {
	scale := 1 + p.LeakageTempCoeff*(p.HotTempKelvin-p.NominalTempKelvin)
	return p.LeakagePerNode.Scale(float64(a.Nodes)).Scale(scale).Times(p.seconds(a.Cycles))
}

// coreCache returns the core + cache dynamic energy plus idle power.
func (p Params) coreCache(a Activity) optics.Joules {
	dynamic := p.CoreEnergyPerOp.Scale(float64(a.Ops)) +
		p.L1AccessEnergy.Scale(float64(a.L1Accesses)) +
		p.L2AccessEnergy.Scale(float64(a.L2Accesses))
	idle := p.CoreIdlePower.Scale(float64(a.Nodes)).Times(p.seconds(a.Cycles))
	return dynamic + idle
}

// MeshEnergy evaluates a run on the electrical mesh.
func (p Params) MeshEnergy(a Activity) Breakdown {
	dyn := (p.RouterEnergyPerFlitHop + p.LinkEnergyPerFlitHop).Scale(float64(a.FlitHops))
	static := p.RouterStaticPower.Scale(float64(a.Routers)).Times(p.seconds(a.Cycles))
	return Breakdown{
		Network:   dyn + static,
		CoreCache: p.coreCache(a),
		Leakage:   p.leakage(a),
	}
}

// FSOIEnergy evaluates a run on the optical interconnect.
func (p Params) FSOIEnergy(a Activity) Breakdown {
	bits := float64(a.OpticalBitsTx + a.ConfirmBits)
	dyn := p.OpticalTxEnergyPerBit.Scale(bits) +
		p.OpticalRxEnergyPerBit.Scale(float64(a.OpticalBitsRx+a.ConfirmBits))
	perNode := p.OpticalRxStatic.Scale(float64(a.OpticalRxPerNode)) +
		p.OpticalTxStandby.Scale(float64(a.OpticalLanes)).Scale(1-a.TxBusyFraction)
	static := perNode.Scale(float64(a.Nodes)).Times(p.seconds(a.Cycles))
	return Breakdown{
		Network:   dyn + static,
		CoreCache: p.coreCache(a),
		Leakage:   p.leakage(a),
	}
}

// AveragePower converts a breakdown back to watts over the run.
func (p Params) AveragePower(b Breakdown, cycles sim.Cycle) optics.Watts {
	s := p.seconds(cycles)
	if s == 0 { //lint:allow floateq exact zero only when cycles is zero; guards the division
		return 0
	}
	return b.Total().Over(s)
}
