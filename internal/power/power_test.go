package power

import (
	"testing"

	"fsoi/internal/sim"
)

// activity returns a representative 16-node run.
func activity() Activity {
	return Activity{
		Cycles:     1_000_000,
		Nodes:      16,
		Ops:        1_000_000,
		L1Accesses: 900_000,
		L2Accesses: 90_000,
	}
}

func TestMeshEnergyComponents(t *testing.T) {
	p := PaperPower()
	a := activity()
	a.FlitHops = 2_000_000
	a.Routers = 16
	b := p.MeshEnergy(a)
	if b.Network <= 0 || b.CoreCache <= 0 || b.Leakage <= 0 {
		t.Fatalf("all components must be positive: %+v", b)
	}
	if b.Total() != b.Network+b.CoreCache+b.Leakage {
		t.Fatal("total must sum components")
	}
}

func TestFSOIBeatsMeshOnNetworkEnergy(t *testing.T) {
	p := PaperPower()
	a := activity()
	a.FlitHops = 2_000_000
	a.Routers = 16
	mesh := p.MeshEnergy(a)

	f := activity()
	f.OpticalBitsTx = 500_000 * 72
	f.OpticalBitsRx = f.OpticalBitsTx
	f.ConfirmBits = 500_000
	f.OpticalLanes = 3
	f.OpticalRxPerNode = 5
	f.TxBusyFraction = 0.05
	fsoi := p.FSOIEnergy(f)

	ratio := mesh.Network / fsoi.Network
	if ratio < 5 {
		t.Fatalf("mesh/FSOI network energy ratio %.1f; the paper reports ~20x", ratio)
	}
}

func TestLeakageScalesWithTime(t *testing.T) {
	p := PaperPower()
	a := activity()
	a.Routers = 16
	long := a
	long.Cycles *= 2
	if p.MeshEnergy(long).Leakage <= p.MeshEnergy(a).Leakage {
		t.Fatal("leakage must grow with runtime")
	}
}

func TestLeakageTemperatureCoefficient(t *testing.T) {
	hot := PaperPower()
	cool := PaperPower()
	cool.HotTempKelvin = cool.NominalTempKelvin
	a := activity()
	a.Routers = 16
	if hot.MeshEnergy(a).Leakage <= cool.MeshEnergy(a).Leakage {
		t.Fatal("hotter silicon must leak more")
	}
}

func TestAveragePower(t *testing.T) {
	p := PaperPower()
	b := Breakdown{Network: 1, CoreCache: 2, Leakage: 1} // 4 J
	cycles := sim.Cycle(3.3e9)                           // one second
	if w := p.AveragePower(b, cycles); w < 3.99 || w > 4.01 {
		t.Fatalf("power = %g W, want 4", w)
	}
	if p.AveragePower(b, 0) != 0 {
		t.Fatal("zero-cycle power must be 0")
	}
}

func TestStandbySavesTransmitPower(t *testing.T) {
	p := PaperPower()
	busy := activity()
	busy.OpticalLanes = 3
	busy.OpticalRxPerNode = 5
	busy.TxBusyFraction = 1.0
	idle := busy
	idle.TxBusyFraction = 0.0
	// With zero traffic bits, the idle system still pays standby power;
	// a fully busy one pays none of it (it pays per-bit instead).
	if p.FSOIEnergy(idle).Network <= p.FSOIEnergy(busy).Network {
		t.Fatal("standby accounting inverted")
	}
}
