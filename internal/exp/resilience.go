package exp

import (
	"fmt"
	"strings"

	"fsoi/internal/adversary"
	"fsoi/internal/obs"
	"fsoi/internal/stats"
	"fsoi/internal/system"
)

func init() {
	Registry = append(Registry,
		struct {
			ID     string
			Runner Runner
		}{"resilience", Resilience},
	)
}

// defaultIntensities spans the hostile duty-cycle range: at 0.3 an
// attacker still looks like a busy honest node, at 0.9 it saturates its
// victim's receiver nearly every slot.
var defaultIntensities = []float64{0.3, 0.6, 0.9}

// resilienceRoles are swept in declaration order.
var resilienceRoles = []adversary.Role{adversary.RoleJammer, adversary.RoleSpoofer, adversary.RoleStarver}

// attackers places two hostile nodes at the top of the id range:
// nodes-1 and nodes-2 have different parities, so between them they
// exercise both receiver banks of the src%Receivers assignment.
func attackers(nodes int) []int { return []int{nodes - 1, nodes - 2} }

// specsFor builds the two-attacker roster for one (role, intensity)
// point. Both attackers target node 0, the directory-home hot spot.
func specsFor(role adversary.Role, intensity float64, nodes int) []adversary.Spec {
	var specs []adversary.Spec
	for _, a := range attackers(nodes) {
		specs = append(specs, adversary.Spec{
			Role: role, Node: a, Victims: []int{0}, Intensity: intensity,
		})
	}
	return specs
}

// truePositive decides whether one flagged link localizes the attack:
// any link touching a hostile node (its transmit storm, or the victim's
// replies straight back to it), or any link into a declared victim (the
// congestion epicenter honest senders pile onto). A flag elsewhere is a
// false positive — blame pinned on bystander traffic.
func truePositive(link obs.Link, hostile map[int]bool, victims map[int]bool) bool {
	return hostile[link.Src] || hostile[link.Dst] || victims[link.Dst]
}

// Resilience is the registered "resilience" experiment (ROADMAP item 4):
// adversary role x intensity x node count, measuring honest-traffic
// degradation against an attack-free control and the detector's
// precision and latency. The control run doubles as the false-positive
// gate: with no attacker present the detector must flag nothing.
func Resilience(o Options) Result {
	nodeCounts := []int{16, 64}
	intensities := defaultIntensities
	if o.Scale < 0.2 {
		nodeCounts = []int{16} // benches skip the 64-node half
		intensities = []float64{0.3, 0.9}
	}
	return ResilienceSweep(o, resilienceRoles, intensities, nodeCounts)
}

// ResilienceSweep runs the resilience grid over the given roles,
// intensities, and node counts (cmd/resilience parameterizes them). The
// honest workload is the first app of the selected suite.
func ResilienceSweep(o Options, roles []adversary.Role, intensities []float64, nodeCounts []int) Result {
	app := o.suite()[0]

	// Job list: per node count, one attack-free control then the full
	// (role, intensity) grid, all mutually independent.
	var jobs []simJob
	for _, nodes := range nodeCounts {
		jobs = append(jobs, simJob{app: app, kind: system.NetFSOI, nodes: nodes,
			mutate: func(c *system.Config) { c.Detect = true }})
		for _, role := range roles {
			for _, in := range intensities {
				specs := specsFor(role, in, nodes)
				jobs = append(jobs, simJob{app: app, kind: system.NetFSOI, nodes: nodes,
					mutate: func(c *system.Config) {
						c.Detect = true
						c.Adversaries = specs
					}})
			}
		}
	}
	ms := runGrid(o, jobs)

	t := stats.NewTable("nodes", "role", "intensity", "honest slowdown",
		"lat ratio", "flagged", "precision", "detect@")
	vals := map[string]float64{}
	var b strings.Builder
	idx := 0
	for _, nodes := range nodeCounts {
		control := ms[idx]
		idx++
		controlFlags := len(control.Detection.Flagged)
		vals[fmt.Sprintf("control_flags_n%d", nodes)] = float64(controlFlags)
		fmt.Fprintf(&b, "n=%d control: %d cycles, mean latency %.1f, %d links flagged (must be 0)\n",
			nodes, control.Cycles, control.Latency.MeanTotal(), controlFlags)
		for _, role := range roles {
			hostile := map[int]bool{}
			for _, a := range attackers(nodes) {
				hostile[a] = true
			}
			victims := map[int]bool{0: true}
			for _, in := range intensities {
				m := ms[idx]
				idx++
				slowdown := float64(m.HonestFinish) / float64(control.Cycles)
				latRatio := m.Latency.MeanTotal() / control.Latency.MeanTotal()
				tp := 0
				detectAt := int64(-1)
				for _, f := range m.Detection.Flagged {
					if truePositive(f.Link, hostile, victims) {
						tp++
						if detectAt < 0 || f.FlaggedAt < detectAt {
							detectAt = f.FlaggedAt
						}
					}
				}
				precision := 1.0
				if n := len(m.Detection.Flagged); n > 0 {
					precision = float64(tp) / float64(n)
				}
				at := "-"
				if detectAt >= 0 {
					at = fmt.Sprint(detectAt)
				}
				t.AddRow(fmt.Sprint(nodes), role.String(), fmt.Sprintf("%.1f", in),
					fmt.Sprintf("%.3f", slowdown), fmt.Sprintf("%.3f", latRatio),
					fmt.Sprint(len(m.Detection.Flagged)), fmt.Sprintf("%.2f", precision), at)
				key := fmt.Sprintf("%s_i%.1f_n%d", role, in, nodes)
				vals["slowdown_"+key] = slowdown
				vals["lat_ratio_"+key] = latRatio
				vals["flagged_"+key] = float64(len(m.Detection.Flagged))
				vals["precision_"+key] = precision
				vals["detect_at_"+key] = float64(detectAt)
			}
		}
	}
	b.WriteString("\n")
	b.WriteString(t.String())
	b.WriteString("\ntwo attackers (nodes-1, nodes-2: both receiver parities) target node 0.\n")
	b.WriteString("honest slowdown = honest finish cycle / attack-free run length; detect@ is the\n")
	b.WriteString("first cycle a true-positive link crossed a detection threshold (- = missed).\n")
	return Result{
		ID:     "resilience",
		Title:  "Resilience: honest-traffic degradation and attack detection",
		Text:   b.String(),
		Values: vals,
	}
}
