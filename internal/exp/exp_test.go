package exp

import (
	"fmt"
	"strings"
	"testing"
)

// tiny returns the cheapest possible options for registry smoke tests.
func tiny() Options {
	return Options{Scale: 0.02, Seed: 1, Trials: 300, Apps: []string{"jacobi"}}
}

func TestRegistryLookup(t *testing.T) {
	for _, e := range Registry {
		r, ok := Lookup(e.ID)
		if !ok || r == nil {
			t.Fatalf("Lookup(%s) failed", e.ID)
		}
	}
	if _, ok := Lookup("fig99"); ok {
		t.Fatal("unknown ids must not resolve")
	}
	if len(IDs()) != len(Registry) {
		t.Fatal("IDs() must cover the registry")
	}
}

func TestTable1Values(t *testing.T) {
	res := Table1(tiny())
	if res.Values["path_loss_db"] < 2 || res.Values["path_loss_db"] > 3.5 {
		t.Fatalf("path loss %.2f dB", res.Values["path_loss_db"])
	}
	if res.Values["bits_per_cyc"] != 12 {
		t.Fatal("12 line bits per core cycle expected")
	}
	if !strings.Contains(res.Text, "path loss") {
		t.Fatal("text missing")
	}
}

func TestFig3Monotonic(t *testing.T) {
	res := Fig3(tiny())
	// More receivers, fewer collisions at fixed p.
	if res.Values["p0.20_r1"] <= res.Values["p0.20_r2"] {
		t.Fatal("R=1 must collide more than R=2")
	}
	if res.Values["p0.01_r2"] >= res.Values["p0.33_r2"] {
		t.Fatal("collision probability must grow with p")
	}
}

func TestFig4FindsGentleBackoff(t *testing.T) {
	o := tiny()
	o.Trials = 3000
	res := Fig4(o)
	if res.Values["opt_b_g1"] > 1.5 {
		t.Fatalf("optimal B %.2f; small bases should win", res.Values["opt_b_g1"])
	}
	if res.Values["opt_delay_g1"] <= 0 {
		t.Fatal("optimum delay must be positive")
	}
}

func TestFig5Shape(t *testing.T) {
	o := tiny()
	o.Scale = 0.05
	res := Fig5(o)
	if res.Values["mode_frac"] <= 0.04 {
		t.Fatalf("reply latency should concentrate (mode frac %.2f)", res.Values["mode_frac"])
	}
	if res.Values["mean"] <= 0 {
		t.Fatal("mean must be positive")
	}
}

func TestFig6Ordering(t *testing.T) {
	res := Fig6(tiny())
	fsoi := res.Values["geomean_fsoi"]
	l0 := res.Values["geomean_L0"]
	lr2 := res.Values["geomean_Lr2"]
	if fsoi <= 0.9 {
		t.Fatalf("FSOI geomean %.3f; must not lose badly to mesh", fsoi)
	}
	if l0 < lr2*0.93 {
		t.Fatalf("L0 (%.3f) must not lose badly to Lr2 (%.3f)", l0, lr2)
	}
}

func TestFig9ReducesCollisions(t *testing.T) {
	o := tiny()
	o.Scale = 0.05
	res := Fig9(o)
	if res.Values["collision_cut"] < -0.2 {
		t.Fatalf("ack elision should not increase collisions markedly: %.2f", res.Values["collision_cut"])
	}
	if res.Values["traffic_cut"] <= 0 {
		t.Fatal("ack elision must remove some meta packets")
	}
}

func TestLLSCNotHarmful(t *testing.T) {
	res := LLSC(tiny())
	if res.Values["speedup"] < 0.9 {
		t.Fatalf("confirmation-channel sync should not slow things: %.3f", res.Values["speedup"])
	}
}

func TestBenchOptionsAreCheap(t *testing.T) {
	o := BenchOptions()
	if o.Scale > 0.1 || len(o.Apps) == 0 {
		t.Fatal("bench options must stay small")
	}
}

func TestFaultsSweepDegradesMonotonically(t *testing.T) {
	res := Faults(tiny())
	// Tiny scale uses the {0, 2, 3.5} dB points; eroding margin must
	// not improve performance and must raise the retransmission cost.
	if res.Values["speedup_p0.0"] < res.Values["speedup_p3.5"] {
		t.Fatalf("speedup rose with lost margin: %.3f -> %.3f",
			res.Values["speedup_p0.0"], res.Values["speedup_p3.5"])
	}
	if res.Values["retrans_p3.5"] <= res.Values["retrans_p0.0"] {
		t.Fatalf("retransmissions must grow with corruption: %.3f -> %.3f",
			res.Values["retrans_p0.0"], res.Values["retrans_p3.5"])
	}
	if res.Values["bit_errors_p3.5"] == 0 {
		t.Fatal("3.5 dB must corrupt packets")
	}
	for _, key := range []string{"finished_p0.0", "finished_p2.0", "finished_p3.5"} {
		if res.Values[key] != 1 {
			t.Fatalf("%s: swept point did not finish (deadlock under faults)", key)
		}
	}
}

// TestFig8WorkerEquivalence is the runner-level half of the
// parallel-vs-serial contract: one full Fig8 (mesh + FSOI energy grid)
// at Workers=1 and Workers=8 must render byte-identical Result.Text and
// identical Values, because jobs merge by submission index and the
// formatting loop replays the serial iteration order.
func TestFig8WorkerEquivalence(t *testing.T) {
	run := func(workers int) Result {
		o := BenchOptions()
		o.Workers = workers
		return Fig8(o)
	}
	serial := run(1)
	parallel := run(8)
	if serial.Text != parallel.Text {
		t.Fatalf("Fig8 text diverges between workers=1 and workers=8:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial.Text, parallel.Text)
	}
	if len(serial.Values) != len(parallel.Values) {
		t.Fatalf("value count diverges: %d vs %d", len(serial.Values), len(parallel.Values))
	}
	for k, v := range serial.Values {
		if pv, ok := parallel.Values[k]; !ok || pv != v {
			t.Fatalf("value %q diverges: %v vs %v", k, v, parallel.Values[k])
		}
	}
}

// TestFrontierShape checks the frontier sweep's physical narrative: the
// analytic grid covers every registered topology at 16/64/256 nodes,
// waveguide-crossbar loss grows with radix while FSOI's stays flat, and
// the simulated half produces the FSOI-vs-token-crossbar ratio.
func TestFrontierShape(t *testing.T) {
	res := Frontier(tiny())
	for _, topo := range []string{"corona", "fsoi", "matrix", "snake"} {
		for _, nodes := range []int{16, 64, 256} {
			if res.Values[key2("loss", topo, nodes)] <= 0 {
				t.Fatalf("missing analytic loss for %s@%d", topo, nodes)
			}
		}
		if res.Values[key2("cycles", topo, 16)] <= 0 {
			t.Fatalf("missing simulated cycles for %s@16", topo)
		}
	}
	for _, topo := range []string{"corona", "matrix", "snake"} {
		if res.Values[key2("loss", topo, 256)] <= res.Values[key2("loss", topo, 16)] {
			t.Fatalf("%s loss must grow with radix", topo)
		}
		// The headline: every waveguide crossbar loses to free space at 256.
		if res.Values[key2("loss", topo, 256)] <= res.Values[key2("loss", "fsoi", 256)] {
			t.Fatalf("%s@256 should pay more worst-case loss than fsoi", topo)
		}
	}
	ratio := res.Values["fsoi_vs_corona_16"]
	if ratio < 0.8 || ratio > 1.6 {
		t.Fatalf("fsoi-vs-corona ratio %.3f implausible", ratio)
	}
}

func key2(prefix, topo string, nodes int) string {
	return fmt.Sprintf("%s_%s_%d", prefix, topo, nodes)
}

// TestFrontierScaleHalf checks the sharded-engine half of the sweep:
// at scale 0.05 and up, the frontier simulates the two §7.1 contenders
// at 256 nodes on the exact sharded engine and reports their cycle
// counts. Skipped under -short (the -race job) for time.
func TestFrontierScaleHalf(t *testing.T) {
	if testing.Short() {
		t.Skip("256-node frontier half runs only without -short")
	}
	o := tiny()
	o.Scale = 0.05
	res := Frontier(o)
	for _, topo := range []string{"fsoi", "corona"} {
		if res.Values[key2("cycles", topo, 256)] <= 0 {
			t.Fatalf("missing 256-node sharded cycles for %s", topo)
		}
	}
	if !strings.Contains(res.Text, "Scale frontier on the sharded engine") {
		t.Fatal("scale-half table missing from frontier text")
	}
}

// TestFrontierWorkerEquivalence extends the parallel-vs-serial contract
// to the topology-zoo grid: the frontier runs every registered topology
// through the NetOptical path, and its rendered table must be
// byte-identical at any worker count.
func TestFrontierWorkerEquivalence(t *testing.T) {
	run := func(workers int) Result {
		o := tiny()
		o.Workers = workers
		return Frontier(o)
	}
	if a, b := run(1), run(8); a.Text != b.Text {
		t.Fatalf("frontier text diverges between workers=1 and workers=8:\n%s\n---\n%s", a.Text, b.Text)
	}
}

// TestFaultSweepWorkerEquivalence covers the sweep grid the faultsweep
// CLI exposes: the mesh baselines and every (penalty, app) point run
// through the same pool and must be invisible to the output.
func TestFaultSweepWorkerEquivalence(t *testing.T) {
	run := func(workers int) Result {
		o := tiny()
		o.Workers = workers
		return Faults(o)
	}
	if a, b := run(1), run(8); a.Text != b.Text {
		t.Fatalf("faults text diverges between workers=1 and workers=8:\n%s\n---\n%s", a.Text, b.Text)
	}
}
