package exp

import (
	"fmt"
	"strings"

	"fsoi/internal/core"
	"fsoi/internal/fault"
	"fsoi/internal/stats"
	"fsoi/internal/system"
)

// defaultPenalties spans the interesting margin range: at 0 dB the
// Table 1 Q factor gives BER ~1e-10 (invisible), by 3.5 dB most data
// packets take at least one error and the protocol lives on
// retransmission. Beyond ~4 dB the corruption probability saturates
// near 1 and runs stop making forward progress, so the sweep stays
// below it.
var defaultPenalties = []float64{0, 1, 2, 2.5, 3, 3.5}

// Faults is the registered "faults" experiment: a margin-penalty sweep
// with a small background of VCSEL aging and confirmation drops, FSOI
// against the fault-immune mesh baseline.
func Faults(o Options) Result {
	penalties := defaultPenalties
	if o.Scale < 0.2 {
		penalties = []float64{0, 2, 3.5} // benches skip the dense middle
	}
	base := fault.Config{
		VCSELFailProb:   0.02,
		ConfirmDropProb: 0.01,
	}
	return FaultSweep(o, penalties, base)
}

// FaultSweep runs the FSOI system under the base fault configuration at
// each margin penalty and reports speedup over the (fault-immune) mesh,
// collision rates, the retransmission overhead, and the raw fault
// census. The same mesh baseline serves every penalty point: electrical
// wires do not lose link margin.
func FaultSweep(o Options, penalties []float64, base fault.Config) Result {
	apps := o.suite()
	// One grid covers the whole sweep: the per-app mesh baselines first,
	// then every (penalty, app) FSOI point, all mutually independent.
	var jobs []simJob
	for _, app := range apps {
		jobs = append(jobs, simJob{app: app, kind: system.NetMesh, nodes: 16})
	}
	for _, pen := range penalties {
		fc := base
		fc.MarginPenaltyDB = pen
		for _, app := range apps {
			jobs = append(jobs, simJob{app: app, kind: system.NetFSOI, nodes: 16,
				mutate: func(c *system.Config) { c.Fault = fc }})
		}
	}
	ms := runGrid(o, jobs)
	meshCycles := make(map[string]system.Metrics, len(apps))
	for i, app := range apps {
		meshCycles[app.Name] = ms[i]
	}
	idx := len(apps)
	t := stats.NewTable("penalty (dB)", "speedup", "meta coll", "data coll",
		"retrans/pkt", "bit errs", "timeouts", "finished")
	vals := map[string]float64{}
	var b strings.Builder
	for _, pen := range penalties {
		var speedups []float64
		var metaColl, dataColl, retrans []float64
		var bitErrs, timeouts int64
		finished := true
		for _, app := range apps {
			m := ms[idx]
			idx++
			speedups = append(speedups, m.Speedup(meshCycles[app.Name]))
			metaColl = append(metaColl, m.FSOI.CollisionRate(core.LaneMeta))
			dataColl = append(dataColl, m.FSOI.CollisionRate(core.LaneData))
			retrans = append(retrans, m.FSOI.RetransmissionRate(core.LaneData))
			if m.FaultCounters != nil {
				bitErrs += m.FaultCounters.Get("bit_errors")
				timeouts += m.FaultCounters.Get("timeout_retransmits")
			}
			finished = finished && m.Finished
		}
		sp := stats.GeoMean(speedups)
		fin := "yes"
		if !finished {
			fin = "NO"
		}
		t.AddRow(fmt.Sprintf("%.1f", pen), fmt.Sprintf("%.3f", sp),
			fmt.Sprintf("%.4f", mean(metaColl)), fmt.Sprintf("%.4f", mean(dataColl)),
			fmt.Sprintf("%.3f", mean(retrans)), fmt.Sprint(bitErrs),
			fmt.Sprint(timeouts), fin)
		key := fmt.Sprintf("p%.1f", pen)
		vals["speedup_"+key] = sp
		vals["data_coll_"+key] = mean(dataColl)
		vals["retrans_"+key] = mean(retrans)
		vals["bit_errors_"+key] = float64(bitErrs)
		if finished {
			vals["finished_"+key] = 1
		}
	}
	b.WriteString(t.String())
	b.WriteString("\nmesh baseline is immune: electrical wires lose no optical margin.\n")
	b.WriteString("header errors surface as misdetected collisions (PID/~PID), payload errors\n")
	b.WriteString("as CRC-caught silent retransmissions; both ride the W=2.7/B=1.1 backoff.\n")
	return Result{
		ID:     "faults",
		Title:  "Fault injection: performance vs eroded link margin",
		Text:   b.String(),
		Values: vals,
	}
}
