package exp

import (
	"bytes"
	"fmt"
	"testing"

	"fsoi/internal/obs"
)

// bufSink collects trace output in memory, mirroring the fileSink in
// cmd/experiments.
type bufSink struct {
	buf bytes.Buffer
	err error
}

func (s *bufSink) WriteRun(label string, rec *obs.Recorder) {
	if s.err != nil {
		return
	}
	if _, err := fmt.Fprintf(&s.buf, "{\"run\":%q}\n", label); err != nil {
		s.err = err
		return
	}
	s.err = obs.WriteJSONL(&s.buf, rec)
}

// TestTraceDoesNotChangeResults: running an experiment with tracing on
// must render the exact same tables as without — observation is a pure
// read of the simulation.
func TestTraceDoesNotChangeResults(t *testing.T) {
	plain := Fig5(tiny())
	traced := tiny()
	sink := &bufSink{}
	traced.Trace = sink
	withTrace := Fig5(traced)
	if sink.err != nil {
		t.Fatal(sink.err)
	}
	if plain.Text != withTrace.Text {
		t.Fatalf("tracing changed the rendered table:\n--- plain ---\n%s--- traced ---\n%s",
			plain.Text, withTrace.Text)
	}
	for k, v := range plain.Values {
		if withTrace.Values[k] != v {
			t.Fatalf("value %q changed under tracing: %g vs %g", k, v, withTrace.Values[k])
		}
	}
	if sink.buf.Len() == 0 {
		t.Fatal("sink received no trace output")
	}
	if !bytes.Contains(sink.buf.Bytes(), []byte(`{"run":"job000 jacobi fsoi n16"}`)) {
		t.Fatalf("run separator missing or mislabeled:\n%.200s", sink.buf.String())
	}
}

// TestTraceByteIdenticalAcrossWorkers is the acceptance check for the
// parallel path: the trace file produced at one worker equals the one
// produced at four, byte for byte, because runGrid drains recorders by
// job index after the barrier.
func TestTraceByteIdenticalAcrossWorkers(t *testing.T) {
	trace := func(workers int) []byte {
		o := tiny()
		o.Workers = workers
		sink := &bufSink{}
		o.Trace = sink
		Fig9(o) // two jobs per app: exercises both grid order and mutate
		if sink.err != nil {
			t.Fatal(sink.err)
		}
		return sink.buf.Bytes()
	}
	serial := trace(1)
	parallel := trace(4)
	if len(serial) == 0 {
		t.Fatal("empty trace")
	}
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("trace bytes differ between 1 and 4 workers (%d vs %d bytes)",
			len(serial), len(parallel))
	}
}
