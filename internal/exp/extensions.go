package exp

import (
	"fmt"
	"strings"

	"fsoi/internal/optics"
	"fsoi/internal/stats"
	"fsoi/internal/system"
	"fsoi/internal/thermal"
)

func init() {
	Registry = append(Registry,
		struct {
			ID     string
			Runner Runner
		}{"layout", Layout},
		struct {
			ID     string
			Runner Runner
		}{"thermal", Thermal},
	)
}

// Layout reproduces the §4.1 hardware-scale arithmetic: VCSEL counts and
// photonic-layer area for the dedicated (16-node) and phase-arrayed
// (64-node) configurations.
func Layout(o Options) Result {
	var b strings.Builder
	vals := map[string]float64{}
	for _, nodes := range []int{16, 64} {
		cfg := optics.PaperLayout(nodes)
		r := cfg.Layout()
		fmt.Fprintf(&b, "%d nodes (%s):\n", nodes, map[bool]string{false: "dedicated arrays", true: "phase arrays"}[cfg.PhaseArray])
		b.WriteString(r.String())
		b.WriteString("\n")
		vals[fmt.Sprintf("vcsels_%d", nodes)] = float64(r.TxVCSELsTotal)
		vals[fmt.Sprintf("area_mm2_%d", nodes)] = r.VCSELAreaTotal * 1e6
	}
	b.WriteString("paper §4.1: N=16, k=9 needs ~2000 VCSELs occupying ~5 mm² at 30 um spacing\n")
	return Result{ID: "layout", Title: "§4.1: photonic-layer scale", Text: b.String(), Values: vals}
}

// Thermal evaluates the §3.3 cooling alternatives under the power map of
// a real FSOI run: air cooling (obstructed by the free-space layer),
// microchannel liquid cooling, and a diamond heat spreader.
func Thermal(o Options) Result {
	apps := o.suite()
	m := runOne(o, apps[0], system.NetFSOI, 16, nil)
	perNode := m.AvgPowerW / 16
	// A mildly non-uniform map: directory-home traffic concentrates at
	// the memory-controller corners.
	power := thermal.UniformPower(4, perNode)
	for _, corner := range []int{0, 3, 12, 15} {
		power[corner] *= 1.25
	}
	t := stats.NewTable("cooling", "max junction (C)", "mean (C)", "leakage factor")
	vals := map[string]float64{}
	for _, c := range []thermal.Cooling{thermal.AirCooled, thermal.Microchannel, thermal.DiamondSpreader} {
		res := thermal.ForCooling(c, 4).Solve(power)
		lf := res.LeakageFactor(330, 0.012)
		t.AddRow(c.String(), fmt.Sprintf("%.1f", res.MaxC()),
			fmt.Sprintf("%.1f", res.MeanK-273.15), fmt.Sprintf("%.3f", lf))
		vals["max_"+c.String()] = res.MaxC()
		vals["leak_"+c.String()] = lf
	}
	var b strings.Builder
	fmt.Fprintf(&b, "power map from %s on 16-node FSOI: %.1f W total\n\n", apps[0].Name, m.AvgPowerW)
	b.WriteString(t.String())
	b.WriteString("\nliquid cooling keeps the stack viable under the free-space layer (§3.3)\n")
	return Result{ID: "thermal", Title: "§3.3: cooling alternatives for the 3-D stack", Text: b.String(), Values: vals}
}
