// Package exp contains one runner per table and figure of the paper's
// evaluation (§6-§7). Each runner takes a Scale knob so the same code
// serves the full-size cmd/experiments binary and the scaled-down
// bench_test.go harness, and returns both a formatted table and the raw
// series for programmatic checks.
package exp

import (
	"fmt"
	"sort"
	"strings"

	"fsoi/internal/analytic"
	"fsoi/internal/core"
	"fsoi/internal/obs"
	"fsoi/internal/optics"
	"fsoi/internal/parallel"
	"fsoi/internal/sim"
	"fsoi/internal/stats"
	"fsoi/internal/system"
	"fsoi/internal/workload"
)

// Options control experiment sizing.
type Options struct {
	// Scale multiplies workload length; 1.0 is the full experiment.
	Scale float64
	// Apps restricts the suite (nil = all sixteen).
	Apps []string
	// Seed feeds every deterministic random stream.
	Seed uint64
	// Trials sizes Monte Carlo estimates.
	Trials int
	// Workers bounds how many independent simulations run concurrently;
	// values <= 1 run everything serially on the calling goroutine.
	// Results are byte-identical at every worker count: each grid builds
	// its job list in a fixed order, every job owns its own engine and
	// RNG tree, and results merge by job index, never completion order.
	Workers int
	// Shards selects the shard count for grids that run on the exact
	// sharded engine (the frontier's 256/1024-node half); 0 means 8.
	// Results are byte-identical at every value — the knob exists so
	// wall-clock can be measured against shard count.
	Shards int
	// Trace, when non-nil, turns on the packet-lifecycle observability
	// layer for every simulated run and streams each run's recording to
	// the sink. Sinks are fed strictly in job order after a grid
	// finishes, never from worker goroutines, so the emitted bytes are
	// identical at every Workers value.
	Trace TraceSink
}

// TraceSink receives one lifecycle recording per simulated run.
type TraceSink interface {
	// WriteRun consumes one run's recorder (never nil). The label
	// identifies the run within its experiment: job index, application,
	// network kind, and node count.
	WriteRun(label string, rec *obs.Recorder)
}

// DefaultOptions returns full-size settings.
func DefaultOptions() Options {
	return Options{Scale: 0.5, Seed: 1, Trials: 30000}
}

// BenchOptions returns the scaled-down settings used by bench_test.go.
func BenchOptions() Options {
	return Options{Scale: 0.05, Seed: 1, Trials: 4000, Apps: []string{"jacobi", "mp3d", "raytrace", "fft"}}
}

// suite returns the selected applications.
func (o Options) suite() []workload.App {
	all := workload.Suite(o.Scale)
	if len(o.Apps) == 0 {
		return all
	}
	var out []workload.App
	for _, name := range o.Apps {
		for _, a := range all {
			if a.Name == name {
				out = append(out, a)
			}
		}
	}
	return out
}

// Result is one experiment's output.
type Result struct {
	ID     string
	Title  string
	Text   string             // formatted table(s)
	Values map[string]float64 // key metrics for tests/EXPERIMENTS.md
}

// Runner regenerates one table or figure.
type Runner func(o Options) Result

// Registry maps experiment ids to runners, in paper order.
var Registry = []struct {
	ID     string
	Runner Runner
}{
	{"table1", Table1},
	{"fig3", Fig3},
	{"fig4", Fig4},
	{"fig5", Fig5},
	{"fig6", Fig6},
	{"fig7", Fig7},
	{"table4", Table4},
	{"fig8", Fig8},
	{"fig9", Fig9},
	{"fig10", Fig10},
	{"fig11", Fig11},
	{"hints", Hints},
	{"llsc", LLSC},
	{"corona", Corona},
	{"frontier", Frontier},
	{"faults", Faults},
}

// Lookup finds a runner by id.
func Lookup(id string) (Runner, bool) {
	for _, e := range Registry {
		if e.ID == id {
			return e.Runner, true
		}
	}
	return nil, false
}

// Table1 regenerates the optical-link parameter table from device first
// principles.
func Table1(o Options) Result {
	r := optics.PaperLink().Budget()
	chip := optics.PaperChip(4)
	var b strings.Builder
	fmt.Fprintf(&b, "Worst-case route: %.1f mm (die %v mm, folded through the mirror layer)\n\n",
		chip.WorstCasePath()*1e3, chip.DieEdge*1e3)
	b.WriteString(r.String())
	return Result{
		ID:    "table1",
		Title: "Table 1: optical link parameters",
		Text:  b.String(),
		Values: map[string]float64{
			"path_loss_db": float64(r.PathLoss.TotalDB),
			"snr_db":       float64(r.OpticalSNRdB),
			"ber":          r.BER,
			"jitter_ps":    r.JitterRMS * 1e12,
			"bits_per_cyc": float64(r.BitsPerCycle),
			"tx_mw":        float64(r.TxActivePowerW) * 1e3,
			"rx_mw":        float64(r.RxPowerW) * 1e3,
			"standby_mw":   float64(r.TxStandbyPowerW) * 1e3,
		},
	}
}

// Fig3 regenerates the collision-probability curves: analytic lines for
// R=1..4 plus Monte Carlo cross-checks at R=2.
func Fig3(o Options) Result {
	rng := sim.NewRNG(o.Seed).NewStream("fig3")
	ps := []float64{0.33, 0.25, 0.20, 0.15, 0.10, 0.07, 0.05, 0.04, 0.03, 0.02, 0.01}
	t := stats.NewTable("p", "R=1", "R=2", "R=3", "R=4", "R=2 (MC)")
	vals := map[string]float64{}
	for _, p := range ps {
		row := []string{fmt.Sprintf("%.2f", p)}
		for r := 1; r <= 4; r++ {
			c := analytic.CollisionParams{N: 16, R: r, P: p}
			v := analytic.PacketCollisionProbability(c)
			row = append(row, fmt.Sprintf("%.4f", v))
			vals[fmt.Sprintf("p%.2f_r%d", p, r)] = v
		}
		mc, _ := analytic.MonteCarloCollision(analytic.CollisionParams{N: 16, R: 2, P: p}, rng, o.Trials, o.Workers)
		row = append(row, fmt.Sprintf("%.4f", mc))
		t.AddRow(row...)
	}
	return Result{
		ID:     "fig3",
		Title:  "Figure 3: collision probability vs transmission probability",
		Text:   t.String(),
		Values: vals,
	}
}

// Fig4 regenerates the collision-resolution-delay surface over (W, B) at
// background rates 1% and 10%, plus the pathological 64-node burst.
func Fig4(o Options) Result {
	rng := sim.NewRNG(o.Seed).NewStream("fig4")
	ws := []float64{1.5, 2.0, 2.7, 3.0, 4.0, 5.0}
	bs := []float64{1.05, 1.1, 1.2, 1.5, 2.0}
	vals := map[string]float64{}
	var b strings.Builder
	for _, g := range []float64{0.01, 0.10} {
		fmt.Fprintf(&b, "G = %.0f%% (mean collision resolution delay, cycles)\n", g*100)
		t := stats.NewTable(append([]string{"W \\ B"}, fmtFloats(bs)...)...)
		surface := analytic.ResolutionDelaySurface(ws, bs, g, rng.NewStream(fmt.Sprint(g)), o.Trials, o.Workers)
		for i, w := range ws {
			row := []string{fmt.Sprintf("%.1f", w)}
			for j := range bs {
				row = append(row, fmt.Sprintf("%.2f", surface[i][j]))
			}
			t.AddRow(row...)
		}
		b.WriteString(t.String())
		b.WriteString("\n")
		wOpt, bOpt, dOpt := analytic.OptimalWB(ws, bs, g, rng.NewStream("opt"+fmt.Sprint(g)), o.Trials, o.Workers)
		fmt.Fprintf(&b, "optimum: W=%.1f B=%.2f delay=%.2f cycles (paper: W=2.7 B=1.1, 7.26 cycles)\n\n", wOpt, bOpt, dOpt)
		vals[fmt.Sprintf("opt_w_g%.0f", g*100)] = wOpt
		vals[fmt.Sprintf("opt_b_g%.0f", g*100)] = bOpt
		vals[fmt.Sprintf("opt_delay_g%.0f", g*100)] = dOpt
	}
	// Pathological case (§4.3.2): 64-node all-to-one burst.
	patho := analytic.PaperBackoff(0).Pathological(rng.NewStream("patho"), 64, 2, o.Trials/100+10, 1<<17, o.Workers)
	classic := analytic.BackoffModel{W: 2.7, B: 2, SlotCycles: 2}
	pClassic := classic.Pathological(rng.NewStream("classic"), 64, 2, o.Trials/100+10, 1<<17, o.Workers)
	fmt.Fprintf(&b, "pathological 64->1 burst: B=1.1 first success after %.0f retries (%.0f cycles); B=2 after %.0f retries (%.0f cycles)\n",
		patho.MeanRetriesFirst, patho.MeanCyclesFirst, pClassic.MeanRetriesFirst, pClassic.MeanCyclesFirst)
	vals["patho_retries_b11"] = patho.MeanRetriesFirst
	vals["patho_cycles_b11"] = patho.MeanCyclesFirst
	return Result{ID: "fig4", Title: "Figure 4: backoff tuning surface", Text: b.String(), Values: vals}
}

func fmtFloats(fs []float64) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = fmt.Sprintf("%.2f", f)
	}
	return out
}

// runOne executes one app on one network configuration.
func runOne(o Options, app workload.App, kind system.NetworkKind, nodes int, mutate func(*system.Config)) system.Metrics {
	cfg := system.Default(nodes, kind)
	cfg.Seed = o.Seed
	if mutate != nil {
		mutate(&cfg)
	}
	if o.Trace != nil {
		cfg.Observe = true
	}
	return system.New(cfg).Run(app)
}

// simJob names one independent simulation inside an experiment grid.
type simJob struct {
	app    workload.App
	kind   system.NetworkKind
	nodes  int
	mutate func(*system.Config)
	// tag overrides the network-kind name in trace labels; grids that
	// multiplex several topologies through one kind (NetOptical) set it.
	tag string
}

// runGrid executes the jobs on up to o.Workers goroutines and returns
// their metrics in job order. Every runner builds its job list in the
// same order its formatting loop consumes results, so the rendered
// tables are byte-for-byte those of the old serial loops.
func runGrid(o Options, jobs []simJob) []system.Metrics {
	ms := parallel.Map(len(jobs), o.Workers, func(i int) system.Metrics {
		j := jobs[i]
		return runOne(o, j.app, j.kind, j.nodes, j.mutate)
	})
	if o.Trace != nil {
		// Drain the per-run recorders by job index after the barrier: the
		// sink sees the same sequence regardless of how many workers ran
		// the grid or which finished first.
		for i, m := range ms {
			j := jobs[i]
			label := j.kind.String()
			if j.tag != "" {
				label = j.tag
			}
			o.Trace.WriteRun(fmt.Sprintf("job%03d %s %s n%d", i, j.app.Name, label, j.nodes), m.Obs)
		}
	}
	return ms
}

// Fig5 regenerates the read-miss reply-latency distribution on the
// 16-node FSOI system.
func Fig5(o Options) Result {
	hist := stats.NewHistogram(5, 60)
	apps := o.suite()
	jobs := make([]simJob, len(apps))
	for i, app := range apps {
		jobs[i] = simJob{app: app, kind: system.NetFSOI, nodes: 16}
	}
	for _, m := range runGrid(o, jobs) {
		for i := 0; i < hist.NumBuckets(); i++ {
			hist.AddN(int64(i)*5, m.ReplyHist.Bucket(i))
		}
		hist.AddN(int64(hist.NumBuckets())*5, m.ReplyHist.Overflow())
	}
	var b strings.Builder
	t := stats.NewTable("latency (cycles)", "requests (%)")
	for i := 0; i < hist.NumBuckets(); i += 2 {
		frac := hist.Fraction(i) + hist.Fraction(i+1)
		t.AddRow(fmt.Sprintf("%d-%d", i*5, (i+2)*5-1), fmt.Sprintf("%.1f", frac*100))
	}
	t.AddRow(">300", fmt.Sprintf("%.1f", float64(hist.Overflow())/float64(hist.Total())*100))
	b.WriteString(t.String())
	bucket, frac := hist.ModeFraction()
	fmt.Fprintf(&b, "\nmodal bin %d-%d cycles holds %.0f%% of requests (paper: 41%% concentration)\n",
		bucket*5, bucket*5+4, frac*100)
	return Result{
		ID:    "fig5",
		Title: "Figure 5: distribution of read-miss reply latency (FSOI, 16 nodes)",
		Text:  b.String(),
		Values: map[string]float64{
			"mode_frac":   frac,
			"mode_cycles": float64(bucket * 5),
			"mean":        hist.Mean(),
		},
	}
}

// speedupStudy runs the Figure 6/7 comparison at the given node count.
func speedupStudy(o Options, nodes int) (Result, map[string][]float64) {
	kinds := []system.NetworkKind{system.NetMesh, system.NetFSOI, system.NetL0, system.NetLr1, system.NetLr2}
	apps := o.suite()
	t := stats.NewTable("app", "mesh lat", "fsoi lat", "queue", "sched", "net", "resolve", "fsoi", "L0", "Lr1", "Lr2")
	speed := map[string][]float64{}
	vals := map[string]float64{}
	var jobs []simJob
	for _, app := range apps {
		for _, kind := range kinds {
			jobs = append(jobs, simJob{app: app, kind: kind, nodes: nodes})
		}
	}
	ms := runGrid(o, jobs)
	for ai, app := range apps {
		var base system.Metrics
		row := map[system.NetworkKind]system.Metrics{}
		for ki, kind := range kinds {
			m := ms[ai*len(kinds)+ki]
			row[kind] = m
			if kind == system.NetMesh {
				base = m
			}
		}
		f := row[system.NetFSOI]
		q, sc, nw, res := f.Latency.Breakdown()
		cells := []string{app.Name,
			fmt.Sprintf("%.1f", base.Latency.MeanTotal()),
			fmt.Sprintf("%.1f", f.Latency.MeanTotal()),
			fmt.Sprintf("%.1f", q), fmt.Sprintf("%.1f", sc), fmt.Sprintf("%.1f", nw), fmt.Sprintf("%.1f", res),
		}
		for _, kind := range kinds[1:] {
			sp := row[kind].Speedup(base)
			speed[kind.String()] = append(speed[kind.String()], sp)
			cells = append(cells, fmt.Sprintf("%.3f", sp))
		}
		t.AddRow(cells...)
	}
	var b strings.Builder
	b.WriteString(t.String())
	b.WriteString("\ngeometric means: ")
	chart := stats.NewBarChart("\nspeedup over mesh (geomean)", 40)
	for _, kind := range kinds[1:] {
		g := stats.GeoMean(speed[kind.String()])
		vals["geomean_"+kind.String()] = g
		fmt.Fprintf(&b, "%s=%.3f  ", kind, g)
		chart.Add(kind.String(), g)
	}
	b.WriteString("\n")
	b.WriteString(chart.String())
	id := "fig6"
	title := "Figure 6: 16-node latency and speedups"
	if nodes == 64 {
		id, title = "fig7", "Figure 7: 64-node latency and speedups"
	}
	return Result{ID: id, Title: title, Text: b.String(), Values: vals}, speed
}

// Fig6 is the 16-node performance study.
func Fig6(o Options) Result {
	r, _ := speedupStudy(o, 16)
	return r
}

// Fig7 is the 64-node performance study (phase-array transmitters).
func Fig7(o Options) Result {
	r, _ := speedupStudy(o, 64)
	return r
}

// Table4 compares speedups at 8.8 vs 52.8 GB/s memory bandwidth.
func Table4(o Options) Result {
	t := stats.NewTable("system", "bandwidth", "FSOI", "L0", "Lr1", "Lr2")
	vals := map[string]float64{}
	// The job list mirrors the consumption loops below exactly, so the
	// replay (including the carried-over mesh baseline) reproduces the
	// serial table byte for byte.
	var jobs []simJob
	for _, nodes := range []int{16, 64} {
		if nodes == 64 && o.Scale < 0.2 {
			continue
		}
		for _, bw := range []float64{8.8, 52.8} {
			for _, kind := range []system.NetworkKind{system.NetMesh, system.NetFSOI, system.NetL0, system.NetLr1, system.NetLr2} {
				for _, app := range o.suite() {
					jobs = append(jobs, simJob{app: app, kind: kind, nodes: nodes,
						mutate: func(c *system.Config) { c.Memory.TotalGBps = bw }})
				}
			}
		}
	}
	ms := runGrid(o, jobs)
	idx := 0
	for _, nodes := range []int{16, 64} {
		if nodes == 64 && o.Scale < 0.2 {
			// Benches skip the 64-node half for time.
			continue
		}
		for _, bw := range []float64{8.8, 52.8} {
			speed := map[system.NetworkKind]float64{}
			var base system.Metrics
			for _, kind := range []system.NetworkKind{system.NetMesh, system.NetFSOI, system.NetL0, system.NetLr1, system.NetLr2} {
				var sum []float64
				for range o.suite() {
					m := ms[idx]
					idx++
					if kind == system.NetMesh {
						base = m
					}
					sum = append(sum, m.Speedup(base))
				}
				speed[kind] = stats.GeoMean(sum)
			}
			t.AddRow(fmt.Sprintf("%d-core", nodes), fmt.Sprintf("%.1fGB/s", bw),
				fmt.Sprintf("%.3f", speed[system.NetFSOI]), fmt.Sprintf("%.3f", speed[system.NetL0]),
				fmt.Sprintf("%.3f", speed[system.NetLr1]), fmt.Sprintf("%.3f", speed[system.NetLr2]))
			vals[fmt.Sprintf("fsoi_%d_%.1f", nodes, bw)] = speed[system.NetFSOI]
		}
	}
	return Result{ID: "table4", Title: "Table 4: memory-bandwidth sensitivity", Text: t.String(), Values: vals}
}

// Fig8 compares energy relative to the mesh baseline.
func Fig8(o Options) Result {
	t := stats.NewTable("app", "network", "core+cache", "leakage", "total rel", "fsoi W", "mesh W")
	var relSum, netRatioSum float64
	var count int
	vals := map[string]float64{}
	apps := o.suite()
	var jobs []simJob
	for _, app := range apps {
		jobs = append(jobs,
			simJob{app: app, kind: system.NetMesh, nodes: 16},
			simJob{app: app, kind: system.NetFSOI, nodes: 16})
	}
	ms := runGrid(o, jobs)
	for ai, app := range apps {
		mMesh, mFsoi := ms[2*ai], ms[2*ai+1]
		baseTotal := mMesh.Energy.Total()
		rel := float64(mFsoi.Energy.Total() / baseTotal)
		t.AddRow(app.Name,
			fmt.Sprintf("%.3f", mFsoi.Energy.Network/baseTotal),
			fmt.Sprintf("%.3f", mFsoi.Energy.CoreCache/baseTotal),
			fmt.Sprintf("%.3f", mFsoi.Energy.Leakage/baseTotal),
			fmt.Sprintf("%.3f", rel),
			fmt.Sprintf("%.1f", mFsoi.AvgPowerW),
			fmt.Sprintf("%.1f", mMesh.AvgPowerW))
		relSum += rel
		if mFsoi.Energy.Network > 0 {
			netRatioSum += float64(mMesh.Energy.Network / mFsoi.Energy.Network)
		}
		count++
	}
	var b strings.Builder
	b.WriteString(t.String())
	avgSaving := 1 - relSum/float64(count)
	netRatio := netRatioSum / float64(count)
	fmt.Fprintf(&b, "\naverage energy saving %.1f%% (paper: 40.6%%); network energy ratio mesh/FSOI %.1fx (paper: ~20x)\n",
		avgSaving*100, netRatio)
	vals["avg_saving"] = avgSaving
	vals["net_ratio"] = netRatio
	return Result{ID: "fig8", Title: "Figure 8: energy relative to mesh baseline", Text: b.String(), Values: vals}
}

// Fig9 shows the meta-lane collision rate vs transmission probability
// with and without the confirmation-substitution (ack elision).
func Fig9(o Options) Result {
	t := stats.NewTable("app", "p base", "coll base", "p opt", "coll opt", "theory(p base)")
	var collBase, collOpt, metaBase, metaOpt float64
	apps := o.suite()
	var jobs []simJob
	for _, app := range apps {
		jobs = append(jobs,
			simJob{app: app, kind: system.NetFSOI, nodes: 16,
				mutate: func(c *system.Config) { c.FSOI.Opt.AckElision = false }},
			simJob{app: app, kind: system.NetFSOI, nodes: 16})
	}
	ms := runGrid(o, jobs)
	for ai, app := range apps {
		off, on := ms[2*ai], ms[2*ai+1]
		pb := off.FSOI.TransmissionProbability(core.LaneMeta)
		po := on.FSOI.TransmissionProbability(core.LaneMeta)
		cb := off.FSOI.CollisionRate(core.LaneMeta)
		co := on.FSOI.CollisionRate(core.LaneMeta)
		theory := analytic.PacketCollisionProbability(analytic.CollisionParams{N: 16, R: 2, P: pb})
		t.AddRow(app.Name, fmt.Sprintf("%.4f", pb), fmt.Sprintf("%.4f", cb),
			fmt.Sprintf("%.4f", po), fmt.Sprintf("%.4f", co), fmt.Sprintf("%.4f", theory))
		collBase += cb * float64(off.FSOI.Attempts[core.LaneMeta])
		collOpt += co * float64(on.FSOI.Attempts[core.LaneMeta])
		metaBase += float64(off.MetaPackets)
		metaOpt += float64(on.MetaPackets)
	}
	var b strings.Builder
	b.WriteString(t.String())
	trafficCut := 1 - metaOpt/metaBase
	collCut := 1 - collOpt/collBase
	fmt.Fprintf(&b, "\nack elision cuts meta traffic by %.1f%% and meta collisions by %.1f%% (paper: 5.1%% traffic, 31.5%% collisions)\n",
		trafficCut*100, collCut*100)
	return Result{ID: "fig9", Title: "Figure 9: meta collision rate vs transmission probability",
		Text: b.String(), Values: map[string]float64{"traffic_cut": trafficCut, "collision_cut": collCut}}
}

// Fig10 breaks down data-lane collisions by kind with and without the
// §5.2 optimizations.
func Fig10(o Options) Result {
	t := stats.NewTable("app", "config", "retrans", "writeback", "memory", "reply", "coll rate")
	var rateOff, rateOn []float64
	apps := o.suite()
	var jobs []simJob
	for _, app := range apps {
		for _, on := range []bool{false, true} {
			jobs = append(jobs, simJob{app: app, kind: system.NetFSOI, nodes: 16,
				mutate: func(c *system.Config) {
					if !on {
						c.FSOI.Opt.ReceiverScheduling = false
						c.FSOI.Opt.WritebackSplit = false
						c.FSOI.Opt.RetransmitHints = false
					}
				}})
		}
	}
	ms := runGrid(o, jobs)
	idx := 0
	for _, app := range apps {
		for _, on := range []bool{false, true} {
			m := ms[idx]
			idx++
			st := m.FSOI
			kinds := st.DataByKind[0] + st.DataByKind[1] + st.DataByKind[2] + st.DataByKind[3]
			if kinds == 0 {
				kinds = 1
			}
			total := float64(kinds)
			name := "base"
			if on {
				name = "opt"
			}
			rate := st.CollisionRate(core.LaneData)
			t.AddRow(app.Name, name,
				fmt.Sprintf("%.2f", float64(st.DataByKind[core.CollisionRetransmission])/total),
				fmt.Sprintf("%.2f", float64(st.DataByKind[core.CollisionWriteback])/total),
				fmt.Sprintf("%.2f", float64(st.DataByKind[core.CollisionMemory])/total),
				fmt.Sprintf("%.2f", float64(st.DataByKind[core.CollisionReply])/total),
				fmt.Sprintf("%.4f", rate))
			if on {
				rateOn = append(rateOn, rate)
			} else {
				rateOff = append(rateOff, rate)
			}
		}
	}
	var b strings.Builder
	b.WriteString(t.String())
	avoided := 1 - mean(rateOn)/mean(rateOff)
	fmt.Fprintf(&b, "\ndata collision rate %.2f%% -> %.2f%%: %.0f%% of collisions avoided (paper: 9.4%% -> 5.8%%, ~38%% avoided)\n",
		mean(rateOff)*100, mean(rateOn)*100, avoided*100)
	return Result{ID: "fig10", Title: "Figure 10: data-lane collision breakdown",
		Text: b.String(), Values: map[string]float64{"rate_off": mean(rateOff), "rate_on": mean(rateOn), "avoided": avoided}}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Fig11 sweeps relative bandwidth from 100% down to 50% for both FSOI and
// the mesh, normalizing each to its own full-bandwidth configuration.
func Fig11(o Options) Result {
	// FSOI points: (data, meta) VCSEL counts scaling total bandwidth.
	fsoiPoints := []struct {
		frac       float64
		meta, data int
	}{
		{1.00, 3, 6}, {0.89, 3, 5}, {0.78, 2, 5}, {0.67, 2, 4}, {0.56, 2, 3}, {0.50, 2, 3},
	}
	meshFracs := []float64{1.00, 0.89, 0.78, 0.67, 0.56, 0.50}
	apps := o.suite()
	var jobs []simJob
	for i := range fsoiPoints {
		fp := fsoiPoints[i]
		mf := meshFracs[i]
		for _, app := range apps {
			jobs = append(jobs, simJob{app: app, kind: system.NetFSOI, nodes: 16,
				mutate: func(c *system.Config) {
					c.FSOI.MetaVCSELs = fp.meta
					c.FSOI.DataVCSELs = fp.data
				}})
		}
		for _, app := range apps {
			jobs = append(jobs, simJob{app: app, kind: system.NetMesh, nodes: 16,
				mutate: func(c *system.Config) { c.MeshBandwidthFrac = mf }})
		}
	}
	ms := runGrid(o, jobs)
	// geo reduces one app-block of results to its geomean cycle count.
	geo := func(start int) float64 {
		var cycles []float64
		for k := range apps {
			cycles = append(cycles, float64(ms[start+k].Cycles))
		}
		return stats.GeoMean(cycles)
	}
	t := stats.NewTable("rel bandwidth", "FSOI rel perf", "mesh rel perf")
	vals := map[string]float64{}
	var fsoiBase, meshBase float64
	for i := range fsoiPoints {
		fp := fsoiPoints[i]
		fc := geo(2 * i * len(apps))
		mf := meshFracs[i]
		mc := geo(2*i*len(apps) + len(apps))
		if i == 0 {
			fsoiBase, meshBase = fc, mc
		}
		fRel := fsoiBase / fc
		mRel := meshBase / mc
		t.AddRow(fmt.Sprintf("%.0f%%", fp.frac*100), fmt.Sprintf("%.3f", fRel), fmt.Sprintf("%.3f", mRel))
		vals[fmt.Sprintf("fsoi_%.2f", fp.frac)] = fRel
		vals[fmt.Sprintf("mesh_%.2f", mf)] = mRel
	}
	var b strings.Builder
	b.WriteString(t.String())
	b.WriteString("\nboth networks degrade as bandwidth shrinks; FSOI shows less sensitivity (paper Figure 11)\n")
	return Result{ID: "fig11", Title: "Figure 11: performance vs relative bandwidth", Text: b.String(), Values: vals}
}

// Hints measures the §5.2 retransmission-hint effectiveness.
func Hints(o Options) Result {
	var correct, issued, wrong int64
	var resWith, resWithout []float64
	apps := o.suite()
	var jobs []simJob
	for _, app := range apps {
		jobs = append(jobs,
			simJob{app: app, kind: system.NetFSOI, nodes: 64},
			simJob{app: app, kind: system.NetFSOI, nodes: 64,
				mutate: func(c *system.Config) { c.FSOI.Opt.RetransmitHints = false }})
	}
	ms := runGrid(o, jobs)
	for ai := range apps {
		on, off := ms[2*ai], ms[2*ai+1]
		correct += on.FSOI.HintsCorrect
		issued += on.FSOI.HintsIssued
		wrong += on.FSOI.HintsWrong
		resWith = append(resWith, on.Latency.Resolution.Mean())
		resWithout = append(resWithout, off.Latency.Resolution.Mean())
	}
	acc := float64(correct) / float64(max64(issued, 1))
	wrongFrac := float64(wrong) / float64(max64(issued, 1))
	text := fmt.Sprintf(
		"hint accuracy: %.1f%% (paper: 94%%); wrong-winner rate: %.1f%% (paper: 2.3%%)\n"+
			"mean data resolution delay with hints %.1f vs without %.1f cycles (paper: 29 vs 41)\n",
		acc*100, wrongFrac*100, mean(resWith), mean(resWithout))
	return Result{ID: "hints", Title: "§7.3: retransmission hint effectiveness", Text: text,
		Values: map[string]float64{"accuracy": acc, "wrong": wrongFrac, "res_with": mean(resWith), "res_without": mean(resWithout)}}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// LLSC measures the boolean-subscription synchronization optimization on
// the synchronization-heavy applications.
func LLSC(o Options) Result {
	syncApps := []string{"barnes", "radiosity", "raytrace", "water-sp", "ilink", "tsp", "fmm"}
	opts := o
	opts.Apps = intersect(syncApps, o.Apps)
	var speedups []float64
	var metaCut, dataCut []float64
	t := stats.NewTable("app", "speedup", "meta cut %", "data cut %")
	// §5.1 quantifies this on the 64-way system, where spin traffic and
	// invalidation storms are N times heavier.
	apps := opts.suite()
	var jobs []simJob
	for _, app := range apps {
		jobs = append(jobs,
			simJob{app: app, kind: system.NetFSOI, nodes: 64},
			simJob{app: app, kind: system.NetFSOI, nodes: 64,
				mutate: func(c *system.Config) { c.ForceCoherentSync = true }})
	}
	ms := runGrid(o, jobs)
	for ai, app := range apps {
		with, without := ms[2*ai], ms[2*ai+1]
		sp := float64(without.Cycles) / float64(with.Cycles)
		mc := 1 - float64(with.MetaPackets)/float64(without.MetaPackets)
		dc := 1 - float64(with.DataPackets)/float64(without.DataPackets)
		speedups = append(speedups, sp)
		metaCut = append(metaCut, mc)
		dataCut = append(dataCut, dc)
		t.AddRow(app.Name, fmt.Sprintf("%.3f", sp), fmt.Sprintf("%.1f", mc*100), fmt.Sprintf("%.1f", dc*100))
	}
	var b strings.Builder
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\ngeomean speedup %.3f (paper: 1.07); meta packets cut %.1f%% (paper: 11%%), data cut %.1f%% (paper: 8%%)\n",
		stats.GeoMean(speedups), mean(metaCut)*100, mean(dataCut)*100)
	return Result{ID: "llsc", Title: "§7.3: ll/sc over the confirmation channel", Text: b.String(),
		Values: map[string]float64{"speedup": stats.GeoMean(speedups), "meta_cut": mean(metaCut), "data_cut": mean(dataCut)}}
}

func intersect(a, b []string) []string {
	if len(b) == 0 {
		return a
	}
	set := map[string]bool{}
	for _, x := range b {
		set[x] = true
	}
	var out []string
	for _, x := range a {
		if set[x] {
			out = append(out, x)
		}
	}
	if len(out) == 0 {
		return a[:1]
	}
	return out
}

// Corona compares FSOI against the corona-style crossbar at 64 nodes.
func Corona(o Options) Result {
	var ratios []float64
	t := stats.NewTable("app", "fsoi cycles", "corona cycles", "fsoi/corona speedup")
	apps := o.suite()
	var jobs []simJob
	for _, app := range apps {
		jobs = append(jobs,
			simJob{app: app, kind: system.NetFSOI, nodes: 64},
			simJob{app: app, kind: system.NetCorona, nodes: 64})
	}
	ms := runGrid(o, jobs)
	for ai, app := range apps {
		f, c := ms[2*ai], ms[2*ai+1]
		r := float64(c.Cycles) / float64(f.Cycles)
		ratios = append(ratios, r)
		t.AddRow(app.Name, fmt.Sprint(f.Cycles), fmt.Sprint(c.Cycles), fmt.Sprintf("%.3f", r))
	}
	var b strings.Builder
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\ngeomean: FSOI is %.3fx the corona-style design (paper: 1.06x)\n", stats.GeoMean(ratios))
	return Result{ID: "corona", Title: "§7.1: FSOI vs corona-style crossbar (64 nodes)", Text: b.String(),
		Values: map[string]float64{"ratio": stats.GeoMean(ratios)}}
}

// IDs lists experiment ids in paper order.
func IDs() []string {
	out := make([]string, len(Registry))
	for i, e := range Registry {
		out[i] = e.ID
	}
	sort.Strings(out)
	return out
}
