package exp

import (
	"fmt"
	"strings"

	"fsoi/internal/optnet"
	"fsoi/internal/stats"
	"fsoi/internal/system"
	"fsoi/internal/workload"
)

// Frontier sweeps the optical-topology registry (internal/optnet)
// across node counts and renders the loss/energy/latency frontier:
//
//   - an analytic half at 16/64/256/1024 nodes, where each topology's
//     worst-case insertion-loss model sets the laser launch power and
//     energy per bit (arXiv:1512.07492 methodology) — this is where the
//     waveguide crossbars' loss grows with radix while the relay-free
//     free-space design stays flat;
//   - a simulated half at 16 (and, at full scale, 64) nodes, running
//     the workload suite over every registered topology through the
//     system layer to pin latency and run time to the same names;
//   - a scale half at 256 (and, at full scale, 1024) nodes on the
//     exact sharded engine (internal/sim/shard), simulating the two
//     §7.1 contenders past the radix the serial engine could reach.
//
// The 64-node FSOI-vs-token-crossbar run-time ratio reproduces the
// paper's §7.1 Corona comparison (~1.06x) from inside the sweep.
func Frontier(o Options) Result {
	names := optnet.Names()
	vals := map[string]float64{}
	var b strings.Builder

	// Analytic half: the physical frontier.
	at := stats.NewTable("topology", "nodes", "worst loss dB", "launch/λ mW", "laser W", "energy/bit pJ")
	for _, name := range names {
		topo, _ := optnet.Get(name)
		for _, nodes := range []int{16, 64, 256, 1024} {
			r := topo.Loss(nodes)
			at.AddRow(name, fmt.Sprint(nodes),
				fmt.Sprintf("%.2f", r.WorstCaseDB),
				fmt.Sprintf("%.3f", r.LaserPowerMW),
				fmt.Sprintf("%.3f", r.TotalLaserW),
				fmt.Sprintf("%.3f", r.EnergyPerBitJ*1e12))
			vals[fmt.Sprintf("loss_%s_%d", name, nodes)] = float64(r.WorstCaseDB)
			vals[fmt.Sprintf("epb_%s_%d", name, nodes)] = float64(r.EnergyPerBitJ) * 1e12
		}
	}
	b.WriteString("Worst-case insertion loss and laser energy (analytic)\n")
	b.WriteString(at.String())

	// Simulated half: latency and run time on the same names. Benches
	// skip the 64-node grid for time, like Table4.
	simNodes := []int{16}
	if o.Scale >= 0.2 {
		simNodes = append(simNodes, 64)
	}
	var jobs []simJob
	for _, nodes := range simNodes {
		for _, name := range names {
			for _, app := range o.suite() {
				jobs = append(jobs, simJob{app: app, kind: system.NetOptical, nodes: nodes, tag: name,
					mutate: func(c *system.Config) { c.Optical = name }})
			}
		}
	}
	ms := runGrid(o, jobs)
	st := stats.NewTable("topology", "nodes", "geomean cycles", "mean pkt latency", "energy/bit pJ")
	cyc := map[string]float64{}
	idx := 0
	for _, nodes := range simNodes {
		for _, name := range names {
			var cs, lat []float64
			for range o.suite() {
				m := ms[idx]
				idx++
				cs = append(cs, float64(m.Cycles))
				lat = append(lat, m.Latency.MeanTotal())
			}
			g := stats.GeoMean(cs)
			cyc[fmt.Sprintf("%s_%d", name, nodes)] = g
			topo, _ := optnet.Get(name)
			st.AddRow(name, fmt.Sprint(nodes),
				fmt.Sprintf("%.0f", g),
				fmt.Sprintf("%.2f", mean(lat)),
				fmt.Sprintf("%.3f", topo.Loss(nodes).EnergyPerBitJ*1e12))
			vals[fmt.Sprintf("cycles_%s_%d", name, nodes)] = g
		}
	}
	b.WriteString("\nSimulated latency and run time\n")
	b.WriteString(st.String())

	// Scale half: past 64 nodes the serial engine is the bottleneck, so
	// these points run on the exact sharded engine — byte-identical to
	// serial at any shard count, which is what lets them share the
	// worker-equivalence contract of the rest of the grid. The workload
	// is scaled down with the node count so the sweep prices wall-clock,
	// not patience; 1024 nodes ride along only at full scale.
	if o.Scale >= 0.05 {
		bigNodes := []int{256}
		if o.Scale >= 0.2 {
			bigNodes = append(bigNodes, 1024)
		}
		shards := o.Shards
		if shards == 0 {
			shards = 8
		}
		bigApp, _ := workload.ByName("jacobi", o.Scale*0.04)
		bigNames := []string{"fsoi", "corona"}
		var bigJobs []simJob
		for _, nodes := range bigNodes {
			for _, name := range bigNames {
				bigJobs = append(bigJobs, simJob{app: bigApp, kind: system.NetOptical, nodes: nodes, tag: name,
					mutate: func(c *system.Config) {
						c.Optical = name
						c.Shards = shards
					}})
			}
		}
		bms := runGrid(o, bigJobs)
		bt := stats.NewTable("topology", "nodes", "shards", "cycles", "mean pkt latency", "delivered")
		idx := 0
		for _, nodes := range bigNodes {
			for _, name := range bigNames {
				m := bms[idx]
				idx++
				bt.AddRow(name, fmt.Sprint(nodes), fmt.Sprint(shards),
					fmt.Sprint(m.Cycles),
					fmt.Sprintf("%.2f", m.Latency.MeanTotal()),
					fmt.Sprint(m.Latency.Delivered))
				vals[fmt.Sprintf("cycles_%s_%d", name, nodes)] = float64(m.Cycles)
			}
		}
		fmt.Fprintf(&b, "\nScale frontier on the sharded engine (%d shards, jacobi @ %.3f)\n", shards, o.Scale*0.04)
		b.WriteString(bt.String())
	}

	// The §7.1 headline, from the largest simulated grid.
	refNodes := simNodes[len(simNodes)-1]
	ratio := cyc[fmt.Sprintf("corona_%d", refNodes)] / cyc[fmt.Sprintf("fsoi_%d", refNodes)]
	vals[fmt.Sprintf("fsoi_vs_corona_%d", refNodes)] = ratio
	fmt.Fprintf(&b, "\nFSOI runs %.3fx the token crossbar at %d nodes (paper §7.1: ~1.06x at 64),\n"+
		"and its worst-case loss stays flat in radix while every waveguide crossbar's grows\n",
		ratio, refNodes)

	return Result{
		ID:     "frontier",
		Title:  "Frontier: optical-topology loss/energy/latency sweep",
		Text:   b.String(),
		Values: vals,
	}
}
