package core

import (
	"fsoi/internal/sim"
)

// confLane models the confirmation channel as real hardware: one VCSEL
// per node running 12 mini-cycles per core cycle. Packet-receipt
// confirmations are collision-free by construction (§4.3.2: at most one
// packet per lane per slot is received, so at most one confirmation per
// lane departs per slot), but they still occupy mini-cycles; boolean
// subscription traffic (§5.1) rides *reserved* mini-cycles, and the
// reservation table here tracks which of the 12 offsets each (owner,
// subscriber) pair has claimed — the paper's "the information is encoded
// in the relative position of the mini-cycle".
type confLane struct {
	miniPerCycle int
	// busyUntil, per source node, is the next free mini-cycle index
	// (absolute: cycle*miniPerCycle + offset).
	busyUntil []int64
	// reserved[owner] maps a mini-cycle offset to the subscriber that
	// claimed it; offset 0 is never reserved (receipt confirmations get
	// priority there).
	reserved []map[int]int
	// nextOffset rotates reservation offsets per owner.
	nextOffset []int
	// stats is indexed by the owning node, so every mutation happens in
	// the owner's context and the totals merge at read time.
	stats []confLaneStats
}

// confLaneStats measures one node's channel occupancy.
type confLaneStats struct {
	MiniUsed     int64 // mini-cycles consumed by any transmission
	Reservations int64 // active subscription slots ever granted
	Denied       int64 // reservation requests denied (all offsets taken)
}

func newConfLane(nodes, miniPerCycle int) *confLane {
	c := &confLane{
		miniPerCycle: miniPerCycle,
		busyUntil:    make([]int64, nodes),
		reserved:     make([]map[int]int, nodes),
		nextOffset:   make([]int, nodes),
		stats:        make([]confLaneStats, nodes),
	}
	for i := range c.reserved {
		c.reserved[i] = make(map[int]int)
	}
	return c
}

// sendDelay returns the extra whole cycles (beyond the base confirmation
// delay) a transmission from src must wait for a free mini-cycle, and
// marks the channel busy. With 12 mini-cycles per cycle the channel
// almost never backs up; the accounting exists so the utilization claim
// is measured rather than assumed.
func (c *confLane) sendDelay(src int, now sim.Cycle, minis int) sim.Cycle {
	abs := int64(now) * int64(c.miniPerCycle)
	start := abs
	if c.busyUntil[src] > start {
		start = c.busyUntil[src]
	}
	c.busyUntil[src] = start + int64(minis)
	c.stats[src].MiniUsed += int64(minis)
	return sim.Cycle((start - abs) / int64(c.miniPerCycle))
}

// reserve grants subscriber a mini-cycle offset on owner's confirmation
// lane, returning the offset or -1 when every offset is taken. An
// existing reservation by the same subscriber is returned unchanged.
func (c *confLane) reserve(owner, subscriber int) int {
	// Scan offsets in numeric order rather than ranging the reservation
	// map: an existing reservation must be found the same way every run.
	for off := 1; off < c.miniPerCycle; off++ {
		if sub, ok := c.reserved[owner][off]; ok && sub == subscriber {
			return off
		}
	}
	for i := 1; i < c.miniPerCycle; i++ {
		off := 1 + (c.nextOffset[owner]+i)%(c.miniPerCycle-1)
		if _, taken := c.reserved[owner][off]; !taken {
			c.reserved[owner][off] = subscriber
			c.nextOffset[owner] = off
			c.stats[owner].Reservations++
			return off
		}
	}
	c.stats[owner].Denied++
	return -1
}

// release frees a subscriber's reservation on owner's lane.
func (c *confLane) release(owner, subscriber int) {
	for off, sub := range c.reserved[owner] {
		if sub == subscriber {
			delete(c.reserved[owner], off)
			return
		}
	}
}

// Utilization reports the fraction of mini-cycles used over the run,
// summing the per-owner tallies in node order.
func (c *confLane) Utilization(cycles sim.Cycle, nodes int) float64 {
	total := int64(cycles) * int64(c.miniPerCycle) * int64(nodes)
	if total == 0 {
		return 0
	}
	var used int64
	for i := range c.stats {
		used += c.stats[i].MiniUsed
	}
	return float64(used) / float64(total)
}
