// Package core implements the paper's primary contribution: the
// free-space optical interconnect (FSOI). Every node owns dedicated
// per-destination VCSEL lanes (or a steerable phase array at 64 nodes)
// and transmits without any arbitration; packets aimed at the same
// receiver in the same slot collide (the photodetector sees the OR of the
// beams), collisions are detected through the PID/~PID header encoding,
// and senders retransmit under the W=2.7 / B=1.1 exponential backoff.
// A dedicated confirmation lane — collision-free by construction —
// acknowledges clean receipt two cycles after delivery and carries the
// §5 protocol optimizations (ack elision, boolean subscription,
// retransmission winner hints).
package core

import "fmt"

// Lane indexes the two slotted traffic lanes.
type Lane int

const (
	// LaneMeta carries 72-bit control packets (3 VCSELs -> 2-cycle slots).
	LaneMeta Lane = iota
	// LaneData carries 360-bit line packets (6 VCSELs -> 5-cycle slots).
	LaneData
	numLanes
)

// String names the lane.
func (l Lane) String() string {
	if l == LaneMeta {
		return "meta"
	}
	return "data"
}

// Optimizations toggles the §5 mechanisms individually so their effect
// can be measured (Figures 9 and 10).
type Optimizations struct {
	// AckElision uses the confirmation of an invalidation's receipt as
	// the commitment to apply it, eliminating explicit ack packets
	// (§5.1). The coherence layer consults this through the network's
	// SupportsConfirmation capability.
	AckElision bool
	// BooleanSubscription carries ll/sc boolean values over reserved
	// confirmation mini-cycles (§5.1).
	BooleanSubscription bool
	// ReceiverScheduling spaces requests so that their expected data
	// replies land in unreserved receiver slots (§5.2).
	ReceiverScheduling bool
	// WritebackSplit announces writebacks so their data packets arrive
	// in scheduled slots instead of unexpectedly (§5.2).
	WritebackSplit bool
	// RetransmitHints lets a data-lane receiver guess the collision
	// participants and beam a winner notification so one sender retries
	// immediately (§5.2).
	RetransmitHints bool
}

// AllOptimizations enables every §5 mechanism.
func AllOptimizations() Optimizations {
	return Optimizations{
		AckElision:          true,
		BooleanSubscription: true,
		ReceiverScheduling:  true,
		WritebackSplit:      true,
		RetransmitHints:     true,
	}
}

// Config parameterizes the FSOI network.
type Config struct {
	Nodes        int
	MetaVCSELs   int // transmit VCSELs in the meta lane (Table 3: 3)
	DataVCSELs   int // transmit VCSELs in the data lane (Table 3: 6)
	BitsPerCycle int // line bits per VCSEL per core cycle (40 Gbps @ 3.3 GHz: 12)
	Receivers    int // receivers per lane per node (Table 3: 2)
	ConfirmDelay int // cycles from clean receipt to confirmation (2)
	WindowW      float64
	BackoffB     float64
	OutQueue     int // packets per lane outgoing queue (8)
	PhaseArray   bool
	PhaseSetup   int // extra cycle(s) when re-steering the array
	Opt          Optimizations
	// HintAccuracy is the probability that a receiver correctly
	// identifies one colliding sender from the corrupted PID pattern and
	// its outstanding-request knowledge (§7.3 measures 94%).
	HintAccuracy float64
	// WrongWinner is the probability a hint wrongly selects a node that
	// then believes it won (§7.3 measures 2.3%).
	WrongWinner float64
	// MaxBackoffSlots caps the exponential backoff window W*B^(r-1) (the
	// DESIGN.md §5 guard rail). Zero means the historical 256-slot
	// default, so hand-built configs keep working.
	MaxBackoffSlots float64
	// ConfirmTimeoutSlots is how many lane slots a sender waits for a
	// missing confirmation before retransmitting (the fault-injection
	// recovery path; only exercised when a FaultModel drops
	// confirmations). Zero means the 4-slot default.
	ConfirmTimeoutSlots int
	// MaxRetries, when positive, makes the network give up on a packet
	// once it has failed that many retransmissions: its backoff window
	// has long saturated at MaxBackoffSlots, so further attempts only
	// congest the lane. The packet is dropped with a terminal lifecycle
	// event and a DropFunc callback instead of retrying forever. Zero
	// keeps the historical retry-forever behavior, so every existing
	// configuration is bit-identical.
	MaxRetries int
}

// PaperConfig returns the evaluation configuration for the given node
// count: dedicated arrays at 16 nodes, phase-arrayed at 64.
func PaperConfig(nodes int) Config {
	return Config{
		Nodes:        nodes,
		MetaVCSELs:   3,
		DataVCSELs:   6,
		BitsPerCycle: 12,
		Receivers:    2,
		ConfirmDelay: 2,
		WindowW:      2.7,
		BackoffB:     1.1,
		OutQueue:     8,
		PhaseArray:   nodes > 16,
		PhaseSetup:   1,
		Opt:          AllOptimizations(),
		HintAccuracy: 0.94,
		WrongWinner:  0.023,

		MaxBackoffSlots:     256,
		ConfirmTimeoutSlots: 4,
	}
}

// SlotCycles returns the slot length of a lane in core cycles: the
// serialization time of its packet at the configured lane width.
func (c Config) SlotCycles(l Lane) int {
	bits, vcsels := 72, c.MetaVCSELs
	if l == LaneData {
		bits, vcsels = 360, c.DataVCSELs
	}
	perCycle := vcsels * c.BitsPerCycle
	return (bits + perCycle - 1) / perCycle
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Nodes < 2:
		return fmt.Errorf("core: need at least 2 nodes, have %d", c.Nodes)
	case c.MetaVCSELs < 1 || c.DataVCSELs < 1:
		return fmt.Errorf("core: lanes need at least one VCSEL")
	case c.BitsPerCycle < 1:
		return fmt.Errorf("core: BitsPerCycle must be positive")
	case c.Receivers < 1:
		return fmt.Errorf("core: need at least one receiver per lane")
	case c.WindowW < 1:
		return fmt.Errorf("core: backoff window below one slot")
	case c.BackoffB < 1:
		return fmt.Errorf("core: backoff base must be >= 1")
	case c.OutQueue < 1:
		return fmt.Errorf("core: outgoing queue must hold at least one packet")
	case c.MaxBackoffSlots < 0:
		return fmt.Errorf("core: negative backoff window cap")
	case c.ConfirmTimeoutSlots < 0:
		return fmt.Errorf("core: negative confirmation timeout")
	case c.MaxRetries < 0:
		return fmt.Errorf("core: negative retry limit")
	}
	return nil
}

// TotalVCSELs reports the transmit VCSEL count of the whole system,
// the N*(N-1)*k sizing argument of §4.1 (plus one confirmation VCSEL
// lane per node).
func (c Config) TotalVCSELs() int {
	k := c.MetaVCSELs + c.DataVCSELs
	if c.PhaseArray {
		// A steerable array replaces the per-destination fan-out.
		return c.Nodes * (k + 1)
	}
	return c.Nodes*(c.Nodes-1)*k + c.Nodes
}
