package core

import (
	"testing"

	"fsoi/internal/noc"
	"fsoi/internal/sim"
)

// stubFault is a hand-steerable FaultModel for protocol-level tests.
type stubFault struct {
	ber      float64
	dropLeft int // confirmations to drop before passing the rest
	ext      [numLanes]int
}

func (s *stubFault) BitErrorRate(src int, now sim.Cycle) float64 { return s.ber }
func (s *stubFault) SlotExtension(src int, l Lane) int           { return s.ext[l] }
func (s *stubFault) DropConfirm(src, dst int, now sim.Cycle) bool {
	if s.dropLeft > 0 {
		s.dropLeft--
		return true
	}
	return false
}

func TestConfirmDropRecoversByTimeout(t *testing.T) {
	n, engine, delivered, confirmed := testNet(t, basicConfig())
	n.SetFaultModel(&stubFault{dropLeft: 1})
	p := &noc.Packet{Src: 1, Dst: 2, Type: noc.Meta}
	if !n.Send(p) {
		t.Fatal("send rejected")
	}
	engine.Run(200)
	// The payload must reach the coherence layer exactly once (the
	// retransmitted copy is deduplicated) and the sender must still end
	// up confirmed — recovery, not silent loss.
	if len(*delivered) != 1 {
		t.Fatalf("delivered %d times, want exactly 1 (dedup)", len(*delivered))
	}
	if len(*confirmed) != 1 {
		t.Fatalf("confirmed %d times, want 1 after timeout retransmission", len(*confirmed))
	}
	if p.Retries != 1 {
		t.Fatalf("packet records %d retries, want 1", p.Retries)
	}
	st := n.Stats()
	if st.ConfirmDrops != 1 || st.TimeoutRetransmits != 1 || st.DuplicateDeliveries != 1 {
		t.Fatalf("counters drops=%d timeouts=%d dups=%d, want 1/1/1",
			st.ConfirmDrops, st.TimeoutRetransmits, st.DuplicateDeliveries)
	}
}

func TestConfirmDropDoesNotWedgeUnderLoad(t *testing.T) {
	n, engine, delivered, _ := testNet(t, basicConfig())
	n.SetFaultModel(&stubFault{dropLeft: 50})
	sent := 0
	for cyc := 0; cyc < 2000; cyc += 2 {
		src := (cyc / 2) % 8
		dst := 8 + (cyc/2)%4
		if n.Send(&noc.Packet{Src: src, Dst: dst, Type: noc.Meta}) {
			sent++
		}
		engine.Run(2)
	}
	engine.Run(2000)
	if len(*delivered) != sent {
		t.Fatalf("delivered %d of %d with confirmation drops", len(*delivered), sent)
	}
	if n.Stats().ConfirmDrops != 50 {
		t.Fatalf("recorded %d drops, want 50", n.Stats().ConfirmDrops)
	}
}

func TestSlotExtensionDelaysDelivery(t *testing.T) {
	n, engine, delivered, _ := testNet(t, basicConfig())
	n.SetFaultModel(&stubFault{ext: [numLanes]int{0, 3}})
	p := &noc.Packet{Src: 1, Dst: 2, Type: noc.Data}
	n.Send(p)
	engine.Run(50)
	if len(*delivered) != 1 {
		t.Fatal("degraded node must still deliver")
	}
	// Failed VCSELs stretch serialization: 5-cycle slot + 3 extra.
	if p.NetworkDelay != 8 {
		t.Fatalf("network delay = %d, want 8 (5 + 3 degradation)", p.NetworkDelay)
	}
	if n.Stats().DegradedTransmissions != 1 {
		t.Fatal("degraded transmission not counted")
	}
}

func TestMetaCorruptionIsAlwaysHeader(t *testing.T) {
	// A meta packet is all PID/~PID-protected header, so every injected
	// corruption must surface as a misdetected collision — the paper's
	// own detection path — and never as a CRC error.
	n, engine, delivered, _ := testNet(t, basicConfig())
	n.SetFaultModel(&stubFault{ber: 0.02})
	sent := 0
	for cyc := 0; cyc < 2000; cyc += 2 {
		if n.Send(&noc.Packet{Src: 1, Dst: 2, Type: noc.Meta}) {
			sent++
		}
		engine.Run(2)
	}
	engine.Run(4000)
	if len(*delivered) != sent {
		t.Fatalf("delivered %d of %d", len(*delivered), sent)
	}
	st := n.Stats()
	if st.HeaderCorruptions == 0 {
		t.Fatal("2% BER over 72-bit packets must corrupt some headers")
	}
	if st.PayloadCRCErrors != 0 {
		t.Fatalf("meta corruption produced %d CRC errors, want 0", st.PayloadCRCErrors)
	}
	if st.Collisions[LaneMeta] < st.HeaderCorruptions {
		t.Fatal("header corruptions must be counted as collisions")
	}
}

func TestDataCorruptionSplitsHeaderAndPayload(t *testing.T) {
	n, engine, delivered, _ := testNet(t, basicConfig())
	n.SetFaultModel(&stubFault{ber: 0.005})
	sent := 0
	for cyc := 0; cyc < 4000; cyc += 5 {
		if n.Send(&noc.Packet{Src: 1, Dst: 2, Type: noc.Data}) {
			sent++
		}
		engine.Run(5)
	}
	engine.Run(4000)
	if len(*delivered) != sent {
		t.Fatalf("delivered %d of %d", len(*delivered), sent)
	}
	st := n.Stats()
	// 360-bit data packets are 20% header: with enough corruptions both
	// paths must fire, and payload (CRC) errors dominate.
	if st.HeaderCorruptions == 0 || st.PayloadCRCErrors == 0 {
		t.Fatalf("want both kinds, got header=%d payload=%d",
			st.HeaderCorruptions, st.PayloadCRCErrors)
	}
	if st.PayloadCRCErrors <= st.HeaderCorruptions {
		t.Fatalf("payload errors (%d) should outnumber header errors (%d) 4:1",
			st.PayloadCRCErrors, st.HeaderCorruptions)
	}
}

func TestBackoffCapAndTimeoutDefaults(t *testing.T) {
	zero := basicConfig()
	zero.MaxBackoffSlots = 0
	zero.ConfirmTimeoutSlots = 0
	n, _, _, _ := testNet(t, zero)
	if n.backoffCap() != 256 {
		t.Fatalf("zero config backoff cap = %g, want historical 256", n.backoffCap())
	}
	if n.confirmTimeoutSlots() != 4 {
		t.Fatalf("zero config confirm timeout = %d, want 4", n.confirmTimeoutSlots())
	}
	custom := basicConfig()
	custom.MaxBackoffSlots = 64
	custom.ConfirmTimeoutSlots = 9
	n2, _, _, _ := testNet(t, custom)
	if n2.backoffCap() != 64 || n2.confirmTimeoutSlots() != 9 {
		t.Fatalf("custom caps not honored: %g, %d", n2.backoffCap(), n2.confirmTimeoutSlots())
	}
	for _, bad := range []Config{
		func() Config { c := basicConfig(); c.MaxBackoffSlots = -1; return c }(),
		func() Config { c := basicConfig(); c.ConfirmTimeoutSlots = -1; return c }(),
	} {
		if bad.Validate() == nil {
			t.Fatal("negative cap/timeout must fail validation")
		}
	}
}
