package core

import "fsoi/internal/sim"

// AdversaryModel lets an attack roster (internal/adversary) tamper with
// the optical layer on the two paths a compromised node can reach:
// header spoofing at arrival resolution and confirmation starvation at
// clean delivery. Like FaultModel, the network never constructs one —
// with no model attached the adversary paths are never taken, no extra
// randomness is drawn, and behaviour is bit-identical to a build
// without adversary support. Implementations must be deterministic
// under the named-RNG-stream discipline; the network queries them in
// simulation order, always passing the executing node's own stream.
type AdversaryModel interface {
	// SpoofedHeader reports whether the arrival from src carries a
	// forged PID/~PID header, misdetected as a collision. Called from
	// the receiving node's context with that node's stream.
	SpoofedHeader(src int, at sim.Cycle, rng *sim.RNG) bool
	// StarveConfirm reports whether the confirmation beam for a packet
	// cleanly received at dst is suppressed, parking the sender on the
	// confirmation-timeout retransmission path. Called from the
	// receiving node's context with that node's stream.
	StarveConfirm(dst int, at sim.Cycle, rng *sim.RNG) bool
}

// SetAdversaryModel attaches an attack roster. Passing nil detaches it.
func (n *Network) SetAdversaryModel(am AdversaryModel) { n.adv = am }

// LinkObserver receives per-link contention observations — collision
// events at the receiver and backoff depths at the sender — feeding the
// detection layer's rate and depth tables (obs.Registry implements it).
type LinkObserver interface {
	NoteCollision(src, dst int)
	NoteBackoff(src, dst, attempt int)
}

// SetLinkObservers attaches one contention sink per node; observations
// are always recorded into the executing node's own sink, so per-node
// sinks merged in node order aggregate identically at every shard and
// worker count. Passing nil detaches tracking.
func (n *Network) SetLinkObservers(sinks []LinkObserver) { n.linkObs = sinks }
