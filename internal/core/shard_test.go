package core

import (
	"testing"

	"fsoi/internal/noc"
	"fsoi/internal/sim"
	"fsoi/internal/sim/shard"
)

// TestWritebackReservationExpiresOnHomeShard is the regression test for
// the expireReservation hazard fsoilint's shardsafety pass flagged: the
// §5.2 writeback split reserves a data slot in the *home* node's
// receiver state, and the expiry event used to be scheduled with a bare
// engine.At — running it on whichever shard processed the sender
// instead of the shard owning the home node. The expiry now routes
// through noc.ScheduleAt, so on a sharded engine it must be a recorded
// handoff and must still release the reservation.
func TestWritebackReservationExpiresOnHomeShard(t *testing.T) {
	cfg := PaperConfig(16)
	cfg.Opt = Optimizations{WritebackSplit: true}
	e := shard.New(2)
	e.AssignNodes(cfg.Nodes)
	n := New(cfg, e, sim.NewRNG(1))
	e.SetLookahead(n.Lookahead())
	n.SetBitErrorRate(0)
	n.SetDelivery(func(*noc.Packet, sim.Cycle) {})
	e.Register(sim.TickFunc(n.Tick))

	// Src on shard 0, home (Dst) on shard 1: the reservation and its
	// expiry belong to the other shard.
	src, home := 1, 9
	if e.NodeShard(src) == e.NodeShard(home) {
		t.Fatalf("nodes %d and %d landed on the same shard; pick farther apart", src, home)
	}
	before := e.Handoffs()
	if !n.Send(&noc.Packet{Src: src, Dst: home, Type: noc.Data, IsWriteback: true}) {
		t.Fatal("writeback send rejected")
	}
	// The announcement rides to the home node (ConfirmDelay cycles);
	// only then does the home node's own context make the reservation.
	e.Run(4)
	hs := n.nodes[home]
	if len(hs.reserved) == 0 {
		t.Fatal("writeback announce did not reserve a slot at the home node")
	}
	e.Run(5000)
	if len(hs.reserved) != 0 {
		t.Fatalf("home-node reservation never expired: %v", hs.reserved)
	}
	if e.Handoffs() == before {
		t.Fatal("no cross-shard handoffs recorded — expireReservation is bypassing noc.ScheduleAt again")
	}
}

// TestReceiverSchedulingReservationExpires covers the sibling path: a
// request with receiver scheduling reserves the reply slot at its own
// node, and the expiry routed through noc.ScheduleAt with the source
// node must still clean it up on the local shard.
func TestReceiverSchedulingReservationExpires(t *testing.T) {
	cfg := PaperConfig(16)
	cfg.Opt = Optimizations{ReceiverScheduling: true}
	e := shard.New(2)
	e.AssignNodes(cfg.Nodes)
	n := New(cfg, e, sim.NewRNG(1))
	e.SetLookahead(n.Lookahead())
	n.SetBitErrorRate(0)
	n.SetDelivery(func(*noc.Packet, sim.Cycle) {})
	e.Register(sim.TickFunc(n.Tick))

	src := 2
	if !n.Send(&noc.Packet{Src: src, Dst: 11, Type: noc.Meta, ExpectsDataReply: true}) {
		t.Fatal("request send rejected")
	}
	ss := n.nodes[src]
	if len(ss.reserved) == 0 {
		t.Fatal("receiver scheduling did not reserve the reply slot")
	}
	e.Run(5000)
	if len(ss.reserved) != 0 {
		t.Fatalf("reply-slot reservation never expired: %v", ss.reserved)
	}
}
