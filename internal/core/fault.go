package core

import "fsoi/internal/sim"

// FaultModel lets an external injector (internal/fault) perturb the
// optical layer. The network never constructs one: with no model
// attached the fault paths are never taken, no extra randomness is
// drawn, and behaviour is bit-identical to a build without fault
// support. Implementations must be deterministic under the repository's
// named-RNG-stream discipline; the network queries them in simulation
// order only.
type FaultModel interface {
	// BitErrorRate returns the instantaneous per-bit error probability
	// for transmissions from node src (margin penalty, thermal droop).
	BitErrorRate(src int, now sim.Cycle) float64
	// SlotExtension returns the extra serialization cycles node src pays
	// on lane l because failed VCSELs reduced its effective data rate.
	SlotExtension(src int, l Lane) int
	// DropConfirm reports whether the confirmation beam for a cleanly
	// received packet from src to dst is lost, forcing src onto the
	// confirmation-timeout retransmission path.
	DropConfirm(src, dst int, now sim.Cycle) bool
}

// SetFaultModel attaches a fault injector. Passing nil detaches it.
func (n *Network) SetFaultModel(fm FaultModel) { n.fault = fm }

// pidHeaderBits is the PID/~PID-protected header length. A meta packet
// is all header (72 bits of identification and command); a data packet
// carries the same 72-bit header ahead of its payload. Errors landing in
// the header break the PID/~PID match and are misdetected as collisions
// (§4.3.1 — the paper's own detection mechanism, now exercised); errors
// in the payload pass the header check and are caught by the modelled
// CRC instead.
const pidHeaderBits = 72

// backoffCap returns the effective backoff-window cap in slots.
func (n *Network) backoffCap() float64 {
	if n.cfg.MaxBackoffSlots > 0 {
		return n.cfg.MaxBackoffSlots
	}
	return 256
}

// confirmTimeoutSlots returns the effective confirmation timeout.
func (n *Network) confirmTimeoutSlots() int64 {
	if n.cfg.ConfirmTimeoutSlots > 0 {
		return int64(n.cfg.ConfirmTimeoutSlots)
	}
	return 4
}
