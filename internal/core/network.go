package core

import (
	"math"

	"fsoi/internal/noc"
	"fsoi/internal/obs"
	"fsoi/internal/sim"
)

// CollisionKind classifies data-lane collisions for Figure 10.
type CollisionKind int

const (
	// CollisionRetransmission involves at least one retried packet.
	CollisionRetransmission CollisionKind = iota
	// CollisionWriteback involves an eviction data packet.
	CollisionWriteback
	// CollisionMemory involves a memory-controller packet.
	CollisionMemory
	// CollisionReply is between ordinary data replies.
	CollisionReply
	numCollisionKinds
)

// String names the collision kind.
func (k CollisionKind) String() string {
	switch k {
	case CollisionRetransmission:
		return "retransmission"
	case CollisionWriteback:
		return "writeback"
	case CollisionMemory:
		return "memory"
	default:
		return "reply"
	}
}

// ConfirmFunc is invoked at the sender when the confirmation beam for a
// cleanly received packet arrives (receipt + ConfirmDelay cycles).
type ConfirmFunc func(p *noc.Packet, now sim.Cycle)

// DropFunc is invoked when the network permanently gives up on a packet
// after Config.MaxRetries failed retransmissions. The network holds no
// further reference to the packet once the callback returns.
type DropFunc func(p *noc.Packet, now sim.Cycle)

// BitFunc receives a boolean-subscription update carried on a reserved
// confirmation mini-cycle.
type BitFunc func(src, dst int, tag uint64, value bool, now sim.Cycle)

// transmission is one attempt-carrying packet instance.
type transmission struct {
	pkt          *noc.Packet
	src          int
	attempt      int       // 0 on the first transmission
	firstSlotEnd sim.Cycle // end of the first attempted slot
	readyCycle   sim.Cycle // when it became eligible to transmit
	steerExtra   int       // phase-array retarget penalty this attempt
	degradeExtra int       // VCSEL-failure serialization penalty this attempt
	winner       bool      // selected by a retransmission hint
	retrySlot    int64     // earliest slot index for the next attempt
	delivered    bool      // payload landed but the confirmation was lost
}

// nodeState is the per-node transmit machinery.
type nodeState struct {
	queue     [numLanes][]*noc.Packet
	notBefore map[*noc.Packet]sim.Cycle // scheduling holds (spacing, writeback split)
	retries   [numLanes][]*transmission
	lastDst   [numLanes]int

	// Receiver-side reservation table for the data lane: slot index ->
	// reservations (receiver scheduling + writeback split).
	reserved map[int64]int

	// Outstanding requests expecting data replies, per responder, used
	// to estimate reply timing and to generate collision hints.
	expecting map[int][]sim.Cycle
	replyEWMA float64
}

// slotKey identifies one receiver in one slot.
type slotKey struct {
	dst  int
	lane Lane
	rcv  int
	slot int64
}

// Stats carries FSOI-specific measurements beyond noc.LatencyStats.
type Stats struct {
	Attempts       [numLanes]int64 // transmissions including retries
	Collided       [numLanes]int64 // attempts that ended in a collision
	Collisions     [numLanes]int64 // collision events (>= 2 attempts each)
	Delivered      [numLanes]int64
	SlotsObserved  [numLanes]int64 // node-slots elapsed
	DataByKind     [numCollisionKinds]int64
	HintsIssued    int64
	HintsCorrect   int64
	HintsWrong     int64 // wrong node believed it won
	ConfirmBits    int64 // boolean-subscription mini-cycle uses
	ConfirmSignals int64 // packet confirmations sent
	BitErrors      int64
	Dropped        [numLanes]int64 // packets abandoned after MaxRetries failed attempts
	ScheduledHolds int64           // packets delayed by receiver scheduling / wb split

	// Fault-injection counters (all zero unless a FaultModel is attached).
	HeaderCorruptions     int64 // bit errors in the PID/~PID header: misdetected collisions
	PayloadCRCErrors      int64 // bit errors caught by the payload CRC
	ConfirmDrops          int64 // confirmation beams lost
	TimeoutRetransmits    int64 // retransmissions launched by the confirmation timeout
	DuplicateDeliveries   int64 // re-received packets discarded at the receiver
	DegradedTransmissions int64 // attempts stretched by failed VCSELs
}

// TransmissionProbability reports attempts per node per slot for a lane,
// the x-axis of Figure 9.
func (s *Stats) TransmissionProbability(l Lane) float64 {
	if s.SlotsObserved[l] == 0 {
		return 0
	}
	return float64(s.Attempts[l]) / float64(s.SlotsObserved[l])
}

// CollisionRate reports the fraction of attempts that collided, the
// y-axis of Figure 9.
func (s *Stats) CollisionRate(l Lane) float64 {
	if s.Attempts[l] == 0 {
		return 0
	}
	return float64(s.Collided[l]) / float64(s.Attempts[l])
}

// RetransmissionRate reports extra attempts per delivered packet on a
// lane — the fault sweep's degradation metric: 0 when every packet lands
// first try, 1 when packets need two attempts on average.
func (s *Stats) RetransmissionRate(l Lane) float64 {
	if s.Delivered[l] == 0 {
		return 0
	}
	return float64(s.Attempts[l]-s.Delivered[l]) / float64(s.Delivered[l])
}

// Network is the FSOI interconnect.
type Network struct {
	cfg       Config
	engine    sim.Scheduler
	rng       *sim.RNG
	deliverFn noc.DeliveryFunc
	confirmFn ConfirmFunc
	bitFn     BitFunc
	dropFn    DropFunc
	obs       *obs.Recorder // nil unless lifecycle tracing is on
	lat       noc.LatencyStats
	stats     Stats
	nodes     []*nodeState
	slots     map[slotKey][]*transmission
	conf      *confLane
	ber       float64    // per-bit error probability on the signaling chain
	fault     FaultModel // nil unless an injector is attached
}

// New builds an FSOI network over the engine; it panics on an invalid
// configuration (configs are produced by code, not user input).
func New(cfg Config, engine sim.Scheduler, rng *sim.RNG) *Network {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := &Network{
		cfg:    cfg,
		engine: engine,
		rng:    rng.NewStream("fsoi"),
		slots:  make(map[slotKey][]*transmission),
		conf:   newConfLane(cfg.Nodes, cfg.BitsPerCycle),
		ber:    1e-10,
	}
	n.nodes = make([]*nodeState, cfg.Nodes)
	for i := range n.nodes {
		n.nodes[i] = &nodeState{
			notBefore: make(map[*noc.Packet]sim.Cycle),
			reserved:  make(map[int64]int),
			expecting: make(map[int][]sim.Cycle),
			replyEWMA: 30,
		}
		for l := range n.nodes[i].lastDst {
			n.nodes[i].lastDst[l] = -1
		}
	}
	return n
}

// SetBitErrorRate overrides the default 1e-10 signaling BER; §4.3.1
// argues the collision mechanism lets BER relax to ~1e-5 with no
// tangible performance impact, which the failure-injection tests verify.
func (n *Network) SetBitErrorRate(ber float64) { n.ber = ber }

// Name identifies the configuration.
func (n *Network) Name() string { return "fsoi" }

// LatencyStats exposes the per-packet latency measurements.
func (n *Network) LatencyStats() *noc.LatencyStats { return &n.lat }

// Lookahead declares FSOI's conservative cross-shard window for the
// sharded engine: the fixed confirmation delay (+2 cycles in the
// paper). Every cross-node event the network schedules — slot
// resolution (one slot length, ≥ ConfirmDelay at paper widths),
// delivery (same-shard by placement), and confirmation (exactly
// ConfirmDelay) — lands at least this far ahead.
func (n *Network) Lookahead() sim.Cycle { return sim.Cycle(n.cfg.ConfirmDelay) }

// Stats exposes FSOI-specific counters.
func (n *Network) Stats() *Stats { return &n.stats }

// SetDelivery installs the destination callback.
func (n *Network) SetDelivery(fn noc.DeliveryFunc) { n.deliverFn = fn }

// SetConfirmDelivery installs the sender-side confirmation callback used
// for point-to-point ordering and ack elision.
func (n *Network) SetConfirmDelivery(fn ConfirmFunc) { n.confirmFn = fn }

// SetBitDelivery installs the boolean-subscription callback.
func (n *Network) SetBitDelivery(fn BitFunc) { n.bitFn = fn }

// SetDropDelivery installs the terminal-drop callback (see
// Config.MaxRetries). Without one, dropped packets simply vanish from
// the network's bookkeeping (the Dropped counters still tally them).
func (n *Network) SetDropDelivery(fn DropFunc) { n.dropFn = fn }

// SetObserver attaches a lifecycle-event recorder. Passing nil detaches
// it; with no recorder attached every emission site is a single nil
// check and the transmit path allocates nothing extra.
func (n *Network) SetObserver(r *obs.Recorder) { n.obs = r }

// observe builds the common fields of a lifecycle event for one
// transmission.
func (n *Network) observe(kind obs.Kind, tx *transmission, l Lane, at sim.Cycle, aux int64) {
	n.obs.Emit(obs.Event{
		At: at, Kind: kind, ID: tx.pkt.ID, Aux: aux,
		Src: int32(tx.src), Dst: int32(tx.pkt.Dst),
		Attempt: int32(tx.attempt), Class: uint8(tx.pkt.Type), Lane: int8(l),
	})
}

// SupportsConfirmation reports that this network confirms clean packet
// receipt in hardware, enabling ack elision.
func (n *Network) SupportsConfirmation() bool { return n.cfg.Opt.AckElision }

// SupportsBooleanSubscription reports mini-cycle boolean updates.
func (n *Network) SupportsBooleanSubscription() bool {
	return n.cfg.Opt.BooleanSubscription
}

// laneFor classifies a packet onto its lane.
func laneFor(p *noc.Packet) Lane {
	if p.Type == noc.Data {
		return LaneData
	}
	return LaneMeta
}

// Send enqueues a packet on its lane's outgoing queue.
func (n *Network) Send(p *noc.Packet) bool {
	if p.Src == p.Dst {
		// Same-node traffic short-circuits through the local port in one
		// cycle; the optical layer is never involved, but the sender
		// still sees a (trivially successful) confirmation.
		p.Created = n.engine.Now()
		p.NetworkDelay = 1
		n.engine.After(1, func(now sim.Cycle) {
			n.lat.Record(p)
			if n.deliverFn != nil {
				n.deliverFn(p, now)
			}
		})
		n.engine.After(1+sim.Cycle(n.cfg.ConfirmDelay), func(now sim.Cycle) {
			if n.confirmFn != nil {
				n.confirmFn(p, now)
			}
		})
		return true
	}
	lane := laneFor(p)
	ns := n.nodes[p.Src]
	if len(ns.queue[lane]) >= n.cfg.OutQueue {
		return false
	}
	p.Created = n.engine.Now()
	n.schedulePacket(ns, p, lane)
	ns.queue[lane] = append(ns.queue[lane], p)
	return true
}

// schedulePacket applies the §5.2 scheduling optimizations, possibly
// recording a not-before cycle for the packet.
func (n *Network) schedulePacket(ns *nodeState, p *noc.Packet, lane Lane) {
	now := n.engine.Now()
	dataSlot := int64(n.cfg.SlotCycles(LaneData))
	switch {
	case lane == LaneMeta && p.ExpectsDataReply && n.cfg.Opt.ReceiverScheduling:
		// Reserve the most likely reply slot at our own receiver; if it
		// is taken, delay the request until the estimate lands free.
		est := int64(now) + int64(ns.replyEWMA)
		slot := est / dataSlot
		hold := sim.Cycle(0)
		for i := 0; ns.reserved[slot] > 0 && i < 4; i++ {
			slot++
			hold += sim.Cycle(dataSlot)
		}
		ns.reserved[slot]++
		n.expireReservation(p.Src, ns, slot)
		if hold > 0 {
			ns.notBefore[p] = now + hold
			n.stats.ScheduledHolds++
		}
		ns.expecting[p.Dst] = append(ns.expecting[p.Dst], now)
	case lane == LaneData && p.IsWriteback && n.cfg.Opt.WritebackSplit:
		// Split transaction: announce the writeback and land it in a
		// free slot at the home node. The 2-cycle announce ride is the
		// handshake cost.
		home := n.nodes[p.Dst]
		slot := (int64(now)+int64(n.cfg.ConfirmDelay))/dataSlot + 1
		hold := sim.Cycle(n.cfg.ConfirmDelay)
		for i := 0; home.reserved[slot] > 0 && i < 4; i++ {
			slot++
			hold += sim.Cycle(dataSlot)
		}
		home.reserved[slot]++
		n.expireReservation(p.Dst, home, slot)
		ns.notBefore[p] = now + hold
		n.stats.ScheduledHolds++
	}
}

// expireReservation drops a reservation shortly after its slot passes.
// ns can be any node's receiver state — the writeback split reserves at
// the *home* node — so the expiry must fire on the shard owning that
// node, not on whichever shard ran the sender.
func (n *Network) expireReservation(node int, ns *nodeState, slot int64) {
	dataSlot := int64(n.cfg.SlotCycles(LaneData))
	end := sim.Cycle((slot + 2) * dataSlot)
	if end <= n.engine.Now() {
		end = n.engine.Now() + 1
	}
	noc.ScheduleAt(n.engine, node, end, func(sim.Cycle) {
		if ns.reserved[slot] > 0 {
			ns.reserved[slot]--
			if ns.reserved[slot] == 0 {
				delete(ns.reserved, slot)
			}
		}
	})
}

// SendConfirmBit transmits one boolean over a reserved confirmation
// mini-cycle (§5.1): the sender's confirmation lane carries the bit at
// the subscriber's reserved offset, arriving after the confirmation
// delay plus any mini-cycle queueing (essentially never, at 12 minis per
// cycle — but measured, not assumed).
func (n *Network) SendConfirmBit(src, dst int, tag uint64, value bool) {
	n.stats.ConfirmBits++
	n.conf.reserve(src, dst)
	extra := n.conf.sendDelay(src, n.engine.Now(), 1)
	noc.ScheduleAt(n.engine, dst, n.engine.Now()+sim.Cycle(n.cfg.ConfirmDelay)+extra, func(now sim.Cycle) {
		if n.bitFn != nil {
			n.bitFn(src, dst, tag, value, now)
		}
	})
}

// ConfirmationUtilization reports the confirmation lane's mini-cycle
// occupancy so far.
func (n *Network) ConfirmationUtilization() float64 {
	return n.conf.Utilization(n.engine.Now(), n.cfg.Nodes)
}

// Tick advances the network one cycle: at slot boundaries each node's
// lane serializers pick their next transmission.
func (n *Network) Tick(now sim.Cycle) {
	for l := Lane(0); l < numLanes; l++ {
		slotLen := int64(n.cfg.SlotCycles(l))
		if int64(now)%slotLen != 0 {
			continue
		}
		slot := int64(now) / slotLen
		for id, ns := range n.nodes {
			n.stats.SlotsObserved[l]++
			n.startSlot(id, ns, l, slot, now)
		}
	}
}

// startSlot picks at most one transmission for node id on lane l in the
// slot beginning now: a hint winner first, then due retries, then the
// first eligible queued packet.
func (n *Network) startSlot(id int, ns *nodeState, l Lane, slot int64, now sim.Cycle) {
	// Hint winners get the slot unconditionally.
	for i, tx := range ns.retries[l] {
		if tx.winner && tx.retrySlot <= slot {
			ns.retries[l] = append(ns.retries[l][:i], ns.retries[l][i+1:]...)
			n.transmit(id, ns, tx, l, slot, now)
			return
		}
	}
	// Earliest-due retry next.
	best := -1
	for i, tx := range ns.retries[l] {
		if tx.retrySlot <= slot && (best < 0 || tx.retrySlot < ns.retries[l][best].retrySlot) {
			best = i
		}
	}
	if best >= 0 {
		tx := ns.retries[l][best]
		ns.retries[l] = append(ns.retries[l][:best], ns.retries[l][best+1:]...)
		n.transmit(id, ns, tx, l, slot, now)
		return
	}
	// Fresh packet from the queue, respecting scheduling holds. A held
	// packet blocks only packets to the same destination, preserving
	// point-to-point order.
	blocked := make(map[int]bool)
	for i, p := range ns.queue[l] {
		nb, held := ns.notBefore[p]
		if held && nb > now {
			blocked[p.Dst] = true
			continue
		}
		if blocked[p.Dst] {
			continue
		}
		ns.queue[l] = append(ns.queue[l][:i], ns.queue[l][i+1:]...)
		delete(ns.notBefore, p)
		tx := &transmission{pkt: p, src: id, readyCycle: now}
		// Split the wait between intentional scheduling (the hold we
		// installed) and plain queuing.
		wait := int64(now - p.Created)
		if held {
			hold := int64(nb - p.Created)
			if hold > wait {
				hold = wait
			}
			p.SchedulingDelay = hold
			p.QueuingDelay = wait - hold
		} else {
			p.QueuingDelay = wait
		}
		n.transmit(id, ns, tx, l, slot, now)
		return
	}
}

// transmit registers a transmission in its receiver's slot group.
func (n *Network) transmit(id int, ns *nodeState, tx *transmission, l Lane, slot int64, now sim.Cycle) {
	p := tx.pkt
	tx.steerExtra = 0
	if n.cfg.PhaseArray && ns.lastDst[l] != p.Dst {
		tx.steerExtra = n.cfg.PhaseSetup
		ns.lastDst[l] = p.Dst
	}
	tx.degradeExtra = 0
	if n.fault != nil {
		if ext := n.fault.SlotExtension(id, l); ext > 0 {
			tx.degradeExtra = ext
			n.stats.DegradedTransmissions++
		}
	}
	rcv := id % n.cfg.Receivers
	key := slotKey{dst: p.Dst, lane: l, rcv: rcv, slot: slot}
	group, existed := n.slots[key]
	n.slots[key] = append(group, tx)
	n.stats.Attempts[l]++
	if n.obs != nil {
		kind := obs.KindTxStart
		if tx.attempt > 0 {
			kind = obs.KindRetransmit
		}
		n.observe(kind, tx, l, now, slot)
	}
	if !existed {
		// Resolution adjudicates the receiver slot, so it belongs to the
		// destination node's shard; a slot is at least ConfirmDelay (2)
		// cycles long, so the handoff clears the lookahead window.
		slotEnd := sim.Cycle((slot + 1) * int64(n.cfg.SlotCycles(l)))
		noc.ScheduleAt(n.engine, key.dst, slotEnd, func(at sim.Cycle) {
			n.resolve(key, at)
		})
	}
}

// resolve adjudicates one receiver slot at its end: a single uncorrupted
// transmission is delivered and confirmed; anything else collides.
func (n *Network) resolve(key slotKey, now sim.Cycle) {
	group := n.slots[key]
	delete(n.slots, key)
	if len(group) == 0 {
		return
	}
	l := key.lane
	if len(group) == 1 {
		tx := group[0]
		// Independent bit errors corrupt the packet with probability
		// ~bits*BER; an error looks exactly like a collision to the
		// sender (no confirmation) and is retried the same way. An
		// attached fault model replaces the flat BER with the
		// margin-derived, possibly time-varying one.
		ber := n.ber
		if n.fault != nil {
			ber = n.fault.BitErrorRate(tx.src, now)
		}
		if ber > 0 && n.rng.Bool(1-math.Pow(1-ber, float64(tx.pkt.Type.Bits()))) {
			n.stats.BitErrors++
			if n.fault != nil {
				// Locate the corruption: header errors break the PID/~PID
				// match and register as a (single-party) collision — the
				// paper's own detection path; payload errors pass the
				// header check and are caught by the modelled CRC, which
				// triggers the same NACK-free retransmission.
				headerFrac := float64(pidHeaderBits) / float64(tx.pkt.Type.Bits())
				if n.rng.Bool(headerFrac) {
					n.stats.HeaderCorruptions++
					n.stats.Collisions[l]++
					n.stats.Collided[l]++
					if l == LaneData {
						n.stats.DataByKind[classify(group)]++
					}
				} else {
					n.stats.PayloadCRCErrors++
				}
			}
			if n.obs != nil {
				n.observe(obs.KindCollision, tx, l, now, key.slot)
			}
			tx.attempt++
			tx.pkt.Retries++
			if tx.firstSlotEnd == 0 {
				tx.firstSlotEnd = now
			}
			n.backoff(tx, key.slot, now, false)
			return
		}
		n.deliverClean(tx, l, key.slot, now)
		return
	}
	// Collision: the receiver sees the OR of the beams; PID/~PID headers
	// disagree, so everyone involved must retry.
	n.stats.Collisions[l]++
	n.stats.Collided[l] += int64(len(group))
	if l == LaneData {
		n.stats.DataByKind[classify(group)]++
	}
	winnerPicked := false
	if l == LaneData && n.cfg.Opt.RetransmitHints {
		winnerPicked = n.issueHint(key.dst, group)
	}
	for _, tx := range group {
		if n.obs != nil {
			n.observe(obs.KindCollision, tx, l, now, key.slot)
		}
		tx.attempt++
		tx.pkt.Retries++
		if tx.firstSlotEnd == 0 {
			tx.firstSlotEnd = now
		}
		n.backoff(tx, key.slot, now, winnerPicked && tx.winner)
	}
}

// classify maps a data-lane collision to its Figure 10 kind.
func classify(group []*transmission) CollisionKind {
	anyRetry, anyWB, anyMem := false, false, false
	for _, tx := range group {
		if tx.attempt > 0 {
			anyRetry = true
		}
		if tx.pkt.IsWriteback {
			anyWB = true
		}
		if tx.pkt.IsMemory {
			anyMem = true
		}
	}
	switch {
	case anyRetry:
		return CollisionRetransmission
	case anyWB:
		return CollisionWriteback
	case anyMem:
		return CollisionMemory
	default:
		return CollisionReply
	}
}

// issueHint has the colliding receiver guess one sender from the
// corrupted PID pattern and its outstanding-reply knowledge, and beam a
// winner notification through the confirmation laser. It reports whether
// a true participant was selected.
func (n *Network) issueHint(dst int, group []*transmission) bool {
	n.stats.HintsIssued++
	if !n.rng.Bool(n.cfg.HintAccuracy) {
		// Mis-identification: usually harmless (a node not transmitting
		// ignores the hint), occasionally a wrong node believes it won
		// and retries immediately, which we model as no winner plus a
		// chance of an extra immediate contender.
		if n.rng.Bool(n.cfg.WrongWinner / (1 - n.cfg.HintAccuracy)) {
			n.stats.HintsWrong++
		}
		return false
	}
	n.stats.HintsCorrect++
	// Prefer the longest-suffering contender (the receiver knows who has
	// been retrying at it), breaking ties randomly so no sender starves.
	pick := group[n.rng.Intn(len(group))]
	for _, tx := range group {
		if tx.attempt > pick.attempt {
			pick = tx
		}
	}
	pick.winner = true
	return true
}

// backoff schedules a retransmission. The sender learns of the failure
// when the confirmation fails to arrive (slot end + ConfirmDelay); a hint
// winner goes in the very next slot, everyone else draws from the
// exponential window starting at the slot after next. A packet that has
// already burned MaxRetries attempts (its window saturated at
// MaxBackoffSlots long ago) is dropped instead — unless its payload
// actually landed and only the confirmation is outstanding, in which
// case dropping would desynchronize sender and receiver.
func (n *Network) backoff(tx *transmission, slot int64, now sim.Cycle, isWinner bool) {
	ns := n.nodes[tx.src]
	l := laneFor(tx.pkt)
	if n.cfg.MaxRetries > 0 && tx.attempt > n.cfg.MaxRetries && !tx.delivered {
		n.drop(tx, l, now)
		return
	}
	if isWinner {
		tx.retrySlot = slot + 1
		ns.retries[l] = append(ns.retries[l], tx)
		if n.obs != nil {
			n.observe(obs.KindBackoff, tx, l, now, tx.retrySlot)
		}
		return
	}
	tx.winner = false
	w := n.cfg.WindowW * math.Pow(n.cfg.BackoffB, float64(tx.attempt-1))
	if w < 1 {
		w = 1
	}
	// Guard rail: past ~60 retries the exponential window would dwarf any
	// useful timescale; saturating it (at MaxBackoffSlots, default 256)
	// keeps worst-case delay bounded without affecting the common case
	// the paper optimizes.
	if cap := n.backoffCap(); w > cap {
		w = cap
	}
	d := int64(math.Ceil(n.rng.Float64() * w))
	if d < 1 {
		d = 1
	}
	base := slot + 1
	if l == LaneData && n.cfg.Opt.RetransmitHints {
		// Losers leave the next slot to the winner.
		base = slot + 2
	}
	tx.retrySlot = base + d - 1
	ns.retries[l] = append(ns.retries[l], tx)
	if n.obs != nil {
		n.observe(obs.KindBackoff, tx, l, now, tx.retrySlot)
	}
}

// drop abandons a transmission after retry exhaustion: the terminal
// lifecycle event fires, the lane's drop counter advances, and the
// DropFunc (if any) takes ownership of the packet.
func (n *Network) drop(tx *transmission, l Lane, now sim.Cycle) {
	n.stats.Dropped[l]++
	if n.obs != nil {
		n.observe(obs.KindDrop, tx, l, now, int64(tx.pkt.Retries))
	}
	if n.dropFn != nil {
		n.dropFn(tx.pkt, now)
	}
}

// deliverClean completes a successful transmission: payload delivery at
// slot end (plus any steering or degradation pipeline), confirmation at
// +ConfirmDelay. Under fault injection a re-received packet (whose
// earlier confirmation was lost) is recognized by its ID and discarded —
// only the confirmation is re-sent — and a freshly lost confirmation
// parks the sender on the confirmation-timeout retransmission path.
func (n *Network) deliverClean(tx *transmission, l Lane, slot int64, now sim.Cycle) {
	p := tx.pkt
	extra := tx.steerExtra + tx.degradeExtra
	deliverAt := now + sim.Cycle(extra)
	if tx.delivered {
		n.stats.DuplicateDeliveries++
	} else {
		slotLen := int64(n.cfg.SlotCycles(l))
		p.NetworkDelay = slotLen + int64(extra)
		if tx.firstSlotEnd != 0 {
			p.ResolutionDelay = int64(now - tx.firstSlotEnd)
		}
		n.stats.Delivered[l]++
		// resolve already runs on the destination's shard; the steering
		// extra can be zero, so delivery must stay same-shard.
		noc.ScheduleAt(n.engine, p.Dst, deliverAt, func(at sim.Cycle) {
			n.lat.Record(p)
			n.noteReplyArrival(p, at)
			if n.deliverFn != nil {
				n.deliverFn(p, at)
			}
		})
	}
	if n.fault != nil && n.fault.DropConfirm(tx.src, p.Dst, now) {
		// The payload landed but the sender will never hear so: after the
		// confirmation timeout it retransmits; the receiver discards the
		// duplicate above and re-confirms.
		n.stats.ConfirmDrops++
		n.stats.TimeoutRetransmits++
		tx.delivered = true
		tx.attempt++
		p.Retries++
		tx.winner = false
		tx.retrySlot = slot + n.confirmTimeoutSlots()
		n.nodes[tx.src].retries[l] = append(n.nodes[tx.src].retries[l], tx)
		if n.obs != nil {
			n.observe(obs.KindConfirmDrop, tx, l, now, tx.retrySlot)
		}
		return
	}
	n.stats.ConfirmSignals++
	// The receipt confirmation occupies the receiver node's confirmation
	// lane; its header-sized payload is a handful of mini-cycles.
	confExtra := n.conf.sendDelay(p.Dst, deliverAt, 4)
	// The confirmation informs the sender, at least ConfirmDelay ahead:
	// the handoff back to the source's shard clears the window exactly.
	noc.ScheduleAt(n.engine, p.Src, deliverAt+sim.Cycle(n.cfg.ConfirmDelay)+confExtra, func(at sim.Cycle) {
		if n.confirmFn != nil {
			n.confirmFn(p, at)
		}
	})
}

// noteReplyArrival updates the requester's reply-latency estimate used by
// receiver scheduling.
func (n *Network) noteReplyArrival(p *noc.Packet, now sim.Cycle) {
	if !p.IsReply {
		return
	}
	ns := n.nodes[p.Dst]
	pend := ns.expecting[p.Src]
	if len(pend) == 0 {
		return
	}
	sent := pend[0]
	ns.expecting[p.Src] = pend[1:]
	obs := float64(now - sent)
	ns.replyEWMA = 0.875*ns.replyEWMA + 0.125*obs
}
