package core

import (
	"math"
	"strconv"

	"fsoi/internal/noc"
	"fsoi/internal/obs"
	"fsoi/internal/sim"
)

// CollisionKind classifies data-lane collisions for Figure 10.
type CollisionKind int

const (
	// CollisionRetransmission involves at least one retried packet.
	CollisionRetransmission CollisionKind = iota
	// CollisionWriteback involves an eviction data packet.
	CollisionWriteback
	// CollisionMemory involves a memory-controller packet.
	CollisionMemory
	// CollisionReply is between ordinary data replies.
	CollisionReply
	numCollisionKinds
)

// String names the collision kind.
func (k CollisionKind) String() string {
	switch k {
	case CollisionRetransmission:
		return "retransmission"
	case CollisionWriteback:
		return "writeback"
	case CollisionMemory:
		return "memory"
	default:
		return "reply"
	}
}

// ConfirmFunc is invoked at the sender when the confirmation beam for a
// cleanly received packet arrives (receipt + ConfirmDelay cycles).
type ConfirmFunc func(p *noc.Packet, now sim.Cycle)

// DropFunc is invoked when the network permanently gives up on a packet
// after Config.MaxRetries failed retransmissions. The network holds no
// further reference to the packet once the callback returns.
type DropFunc func(p *noc.Packet, now sim.Cycle)

// BitFunc receives a boolean-subscription update carried on a reserved
// confirmation mini-cycle.
type BitFunc func(src, dst int, tag uint64, value bool, now sim.Cycle)

// transmission is one attempt-carrying packet instance.
//
// Ownership transfers with the packet: between transmit and resolution
// the destination node owns the transmission exclusively; a failed
// attempt is handed back to the source node (a scheduled event on the
// source's shard) before the source touches it again. No two nodes ever
// hold it in the same cycle window.
type transmission struct {
	pkt          *noc.Packet
	src          int
	attempt      int       // 0 on the first transmission
	firstSlotEnd sim.Cycle // end of the first attempted slot
	readyCycle   sim.Cycle // when it became eligible to transmit
	steerExtra   int       // phase-array retarget penalty this attempt
	degradeExtra int       // VCSEL-failure serialization penalty this attempt
	ber          float64   // per-bit error probability, sampled at launch
	winner       bool      // selected by a retransmission hint
	retrySlot    int64     // earliest slot index for the next attempt
	delivered    bool      // payload landed but the confirmation was lost
}

// nodeState is the per-node transmit machinery. Everything in here is
// touched only from events and ticks executing on the owning node, so a
// partitioned engine never sees two shards in the same nodeState.
type nodeState struct {
	queue     [numLanes][]*noc.Packet
	notBefore map[*noc.Packet]sim.Cycle // scheduling holds (spacing, writeback split)
	retries   [numLanes][]*transmission
	lastDst   [numLanes]int

	// arr accumulates the transmissions that landed on each of this
	// node's receivers during the slot ending now; the node's own tick
	// resolves and clears each group at the slot boundary.
	arr [numLanes][][]*transmission

	// Receiver-side reservation table for the data lane: slot index ->
	// reservations (receiver scheduling + writeback split).
	reserved map[int64]int

	// Outstanding requests expecting data replies, per responder, used
	// to estimate reply timing and to generate collision hints.
	expecting map[int][]sim.Cycle
	replyEWMA float64
}

// Stats carries FSOI-specific measurements beyond noc.LatencyStats.
type Stats struct {
	Attempts       [numLanes]int64 // transmissions including retries
	Collided       [numLanes]int64 // attempts that ended in a collision
	Collisions     [numLanes]int64 // collision events (>= 2 attempts each)
	Delivered      [numLanes]int64
	SlotsObserved  [numLanes]int64 // node-slots elapsed
	DataByKind     [numCollisionKinds]int64
	HintsIssued    int64
	HintsCorrect   int64
	HintsWrong     int64 // wrong node believed it won
	ConfirmBits    int64 // boolean-subscription mini-cycle uses
	ConfirmSignals int64 // packet confirmations sent
	BitErrors      int64
	Dropped        [numLanes]int64 // packets abandoned after MaxRetries failed attempts
	ScheduledHolds int64           // packets delayed by receiver scheduling / wb split

	// Fault-injection counters (all zero unless a FaultModel is attached).
	HeaderCorruptions     int64 // bit errors in the PID/~PID header: misdetected collisions
	PayloadCRCErrors      int64 // bit errors caught by the payload CRC
	ConfirmDrops          int64 // confirmation beams lost
	TimeoutRetransmits    int64 // retransmissions launched by the confirmation timeout
	DuplicateDeliveries   int64 // re-received packets discarded at the receiver
	DegradedTransmissions int64 // attempts stretched by failed VCSELs

	// Adversarial-traffic counters (zero unless an AdversaryModel is
	// attached) and backoff-depth metering (always on — the detection
	// layer's baseline needs it on honest runs too).
	SpoofedHeaders  int64           // arrivals misdetected as collisions by forged PID headers
	StarvedConfirms int64           // confirmation beams suppressed by a starver
	MaxBackoffDepth [numLanes]int64 // deepest attempt count any transmission reached
}

// add folds o into s; integer addition is exact and commutative, and the
// depth fields merge by max (also commutative), so the per-node tallies
// aggregate identically at every shard and worker count.
func (s *Stats) add(o *Stats) {
	for l := 0; l < int(numLanes); l++ {
		s.Attempts[l] += o.Attempts[l]
		s.Collided[l] += o.Collided[l]
		s.Collisions[l] += o.Collisions[l]
		s.Delivered[l] += o.Delivered[l]
		s.SlotsObserved[l] += o.SlotsObserved[l]
		s.Dropped[l] += o.Dropped[l]
		if o.MaxBackoffDepth[l] > s.MaxBackoffDepth[l] {
			s.MaxBackoffDepth[l] = o.MaxBackoffDepth[l]
		}
	}
	for k := range s.DataByKind {
		s.DataByKind[k] += o.DataByKind[k]
	}
	s.HintsIssued += o.HintsIssued
	s.HintsCorrect += o.HintsCorrect
	s.HintsWrong += o.HintsWrong
	s.ConfirmBits += o.ConfirmBits
	s.ConfirmSignals += o.ConfirmSignals
	s.BitErrors += o.BitErrors
	s.ScheduledHolds += o.ScheduledHolds
	s.HeaderCorruptions += o.HeaderCorruptions
	s.PayloadCRCErrors += o.PayloadCRCErrors
	s.ConfirmDrops += o.ConfirmDrops
	s.TimeoutRetransmits += o.TimeoutRetransmits
	s.DuplicateDeliveries += o.DuplicateDeliveries
	s.DegradedTransmissions += o.DegradedTransmissions
	s.SpoofedHeaders += o.SpoofedHeaders
	s.StarvedConfirms += o.StarvedConfirms
}

// TransmissionProbability reports attempts per node per slot for a lane,
// the x-axis of Figure 9.
func (s *Stats) TransmissionProbability(l Lane) float64 {
	if s.SlotsObserved[l] == 0 {
		return 0
	}
	return float64(s.Attempts[l]) / float64(s.SlotsObserved[l])
}

// CollisionRate reports the fraction of attempts that collided, the
// y-axis of Figure 9.
func (s *Stats) CollisionRate(l Lane) float64 {
	if s.Attempts[l] == 0 {
		return 0
	}
	return float64(s.Collided[l]) / float64(s.Attempts[l])
}

// RetransmissionRate reports extra attempts per delivered packet on a
// lane — the fault sweep's degradation metric: 0 when every packet lands
// first try, 1 when packets need two attempts on average.
func (s *Stats) RetransmissionRate(l Lane) float64 {
	if s.Delivered[l] == 0 {
		return 0
	}
	return float64(s.Attempts[l]-s.Delivered[l]) / float64(s.Delivered[l])
}

// Network is the FSOI interconnect.
//
// Every piece of mutable state is owned by exactly one node: per-node
// transmit machinery (nodeState), per-node RNG streams, per-node stats
// and latency accumulators, and a per-node slice of the shared
// confirmation-lane bookkeeping. Code executing for node i — its tick,
// or an event scheduled onto it — touches only node i's slices, so the
// network runs unchanged on the serial engine, the exact sharded engine,
// and the windowed parallel engine.
type Network struct {
	cfg       Config
	engine    sim.Scheduler   // setup and end-of-run reporting only
	scheds    []sim.Scheduler // per-node view of the engine (shard proxies when windowed)
	nrng      []*sim.RNG      // per-node random streams, derived in node order
	deliverFn noc.DeliveryFunc
	confirmFn ConfirmFunc
	bitFn     BitFunc
	dropFn    DropFunc
	obs       *obs.Sharded // nil unless lifecycle tracing is on
	lat       []noc.LatencyStats
	stats     []Stats
	nodes     []*nodeState
	conf      *confLane
	ber       float64        // per-bit error probability on the signaling chain
	fault     FaultModel     // nil unless an injector is attached
	adv       AdversaryModel // nil unless an attack roster is attached
	linkObs   []LinkObserver // per-node contention sinks; nil unless tracking is on
}

// New builds an FSOI network over the engine; it panics on an invalid
// configuration (configs are produced by code, not user input). When the
// engine partitions nodes (sim.NodeScheduler), every per-node event the
// network schedules goes through that node's own scheduler view.
func New(cfg Config, engine sim.Scheduler, rng *sim.RNG) *Network {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := &Network{
		cfg:    cfg,
		engine: engine,
		conf:   newConfLane(cfg.Nodes, cfg.BitsPerCycle),
		ber:    1e-10,
	}
	base := rng.NewStream("fsoi")
	n.scheds = make([]sim.Scheduler, cfg.Nodes)
	n.nrng = make([]*sim.RNG, cfg.Nodes)
	n.stats = make([]Stats, cfg.Nodes)
	n.lat = make([]noc.LatencyStats, cfg.Nodes)
	n.nodes = make([]*nodeState, cfg.Nodes)
	for i := range n.nodes {
		n.scheds[i] = sim.SchedulerFor(engine, i)
		n.nrng[i] = base.NewStream("node-" + strconv.Itoa(i))
		ns := &nodeState{
			notBefore: make(map[*noc.Packet]sim.Cycle),
			reserved:  make(map[int64]int),
			expecting: make(map[int][]sim.Cycle),
			replyEWMA: 30,
		}
		for l := range ns.lastDst {
			ns.lastDst[l] = -1
			ns.arr[l] = make([][]*transmission, cfg.Receivers)
		}
		n.nodes[i] = ns
	}
	return n
}

// SetBitErrorRate overrides the default 1e-10 signaling BER; §4.3.1
// argues the collision mechanism lets BER relax to ~1e-5 with no
// tangible performance impact, which the failure-injection tests verify.
func (n *Network) SetBitErrorRate(ber float64) { n.ber = ber }

// Name identifies the configuration.
func (n *Network) Name() string { return "fsoi" }

// LatencyStats merges the per-node latency accumulators, in node order,
// into a fresh aggregate. Call it after (or between) runs, not once and
// cached.
func (n *Network) LatencyStats() *noc.LatencyStats {
	out := &noc.LatencyStats{}
	for i := range n.lat {
		out.Merge(&n.lat[i])
	}
	return out
}

// Lookahead declares FSOI's conservative cross-shard window for the
// sharded engine: the fixed confirmation delay (+2 cycles in the
// paper). Every cross-node event the network schedules — a slot arrival
// (one slot length, ≥ ConfirmDelay at paper widths), a failure handback
// or confirmation (exactly ConfirmDelay) — lands at least this far
// ahead.
func (n *Network) Lookahead() sim.Cycle {
	la := sim.Cycle(n.cfg.ConfirmDelay)
	// A transmission's arrival handoff has exactly one slot of slack, so
	// a lane with slots shorter than the confirmation delay (an unusual
	// but legal lane-width choice) caps the window.
	if s := sim.Cycle(n.cfg.SlotCycles(LaneMeta)); s < la {
		la = s
	}
	if s := sim.Cycle(n.cfg.SlotCycles(LaneData)); s < la {
		la = s
	}
	return la
}

// Stats merges the per-node counters, in node order, into a fresh
// aggregate.
func (n *Network) Stats() *Stats {
	out := &Stats{}
	for i := range n.stats {
		out.add(&n.stats[i])
	}
	return out
}

// SetDelivery installs the destination callback.
func (n *Network) SetDelivery(fn noc.DeliveryFunc) { n.deliverFn = fn }

// SetConfirmDelivery installs the sender-side confirmation callback used
// for point-to-point ordering and ack elision.
func (n *Network) SetConfirmDelivery(fn ConfirmFunc) { n.confirmFn = fn }

// SetBitDelivery installs the boolean-subscription callback.
func (n *Network) SetBitDelivery(fn BitFunc) { n.bitFn = fn }

// SetDropDelivery installs the terminal-drop callback (see
// Config.MaxRetries). Without one, dropped packets simply vanish from
// the network's bookkeeping (the Dropped counters still tally them).
func (n *Network) SetDropDelivery(fn DropFunc) { n.dropFn = fn }

// SetObserver attaches a per-node family of lifecycle-event recorders.
// Passing nil detaches it; with no recorder attached every emission site
// is a single nil check and the transmit path allocates nothing extra.
func (n *Network) SetObserver(r *obs.Sharded) { n.obs = r }

// observe emits one lifecycle event into the recorder owned by the node
// whose context is executing (source for launch/backoff/drop events,
// destination for resolution events).
func (n *Network) observe(node int, kind obs.Kind, tx *transmission, l Lane, at sim.Cycle, aux int64) {
	n.obs.For(node).Emit(obs.Event{
		At: at, Kind: kind, ID: tx.pkt.ID, Aux: aux,
		Src: int32(tx.src), Dst: int32(tx.pkt.Dst),
		Attempt: int32(tx.attempt), Class: uint8(tx.pkt.Type), Lane: int8(l),
	})
}

// SupportsConfirmation reports that this network confirms clean packet
// receipt in hardware, enabling ack elision.
func (n *Network) SupportsConfirmation() bool { return n.cfg.Opt.AckElision }

// SupportsBooleanSubscription reports mini-cycle boolean updates.
func (n *Network) SupportsBooleanSubscription() bool {
	return n.cfg.Opt.BooleanSubscription
}

// laneFor classifies a packet onto its lane.
func laneFor(p *noc.Packet) Lane {
	if p.Type == noc.Data {
		return LaneData
	}
	return LaneMeta
}

// Send enqueues a packet on its lane's outgoing queue. It must be called
// from the source node's context (or at setup, before the engine runs).
func (n *Network) Send(p *noc.Packet) bool {
	sched := n.scheds[p.Src]
	if p.Src == p.Dst {
		// Same-node traffic short-circuits through the local port in one
		// cycle; the optical layer is never involved, but the sender
		// still sees a (trivially successful) confirmation.
		p.Created = sched.Now()
		p.NetworkDelay = 1
		sched.After(1, func(now sim.Cycle) {
			n.lat[p.Dst].Record(p)
			if n.deliverFn != nil {
				n.deliverFn(p, now)
			}
		})
		sched.After(1+sim.Cycle(n.cfg.ConfirmDelay), func(now sim.Cycle) {
			if n.confirmFn != nil {
				n.confirmFn(p, now)
			}
		})
		return true
	}
	lane := laneFor(p)
	ns := n.nodes[p.Src]
	if len(ns.queue[lane]) >= n.cfg.OutQueue {
		return false
	}
	p.Created = sched.Now()
	n.schedulePacket(ns, p, lane)
	ns.queue[lane] = append(ns.queue[lane], p)
	return true
}

// schedulePacket applies the §5.2 scheduling optimizations, possibly
// recording a not-before cycle for the packet.
func (n *Network) schedulePacket(ns *nodeState, p *noc.Packet, lane Lane) {
	now := n.scheds[p.Src].Now()
	cd := sim.Cycle(n.cfg.ConfirmDelay)
	dataSlot := int64(n.cfg.SlotCycles(LaneData))
	switch {
	case lane == LaneMeta && p.ExpectsDataReply && n.cfg.Opt.ReceiverScheduling:
		// Reserve the most likely reply slot at our own receiver; if it
		// is taken, delay the request until the estimate lands free.
		est := int64(now) + int64(ns.replyEWMA)
		slot := est / dataSlot
		hold := sim.Cycle(0)
		for i := 0; ns.reserved[slot] > 0 && i < 4; i++ {
			slot++
			hold += sim.Cycle(dataSlot)
		}
		ns.reserved[slot]++
		n.expireReservation(p.Src, ns, slot, now)
		if hold > 0 {
			ns.notBefore[p] = now + hold
			n.stats[p.Src].ScheduledHolds++
		}
		ns.expecting[p.Dst] = append(ns.expecting[p.Dst], now)
	case lane == LaneData && p.IsWriteback && n.cfg.Opt.WritebackSplit:
		// Split transaction: a meta-sized announcement rides to the home
		// node (the 2-cycle handshake), the home node picks a free slot
		// at its receiver, and the grant rides back; the writeback itself
		// is held until the granted slot opens. Both legs are ordinary
		// node-to-node events, so the reservation is made and expired
		// entirely in the home node's context.
		ns.notBefore[p] = now + 2*cd // provisional: released by the grant
		n.stats[p.Src].ScheduledHolds++
		src := p.Src
		noc.ScheduleAt(n.scheds[src], p.Dst, now+cd, func(at sim.Cycle) {
			home := n.nodes[p.Dst]
			slot := (int64(at)+int64(cd))/dataSlot + 1
			for i := 0; home.reserved[slot] > 0 && i < 4; i++ {
				slot++
			}
			home.reserved[slot]++
			n.expireReservation(p.Dst, home, slot, at)
			noc.ScheduleAt(n.scheds[p.Dst], src, at+cd, func(sim.Cycle) {
				n.nodes[src].notBefore[p] = sim.Cycle(slot * dataSlot)
			})
		})
	}
}

// expireReservation drops a reservation shortly after its slot passes.
// It must be called from the context of the node owning ns — the
// writeback split reserves at the *home* node — so the expiry fires on
// the shard owning that node, not on whichever shard ran the sender.
func (n *Network) expireReservation(node int, ns *nodeState, slot int64, now sim.Cycle) {
	dataSlot := int64(n.cfg.SlotCycles(LaneData))
	end := sim.Cycle((slot + 2) * dataSlot)
	if end <= now {
		end = now + 1
	}
	noc.ScheduleAt(n.scheds[node], node, end, func(sim.Cycle) {
		if ns.reserved[slot] > 0 {
			ns.reserved[slot]--
			if ns.reserved[slot] == 0 {
				delete(ns.reserved, slot)
			}
		}
	})
}

// SendConfirmBit transmits one boolean over a reserved confirmation
// mini-cycle (§5.1): the sender's confirmation lane carries the bit at
// the subscriber's reserved offset, arriving after the confirmation
// delay plus any mini-cycle queueing (essentially never, at 12 minis per
// cycle — but measured, not assumed). It must be called from src's
// context.
func (n *Network) SendConfirmBit(src, dst int, tag uint64, value bool) {
	n.stats[src].ConfirmBits++
	n.conf.reserve(src, dst)
	now := n.scheds[src].Now()
	extra := n.conf.sendDelay(src, now, 1)
	noc.ScheduleAt(n.scheds[src], dst, now+sim.Cycle(n.cfg.ConfirmDelay)+extra, func(now sim.Cycle) {
		if n.bitFn != nil {
			n.bitFn(src, dst, tag, value, now)
		}
	})
}

// ConfirmationUtilization reports the confirmation lane's mini-cycle
// occupancy so far.
func (n *Network) ConfirmationUtilization() float64 {
	return n.conf.Utilization(n.engine.Now(), n.cfg.Nodes)
}

// Tick advances the whole network one cycle on a single-threaded engine
// by ticking every node in node order. Partitioned engines register
// TickNode per node instead and never call this.
func (n *Network) Tick(now sim.Cycle) {
	for id := range n.nodes {
		n.TickNode(id, now)
	}
}

// TickNode advances one node one cycle. At each lane's slot boundary the
// node first resolves the slot that just ended on each of its receivers
// (delivering clean transmissions, adjudicating collisions, handing
// failures back to their senders), then its lane serializer picks the
// next transmission for the opening slot. Only state owned by node id is
// touched.
func (n *Network) TickNode(id int, now sim.Cycle) {
	ns := n.nodes[id]
	for l := Lane(0); l < numLanes; l++ {
		slotLen := int64(n.cfg.SlotCycles(l))
		if int64(now)%slotLen != 0 {
			continue
		}
		slot := int64(now) / slotLen
		for rcv := range ns.arr[l] {
			group := ns.arr[l][rcv]
			if len(group) == 0 {
				continue
			}
			// Arrivals are appended only in the event phase, so nothing
			// grows this bucket while the group resolves.
			ns.arr[l][rcv] = ns.arr[l][rcv][:0]
			n.resolveGroup(id, l, slot-1, group, now)
		}
		n.stats[id].SlotsObserved[l]++
		n.startSlot(id, ns, l, slot, now)
	}
}

// startSlot picks at most one transmission for node id on lane l in the
// slot beginning now: a hint winner first, then due retries, then the
// first eligible queued packet.
func (n *Network) startSlot(id int, ns *nodeState, l Lane, slot int64, now sim.Cycle) {
	// Hint winners get the slot unconditionally.
	for i, tx := range ns.retries[l] {
		if tx.winner && tx.retrySlot <= slot {
			ns.retries[l] = append(ns.retries[l][:i], ns.retries[l][i+1:]...)
			n.transmit(id, ns, tx, l, slot, now)
			return
		}
	}
	// Earliest-due retry next.
	best := -1
	for i, tx := range ns.retries[l] {
		if tx.retrySlot <= slot && (best < 0 || tx.retrySlot < ns.retries[l][best].retrySlot) {
			best = i
		}
	}
	if best >= 0 {
		tx := ns.retries[l][best]
		ns.retries[l] = append(ns.retries[l][:best], ns.retries[l][best+1:]...)
		n.transmit(id, ns, tx, l, slot, now)
		return
	}
	// Fresh packet from the queue, respecting scheduling holds. A held
	// packet blocks only packets to the same destination, preserving
	// point-to-point order.
	blocked := make(map[int]bool)
	for i, p := range ns.queue[l] {
		nb, held := ns.notBefore[p]
		if held && nb > now {
			blocked[p.Dst] = true
			continue
		}
		if blocked[p.Dst] {
			continue
		}
		ns.queue[l] = append(ns.queue[l][:i], ns.queue[l][i+1:]...)
		delete(ns.notBefore, p)
		tx := &transmission{pkt: p, src: id, readyCycle: now}
		// Split the wait between intentional scheduling (the hold we
		// installed) and plain queuing.
		wait := int64(now - p.Created)
		if held {
			hold := int64(nb - p.Created)
			if hold > wait {
				hold = wait
			}
			p.SchedulingDelay = hold
			p.QueuingDelay = wait - hold
		} else {
			p.QueuingDelay = wait
		}
		n.transmit(id, ns, tx, l, slot, now)
		return
	}
}

// transmit launches one attempt: the beam lands on the destination's
// receiver at the end of the slot, where the destination's own tick
// resolves whatever accumulated. The per-bit error probability is
// sampled here, in the sender's context — the fault model's margin and
// thermal state belong to the sender — and carried on the transmission.
func (n *Network) transmit(id int, ns *nodeState, tx *transmission, l Lane, slot int64, now sim.Cycle) {
	p := tx.pkt
	tx.steerExtra = 0
	if n.cfg.PhaseArray && ns.lastDst[l] != p.Dst {
		tx.steerExtra = n.cfg.PhaseSetup
		ns.lastDst[l] = p.Dst
	}
	tx.degradeExtra = 0
	if n.fault != nil {
		if ext := n.fault.SlotExtension(id, l); ext > 0 {
			tx.degradeExtra = ext
			n.stats[id].DegradedTransmissions++
		}
	}
	tx.ber = n.ber
	if n.fault != nil {
		tx.ber = n.fault.BitErrorRate(id, now)
	}
	rcv := id % n.cfg.Receivers
	n.stats[id].Attempts[l]++
	if n.obs != nil {
		kind := obs.KindTxStart
		if tx.attempt > 0 {
			kind = obs.KindRetransmit
		}
		n.observe(id, kind, tx, l, now, slot)
	}
	// The arrival belongs to the destination node's shard; a slot is at
	// least ConfirmDelay (2) cycles long, so the handoff clears the
	// lookahead window.
	slotEnd := sim.Cycle((slot + 1) * int64(n.cfg.SlotCycles(l)))
	dst := p.Dst
	noc.ScheduleAt(n.scheds[id], dst, slotEnd, func(sim.Cycle) {
		d := n.nodes[dst]
		d.arr[l][rcv] = append(d.arr[l][rcv], tx)
	})
}

// resolveGroup adjudicates one receiver slot at its end, in the
// destination node's context: a single uncorrupted transmission is
// delivered and confirmed; anything else collides and every participant
// is handed back to its sender.
func (n *Network) resolveGroup(dst int, l Lane, slot int64, group []*transmission, now sim.Cycle) {
	st := &n.stats[dst]
	if len(group) == 1 {
		tx := group[0]
		// Independent bit errors corrupt the packet with probability
		// ~bits*BER; an error looks exactly like a collision to the
		// sender (no confirmation) and is retried the same way. The
		// probability was sampled at launch (tx.ber); the corruption draw
		// happens here, on the receiver's stream.
		if tx.ber > 0 && n.nrng[dst].Bool(1-math.Pow(1-tx.ber, float64(tx.pkt.Type.Bits()))) {
			st.BitErrors++
			if n.fault != nil {
				// Locate the corruption: header errors break the PID/~PID
				// match and register as a (single-party) collision — the
				// paper's own detection path; payload errors pass the
				// header check and are caught by the modelled CRC, which
				// triggers the same NACK-free retransmission.
				headerFrac := float64(pidHeaderBits) / float64(tx.pkt.Type.Bits())
				if n.nrng[dst].Bool(headerFrac) {
					st.HeaderCorruptions++
					st.Collisions[l]++
					st.Collided[l]++
					if l == LaneData {
						st.DataByKind[classify(group)]++
					}
				} else {
					st.PayloadCRCErrors++
				}
			}
			if n.obs != nil {
				n.observe(dst, obs.KindCollision, tx, l, now, slot)
			}
			if n.linkObs != nil {
				n.linkObs[dst].NoteCollision(tx.src, dst)
			}
			tx.attempt++
			tx.pkt.Retries++
			if tx.firstSlotEnd == 0 {
				tx.firstSlotEnd = now
			}
			n.failBack(dst, tx, l, slot, now, false)
			return
		}
		// A spoofer's arrival carries a forged PID/~PID header: the match
		// fails and the receiver misdetects a collision — the packet is
		// not delivered and the sender retries into an ever-deeper backoff
		// window, burning the victim's slots each time (§4.3.1's detection
		// mechanism turned against itself). The draw runs on the
		// receiver's stream, in the receiver's context.
		if n.adv != nil && n.adv.SpoofedHeader(tx.src, now, n.nrng[dst]) {
			st.SpoofedHeaders++
			st.Collisions[l]++
			st.Collided[l]++
			if l == LaneData {
				st.DataByKind[classify(group)]++
			}
			if n.obs != nil {
				n.observe(dst, obs.KindCollision, tx, l, now, slot)
			}
			if n.linkObs != nil {
				n.linkObs[dst].NoteCollision(tx.src, dst)
			}
			tx.attempt++
			tx.pkt.Retries++
			if tx.firstSlotEnd == 0 {
				tx.firstSlotEnd = now
			}
			n.failBack(dst, tx, l, slot, now, false)
			return
		}
		n.deliverClean(dst, tx, l, slot, now)
		return
	}
	// Collision: the receiver sees the OR of the beams; PID/~PID headers
	// disagree, so everyone involved must retry.
	st.Collisions[l]++
	st.Collided[l] += int64(len(group))
	if l == LaneData {
		st.DataByKind[classify(group)]++
	}
	winnerPicked := false
	if l == LaneData && n.cfg.Opt.RetransmitHints {
		winnerPicked = n.issueHint(dst, group)
	}
	for _, tx := range group {
		if n.obs != nil {
			n.observe(dst, obs.KindCollision, tx, l, now, slot)
		}
		if n.linkObs != nil {
			n.linkObs[dst].NoteCollision(tx.src, dst)
		}
		tx.attempt++
		tx.pkt.Retries++
		if tx.firstSlotEnd == 0 {
			tx.firstSlotEnd = now
		}
		n.failBack(dst, tx, l, slot, now, winnerPicked && tx.winner)
	}
}

// classify maps a data-lane collision to its Figure 10 kind.
func classify(group []*transmission) CollisionKind {
	anyRetry, anyWB, anyMem := false, false, false
	for _, tx := range group {
		if tx.attempt > 0 {
			anyRetry = true
		}
		if tx.pkt.IsWriteback {
			anyWB = true
		}
		if tx.pkt.IsMemory {
			anyMem = true
		}
	}
	switch {
	case anyRetry:
		return CollisionRetransmission
	case anyWB:
		return CollisionWriteback
	case anyMem:
		return CollisionMemory
	default:
		return CollisionReply
	}
}

// issueHint has the colliding receiver guess one sender from the
// corrupted PID pattern and its outstanding-reply knowledge, and beam a
// winner notification through the confirmation laser. It reports whether
// a true participant was selected.
func (n *Network) issueHint(dst int, group []*transmission) bool {
	st := &n.stats[dst]
	rng := n.nrng[dst]
	st.HintsIssued++
	if !rng.Bool(n.cfg.HintAccuracy) {
		// Mis-identification: usually harmless (a node not transmitting
		// ignores the hint), occasionally a wrong node believes it won
		// and retries immediately, which we model as no winner plus a
		// chance of an extra immediate contender.
		if rng.Bool(n.cfg.WrongWinner / (1 - n.cfg.HintAccuracy)) {
			st.HintsWrong++
		}
		return false
	}
	st.HintsCorrect++
	// Prefer the longest-suffering contender (the receiver knows who has
	// been retrying at it), breaking ties randomly so no sender starves.
	pick := group[rng.Intn(len(group))]
	for _, tx := range group {
		if tx.attempt > pick.attempt {
			pick = tx
		}
	}
	pick.winner = true
	return true
}

// failBack returns a failed transmission to its sender: physically, the
// sender learns of the failure when no confirmation arrives, slot end +
// ConfirmDelay — which is exactly the engine's lookahead, so the
// handback is a legal cross-shard event. The backoff draw then runs in
// the sender's context, on the sender's stream.
func (n *Network) failBack(from int, tx *transmission, l Lane, slot int64, now sim.Cycle, isWinner bool) {
	noc.ScheduleAt(n.scheds[from], tx.src, now+sim.Cycle(n.cfg.ConfirmDelay), func(at sim.Cycle) {
		n.backoff(tx, l, slot, at, isWinner)
	})
}

// backoff schedules a retransmission, in the sender's context. The
// sender learns of the failure at slot end + ConfirmDelay, by which time
// the next slot's launch has passed: a hint winner goes in the second
// slot after the collision, everyone else draws from the exponential
// window starting one later. A packet that has already burned MaxRetries
// attempts (its window saturated at MaxBackoffSlots long ago) is dropped
// instead — unless its payload actually landed and only the confirmation
// is outstanding, in which case dropping would desynchronize sender and
// receiver.
func (n *Network) backoff(tx *transmission, l Lane, slot int64, now sim.Cycle, isWinner bool) {
	ns := n.nodes[tx.src]
	if n.cfg.MaxRetries > 0 && tx.attempt > n.cfg.MaxRetries && !tx.delivered {
		n.drop(tx, l, now)
		return
	}
	// Backoff-depth metering, in the sender's context: the deepest
	// attempt count any transmission reaches is the detection layer's
	// strongest per-link anomaly signal under adversarial load.
	if d := int64(tx.attempt); d > n.stats[tx.src].MaxBackoffDepth[l] {
		n.stats[tx.src].MaxBackoffDepth[l] = d
	}
	if n.linkObs != nil {
		n.linkObs[tx.src].NoteBackoff(tx.src, tx.pkt.Dst, tx.attempt)
	}
	if isWinner {
		tx.retrySlot = slot + 2
		ns.retries[l] = append(ns.retries[l], tx)
		if n.obs != nil {
			n.observe(tx.src, obs.KindBackoff, tx, l, now, tx.retrySlot)
		}
		return
	}
	tx.winner = false
	w := n.cfg.WindowW * math.Pow(n.cfg.BackoffB, float64(tx.attempt-1))
	if w < 1 {
		w = 1
	}
	// Guard rail: past ~60 retries the exponential window would dwarf any
	// useful timescale; saturating it (at MaxBackoffSlots, default 256)
	// keeps worst-case delay bounded without affecting the common case
	// the paper optimizes.
	if cap := n.backoffCap(); w > cap {
		w = cap
	}
	d := int64(math.Ceil(n.nrng[tx.src].Float64() * w))
	if d < 1 {
		d = 1
	}
	base := slot + 2
	if l == LaneData && n.cfg.Opt.RetransmitHints {
		// Losers leave the first reachable slot to the winner.
		base = slot + 3
	}
	tx.retrySlot = base + d - 1
	ns.retries[l] = append(ns.retries[l], tx)
	if n.obs != nil {
		n.observe(tx.src, obs.KindBackoff, tx, l, now, tx.retrySlot)
	}
}

// drop abandons a transmission after retry exhaustion, in the sender's
// context: the terminal lifecycle event fires, the lane's drop counter
// advances, and the DropFunc (if any) takes ownership of the packet.
func (n *Network) drop(tx *transmission, l Lane, now sim.Cycle) {
	n.stats[tx.src].Dropped[l]++
	if n.obs != nil {
		n.observe(tx.src, obs.KindDrop, tx, l, now, int64(tx.pkt.Retries))
	}
	if n.dropFn != nil {
		n.dropFn(tx.pkt, now)
	}
}

// deliver completes a delivery in the destination's context: latency
// accounting, the reply-timing estimate, and the upward callback.
func (n *Network) deliver(p *noc.Packet, now sim.Cycle) {
	n.lat[p.Dst].Record(p)
	n.noteReplyArrival(p, now)
	if n.deliverFn != nil {
		n.deliverFn(p, now)
	}
}

// deliverClean completes a successful transmission: payload delivery at
// slot end (plus any steering or degradation pipeline), confirmation at
// +ConfirmDelay. Under fault injection a re-received packet (whose
// earlier confirmation was lost) is recognized by its ID and discarded —
// only the confirmation is re-sent — and a freshly lost confirmation
// parks the sender on the confirmation-timeout retransmission path.
func (n *Network) deliverClean(dst int, tx *transmission, l Lane, slot int64, now sim.Cycle) {
	p := tx.pkt
	st := &n.stats[dst]
	extra := tx.steerExtra + tx.degradeExtra
	deliverAt := now + sim.Cycle(extra)
	if tx.delivered {
		st.DuplicateDeliveries++
	} else {
		slotLen := int64(n.cfg.SlotCycles(l))
		p.NetworkDelay = slotLen + int64(extra)
		if tx.firstSlotEnd != 0 {
			p.ResolutionDelay = int64(now - tx.firstSlotEnd)
		}
		st.Delivered[l]++
		if extra == 0 {
			// Resolution already runs in the destination's tick; with no
			// pipeline extra the delivery lands this very cycle, so it
			// must run inline — an event at `now` would slip a cycle.
			n.deliver(p, now)
		} else {
			noc.ScheduleAt(n.scheds[dst], p.Dst, deliverAt, func(at sim.Cycle) {
				n.deliver(p, at)
			})
		}
	}
	lost := n.fault != nil && n.fault.DropConfirm(tx.src, p.Dst, now)
	if !lost && n.adv != nil && n.adv.StarveConfirm(p.Dst, now, n.nrng[dst]) {
		// A starver suppresses the victim's confirmation beam; to the
		// sender this is indistinguishable from a physical confirm loss.
		lost = true
		st.StarvedConfirms++
	}
	if lost {
		// The payload landed but the sender will never hear so: after the
		// confirmation timeout it retransmits; the receiver discards the
		// duplicate above and re-confirms. The requeue rides the same
		// +ConfirmDelay handback as a failure.
		st.ConfirmDrops++
		st.TimeoutRetransmits++
		tx.delivered = true
		tx.attempt++
		p.Retries++
		tx.winner = false
		tx.retrySlot = slot + n.confirmTimeoutSlots()
		if n.obs != nil {
			n.observe(dst, obs.KindConfirmDrop, tx, l, now, tx.retrySlot)
		}
		src := tx.src
		noc.ScheduleAt(n.scheds[dst], src, now+sim.Cycle(n.cfg.ConfirmDelay), func(sim.Cycle) {
			n.nodes[src].retries[l] = append(n.nodes[src].retries[l], tx)
		})
		return
	}
	st.ConfirmSignals++
	// The receipt confirmation occupies the receiver node's confirmation
	// lane; its header-sized payload is a handful of mini-cycles.
	confExtra := n.conf.sendDelay(p.Dst, deliverAt, 4)
	// The confirmation informs the sender, at least ConfirmDelay ahead:
	// the handoff back to the source's shard clears the window exactly.
	noc.ScheduleAt(n.scheds[dst], p.Src, deliverAt+sim.Cycle(n.cfg.ConfirmDelay)+confExtra, func(at sim.Cycle) {
		if n.confirmFn != nil {
			n.confirmFn(p, at)
		}
	})
}

// noteReplyArrival updates the requester's reply-latency estimate used by
// receiver scheduling.
func (n *Network) noteReplyArrival(p *noc.Packet, now sim.Cycle) {
	if !p.IsReply {
		return
	}
	ns := n.nodes[p.Dst]
	pend := ns.expecting[p.Src]
	if len(pend) == 0 {
		return
	}
	sent := pend[0]
	ns.expecting[p.Src] = pend[1:]
	obs := float64(now - sent)
	ns.replyEWMA = 0.875*ns.replyEWMA + 0.125*obs
}
