package core

import (
	"testing"

	"fsoi/internal/noc"
	"fsoi/internal/obs"
	"fsoi/internal/sim"
)

// TestMaxRetriesDropsPacket forces every transmission to corrupt
// (BER 1), so a packet can never deliver: with MaxRetries set the
// network must give up deterministically, invoke the drop callback
// exactly once, count the drop, and leave a complete lifecycle trail in
// the recorder.
func TestMaxRetriesDropsPacket(t *testing.T) {
	cfg := basicConfig()
	cfg.MaxRetries = 3
	n, engine, delivered, _ := testNet(t, cfg)
	n.SetBitErrorRate(1)
	sh := obs.NewSharded(cfg.Nodes, 0)
	n.SetObserver(sh)
	var dropped []*noc.Packet
	var droppedAt sim.Cycle
	n.SetDropDelivery(func(p *noc.Packet, now sim.Cycle) {
		dropped = append(dropped, p)
		droppedAt = now
	})
	p := &noc.Packet{Src: 1, Dst: 2, Type: noc.Meta}
	if !n.Send(p) {
		t.Fatal("send rejected")
	}
	engine.Run(5000)

	if len(*delivered) != 0 {
		t.Fatalf("delivered %d packets under BER 1", len(*delivered))
	}
	if len(dropped) != 1 || dropped[0] != p {
		t.Fatalf("drop callback fired %d times, want exactly once with the sent packet", len(dropped))
	}
	if droppedAt == 0 {
		t.Fatal("drop callback got a zero cycle stamp")
	}
	if got := n.Stats().Dropped[LaneMeta]; got != 1 {
		t.Fatalf("Stats.Dropped[meta] = %d, want 1", got)
	}
	if p.Retries != int(cfg.MaxRetries)+1 {
		t.Fatalf("packet died with %d retries, want MaxRetries+1 = %d", p.Retries, cfg.MaxRetries+1)
	}

	counts := sh.Merged().CountByKind()
	if counts[obs.KindDrop] != 1 {
		t.Fatalf("recorded %d drop events, want 1", counts[obs.KindDrop])
	}
	if counts[obs.KindTxStart] != 1 {
		t.Fatalf("recorded %d tx-start events, want 1", counts[obs.KindTxStart])
	}
	if counts[obs.KindRetransmit] != int64(cfg.MaxRetries) {
		t.Fatalf("recorded %d retransmits, want %d", counts[obs.KindRetransmit], cfg.MaxRetries)
	}
	if counts[obs.KindCollision] != int64(cfg.MaxRetries)+1 {
		t.Fatalf("recorded %d collisions, want %d", counts[obs.KindCollision], cfg.MaxRetries+1)
	}
	if counts[obs.KindDeliver] != 0 {
		t.Fatal("a dropped packet must not also record a delivery")
	}
}

// TestZeroMaxRetriesRetriesForever pins the historical default: with
// MaxRetries zero the network never abandons a packet, no matter how
// hopeless the link.
func TestZeroMaxRetriesRetriesForever(t *testing.T) {
	n, engine, delivered, _ := testNet(t, basicConfig())
	n.SetBitErrorRate(1)
	droppedCalls := 0
	n.SetDropDelivery(func(p *noc.Packet, now sim.Cycle) { droppedCalls++ })
	p := &noc.Packet{Src: 1, Dst: 2, Type: noc.Meta}
	if !n.Send(p) {
		t.Fatal("send rejected")
	}
	engine.Run(5000)
	if len(*delivered) != 0 {
		t.Fatal("BER 1 must block delivery")
	}
	if droppedCalls != 0 || n.Stats().Dropped[LaneMeta] != 0 {
		t.Fatalf("MaxRetries=0 dropped a packet (calls=%d, counter=%d)",
			droppedCalls, n.Stats().Dropped[LaneMeta])
	}
	if p.Retries < 10 {
		t.Fatalf("packet only retried %d times in 5000 cycles; the retry loop looks stalled", p.Retries)
	}
}

// TestDeliveredPacketNotDroppedOnConfirmLoss: a packet whose payload
// landed but whose confirmation was lost rides the timeout path and
// must NOT be dropped even past MaxRetries — dropping it would
// desynchronize sender and receiver.
func TestDeliveredPacketNotDroppedOnConfirmLoss(t *testing.T) {
	cfg := basicConfig()
	cfg.MaxRetries = 1
	n, engine, delivered, confirmed := testNet(t, cfg)
	n.SetFaultModel(&stubFault{dropLeft: 3})
	droppedCalls := 0
	n.SetDropDelivery(func(p *noc.Packet, now sim.Cycle) { droppedCalls++ })
	p := &noc.Packet{Src: 1, Dst: 2, Type: noc.Meta}
	if !n.Send(p) {
		t.Fatal("send rejected")
	}
	engine.Run(2000)
	if droppedCalls != 0 {
		t.Fatalf("confirmation-loss recovery was cut short by %d drops", droppedCalls)
	}
	if len(*delivered) != 1 || len(*confirmed) != 1 {
		t.Fatalf("delivered=%d confirmed=%d, want 1/1 after timeout recovery",
			len(*delivered), len(*confirmed))
	}
}
