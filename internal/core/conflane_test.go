package core

import (
	"testing"
	"testing/quick"

	"fsoi/internal/sim"
)

func TestConfLaneNoDelayWhenIdle(t *testing.T) {
	c := newConfLane(4, 12)
	if d := c.sendDelay(0, 100, 4); d != 0 {
		t.Fatalf("idle lane delayed %d cycles", d)
	}
}

func TestConfLaneBacklogDelays(t *testing.T) {
	c := newConfLane(2, 12)
	// Saturate node 0's lane within one cycle: 12 minis available, ask
	// for 30.
	c.sendDelay(0, 10, 30)
	if d := c.sendDelay(0, 10, 4); d < 1 {
		t.Fatalf("saturated lane must push to a later cycle, got %d", d)
	}
	// Node 1 is unaffected.
	if d := c.sendDelay(1, 10, 4); d != 0 {
		t.Fatal("lanes must be independent")
	}
}

func TestConfLaneReservationStable(t *testing.T) {
	c := newConfLane(4, 12)
	off1 := c.reserve(0, 2)
	off2 := c.reserve(0, 2)
	if off1 != off2 {
		t.Fatalf("re-reservation moved the offset: %d vs %d", off1, off2)
	}
	if off1 < 1 || off1 >= 12 {
		t.Fatalf("offset %d out of range (0 is receipt-priority)", off1)
	}
}

func TestConfLaneDistinctOffsets(t *testing.T) {
	c := newConfLane(4, 12)
	seen := map[int]bool{}
	for sub := 1; sub <= 11; sub++ {
		off := c.reserve(0, sub)
		if off < 0 {
			t.Fatalf("reservation %d denied with offsets free", sub)
		}
		if seen[off] {
			t.Fatalf("offset %d double-booked", off)
		}
		seen[off] = true
	}
	// The 12th subscriber finds every non-zero offset taken.
	if off := c.reserve(0, 12); off != -1 {
		t.Fatalf("oversubscription must be denied, got offset %d", off)
	}
	if c.stats[0].Denied != 1 {
		t.Fatal("denial must be counted")
	}
}

func TestConfLaneRelease(t *testing.T) {
	c := newConfLane(2, 12)
	off := c.reserve(1, 0)
	c.release(1, 0)
	// The offset is reusable by another subscriber.
	c.nextOffset[1] = off - 1 // steer the rotation back
	got := c.reserve(1, 5)
	if got < 0 {
		t.Fatal("released offset not reusable")
	}
}

func TestConfLaneUtilization(t *testing.T) {
	c := newConfLane(2, 12)
	c.sendDelay(0, 0, 12)
	// 12 minis used of 2 nodes * 10 cycles * 12 minis.
	if u := c.Utilization(10, 2); u < 0.049 || u > 0.051 {
		t.Fatalf("utilization = %g, want 0.05", u)
	}
	if newConfLane(2, 12).Utilization(0, 2) != 0 {
		t.Fatal("zero-cycle utilization must be 0")
	}
}

func TestConfLaneDelayNonNegativeProperty(t *testing.T) {
	c := newConfLane(4, 12)
	err := quick.Check(func(src uint8, at uint16, minis uint8) bool {
		d := c.sendDelay(int(src%4), 1000+sim.Cycle(at), int(minis%8)+1)
		return d >= 0
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}
