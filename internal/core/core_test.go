package core

import (
	"testing"

	"fsoi/internal/noc"
	"fsoi/internal/sim"
)

// testNet builds a network plus delivery/confirmation recorders.
func testNet(t *testing.T, cfg Config) (*Network, *sim.Engine, *[]*noc.Packet, *[]*noc.Packet) {
	t.Helper()
	engine := sim.NewEngine()
	n := New(cfg, engine, sim.NewRNG(1))
	n.SetBitErrorRate(0) // deterministic unless a test opts in
	delivered := &[]*noc.Packet{}
	confirmed := &[]*noc.Packet{}
	n.SetDelivery(func(p *noc.Packet, now sim.Cycle) { *delivered = append(*delivered, p) })
	n.SetConfirmDelivery(func(p *noc.Packet, now sim.Cycle) { *confirmed = append(*confirmed, p) })
	engine.Register(sim.TickFunc(n.Tick))
	return n, engine, delivered, confirmed
}

func basicConfig() Config {
	cfg := PaperConfig(16)
	cfg.Opt = Optimizations{}
	return cfg
}

func TestConfigSlotLengths(t *testing.T) {
	cfg := PaperConfig(16)
	if s := cfg.SlotCycles(LaneMeta); s != 2 {
		t.Fatalf("meta slot = %d, want 2 (72b over 3x12b/cyc)", s)
	}
	if s := cfg.SlotCycles(LaneData); s != 5 {
		t.Fatalf("data slot = %d, want 5 (360b over 6x12b/cyc)", s)
	}
}

func TestConfigVCSELCount(t *testing.T) {
	cfg := PaperConfig(16)
	// §4.1: N=16, k=9 needs about 2000 transmit VCSELs.
	total := cfg.TotalVCSELs()
	if total < 2000 || total > 2300 {
		t.Fatalf("16-node VCSEL count = %d, paper estimates ~2000", total)
	}
	cfg64 := PaperConfig(64)
	if !cfg64.PhaseArray {
		t.Fatal("64 nodes should default to phase arrays")
	}
	if cfg64.TotalVCSELs() >= cfg.TotalVCSELs() {
		t.Fatal("phase arrays make the VCSEL count per node constant")
	}
}

func TestConfigValidate(t *testing.T) {
	good := PaperConfig(16)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Nodes: 1},
		func() Config { c := PaperConfig(16); c.MetaVCSELs = 0; return c }(),
		func() Config { c := PaperConfig(16); c.WindowW = 0.5; return c }(),
		func() Config { c := PaperConfig(16); c.BackoffB = 0.9; return c }(),
		func() Config { c := PaperConfig(16); c.OutQueue = 0; return c }(),
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("config %d should fail validation", i)
		}
	}
}

func TestSingleMetaDelivery(t *testing.T) {
	n, engine, delivered, confirmed := testNet(t, basicConfig())
	p := &noc.Packet{Src: 1, Dst: 2, Type: noc.Meta}
	if !n.Send(p) {
		t.Fatal("send rejected")
	}
	engine.Run(20)
	if len(*delivered) != 1 {
		t.Fatalf("delivered %d packets", len(*delivered))
	}
	// Sent at cycle 0 => slot 0 covers [0,2), delivery at cycle 2.
	if p.NetworkDelay != 2 || p.TotalLatency() != 2 {
		t.Fatalf("latency = %d (network %d), want 2", p.TotalLatency(), p.NetworkDelay)
	}
	if len(*confirmed) != 1 {
		t.Fatal("sender must receive a confirmation")
	}
}

func TestDataSlotIsFiveCycles(t *testing.T) {
	n, engine, delivered, _ := testNet(t, basicConfig())
	p := &noc.Packet{Src: 1, Dst: 2, Type: noc.Data}
	n.Send(p)
	engine.Run(20)
	if len(*delivered) != 1 || p.NetworkDelay != 5 {
		t.Fatalf("data delivery: %d packets, network=%d", len(*delivered), p.NetworkDelay)
	}
}

func TestSlotAlignment(t *testing.T) {
	n, engine, delivered, _ := testNet(t, basicConfig())
	// Inject mid-slot: must wait for the next boundary.
	engine.Run(1) // now = 1
	p := &noc.Packet{Src: 1, Dst: 2, Type: noc.Meta}
	n.Send(p)
	engine.Run(20)
	if len(*delivered) != 1 {
		t.Fatal("packet lost")
	}
	if p.QueuingDelay != 1 {
		t.Fatalf("queuing = %d, want 1 cycle of slot alignment", p.QueuingDelay)
	}
}

func TestCollisionAndRetry(t *testing.T) {
	n, engine, delivered, _ := testNet(t, basicConfig())
	// Sources 1 and 3 share receiver 1 (src %% 2); same slot, same dst.
	a := &noc.Packet{Src: 1, Dst: 2, Type: noc.Meta}
	b := &noc.Packet{Src: 3, Dst: 2, Type: noc.Meta}
	n.Send(a)
	n.Send(b)
	engine.Run(300)
	if len(*delivered) != 2 {
		t.Fatalf("delivered %d of 2 after collision", len(*delivered))
	}
	if n.Stats().Collisions[LaneMeta] == 0 {
		t.Fatal("a collision must have been recorded")
	}
	if a.Retries+b.Retries == 0 {
		t.Fatal("colliding packets must retry")
	}
	if a.ResolutionDelay+b.ResolutionDelay == 0 {
		t.Fatal("resolution delay must be accounted")
	}
}

func TestDistinctReceiversAvoidCollision(t *testing.T) {
	n, engine, delivered, _ := testNet(t, basicConfig())
	// Sources 1 and 2 use different receivers at the destination.
	n.Send(&noc.Packet{Src: 1, Dst: 4, Type: noc.Meta})
	n.Send(&noc.Packet{Src: 2, Dst: 4, Type: noc.Meta})
	engine.Run(20)
	if len(*delivered) != 2 || n.Stats().Collisions[LaneMeta] != 0 {
		t.Fatalf("delivered=%d collisions=%d; receiver sharding should prevent this collision",
			len(*delivered), n.Stats().Collisions[LaneMeta])
	}
}

func TestLanesAreIndependent(t *testing.T) {
	n, engine, delivered, _ := testNet(t, basicConfig())
	// A meta and a data packet from the same pair do not collide: they
	// use different lanes and receivers.
	n.Send(&noc.Packet{Src: 1, Dst: 2, Type: noc.Meta})
	n.Send(&noc.Packet{Src: 1, Dst: 2, Type: noc.Data})
	engine.Run(30)
	if len(*delivered) != 2 {
		t.Fatalf("delivered %d", len(*delivered))
	}
	if n.Stats().Collisions[LaneMeta]+n.Stats().Collisions[LaneData] != 0 {
		t.Fatal("cross-lane packets must not collide")
	}
}

func TestSerializerOnePacketPerSlot(t *testing.T) {
	n, engine, delivered, _ := testNet(t, basicConfig())
	// Two meta packets from one source to different destinations: the
	// single lane serializer sends one per slot.
	a := &noc.Packet{Src: 1, Dst: 2, Type: noc.Meta}
	b := &noc.Packet{Src: 1, Dst: 3, Type: noc.Meta}
	n.Send(a)
	n.Send(b)
	engine.Run(20)
	if len(*delivered) != 2 {
		t.Fatal("both must deliver")
	}
	if a.QueuingDelay+b.QueuingDelay == 0 {
		t.Fatal("the second packet must wait a slot")
	}
}

func TestLoopbackBypassesOptics(t *testing.T) {
	n, engine, delivered, confirmed := testNet(t, basicConfig())
	p := &noc.Packet{Src: 3, Dst: 3, Type: noc.Data}
	n.Send(p)
	engine.Run(10)
	if len(*delivered) != 1 || p.NetworkDelay != 1 {
		t.Fatalf("loopback: %d delivered, network=%d", len(*delivered), p.NetworkDelay)
	}
	if len(*confirmed) != 1 {
		t.Fatal("loopback still confirms to keep protocol ordering alive")
	}
	if n.Stats().Attempts[LaneData] != 0 {
		t.Fatal("loopback must not use the optical lanes")
	}
}

func TestQueueOverflow(t *testing.T) {
	cfg := basicConfig()
	cfg.OutQueue = 2
	n, _, _, _ := testNet(t, cfg)
	ok := 0
	for i := 0; i < 5; i++ {
		if n.Send(&noc.Packet{Src: 1, Dst: 2, Type: noc.Meta}) {
			ok++
		}
	}
	if ok != 2 {
		t.Fatalf("accepted %d, queue holds 2", ok)
	}
}

func TestPhaseArraySteeringPenalty(t *testing.T) {
	cfg := PaperConfig(64)
	cfg.Opt = Optimizations{}
	n, engine, delivered, _ := testNet(t, cfg)
	a := &noc.Packet{Src: 1, Dst: 2, Type: noc.Meta}
	n.Send(a)
	engine.Run(20)
	if len(*delivered) != 1 {
		t.Fatal("packet lost")
	}
	if a.NetworkDelay != 2+int64(cfg.PhaseSetup) {
		t.Fatalf("first (retargeting) transmission network=%d, want slot+setup=%d",
			a.NetworkDelay, 2+cfg.PhaseSetup)
	}
	// Same destination again: no retarget penalty.
	b := &noc.Packet{Src: 1, Dst: 2, Type: noc.Meta}
	n.Send(b)
	engine.Run(20)
	if b.NetworkDelay != 2 {
		t.Fatalf("steered-in-place transmission network=%d, want 2", b.NetworkDelay)
	}
}

func TestBitErrorsRetryLikeCollisions(t *testing.T) {
	n, engine, delivered, _ := testNet(t, basicConfig())
	n.SetBitErrorRate(0.02) // ~76% meta corruption probability per slot
	for i := 0; i < 4; i++ {
		n.Send(&noc.Packet{Src: 1, Dst: 2, Type: noc.Meta})
	}
	engine.Run(4000)
	if len(*delivered) != 4 {
		t.Fatalf("delivered %d of 4 under heavy BER", len(*delivered))
	}
	if n.Stats().BitErrors == 0 {
		t.Fatal("bit errors must be recorded")
	}
}

func TestRelaxedBERHasNoTangibleImpact(t *testing.T) {
	// §4.3.1: relaxing BER from 1e-10 to 1e-5 is performance-neutral
	// because the collision machinery already handles rare corruption.
	run := func(ber float64) int64 {
		n, engine, delivered, _ := testNet(t, basicConfig())
		n.SetBitErrorRate(ber)
		sent := 0
		for cyc := 0; cyc < 4000; cyc += 2 {
			src := (cyc / 2) % 8
			dst := 8 + (cyc/2)%4
			if n.Send(&noc.Packet{Src: src, Dst: dst, Type: noc.Meta}) {
				sent++
			}
			engine.Run(2)
		}
		engine.Run(500)
		if len(*delivered) != sent {
			t.Fatalf("lost packets at BER %g", ber)
		}
		return n.LatencyStats().Delivered
	}
	a := run(1e-10)
	b := run(1e-5)
	if a != b {
		t.Fatalf("delivery counts differ: %d vs %d", a, b)
	}
}

func TestConfirmBitTiming(t *testing.T) {
	cfg := PaperConfig(16)
	n, engine, _, _ := testNet(t, cfg)
	var at sim.Cycle = -1
	var gotTag uint64
	var gotVal bool
	n.SetBitDelivery(func(src, dst int, tag uint64, value bool, now sim.Cycle) {
		at, gotTag, gotVal = now, tag, value
	})
	n.SendConfirmBit(1, 2, 77, true)
	engine.Run(10)
	if at != sim.Cycle(cfg.ConfirmDelay) {
		t.Fatalf("bit arrived at %d, want %d", at, cfg.ConfirmDelay)
	}
	if gotTag != 77 || !gotVal {
		t.Fatal("bit payload corrupted")
	}
	if n.Stats().ConfirmBits != 1 {
		t.Fatal("confirm-bit counter wrong")
	}
}

func TestReceiverSchedulingHoldsRequests(t *testing.T) {
	cfg := PaperConfig(16)
	cfg.Opt = Optimizations{ReceiverScheduling: true}
	n, engine, delivered, _ := testNet(t, cfg)
	// Several data-reply-expecting requests from one node: later ones
	// should be spaced so their replies land in distinct slots.
	for i := 0; i < 6; i++ {
		n.Send(&noc.Packet{Src: 1, Dst: 2 + i, Type: noc.Meta, ExpectsDataReply: true})
	}
	engine.Run(300)
	if len(*delivered) != 6 {
		t.Fatalf("delivered %d of 6", len(*delivered))
	}
	if n.Stats().ScheduledHolds == 0 {
		t.Fatal("overlapping reply estimates must trigger request spacing")
	}
}

func TestWritebackSplitSchedules(t *testing.T) {
	cfg := PaperConfig(16)
	cfg.Opt = Optimizations{WritebackSplit: true}
	n, engine, delivered, _ := testNet(t, cfg)
	a := &noc.Packet{Src: 1, Dst: 2, Type: noc.Data, IsWriteback: true}
	n.Send(a)
	engine.Run(100)
	if len(*delivered) != 1 {
		t.Fatal("writeback lost")
	}
	if n.Stats().ScheduledHolds == 0 {
		t.Fatal("split-transaction writebacks must be scheduled")
	}
	if a.SchedulingDelay == 0 {
		t.Fatal("the announce handshake must appear as scheduling delay")
	}
}

func TestRetransmitHintSpeedsResolution(t *testing.T) {
	run := func(hints bool) float64 {
		cfg := PaperConfig(16)
		cfg.Opt = Optimizations{RetransmitHints: hints}
		cfg.HintAccuracy = 1.0
		cfg.WrongWinner = 0
		n, engine, delivered, _ := testNet(t, cfg)
		// Repeated reply collisions: pairs sharing a receiver.
		for round := 0; round < 40; round++ {
			n.Send(&noc.Packet{Src: 1, Dst: 0, Type: noc.Data, IsReply: true})
			n.Send(&noc.Packet{Src: 3, Dst: 0, Type: noc.Data, IsReply: true})
			engine.Run(60)
		}
		engine.Run(2000)
		if len(*delivered) != 80 {
			t.Fatalf("delivered %d of 80 (hints=%v)", len(*delivered), hints)
		}
		if hints && n.Stats().HintsIssued == 0 {
			t.Fatal("hints were never issued")
		}
		return n.LatencyStats().Resolution.Mean()
	}
	with := run(true)
	without := run(false)
	if with >= without {
		t.Fatalf("hints should cut resolution delay: with=%.2f without=%.2f", with, without)
	}
}

func TestStressAllToAllDeliversEverything(t *testing.T) {
	n, engine, delivered, _ := testNet(t, basicConfig())
	rng := sim.NewRNG(3)
	sent := 0
	for cyc := 0; cyc < 3000; cyc++ {
		engine.Run(1)
		if rng.Bool(0.4) {
			src := rng.Intn(16)
			dst := rng.Intn(15)
			if dst >= src {
				dst++
			}
			typ := noc.Meta
			if rng.Bool(0.4) {
				typ = noc.Data
			}
			if n.Send(&noc.Packet{Src: src, Dst: dst, Type: typ}) {
				sent++
			}
		}
	}
	engine.Run(5000)
	if len(*delivered) != sent {
		t.Fatalf("delivered %d of %d under stress", len(*delivered), sent)
	}
	st := n.Stats()
	if st.Collisions[LaneMeta]+st.Collisions[LaneData] == 0 {
		t.Fatal("stress traffic should produce some collisions")
	}
}

func TestDeterministicUnderSameSeed(t *testing.T) {
	run := func() (int64, int64) {
		engine := sim.NewEngine()
		n := New(basicConfig(), engine, sim.NewRNG(42))
		n.SetDelivery(func(*noc.Packet, sim.Cycle) {})
		engine.Register(sim.TickFunc(n.Tick))
		rng := sim.NewRNG(7)
		for cyc := 0; cyc < 1000; cyc++ {
			engine.Run(1)
			if rng.Bool(0.5) {
				src := rng.Intn(16)
				dst := (src + 1 + rng.Intn(15)) % 16
				n.Send(&noc.Packet{Src: src, Dst: dst, Type: noc.Meta})
			}
		}
		engine.Run(1000)
		return n.Stats().Attempts[LaneMeta], n.Stats().Collided[LaneMeta]
	}
	a1, c1 := run()
	a2, c2 := run()
	if a1 != a2 || c1 != c2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", a1, c1, a2, c2)
	}
}

func TestTransmissionProbabilityMatchesLoad(t *testing.T) {
	n, engine, _, _ := testNet(t, basicConfig())
	// One sender transmitting every slot: p for that node-lane should
	// make the 16-node average 1/16.
	for i := 0; i < 100; i++ {
		n.Send(&noc.Packet{Src: 1, Dst: 2, Type: noc.Meta})
		engine.Run(2)
	}
	p := n.Stats().TransmissionProbability(LaneMeta)
	if p < 0.04 || p > 0.09 {
		t.Fatalf("p = %.4f, want ~1/16", p)
	}
}

func TestCollisionKindStrings(t *testing.T) {
	want := map[CollisionKind]string{
		CollisionRetransmission: "retransmission",
		CollisionWriteback:      "writeback",
		CollisionMemory:         "memory",
		CollisionReply:          "reply",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}

func TestLaneStrings(t *testing.T) {
	if LaneMeta.String() != "meta" || LaneData.String() != "data" {
		t.Fatal("lane names wrong")
	}
}
