package memory

import (
	"testing"

	"fsoi/internal/coherence"
	"fsoi/internal/sim"
)

func TestLineOccupancy(t *testing.T) {
	// 8.8 GB/s over 4 channels at 3.3 GHz: 2.2 GB/s per channel =
	// 0.667 B/cycle, so a 64 B line occupies ~96 cycles.
	c := PaperMemory(4)
	occ := c.LineOccupancyCycles()
	if occ < 90 || occ > 102 {
		t.Fatalf("occupancy = %d cycles, want ~96", occ)
	}
	// Table 4's 52.8 GB/s is 6x faster.
	c.TotalGBps = 52.8
	if fast := c.LineOccupancyCycles(); fast < 14 || fast > 18 {
		t.Fatalf("fast occupancy = %d cycles, want ~16", fast)
	}
}

func TestAttachNodes(t *testing.T) {
	n4 := AttachNodes(4, 4)
	if len(n4) != 4 {
		t.Fatalf("want 4 attach points, got %v", n4)
	}
	want := map[int]bool{0: true, 3: true, 12: true, 15: true}
	for _, n := range n4 {
		if !want[n] {
			t.Fatalf("channel at node %d is not a corner of the 4x4 mesh", n)
		}
	}
	n8 := AttachNodes(8, 8)
	if len(n8) != 8 {
		t.Fatalf("want 8 attach points, got %v", n8)
	}
	for _, n := range n8 {
		if n < 0 || n >= 64 {
			t.Fatalf("attach node %d out of range", n)
		}
	}
}

// collect runs a controller and gathers replies.
func collect(t *testing.T, cfg Config, reqs []coherence.Msg) ([]coherence.Msg, *Controller, *sim.Engine) {
	t.Helper()
	engine := sim.NewEngine()
	var replies []coherence.Msg
	ctl := NewController(0, cfg, engine, func(m coherence.Msg) {
		replies = append(replies, m)
	})
	for _, m := range reqs {
		m := m
		engine.At(0, func(now sim.Cycle) { ctl.Handle(m, now) })
	}
	engine.Run(sim.Cycle(cfg.LatencyCycles) + 50*cfg.LineOccupancyCycles())
	return replies, ctl, engine
}

func TestReadRepliesWithData(t *testing.T) {
	cfg := PaperMemory(4)
	replies, _, _ := collect(t, cfg, []coherence.Msg{
		{Type: coherence.ReqMem, Addr: 7, From: 3, To: 0},
	})
	if len(replies) != 1 {
		t.Fatalf("want 1 reply, got %d", len(replies))
	}
	r := replies[0]
	if r.Type != coherence.MemAck || !r.HasData || r.To != 3 || r.Addr != 7 {
		t.Fatalf("reply: %+v", r)
	}
}

func TestWriteIsSilent(t *testing.T) {
	cfg := PaperMemory(4)
	replies, ctl, _ := collect(t, cfg, []coherence.Msg{
		{Type: coherence.MemWrite, Addr: 7, From: 3, To: 0, HasData: true},
	})
	if len(replies) != 0 {
		t.Fatalf("writes must not reply: %+v", replies)
	}
	if ctl.Stats().Writes != 1 {
		t.Fatal("write not counted")
	}
}

func TestBandwidthSerializesRequests(t *testing.T) {
	cfg := PaperMemory(4)
	var reqs []coherence.Msg
	for i := 0; i < 4; i++ {
		reqs = append(reqs, coherence.Msg{Type: coherence.ReqMem, Addr: 7, From: 1, To: 0})
	}
	_, ctl, _ := collect(t, cfg, reqs)
	if ctl.Stats().Reads != 4 {
		t.Fatalf("reads = %d", ctl.Stats().Reads)
	}
	// The 2nd..4th requests must have queued behind channel occupancy.
	if ctl.Stats().QueueWait.Max() < float64(cfg.LineOccupancyCycles()) {
		t.Fatalf("max queue wait %.0f; requests should have serialized", ctl.Stats().QueueWait.Max())
	}
}

func TestLatencyApplied(t *testing.T) {
	cfg := PaperMemory(4)
	engine := sim.NewEngine()
	var replyAt sim.Cycle = -1
	ctl := NewController(0, cfg, engine, func(m coherence.Msg) { replyAt = engine.Now() })
	engine.At(0, func(now sim.Cycle) {
		ctl.Handle(coherence.Msg{Type: coherence.ReqMem, Addr: 1, From: 0, To: 0}, now)
	})
	engine.Run(1000)
	min := sim.Cycle(cfg.LatencyCycles)
	if replyAt < min {
		t.Fatalf("reply at %d, before the %d-cycle access latency", replyAt, min)
	}
}

func TestUnknownMessagePanics(t *testing.T) {
	cfg := PaperMemory(4)
	engine := sim.NewEngine()
	ctl := NewController(0, cfg, engine, func(coherence.Msg) {})
	defer func() {
		if recover() == nil {
			t.Fatal("non-memory messages must panic")
		}
	}()
	ctl.Handle(coherence.Msg{Type: coherence.ReqSh}, 0)
}
