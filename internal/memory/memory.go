// Package memory models the off-chip memory system: address-interleaved
// controllers attached to specific mesh nodes, each with a service queue,
// a bandwidth-limited channel, and the paper's 200-cycle access latency.
// Total bandwidth is configurable to reproduce Table 4's 8.8 vs 52.8 GB/s
// comparison.
package memory

import (
	"fsoi/internal/cache"
	"fsoi/internal/coherence"
	"fsoi/internal/sim"
	"fsoi/internal/stats"
)

// Config sizes the memory system.
type Config struct {
	Channels      int     // 4 at 16 nodes, 8 at 64 (Table 3)
	TotalGBps     float64 // aggregate bandwidth (8.8 default, 52.8 in Table 4)
	CoreGHz       float64 // for bandwidth->cycles conversion (3.3)
	LatencyCycles int     // access latency (200)
	QueueDepth    int     // per-channel request queue
}

// PaperMemory returns the default evaluation configuration.
func PaperMemory(channels int) Config {
	return Config{Channels: channels, TotalGBps: 8.8, CoreGHz: 3.3, LatencyCycles: 200, QueueDepth: 64}
}

// LineOccupancyCycles returns how many cycles one 64-byte line transfer
// occupies a single channel.
func (c Config) LineOccupancyCycles() sim.Cycle {
	perChannel := c.TotalGBps / float64(c.Channels) // GB/s
	bytesPerCycle := perChannel / c.CoreGHz         // bytes per core cycle
	return sim.Cycle(float64(cache.LineSize)/bytesPerCycle + 0.5)
}

// AttachNodes returns the mesh nodes hosting the controllers for a
// dim x dim system: spread along opposite edges like the Alpha-style
// quadrant controllers the paper describes.
func AttachNodes(dim, channels int) []int {
	nodes := make([]int, 0, channels)
	last := dim*dim - 1
	corners := []int{0, dim - 1, last - dim + 1, last}
	for i := 0; i < channels; i++ {
		if i < len(corners) {
			nodes = append(nodes, corners[i])
			continue
		}
		// Additional channels take mid-edge nodes.
		mid := []int{dim / 2, dim*dim - 1 - dim/2, dim * (dim / 2), dim*(dim/2) + dim - 1}
		nodes = append(nodes, mid[(i-len(corners))%len(mid)])
	}
	return nodes
}

// Stats counts controller activity.
type Stats struct {
	Reads, Writes int64
	QueueWait     stats.Summary
	Busy          sim.Cycle // total channel-occupied cycles
}

// Controller is one memory channel attached to a node.
type Controller struct {
	node     int
	cfg      Config
	engine   sim.Scheduler
	send     func(coherence.Msg)
	nextFree sim.Cycle
	stats    Stats
	queued   int
}

// NewController builds a channel controller at the given node. send
// injects reply messages into the interconnect.
func NewController(node int, cfg Config, engine sim.Scheduler, send func(coherence.Msg)) *Controller {
	return &Controller{node: node, cfg: cfg, engine: engine, send: send}
}

// Node reports the attach point.
func (c *Controller) Node() int { return c.node }

// Stats exposes the counters.
func (c *Controller) Stats() *Stats { return &c.stats }

// Handle services a ReqMem (line read, replied with MemAck) or MemWrite
// (line write, no reply).
func (c *Controller) Handle(m coherence.Msg, now sim.Cycle) {
	occupancy := c.cfg.LineOccupancyCycles()
	start := now
	if c.nextFree > start {
		start = c.nextFree
	}
	c.stats.QueueWait.Add(float64(start - now))
	c.nextFree = start + occupancy
	c.stats.Busy += occupancy
	switch m.Type {
	case coherence.ReqMem:
		c.stats.Reads++
		done := start + occupancy + sim.Cycle(c.cfg.LatencyCycles)
		home := m.From
		addr := m.Addr
		c.engine.At(done, func(sim.Cycle) {
			c.send(coherence.Msg{
				Type: coherence.MemAck, Addr: addr,
				From: c.node, To: home, HasData: true,
			})
		})
	case coherence.MemWrite:
		c.stats.Writes++
		// Writes complete silently once the channel transfer is done.
	default:
		panic("memory: controller received " + m.Type.String())
	}
}
