package sim

// Cycle is a point in simulated time, measured in CPU clock cycles.
type Cycle int64

// Ticker is a component that performs work once per cycle. The engine
// calls Tick in registration order, so registration order is part of a
// simulation's deterministic configuration.
type Ticker interface {
	Tick(now Cycle)
}

// TickFunc adapts a function to the Ticker interface.
type TickFunc func(now Cycle)

// Tick calls f(now).
func (f TickFunc) Tick(now Cycle) { f(now) }

// event is a scheduled callback. Events are stored by value inside the
// queue's slab; the (at, seq) pair is unique per event, so the heap's
// pop order is a total order and identical to the old pointer-heap's.
type event struct {
	at  Cycle
	seq uint64 // tie-breaker: schedule order, for determinism
	fn  func(now Cycle)
}

// eventQueue is a value-typed 4-ary min-heap over (at, seq). One flat
// slab backs the heap; pushes and pops move events within it, so after
// an initial growth phase the cycle loop schedules events with zero
// heap allocations. The wider arity halves tree depth versus a binary
// heap, trading a few extra comparisons per level for fewer cache-line
// hops — a win at the queue depths the slot machinery produces.
type eventQueue struct {
	a []event
}

// less orders the heap by time, then by schedule order.
func (q *eventQueue) less(i, j int) bool {
	if q.a[i].at != q.a[j].at {
		return q.a[i].at < q.a[j].at
	}
	return q.a[i].seq < q.a[j].seq
}

// push inserts an event, sifting it up to its heap position.
func (q *eventQueue) push(e event) {
	q.a = append(q.a, e)
	i := len(q.a) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !q.less(i, p) {
			break
		}
		q.a[i], q.a[p] = q.a[p], q.a[i]
		i = p
	}
}

// pop removes and returns the minimum event. The vacated slot is zeroed
// so the slab does not pin the callback closure, but the slab's
// capacity is retained for reuse by later pushes.
func (q *eventQueue) pop() event {
	top := q.a[0]
	n := len(q.a) - 1
	q.a[0] = q.a[n]
	q.a[n] = event{}
	q.a = q.a[:n]
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		best := c
		hi := c + 4
		if hi > n {
			hi = n
		}
		for k := c + 1; k < hi; k++ {
			if q.less(k, best) {
				best = k
			}
		}
		if !q.less(best, i) {
			break
		}
		q.a[i], q.a[best] = q.a[best], q.a[i]
		i = best
	}
	return top
}

// Scheduler is the scheduling surface simulation components program
// against: the current cycle, timed callbacks, per-cycle tickers, and
// the stop request. Both the serial Engine and the sharded engine
// (internal/sim/shard) implement it, so every component runs unchanged
// under either.
type Scheduler interface {
	Now() Cycle
	At(at Cycle, fn func(now Cycle))
	After(delay Cycle, fn func(now Cycle))
	Register(t Ticker)
	Stop()
	Stopped() bool
}

// Driver extends Scheduler with the run loop and the engine counters —
// the surface the system layer and the command-line tools need to drive
// a whole simulation.
type Driver interface {
	Scheduler
	Step()
	Run(maxCycles Cycle) Cycle
	Pending() int
	EventsFired() uint64
	MaxQueueDepth() int
}

// NodeScheduler is optionally implemented by engines that expose a
// per-node scheduling surface. The parallel windowed engine
// (internal/sim/shard.Windows) returns a proxy whose At/After land on
// the node's home shard and whose Handoff buffers cross-shard work for
// the window barrier; the serial Engine and the exact sharded engine do
// not implement it — on those, components keep using the engine
// directly and ForNode is never asked for. Model code that wants to run
// unchanged on every engine resolves its per-node scheduler once at
// construction:
//
//	sched := sim.SchedulerFor(engine, node)
//
// and schedules everything through it.
type NodeScheduler interface {
	// ForNode returns the scheduling surface for a node's own events.
	// The returned Scheduler must only be used from that node's
	// execution context (its events and ticks).
	ForNode(node int) Scheduler
}

// SchedulerFor resolves the scheduler a node's component should program
// against: the node's proxy when the engine partitions nodes, the
// engine itself otherwise.
func SchedulerFor(engine Scheduler, node int) Scheduler {
	if ns, ok := engine.(NodeScheduler); ok {
		return ns.ForNode(node)
	}
	return engine
}

// Sharder is optionally implemented by engines that partition
// components into node-group shards. Networks use it to hand a packet's
// delivery (or confirmation) event to the destination node's shard;
// on the serial engine the assertion fails and callers fall back to a
// plain At. The contract: a cross-shard handoff must land at least the
// engine's declared lookahead in the future, so that shards can advance
// through a lookahead-sized epoch without observing each other.
type Sharder interface {
	// NodeShard maps a node index to its shard.
	NodeShard(node int) int
	// Handoff schedules fn on the given shard's queue.
	Handoff(shard int, at Cycle, fn func(now Cycle))
}

// Engine drives a cycle-accurate simulation: every registered Ticker runs
// once per cycle, and timed events fire at the start of their cycle,
// before tickers. The zero value is not usable; construct with NewEngine.
type Engine struct {
	now      Cycle
	tickers  []Ticker
	events   eventQueue
	seq      uint64
	stopped  bool
	fired    uint64
	maxDepth int
}

// NewEngine returns an engine at cycle 0.
func NewEngine() *Engine {
	return &Engine{}
}

// Engine is the reference Driver implementation.
var _ Driver = (*Engine)(nil)

// Now reports the current cycle.
func (e *Engine) Now() Cycle { return e.now }

// Register adds a ticker. Tickers run in registration order each cycle.
func (e *Engine) Register(t Ticker) {
	e.tickers = append(e.tickers, t)
}

// At schedules fn to run at cycle at. Scheduling in the past (or the
// present cycle after its events have fired) panics: silent reordering
// would corrupt causality.
func (e *Engine) At(at Cycle, fn func(now Cycle)) {
	if at < e.now {
		panic("sim: event scheduled in the past")
	}
	e.seq++
	e.events.push(event{at: at, seq: e.seq, fn: fn})
	if d := len(e.events.a); d > e.maxDepth {
		e.maxDepth = d
	}
}

// After schedules fn to run delay cycles from now.
func (e *Engine) After(delay Cycle, fn func(now Cycle)) {
	if delay < 0 {
		panic("sim: negative delay")
	}
	e.At(e.now+delay, fn)
}

// Stop requests that Run return at the end of the current cycle.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// Step advances one cycle: fires due events, then ticks all tickers.
func (e *Engine) Step() {
	for len(e.events.a) > 0 && e.events.a[0].at <= e.now {
		ev := e.events.pop()
		e.fired++
		ev.fn(e.now)
	}
	for _, t := range e.tickers {
		t.Tick(e.now)
	}
	e.now++
}

// Run executes up to maxCycles cycles, stopping early if Stop is called.
// It returns the number of cycles actually executed.
func (e *Engine) Run(maxCycles Cycle) Cycle {
	start := e.now
	for e.now-start < maxCycles && !e.stopped {
		e.Step()
	}
	return e.now - start
}

// Pending reports the number of unfired events; useful in tests.
func (e *Engine) Pending() int { return len(e.events.a) }

// EventsFired reports how many scheduled events have executed — a cheap
// built-in profile of how event-heavy a run was (fsoisim -profile
// prints it next to the host-side pprof data).
func (e *Engine) EventsFired() uint64 { return e.fired }

// MaxQueueDepth reports the high-water mark of the event queue, the
// slab capacity a rerun of the same configuration will converge to.
func (e *Engine) MaxQueueDepth() int { return e.maxDepth }
