package sim

import "container/heap"

// Cycle is a point in simulated time, measured in CPU clock cycles.
type Cycle int64

// Ticker is a component that performs work once per cycle. The engine
// calls Tick in registration order, so registration order is part of a
// simulation's deterministic configuration.
type Ticker interface {
	Tick(now Cycle)
}

// TickFunc adapts a function to the Ticker interface.
type TickFunc func(now Cycle)

// Tick calls f(now).
func (f TickFunc) Tick(now Cycle) { f(now) }

// event is a scheduled callback.
type event struct {
	at  Cycle
	seq uint64 // tie-breaker: schedule order, for determinism
	fn  func(now Cycle)
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine drives a cycle-accurate simulation: every registered Ticker runs
// once per cycle, and timed events fire at the start of their cycle,
// before tickers. The zero value is not usable; construct with NewEngine.
type Engine struct {
	now     Cycle
	tickers []Ticker
	events  eventQueue
	seq     uint64
	stopped bool
}

// NewEngine returns an engine at cycle 0.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current cycle.
func (e *Engine) Now() Cycle { return e.now }

// Register adds a ticker. Tickers run in registration order each cycle.
func (e *Engine) Register(t Ticker) {
	e.tickers = append(e.tickers, t)
}

// At schedules fn to run at cycle at. Scheduling in the past (or the
// present cycle after its events have fired) panics: silent reordering
// would corrupt causality.
func (e *Engine) At(at Cycle, fn func(now Cycle)) {
	if at < e.now {
		panic("sim: event scheduled in the past")
	}
	e.seq++
	heap.Push(&e.events, &event{at: at, seq: e.seq, fn: fn})
}

// After schedules fn to run delay cycles from now.
func (e *Engine) After(delay Cycle, fn func(now Cycle)) {
	if delay < 0 {
		panic("sim: negative delay")
	}
	e.At(e.now+delay, fn)
}

// Stop requests that Run return at the end of the current cycle.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// Step advances one cycle: fires due events, then ticks all tickers.
func (e *Engine) Step() {
	for len(e.events) > 0 && e.events[0].at <= e.now {
		ev := heap.Pop(&e.events).(*event)
		ev.fn(e.now)
	}
	for _, t := range e.tickers {
		t.Tick(e.now)
	}
	e.now++
}

// Run executes up to maxCycles cycles, stopping early if Stop is called.
// It returns the number of cycles actually executed.
func (e *Engine) Run(maxCycles Cycle) Cycle {
	start := e.now
	for e.now-start < maxCycles && !e.stopped {
		e.Step()
	}
	return e.now - start
}

// Pending reports the number of unfired events; useful in tests.
func (e *Engine) Pending() int { return len(e.events) }
