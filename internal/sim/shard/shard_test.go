package shard

import (
	"fmt"
	"testing"

	"fsoi/internal/parallel"
	"fsoi/internal/sim"
)

// chaosWorkload drives a Driver with a randomized but deterministic
// event storm: tickers that schedule events, events that schedule more
// events (including zero-delay follow-ups and Handoff when available),
// and a mid-run Stop. Every observable action appends a line to trace,
// so two engines executed this way can be compared action for action.
func chaosWorkload(eng sim.Driver, seed uint64, trace *[]string) {
	rng := sim.NewRNG(seed).NewStream("chaos")
	// handoff mirrors noc.ScheduleAt: route to the node's shard when the
	// engine shards, plain At otherwise. The RNG draws are identical on
	// both paths, so the serial and sharded runs see the same workload.
	handoff := func(node int, at sim.Cycle, fn func(now sim.Cycle)) {
		if s, ok := eng.(sim.Sharder); ok {
			s.Handoff(s.NodeShard(node), at, fn)
			return
		}
		eng.At(at, fn)
	}
	var schedule func(depth int, id string) func(now sim.Cycle)
	schedule = func(depth int, id string) func(now sim.Cycle) {
		return func(now sim.Cycle) {
			*trace = append(*trace, fmt.Sprintf("%d event %s draw=%d", now, id, rng.Intn(1000)))
			if depth >= 3 {
				return
			}
			for i := 0; i < rng.Intn(3); i++ {
				child := fmt.Sprintf("%s.%d", id, i)
				delay := sim.Cycle(rng.Intn(5))
				if rng.Bool(0.4) {
					handoff(rng.Intn(8), now+2+delay, schedule(depth+1, child))
				} else {
					eng.After(delay, schedule(depth+1, child))
				}
			}
		}
	}
	for t := 0; t < 3; t++ {
		tid := t
		eng.Register(sim.TickFunc(func(now sim.Cycle) {
			if rng.Bool(0.3) {
				*trace = append(*trace, fmt.Sprintf("%d tick %d", now, tid))
				eng.After(sim.Cycle(1+rng.Intn(4)), schedule(0, fmt.Sprintf("t%d@%d", tid, now)))
			}
			if now == 200 && tid == 1 {
				eng.Stop()
			}
		}))
	}
	eng.At(0, schedule(0, "root"))
}

// TestExactEngineMatchesSerial is the kernel-level byte-identity proof:
// the same randomized workload executes the same action sequence on the
// serial engine and on the exact sharded engine at several shard
// counts. Because the workload interleaves RNG draws with execution,
// any divergence in event order diverges the trace immediately.
func TestExactEngineMatchesSerial(t *testing.T) {
	for _, seed := range []uint64{1, 42, 777} {
		seed := seed
		var want []string
		ref := sim.NewEngine()
		chaosWorkload(ref, seed, &want)
		refCycles := ref.Run(500)
		if len(want) == 0 {
			t.Fatalf("seed %d: empty reference trace", seed)
		}
		for _, k := range []int{1, 2, 3, 4, 8} {
			var got []string
			e := New(k)
			e.AssignNodes(8)
			e.SetLookahead(2)
			chaosWorkload(e, seed, &got)
			gotCycles := e.Run(500)
			if gotCycles != refCycles {
				t.Errorf("seed %d shards %d: ran %d cycles, serial ran %d", seed, k, gotCycles, refCycles)
			}
			if len(got) != len(want) {
				t.Fatalf("seed %d shards %d: %d actions vs serial %d", seed, k, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d shards %d: first divergence at action %d:\n  serial:  %s\n  sharded: %s",
						seed, k, i, want[i], got[i])
				}
			}
			if e.EventsFired() != ref.EventsFired() {
				t.Errorf("seed %d shards %d: fired %d events, serial fired %d",
					seed, k, e.EventsFired(), ref.EventsFired())
			}
		}
	}
}

// TestHandoffMetering checks the cursor and the lookahead meter: a
// handoff to another shard counts once, one closer than the declared
// window additionally trips UnderLookahead, and same-shard handoffs
// count as neither.
func TestHandoffMetering(t *testing.T) {
	e := New(4)
	e.AssignNodes(8)
	e.SetLookahead(2)
	nop := func(now sim.Cycle) {}
	e.SetShard(0)
	e.Handoff(0, 0, nop) // same-shard: not a handoff
	e.Handoff(1, 2, nop) // cross-shard, at lookahead: clean
	e.Handoff(2, 1, nop) // cross-shard, under lookahead
	if e.Handoffs() != 2 {
		t.Errorf("Handoffs() = %d, want 2", e.Handoffs())
	}
	if e.UnderLookahead() != 1 {
		t.Errorf("UnderLookahead() = %d, want 1", e.UnderLookahead())
	}
	if e.Pending() != 3 {
		t.Errorf("Pending() = %d, want 3", e.Pending())
	}
	// Contiguous node assignment: 8 nodes over 4 shards is pairs.
	for node, want := range []int{0, 0, 1, 1, 2, 2, 3, 3} {
		if got := e.NodeShard(node); got != want {
			t.Errorf("NodeShard(%d) = %d, want %d", node, got, want)
		}
	}
	if e.NodeShard(-1) != 0 || e.NodeShard(99) != 0 {
		t.Error("out-of-range nodes should map to shard 0")
	}
}

// counterProg is a minimal epoch Program: a ring of nodes where each
// node, once per cycle with per-node RNG probability, posts a token to
// a drawn destination node; tokens bounce until their hop budget runs
// out. All state is per-node and integer, all interaction goes through
// Post (same-shard included), keys encode (dstNode, srcNode), so the
// result must be invariant across shard and worker counts.
type counterProg struct {
	e        *Epochs
	shard    int
	nodes    []int // global node ids owned by this shard
	owner    []int // node -> shard (shared read-only)
	rng      []*sim.RNG
	received []int64 // per local node
	hops     int64
}

func (p *counterProg) Recv(now sim.Cycle, key uint64, data any) {
	dst := int(key >> 32)
	local := dst - p.nodes[0]
	p.received[local]++
	p.hops++
	budget := data.(int)
	if budget <= 0 {
		return
	}
	next := p.rng[local].Intn(len(p.owner))
	p.e.Post(p.shard, p.owner[next], now+2, uint64(next)<<32|uint64(dst), budget-1)
}

func (p *counterProg) Cycle(now sim.Cycle) {
	for i, node := range p.nodes {
		if p.rng[i].Bool(0.1) {
			dst := p.rng[i].Intn(len(p.owner))
			p.e.Post(p.shard, p.owner[dst], now+2, uint64(dst)<<32|uint64(node), 3)
		}
	}
}

// runCounterModel builds the token-ring model at a shard and worker
// count and returns its per-node receive counts plus total hops.
func runCounterModel(t *testing.T, nodes, shards, workers int, cycles sim.Cycle) ([]int64, int64) {
	t.Helper()
	owner := make([]int, nodes)
	for i := range owner {
		owner[i] = i * shards / nodes
	}
	root := sim.NewRNG(99)
	progs := make([]Program, shards)
	cps := make([]*counterProg, shards)
	for s := range progs {
		cps[s] = &counterProg{shard: s, owner: owner}
		progs[s] = cps[s]
	}
	for node := range owner {
		cp := cps[owner[node]]
		cp.nodes = append(cp.nodes, node)
		cp.rng = append(cp.rng, root.NewStream(fmt.Sprintf("node-%d", node)))
		cp.received = append(cp.received, 0)
	}
	pool := parallel.NewPool(workers)
	defer pool.Close()
	e := NewEpochs(progs, 2, pool)
	for s := range cps {
		cps[s].e = e
	}
	e.Run(cycles)
	out := make([]int64, nodes)
	var hops int64
	for _, cp := range cps {
		for i, node := range cp.nodes {
			out[node] = cp.received[i]
		}
		hops += cp.hops
	}
	if e.Posted() == 0 {
		t.Fatal("model posted no messages — test is vacuous")
	}
	return out, hops
}

// TestEpochInvariance runs the same message-passing model at shard
// counts 1/2/4/8 and worker counts 1/2/4 and requires identical
// per-node results: the epoch engine's shard- and worker-count
// invariance contract, end to end.
func TestEpochInvariance(t *testing.T) {
	const nodes, cycles = 16, 400
	want, wantHops := runCounterModel(t, nodes, 1, 1, cycles)
	if wantHops == 0 {
		t.Fatal("no hops in reference run")
	}
	for _, shards := range []int{1, 2, 4, 8} {
		for _, workers := range []int{1, 2, 4} {
			got, hops := runCounterModel(t, nodes, shards, workers, cycles)
			if hops != wantHops {
				t.Errorf("shards=%d workers=%d: %d hops, want %d", shards, workers, hops, wantHops)
			}
			for n := range want {
				if got[n] != want[n] {
					t.Fatalf("shards=%d workers=%d: node %d received %d, want %d",
						shards, workers, n, got[n], want[n])
				}
			}
		}
	}
}

// TestPostUnderLookaheadPanics pins the epoch engine's guard: a post
// closer than the lookahead floor must panic, not skew results.
func TestPostUnderLookaheadPanics(t *testing.T) {
	pool := parallel.NewPool(1)
	defer pool.Close()
	bad := &badProg{}
	e := NewEpochs([]Program{bad}, 4, pool)
	bad.e = e
	defer func() {
		if recover() == nil {
			t.Fatal("under-lookahead Post did not panic")
		}
	}()
	e.Run(8)
}

type badProg struct{ e *Epochs }

func (p *badProg) Recv(now sim.Cycle, key uint64, data any) {}
func (p *badProg) Cycle(now sim.Cycle) {
	if now == 5 {
		p.e.Post(0, 0, now+1, 0, nil) // floor is epoch start + 4
	}
}

// TestPoolReuse exercises parallel.Pool directly: many Run calls on
// one pool, panic propagation, and serial-pool semantics.
func TestPoolReuse(t *testing.T) {
	pool := parallel.NewPool(4)
	defer pool.Close()
	for round := 0; round < 50; round++ {
		out := make([]int, 37)
		pool.Run(len(out), func(i int) { out[i] = i * round })
		for i, v := range out {
			if v != i*round {
				t.Fatalf("round %d: out[%d] = %d", round, i, v)
			}
		}
	}
	func() {
		defer func() {
			pe, ok := recover().(*parallel.PanicError)
			if !ok {
				t.Fatal("pool panic did not propagate as *PanicError")
			}
			if pe.Job != 3 {
				t.Errorf("PanicError.Job = %d, want lowest panicking index 3", pe.Job)
			}
		}()
		pool.Run(8, func(i int) {
			if i >= 3 {
				panic("boom")
			}
		})
	}()
	// The pool must still be usable after a panicking run.
	sum := make([]int, 8)
	pool.Run(8, func(i int) { sum[i] = 1 })
	serial := parallel.NewPool(1)
	if serial.Workers() != 1 {
		t.Errorf("serial pool Workers() = %d", serial.Workers())
	}
	serial.Run(4, func(i int) { sum[i]++ })
	serial.Close()
}
