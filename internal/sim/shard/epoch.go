package shard

import (
	"fmt"
	"sort"

	"fsoi/internal/parallel"
	"fsoi/internal/sim"
)

// Program is one shard of an epoch-parallel simulation: a share-nothing
// state machine advanced cycle by cycle, interacting with other shards
// (and with itself — see Epochs) only through posted messages.
//
// Within a cycle the engine first delivers every message due that
// cycle via Recv, in canonical (at, key) order, then calls Cycle once.
type Program interface {
	Recv(now sim.Cycle, key uint64, data any)
	Cycle(now sim.Cycle)
}

// message is a cross-shard payload pinned to a delivery cycle. The
// canonical order is (at, key, src, seq); for shard-count invariance a
// model must make (at, key) unique on its own — src is a *shard* index
// and seq a per-shard counter, so both vary with the partitioning and
// must never be the deciding comparison.
type message struct {
	at   sim.Cycle
	key  uint64
	src  int
	seq  uint64
	to   int
	data any
}

// Epochs advances K shard Programs in lockstepped epochs one lookahead
// window long. Within an epoch the shards run concurrently on a
// parallel.Pool with no shared state; at the epoch barrier the engine
// collects every posted message into the destination shards' inboxes,
// sorted canonically, and only then opens the next epoch. Because a
// post must land at least one lookahead past the sender's epoch start,
// no shard can ever need a message from an epoch that is still running
// — that is the whole correctness argument, and Post enforces it.
//
// Determinism has two layers. Worker-count invariance is structural:
// shards touch only their own state and outbox, and the barrier merge
// sorts, so the pool's interleaving is invisible. Shard-count
// invariance is a model contract: per-node (not per-shard) RNG
// streams, integer-only stats, and *every* node-to-node interaction
// posted as a message — including same-shard ones — with a key that
// totally orders same-cycle deliveries. Under that contract the
// message sequence a node observes is identical at any shard count;
// internal/bigsim is written to it and tested for it.
type Epochs struct {
	progs     []Program
	lookahead sim.Cycle
	pool      *parallel.Pool
	now       sim.Cycle
	sendFloor sim.Cycle
	outbox    [][]message
	inbox     [][]message
	seq       []uint64
	posted    uint64
}

// NewEpochs builds an epoch engine over the given shard programs.
// lookahead is the epoch length: the minimum lead time every posted
// message must honour. The pool is borrowed, not owned — one pool
// serves many runs (and closing it remains the caller's job).
func NewEpochs(progs []Program, lookahead sim.Cycle, pool *parallel.Pool) *Epochs {
	if len(progs) == 0 {
		panic("shard: epoch engine needs at least one program")
	}
	if lookahead < 1 {
		panic("shard: lookahead must be at least one cycle")
	}
	return &Epochs{
		progs:     progs,
		lookahead: lookahead,
		pool:      pool,
		outbox:    make([][]message, len(progs)),
		inbox:     make([][]message, len(progs)),
		seq:       make([]uint64, len(progs)),
	}
}

// Now reports the current epoch floor (the cycle the next epoch starts
// at). Shard programs learn in-epoch time from their Cycle calls.
func (e *Epochs) Now() sim.Cycle { return e.now }

// Posted reports how many messages have been posted over the run.
func (e *Epochs) Posted() uint64 { return e.posted }

// Post sends a message from shard `from` to shard `to`, delivered at
// cycle at. It must be called only by shard from's Program while that
// program is running (each shard owns its outbox exclusively — that is
// what makes Post safe without locks). at must be at least one
// lookahead past the sender's epoch start; violating that would ask
// for delivery inside an epoch that is already executing, so it
// panics rather than silently skewing results.
func (e *Epochs) Post(from, to int, at sim.Cycle, key uint64, data any) {
	if at < e.sendFloor {
		panic(fmt.Sprintf("shard: post at cycle %d is under the lookahead floor %d (lookahead %d)",
			at, e.sendFloor, e.lookahead))
	}
	e.seq[from]++
	e.outbox[from] = append(e.outbox[from], message{
		at: at, key: key, src: from, seq: e.seq[from], to: to, data: data,
	})
}

// Run advances the simulation by cycles. Epochs are one lookahead long
// (the final one is clamped to the requested horizon); each runs all
// shard programs on the pool, then merges outboxes at the barrier.
func (e *Epochs) Run(cycles sim.Cycle) {
	end := e.now + cycles
	for e.now < end {
		stop := e.now + e.lookahead
		if stop > end {
			stop = end
		}
		start := e.now
		e.sendFloor = e.now + e.lookahead
		e.pool.Run(len(e.progs), func(s int) {
			p := e.progs[s]
			in := e.inbox[s]
			i := 0
			for c := start; c < stop; c++ {
				for i < len(in) && in[i].at <= c {
					p.Recv(c, in[i].key, in[i].data)
					i++
				}
				p.Cycle(c)
			}
			e.inbox[s] = in[i:]
		})
		e.merge()
		e.now = stop
	}
}

// merge is the epoch barrier's sequential half: route every outbox
// message to its destination inbox and restore canonical order. The
// sort comparator ends on (src, seq) only to stay total; models keep
// (at, key) unique so the partition-dependent fields never decide.
func (e *Epochs) merge() {
	for from := range e.outbox {
		for _, m := range e.outbox[from] {
			e.inbox[m.to] = append(e.inbox[m.to], m)
			e.posted++
		}
		e.outbox[from] = e.outbox[from][:0]
	}
	for s := range e.inbox {
		in := e.inbox[s]
		sort.Slice(in, func(i, j int) bool {
			if in[i].at != in[j].at {
				return in[i].at < in[j].at
			}
			if in[i].key != in[j].key {
				return in[i].key < in[j].key
			}
			if in[i].src != in[j].src {
				return in[i].src < in[j].src
			}
			return in[i].seq < in[j].seq
		})
	}
}
