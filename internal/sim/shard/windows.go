package shard

import (
	"fmt"

	"fsoi/internal/parallel"
	"fsoi/internal/sim"
)

// This file implements the third engine in the package: Windows, the
// conservative parallel runner for full CMP simulations. Where the
// exact Engine proves the sharded schedule preserves the serial order
// on one goroutine, Windows actually runs the shards concurrently: all
// shards advance through lookahead-wide windows [T, T+LA) on a
// persistent parallel.Pool, draining their own event queues and tick
// sweeps locally, and cross-shard handoffs are buffered per (src, dst)
// shard pair and committed into the destination heaps at the window
// barrier.
//
// The determinism contract differs from the exact engine's. Exact mode
// is byte-identical to the *serial* engine; Windows is byte-identical
// to *itself* at every shard count and every worker count (the epoch
// contract, now for the real models). Worker-count invariance is
// structural: within a window shards touch only their own state, their
// own out-buffers, and their own nodes' sequence counters, and the
// commit order is invisible because the heap key is a total order.
// Shard-count invariance is a model contract made checkable: every
// event carries the partition-invariant key (at, schedulingNode,
// perNodeSeq) — never a shard index, never a global counter — so the
// event order each node observes is a pure function of the model, not
// of the partitioning. Models must in turn draw randomness from
// per-node streams and keep mutable state node-owned, with every
// cross-node interaction scheduled through a NodeProxy handoff at
// least one lookahead ahead; a cross-shard handoff under the window
// barrier panics rather than silently skewing results.

// wEvent is one scheduled callback. The (at, node, seq) triple is the
// canonical key: node is the *scheduling node's index* and seq counts
// that node's own schedules, so the ordering is identical at every
// shard count. Global (setup-time) events use node -1 and a dedicated
// counter.
type wEvent struct {
	at   sim.Cycle
	node int32
	seq  uint64
	fn   func(now sim.Cycle)
}

// wQueue is a value-typed 4-ary min-heap over (at, node, seq) — the
// serial engine's slab heap with the partition-invariant key.
type wQueue struct {
	a []wEvent
}

// less orders by time, then scheduling node, then that node's schedule
// order. Every component is partition-invariant, and the triple is
// unique, so the pop order is a total order independent of how events
// entered the heap.
func (q *wQueue) less(i, j int) bool {
	if q.a[i].at != q.a[j].at {
		return q.a[i].at < q.a[j].at
	}
	if q.a[i].node != q.a[j].node {
		return q.a[i].node < q.a[j].node
	}
	return q.a[i].seq < q.a[j].seq
}

// push inserts an event, sifting it up to its heap position.
func (q *wQueue) push(e wEvent) {
	q.a = append(q.a, e)
	i := len(q.a) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !q.less(i, p) {
			break
		}
		q.a[i], q.a[p] = q.a[p], q.a[i]
		i = p
	}
}

// pop removes and returns the minimum event, zeroing the vacated slot
// so the slab does not pin the callback closure.
func (q *wQueue) pop() wEvent {
	top := q.a[0]
	n := len(q.a) - 1
	q.a[0] = q.a[n]
	q.a[n] = wEvent{}
	q.a = q.a[:n]
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		best := c
		hi := c + 4
		if hi > n {
			hi = n
		}
		for k := c + 1; k < hi; k++ {
			if q.less(k, best) {
				best = k
			}
		}
		if !q.less(best, i) {
			break
		}
		q.a[i], q.a[best] = q.a[best], q.a[i]
		i = best
	}
	return top
}

// wTicker pins a registered ticker to its owning node for the shard's
// per-cycle sweep.
type wTicker struct {
	node int32
	t    sim.Ticker
}

// wShard is one shard's private world: its event heap, its tickers,
// its window-local clock, its outgoing handoff buffers, and its
// meters. Everything here is touched only by the shard's worker while
// a window runs and only by the coordinating goroutine at the barrier,
// so no field needs synchronization beyond the pool's own
// happens-before edges.
type wShard struct {
	q       wQueue
	tickers []wTicker
	now     sim.Cycle
	out     [][]wEvent // buffered cross-shard handoffs, indexed by destination shard
	stop    bool

	fired    uint64
	pending  int
	maxDepth int
	handoffs uint64 // cross-shard handoffs buffered by this shard
	tight    uint64 // handoffs landing exactly on the window barrier
}

// push enqueues locally and tracks the depth high-water mark.
func (s *wShard) push(e wEvent) {
	s.q.push(e)
	s.pending++
	if s.pending > s.maxDepth {
		s.maxDepth = s.pending
	}
}

// run advances the shard from cycle `from` up to (not including) `to`:
// per cycle, due events in canonical order, then the tick sweep in
// registration order — the same phase structure as the serial engine.
func (s *wShard) run(from, to sim.Cycle) {
	for c := from; c < to; c++ {
		s.now = c
		for len(s.q.a) > 0 && s.q.a[0].at <= c {
			ev := s.q.pop()
			s.pending--
			s.fired++
			ev.fn(c)
		}
		for _, te := range s.tickers {
			te.t.Tick(c)
		}
	}
	s.now = to
}

// Windows is the conservative parallel engine. Construct with
// NewWindows, assign the node→shard map with AssignNodes, declare the
// topology's lookahead with SetLookahead, then hand every component
// its node's proxy via ForNode. The engine itself implements
// sim.Driver so the system layer can drive it like any other engine,
// but its At/After/Register are setup-time only: once Run starts, all
// scheduling flows through the node proxies.
type Windows struct {
	shards    []*wShard
	pool      *parallel.Pool
	workers   int // pool parallelism, cached so the meter survives Close
	nodeShard []int
	proxies   []NodeProxy
	seqs      []uint64 // per-node schedule counters (the canonical key's seq)
	gseq      uint64   // setup-time global events (node -1)
	la        sim.Cycle
	now       sim.Cycle
	windowEnd sim.Cycle
	running   bool
	stopped   bool
	windows   uint64
}

// Windows is a Driver with a per-node scheduling surface.
var (
	_ sim.Driver        = (*Windows)(nil)
	_ sim.NodeScheduler = (*Windows)(nil)
)

// NewWindows returns a windowed engine with k shards executed by up to
// `workers` pool goroutines per window. workers <= 1 builds a serial
// pool — no goroutines at all — which is the serial replay mode: the
// same engine, the same event order, one thread. The pool is owned by
// the engine; release it with Close.
func NewWindows(k, workers int) *Windows {
	if k < 1 {
		panic("shard: windowed engine needs at least one shard")
	}
	w := &Windows{
		shards: make([]*wShard, k),
		pool:   parallel.NewPool(workers),
	}
	w.workers = w.pool.Workers()
	for i := range w.shards {
		w.shards[i] = &wShard{out: make([][]wEvent, k)}
	}
	return w
}

// Close releases the pool's goroutines. The engine must not run again.
func (w *Windows) Close() { w.pool.Close() }

// Shards reports the shard count.
func (w *Windows) Shards() int { return len(w.shards) }

// Workers reports the pool's parallelism (1 = serial replay).
func (w *Windows) Workers() int { return w.workers }

// AssignNodes maps nodes 0..nodes-1 onto shards in contiguous balanced
// blocks (node i on shard i*K/nodes, like the exact engine) and builds
// the per-node proxies and sequence counters.
func (w *Windows) AssignNodes(nodes int) {
	w.nodeShard = make([]int, nodes)
	w.seqs = make([]uint64, nodes)
	w.proxies = make([]NodeProxy, nodes)
	for i := range w.nodeShard {
		k := i * len(w.shards) / nodes
		w.nodeShard[i] = k
		w.proxies[i] = NodeProxy{w: w, node: int32(i), shard: k}
	}
}

// NodeShard reports the shard owning a node; out-of-range nodes map to
// shard 0, mirroring the exact engine.
func (w *Windows) NodeShard(node int) int {
	if node < 0 || node >= len(w.nodeShard) {
		return 0
	}
	return w.nodeShard[node]
}

// ForNode implements sim.NodeScheduler: the scheduling surface for one
// node. The proxy is only valid from that node's own execution context
// (its events and its ticks) — that discipline is what makes the
// per-node sequence counters race-free.
func (w *Windows) ForNode(node int) sim.Scheduler {
	if node < 0 || node >= len(w.proxies) {
		panic(fmt.Sprintf("shard: ForNode(%d) outside the assigned range [0,%d)", node, len(w.proxies)))
	}
	return &w.proxies[node]
}

// SetLookahead declares the window length: the conservative lookahead
// every cross-shard handoff must honour. Unlike the exact engine —
// where a short handoff merely bumps a meter — Windows *depends* on the
// window for correctness, so handoffs under it panic.
func (w *Windows) SetLookahead(la sim.Cycle) { w.la = la }

// Lookahead reports the declared window.
func (w *Windows) Lookahead() sim.Cycle { return w.la }

// Now reports the engine clock: the start of the next window. Inside a
// window, components read their shard-local clock through their proxy.
func (w *Windows) Now() sim.Cycle { return w.now }

// At schedules a setup-time global event on shard 0 (node -1 in the
// canonical order). Once a window is running, all scheduling must flow
// through node proxies; a bare At would have no owning node and no
// race-free queue to land on, so it panics.
func (w *Windows) At(at sim.Cycle, fn func(now sim.Cycle)) {
	if w.running {
		panic("shard: Windows.At during a window; schedule through ForNode proxies")
	}
	if at < w.now {
		panic("sim: event scheduled in the past")
	}
	w.gseq++
	w.shards[0].push(wEvent{at: at, node: -1, seq: w.gseq, fn: fn})
}

// After schedules a setup-time global event delay cycles from now.
func (w *Windows) After(delay sim.Cycle, fn func(now sim.Cycle)) {
	if delay < 0 {
		panic("sim: negative delay")
	}
	w.At(w.now+delay, fn)
}

// Register would add a global ticker swept over every shard — exactly
// the shared mutation the windowed engine exists to eliminate — so it
// panics. Register per-node tickers through ForNode instead.
func (w *Windows) Register(sim.Ticker) {
	panic("shard: Windows has no global tickers; register per node through ForNode")
}

// Stop requests that Run return at the next window barrier.
func (w *Windows) Stop() { w.stopped = true }

// Stopped reports whether a stop has been committed at a barrier.
func (w *Windows) Stopped() bool { return w.stopped }

// window executes one window [now, end): all shards on the pool, then
// the barrier commit.
func (w *Windows) window(end sim.Cycle) {
	w.windowEnd = end
	start := w.now
	w.running = true
	w.pool.Run(len(w.shards), func(k int) {
		w.shards[k].run(start, end)
	})
	w.running = false
	w.commit()
	w.now = end
	w.windows++
}

// commit is the barrier: collect shard-local stop requests into the
// engine flag and flush every out-buffer into its destination heap.
// The insertion order (src shard ascending) is irrelevant to the pop
// order because the heap key is total and partition-invariant — that
// is the whole point of the (at, node, seq) key.
func (w *Windows) commit() {
	for _, s := range w.shards {
		if s.stop {
			w.stopped = true
		}
	}
	for _, src := range w.shards {
		for d, buf := range src.out {
			if len(buf) == 0 {
				continue
			}
			dst := w.shards[d]
			for _, ev := range buf {
				dst.push(ev)
			}
			src.out[d] = buf[:0]
		}
	}
}

// Step advances one window (Driver's single-step, at window
// granularity: a smaller step cannot exist without violating the
// barrier discipline that makes the run partition-invariant).
func (w *Windows) Step() {
	la := w.la
	if la < 1 {
		la = 1
	}
	w.window(w.now + la)
}

// Run executes up to maxCycles cycles in lookahead-wide windows,
// stopping at the first barrier after a stop request. The final window
// is clamped to the horizon. Because stops only commit at barriers,
// the cycle count — and therefore every "cycles" metric downstream —
// is identical at every shard and worker count.
func (w *Windows) Run(maxCycles sim.Cycle) sim.Cycle {
	start := w.now
	end := start + maxCycles
	la := w.la
	if la < 1 {
		la = 1
	}
	for w.now < end && !w.stopped {
		we := w.now + la
		if we > end {
			we = end
		}
		w.window(we)
	}
	return w.now - start
}

// Pending reports unfired events across all shards (buffered handoffs
// excluded; between windows the buffers are always empty).
func (w *Windows) Pending() int {
	n := 0
	for _, s := range w.shards {
		n += s.pending
	}
	return n
}

// EventsFired reports how many events have executed across all shards.
func (w *Windows) EventsFired() uint64 {
	n := uint64(0)
	for _, s := range w.shards {
		n += s.fired
	}
	return n
}

// MaxQueueDepth reports the sum of per-shard queue high-water marks —
// an upper bound on the true global high-water, kept per shard so the
// meter needs no synchronization.
func (w *Windows) MaxQueueDepth() int {
	n := 0
	for _, s := range w.shards {
		n += s.maxDepth
	}
	return n
}

// Handoffs reports how many cross-shard handoffs were buffered over
// the run — the window traffic the barrier had to commit.
func (w *Windows) Handoffs() uint64 {
	n := uint64(0)
	for _, s := range w.shards {
		n += s.handoffs
	}
	return n
}

// TightHandoffs reports how many handoffs landed exactly on their
// window barrier — zero slack. A high tight fraction means the
// declared lookahead is the binding constraint on window length, the
// windowed engine's analogue of the exact engine's UnderLookahead.
func (w *Windows) TightHandoffs() uint64 {
	n := uint64(0)
	for _, s := range w.shards {
		n += s.tight
	}
	return n
}

// Windows reports how many windows (pool barriers) the run executed —
// with TightHandoffs, the barrier-occupancy meter: windows × shards is
// the total number of shard-window executions the pool scheduled.
func (w *Windows) WindowCount() uint64 { return w.windows }

// NodeProxy is one node's scheduling surface on the windowed engine:
// a sim.Scheduler whose events land on the node's home shard keyed by
// the node's own sequence counter, and a sim.Sharder whose Handoff
// buffers cross-shard work for the window barrier. Obtain via ForNode;
// use only from the node's own execution context.
type NodeProxy struct {
	w     *Windows
	node  int32
	shard int
}

// NodeProxy is what model code schedules through under Windows.
var (
	_ sim.Scheduler = (*NodeProxy)(nil)
	_ sim.Sharder   = (*NodeProxy)(nil)
)

// Now reports the node's shard-local clock: the executing cycle inside
// a window, the window floor at the barrier, the global clock at setup.
func (p *NodeProxy) Now() sim.Cycle { return p.w.shards[p.shard].now }

// At schedules fn on the node's home shard at cycle at.
func (p *NodeProxy) At(at sim.Cycle, fn func(now sim.Cycle)) {
	s := p.w.shards[p.shard]
	if at < s.now {
		panic("sim: event scheduled in the past")
	}
	p.w.seqs[p.node]++
	s.push(wEvent{at: at, node: p.node, seq: p.w.seqs[p.node], fn: fn})
}

// After schedules fn delay cycles from the node's shard-local clock.
func (p *NodeProxy) After(delay sim.Cycle, fn func(now sim.Cycle)) {
	if delay < 0 {
		panic("sim: negative delay")
	}
	p.At(p.w.shards[p.shard].now+delay, fn)
}

// Register adds a per-node ticker to the node's home shard sweep.
// Registration is setup-time only; the sweep order is registration
// order restricted to the shard, so each node's tickers keep their
// relative order at every shard count.
func (p *NodeProxy) Register(t sim.Ticker) {
	if p.w.running {
		panic("shard: ticker registered during a window")
	}
	s := p.w.shards[p.shard]
	s.tickers = append(s.tickers, wTicker{node: p.node, t: t})
}

// Stop requests a stop at the next window barrier. The request is
// shard-local until the barrier commits it, so other shards never
// observe it mid-window — which is what keeps the final cycle count
// partition-invariant.
func (p *NodeProxy) Stop() {
	s := p.w.shards[p.shard]
	s.stop = true
	if !p.w.running {
		p.w.stopped = true
	}
}

// Stopped reports the barrier-committed stop flag. Shard-local
// requests are invisible here: exposing them would leak the
// partitioning (whether a requester shares your shard) into model
// behaviour.
func (p *NodeProxy) Stopped() bool { return p.w.stopped }

// NodeShard implements sim.Sharder for the noc.ScheduleAt shim.
func (p *NodeProxy) NodeShard(node int) int { return p.w.NodeShard(node) }

// Handoff schedules fn on the given shard. Same-shard handoffs push
// directly (they are ordinary events). Cross-shard handoffs while a
// window is running are buffered in the shard's out-buffer for the
// barrier — and must land at or beyond the window barrier: an earlier
// cycle may already have executed on the destination shard, so the
// engine panics rather than corrupt causality. At setup time the
// destination heap is quiescent and the push is direct.
func (p *NodeProxy) Handoff(shard int, at sim.Cycle, fn func(now sim.Cycle)) {
	w := p.w
	if shard < 0 || shard >= len(w.shards) {
		panic(fmt.Sprintf("shard: Handoff to shard %d of %d", shard, len(w.shards)))
	}
	s := w.shards[p.shard]
	if shard == p.shard {
		p.At(at, fn)
		return
	}
	w.seqs[p.node]++
	ev := wEvent{at: at, node: p.node, seq: w.seqs[p.node], fn: fn}
	if !w.running {
		if at < w.now {
			panic("shard: handoff scheduled in the past")
		}
		w.shards[shard].push(ev)
		return
	}
	if at < w.windowEnd {
		panic(fmt.Sprintf("shard: cross-shard handoff at cycle %d under the window barrier %d (lookahead %d): the model broke its declared lookahead",
			at, w.windowEnd, w.la))
	}
	s.handoffs++
	if at == w.windowEnd {
		s.tight++
	}
	s.out[shard] = append(s.out[shard], ev)
}
