package shard

import (
	"fmt"
	"reflect"
	"testing"

	"fsoi/internal/sim"
)

// windowsTranscript runs a small message-passing model — each node
// ticks a local counter, fires a chain of cross-node handoffs honouring
// the lookahead, and logs every event it executes — and returns the
// per-node logs concatenated in node order. The model follows the
// Windows contract: node-owned state, all scheduling through the
// node's own proxy, cross-node interaction only via Handoff at >= LA
// ahead.
func windowsTranscript(t *testing.T, nodes, shards, workers int, cycles sim.Cycle) []string {
	t.Helper()
	const la = 2
	w := NewWindows(shards, workers)
	defer w.Close()
	w.AssignNodes(nodes)
	w.SetLookahead(la)

	logs := make([][]string, nodes)
	ticks := make([]int, nodes)
	scheds := make([]sim.Scheduler, nodes)
	for i := 0; i < nodes; i++ {
		scheds[i] = w.ForNode(i)
	}
	// Each node's ticker counts cycles; the count is folded into the log
	// at each event so tick/event interleaving differences would show.
	for i := 0; i < nodes; i++ {
		i := i
		scheds[i].Register(sim.TickFunc(func(now sim.Cycle) { ticks[i]++ }))
	}

	// hop forwards a token from node src to (src*7+3)%nodes, la cycles
	// out, logging at both ends. Declared inside each node's execution
	// context via the closure chain.
	var hop func(src int, hops int) func(now sim.Cycle)
	hop = func(src, hops int) func(now sim.Cycle) {
		return func(now sim.Cycle) {
			logs[src] = append(logs[src], fmt.Sprintf("n%d@%d hops=%d ticks=%d", src, now, hops, ticks[src]))
			if hops == 0 {
				return
			}
			dst := (src*7 + 3) % nodes
			sh := scheds[src].(sim.Sharder)
			sh.Handoff(sh.NodeShard(dst), now+la, hop(dst, hops-1))
			// A same-node follow-up inside the window exercises the
			// local heap path.
			scheds[src].After(1, func(now sim.Cycle) {
				logs[src] = append(logs[src], fmt.Sprintf("n%d@%d local ticks=%d", src, now, ticks[src]))
			})
		}
	}
	for i := 0; i < nodes; i++ {
		scheds[i].At(sim.Cycle(i%3), hop(i, 20))
	}
	w.Run(cycles)

	var out []string
	for i := 0; i < nodes; i++ {
		out = append(out, logs[i]...)
	}
	out = append(out, fmt.Sprintf("cycles=%d fired=%d", w.Now(), w.EventsFired()))
	return out
}

// TestWindowsWorkerInvariance: the transcript is byte-identical at
// every worker count for a fixed shard count.
func TestWindowsWorkerInvariance(t *testing.T) {
	ref := windowsTranscript(t, 16, 4, 1, 200)
	for _, workers := range []int{2, 4, 8} {
		got := windowsTranscript(t, 16, 4, workers, 200)
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("transcript diverged at %d workers:\nref %v\ngot %v", workers, ref, got)
		}
	}
}

// TestWindowsShardInvariance: the transcript is byte-identical at
// every shard count for a fixed worker count.
func TestWindowsShardInvariance(t *testing.T) {
	ref := windowsTranscript(t, 16, 1, 1, 200)
	for _, shards := range []int{2, 4, 8, 16} {
		got := windowsTranscript(t, 16, shards, 4, 200)
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("transcript diverged at %d shards:\nref %v\ngot %v", shards, ref, got)
		}
	}
}

// TestWindowsUnderLookaheadPanics: a cross-shard handoff under the
// window barrier must panic, not silently reorder.
func TestWindowsUnderLookaheadPanics(t *testing.T) {
	w := NewWindows(2, 1)
	defer w.Close()
	w.AssignNodes(4)
	w.SetLookahead(4)
	sched := w.ForNode(0)
	sched.At(0, func(now sim.Cycle) {
		defer func() {
			if recover() == nil {
				t.Error("under-lookahead handoff did not panic")
			}
			w.Stop()
		}()
		sh := sched.(sim.Sharder)
		sh.Handoff(sh.NodeShard(3), now+1, func(sim.Cycle) {})
	})
	w.Run(8)
}

// TestWindowsStopAtBarrier: stops commit at window barriers, so the
// cycle count is a multiple of the lookahead regardless of which
// in-window cycle requested the stop — that is what keeps "cycles"
// metrics partition-invariant.
func TestWindowsStopAtBarrier(t *testing.T) {
	for _, workers := range []int{1, 4} {
		w := NewWindows(4, workers)
		w.AssignNodes(8)
		w.SetLookahead(4)
		sched := w.ForNode(5)
		sched.At(9, func(now sim.Cycle) { sched.Stop() })
		ran := w.Run(100)
		w.Close()
		if ran != 12 {
			t.Fatalf("workers=%d: ran %d cycles, want stop committed at the cycle-12 barrier", workers, ran)
		}
		if !w.Stopped() {
			t.Fatalf("workers=%d: stop not committed", workers)
		}
	}
}

// TestWindowsSetupHandoff: before the first window, handoffs push
// straight into the destination heap (construction-time wiring).
func TestWindowsSetupHandoff(t *testing.T) {
	w := NewWindows(2, 1)
	defer w.Close()
	w.AssignNodes(4)
	w.SetLookahead(2)
	fired := false
	p := w.ForNode(0).(sim.Sharder)
	p.Handoff(p.NodeShard(3), 1, func(now sim.Cycle) { fired = true })
	w.Run(4)
	if !fired {
		t.Fatal("setup-time handoff never fired")
	}
}

// TestWindowsMeters: handoff and window meters add up.
func TestWindowsMeters(t *testing.T) {
	w := NewWindows(2, 1)
	defer w.Close()
	w.AssignNodes(2)
	w.SetLookahead(2)
	sched := w.ForNode(0)
	sched.At(0, func(now sim.Cycle) {
		sh := sched.(sim.Sharder)
		sh.Handoff(sh.NodeShard(1), now+2, func(sim.Cycle) {}) // tight: lands on the barrier
		sh.Handoff(sh.NodeShard(1), now+3, func(sim.Cycle) {})
	})
	w.Run(6)
	if w.Handoffs() != 2 {
		t.Fatalf("handoffs = %d, want 2", w.Handoffs())
	}
	if w.TightHandoffs() != 1 {
		t.Fatalf("tight handoffs = %d, want 1", w.TightHandoffs())
	}
	if w.WindowCount() != 3 {
		t.Fatalf("windows = %d, want 3", w.WindowCount())
	}
}
