package shard

import (
	"fmt"
	"testing"

	"fsoi/internal/sim"
)

// BenchmarkShardStep measures the exact engine's merge loop: events
// spread over K shards with continuous reschedule churn, the regime
// where the per-event merge cost shows. The cached top-heap replaced
// an O(K) linear scan over shard heads per popped event; K=1 is the
// degenerate serial case, K=4/8 the shard counts the CI equivalence
// runs and the 1024-node scale runs use.
func BenchmarkShardStep(b *testing.B) {
	for _, k := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			e := New(k)
			e.AssignNodes(k * 8)
			var fn func(now sim.Cycle)
			fn = func(now sim.Cycle) { e.After(sim.Cycle(int(now)%31+1), fn) }
			for i := 0; i < 4096; i++ {
				e.SetShard(i % k)
				e.After(sim.Cycle(i%63+1), fn)
			}
			e.Run(64)
			b.ReportAllocs()
			b.ResetTimer()
			e.Run(sim.Cycle(b.N))
		})
	}
}

// BenchmarkWindowsStep measures the windowed engine's serial-replay
// overhead on the same churn workload: per-window pool barriers plus
// the per-node-keyed heaps, with one worker so the number is engine
// overhead, not host parallelism.
func BenchmarkWindowsStep(b *testing.B) {
	for _, k := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			nodes := k * 8
			w := NewWindows(k, 1)
			defer w.Close()
			w.AssignNodes(nodes)
			w.SetLookahead(2)
			scheds := make([]sim.Scheduler, nodes)
			for i := range scheds {
				scheds[i] = w.ForNode(i)
			}
			fns := make([]func(now sim.Cycle), nodes)
			for i := range fns {
				i := i
				fns[i] = func(now sim.Cycle) { scheds[i].After(sim.Cycle(int(now)%31+1), fns[i]) }
			}
			for i := 0; i < 4096; i++ {
				scheds[i%nodes].After(sim.Cycle(i%63+1), fns[i%nodes])
			}
			w.Run(64)
			b.ReportAllocs()
			b.ResetTimer()
			w.Run(sim.Cycle(b.N))
		})
	}
}
