// Package shard implements sharded variants of the simulation engine:
// per-node-group event queues that advance in lockstepped epochs, with
// cross-shard work handed off at least one lookahead window ahead of
// the receiving shard's clock.
//
// Two engines live here, with different contracts:
//
//   - Engine (this file) is the exact mode: K event queues popped
//     through a k-way merge on the same global (cycle, seq) order the
//     serial sim.Engine uses, so a full CMP simulation — whose FSOI
//     network draws from one RNG stream in event-execution order — is
//     byte-identical to the serial engine at any shard count, by
//     construction. Exact mode runs on one goroutine; its job is to
//     prove the sharded schedule (queue placement, handoffs, lookahead
//     discipline) preserves the serial order, and to meter how much of
//     the event flow crosses shards under the declared lookahead.
//
//   - Epochs (epoch.go) is the parallel mode: share-nothing shard
//     programs advanced by a worker pool in lookahead-sized epochs,
//     exchanging messages merged in canonical order at epoch
//     boundaries. It requires models built for it (per-node RNG
//     streams, integer stats, all interaction through messages) and
//     powers the 256/1024-node traffic models in internal/bigsim.
package shard

import (
	"fmt"

	"fsoi/internal/sim"
)

// tickerEntry pins a registered ticker to the shard that was current at
// registration time, so shard accounting survives the ticker sweep.
type tickerEntry struct {
	shard int
	t     sim.Ticker
}

// Engine is the exact sharded engine. It implements sim.Driver with K
// per-shard event queues and pops them through a k-way merge on the
// global (at, seq) order, which makes its event execution — and hence
// every RNG draw and stat update made from event callbacks —
// byte-identical to the serial sim.Engine's.
//
// A current-shard cursor tracks which shard's code is executing: events
// scheduled with At land on the scheduling shard's queue, and Handoff
// moves work onto another shard's queue explicitly. The cursor is
// bookkeeping, not a correctness boundary — exact mode would execute
// identically under any placement — but it is what lets the engine
// meter cross-shard traffic and flag handoffs that arrive closer than
// the declared lookahead, i.e. exactly the events that would stall a
// parallel epoch run.
type Engine struct {
	shards    []sim.Queue
	tickers   []tickerEntry
	nodeShard []int
	now       sim.Cycle
	seq       uint64
	cur       int
	stopped   bool
	fired     uint64
	pending   int
	maxDepth  int
	lookahead sim.Cycle
	handoffs  uint64
	underLA   uint64

	// tops is an index-heap over the non-empty shards, ordered by each
	// shard's head event under the global (at, seq) order; topPos maps a
	// shard to its heap slot (-1 when its queue is empty). It replaces
	// the O(K) linear scan over shard tops the merge loop used to do per
	// event with an O(log K) fix-up per push/pop.
	tops   []int
	topPos []int
}

// Engine is a drop-in Driver and the repo's only Sharder.
var (
	_ sim.Driver  = (*Engine)(nil)
	_ sim.Sharder = (*Engine)(nil)
)

// New returns an exact sharded engine with k per-shard queues, at cycle
// 0 with shard 0 current.
func New(k int) *Engine {
	if k < 1 {
		panic("shard: engine needs at least one shard")
	}
	e := &Engine{
		shards: make([]sim.Queue, k),
		topPos: make([]int, k),
	}
	for i := range e.topPos {
		e.topPos[i] = -1
	}
	return e
}

// Shards reports the shard count.
func (e *Engine) Shards() int { return len(e.shards) }

// SetShard moves the current-shard cursor; the system layer brackets
// each node group's construction with it so components register their
// tickers and initial events on their home shard.
func (e *Engine) SetShard(k int) {
	if k < 0 || k >= len(e.shards) {
		panic(fmt.Sprintf("shard: SetShard(%d) out of range [0,%d)", k, len(e.shards)))
	}
	e.cur = k
}

// CurrentShard reports the cursor — the shard whose code is executing.
func (e *Engine) CurrentShard() int { return e.cur }

// AssignNodes maps nodes 0..nodes-1 onto shards in contiguous balanced
// blocks: node i lands on shard i*K/nodes. Contiguity keeps a mesh's
// row-major neighbours mostly same-shard, which is what the handoff
// meters are meant to measure.
func (e *Engine) AssignNodes(nodes int) {
	e.nodeShard = make([]int, nodes)
	for i := range e.nodeShard {
		e.nodeShard[i] = i * len(e.shards) / nodes
	}
}

// NodeShard reports the shard owning a node. Nodes outside the assigned
// range (or before AssignNodes) map to shard 0 — global components like
// memory-controller edges live with the first shard.
func (e *Engine) NodeShard(node int) int {
	if node < 0 || node >= len(e.nodeShard) {
		return 0
	}
	return e.nodeShard[node]
}

// SetLookahead declares the topology's conservative lookahead window
// (FSOI: the +2-cycle confirmation delay; mesh: the 1-cycle link
// traversal). Handoffs that land closer than this are counted by
// UnderLookahead rather than rejected: exact mode stays correct either
// way, and the counter is the measurement of whether a topology's
// event flow honours the window it declared.
func (e *Engine) SetLookahead(la sim.Cycle) { e.lookahead = la }

// Lookahead reports the declared window.
func (e *Engine) Lookahead() sim.Cycle { return e.lookahead }

// Handoff schedules fn on the given shard's queue, preserving the
// global sequence order. Cross-shard handoffs are metered; those closer
// than the declared lookahead additionally bump UnderLookahead.
func (e *Engine) Handoff(shard int, at sim.Cycle, fn func(now sim.Cycle)) {
	if at < e.now {
		panic("shard: handoff scheduled in the past")
	}
	if shard < 0 || shard >= len(e.shards) {
		panic(fmt.Sprintf("shard: Handoff to shard %d of %d", shard, len(e.shards)))
	}
	if shard != e.cur {
		e.handoffs++
		if at < e.now+e.lookahead {
			e.underLA++
		}
	}
	e.push(shard, at, fn)
}

// Handoffs reports how many cross-shard handoffs have been scheduled.
func (e *Engine) Handoffs() uint64 { return e.handoffs }

// UnderLookahead reports how many cross-shard handoffs arrived closer
// than the declared lookahead window. Zero means the topology's event
// flow would sustain a parallel epoch run at that window.
func (e *Engine) UnderLookahead() uint64 { return e.underLA }

// push assigns the next global sequence number and enqueues on shard k.
func (e *Engine) push(k int, at sim.Cycle, fn func(now sim.Cycle)) {
	e.seq++
	e.shards[k].Push(at, e.seq, fn)
	e.pending++
	if e.pending > e.maxDepth {
		e.maxDepth = e.pending
	}
	e.topPushed(k)
}

// topLess orders two shards by their head events under the global
// (at, seq) order. Both shards must be non-empty (they are in the
// heap).
func (e *Engine) topLess(a, b int) bool {
	aAt, aSeq, _ := e.shards[a].Top()
	bAt, bSeq, _ := e.shards[b].Top()
	if aAt != bAt {
		return aAt < bAt
	}
	return aSeq < bSeq
}

// topSwap exchanges two heap slots, keeping topPos consistent.
func (e *Engine) topSwap(i, j int) {
	e.tops[i], e.tops[j] = e.tops[j], e.tops[i]
	e.topPos[e.tops[i]] = i
	e.topPos[e.tops[j]] = j
}

// topUp sifts the shard at heap slot i toward the root and returns its
// final slot.
func (e *Engine) topUp(i int) int {
	for i > 0 {
		p := (i - 1) / 2
		if !e.topLess(e.tops[i], e.tops[p]) {
			break
		}
		e.topSwap(i, p)
		i = p
	}
	return i
}

// topDown sifts the shard at heap slot i toward the leaves.
func (e *Engine) topDown(i int) {
	n := len(e.tops)
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && e.topLess(e.tops[c+1], e.tops[c]) {
			c++
		}
		if !e.topLess(e.tops[c], e.tops[i]) {
			break
		}
		e.topSwap(i, c)
		i = c
	}
}

// topPushed restores shard k's heap position after a push onto its
// queue: an absent shard is inserted; an existing one can only have
// moved earlier, so a sift toward the root suffices.
func (e *Engine) topPushed(k int) {
	if e.topPos[k] < 0 {
		e.tops = append(e.tops, k)
		e.topPos[k] = len(e.tops) - 1
	}
	e.topUp(e.topPos[k])
}

// topPopped restores the heap after shard k's head was popped: the new
// head is later (sift down) or the queue emptied (remove the shard).
func (e *Engine) topPopped(k int) {
	i := e.topPos[k]
	if e.shards[k].Len() == 0 {
		last := len(e.tops) - 1
		e.topSwap(i, last)
		e.tops = e.tops[:last]
		e.topPos[k] = -1
		if i < last {
			e.topDown(e.topUp(i))
		}
		return
	}
	e.topDown(i)
}

// Now reports the current cycle.
func (e *Engine) Now() sim.Cycle { return e.now }

// Register adds a ticker on the current shard. The sweep order is
// global registration order, same as the serial engine.
func (e *Engine) Register(t sim.Ticker) {
	e.tickers = append(e.tickers, tickerEntry{shard: e.cur, t: t})
}

// At schedules fn at cycle at on the current shard's queue. Past
// scheduling panics, mirroring the serial engine.
func (e *Engine) At(at sim.Cycle, fn func(now sim.Cycle)) {
	if at < e.now {
		panic("sim: event scheduled in the past")
	}
	e.push(e.cur, at, fn)
}

// After schedules fn delay cycles from now on the current shard.
func (e *Engine) After(delay sim.Cycle, fn func(now sim.Cycle)) {
	if delay < 0 {
		panic("sim: negative delay")
	}
	e.At(e.now+delay, fn)
}

// Stop requests that Run return at the end of the current cycle.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// Step advances one cycle: fires due events across all shards in
// global (at, seq) order via the cached top-heap merge, then ticks
// tickers in registration order. Each event and tick executes with the
// cursor on its home shard, so nested At calls land there.
func (e *Engine) Step() {
	for len(e.tops) > 0 {
		k := e.tops[0]
		at, _, _ := e.shards[k].Top()
		if at > e.now {
			break
		}
		e.cur = k
		_, fn := e.shards[k].Pop()
		e.topPopped(k)
		e.pending--
		e.fired++
		fn(e.now)
	}
	for _, te := range e.tickers {
		e.cur = te.shard
		te.t.Tick(e.now)
	}
	e.now++
}

// Run executes up to maxCycles cycles, stopping early if Stop is
// called. It returns the number of cycles actually executed.
func (e *Engine) Run(maxCycles sim.Cycle) sim.Cycle {
	start := e.now
	for e.now-start < maxCycles && !e.stopped {
		e.Step()
	}
	return e.now - start
}

// Pending reports the number of unfired events across all shards.
func (e *Engine) Pending() int { return e.pending }

// EventsFired reports how many scheduled events have executed.
func (e *Engine) EventsFired() uint64 { return e.fired }

// MaxQueueDepth reports the high-water mark of total pending events.
func (e *Engine) MaxQueueDepth() int { return e.maxDepth }
