package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestRNGStreamsIndependent(t *testing.T) {
	root := NewRNG(7)
	s1 := root.NewStream("alpha")
	s2 := root.NewStream("beta")
	if s1.Uint64() == s2.Uint64() {
		t.Fatal("named streams should be decorrelated")
	}
}

func TestRNGStreamDerivationDeterministic(t *testing.T) {
	a := NewRNG(9).NewStream("x")
	b := NewRNG(9).NewStream("x")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-name streams from same state diverged")
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(3)
	err := quick.Check(func(n uint8) bool {
		m := int(n%100) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %g", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(13)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %g, want ~0.5", mean)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(17)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Exp(5)
	}
	if mean := sum / n; math.Abs(mean-5) > 0.2 {
		t.Fatalf("exponential mean = %g, want ~5", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(19)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency = %g", p)
	}
}

func TestGeometric(t *testing.T) {
	r := NewRNG(23)
	if v := r.Geometric(1); v != 0 {
		t.Fatalf("Geometric(1) = %d, want 0", v)
	}
	sum := 0
	const n = 50000
	for i := 0; i < n; i++ {
		sum += r.Geometric(0.5)
	}
	if mean := float64(sum) / n; math.Abs(mean-1) > 0.05 {
		t.Fatalf("Geometric(0.5) mean = %g, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(29)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(31)
	z := NewZipf(r, 100, 1.0)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("Zipf should favor low ranks: c0=%d c50=%d", counts[0], counts[50])
	}
	if counts[0] == 0 || counts[99] == 0 {
		t.Fatal("Zipf support should cover the full range at s=1")
	}
}

func TestEngineTickOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Register(TickFunc(func(Cycle) { order = append(order, 1) }))
	e.Register(TickFunc(func(Cycle) { order = append(order, 2) }))
	e.Step()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("tick order = %v", order)
	}
}

func TestEngineEventTiming(t *testing.T) {
	e := NewEngine()
	var fired Cycle = -1
	e.At(5, func(now Cycle) { fired = now })
	e.Run(10)
	if fired != 5 {
		t.Fatalf("event fired at %d, want 5", fired)
	}
}

func TestEngineEventsBeforeTickers(t *testing.T) {
	e := NewEngine()
	var seq []string
	e.Register(TickFunc(func(now Cycle) {
		if now == 3 {
			seq = append(seq, "tick")
		}
	}))
	e.At(3, func(Cycle) { seq = append(seq, "event") })
	e.Run(5)
	if len(seq) != 2 || seq[0] != "event" || seq[1] != "tick" {
		t.Fatalf("sequence = %v, want [event tick]", seq)
	}
}

func TestEngineEventFIFOWithinCycle(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(2, func(Cycle) { order = append(order, i) })
	}
	e.Run(3)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-cycle events reordered: %v", order)
		}
	}
}

// TestEngineCounters: the profiling counters track fired events and the
// queue's high-water mark without touching the hot path's behavior.
func TestEngineCounters(t *testing.T) {
	e := NewEngine()
	for i := Cycle(1); i <= 5; i++ {
		e.At(i, func(Cycle) {})
	}
	if e.MaxQueueDepth() != 5 {
		t.Fatalf("max depth = %d, want 5 (all events queued before any fire)", e.MaxQueueDepth())
	}
	e.Run(3) // cycles 0..2: the events at cycles 1 and 2 fire
	if e.EventsFired() != 2 {
		t.Fatalf("fired = %d, want 2", e.EventsFired())
	}
	e.Run(10)
	if e.EventsFired() != 5 {
		t.Fatalf("fired = %d, want 5 after draining", e.EventsFired())
	}
	if e.MaxQueueDepth() != 5 {
		t.Fatalf("max depth moved to %d after drain, want to stay 5", e.MaxQueueDepth())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	e.At(3, func(Cycle) { e.Stop() })
	ran := e.Run(100)
	if ran != 4 {
		t.Fatalf("ran %d cycles, want 4 (stop at end of cycle 3)", ran)
	}
}

// TestEngineSteadyStateZeroAllocs pins the slab design down: once the
// event queue has grown to its working depth, scheduling and firing
// events must not allocate at all. (The callback itself is hoisted to a
// variable so the measurement sees only the queue, not closure capture.)
func TestEngineSteadyStateZeroAllocs(t *testing.T) {
	e := NewEngine()
	fn := func(Cycle) {}
	for i := 0; i < 1024; i++ {
		e.After(Cycle(i%17), fn)
	}
	e.Run(32)
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			e.After(Cycle(i%5+1), fn)
		}
		e.Run(8)
	})
	if allocs != 0 {
		t.Fatalf("steady-state event scheduling allocates %.1f objects per run, want 0", allocs)
	}
}

// TestEngineSlabRetainedAcrossRun guards the capacity-retention fix: a
// drained queue keeps its backing slab, so a second burst of the same
// depth reuses it instead of re-growing.
func TestEngineSlabRetainedAcrossRun(t *testing.T) {
	e := NewEngine()
	fn := func(Cycle) {}
	for i := 0; i < 512; i++ {
		e.After(Cycle(i%31), fn)
	}
	e.Run(64)
	if e.Pending() != 0 {
		t.Fatalf("%d events still pending after drain", e.Pending())
	}
	if got := cap(e.events.a); got < 512 {
		t.Fatalf("slab capacity %d after drain, want >= 512 retained", got)
	}
	allocs := testing.AllocsPerRun(20, func() {
		for i := 0; i < 512; i++ {
			e.After(Cycle(i%31+1), fn)
		}
		e.Run(64)
	})
	if allocs != 0 {
		t.Fatalf("refilling a drained queue allocates %.1f objects, want 0", allocs)
	}
}

// TestEventQueueOrdersLikeTotalOrder drives the 4-ary heap directly
// with adversarial (at, seq) patterns and checks pops come out in
// strict (at, seq) order — the property that keeps replays
// byte-identical to the old pointer-heap implementation.
func TestEventQueueOrdersLikeTotalOrder(t *testing.T) {
	rng := NewRNG(99)
	var q eventQueue
	const n = 5000
	for seq := 0; seq < n; seq++ {
		q.push(event{at: Cycle(rng.Intn(64)), seq: uint64(seq)})
	}
	var prev event
	for i := 0; i < n; i++ {
		e := q.pop()
		if i > 0 && (e.at < prev.at || (e.at == prev.at && e.seq < prev.seq)) {
			t.Fatalf("pop %d out of order: (%d,%d) after (%d,%d)", i, e.at, e.seq, prev.at, prev.seq)
		}
		prev = e
	}
	if len(q.a) != 0 {
		t.Fatalf("%d events left after draining", len(q.a))
	}
}

func TestEnginePastEventPanics(t *testing.T) {
	e := NewEngine()
	e.Run(5)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past should panic")
		}
	}()
	e.At(2, func(Cycle) {})
}

func TestEngineEventChaining(t *testing.T) {
	e := NewEngine()
	hops := 0
	var chain func(now Cycle)
	chain = func(now Cycle) {
		hops++
		if hops < 5 {
			e.After(2, chain)
		}
	}
	e.After(0, chain)
	e.Run(20)
	if hops != 5 {
		t.Fatalf("chained %d times, want 5", hops)
	}
	if e.Pending() != 0 {
		t.Fatalf("%d events still pending", e.Pending())
	}
}
