package sim

import "testing"

// BenchmarkEngineSchedule measures the event-queue hot path in
// isolation: a rolling window of timed callbacks, the access pattern the
// FSOI slot machinery produces (schedule at slot end, fire, reschedule).
// The headline figures are ns per scheduled event and allocs per event;
// the slab-backed queue must report 0 allocs/op at steady state.
func BenchmarkEngineSchedule(b *testing.B) {
	e := NewEngine()
	fn := func(Cycle) {}
	// Warm the queue so slab growth is not billed to the loop.
	for i := 0; i < 1024; i++ {
		e.After(Cycle(i%17), fn)
	}
	e.Run(32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(Cycle(i%7+1), fn)
		if i%64 == 63 {
			e.Run(8)
		}
	}
	b.StopTimer()
	e.Run(16)
}

// BenchmarkEngineChurn measures a deeper queue: 4096 pending events with
// continuous push/pop churn, the regime where heap arity and pointer
// chasing dominate.
func BenchmarkEngineChurn(b *testing.B) {
	e := NewEngine()
	var fn func(now Cycle)
	fn = func(now Cycle) { e.After(Cycle(int(now)%31+1), fn) }
	for i := 0; i < 4096; i++ {
		e.After(Cycle(i%63+1), fn)
	}
	e.Run(64)
	b.ReportAllocs()
	b.ResetTimer()
	e.Run(Cycle(b.N))
}
