package sim

// Queue exposes the engine's slab-backed 4-ary event heap to the
// sharded engine (internal/sim/shard), which keeps one per shard. The
// (at, seq) pair orders pops totally; callers own seq assignment, which
// is what lets the sharded engine preserve the serial engine's global
// schedule order across many queues.
type Queue struct {
	q eventQueue
}

// Push inserts a callback ordered by (at, seq).
func (q *Queue) Push(at Cycle, seq uint64, fn func(now Cycle)) {
	q.q.push(event{at: at, seq: seq, fn: fn})
}

// Len reports the number of pending events.
func (q *Queue) Len() int { return len(q.q.a) }

// Top reports the minimum (at, seq) without popping; ok is false on an
// empty queue.
func (q *Queue) Top() (at Cycle, seq uint64, ok bool) {
	if len(q.q.a) == 0 {
		return 0, 0, false
	}
	return q.q.a[0].at, q.q.a[0].seq, true
}

// Pop removes and returns the minimum event's callback. It panics on an
// empty queue; callers gate on Len or Top.
func (q *Queue) Pop() (at Cycle, fn func(now Cycle)) {
	e := q.q.pop()
	return e.at, e.fn
}
