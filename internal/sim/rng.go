// Package sim provides the deterministic simulation kernel used by every
// other module in this repository: a cycle clock, a timed event queue, and
// named pseudo-random streams.
//
// Determinism is a first-class requirement. Every source of randomness is
// an *RNG derived from a seed and a name, so that a simulation configured
// identically always produces bit-identical results, independent of
// iteration order elsewhere in the program.
package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256**). It is not safe for concurrent use; derive one stream per
// logical owner instead of sharing.
type RNG struct {
	s [4]uint64
}

// splitMix64 advances x and returns the next splitmix64 output. It is used
// only for seeding so that nearby seeds yield well-separated states.
func splitMix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded from seed. Two generators with the
// same seed produce the same sequence.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	for i := range r.s {
		r.s[i] = splitMix64(&x)
	}
	// A state of all zeros would be a fixed point; splitmix64 of any seed
	// cannot produce four zero words, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// NewStream derives an independent generator from r identified by name.
// Deriving the same name twice from generators in the same state yields
// identical streams; different names yield decorrelated streams.
func (r *RNG) NewStream(name string) *RNG {
	h := uint64(14695981039346656037) // FNV-64 offset basis
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return NewRNG(h ^ r.Uint64())
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 { //lint:allow floateq exact-zero rejection sampling: log(0) is the only excluded point
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Geometric returns the number of failures before the first success in a
// Bernoulli(p) sequence. It returns 0 immediately when p >= 1.
func (r *RNG) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		panic("sim: Geometric called with non-positive p")
	}
	n := 0
	for !r.Bool(p) {
		n++
	}
	return n
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Zipf returns a value in [0, n) drawn from a Zipf-like distribution with
// exponent s, using inverse-CDF over a precomputed table when called via
// NewZipf; this direct method is O(n) and intended for small n.
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf builds a Zipf(n, s) sampler drawing from rng.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("sim: NewZipf called with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, rng: rng}
}

// Next draws the next sample.
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
