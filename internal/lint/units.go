package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// Units enforces the physical-unit discipline of the photonics stack.
// internal/optics defines DB, DBm, Watts, Joules, and Seconds as
// distinct types, and internal/sim defines Cycle; Go's type checker
// already rejects arithmetic across *different* underlying-float64
// definitions, so what is left for analysis is exactly the holes a
// conversion or a same-type operation can punch through that wall:
//
//   - Unit(expr) where expr already carries a different unit relabels a
//     quantity without physics (DBm(loss) turns a loss into a level);
//   - float64(expr) where expr carries a unit strips it, re-opening
//     unchecked mixing downstream — boundaries that genuinely need raw
//     floats (a solver kernel, a responsivity product) carry a
//     //lint:allow with the justification;
//   - float64(cycles) hides a time quantity: cycles convert to wall
//     time only through optics.CycleSeconds, which demands the clock;
//   - DBm + DBm adds two absolute power levels — never physical; a
//     budget adds a level and a loss (DBm.Plus(DB));
//   - Unit * Unit squares the dimension, and DB / DB divides a
//     log-scale quantity; both survive the type checker because the
//     operands share a type.
//
// The analyzer runs only over the physics layer (internal/optics,
// internal/power, internal/thermal): consumers above it (experiments,
// rendering) strip units at the presentation boundary by design.
// Files named units.go are exempt — the conversion methods themselves
// must strip and tag to exist at all.
type Units struct{}

// Name implements Analyzer.
func (Units) Name() string { return "units" }

// Doc implements Analyzer.
func (Units) Doc() string {
	return "physical quantities keep their unit types; conversions and same-unit products that fake physics are flagged"
}

// unitsScope lists the module-relative roots where the unit discipline
// is enforced.
var unitsScope = []string{"internal/optics", "internal/power", "internal/thermal"}

// inUnitsScope reports whether rel falls under the physics layer.
func inUnitsScope(rel string) bool {
	for _, root := range unitsScope {
		if rel == root || isUnder(rel, root) {
			return true
		}
	}
	return false
}

// unitName classifies t: one of the optics unit types ("DB", "DBm",
// "Watts", "Joules", "Seconds"), the engine's "sim.Cycle", or "" for
// everything else. Matching is by type name plus defining-package
// suffix so testdata fixtures can impersonate module packages.
func unitName(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	switch obj.Name() {
	case "DB", "DBm", "Watts", "Joules", "Seconds":
		if pkgPathHasSuffix(obj.Pkg(), "internal/optics") {
			return obj.Name()
		}
	case "Cycle":
		if pkgPathHasSuffix(obj.Pkg(), "internal/sim") {
			return "sim.Cycle"
		}
	}
	return ""
}

// Check implements Analyzer.
func (u Units) Check(p *Package) []Finding {
	if !inUnitsScope(p.ModuleRel) {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		if filepath.Base(p.Fset.Position(f.Pos()).Filename) == "units.go" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.CallExpr:
				out = append(out, u.checkConversion(p, v)...)
			case *ast.BinaryExpr:
				out = append(out, u.checkArithmetic(p, v)...)
			}
			return true
		})
	}
	return out
}

// checkConversion flags unit-relabeling and unit-stripping conversions.
func (Units) checkConversion(p *Package, call *ast.CallExpr) []Finding {
	tv, ok := p.Info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return nil
	}
	src := unitName(p.Info.Types[call.Args[0]].Type)
	if src == "" {
		return nil
	}
	dst := unitName(tv.Type)
	switch {
	case dst == src:
		return nil
	case dst != "":
		return []Finding{finding(p, "units", call,
			"%s relabels a %s as a %s without physics; go through the conversion methods in internal/optics/units.go",
			exprString(call), src, dst)}
	case src == "sim.Cycle":
		return []Finding{finding(p, "units", call,
			"%s discards the cycle unit; cycles become wall time only through optics.CycleSeconds, which demands the clock rate",
			exprString(call))}
	default:
		return []Finding{finding(p, "units", call,
			"%s strips the %s unit, re-opening unchecked mixing; keep the quantity typed or justify the raw-float boundary",
			exprString(call), src)}
	}
}

// checkArithmetic flags same-type operations that fake physics: the
// type checker cannot help when both operands share the unit.
func (Units) checkArithmetic(p *Package, be *ast.BinaryExpr) []Finding {
	xt, yt := p.Info.Types[be.X], p.Info.Types[be.Y]
	if xt.Value != nil || yt.Value != nil {
		return nil // a constant operand is a tag or a scale, not a quantity
	}
	x, y := unitName(xt.Type), unitName(yt.Type)
	if x == "" || x != y {
		return nil
	}
	switch be.Op {
	case token.ADD, token.SUB:
		if x == "DBm" {
			return []Finding{finding(p, "units", be,
				"%s combines two absolute power levels; a budget adds a level and a loss (DBm.Plus(DB)), and a level difference is a DB, not a DBm",
				exprString(be))}
		}
	case token.MUL:
		return []Finding{finding(p, "units", be,
			"%s squares the %s unit; scale by a dimensionless factor (Scale) instead", exprString(be), x)}
	case token.QUO:
		if x == "DB" || x == "DBm" {
			return []Finding{finding(p, "units", be,
				"%s divides log-scale quantities; convert to linear (Ratio, MilliWatts) before forming ratios", exprString(be))}
		}
	}
	return nil
}
