package lint

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sup(analyzer, file string) Suppression {
	return Suppression{Analyzer: analyzer, File: file, Line: 1, Reason: "r"}
}

func TestCheckBudgetGrowthFails(t *testing.T) {
	b := Budget{Entries: map[string]BudgetEntry{
		"floateq a.go": {Count: 1, Since: "2026-01-01"},
	}}
	cases := []struct {
		name       string
		sups       []Suppression
		violations int
		notes      int
	}{
		{"within budget", []Suppression{sup("floateq", "a.go")}, 0, 0},
		{"count grew", []Suppression{sup("floateq", "a.go"), sup("floateq", "a.go")}, 1, 0},
		{"new key", []Suppression{sup("floateq", "a.go"), sup("units", "b.go")}, 1, 0},
		{"shrank", nil, 0, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			violations, notes := CheckBudget(b, tc.sups, "")
			if len(violations) != tc.violations {
				t.Errorf("violations = %v, want %d", violations, tc.violations)
			}
			if len(notes) != tc.notes {
				t.Errorf("notes = %v, want %d", notes, tc.notes)
			}
		})
	}
}

func TestMakeBudgetPreservesSince(t *testing.T) {
	prev := Budget{Entries: map[string]BudgetEntry{
		"floateq a.go": {Count: 3, Since: "2025-11-02"},
	}}
	sups := []Suppression{sup("floateq", "a.go"), sup("units", "b.go")}
	b := MakeBudget(sups, prev, "", "2026-08-07")
	if got := b.Entries["floateq a.go"]; got.Count != 1 || got.Since != "2025-11-02" {
		t.Errorf("surviving key = %+v, want count 1 since 2025-11-02", got)
	}
	if got := b.Entries["units b.go"]; got.Count != 1 || got.Since != "2026-08-07" {
		t.Errorf("new key = %+v, want count 1 since today", got)
	}
}

func TestBudgetRoundTripIsByteStable(t *testing.T) {
	b := MakeBudget([]Suppression{sup("units", "z.go"), sup("floateq", "a.go")}, Budget{}, "", "2026-08-07")
	out1, err := MarshalBudget(b)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseBudget(out1)
	if err != nil {
		t.Fatal(err)
	}
	out2, err := MarshalBudget(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out1, out2) {
		t.Errorf("marshal/parse/marshal not byte-stable:\n%s\nvs\n%s", out1, out2)
	}
	if !bytes.HasSuffix(out1, []byte("\n")) {
		t.Error("budget file must end in a newline")
	}
}

func TestRepositoryBudgetCurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type-check is not short")
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	data, err := readBudgetFile(loader.Root)
	if err != nil {
		t.Fatal(err)
	}
	budget, err := ParseBudget(data)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	violations, notes := CheckBudget(budget, Suppressions(pkgs, Analyzers()), loader.Root)
	for _, v := range violations {
		t.Errorf("budget violation: %s", v)
	}
	for _, n := range notes {
		t.Errorf("stale budget entry: %s", n)
	}
}

func readBudgetFile(root string) ([]byte, error) {
	return os.ReadFile(filepath.Join(root, ".lint-budget.json"))
}

func TestWriteSARIF(t *testing.T) {
	findings := []Finding{{
		Analyzer: "units",
		File:     "/mod/internal/power/power.go",
		Line:     12,
		Col:      9,
		Message:  "strips the Watts unit",
	}}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, findings, Analyzers(), "/mod"); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q", log.Version)
	}
	if len(log.Runs) != 1 || log.Runs[0].Tool.Driver.Name != "fsoilint" {
		t.Fatalf("want one run with driver fsoilint, got %+v", log.Runs)
	}
	// One rule per analyzer plus the "lint" pseudo-analyzer.
	if got, want := len(log.Runs[0].Tool.Driver.Rules), len(Analyzers())+1; got != want {
		t.Errorf("rules = %d, want %d", got, want)
	}
	res := log.Runs[0].Results
	if len(res) != 1 || res[0].RuleID != "units" || res[0].Level != "error" {
		t.Fatalf("results = %+v", res)
	}
	loc := res[0].Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/power/power.go" {
		t.Errorf("uri = %q, want module-relative path", loc.ArtifactLocation.URI)
	}
	if loc.Region.StartLine != 12 {
		t.Errorf("startLine = %d", loc.Region.StartLine)
	}
}

// TestRunWorkersDeterministic pins the parallelization contract: the
// findings (content and order) are identical at every worker count.
func TestRunWorkersDeterministic(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	for dir, virtual := range fixtureVirtualPaths {
		p, err := loader.LoadDir(filepath.Join("testdata", "src", dir), virtual)
		if err != nil {
			t.Fatalf("loading %s: %v", dir, err)
		}
		pkgs = append(pkgs, p)
	}
	serial := RunWorkers(pkgs, Analyzers(), 1)
	if len(serial) == 0 {
		t.Fatal("fixtures produced no findings; the determinism check is vacuous")
	}
	for _, workers := range []int{2, 4, 8} {
		par := RunWorkers(pkgs, Analyzers(), workers)
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d findings, serial %d", workers, len(par), len(serial))
		}
		for i := range serial {
			if par[i] != serial[i] {
				t.Errorf("workers=%d: finding %d differs:\n  serial: %v\n  par:    %v", workers, i, serial[i], par[i])
			}
		}
	}
}

func TestSuppressionsCollectsFixtureAllows(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	p, err := loader.LoadDir(filepath.Join("testdata", "src", "units"), "fsoi/internal/power")
	if err != nil {
		t.Fatal(err)
	}
	sups := Suppressions([]*Package{p}, Analyzers())
	if len(sups) != 2 {
		t.Fatalf("suppressions = %+v, want the two units allows", sups)
	}
	for _, s := range sups {
		if s.Analyzer != "units" || s.Reason == "" || s.Line == 0 {
			t.Errorf("malformed suppression record: %+v", s)
		}
		if filepath.Base(s.File) != "power.go" {
			t.Errorf("suppression in wrong file: %+v", s)
		}
	}
	if !strings.Contains(sups[0].Reason, "dimensionless") {
		t.Errorf("reasons out of order or lost: %+v", sups)
	}
}
