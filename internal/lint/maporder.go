package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder flags `range` over a map whose loop body leaks the
// (deliberately randomized) iteration order into observable state:
// appending to a slice that is never sorted, accumulating floats,
// last-writer-wins assignments, drawing from an RNG, returning early,
// or sending on a channel. Order-independent bodies are recognized and
// allowed without annotation:
//
//   - pure reads;
//   - integer accumulation with commutative operators (+=, -=, *=,
//     |=, &=, ^=, ++, --), whose result is the same in any order;
//   - writes indexed by the loop key (each key is visited exactly
//     once, so element-wise map merges are safe);
//   - delete(m, k) of the loop key;
//   - assigning a constant (`found = true`);
//   - monotone min/max reductions (`if v > best { best = v }` and
//     `best = max(best, v)`);
//   - appends into a slice that the same function sorts after the
//     loop — the canonical iterate-over-sorted-keys idiom.
//
// The analyzer is intraprocedural: a body that mutates outside state
// through an opaque call is not seen. It exists to catch the common
// shapes, not to replace review.
type MapOrder struct{}

// Name implements Analyzer.
func (MapOrder) Name() string { return "maporder" }

// Doc implements Analyzer.
func (MapOrder) Doc() string {
	return "flags map iteration whose body order-dependently mutates state, feeds an RNG, or appends without sorting"
}

// Check implements Analyzer.
func (MapOrder) Check(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !isMapRangeStmt(p, rs) {
				return true
			}
			out = append(out, checkMapRange(p, rs, enclosingFuncBody(stack))...)
			return true
		})
	}
	return out
}

// isMapRangeStmt reports whether rs ranges over a map value.
func isMapRangeStmt(p *Package, rs *ast.RangeStmt) bool {
	tv, ok := p.Info.Types[rs.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// enclosingFuncBody returns the body of the innermost function
// containing the top of the stack.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

// checkMapRange analyzes one map-range statement.
func checkMapRange(p *Package, rs *ast.RangeStmt, fnBody *ast.BlockStmt) []Finding {
	var out []Finding
	keyObj := identObj(p, rs.Key)
	valObj := identObj(p, rs.Value)

	inLoop := func(pos token.Pos) bool { return rs.Pos() <= pos && pos < rs.End() }
	outside := func(obj types.Object) bool {
		return obj != nil && !inLoop(obj.Pos())
	}

	// Appends into outside slices are hazards unless the function sorts
	// the slice after the loop; collect first, decide after the walk.
	var appends []pendingAppend

	reductions := monotoneReductions(p, rs.Body)

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				rhs := ast.Expr(nil)
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				} else if len(n.Rhs) == 1 {
					rhs = n.Rhs[0]
				}
				out = append(out, checkWrite(p, rs, n, lhs, rhs, n.Tok, outside, keyObj, reductions, &appends)...)
			}
		case *ast.IncDecStmt:
			obj := rootObj(p, n.X)
			if !outside(obj) {
				return true
			}
			if isFloatExpr(p, n.X) {
				out = append(out, finding(p, "maporder", n,
					"floating-point update of %s inside map iteration: accumulation order changes the result bits; iterate over sorted keys", exprString(n.X)))
			}
			// Integer ++/-- commutes; safe.
		case *ast.SendStmt:
			out = append(out, finding(p, "maporder", n,
				"channel send inside map iteration publishes elements in map order; iterate over sorted keys"))
		case *ast.ReturnStmt:
			if refersTo(p, n, keyObj) || refersTo(p, n, valObj) {
				out = append(out, finding(p, "maporder", n,
					"return inside map iteration selects an order-dependent element; iterate over sorted keys and pick deterministically"))
			}
		case *ast.CallExpr:
			if isRNGCall(p, n) {
				out = append(out, finding(p, "maporder", n,
					"random draw inside map iteration: the stream advances in map order; iterate over sorted keys"))
			}
		}
		return true
	})

	for _, a := range appends {
		if sortedAfter(p, fnBody, rs, a.obj) {
			continue
		}
		out = append(out, finding(p, "maporder", a.node,
			"append to %s inside map iteration: element order follows map order; sort the slice afterwards or iterate over sorted keys", a.name))
	}
	return out
}

// pendingAppend is an append into an outside slice awaiting the
// sorted-after check.
type pendingAppend struct {
	obj  types.Object
	node ast.Node
	name string
}

// checkWrite classifies one assignment target inside a map-range body.
func checkWrite(p *Package, rs *ast.RangeStmt, stmt *ast.AssignStmt, lhs, rhs ast.Expr, tok token.Token,
	outside func(types.Object) bool, keyObj types.Object, reductions map[*ast.AssignStmt]bool,
	appends *[]pendingAppend) []Finding {

	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return nil
	}
	obj := rootObj(p, lhs)
	if !outside(obj) {
		return nil
	}

	// x = append(x, ...) is deferred to the sorted-after check.
	if call, ok := rhs.(*ast.CallExpr); ok && tok == token.ASSIGN && isBuiltin(p, call.Fun, "append") {
		*appends = append(*appends, pendingAppend{obj, stmt, exprString(lhs)})
		return nil
	}

	// Writes indexed by the loop key touch each key once: order-free.
	if idx, ok := lhs.(*ast.IndexExpr); ok {
		if id, ok := idx.Index.(*ast.Ident); ok && keyObj != nil && p.Info.Uses[id] == keyObj {
			return nil
		}
	}

	switch tok {
	case token.ASSIGN:
		if rhs != nil {
			tv := p.Info.Types[rhs]
			if tv.Value != nil || tv.IsNil() {
				return nil // assigning a constant: any order wins the same value
			}
			if call, ok := rhs.(*ast.CallExpr); ok && (isBuiltin(p, call.Fun, "max") || isBuiltin(p, call.Fun, "min")) && callMentions(p, call, obj) {
				return nil // best = max(best, v): commutative reduction
			}
		}
		if reductions[stmt] {
			return nil // if v > best { best = v }
		}
		return []Finding{finding(p, "maporder", stmt,
			"assignment to %s inside map iteration: the surviving value depends on map order; iterate over sorted keys", exprString(lhs))}
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		if isFloatExpr(p, lhs) {
			return []Finding{finding(p, "maporder", stmt,
				"floating-point accumulation into %s inside map iteration: summation order changes the result bits; iterate over sorted keys", exprString(lhs))}
		}
		if isStringExpr(p, lhs) {
			return []Finding{finding(p, "maporder", stmt,
				"string concatenation into %s inside map iteration emits elements in map order; iterate over sorted keys", exprString(lhs))}
		}
		return nil // integer accumulation commutes
	default:
		return []Finding{finding(p, "maporder", stmt,
			"non-commutative update (%s) of %s inside map iteration depends on map order; iterate over sorted keys", tok, exprString(lhs))}
	}
}

// monotoneReductions finds `if x CMP y { v = ... }` bodies whose single
// assignment writes a variable used in the comparison — the min/max
// idiom, which is order-independent.
func monotoneReductions(p *Package, body *ast.BlockStmt) map[*ast.AssignStmt]bool {
	out := make(map[*ast.AssignStmt]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || ifs.Else != nil || len(ifs.Body.List) != 1 {
			return true
		}
		cond, ok := ifs.Cond.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch cond.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ:
		default:
			return true
		}
		asg, ok := ifs.Body.List[0].(*ast.AssignStmt)
		if !ok || asg.Tok != token.ASSIGN || len(asg.Lhs) != 1 {
			return true
		}
		lhsObj := rootObj(p, asg.Lhs[0])
		if lhsObj == nil {
			return true
		}
		if exprMentions(p, cond.X, lhsObj) || exprMentions(p, cond.Y, lhsObj) {
			out[asg] = true
		}
		return true
	})
	return out
}

// sortedAfter reports whether fnBody sorts the slice held by obj at a
// position after the range statement.
func sortedAfter(p *Package, fnBody *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	if fnBody == nil || obj == nil {
		return false
	}
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn := p.Info.Uses[sel.Sel]
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		sorter := false
		switch fn.Pkg().Path() {
		case "sort":
			switch fn.Name() {
			case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
				sorter = true
			}
		case "slices":
			switch fn.Name() {
			case "Sort", "SortFunc", "SortStableFunc":
				sorter = true
			}
		}
		if sorter && rootObj(p, call.Args[0]) == obj {
			found = true
		}
		return true
	})
	return found
}

// isRNGCall reports whether call invokes a method on internal/sim's RNG
// or Zipf types.
func isRNGCall(p *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s, ok := p.Info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	recv := s.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkg := named.Obj().Pkg().Path()
	name := named.Obj().Name()
	return strings.HasSuffix(pkg, "internal/sim") && (name == "RNG" || name == "Zipf")
}

// identObj resolves a range clause ident (key or value) to its object.
func identObj(p *Package, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if o := p.Info.Defs[id]; o != nil {
		return o
	}
	return p.Info.Uses[id]
}

// rootObj unwraps selectors, indexes, derefs, and parens down to the
// base identifier's object.
func rootObj(p *Package, e ast.Expr) types.Object {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			if o := p.Info.Uses[v]; o != nil {
				return o
			}
			return p.Info.Defs[v]
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.TypeAssertExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// isBuiltin reports whether fun denotes the named Go builtin.
func isBuiltin(p *Package, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isB := p.Info.Uses[id].(*types.Builtin)
	return isB
}

// callMentions reports whether any argument of call refers to obj.
func callMentions(p *Package, call *ast.CallExpr, obj types.Object) bool {
	for _, a := range call.Args {
		if exprMentions(p, a, obj) {
			return true
		}
	}
	return false
}

// exprMentions reports whether e contains an identifier bound to obj.
func exprMentions(p *Package, e ast.Expr, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// refersTo reports whether node mentions obj anywhere.
func refersTo(p *Package, node ast.Node, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// isFloatExpr reports whether e has floating-point (or complex) type.
func isFloatExpr(p *Package, e ast.Expr) bool {
	return isFloat(p.Info.Types[e].Type)
}

// isStringExpr reports whether e has string type.
func isStringExpr(p *Package, e ast.Expr) bool {
	tv := p.Info.Types[e]
	if tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// exprString renders a short source form of e for messages.
func exprString(e ast.Expr) string {
	return types.ExprString(e)
}
