package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Shardsafety enforces the sharded engine's event-routing contract
// (internal/sim/shard). A network component that schedules an event
// touching *another node's* state directly on the engine — via
// Engine.At/After or a package-local wrapper around them — bypasses
// noc.ScheduleAt, the one router that lands a callback on the shard
// owning the involved node. On the serial engine both paths are the
// same queue, so such bugs are invisible until a sharded run reorders
// the event relative to the owner shard's work.
//
// The analyzer flags three hazard shapes inside sim packages:
//
//   - a closure handed to At/After that writes through a captured
//     reference (pointer/map/slice local or parameter of the enclosing
//     function) — mutable state that may belong to another node;
//   - a closure handed to At/After that calls a same-package method on
//     such a captured reference when that method mutates its receiver
//     (one interprocedural hop — the mesh forward() bug's shape);
//   - scheduling guarded by an explicit `X.Src == X.Dst` comparison is
//     recognized as the sanctioned local-delivery idiom and skipped.
//
// It also cross-checks each package's Lookahead() contract: the window
// must be derived from the delay fields charged at scheduling sites
// (bare integer literals other than the 0/1 floor are flagged, as are
// fields read by Lookahead but by nothing else in the package), and a
// package that routes events through noc.ScheduleAt — or resolves
// per-node scheduling surfaces through sim.SchedulerFor, the windowed
// runner's path — must declare a Lookahead method at all. The closure
// rules follow both surfaces: proxy At/After resolve to the same
// internal/sim method set the engine's do.
type Shardsafety struct{}

// Name implements Analyzer.
func (Shardsafety) Name() string { return "shardsafety" }

// Doc implements Analyzer.
func (Shardsafety) Doc() string {
	return "cross-node events must route through noc.ScheduleAt, and Lookahead() must stay tied to the delay fields it vouches for"
}

// Check implements Analyzer.
func (Shardsafety) Check(p *Package) []Finding {
	// The engine itself (internal/sim, internal/sim/shard) owns the
	// queues the rule protects; internal/noc hosts the sanctioned
	// ScheduleAt router and is not a sim package.
	if !isSimPackage(p.ModuleRel) || p.ModuleRel == "internal/sim" || isUnder(p.ModuleRel, "internal/sim") {
		return nil
	}
	w := &shardWalker{p: p, wrappers: schedulerWrappers(p), writes: make(map[*types.Func]bool)}
	var out []Finding
	out = append(out, w.checkClosures()...)
	out = append(out, checkLookaheads(p)...)
	return out
}

// pkgPathHasSuffix reports whether pkg's import path is suffix or ends
// in "/"+suffix. Suffix matching (rather than equality against
// "fsoi/...") lets testdata fixtures impersonate module packages.
func pkgPathHasSuffix(pkg *types.Package, suffix string) bool {
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// schedulerCallee returns the method object when call is a direct
// Engine.At / Engine.After invocation on the simulation scheduler.
func schedulerCallee(p *Package, call *ast.CallExpr) *types.Func {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	selection, ok := p.Info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return nil
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok || (fn.Name() != "At" && fn.Name() != "After") {
		return nil
	}
	if !pkgPathHasSuffix(fn.Pkg(), "internal/sim") && !pkgPathHasSuffix(fn.Pkg(), "internal/sim/shard") {
		return nil
	}
	return fn
}

// schedulerWrappers finds package-local functions that merely forward a
// func-typed parameter to Engine.At/After (the mesh's old engineAt
// shape). Calls to a wrapper are scheduling calls in disguise, so the
// closure rules apply to them too.
func schedulerWrappers(p *Package) map[types.Object]bool {
	wrappers := make(map[types.Object]bool)
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			params := funcParamObjs(p, fd)
			if len(params) == 0 {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || schedulerCallee(p, call) == nil || len(call.Args) == 0 {
					return true
				}
				last := identObj(p, call.Args[len(call.Args)-1])
				if last == nil {
					return true
				}
				for _, param := range params {
					if last == param {
						if _, isFunc := param.Type().Underlying().(*types.Signature); isFunc {
							wrappers[p.Info.Defs[fd.Name]] = true
						}
					}
				}
				return true
			})
		}
	}
	return wrappers
}

// funcParamObjs returns the declared objects of fd's parameters.
func funcParamObjs(p *Package, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if o := p.Info.Defs[name]; o != nil {
				out = append(out, o)
			}
		}
	}
	return out
}

// shardWalker carries the per-package state of the closure checks.
type shardWalker struct {
	p        *Package
	wrappers map[types.Object]bool
	writes   map[*types.Func]bool // memo: does this method mutate its receiver?
}

// checkClosures walks every file for scheduling calls whose closure
// argument captures another node's mutable state.
func (w *shardWalker) checkClosures() []Finding {
	var out []Finding
	for _, f := range w.p.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			if schedulerCallee(w.p, call) == nil && !w.wrappers[calleeObj(w.p, call)] {
				return true
			}
			lit, ok := call.Args[len(call.Args)-1].(*ast.FuncLit)
			if !ok {
				return true
			}
			if guardedBySrcDstEquality(stack) {
				return true // sanctioned local-delivery idiom
			}
			out = append(out, w.checkScheduledClosure(call, lit, enclosingFuncDecl(stack))...)
			return true
		})
	}
	return out
}

// calleeObj resolves the object a call invokes, for plain and selector
// call forms.
func calleeObj(p *Package, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return p.Info.Uses[fun]
	case *ast.SelectorExpr:
		return p.Info.Uses[fun.Sel]
	}
	return nil
}

// enclosingFuncDecl returns the innermost FuncDecl on the stack,
// skipping the node at the top.
func enclosingFuncDecl(stack []ast.Node) *ast.FuncDecl {
	for i := len(stack) - 2; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}

// guardedBySrcDstEquality reports whether any enclosing if-statement
// compares a .Src field against a .Dst field for equality: the idiom
// that proves the scheduled event stays on the local node.
func guardedBySrcDstEquality(stack []ast.Node) bool {
	for _, n := range stack {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			continue
		}
		found := false
		ast.Inspect(ifs.Cond, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || be.Op != token.EQL {
				return true
			}
			if selNamed(be.X, "Src") && selNamed(be.Y, "Dst") ||
				selNamed(be.X, "Dst") && selNamed(be.Y, "Src") {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// selNamed reports whether e is a selector for the given field name.
func selNamed(e ast.Expr, name string) bool {
	sel, ok := e.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == name
}

// checkScheduledClosure flags writes (direct or one method hop away)
// through references the closure captured from its enclosing function.
func (w *shardWalker) checkScheduledClosure(call *ast.CallExpr, lit *ast.FuncLit, encl *ast.FuncDecl) []Finding {
	if encl == nil {
		return nil
	}
	recv := receiverObj(w.p, encl)
	var out []Finding
	report := func(n ast.Node, obj types.Object, how string) {
		out = append(out, finding(w.p, "shardsafety", n,
			"scheduled closure %s captured %q, which may belong to another node's shard; route the event through noc.ScheduleAt with the owning node",
			how, obj.Name()))
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				if obj := w.capturedRef(rootObj(w.p, lhs), lit, encl, recv); obj != nil && !bareIdent(lhs) {
					report(v, obj, "writes through")
				}
			}
		case *ast.IncDecStmt:
			if obj := w.capturedRef(rootObj(w.p, v.X), lit, encl, recv); obj != nil && !bareIdent(v.X) {
				report(v, obj, "writes through")
			}
		case *ast.CallExpr:
			if isBuiltin(w.p, v.Fun, "delete") && len(v.Args) == 2 {
				if obj := w.capturedRef(rootObj(w.p, v.Args[0]), lit, encl, recv); obj != nil {
					report(v, obj, "deletes through")
				}
				return true
			}
			if obj := w.mutatingMethodOnCapture(v, lit, encl, recv); obj != nil {
				report(v, obj, "calls a state-mutating method on")
			}
		}
		return true
	})
	if len(out) == 0 {
		return nil
	}
	// One finding per scheduling call keeps suppression reviewable: the
	// allow sits on the call, not sprayed across the closure body.
	first := out[0]
	pos := w.p.Fset.Position(call.Pos())
	first.File, first.Line, first.Col = pos.Filename, pos.Line, pos.Column
	return []Finding{first}
}

// bareIdent reports whether e is a plain identifier (no selector,
// index, or deref): assigning a captured scalar outright rebinds
// closure-private state rather than mutating shared node state.
func bareIdent(e ast.Expr) bool {
	_, ok := e.(*ast.Ident)
	return ok
}

// capturedRef returns obj when it is a reference-typed (pointer, map,
// slice) local or parameter of the enclosing function captured by the
// closure — i.e. not declared inside the closure, not the method
// receiver, and not package-level.
func (w *shardWalker) capturedRef(obj types.Object, lit *ast.FuncLit, encl *ast.FuncDecl, recv types.Object) types.Object {
	if obj == nil || obj == recv {
		return nil
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return nil
	}
	if lit.Pos() <= obj.Pos() && obj.Pos() < lit.End() {
		return nil // the closure's own local or parameter
	}
	if obj.Pos() < encl.Pos() || encl.End() <= obj.Pos() {
		return nil // package-level state, not a per-call capture
	}
	switch v.Type().Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice:
		return obj
	}
	return nil
}

// mutatingMethodOnCapture reports the captured receiver when call is a
// same-package method invocation on a captured reference and the
// method's body mutates its receiver (the one-hop interprocedural case:
// next.acceptFlit(...) appending to next's input FIFOs).
func (w *shardWalker) mutatingMethodOnCapture(call *ast.CallExpr, lit *ast.FuncLit, encl *ast.FuncDecl, recv types.Object) types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	selection, ok := w.p.Info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return nil
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok || fn.Pkg() != w.p.Types {
		return nil
	}
	obj := w.capturedRef(rootObj(w.p, sel.X), lit, encl, recv)
	if obj == nil || !w.methodMutatesReceiver(fn) {
		return nil
	}
	return obj
}

// methodMutatesReceiver reports whether the package-local method fn
// assigns through its receiver (directly, or through a local derived
// from the receiver).
func (w *shardWalker) methodMutatesReceiver(fn *types.Func) bool {
	if mutates, ok := w.writes[fn]; ok {
		return mutates
	}
	w.writes[fn] = false // cycle guard
	fd := funcDeclOf(w.p, fn)
	if fd == nil || fd.Body == nil || fd.Recv == nil {
		return false
	}
	recv := receiverObj(w.p, fd)
	if recv == nil {
		return false
	}
	// Receiver-derived locals (in := &r.inputs[p][v]) count as the
	// receiver for write detection.
	derived := map[types.Object]bool{recv: true}
	rooted := func(e ast.Expr) bool { return derived[rootObj(w.p, e)] }
	mutates := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			if v.Tok == token.DEFINE {
				for i, rhs := range v.Rhs {
					if i < len(v.Lhs) && rooted(rhs) {
						if o := identObj(w.p, v.Lhs[i]); o != nil {
							derived[o] = true
						}
					}
				}
				return true
			}
			for _, lhs := range v.Lhs {
				if rooted(lhs) && !bareIdent(lhs) {
					mutates = true
				}
			}
		case *ast.IncDecStmt:
			if rooted(v.X) && !bareIdent(v.X) {
				mutates = true
			}
		case *ast.CallExpr:
			if isBuiltin(w.p, v.Fun, "delete") && len(v.Args) == 2 && rooted(v.Args[0]) {
				mutates = true
			}
		}
		return !mutates
	})
	w.writes[fn] = mutates
	return mutates
}

// funcDeclOf finds the declaration of fn in the package's files.
func funcDeclOf(p *Package, fn *types.Func) *ast.FuncDecl {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && p.Info.Defs[fd.Name] == fn {
				return fd
			}
		}
	}
	return nil
}

// receiverObj returns the object bound to fd's receiver, or nil.
func receiverObj(p *Package, fd *ast.FuncDecl) types.Object {
	if fd == nil || fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return p.Info.Defs[fd.Recv.List[0].Names[0]]
}

// checkLookaheads cross-checks the package's Lookahead() declarations
// against the delay fields the rest of the package actually charges,
// and requires one to exist when the package routes events through
// noc.ScheduleAt.
func checkLookaheads(p *Package) []Finding {
	var out []Finding
	var bodies []*ast.FuncDecl
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && isLookaheadDecl(p, fd) {
				bodies = append(bodies, fd)
			}
		}
	}

	// Bare literals: a hardcoded window silently detaches from the
	// delay constant it is supposed to bound. 0 and 1 stay legal as the
	// conservative floor idiom (if la < 1 { return 1 }).
	for _, fd := range bodies {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if bl, ok := n.(*ast.BasicLit); ok && bl.Kind == token.INT && bl.Value != "0" && bl.Value != "1" {
				out = append(out, finding(p, "shardsafety", bl,
					"Lookahead hardcodes %s: derive the window from the delay field charged at the scheduling sites (only the 0/1 floor may be literal)", bl.Value))
			}
			return true
		})
	}

	// Stale fields: every field Lookahead vouches for must also be read
	// by the code that schedules events, or the window no longer bounds
	// anything real.
	inLookahead := func(pos token.Pos) bool {
		for _, fd := range bodies {
			if fd.Body.Pos() <= pos && pos < fd.Body.End() {
				return true
			}
		}
		return false
	}
	type fieldRef struct {
		obj types.Object
		sel *ast.SelectorExpr
	}
	var refs []fieldRef
	seen := make(map[types.Object]bool)
	usedOutside := make(map[types.Object]bool)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection, ok := p.Info.Selections[sel]
			if !ok || selection.Kind() != types.FieldVal {
				return true
			}
			obj := selection.Obj()
			if inLookahead(sel.Pos()) {
				if !seen[obj] {
					seen[obj] = true
					refs = append(refs, fieldRef{obj, sel})
				}
			} else {
				usedOutside[obj] = true
			}
			return true
		})
	}
	for _, r := range refs {
		if !usedOutside[r.obj] {
			out = append(out, finding(p, "shardsafety", r.sel,
				"Lookahead reads %s but no scheduling site does: the declared window has drifted from the delays actually charged", exprString(r.sel)))
		}
	}

	// A package that hands events to the sharded router — or resolves
	// per-node scheduling surfaces, the windowed runner's routing path —
	// must bound its cross-shard slack with a declared lookahead.
	if len(bodies) == 0 {
		for _, f := range p.Files {
			var hit ast.Node
			var surface string
			ast.Inspect(f, func(n ast.Node) bool {
				if hit != nil {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn, ok := calleeObj(p, call).(*types.Func)
				if !ok {
					return true
				}
				switch {
				case fn.Name() == "ScheduleAt" && pkgPathHasSuffix(fn.Pkg(), "internal/noc"):
					hit, surface = call, "routes cross-node events through noc.ScheduleAt"
				case fn.Name() == "SchedulerFor" && pkgPathHasSuffix(fn.Pkg(), "internal/sim"):
					hit, surface = call, "resolves per-node schedulers through sim.SchedulerFor"
				}
				return true
			})
			if hit != nil {
				out = append(out, finding(p, "shardsafety", hit,
					"package %s but declares no Lookahead method; the sharded and windowed engines cannot size their windows without one", surface))
				break
			}
		}
	}
	return out
}

// isLookaheadDecl reports whether fd declares the Lookaheader contract:
// method Lookahead() returning sim.Cycle.
func isLookaheadDecl(p *Package, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || fd.Name.Name != "Lookahead" || fd.Body == nil {
		return false
	}
	fn, ok := p.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Params().Len() != 0 || sig.Results().Len() != 1 {
		return false
	}
	named, ok := sig.Results().At(0).Type().(*types.Named)
	return ok && named.Obj().Name() == "Cycle" && pkgPathHasSuffix(named.Obj().Pkg(), "internal/sim")
}
