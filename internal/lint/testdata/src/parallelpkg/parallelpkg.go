// Package parallelpkg mirrors internal/parallel, the one audited home
// for host concurrency. Linted under the virtual import path
// fsoi/internal/parallel, which sits on the detsource concurrency
// allowlist; the harness asserts zero findings even though the package
// leans on goroutines, select, and sync.
package parallelpkg

import "sync"

func fanOut(jobs int, fn func(int)) {
	var mu sync.Mutex
	var wg sync.WaitGroup
	next := 0
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			mu.Lock()
			i := next
			next++
			mu.Unlock()
			if i >= jobs {
				return
			}
			fn(i)
		}
	}()
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	}
}
