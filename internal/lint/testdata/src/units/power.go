// Package unitsfix seeds unit-discipline violations and the idioms the
// units analyzer must accept. Linted under the virtual import path
// fsoi/internal/power, inside the physics layer's scope.
package unitsfix

import (
	"fsoi/internal/optics"
	"fsoi/internal/sim"
)

func relabel(loss optics.DB) optics.DBm {
	return optics.DBm(loss) // want "units: optics.DBm\(loss\) relabels a DB as a DBm"
}

func strip(w optics.Watts) float64 {
	return float64(w) // want "units: float64\(w\) strips the Watts unit"
}

func stripCycles(c sim.Cycle) float64 {
	return float64(c) // want "units: float64\(c\) discards the cycle unit"
}

func addLevels(a, b optics.DBm) optics.DBm {
	return a + b // want "units: .* combines two absolute power levels"
}

func subtractLevels(a, b optics.DBm) optics.DBm {
	return a - b // want "units: .* combines two absolute power levels"
}

func squareWatts(a, b optics.Watts) optics.Watts {
	return a * b // want "units: .* squares the Watts unit"
}

func divideDB(a, b optics.DB) optics.DB {
	return a / b // want "units: .* divides log-scale quantities"
}

// Tagging a raw float is free: that is how quantities enter the typed
// world.
func tagOK(x float64) optics.Watts { return optics.Watts(x) }

// Relative losses add; a constant operand is a scale, not a quantity.
func sumOK(a, b optics.DB) optics.DB { return a + b }

func scaleOK(a optics.Joules) optics.Joules { return a * 2 }

// The budget idiom: a level plus a loss goes through the typed method.
func budgetOK(p optics.DBm, l optics.DB) optics.DBm { return p.Plus(l) }

// Linear power ratios are physical (link margins); only log-scale
// units are barred from division.
func ratioOK(a, b optics.Watts) float64 {
	r := a / b
	return float64(r) //lint:allow units a watt ratio is dimensionless; the strip is the point
}

// An audited boundary carries its justification.
func kernelOK(w optics.Watts) float64 {
	return float64(w) //lint:allow units solver kernel boundary demands a raw float
}
