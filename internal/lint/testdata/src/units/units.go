// Files named units.go hold the conversion methods themselves: they
// must strip and tag units to exist, so the analyzer exempts them.
// Nothing in this file is a finding.
package unitsfix

import "fsoi/internal/optics"

func exemptStrip(w optics.Watts) float64 { return float64(w) }

func exemptRelabel(l optics.DB) optics.DBm { return optics.DBm(l) }
