// Package proxysched resolves per-node scheduling surfaces — the
// windowed parallel engine's routing path — without declaring the
// Lookahead window that bounds its cross-shard slack. Linted under the
// virtual path fsoi/internal/corona, a simulation package.
package proxysched

import "fsoi/internal/sim"

// Net schedules per-node work without bounding it.
type Net struct {
	engine sim.Scheduler
}

func (n *Net) deliver(node int, at sim.Cycle) {
	sim.SchedulerFor(n.engine, node).At(at, func(sim.Cycle) {}) // want "shardsafety: package resolves per-node schedulers through sim.SchedulerFor but declares no Lookahead method"
}
