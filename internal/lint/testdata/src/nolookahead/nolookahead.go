// Package nolookahead routes events through the shard-aware router but
// never declares the Lookahead window the sharded engine needs to size
// its epochs. Linted under the virtual path fsoi/internal/optnet, a
// simulation package.
package nolookahead

import (
	"fsoi/internal/noc"
	"fsoi/internal/sim"
)

// Net schedules cross-node work without bounding it.
type Net struct {
	engine sim.Scheduler
}

func (n *Net) deliver(node int, at sim.Cycle) {
	noc.ScheduleAt(n.engine, node, at, func(sim.Cycle) {}) // want "shardsafety: package routes cross-node events through noc.ScheduleAt but declares no Lookahead method"
}
