// Package shardfix seeds cross-shard scheduling hazards and the safe
// idioms the shardsafety analyzer must accept. Linted under the
// virtual import path fsoi/internal/mesh, a simulation package.
package shardfix

import (
	"fsoi/internal/noc"
	"fsoi/internal/sim"
)

// state stands in for per-node receiver state owned by one shard.
type state struct {
	armed bool
	fifo  []int
	slots map[int64]int
}

// push mutates its receiver: calling it on a captured pointer from a
// scheduled closure is the one-hop interprocedural hazard.
func (s *state) push(v int) {
	s.fifo = append(s.fifo, v)
}

// peek does not mutate: calling it from a closure is fine.
func (s *state) peek() int {
	if len(s.fifo) == 0 {
		return 0
	}
	return s.fifo[0]
}

// Config carries the delay fields the Lookahead contract vouches for.
type Config struct {
	LinkDelay  int
	StaleDelay int
}

// Net is the fixture's network component.
type Net struct {
	engine sim.Scheduler
	cfg    Config
	count  int
	last   int
}

// Lookahead mixes the sanctioned floor idiom with the two drift
// hazards: a bare literal window and a field nothing else reads.
func (n *Net) Lookahead() sim.Cycle {
	if n.cfg.LinkDelay < 1 {
		return 1 // the conservative 0/1 floor stays legal
	}
	_ = n.cfg.StaleDelay                  // want "shardsafety: Lookahead reads n.cfg.StaleDelay but no scheduling site does"
	return sim.Cycle(n.cfg.LinkDelay) + 3 // want "shardsafety: Lookahead hardcodes 3"
}

func (n *Net) writeHazard(ch *state) {
	n.engine.At(5, func(at sim.Cycle) { // want "shardsafety: scheduled closure writes through captured .ch."
		ch.armed = false
	})
}

func (n *Net) methodHazard(next *state) {
	delay := sim.Cycle(n.cfg.LinkDelay)
	n.engine.At(delay, func(at sim.Cycle) { // want "shardsafety: scheduled closure calls a state-mutating method on captured .next."
		next.push(1)
	})
}

func (n *Net) deleteHazard(ns *state, slot int64) {
	n.engine.After(9, func(sim.Cycle) { // want "shardsafety: scheduled closure deletes through captured .ns."
		delete(ns.slots, slot)
	})
}

// engineAt forwards its closure to the engine: calls to it are
// scheduling calls in disguise and get the same checks.
func (n *Net) engineAt(at sim.Cycle, fn func(now sim.Cycle)) {
	n.engine.At(at, fn)
}

func (n *Net) wrapperHazard(ns *state) {
	n.engineAt(4, func(sim.Cycle) { // want "shardsafety: scheduled closure writes through captured .ns."
		ns.armed = true
	})
}

// receiverOK mutates only the scheduling component's own state: the
// component schedules on itself, which stays on its shard.
func (n *Net) receiverOK() {
	n.engine.At(2, func(at sim.Cycle) {
		n.count++
	})
}

// readOK only reads through the capture and calls a non-mutating
// method: no finding.
func (n *Net) readOK(ns *state) {
	n.engine.At(2, func(sim.Cycle) {
		n.last = ns.peek()
	})
}

// guardedOK is the sanctioned local-delivery idiom: an explicit
// Src == Dst comparison proves the event stays on the local node.
func (n *Net) guardedOK(p *noc.Packet, ns *state) {
	if p.Src == p.Dst {
		n.engine.At(2, func(sim.Cycle) {
			ns.armed = true
		})
	}
}

// allowedHazard is suppressed with a justification, like the corona
// arbiter whose channel state is the shared medium itself.
func (n *Net) allowedHazard(ch *state) {
	n.engine.At(7, func(sim.Cycle) { //lint:allow shardsafety shared arbitration state is serialized by the exact engine's global order
		ch.armed = false
	})
}

// routedOK hands the event to the shard-aware router: noc.ScheduleAt
// is the sanctioned path and its closures are not analyzed.
func (n *Net) routedOK(node int, ns *state) {
	noc.ScheduleAt(n.engine, node, 6, func(sim.Cycle) {
		ns.armed = true
	})
}

// proxyHazard schedules through the per-node surface the windowed
// engine hands out (sim.SchedulerFor): the closure rules must follow
// the proxy exactly as they follow the engine.
func (n *Net) proxyHazard(node int, ns *state) {
	sched := sim.SchedulerFor(n.engine, node)
	sched.After(3, func(sim.Cycle) { // want "shardsafety: scheduled closure writes through captured .ns."
		ns.armed = true
	})
}

// proxyReceiverOK mirrors receiverOK through the proxy surface: a
// component scheduling on its own node's proxy mutates only itself.
func (n *Net) proxyReceiverOK(node int) {
	sim.SchedulerFor(n.engine, node).After(2, func(at sim.Cycle) {
		n.count++
	})
}
