// Package mapfix seeds map-iteration-order hazards and the
// order-independent idioms the maporder analyzer must accept. Linted
// under the virtual import path fsoi/internal/stats.
package mapfix

import (
	"sort"

	"fsoi/internal/sim"
)

func unsortedAppend(m map[string]int64) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "maporder: append to keys inside map iteration"
	}
	return keys
}

func sortedAppend(m map[string]int64) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // sorted below: the canonical idiom, not a finding
	}
	sort.Strings(keys)
	return keys
}

func floatAccum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want "maporder: floating-point accumulation into total"
	}
	return total
}

func intAccum(m map[string]int64) int64 {
	var total int64
	for _, v := range m {
		total += v // integer addition commutes: not a finding
	}
	return total
}

func perKeyMerge(dst, src map[string]int64) {
	for k, v := range src {
		dst[k] += v // each key visited once: not a finding
	}
}

func lastWriter(m map[string]int64) string {
	var last string
	for k := range m {
		last = k // want "maporder: assignment to last inside map iteration"
	}
	return last
}

func constFlag(m map[string]int64) bool {
	found := false
	for _, v := range m {
		if v > 10 {
			found = true // constant assignment: not a finding
		}
	}
	return found
}

func pureMax(m map[string]int64) int64 {
	var best int64
	for _, v := range m {
		if v > best {
			best = v // monotone reduction: not a finding
		}
	}
	return best
}

func builtinMax(m map[string]int64) int64 {
	var best int64
	for _, v := range m {
		best = max(best, v) // commutative reduction: not a finding
	}
	return best
}

func argMax(m map[string]int64) (string, int64) {
	var bestK string
	var best int64
	for k, v := range m {
		if v > best {
			best = v  // want "maporder: assignment to best inside map iteration"
			bestK = k // want "maporder: assignment to bestK inside map iteration"
		}
	}
	return bestK, best
}

func rngDraw(m map[string]int64, rng *sim.RNG) int64 {
	var total int64
	for range m {
		total += int64(rng.Intn(4)) // want "maporder: random draw inside map iteration"
	}
	return total
}

func drain(m map[string]int64) {
	for k := range m {
		delete(m, k) // deleting the visited key: not a finding
	}
}

func firstMatch(m map[string]int64) string {
	for k, v := range m {
		if v == 0 {
			return k // want "maporder: return inside map iteration"
		}
	}
	return ""
}

func publish(m map[string]int64, ch chan string) {
	for k := range m {
		ch <- k // want "maporder: channel send inside map iteration"
	}
}
