// Package syncban seeds concurrency violations in a non-simulation
// internal package. Linted under the virtual import path
// fsoi/internal/analytic: outside the allowlist, internal code may not
// spin up its own goroutines or pull in the sync primitives — fan-out
// belongs to fsoi/internal/parallel, whose index-ordered merge keeps
// results byte-identical to serial.
package syncban

import (
	"sync" // want "detsource: import of sync in internal/analytic"
	"time" // fine here: the wall-clock ban is scoped to simulation packages
)

func fanOut(work []func()) time.Duration {
	start := time.Now()
	var wg sync.WaitGroup
	for _, w := range work {
		wg.Add(1)
		go func() { // want "detsource: goroutine launched in internal/analytic"
			defer wg.Done()
			w()
		}()
	}
	wg.Wait()
	return time.Since(start)
}

func race(a, b <-chan int) int {
	select { // want "detsource: select statement in internal/analytic"
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}
