// Package main mirrors cmd/experiments: measuring the wall time of a
// whole experiment is fine outside the simulation packages — that is
// the binaries' only exemption. Host concurrency is confined to the
// allowlist module-wide, so goroutines and select fire even here:
// driver fan-out must go through fsoi/internal/parallel. Linted under
// the virtual import path fsoi/cmd/experiments.
package main

import (
	"fmt"
	"time"
)

func main() {
	start := time.Now() // wall-clock timing in a binary: no finding
	done := make(chan struct{})
	go func() { close(done) }() // want "detsource: goroutine launched in cmd/experiments"
	select {                    // want "detsource: select statement in cmd/experiments"
	case <-done:
	}
	fmt.Println(time.Since(start))
}
