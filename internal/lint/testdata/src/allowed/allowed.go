// Package main mirrors cmd/experiments: measuring the wall time of a
// whole experiment, goroutines, and select are all fine outside the
// simulation packages. Linted under the virtual import path
// fsoi/cmd/experiments; the harness asserts zero findings.
package main

import (
	"fmt"
	"time"
)

func main() {
	start := time.Now()
	done := make(chan struct{})
	go func() { close(done) }()
	select {
	case <-done:
	}
	fmt.Println(time.Since(start))
}
