// Package detfix seeds deliberate determinism violations for the
// detsource analyzer. The test harness lints it under the virtual
// import path fsoi/internal/core, so simulation-package rules apply.
package detfix

import (
	"math/rand" // want "rngstream: import of math/rand"
	"os"
	"time"
)

func violations() {
	_ = time.Now()              // want "detsource: use of time.Now"
	_ = time.Since(time.Time{}) // want "detsource: use of time.Since"
	_ = os.Getenv("FSOI_SEED")  // want "detsource: use of os.Getenv"
	_ = rand.Intn(4)            // want "detsource: use of math/rand.Intn" "rngstream: use of math/rand.Intn"
	go violations()             // want "detsource: goroutine launched"
	ch := make(chan int)
	select { // want "detsource: select statement"
	case <-ch:
	default:
	}
}
