// Package rngfix seeds direct math/rand use outside internal/sim.
// Linted under the virtual import path fsoi/internal/exp — outside the
// simulation packages, where detsource stays quiet but rngstream still
// bans constructing or seeding generators directly.
package rngfix

import (
	"math/rand" // want "rngstream: import of math/rand"

	"fsoi/internal/sim"
)

func direct() float64 {
	r := rand.New(rand.NewSource(1)) // want "rngstream: use of math/rand.New" "rngstream: use of math/rand.NewSource"
	return r.Float64()               // want "rngstream: use of math/rand.Float64"
}

func global() int {
	return rand.Intn(16) // want "rngstream: use of math/rand.Intn"
}

// blessed is the sanctioned path: derive a named stream from the
// configuration seed.
func blessed(seed uint64) float64 {
	return sim.NewRNG(seed).NewStream("exp").Float64()
}
