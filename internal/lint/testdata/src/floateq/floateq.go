// Package floatfix seeds floating-point equality comparisons and the
// suppression-directive edge cases. Linted under the virtual import
// path fsoi/internal/optics (model code).
package floatfix

func compare(a, b float64, i, j int) bool {
	if a == b { // want "floateq: floating-point == comparison"
		return true
	}
	if a != b { // want "floateq: floating-point != comparison"
		return false
	}
	if i == j { // integers: not a finding
		return true
	}
	if a != a { // the NaN probe: not a finding
		return false
	}
	return 1.5 == 1.5 // both constant, folds at compile time: not a finding
}

func suppressedTrailing(a, b float64) bool {
	return a == b //lint:allow floateq fixture exercises the trailing-comment suppression path
}

func suppressedAbove(a, b float64) bool {
	//lint:allow floateq fixture exercises the comment-above suppression path
	return a == b
}

func missingReason(a, b float64) bool {
	return a == b //lint:allow floateq
	// want-above "floateq: floating-point == comparison" "lint: .* has no reason"
}

func unknownAnalyzer(a, b float64) bool {
	return a == b //lint:allow bogus this analyzer does not exist
	// want-above "floateq: floating-point == comparison" "lint: .* unknown analyzer"
}

func stale(i, j int) bool {
	//lint:allow maporder stale excuse for code that was since fixed
	return i == j // want-above "lint: unused suppression"
}
