package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"fsoi/internal/parallel"
)

// Package is one parsed and type-checked package, the unit every
// analyzer operates on.
type Package struct {
	// ImportPath is the package's import path ("fsoi/internal/core").
	// Fixture packages loaded through Loader.LoadDir carry the virtual
	// path the test assigned, so package-scoped analyzers treat them as
	// the package they impersonate.
	ImportPath string
	// ModuleRel is ImportPath relative to the module path
	// ("internal/core"), or "" for the module root package.
	ModuleRel string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	Info      *types.Info
}

// Loader parses and type-checks packages of a single module using only
// the standard library: go/parser for syntax and go/types with a source
// importer for semantics. Test files (_test.go) and testdata directories
// are excluded; the simulator's determinism invariants concern shipped
// code, and test files are free to use wall-clock timeouts.
type Loader struct {
	Root    string // absolute module root (directory holding go.mod)
	ModPath string // module path from go.mod

	// Jobs bounds the worker count of the parse pre-pass in LoadAll
	// (0 or 1 parses serially). Only parsing parallelizes: the
	// token.FileSet serializes its own position allocation, and
	// parser.ParseFile jobs share nothing else. Type-checking stays
	// strictly serial and in sorted import-path order — go/types
	// results must be built in a deterministic dependency order for
	// findings to be reproducible byte-for-byte.
	Jobs int

	fset     *token.FileSet
	std      types.ImporterFrom
	checked  map[string]*types.Package // import path -> type-checked package
	pkgs     map[string]*Package       // import path -> full package record
	checking map[string]bool           // import cycle detection
	parsed   map[string]*ast.File      // absolute file path -> pre-parsed syntax
}

// NewLoader locates the enclosing module of dir and returns a loader
// for it.
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer does not support ImportFrom")
	}
	return &Loader{
		Root:     root,
		ModPath:  modPath,
		fset:     fset,
		std:      std,
		checked:  make(map[string]*types.Package),
		pkgs:     make(map[string]*Package),
		checking: make(map[string]bool),
		parsed:   make(map[string]*ast.File),
	}, nil
}

// findModule walks up from dir to the nearest go.mod and reads the
// module path from its first "module" directive.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod above %s", abs)
		}
		d = parent
	}
}

// LoadAll parses and type-checks every non-test package in the module,
// in deterministic (import path) order.
func (l *Loader) LoadAll() ([]*Package, error) {
	var rels []string
	err := filepath.WalkDir(l.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.Root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoSources(path) {
			rel, err := filepath.Rel(l.Root, path)
			if err != nil {
				return err
			}
			rels = append(rels, filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(rels)
	l.preparse(rels)
	var out []*Package
	for _, rel := range rels {
		p, err := l.loadModulePackage(rel)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// preparse parses every source file under the given module-relative
// directories on up to l.Jobs workers, caching the syntax trees for
// check. Files that fail to parse are simply not cached: check
// re-parses them serially so the error surfaces at the same point,
// with the same message, as a serial load.
func (l *Loader) preparse(rels []string) {
	if l.Jobs <= 1 {
		return
	}
	var files []string
	for _, rel := range rels {
		dir := filepath.Join(l.Root, filepath.FromSlash(rel))
		entries, err := os.ReadDir(dir)
		if err != nil {
			continue
		}
		for _, e := range entries {
			if !e.IsDir() && isSourceName(e.Name()) {
				files = append(files, filepath.Join(dir, e.Name()))
			}
		}
	}
	parsed := parallel.Map(len(files), l.Jobs, func(i int) *ast.File {
		f, err := parser.ParseFile(l.fset, files[i], nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil
		}
		return f
	})
	for i, f := range parsed {
		if f != nil {
			l.parsed[files[i]] = f
		}
	}
}

// hasGoSources reports whether dir directly contains at least one
// non-test .go file.
func hasGoSources(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && isSourceName(e.Name()) {
			return true
		}
	}
	return false
}

func isSourceName(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")
}

// importPathFor maps a module-relative directory to its import path.
func (l *Loader) importPathFor(rel string) string {
	if rel == "" || rel == "." {
		return l.ModPath
	}
	return l.ModPath + "/" + rel
}

// loadModulePackage loads the package in the module-relative directory
// rel, type-checking its in-module dependencies first (lazily, through
// the importer). Results are memoized per loader.
func (l *Loader) loadModulePackage(rel string) (*Package, error) {
	path := l.importPathFor(rel)
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.checking[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.checking[path] = true
	defer delete(l.checking, path)

	p, err := l.check(filepath.Join(l.Root, filepath.FromSlash(rel)), path, rel)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = p
	l.checked[path] = p.Types
	return p, nil
}

// LoadDir type-checks the non-test .go files in dir as one package that
// pretends to live at virtualPath inside the module. Fixture files use
// this to exercise package-scoped analyzers: a fixture granted the
// virtual path "fsoi/internal/core" is linted under simulation-package
// rules even though it lives in testdata.
func (l *Loader) LoadDir(dir, virtualPath string) (*Package, error) {
	rel := strings.TrimPrefix(strings.TrimPrefix(virtualPath, l.ModPath), "/")
	return l.check(dir, virtualPath, rel)
}

// check parses and type-checks one directory's sources.
func (l *Loader) check(dir, importPath, rel string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !isSourceName(e.Name()) {
			continue
		}
		path := filepath.Join(dir, e.Name())
		if f, ok := l.parsed[path]; ok {
			files = append(files, f)
			continue
		}
		f, err := parser.ParseFile(l.fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go sources in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(importPath, l.fset, files, info)
	if len(typeErrs) > 0 {
		msgs := make([]string, 0, len(typeErrs))
		for _, e := range typeErrs {
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("lint: type errors in %s:\n  %s", importPath, strings.Join(msgs, "\n  "))
	}
	return &Package{
		ImportPath: importPath,
		ModuleRel:  rel,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom resolves in-module imports against the loader's own
// type-checked results (loading them on demand) and everything else
// through the standard library's source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := l.checked[path]; ok {
		return p, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
		p, err := l.loadModulePackage(rel)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}
