package lint

import (
	"encoding/json"
	"fmt"
	"sort"
)

// The suppression budget is the ratchet that keeps //lint:allow from
// becoming a pressure valve: CI carries a committed .lint-budget.json
// mapping each (analyzer, file) to the number of allows it is entitled
// to and the date the entitlement was first granted. Any growth — a
// new key, or more allows under an existing key — fails the gate until
// the budget file is regenerated in the same reviewed change, so every
// suppression is a visible, dated decision rather than a drive-by.

// Budget is the committed suppression entitlement.
type Budget struct {
	// Entries maps "analyzer module/rel/file.go" to its allowance.
	Entries map[string]BudgetEntry `json:"entries"`
}

// BudgetEntry is the allowance for one (analyzer, file) pair.
type BudgetEntry struct {
	Count int    `json:"count"`
	Since string `json:"since"` // ISO date the first allow under this key was budgeted
}

// ParseBudget decodes a committed budget file.
func ParseBudget(data []byte) (Budget, error) {
	var b Budget
	if err := json.Unmarshal(data, &b); err != nil {
		return Budget{}, fmt.Errorf("lint: parsing budget: %w", err)
	}
	if b.Entries == nil {
		b.Entries = map[string]BudgetEntry{}
	}
	return b, nil
}

// budgetKey forms the map key for one suppression, with the file made
// module-relative so the budget is stable across checkout locations.
func budgetKey(s Suppression, root string) string {
	return s.Analyzer + " " + relURI(s.File, root)
}

// groupSuppressions counts current suppressions per budget key.
func groupSuppressions(sups []Suppression, root string) map[string]int {
	counts := make(map[string]int)
	for _, s := range sups {
		counts[budgetKey(s, root)]++
	}
	return counts
}

// CheckBudget compares the current suppressions against the committed
// budget. Violations (growth: new keys or counts over entitlement)
// must fail CI; notes report shrinkage — entitlements no longer used,
// which should be ratcheted down by regenerating the file. Both lists
// are sorted for stable output.
func CheckBudget(b Budget, sups []Suppression, root string) (violations, notes []string) {
	counts := groupSuppressions(sups, root)
	for key, n := range counts {
		e, ok := b.Entries[key]
		if !ok {
			violations = append(violations,
				fmt.Sprintf("new suppression key %q (%d allow(s)): regenerate the budget in this change with -writebudget", key, n))
			continue
		}
		if n > e.Count {
			violations = append(violations,
				fmt.Sprintf("suppressions under %q grew from %d to %d (budgeted since %s): justify and regenerate with -writebudget", key, e.Count, n, e.Since))
		}
	}
	for key, e := range b.Entries {
		if n := counts[key]; n < e.Count {
			notes = append(notes,
				fmt.Sprintf("budget for %q is %d but only %d allow(s) remain (since %s): ratchet down with -writebudget", key, e.Count, n, e.Since))
		}
	}
	sort.Strings(violations)
	sort.Strings(notes)
	return violations, notes
}

// MakeBudget builds the budget matching the current suppressions. The
// since date of keys already in prev is preserved — the budget records
// when a suppression was first granted, not when the file was last
// regenerated — and new keys are stamped with today (ISO YYYY-MM-DD).
func MakeBudget(sups []Suppression, prev Budget, root, today string) Budget {
	b := Budget{Entries: make(map[string]BudgetEntry)}
	for key, n := range groupSuppressions(sups, root) {
		since := today
		if e, ok := prev.Entries[key]; ok && e.Since != "" {
			since = e.Since
		}
		b.Entries[key] = BudgetEntry{Count: n, Since: since}
	}
	return b
}

// MarshalBudget renders the budget with sorted keys and a trailing
// newline, so regeneration is byte-stable and diff-friendly.
func MarshalBudget(b Budget) ([]byte, error) {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
