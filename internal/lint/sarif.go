package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// SARIF emission: the subset of SARIF 2.1.0 that code-scanning UIs
// consume — one run, one driver, one rule per analyzer, one result per
// finding. Hand-rolled so the module keeps its zero-dependency
// property; the schema constants below are the only coupling.

const (
	sarifVersion = "2.1.0"
	sarifSchema  = "https://json.schemastore.org/sarif-2.1.0.json"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders findings as a SARIF 2.1.0 log on w. File paths
// are made relative to root (the module root) so the upload annotates
// the right blobs regardless of the runner's checkout directory. The
// pseudo-analyzer "lint" (malformed or unused suppressions) is always
// included as a rule, since Run can emit it for any analyzer set.
func WriteSARIF(w io.Writer, findings []Finding, analyzers []Analyzer, root string) error {
	rules := []sarifRule{{
		ID:               "lint",
		ShortDescription: sarifText{Text: "suppression directives must name a real analyzer, carry a reason, and still be needed"},
	}}
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name(), ShortDescription: sarifText{Text: a.Doc()}})
	}

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifText{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{
						URI:       relURI(f.File, root),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "fsoilint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// relURI converts an absolute finding path to a slash-separated path
// relative to root; paths outside root pass through unchanged.
func relURI(path, root string) string {
	if root == "" {
		return filepath.ToSlash(path)
	}
	rel, err := filepath.Rel(root, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(path)
	}
	return filepath.ToSlash(rel)
}
