package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FloatEq flags == and != between floating-point expressions in model
// code (everything under internal/). Exact float equality is only
// meaningful for values that were assigned, never computed; comparing
// computed values depends on evaluation order and optimization level,
// which is exactly the class of nondeterminism this repository bans.
// Legitimate exact comparisons (sentinels, zero-guards on values that
// are set rather than accumulated) carry a //lint:allow floateq with
// the justification.
type FloatEq struct{}

// Name implements Analyzer.
func (FloatEq) Name() string { return "floateq" }

// Doc implements Analyzer.
func (FloatEq) Doc() string {
	return "flags == and != on floating-point expressions in model code (internal/...)"
}

// Check implements Analyzer.
func (FloatEq) Check(p *Package) []Finding {
	if !strings.HasPrefix(p.ModuleRel, "internal/") && p.ModuleRel != "internal" {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			e, ok := n.(*ast.BinaryExpr)
			if !ok || (e.Op != token.EQL && e.Op != token.NEQ) {
				return true
			}
			xt, yt := p.Info.Types[e.X], p.Info.Types[e.Y]
			if !isFloat(xt.Type) && !isFloat(yt.Type) {
				return true
			}
			// Both sides constant: the comparison folds at compile time
			// and cannot vary between runs.
			if xt.Value != nil && yt.Value != nil {
				return true
			}
			// x != x / x == x is the deliberate NaN probe.
			if sameObject(p, e.X, e.Y) {
				return true
			}
			out = append(out, finding(p, "floateq", e,
				"floating-point %s comparison: computed floats differ by rounding, not identity; compare with a tolerance, restructure, or justify with //lint:allow floateq", e.Op))
			return true
		})
	}
	return out
}

// isFloat reports whether t's underlying type is a float or complex.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// sameObject reports whether two expressions are uses of the same
// variable (the x != x NaN idiom).
func sameObject(p *Package, x, y ast.Expr) bool {
	xi, ok1 := x.(*ast.Ident)
	yi, ok2 := y.(*ast.Ident)
	if !ok1 || !ok2 {
		return false
	}
	xo, yo := p.Info.Uses[xi], p.Info.Uses[yi]
	return xo != nil && xo == yo
}
