package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// fixtureVirtualPaths maps each testdata/src directory to the import
// path it impersonates. The choice matters: detsource's call bans only
// fire inside simulation packages, rngstream everywhere except
// internal/sim, and the "allowed" fixture pins the exact shape of the
// cmd/ exemption — wall-clock timing is free in a binary, but the
// module-wide concurrency ban still applies there.
var fixtureVirtualPaths = map[string]string{
	"detsource":   "fsoi/internal/core",
	"maporder":    "fsoi/internal/stats",
	"rngstream":   "fsoi/internal/exp",
	"floateq":     "fsoi/internal/optics",
	"allowed":     "fsoi/cmd/experiments",
	"parallelpkg": "fsoi/internal/parallel",
	"syncban":     "fsoi/internal/analytic",
	"shardsafety": "fsoi/internal/mesh",
	"units":       "fsoi/internal/power",
	"nolookahead": "fsoi/internal/optnet",
	"proxysched":  "fsoi/internal/corona",
}

// want is one expectation parsed from a fixture comment.
type want struct {
	file      string
	line      int
	re        *regexp.Regexp
	raw       string
	fulfilled bool
}

var (
	wantLineRe  = regexp.MustCompile(`//\s*want(-above)?\s+(.*)$`)
	wantQuoteRe = regexp.MustCompile(`"([^"]+)"`)
)

// parseWants scans every fixture source file for
//
//	// want "regexp" ["regexp" ...]
//	// want-above "regexp" ...   (expectation applies to the previous line)
//
// comments. Each regexp is matched against "analyzer: message" of the
// findings reported on that line.
func parseWants(t *testing.T, dir string) []*want {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantLineRe.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			target := line
			if m[1] == "-above" {
				target = line - 1
			}
			for _, q := range wantQuoteRe.FindAllStringSubmatch(m[2], -1) {
				wants = append(wants, &want{
					file: e.Name(),
					line: target,
					re:   regexp.MustCompile(q[1]),
					raw:  q[1],
				})
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return wants
}

func TestAnalyzersOnFixtures(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs := make([]string, 0, len(fixtureVirtualPaths))
	for d := range fixtureVirtualPaths {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)

	for _, dir := range dirs {
		t.Run(dir, func(t *testing.T) {
			fixDir := filepath.Join("testdata", "src", dir)
			p, err := loader.LoadDir(fixDir, fixtureVirtualPaths[dir])
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			findings := Run([]*Package{p}, Analyzers())
			wants := parseWants(t, fixDir)

			for _, f := range findings {
				text := fmt.Sprintf("%s: %s", f.Analyzer, f.Message)
				matched := false
				for _, w := range wants {
					if w.file == filepath.Base(f.File) && w.line == f.Line && w.re.MatchString(text) {
						w.fulfilled = true
						matched = true
					}
				}
				if !matched {
					t.Errorf("unexpected finding at %s:%d: %s", filepath.Base(f.File), f.Line, text)
				}
			}
			for _, w := range wants {
				if !w.fulfilled {
					t.Errorf("missing finding at %s:%d matching %q", w.file, w.line, w.raw)
				}
			}
		})
	}
}

// TestRepositoryLintClean runs the whole suite over the real module:
// the gate CI enforces, enforced again here so `go test ./...` alone
// catches regressions. Every suppression in the tree must carry a
// reason and still be needed.
func TestRepositoryLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type-check is not short")
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loader found only %d packages; module discovery is broken", len(pkgs))
	}
	for _, f := range Run(pkgs, Analyzers()) {
		t.Errorf("%s", f)
	}
}

// TestAnalyzerPositions pins exact reported positions for one known
// fixture violation per analyzer, so findings point at the offending
// expression rather than the enclosing statement or file.
func TestAnalyzerPositions(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	p, err := loader.LoadDir(filepath.Join("testdata", "src", "detsource"), "fsoi/internal/core")
	if err != nil {
		t.Fatal(err)
	}
	findings := Run([]*Package{p}, Analyzers())
	var hit bool
	for _, f := range findings {
		if f.Analyzer == "detsource" && strings.Contains(f.Message, "time.Now") {
			hit = true
			if f.Line == 0 || f.Col == 0 {
				t.Errorf("finding carries no position: %+v", f)
			}
			if filepath.Base(f.File) != "detsource.go" {
				t.Errorf("finding names wrong file: %s", f.File)
			}
		}
	}
	if !hit {
		t.Fatal("expected a detsource time.Now finding")
	}
}
