// Package lint is the repository's determinism-and-invariant static
// analysis suite. The simulator's core claim — bit-identical results
// for identical seeds — rests on conventions (named RNG streams, no
// wall-clock time, no map-iteration order leaking into simulated state)
// that this package turns from reviewer vigilance into machine-checked
// invariants. It is built only on the standard library's go/ast,
// go/parser, and go/types; the module keeps its zero-dependency
// property.
//
// Findings can be suppressed per line with a justification:
//
//	x := compute() //lint:allow floateq exact sentinel set two lines up
//
// The comment may also sit alone on the line directly above the
// offending one. The reason is mandatory: an allow without one is
// itself a finding, as is an allow that no longer suppresses anything.
package lint

import (
	"fmt"
	"go/ast"
	"sort"
	"strings"

	"fsoi/internal/parallel"
)

// Finding is one rule violation at one position.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String renders the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Analyzer is one checkable invariant.
type Analyzer interface {
	// Name is the identifier used in reports and //lint:allow comments.
	Name() string
	// Doc is a one-line description of what the analyzer forbids.
	Doc() string
	// Check reports every violation in the package.
	Check(p *Package) []Finding
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []Analyzer {
	return []Analyzer{DetSource{}, MapOrder{}, RNGStream{}, FloatEq{}, Shardsafety{}, Units{}}
}

// simPackages are the module-relative package roots whose code runs
// inside the simulated clock domain. Determinism rules are strict here:
// simulated state must never observe host time, host scheduling, or
// unnamed randomness. Subdirectories inherit the classification.
var simPackages = []string{
	"internal/core",
	"internal/sim",
	"internal/coherence",
	"internal/system",
	"internal/mesh",
	"internal/fault",
	"internal/cpu",
	"internal/workload",
	"internal/obs",
	"internal/corona",
	"internal/optnet",
	"internal/adversary",
}

// isSimPackage reports whether the module-relative path rel is (or is
// nested under) a simulation package.
func isSimPackage(rel string) bool {
	for _, p := range simPackages {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}

// concurrencyAllowlist names the packages that may use goroutines,
// select, and the sync primitives. Host concurrency is architecturally
// confined to these audited packages — everything else in the module,
// cmd/ and examples/ binaries included, must go through them
// (fsoi/internal/parallel merges results by submission index, so
// callers stay byte-identical to serial). The binaries keep only the
// wall-clock exemption: time.Now for benchmark timing never touches
// simulated state, but ad-hoc fan-out in a driver would reorder
// result aggregation just as surely as it would inside internal/.
var concurrencyAllowlist = []string{
	"internal/parallel",
	// The sharded event engine is the one simulation package allowed to
	// touch host concurrency: its epoch runner fans share-nothing shards
	// out over the internal/parallel pool, and its exact engine must
	// stay free to adopt primitives as the epoch path grows. Both are
	// covered by shard-count-invariance tests, which is the determinism
	// argument the ban exists to force everywhere else.
	"internal/sim/shard",
}

// bansConcurrency reports whether the module-relative path rel is
// outside the concurrency allowlist. Every module package is in scope.
func bansConcurrency(rel string) bool {
	for _, p := range concurrencyAllowlist {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return false
		}
	}
	return true
}

// finding builds a Finding for node n in package p.
func finding(p *Package, analyzer string, n ast.Node, format string, args ...any) Finding {
	pos := p.Fset.Position(n.Pos())
	return Finding{
		Analyzer: analyzer,
		File:     pos.Filename,
		Line:     pos.Line,
		Col:      pos.Column,
		Message:  fmt.Sprintf(format, args...),
	}
}

// allow is one parsed //lint:allow directive.
type allow struct {
	analyzer string
	reason   string
	file     string
	line     int
	used     bool
}

const allowPrefix = "//lint:allow"

// collectAllows parses every //lint:allow directive in the package.
// Malformed directives (missing analyzer or missing reason) are
// reported immediately as findings from the pseudo-analyzer "lint".
func collectAllows(p *Package, known map[string]bool) (allows []*allow, bad []Finding) {
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) == 0 {
					bad = append(bad, Finding{
						Analyzer: "lint", File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Message: "malformed suppression: want //lint:allow <analyzer> <reason>",
					})
					continue
				}
				if !known[fields[0]] {
					bad = append(bad, Finding{
						Analyzer: "lint", File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Message: fmt.Sprintf("suppression names unknown analyzer %q", fields[0]),
					})
					continue
				}
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Analyzer: "lint", File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Message: fmt.Sprintf("suppression of %q has no reason: a justification is mandatory", fields[0]),
					})
					continue
				}
				allows = append(allows, &allow{
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
					file:     pos.Filename,
					line:     pos.Line,
				})
			}
		}
	}
	return allows, bad
}

// Run executes the analyzers over the packages and applies suppression
// directives. It returns the surviving findings sorted by position.
func Run(pkgs []*Package, analyzers []Analyzer) []Finding {
	return RunWorkers(pkgs, analyzers, 1)
}

// RunWorkers is Run fanned out over the internal/parallel pool:
// packages are analyzed on up to `workers` goroutines and the findings
// merged by submission index, so the output is byte-identical to the
// serial run at every worker count. Analyzers only read their own
// *Package, so package-level checks are share-nothing jobs.
func RunWorkers(pkgs []*Package, analyzers []Analyzer, workers int) []Finding {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name()] = true
	}
	perPkg := parallel.Map(len(pkgs), workers, func(i int) []Finding {
		return runPackage(pkgs[i], analyzers, known)
	})
	var out []Finding
	for _, fs := range perPkg {
		out = append(out, fs...)
	}
	sortFindings(out)
	return out
}

// runPackage applies the suite and the suppression directives to one
// package.
func runPackage(p *Package, analyzers []Analyzer, known map[string]bool) []Finding {
	allows, bad := collectAllows(p, known)
	out := bad

	// An allow on line N suppresses findings of its analyzer on
	// line N (trailing comment) and line N+1 (comment above).
	byKey := make(map[string][]*allow)
	key := func(file string, line int, analyzer string) string {
		return fmt.Sprintf("%s\x00%d\x00%s", file, line, analyzer)
	}
	for _, a := range allows {
		byKey[key(a.file, a.line, a.analyzer)] = append(byKey[key(a.file, a.line, a.analyzer)], a)
		byKey[key(a.file, a.line+1, a.analyzer)] = append(byKey[key(a.file, a.line+1, a.analyzer)], a)
	}

	for _, a := range analyzers {
		for _, f := range a.Check(p) {
			matched := false
			for _, al := range byKey[key(f.File, f.Line, f.Analyzer)] {
				al.used = true
				matched = true
			}
			if !matched {
				out = append(out, f)
			}
		}
	}
	for _, al := range allows {
		if !al.used {
			out = append(out, Finding{
				Analyzer: "lint", File: al.file, Line: al.line, Col: 1,
				Message: fmt.Sprintf("unused suppression of %q: the code it excused is gone, delete the comment", al.analyzer),
			})
		}
	}
	return out
}

// Suppression is one well-formed //lint:allow directive, exposed for
// the suppression-budget report: CI fails when the count per
// (analyzer, file) grows, so every new allow is a reviewed decision.
type Suppression struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Reason   string `json:"reason"`
}

// Suppressions collects every well-formed allow directive in the
// packages, sorted by position. Malformed directives are ignored here;
// Run reports them as findings.
func Suppressions(pkgs []*Package, analyzers []Analyzer) []Suppression {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name()] = true
	}
	var out []Suppression
	for _, p := range pkgs {
		allows, _ := collectAllows(p, known)
		for _, a := range allows {
			out = append(out, Suppression{Analyzer: a.analyzer, File: a.file, Line: a.line, Reason: a.reason})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// sortFindings orders findings by file, line, column, analyzer.
func sortFindings(out []Finding) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}
