package lint

import (
	"go/ast"
	"go/types"
)

// DetSource forbids nondeterministic inputs inside simulation packages:
// wall-clock time, the global math/rand generator, environment lookups,
// and host-scheduler constructs (goroutines, select). Simulated state
// must be a pure function of the configuration and its seed; any of
// these leaks host state into the run and silently breaks the
// bit-identical-replay guarantee.
//
// It additionally confines host concurrency: every module package
// outside concurrencyAllowlist — cmd/ and examples/ binaries included
// — is barred from goroutines, select, and importing sync or
// sync/atomic. Experiment fan-out must go through
// fsoi/internal/parallel, whose index-ordered merge keeps parallel
// output byte-identical to serial; ad-hoc concurrency anywhere else
// would reopen the scheduler-ordering hole that package exists to
// close. The binaries keep only the wall-clock exemption (time.Now
// for benchmark timing), because the sim-package call bans below
// apply solely to simulation packages.
type DetSource struct{}

// Name implements Analyzer.
func (DetSource) Name() string { return "detsource" }

// Doc implements Analyzer.
func (DetSource) Doc() string {
	return "forbids wall-clock time, global math/rand, and env lookups in simulation packages, and goroutines/select/sync in every module package outside the concurrency allowlist"
}

// bannedCalls maps package path -> function name -> the remedy text.
var bannedCalls = map[string]map[string]string{
	"time": {
		"Now":       "derive timing from sim.Engine cycles",
		"Since":     "derive durations from sim.Cycle arithmetic",
		"Until":     "derive durations from sim.Cycle arithmetic",
		"Sleep":     "schedule a callback with Engine.After instead of blocking",
		"After":     "schedule a callback with Engine.After instead of a timer channel",
		"Tick":      "register a sim.TickFunc instead of a ticker",
		"NewTimer":  "schedule a callback with Engine.After instead of a timer",
		"NewTicker": "register a sim.TickFunc instead of a ticker",
		"AfterFunc": "schedule a callback with Engine.After",
	},
	"os": {
		"Getenv":    "thread configuration through the package's Config struct",
		"LookupEnv": "thread configuration through the package's Config struct",
		"Environ":   "thread configuration through the package's Config struct",
		"ExpandEnv": "thread configuration through the package's Config struct",
	},
}

// Check implements Analyzer.
func (DetSource) Check(p *Package) []Finding {
	sim := isSimPackage(p.ModuleRel)
	conc := bansConcurrency(p.ModuleRel)
	if !sim && !conc {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		if conc {
			for _, imp := range f.Imports {
				if path := importPathOf(imp); path == "sync" || path == "sync/atomic" {
					out = append(out, finding(p, "detsource", imp,
						"import of %s in %s: host concurrency is confined to fsoi/internal/parallel; fan work out through parallel.Map, which merges by submission index", path, p.ModuleRel))
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if !conc {
					return true
				}
				if sim {
					out = append(out, finding(p, "detsource", n,
						"goroutine launched in simulation package %s: the simulator is single-threaded; host scheduling is nondeterministic", p.ModuleRel))
				} else {
					out = append(out, finding(p, "detsource", n,
						"goroutine launched in %s: host concurrency is confined to fsoi/internal/parallel; fan work out through parallel.Map, which merges by submission index", p.ModuleRel))
				}
			case *ast.SelectStmt:
				if !conc {
					return true
				}
				if sim {
					out = append(out, finding(p, "detsource", n,
						"select statement in simulation package %s: channel readiness depends on the host scheduler; drive everything from the event queue", p.ModuleRel))
				} else {
					out = append(out, finding(p, "detsource", n,
						"select statement in %s: channel readiness depends on the host scheduler; route concurrency through fsoi/internal/parallel", p.ModuleRel))
				}
			case *ast.SelectorExpr:
				if !sim {
					return true
				}
				obj := p.Info.Uses[n.Sel]
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				pkgPath := obj.Pkg().Path()
				if remedy, ok := bannedCalls[pkgPath][obj.Name()]; ok {
					out = append(out, finding(p, "detsource", n,
						"use of %s.%s in simulation package %s: %s", pkgPath, obj.Name(), p.ModuleRel, remedy))
				}
				if pkgPath == "math/rand" || pkgPath == "math/rand/v2" {
					out = append(out, finding(p, "detsource", n,
						"use of %s.%s in simulation package %s: draw from a named stream ((*sim.RNG).NewStream) so replays stay bit-identical", pkgPath, obj.Name(), p.ModuleRel))
				}
			}
			return true
		})
	}
	return out
}

// RNGStream requires all randomness to flow through internal/sim's
// named-stream API everywhere in the module (not just the simulation
// packages). Constructing or seeding a generator from math/rand
// bypasses the stream-genealogy discipline that makes sweeps
// reproducible, so any use of math/rand outside internal/sim is an
// error.
type RNGStream struct{}

// Name implements Analyzer.
func (RNGStream) Name() string { return "rngstream" }

// Doc implements Analyzer.
func (RNGStream) Doc() string {
	return "requires all randomness to flow through internal/sim named streams; math/rand is banned outside internal/sim"
}

// rngPackages are the generator packages the analyzer bans.
var rngPackages = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// Check implements Analyzer.
func (RNGStream) Check(p *Package) []Finding {
	if p.ModuleRel == "internal/sim" || isUnder(p.ModuleRel, "internal/sim") {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path := importPathOf(imp)
			if rngPackages[path] {
				out = append(out, finding(p, "rngstream", imp,
					"import of %s: all randomness must flow through fsoi/internal/sim named streams (sim.NewRNG at the root, NewStream below)", path))
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := p.Info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || !rngPackages[obj.Pkg().Path()] {
				return true
			}
			remedy := "replace with a (*sim.RNG) stream draw"
			switch obj.Name() {
			case "New", "NewSource", "NewPCG", "NewChaCha8":
				remedy = "derive a generator with (*sim.RNG).NewStream(name) instead"
			case "Seed":
				remedy = "seeding a global generator breaks stream genealogy; seed only via sim.NewRNG(cfg.Seed)"
			}
			out = append(out, finding(p, "rngstream", sel,
				"use of %s.%s: %s", obj.Pkg().Path(), obj.Name(), remedy))
			return true
		})
	}
	return out
}

// isUnder reports whether rel is strictly inside the package root.
func isUnder(rel, root string) bool {
	return len(rel) > len(root) && rel[:len(root)] == root && rel[len(root)] == '/'
}

// importPathOf unquotes an import spec's path.
func importPathOf(imp *ast.ImportSpec) string {
	s := imp.Path.Value
	if len(s) >= 2 {
		return s[1 : len(s)-1]
	}
	return s
}

// objType returns the object's type, or nil.
func objType(obj types.Object) types.Type {
	if obj == nil {
		return nil
	}
	return obj.Type()
}
