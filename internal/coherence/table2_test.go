package coherence

import (
	"testing"

	"fsoi/internal/cache"
	"fsoi/internal/sim"
)

// TestTable2L1StableRows drives the L1 controller through every defined
// (stable state, event) cell of the paper's Table 2 and checks the
// action/next-state pair literally.
func TestTable2L1StableRows(t *testing.T) {
	type outcome struct {
		nextState cache.State
		sends     MsgType // expected message, or -1 for silent
		withData  bool
	}
	const silent = MsgType(-1)

	// prep functions put the line into the row's starting state.
	prep := map[cache.State]func(r *rig){
		cache.Invalid:   func(r *rig) {},
		cache.Shared:    func(r *rig) { r.fill(0, line); r.access(1, line, false) }, // 1 shares after 0 owns
		cache.Exclusive: func(r *rig) { r.access(1, line, false) },
		cache.Modified:  func(r *rig) { r.fill(1, line) },
	}

	cases := []struct {
		name  string
		start cache.State
		event Msg
		want  outcome
	}{
		// Row I: Inv -> InvAck/I, Dwg -> DwgAck/I.
		{"I+Inv", cache.Invalid, Msg{Type: Inv, Addr: line, From: 0, To: 1},
			outcome{cache.Invalid, InvAck, false}},
		{"I+Dwg", cache.Invalid, Msg{Type: Dwg, Addr: line, From: 0, To: 1},
			outcome{cache.Invalid, DwgAck, false}},
		// Row S: Inv -> InvAck/I.
		{"S+Inv", cache.Shared, Msg{Type: Inv, Addr: line, From: 0, To: 1},
			outcome{cache.Invalid, InvAck, false}},
		// Row E: Inv -> InvAck/I, Dwg -> DwgAck/S (clean).
		{"E+Inv", cache.Exclusive, Msg{Type: Inv, Addr: line, From: 0, To: 1},
			outcome{cache.Invalid, InvAck, false}},
		{"E+Dwg", cache.Exclusive, Msg{Type: Dwg, Addr: line, From: 0, To: 1},
			outcome{cache.Shared, DwgAck, false}},
		// Row M: Inv -> InvAck(D)/I, Dwg -> DwgAck(D)/S.
		{"M+Inv", cache.Modified, Msg{Type: Inv, Addr: line, From: 0, To: 1},
			outcome{cache.Invalid, InvAck, true}},
		{"M+Dwg", cache.Modified, Msg{Type: Dwg, Addr: line, From: 0, To: 1},
			outcome{cache.Shared, DwgAck, true}},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := newRig(t, 3)
			prep[tc.start](r)
			if st := r.l1s[1].HasLine(line); st != tc.start {
				t.Fatalf("prep reached %v, want %v", st, tc.start)
			}
			before := len(r.sent)
			r.l1s[1].Handle(tc.event, r.engine.Now())
			if st := r.l1s[1].HasLine(line); st != tc.want.nextState {
				t.Fatalf("next state = %v, want %v", st, tc.want.nextState)
			}
			if tc.want.sends == silent {
				if len(r.sent) != before {
					t.Fatalf("expected silence, sent %+v", r.sent[before:])
				}
				return
			}
			if len(r.sent) != before+1 {
				t.Fatalf("expected exactly one message, got %d", len(r.sent)-before)
			}
			m := r.sent[before]
			if m.Type != tc.want.sends || m.HasData != tc.want.withData {
				t.Fatalf("sent %v(data=%v), want %v(data=%v)", m.Type, m.HasData, tc.want.sends, tc.want.withData)
			}
		})
	}
}

// TestTable2L1RequestColumns checks the Read/Write columns: which
// request each stable state emits on a miss.
func TestTable2L1RequestColumns(t *testing.T) {
	cases := []struct {
		name  string
		start cache.State
		write bool
		want  MsgType
	}{
		{"I+Read->Req(Sh)", cache.Invalid, false, ReqSh},
		{"I+Write->Req(Ex)", cache.Invalid, true, ReqEx},
		{"S+Write->Req(Upg)", cache.Shared, true, ReqUpg},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := newRig(t, 3)
			if tc.start == cache.Shared {
				r.fill(0, line)
				r.access(1, line, false)
			}
			before := len(r.sent)
			r.l1s[1].Access(line, tc.write, func(sim.Cycle) {})
			found := false
			for _, m := range r.sent[before:] {
				if m.Type == tc.want {
					found = true
				}
			}
			if !found {
				t.Fatalf("request %v not issued (sent %+v)", tc.want, r.sent[before:])
			}
			r.run(5000) // drain so the rig quiesces
		})
	}
}

// TestTable2DirectoryStableRows checks the directory's stable-state
// request column outcomes.
func TestTable2DirectoryStableRows(t *testing.T) {
	t.Run("DI+ReqSh->ReqMem_DIDSD", func(t *testing.T) {
		r := newRig(t, 2)
		r.dir.Handle(Msg{Type: ReqSh, Addr: line, From: 1, To: 0}, 0)
		if got := r.dir.EntryState(line); got != "DI.DSD" {
			t.Fatalf("state = %s", got)
		}
		if r.sent[len(r.sent)-1].Type != ReqMem {
			t.Fatal("memory fetch not issued")
		}
		r.run(5000)
	})
	t.Run("DV+ReqSh->DataE_DM", func(t *testing.T) {
		r := newRig(t, 3)
		r.fill(1, line)
		r.evict(1, line) // DM -> WriteBack -> DV
		if got := r.dir.EntryState(line); got != "DV" {
			t.Fatalf("prep state = %s, want DV", got)
		}
		// A real access from node 2 exercises the DV row end to end.
		if !r.access(2, line, false) {
			t.Fatal("read of the DV line failed")
		}
		if got := r.dir.EntryState(line); got != "DM" {
			t.Fatalf("state = %s, want DM (DV grants exclusively)", got)
		}
		if st := r.l1s[2].HasLine(line); st != cache.Exclusive {
			t.Fatalf("requester got %v, want E", st)
		}
	})
	t.Run("DS+ReqUpg->Inv_DSDMA", func(t *testing.T) {
		r := newRig(t, 3)
		r.fill(1, line)
		r.access(2, line, false) // DS {1,2}
		r.dir.Handle(Msg{Type: ReqUpg, Addr: line, From: 2, To: 0}, r.engine.Now())
		if got := r.dir.EntryState(line); got != "DS.DMA" {
			t.Fatalf("state = %s, want DS.DMA", got)
		}
		r.run(8000)
		if got := r.dir.EntryState(line); got != "DM" {
			t.Fatalf("final state = %s, want DM", got)
		}
	})
	t.Run("DM+ReqSh->Dwg_DMDSD", func(t *testing.T) {
		r := newRig(t, 3)
		r.fill(1, line)
		r.dir.Handle(Msg{Type: ReqSh, Addr: line, From: 2, To: 0}, r.engine.Now())
		if got := r.dir.EntryState(line); got != "DM.DSD" {
			t.Fatalf("state = %s, want DM.DSD", got)
		}
		r.run(8000)
		if got := r.dir.EntryState(line); got != "DS" {
			t.Fatalf("final state = %s, want DS", got)
		}
	})
	t.Run("DM+ReqEx->Inv_DMDMD", func(t *testing.T) {
		r := newRig(t, 3)
		r.fill(1, line)
		r.dir.Handle(Msg{Type: ReqEx, Addr: line, From: 2, To: 0}, r.engine.Now())
		if got := r.dir.EntryState(line); got != "DM.DMD" {
			t.Fatalf("state = %s, want DM.DMD", got)
		}
		r.run(8000)
		if _, owner := r.dir.Sharers(line); owner != 2 {
			t.Fatalf("owner = %d, want 2", owner)
		}
	})
}
