package coherence

import (
	"testing"

	"fsoi/internal/cache"
	"fsoi/internal/sim"
)

// rig is a miniature CMP for protocol tests: n nodes, every line homed at
// node 0, a 1-cycle ordered message fabric, and a stub memory controller
// answering after a fixed delay. It enforces the §4.4 per-(src,dst,line)
// ordering invariant the real system provides.
type rig struct {
	t       *testing.T
	engine  *sim.Engine
	l1s     []*L1
	dir     *Directory
	elide   bool
	boolean bool
	memLat  sim.Cycle

	inFlight map[[3]uint64]bool
	queued   map[[3]uint64][]Msg
	sent     []Msg
	bits     []bitEvent
	blockNet bool // force Send to fail (backpressure tests)
}

type bitEvent struct {
	src, dst int
	tag      uint64
	value    bool
}

func key(m Msg) [3]uint64 {
	return [3]uint64{uint64(m.From), uint64(m.To), uint64(m.Addr)}
}

func (r *rig) Send(m Msg) bool {
	if r.blockNet {
		return false
	}
	r.sent = append(r.sent, m)
	k := key(m)
	if r.inFlight[k] {
		r.queued[k] = append(r.queued[k], m)
		return true
	}
	r.inFlight[k] = true
	r.launch(m)
	return true
}

func (r *rig) launch(m Msg) {
	r.engine.After(1, func(now sim.Cycle) {
		r.deliver(m, now)
		k := key(m)
		if q := r.queued[k]; len(q) > 0 {
			r.queued[k] = q[1:]
			r.launch(q[0])
		} else {
			delete(r.inFlight, k)
		}
	})
}

func (r *rig) deliver(m Msg, now sim.Cycle) {
	switch m.Type {
	case ReqMem:
		r.engine.After(r.memLat, func(sim.Cycle) {
			r.Send(Msg{Type: MemAck, Addr: m.Addr, From: m.To, To: m.From, HasData: true})
		})
	case MemWrite:
		// absorbed
	case MemAck, ReqSh, ReqEx, ReqUpg, WriteBack, InvAck, DwgAck, SyncReq:
		r.dir.Handle(m, now)
		// Elided-ack invalidations: the delivery confirmation doubles as
		// the ack two cycles later.
	case Inv:
		r.l1s[m.To].Handle(m, now)
		if m.Value && r.elide {
			r.engine.After(2, func(at sim.Cycle) { r.dir.OnInvConfirm(m.Addr, at) })
		}
	default:
		r.l1s[m.To].Handle(m, now)
	}
}

func (r *rig) ConfirmationElision() bool { return r.elide }
func (r *rig) BooleanSubscription() bool { return r.boolean }
func (r *rig) SendBit(src, dst int, tag uint64, value bool) {
	r.bits = append(r.bits, bitEvent{src, dst, tag, value})
}

func newRig(t *testing.T, nodes int) *rig {
	r := &rig{
		t:        t,
		engine:   sim.NewEngine(),
		memLat:   20,
		inFlight: make(map[[3]uint64]bool),
		queued:   make(map[[3]uint64][]Msg),
	}
	rng := sim.NewRNG(1)
	home := func(cache.LineAddr) int { return 0 }
	for i := 0; i < nodes; i++ {
		l1 := NewL1(i, PaperL1(), r.engine, rng, r, home)
		r.l1s = append(r.l1s, l1)
		r.engine.Register(l1)
	}
	r.dir = NewDirectory(0, PaperDir(), r.engine, r, func(int) int { return 0 })
	r.engine.Register(r.dir)
	return r
}

// run advances until quiescent or the limit.
func (r *rig) run(limit sim.Cycle) {
	start := r.engine.Now()
	for r.engine.Now()-start < limit {
		r.engine.Step()
		if r.engine.Pending() == 0 {
			// One extra step lets tickers drain outboxes.
			r.engine.Step()
			if r.engine.Pending() == 0 {
				return
			}
		}
	}
}

// access performs a blocking access and returns whether it completed.
func (r *rig) access(node int, addr cache.LineAddr, write bool) bool {
	done := false
	r.l1s[node].AccessRetry(addr, write, func(sim.Cycle) { done = true })
	r.run(5000)
	return done
}

const line cache.LineAddr = 0x42

func TestReadMissFillsExclusive(t *testing.T) {
	r := newRig(t, 2)
	if !r.access(1, line, false) {
		t.Fatal("read never completed")
	}
	if st := r.l1s[1].HasLine(line); st != cache.Exclusive {
		t.Fatalf("state = %v, want E (DV grants exclusive)", st)
	}
	if got := r.dir.EntryState(line); got != "DM" {
		t.Fatalf("dir state = %s, want DM", got)
	}
	if _, owner := r.dir.Sharers(line); owner != 1 {
		t.Fatalf("owner = %d, want 1", owner)
	}
}

func TestWriteMissFillsModified(t *testing.T) {
	r := newRig(t, 2)
	if !r.access(1, line, true) {
		t.Fatal("write never completed")
	}
	if st := r.l1s[1].HasLine(line); st != cache.Modified {
		t.Fatalf("state = %v, want M", st)
	}
}

func TestSilentEtoMUpgrade(t *testing.T) {
	r := newRig(t, 2)
	r.access(1, line, false)
	msgsBefore := len(r.sent)
	if !r.access(1, line, true) {
		t.Fatal("write hit never completed")
	}
	if len(r.sent) != msgsBefore {
		t.Fatal("E->M upgrade must be silent")
	}
	if st := r.l1s[1].HasLine(line); st != cache.Modified {
		t.Fatalf("state = %v, want M", st)
	}
}

func TestReadDowngradesOwner(t *testing.T) {
	r := newRig(t, 3)
	r.access(1, line, true) // node 1 owns M
	if !r.access(2, line, false) {
		t.Fatal("second read never completed")
	}
	if st := r.l1s[1].HasLine(line); st != cache.Shared {
		t.Fatalf("old owner state = %v, want S after Dwg", st)
	}
	if st := r.l1s[2].HasLine(line); st != cache.Shared {
		t.Fatalf("reader state = %v, want S", st)
	}
	if got := r.dir.EntryState(line); got != "DS" {
		t.Fatalf("dir state = %s, want DS", got)
	}
	sharers, _ := r.dir.Sharers(line)
	if sharers != 0b110 {
		t.Fatalf("sharers = %b, want nodes 1 and 2", sharers)
	}
}

func TestUpgradeInvalidatesSharers(t *testing.T) {
	r := newRig(t, 3)
	r.access(1, line, true)
	r.access(2, line, false) // both S now
	if !r.access(2, line, true) {
		t.Fatal("upgrade never completed")
	}
	if st := r.l1s[2].HasLine(line); st != cache.Modified {
		t.Fatalf("upgrader state = %v, want M", st)
	}
	if st := r.l1s[1].HasLine(line); st != cache.Invalid {
		t.Fatalf("old sharer state = %v, want I", st)
	}
	if _, owner := r.dir.Sharers(line); owner != 2 {
		t.Fatalf("owner = %d, want 2", owner)
	}
	// The upgrade path must grant via ExcAck, not a data reply.
	sawExcAck := false
	for _, m := range r.sent {
		if m.Type == ExcAck && m.To == 2 {
			sawExcAck = true
		}
	}
	if !sawExcAck {
		t.Fatal("upgrade should complete with ExcAck")
	}
}

func TestExclusiveRequestForwardsDirtyData(t *testing.T) {
	r := newRig(t, 3)
	r.access(1, line, true) // node 1 M (dirty)
	if !r.access(2, line, true) {
		t.Fatal("second write never completed")
	}
	if st := r.l1s[1].HasLine(line); st != cache.Invalid {
		t.Fatalf("old owner = %v, want I", st)
	}
	if st := r.l1s[2].HasLine(line); st != cache.Modified {
		t.Fatalf("new owner = %v, want M", st)
	}
	// Node 1's InvAck must have carried the dirty line.
	sawDirtyAck := false
	for _, m := range r.sent {
		if m.Type == InvAck && m.From == 1 && m.HasData {
			sawDirtyAck = true
		}
	}
	if !sawDirtyAck {
		t.Fatal("M owner must return data with its InvAck")
	}
}

func TestSharedReadsServedFromL2(t *testing.T) {
	r := newRig(t, 4)
	r.access(1, line, true)
	r.access(2, line, false)
	memReads := r.dir.Stats().MemReads
	r.access(3, line, false)
	if r.dir.Stats().MemReads != memReads {
		t.Fatal("a DS read must be served from the L2 slice, not memory")
	}
	sharers, _ := r.dir.Sharers(line)
	if sharers != 0b1110 {
		t.Fatalf("sharers = %b", sharers)
	}
}

func TestMEvictionWritesBack(t *testing.T) {
	r := newRig(t, 2)
	r.access(1, line, true)
	// Fill node 1's set until the victim line is evicted: same set =
	// addr + k*nsets (64 sets, 2 ways).
	r.access(1, line+64, false)
	r.access(1, line+128, false)
	r.run(2000)
	sawWB := false
	for _, m := range r.sent {
		if m.Type == WriteBack && m.From == 1 && m.Addr == line && m.HasData {
			sawWB = true
		}
	}
	if !sawWB {
		t.Fatal("evicting an M line must write back data")
	}
	if got := r.dir.EntryState(line); got != "DV" {
		t.Fatalf("dir state = %s, want DV after writeback", got)
	}
}

func TestEEvictionAnnouncesClean(t *testing.T) {
	r := newRig(t, 2)
	r.access(1, line, false) // E
	r.access(1, line+64, false)
	r.access(1, line+128, false)
	r.run(2000)
	for _, m := range r.sent {
		if m.Type == WriteBack && m.Addr == line {
			if m.HasData {
				t.Fatal("clean E eviction should not carry data")
			}
			return
		}
	}
	t.Fatal("E eviction must announce a clean writeback")
}

func TestWritebackThenRerequest(t *testing.T) {
	// The owner's re-request crossing its own writeback: the directory
	// stalls it until the writeback lands, then serves from L2.
	r := newRig(t, 2)
	r.access(1, line, true)
	r.access(1, line+64, false)
	r.access(1, line+128, false) // evicts line, WriteBack in flight
	if !r.access(1, line, false) {
		t.Fatal("re-request after writeback never completed")
	}
	if st := r.l1s[1].HasLine(line); st != cache.Exclusive {
		t.Fatalf("state = %v, want E (DV grants exclusive)", st)
	}
}

func TestDataVRereadAfterAllEvict(t *testing.T) {
	r := newRig(t, 3)
	r.access(1, line, true)
	r.access(1, line+64, false)
	r.access(1, line+128, false) // line now DV in L2
	r.run(2000)
	memReads := r.dir.Stats().MemReads
	if !r.access(2, line, false) {
		t.Fatal("read of DV line failed")
	}
	if r.dir.Stats().MemReads != memReads {
		t.Fatal("DV read must hit the L2 slice")
	}
}

func TestMergedWaitersOnOneMiss(t *testing.T) {
	r := newRig(t, 2)
	doneA, doneB := false, false
	r.l1s[1].AccessRetry(line, false, func(sim.Cycle) { doneA = true })
	r.l1s[1].AccessRetry(line, false, func(sim.Cycle) { doneB = true })
	r.run(5000)
	if !doneA || !doneB {
		t.Fatal("both merged readers must complete")
	}
	reqs := 0
	for _, m := range r.sent {
		if m.Type == ReqSh {
			reqs++
		}
	}
	if reqs != 1 {
		t.Fatalf("merged misses should issue one request, got %d", reqs)
	}
}

func TestWriteWaiterUpgradesAfterSharedFill(t *testing.T) {
	// A write merging behind a read miss must upgrade once the shared
	// fill lands.
	r := newRig(t, 4)
	r.access(1, line, true)
	r.access(2, line, false) // line DS, shared by 1 and 2... now from node 3:
	doneRead, doneWrite := false, false
	r.l1s[3].AccessRetry(line, false, func(sim.Cycle) { doneRead = true })
	r.l1s[3].AccessRetry(line, true, func(sim.Cycle) { doneWrite = true })
	r.run(8000)
	if !doneRead || !doneWrite {
		t.Fatalf("read=%v write=%v; both must complete", doneRead, doneWrite)
	}
	if st := r.l1s[3].HasLine(line); st != cache.Modified {
		t.Fatalf("final state = %v, want M", st)
	}
}

func TestAckElisionSkipsSharerAcks(t *testing.T) {
	r := newRig(t, 4)
	r.elide = true
	r.access(1, line, true)
	r.access(2, line, false)
	r.access(3, line, false) // DS with sharers 1,2,3
	if !r.access(1, line, true) {
		t.Fatal("upgrade with elided acks never completed")
	}
	elided := r.l1s[2].Stats().ElidedAcks + r.l1s[3].Stats().ElidedAcks
	if elided == 0 {
		t.Fatal("sharer invalidation acks should be elided")
	}
	for _, m := range r.sent {
		if m.Type == InvAck && !m.HasData {
			t.Fatalf("clean InvAck packet sent despite elision: %+v", m)
		}
	}
}

func TestOwnerAlwaysSendsRealInvAck(t *testing.T) {
	r := newRig(t, 3)
	r.elide = true
	r.access(1, line, true) // node 1 owns M
	if !r.access(2, line, true) {
		t.Fatal("exclusive transfer never completed")
	}
	saw := false
	for _, m := range r.sent {
		if m.Type == InvAck && m.From == 1 && m.HasData {
			saw = true
		}
	}
	if !saw {
		t.Fatal("the M owner must send a real data-carrying InvAck even with elision on")
	}
}

func TestNackOnOverloadedLine(t *testing.T) {
	r := newRig(t, 2)
	cfg := PaperDir()
	cfg.QueueEntries = 0 // every stall becomes a NACK
	r.dir = NewDirectory(0, cfg, r.engine, r, func(int) int { return 0 })
	r.engine.Register(r.dir)
	r.memLat = 200 // keep the line in a transient a long time
	doneA, doneB := false, false
	r.l1s[0].AccessRetry(line, false, func(sim.Cycle) { doneA = true })
	r.engine.Run(5)
	r.l1s[1].AccessRetry(line, false, func(sim.Cycle) { doneB = true })
	r.run(20000)
	if !doneA || !doneB {
		t.Fatalf("doneA=%v doneB=%v; NACK retry must eventually succeed", doneA, doneB)
	}
	if r.l1s[1].Stats().Nacks == 0 {
		t.Fatal("the second requester should have been NACKed at least once")
	}
}

func TestL2CapacityEviction(t *testing.T) {
	r := newRig(t, 2)
	cfg := PaperDir()
	cfg.SliceLines = 4
	r.dir = NewDirectory(0, cfg, r.engine, r, func(int) int { return 0 })
	r.engine.Register(r.dir)
	// Touch 8 distinct lines in different L1 sets; the slice must evict.
	for i := 0; i < 8; i++ {
		if !r.access(1, cache.LineAddr(0x100+i), false) {
			t.Fatalf("access %d never completed", i)
		}
	}
	if r.dir.Stats().Evictions == 0 {
		t.Fatal("the 4-line slice must have evicted")
	}
	// An evicted owned line must have been recalled from its L1.
	if r.l1s[1].Stats().Invalidations == 0 {
		t.Fatal("evicting owned lines must invalidate the owner")
	}
}

func TestUpgradeRaceReinterpretedAsExclusive(t *testing.T) {
	// Two sharers upgrade simultaneously; the loser's Upg must be
	// treated as Req(Ex) and still complete with data.
	r := newRig(t, 3)
	r.access(1, line, true)
	r.access(2, line, false) // DS: {1, 2}
	done1, done2 := false, false
	r.l1s[1].AccessRetry(line, true, func(sim.Cycle) { done1 = true })
	r.l1s[2].AccessRetry(line, true, func(sim.Cycle) { done2 = true })
	r.run(10000)
	if !done1 || !done2 {
		t.Fatalf("done1=%v done2=%v; both racing upgrades must finish", done1, done2)
	}
	// Exactly one node ends as owner in M.
	m1 := r.l1s[1].HasLine(line) == cache.Modified
	m2 := r.l1s[2].HasLine(line) == cache.Modified
	if m1 == m2 {
		t.Fatalf("exactly one owner expected: node1=%v node2=%v", m1, m2)
	}
}

func TestConcurrentMixedTrafficInvariant(t *testing.T) {
	// Stress: random reads/writes from 4 nodes over a small line pool;
	// afterwards every line has at most one owner and the directory
	// agrees with the L1 states.
	r := newRig(t, 4)
	rng := sim.NewRNG(99)
	pending := 0
	for i := 0; i < 400; i++ {
		node := rng.Intn(4)
		addr := cache.LineAddr(0x200 + rng.Intn(8))
		write := rng.Bool(0.4)
		pending++
		r.l1s[node].AccessRetry(addr, write, func(sim.Cycle) { pending-- })
		if i%7 == 0 {
			r.run(300)
		}
	}
	r.run(60000)
	if pending != 0 {
		t.Fatalf("%d accesses never completed", pending)
	}
	for a := 0; a < 8; a++ {
		addr := cache.LineAddr(0x200 + a)
		owners, sharers := 0, 0
		for n := 0; n < 4; n++ {
			switch r.l1s[n].HasLine(addr) {
			case cache.Modified, cache.Exclusive:
				owners++
			case cache.Shared:
				sharers++
			}
		}
		if owners > 1 {
			t.Fatalf("line %#x has %d owners", uint64(addr), owners)
		}
		if owners == 1 && sharers > 0 {
			t.Fatalf("line %#x has an owner and %d sharers", uint64(addr), sharers)
		}
	}
}

func TestSyncManagerLockProtocol(t *testing.T) {
	r := newRig(t, 3)
	r.boolean = true
	d := r.dir
	d.Handle(Msg{Type: SyncReq, Op: SyncAcquire, SyncID: 5, From: 1, To: 0}, 0)
	if len(r.bits) != 1 || !r.bits[0].value {
		t.Fatalf("first acquire must win: %+v", r.bits)
	}
	d.Handle(Msg{Type: SyncReq, Op: SyncAcquire, SyncID: 5, From: 2, To: 0}, 1)
	if len(r.bits) != 2 || r.bits[1].value {
		t.Fatal("second acquire must fail")
	}
	d.Handle(Msg{Type: SyncReq, Op: SyncRelease, SyncID: 5, From: 1, To: 0}, 2)
	if len(r.bits) != 3 || r.bits[2].dst != 2 {
		t.Fatalf("release must push to the subscriber: %+v", r.bits)
	}
	if !d.Sync().LockHeld(5) == true && d.Sync().LockHeld(5) {
		t.Fatal("lock must be free after release")
	}
	d.Handle(Msg{Type: SyncReq, Op: SyncAcquire, SyncID: 5, From: 2, To: 0}, 3)
	if !r.bits[3].value {
		t.Fatal("re-acquire after release must win")
	}
}

func TestSyncManagerBarrier(t *testing.T) {
	r := newRig(t, 3)
	r.boolean = true
	d := r.dir
	d.Sync().SetBarrierTarget(0, 3)
	d.Handle(Msg{Type: SyncReq, Op: SyncArrive, SyncID: 0, From: 0, To: 0}, 0)
	d.Handle(Msg{Type: SyncReq, Op: SyncArrive, SyncID: 0, From: 1, To: 0}, 1)
	if len(r.bits) != 2 {
		t.Fatalf("early arrivers get wait replies: %+v", r.bits)
	}
	d.Handle(Msg{Type: SyncReq, Op: SyncArrive, SyncID: 0, From: 2, To: 0}, 2)
	// Release pushes to all three arrivers.
	releases := 0
	for _, b := range r.bits[2:] {
		if b.value {
			releases++
		}
	}
	if releases != 3 {
		t.Fatalf("barrier release must push to all 3, got %d (%+v)", releases, r.bits)
	}
}

func TestTransientStateNames(t *testing.T) {
	names := map[dirState]string{
		tDIDSD: "DI.DSD", tDIDMD: "DI.DMD", tDSDIA: "DS.DIA",
		tDSDMDA: "DS.DMDA", tDSDMA: "DS.DMA", tDMDSD: "DM.DSD",
		tDMDMD: "DM.DMD", tDMDID: "DM.DID", tDMDSA: "DM.DSA", tDMDMA: "DM.DMA",
	}
	for st, want := range names {
		if st.String() != want {
			t.Errorf("%d.String() = %s, want %s", st, st.String(), want)
		}
		if st.stable() {
			t.Errorf("%s should not be stable", want)
		}
	}
	for _, st := range []dirState{sDI, sDV, sDS, sDM} {
		if !st.stable() {
			t.Errorf("%s should be stable", st)
		}
	}
}

func TestBackpressureOutboxDrains(t *testing.T) {
	r := newRig(t, 2)
	r.blockNet = true
	r.l1s[1].AccessRetry(line, false, func(sim.Cycle) {})
	r.engine.Run(10)
	r.blockNet = false
	done := false
	r.l1s[1].OnInvalidate(line, func(sim.Cycle) {})
	r.run(5000)
	// The request held in the outbox must go out once the fabric opens.
	for _, m := range r.sent {
		if m.Type == ReqSh {
			done = true
		}
	}
	if !done {
		t.Fatal("outbox never drained after backpressure lifted")
	}
}

func TestMsgTypeStrings(t *testing.T) {
	for mt, want := range msgNames {
		if mt.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(mt), mt.String(), want)
		}
	}
	if MsgType(99).String() == "" {
		t.Error("unknown types need a fallback")
	}
}

func TestTagRoundTrip(t *testing.T) {
	for id := 0; id < 100; id += 7 {
		for _, barrier := range []bool{false, true} {
			for _, update := range []bool{false, true} {
				var tag uint64
				if barrier {
					tag = BarrierTag(id, update)
				} else {
					tag = LockTag(id, update)
				}
				gid, gb, gu := DecodeTag(tag)
				if gid != id || gb != barrier || gu != update {
					t.Fatalf("tag round trip failed: id=%d b=%v u=%v -> %d %v %v",
						id, barrier, update, gid, gb, gu)
				}
			}
		}
	}
}
