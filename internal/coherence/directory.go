package coherence

import (
	"fmt"
	"math/bits"
	"sort"

	"fsoi/internal/cache"
	"fsoi/internal/sim"
	"fsoi/internal/stats"
)

// dirState enumerates the Table 2 directory states. Transients are named
// previous.next with the superscript encoded: D = waiting for data,
// A = waiting for acks only, DA = waiting for acks then sending data.
type dirState int

const (
	sDI     dirState = iota // not present
	sDV                     // valid in L2, no sharers
	sDS                     // shared by one or more L1s
	sDM                     // owned (E or M) by one L1
	tDIDSD                  // DI.DSD: memory fetch for a shared-mode miss
	tDIDMD                  // DI.DMD: memory fetch for an exclusive miss
	tDSDIA                  // DS.DIA: invalidating sharers to evict from L2
	tDSDMDA                 // DS.DMDA: invalidating sharers, then Data(M)
	tDSDMA                  // DS.DMA: invalidating sharers, then ExcAck
	tDMDSD                  // DM.DSD: downgrading the owner for a reader
	tDMDMD                  // DM.DMD: invalidating the owner for a new owner
	tDMDID                  // DM.DID: invalidating the owner to evict from L2
	tDMDSA                  // DM.DSA: owner wrote back while being downgraded
	tDMDMA                  // DM.DMA: owner wrote back while being invalidated
)

var dirStateNames = [...]string{
	"DI", "DV", "DS", "DM",
	"DI.DSD", "DI.DMD", "DS.DIA", "DS.DMDA", "DS.DMA",
	"DM.DSD", "DM.DMD", "DM.DID", "DM.DSA", "DM.DMA",
}

func (s dirState) String() string { return dirStateNames[s] }

// stable reports whether the state accepts new requests directly.
func (s dirState) stable() bool { return s <= sDM }

// sharerSet is a growable bitset of node ids holding S copies. The
// zero value is empty. It replaces the former single-uint64 mask,
// whose 64-node capacity silently dropped sharers at larger systems
// (1<<n is 0 in Go for shifts >= 64): a node past 63 was never
// recorded, its upgrade requests were forever reinterpreted as
// exclusive reads, and 256-node runs wedged with cores ≡ k (mod 64)
// spinning on misses that could not complete.
type sharerSet []uint64

// has reports membership.
func (s sharerSet) has(n int) bool {
	w := n >> 6
	return w < len(s) && s[w]&(1<<uint(n&63)) != 0
}

// add returns the set with node n included, growing in place when the
// backing array allows.
func (s sharerSet) add(n int) sharerSet {
	w := n >> 6
	for len(s) <= w {
		s = append(s, 0)
	}
	s[w] |= 1 << uint(n&63)
	return s
}

// clearAll empties the set, retaining the backing array for reuse.
func (s sharerSet) clearAll() sharerSet {
	for i := range s {
		s[i] = 0
	}
	return s
}

// forEach visits members in ascending node order — the same
// deterministic order the old 0..63 scan used.
func (s sharerSet) forEach(fn func(n int)) {
	for w, word := range s {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			fn(w<<6 | b)
		}
	}
}

// low64 returns the first 64 bits, for the Sharers introspection API.
func (s sharerSet) low64() uint64 {
	if len(s) == 0 {
		return 0
	}
	return s[0]
}

// dirEntry is the directory's record for one line homed at this slice.
type dirEntry struct {
	addr      cache.LineAddr
	state     dirState
	sharers   sharerSet // nodes with S copies
	owner     int       // valid in sDM and DM transients
	dirty     bool      // L2 copy newer than memory
	requester int       // requester of the in-flight transaction
	wantExc   bool      // in DI transients: exclusive-mode fetch
	acks      int       // outstanding InvAcks
	pending   []Msg     // "z"-stalled requests, FIFO
	lru       uint64
}

// DirConfig sizes a directory/L2 slice.
type DirConfig struct {
	SliceLines   int // L2 capacity per slice in lines (64KB => 1024)
	QueueEntries int // stalled-request capacity before NACKing (64)
	DataCycles   int // L2 data access latency (15)
	TagCycles    int // tag/control latency for Inv/Dwg issue
}

// PaperDir returns the Table 3 slice configuration.
func PaperDir() DirConfig {
	return DirConfig{SliceLines: 1024, QueueEntries: 64, DataCycles: 15, TagCycles: 4}
}

// DirStats counts directory activity.
type DirStats struct {
	Requests   int64
	Nacks      int64
	MemReads   int64
	MemWrites  int64
	InvSent    int64
	DwgSent    int64
	Evictions  int64
	SyncOps    int64
	BitPushes  int64
	MsgsSent   *stats.CounterSet
	StallDepth stats.Summary
}

// Directory is one home slice: the directory controller plus its L2 data
// array (modeled by capacity and latency) and the §5.1 synchronization
// manager.
type Directory struct {
	id      int
	cfg     DirConfig
	engine  sim.Scheduler
	tr      Transport
	memNode func(home int) int // memory-controller attach point
	entries map[cache.LineAddr]*dirEntry
	lruTick uint64
	stalled int
	stats   DirStats
	outbox  []Msg
	sync    *syncManager
	// lastSend serializes delayed sends per (destination, line): the L2
	// pipeline must not let a short tag access (Inv, 4 cycles) overtake
	// an earlier data access (Data(M), 15 cycles) to the same node about
	// the same line, or the §4.4 ordering the network provides would be
	// broken before the message ever reaches it.
	lastSend map[[2]uint64]sim.Cycle
}

// NewDirectory builds the home slice for node id.
func NewDirectory(id int, cfg DirConfig, engine sim.Scheduler, tr Transport, memNode func(int) int) *Directory {
	d := &Directory{
		id:       id,
		cfg:      cfg,
		engine:   engine,
		tr:       tr,
		memNode:  memNode,
		entries:  make(map[cache.LineAddr]*dirEntry),
		lastSend: make(map[[2]uint64]sim.Cycle),
	}
	d.stats.MsgsSent = stats.NewCounterSet()
	d.sync = newSyncManager(d)
	return d
}

// Stats exposes the directory counters.
func (d *Directory) Stats() *DirStats { return &d.stats }

// Sync exposes the synchronization manager (system wiring).
func (d *Directory) Sync() *SyncAPI { return &SyncAPI{m: d.sync} }

// send queues a message with backpressure via the outbox.
func (d *Directory) send(m Msg) {
	d.stats.MsgsSent.Inc(m.Type.String(), 1)
	if !d.tr.Send(m) {
		d.outbox = append(d.outbox, m)
	}
}

// sendAfter sends m after an L2 access delay, preserving per-(dst, line)
// issue order across differing pipeline depths.
func (d *Directory) sendAfter(delay int, m Msg) {
	at := d.engine.Now() + sim.Cycle(delay)
	k := [2]uint64{uint64(m.To), uint64(m.Addr)}
	if prev, ok := d.lastSend[k]; ok && at <= prev {
		at = prev + 1
	}
	d.lastSend[k] = at
	d.engine.At(at, func(sim.Cycle) { d.send(m) })
}

// Tick drains the outbox.
func (d *Directory) Tick(now sim.Cycle) {
	for len(d.outbox) > 0 {
		if !d.tr.Send(d.outbox[0]) {
			return
		}
		d.outbox = d.outbox[1:]
	}
}

// entry fetches or creates the record for addr, evicting a victim when
// the slice is at capacity.
func (d *Directory) entry(addr cache.LineAddr, create bool) *dirEntry {
	e := d.entries[addr]
	if e == nil && create {
		e = &dirEntry{addr: addr, state: sDI, owner: -1}
		d.entries[addr] = e
		d.maybeEvict(addr)
	}
	if e != nil {
		d.lruTick++
		e.lru = d.lruTick
	}
	return e
}

// maybeEvict enforces slice capacity by starting the Repl flow on the
// least-recently-used stable entry (Table 2's Repl column).
func (d *Directory) maybeEvict(exclude cache.LineAddr) {
	if len(d.entries) <= d.cfg.SliceLines {
		return
	}
	// Walk candidates in address order: the LRU scan must not let map
	// iteration order pick among equal-lru entries, or two identical runs
	// can evict different lines.
	addrs := make([]cache.LineAddr, 0, len(d.entries))
	for a := range d.entries {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	var victim *dirEntry
	for _, a := range addrs {
		e := d.entries[a]
		if e.addr == exclude || !e.state.stable() || len(e.pending) > 0 {
			continue
		}
		if victim == nil || e.lru < victim.lru {
			victim = e
		}
	}
	if victim == nil {
		return // all transient: allow transient over-capacity
	}
	d.stats.Evictions++
	switch victim.state {
	case sDI:
		delete(d.entries, victim.addr)
	case sDV:
		d.evictFinish(victim)
	case sDS:
		victim.state = tDSDIA
		victim.acks = d.invalidateSharers(victim, -1)
		if victim.acks == 0 {
			d.evictFinish(victim)
		}
	case sDM:
		victim.state = tDMDID
		d.sendInvOwner(victim)
	}
}

// evictFinish completes an L2 eviction: dirty data goes to memory.
func (d *Directory) evictFinish(e *dirEntry) {
	if e.dirty {
		d.stats.MemWrites++
		d.send(Msg{Type: MemWrite, Addr: e.addr, From: d.id, To: d.memNode(d.id), HasData: true})
	}
	delete(d.entries, e.addr)
}

// invalidateSharers sends Inv to every sharer but except (pass -1 to
// spare none) and returns the count, emptying the set. Sharer
// invalidations are elidable: the network confirmation of each Inv
// serves as the ack when the transport supports it.
func (d *Directory) invalidateSharers(e *dirEntry, except int) int {
	count := 0
	elide := d.tr.ConfirmationElision()
	e.sharers.forEach(func(n int) {
		if n == except {
			return
		}
		count++
		d.stats.InvSent++
		d.sendAfter(d.cfg.TagCycles, Msg{
			Type: Inv, Addr: e.addr, From: d.id, To: n,
			Requester: e.requester, Value: elide,
		})
	})
	e.sharers = e.sharers.clearAll()
	return count
}

// sendInvOwner invalidates the current owner; owners always return a
// real InvAck (with data when dirty), so no elision flag is set.
func (d *Directory) sendInvOwner(e *dirEntry) {
	d.stats.InvSent++
	d.sendAfter(d.cfg.TagCycles, Msg{Type: Inv, Addr: e.addr, From: d.id, To: e.owner, Requester: e.requester})
}

// Handle processes one incoming message.
func (d *Directory) Handle(m Msg, now sim.Cycle) {
	if TraceAddr != 0 && m.Addr == TraceAddr {
		e := d.entries[m.Addr]
		st := "DI"
		if e != nil {
			st = e.state.String()
		}
		trace("@%d dir%d <- %v from %d (data=%v) state=%s", now, d.id, m.Type, m.From, m.HasData, st)
	}
	if m.Type == SyncReq {
		d.sync.handle(m, now)
		return
	}
	if m.Type == MemAck {
		d.onMemAck(m, now)
		return
	}
	e := d.entry(m.Addr, true)
	switch m.Type {
	case ReqSh, ReqEx, ReqUpg:
		d.stats.Requests++
		if !e.state.stable() {
			d.stall(e, m)
			return
		}
		d.handleRequest(e, m, now)
	case WriteBack:
		d.onWriteBack(e, m, now)
	case InvAck:
		d.onInvAck(e, m, now)
	case DwgAck:
		d.onDwgAck(e, m, now)
	default:
		panic("coherence: directory received " + m.Type.String())
	}
}

// OnInvConfirm is called by the system layer when the network confirms
// delivery of an elided-ack Inv: the confirmation is the ack (§5.1).
func (d *Directory) OnInvConfirm(addr cache.LineAddr, now sim.Cycle) {
	e := d.entries[addr]
	if e == nil {
		return
	}
	d.onInvAck(e, Msg{Type: InvAck, Addr: addr, To: d.id}, now)
}

// stall queues a request on a busy line ("z"), or NACKs when queues are
// full (fetch-deadlock avoidance).
func (d *Directory) stall(e *dirEntry, m Msg) {
	if d.stalled >= d.cfg.QueueEntries || len(e.pending) >= 8 {
		d.stats.Nacks++
		d.send(Msg{Type: Nack, Addr: m.Addr, From: d.id, To: m.From})
		return
	}
	d.stalled++
	e.pending = append(e.pending, m)
	d.stats.StallDepth.Add(float64(len(e.pending)))
}

// resume processes the oldest stalled request once the line is stable.
func (d *Directory) resume(e *dirEntry, now sim.Cycle) {
	for e.state.stable() && len(e.pending) > 0 {
		m := e.pending[0]
		e.pending = e.pending[1:]
		d.stalled--
		d.handleRequest(e, m, now)
	}
}

// handleRequest implements the stable-state request columns.
func (d *Directory) handleRequest(e *dirEntry, m Msg, now sim.Cycle) {
	req := m.Type
	// Upgrade from a node the directory no longer counts as a sharer is
	// reinterpreted as an exclusive read ("(Req(Ex))").
	if req == ReqUpg && (e.state != sDS || !e.sharers.has(m.From)) {
		req = ReqEx
	}
	switch e.state {
	case sDI:
		e.requester = m.From
		e.wantExc = req != ReqSh
		e.state = tDIDSD
		if e.wantExc {
			e.state = tDIDMD
		}
		d.stats.MemReads++
		d.send(Msg{Type: ReqMem, Addr: e.addr, From: d.id, To: d.memNode(d.id)})
	case sDV:
		if req == ReqSh {
			d.grant(e, m.From, DataE, now)
		} else {
			d.grant(e, m.From, DataM, now)
		}
	case sDS:
		switch req {
		case ReqSh:
			e.sharers = e.sharers.add(m.From)
			d.sendAfter(d.cfg.DataCycles, Msg{Type: DataS, Addr: e.addr, From: d.id, To: m.From, HasData: true})
		case ReqEx:
			e.requester = m.From
			e.acks = d.invalidateSharers(e, m.From)
			if e.acks == 0 {
				d.grant(e, m.From, DataM, now)
			} else {
				e.state = tDSDMDA
			}
		case ReqUpg:
			e.requester = m.From
			e.acks = d.invalidateSharers(e, m.From)
			if e.acks == 0 {
				d.grantUpgrade(e, m.From)
				d.resume(e, now)
			} else {
				e.state = tDSDMA
			}
		}
	case sDM:
		if m.From == e.owner {
			// The owner's request crossed with its own writeback; wait
			// for the writeback to land, then reprocess.
			d.stall(e, m)
			return
		}
		e.requester = m.From
		if req == ReqSh {
			e.state = tDMDSD
			d.stats.DwgSent++
			d.sendAfter(d.cfg.TagCycles, Msg{Type: Dwg, Addr: e.addr, From: d.id, To: e.owner, Requester: m.From})
		} else {
			e.state = tDMDMD
			d.sendInvOwner(e)
		}
	default:
		panic(fmt.Sprintf("coherence: request %v in state %v", m.Type, e.state))
	}
}

// grant sends a data reply making the requester the owner.
func (d *Directory) grant(e *dirEntry, to int, t MsgType, now sim.Cycle) {
	e.state = sDM
	e.owner = to
	e.sharers = e.sharers.clearAll()
	d.sendAfter(d.cfg.DataCycles, Msg{Type: t, Addr: e.addr, From: d.id, To: to, HasData: true})
	d.resume(e, now)
}

// grantUpgrade sends ExcAck making the requester the owner.
func (d *Directory) grantUpgrade(e *dirEntry, to int) {
	e.state = sDM
	e.owner = to
	e.sharers = e.sharers.clearAll()
	d.sendAfter(d.cfg.TagCycles, Msg{Type: ExcAck, Addr: e.addr, From: d.id, To: to})
}

// onWriteBack implements the WriteBack column.
func (d *Directory) onWriteBack(e *dirEntry, m Msg, now sim.Cycle) {
	if m.HasData {
		e.dirty = true
	}
	switch e.state {
	case sDM:
		// save/DV. A writeback from anyone but the current owner is a
		// relic of an earlier epoch and is absorbed as data only.
		if m.From != e.owner {
			return
		}
		e.state = sDV
		e.owner = -1
		d.resume(e, now)
	case tDMDSD:
		e.state = tDMDSA // save/DM.DSA; the crossing DwgAck completes it
	case tDMDMD:
		e.state = tDMDMA // save/DM.DMA; the crossing InvAck completes it
	case tDMDID:
		e.state = tDSDIA // save/DS.DIA; the crossing InvAck evicts
		e.acks = 1
	default:
		// Stale writeback after the protocol already moved on: absorb.
	}
}

// onInvAck implements the InvAck column.
func (d *Directory) onInvAck(e *dirEntry, m Msg, now sim.Cycle) {
	if m.HasData {
		e.dirty = true
	}
	switch e.state {
	case tDSDIA:
		e.acks--
		if e.acks <= 0 {
			d.evictFinish(e)
		}
	case tDSDMDA:
		e.acks--
		if e.acks <= 0 {
			d.grant(e, e.requester, DataM, now)
		}
	case tDSDMA:
		e.acks--
		if e.acks <= 0 {
			d.grantUpgrade(e, e.requester)
			d.resume(e, now)
		}
	case tDMDMD:
		// save & fwd/DM: the owner's dirty data goes to the new owner.
		d.grant(e, e.requester, DataM, now)
	case tDMDMA:
		d.grant(e, e.requester, DataM, now)
	case tDMDID:
		// save & evict/DI.
		d.evictFinish(e)
	default:
		// Ack from a stale sharer (silently evicted earlier): ignore.
	}
}

// onDwgAck implements the DwgAck column.
func (d *Directory) onDwgAck(e *dirEntry, m Msg, now sim.Cycle) {
	if m.HasData {
		e.dirty = true
	}
	switch e.state {
	case tDMDSD:
		// save & fwd: owner and requester share the line. (The table
		// prints /DM here; the L1 side has downgraded to S, so the
		// consistent directory state is DS — see DESIGN.md.)
		e.state = sDS
		e.sharers = e.sharers.clearAll().add(e.owner).add(e.requester)
		e.owner = -1
		d.sendAfter(d.cfg.DataCycles, Msg{Type: DataS, Addr: e.addr, From: d.id, To: e.requester, HasData: true})
		d.resume(e, now)
	case tDMDSA:
		// Data(E)/DM: the owner wrote back first, so the requester gets
		// an exclusive copy.
		d.grant(e, e.requester, DataE, now)
	default:
		// Stale downgrade ack: ignore.
	}
}

// onMemAck implements the MemAck column: "repl & fwd/DM".
func (d *Directory) onMemAck(m Msg, now sim.Cycle) {
	e := d.entries[m.Addr]
	if e == nil {
		return
	}
	switch e.state {
	case tDIDSD:
		d.grant(e, e.requester, DataE, now)
	case tDIDMD:
		d.grant(e, e.requester, DataM, now)
	default:
		// Memory data racing a faster resolution: keep the L2 copy.
		if e.state == sDI {
			e.state = sDV
			d.resume(e, now)
		}
	}
}

// DumpTransients lists entries stuck in transient states (diagnostics).
func (d *Directory) DumpTransients(prefix string) string {
	addrs := make([]cache.LineAddr, 0, len(d.entries))
	for a := range d.entries {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	out := ""
	for _, a := range addrs {
		e := d.entries[a]
		if !e.state.stable() || len(e.pending) > 0 {
			out += fmt.Sprintf("%s line %x: %v acks=%d pending=%d owner=%d sharers=%x req=%d\n",
				prefix, uint64(e.addr), e.state, e.acks, len(e.pending), e.owner, e.sharers, e.requester)
		}
	}
	return out
}

// EntryState reports the directory state for addr (tests).
func (d *Directory) EntryState(addr cache.LineAddr) string {
	if e := d.entries[addr]; e != nil {
		return e.state.String()
	}
	return "DI"
}

// Sharers reports the sharer bitset and owner for addr (tests).
func (d *Directory) Sharers(addr cache.LineAddr) (sharers uint64, owner int) {
	if e := d.entries[addr]; e != nil {
		return e.sharers.low64(), e.owner
	}
	return 0, -1
}
