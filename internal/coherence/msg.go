// Package coherence implements the paper's shared-memory substrate: a
// MESI directory protocol with the full Table 2 state machine — stable
// L1 states M/E/S/I with transients I.SD, I.MD and S.MA, and directory
// states DM/DS/DV/DI with the ten transients — including the race
// reinterpretations ("z" stalls, upgrade-to-exclusive conversion),
// NACK-based fetch-deadlock avoidance, and the §5.1 optimizations that
// exploit the FSOI confirmation channel (invalidation-ack elision and
// boolean subscription for synchronization variables).
package coherence

import (
	"fmt"

	"fsoi/internal/cache"
)

// TraceAddr, when non-zero, enables event tracing for one line through
// TraceFn; diagnostics only.
var (
	TraceAddr cache.LineAddr
	TraceFn   func(format string, args ...any)
)

func trace(format string, args ...any) {
	if TraceFn != nil {
		TraceFn(format, args...)
	}
}

// MsgType enumerates the protocol messages of Table 2.
type MsgType int

// Protocol messages. Req* flow L1->directory, Data*/ExcAck/Inv/Dwg/Nack
// flow directory->L1, the acks flow L1->directory, and ReqMem/MemWrite/
// MemAck flow between a directory and its memory controller.
const (
	ReqSh MsgType = iota
	ReqEx
	ReqUpg
	DataS
	DataE
	DataM
	ExcAck
	Inv
	Dwg
	InvAck
	DwgAck
	WriteBack
	Nack
	ReqMem
	MemWrite
	MemAck
	SyncReq  // synchronization operation (lock/barrier), §5.1
	SyncResp // synchronization reply carrying a boolean
)

var msgNames = map[MsgType]string{
	ReqSh: "Req(Sh)", ReqEx: "Req(Ex)", ReqUpg: "Req(Upg)",
	DataS: "Data(S)", DataE: "Data(E)", DataM: "Data(M)",
	ExcAck: "ExcAck", Inv: "Inv", Dwg: "Dwg",
	InvAck: "InvAck", DwgAck: "DwgAck", WriteBack: "WriteBack",
	Nack: "Nack", ReqMem: "Req(Mem)", MemWrite: "MemWrite", MemAck: "MemAck",
	SyncReq: "SyncReq", SyncResp: "SyncResp",
}

// String names the message type.
func (t MsgType) String() string {
	if s, ok := msgNames[t]; ok {
		return s
	}
	return fmt.Sprintf("MsgType(%d)", int(t))
}

// SyncOp selects the semantic of a SyncReq.
type SyncOp int

// Synchronization operations handled at the home directory.
const (
	SyncNone SyncOp = iota
	// SyncAcquire attempts a test-and-set lock acquire (ll/sc semantics).
	SyncAcquire
	// SyncRelease frees a lock.
	SyncRelease
	// SyncArrive signals barrier arrival; the reply reports release.
	SyncArrive
	// SyncWatch subscribes to updates of a boolean location.
	SyncWatch
)

// Msg is one protocol message. HasData distinguishes the 360-bit
// line-carrying variants (Data*, dirty InvAck/DwgAck/WriteBack, MemAck)
// from 72-bit control messages.
type Msg struct {
	Type    MsgType
	Addr    cache.LineAddr
	From    int // sending controller's node
	To      int // destination controller's node
	HasData bool

	// Requester is the original L1 requester for directory-internal
	// bookkeeping of forwarded transactions.
	Requester int

	// Sync fields (SyncReq/SyncResp only).
	Op     SyncOp
	SyncID int
	Value  bool
}

// IsRequest reports whether the message is an L1 request the directory
// may stall ("z") or NACK.
func (m Msg) IsRequest() bool {
	switch m.Type {
	case ReqSh, ReqEx, ReqUpg:
		return true
	}
	return false
}
