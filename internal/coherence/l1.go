package coherence

import (
	"fsoi/internal/cache"
	"fsoi/internal/sim"
	"fsoi/internal/stats"
)

// Transport carries protocol messages between controllers. The system
// layer implements it on top of a noc.Network and exposes the FSOI
// confirmation-channel capabilities when present.
type Transport interface {
	// Send queues a message; false means backpressure (the caller's
	// outbox retries next cycle).
	Send(m Msg) bool
	// ConfirmationElision reports whether clean invalidation acks can be
	// replaced by the network's hardware confirmation (§5.1).
	ConfirmationElision() bool
	// BooleanSubscription reports whether sync booleans can ride
	// reserved confirmation mini-cycles (§5.1).
	BooleanSubscription() bool
	// SendBit pushes one boolean over the confirmation lane.
	SendBit(from, to int, tag uint64, value bool)
}

// transKind is an L1 transient state from Table 2.
type transKind int

const (
	tISD transKind = iota // I.SD: awaiting shared-mode data
	tIMD                  // I.MD: awaiting exclusive data
	tSMA                  // S.MA: awaiting upgrade ack
)

func (t transKind) String() string {
	switch t {
	case tISD:
		return "I.SD"
	case tIMD:
		return "I.MD"
	default:
		return "S.MA"
	}
}

// waiter is a core access blocked on an outstanding transaction.
type waiter struct {
	write bool
	done  func(now sim.Cycle)
}

// l1Pending is the controller-side record of one transient line.
type l1Pending struct {
	state   transKind
	waiters []waiter
	issued  sim.Cycle // when the current request was sent (for stats)
}

// L1Config sizes an L1 controller.
type L1Config struct {
	Lines     int // capacity in 64B lines (paper-scaled 8KB => 128)
	Ways      int
	MSHRs     int
	HitCycles int // array access latency (2)
}

// PaperL1 returns the Table 3 configuration, scaled to 64-byte lines.
func PaperL1() L1Config {
	return L1Config{Lines: 128, Ways: 2, MSHRs: 8, HitCycles: 2}
}

// L1Stats counts controller activity.
type L1Stats struct {
	Hits, Misses  int64
	WriteMisses   int64
	Upgrades      int64
	Invalidations int64
	Downgrades    int64
	Writebacks    int64
	Nacks         int64
	ElidedAcks    int64
	MsgsSent      *stats.CounterSet
	MissLatency   stats.Summary    // request issue -> completion, cycles
	MissHist      *stats.Histogram // reply-latency distribution (Figure 5)
}

// L1 is one private L1 cache controller implementing the Table 2 rows.
type L1 struct {
	id     int
	cfg    L1Config
	engine sim.Scheduler
	rng    *sim.RNG
	array  *cache.Cache
	mshr   *cache.MSHR
	trans  map[cache.LineAddr]*l1Pending
	tr     Transport
	home   func(cache.LineAddr) int
	stats  L1Stats
	outbox []Msg
	watch  map[cache.LineAddr][]func(now sim.Cycle)
}

// NewL1 builds a controller for node id.
func NewL1(id int, cfg L1Config, engine sim.Scheduler, rng *sim.RNG, tr Transport, home func(cache.LineAddr) int) *L1 {
	l := &L1{
		id:     id,
		cfg:    cfg,
		engine: engine,
		rng:    rng.NewStream("l1"),
		array:  cache.New(cfg.Lines, cfg.Ways),
		mshr:   cache.NewMSHR(cfg.MSHRs),
		trans:  make(map[cache.LineAddr]*l1Pending),
		tr:     tr,
		home:   home,
		watch:  make(map[cache.LineAddr][]func(now sim.Cycle)),
	}
	l.stats.MsgsSent = stats.NewCounterSet()
	l.stats.MissHist = stats.NewHistogram(5, 60)
	return l
}

// Stats exposes the controller counters.
func (l *L1) Stats() *L1Stats { return &l.stats }

// OnInvalidate registers a one-shot callback fired the next time addr is
// invalidated; the cpu layer uses it to re-check spin variables and
// re-registers on every spin iteration.
func (l *L1) OnInvalidate(addr cache.LineAddr, fn func(now sim.Cycle)) {
	l.watch[addr] = append(l.watch[addr], fn)
}

func (l *L1) fireWatch(addr cache.LineAddr, now sim.Cycle) {
	fns := l.watch[addr]
	if len(fns) == 0 {
		return
	}
	delete(l.watch, addr)
	for _, fn := range fns {
		fn(now)
	}
}

// Outstanding reports in-flight transactions (used to drain at barriers).
func (l *L1) Outstanding() int { return len(l.trans) }

// send queues m, falling back to the outbox under backpressure.
func (l *L1) send(m Msg) {
	l.stats.MsgsSent.Inc(m.Type.String(), 1)
	if !l.tr.Send(m) {
		l.outbox = append(l.outbox, m)
	}
}

// Tick drains the outbox.
func (l *L1) Tick(now sim.Cycle) {
	for len(l.outbox) > 0 {
		if !l.tr.Send(l.outbox[0]) {
			return
		}
		l.outbox = l.outbox[1:]
	}
}

// Access performs a load (write=false) or store (write=true) on behalf of
// the core; done fires when the access commits. It returns false only
// when the miss could not even be registered (MSHR full) — the core
// retries next cycle.
func (l *L1) Access(addr cache.LineAddr, write bool, done func(now sim.Cycle)) bool {
	now := l.engine.Now()
	if p, busy := l.trans[addr]; busy {
		// "z": the line is mid-transaction; merge.
		p.waiters = append(p.waiters, waiter{write: write, done: done})
		return true
	}
	line := l.array.Lookup(addr)
	hit := line != nil && (line.State == cache.Modified || line.State == cache.Exclusive ||
		(!write && line.State == cache.Shared))
	if hit {
		if write {
			line.State = cache.Modified // E->M silent upgrade
		}
		l.stats.Hits++
		l.engine.At(now+sim.Cycle(l.cfg.HitCycles), func(at sim.Cycle) { done(at) })
		return true
	}
	if l.mshr.Full() {
		return false
	}
	l.stats.Misses++
	if write {
		l.stats.WriteMisses++
	}
	p := &l1Pending{issued: now, waiters: []waiter{{write: write, done: done}}}
	var req MsgType
	switch {
	case line != nil && line.State == cache.Shared && write:
		// S + write: upgrade.
		p.state = tSMA
		req = ReqUpg
		l.stats.Upgrades++
	case write:
		p.state = tIMD
		req = ReqEx
	default:
		p.state = tISD
		req = ReqSh
	}
	l.trans[addr] = p
	l.mshr.Allocate(addr, write)
	l.send(l.request(req, addr))
	return true
}

// request builds an L1->directory request message.
func (l *L1) request(t MsgType, addr cache.LineAddr) Msg {
	return Msg{Type: t, Addr: addr, From: l.id, To: l.home(addr), Requester: l.id}
}

// Handle processes one incoming protocol message (Table 2, L1 rows).
func (l *L1) Handle(m Msg, now sim.Cycle) {
	if TraceAddr != 0 && m.Addr == TraceAddr {
		st := l.HasLine(m.Addr).String()
		if p := l.trans[m.Addr]; p != nil {
			st += "/" + p.state.String()
		}
		trace("@%d l1-%d <- %v from %d (data=%v) state=%s", now, l.id, m.Type, m.From, m.HasData, st)
	}
	switch m.Type {
	case DataS, DataE, DataM:
		l.onData(m, now)
	case ExcAck:
		l.onExcAck(m, now)
	case Inv:
		l.onInv(m, now)
	case Dwg:
		l.onDwg(m, now)
	case Nack:
		l.onNack(m, now)
	case SyncResp:
		// Routed by the cpu layer through RegisterSyncHandler; ignore
		// here (the system layer delivers sync messages directly).
	default:
		panic("coherence: L1 received " + m.Type.String())
	}
}

// onData installs a fill ("save & read/S or E", "save & write/M").
func (l *L1) onData(m Msg, now sim.Cycle) {
	p := l.trans[m.Addr]
	if p == nil {
		// A stale fill after Nack-retry races; drop it.
		return
	}
	var st cache.State
	switch m.Type {
	case DataS:
		st = cache.Shared
	case DataE:
		st = cache.Exclusive
	case DataM:
		st = cache.Modified
	}
	l.install(m.Addr, st, p, now)
}

// install places the fill, performing victim eviction, then completes
// waiters. If every way in the set is mid-transaction the fill retries a
// few cycles later.
func (l *L1) install(addr cache.LineAddr, st cache.State, p *l1Pending, now sim.Cycle) {
	victim := l.array.Victim(addr)
	if _, busy := l.trans[victim.Addr]; busy && victim.State != cache.Invalid {
		l.engine.At(now+4, func(at sim.Cycle) { l.install(addr, st, p, at) })
		return
	}
	evicted := l.array.Install(addr, st)
	l.evict(evicted)
	l.complete(addr, p, now)
}

// evict issues the Table 2 "Repl" action for a displaced line: M lines
// write back their data, E lines announce a clean writeback, S lines
// leave silently (the directory's stale sharer bit is corrected by a
// later Inv finding state I).
func (l *L1) evict(old cache.Line) {
	switch old.State {
	case cache.Modified:
		l.stats.Writebacks++
		l.send(Msg{Type: WriteBack, Addr: old.Addr, From: l.id, To: l.home(old.Addr), HasData: true, Requester: l.id})
	case cache.Exclusive:
		l.stats.Writebacks++
		l.send(Msg{Type: WriteBack, Addr: old.Addr, From: l.id, To: l.home(old.Addr), Requester: l.id})
	}
}

// complete finishes a transaction: waiters run in order; a write waiter
// finding insufficient permission re-enters Access (starting an upgrade).
func (l *L1) complete(addr cache.LineAddr, p *l1Pending, now sim.Cycle) {
	delete(l.trans, addr)
	l.mshr.Release(addr)
	l.stats.MissLatency.Add(float64(now - p.issued))
	l.stats.MissHist.Add(int64(now - p.issued))
	line := l.array.Peek(addr)
	at := now + sim.Cycle(l.cfg.HitCycles)
	for _, w := range p.waiters {
		w := w
		switch {
		case !w.write:
			l.engine.At(at, func(c sim.Cycle) { w.done(c) })
		case line != nil && (line.State == cache.Exclusive || line.State == cache.Modified):
			line.State = cache.Modified
			l.engine.At(at, func(c sim.Cycle) { w.done(c) })
		default:
			// Write waiter on a shared fill: re-access to upgrade.
			l.engine.At(at, func(c sim.Cycle) { l.AccessRetry(addr, true, w.done) })
		}
	}
}

// AccessRetry is Access but retries every cycle while the MSHR is full.
func (l *L1) AccessRetry(addr cache.LineAddr, write bool, done func(now sim.Cycle)) {
	if !l.Access(addr, write, done) {
		l.engine.After(1, func(sim.Cycle) { l.AccessRetry(addr, write, done) })
	}
}

// onExcAck grants an upgrade ("do write/M").
func (l *L1) onExcAck(m Msg, now sim.Cycle) {
	p := l.trans[m.Addr]
	if p == nil || p.state != tSMA {
		return
	}
	if line := l.array.Peek(m.Addr); line != nil {
		line.State = cache.Modified
	}
	l.complete(m.Addr, p, now)
}

// onInv implements the Inv column: owners always answer with a real
// InvAck (carrying data when dirty); shared or absent holders elide the
// ack when the network confirms delivery in hardware.
func (l *L1) onInv(m Msg, now sim.Cycle) {
	l.stats.Invalidations++
	ack := Msg{Type: InvAck, Addr: m.Addr, From: l.id, To: m.From, Requester: m.Requester}
	st := l.array.Invalidate(m.Addr)
	switch st {
	case cache.Modified:
		ack.HasData = true
		l.send(ack)
	case cache.Exclusive:
		l.send(ack)
	default:
		if p := l.trans[m.Addr]; p != nil && p.state == tSMA {
			// S.MA + Inv: the upgrade lost a race; it now needs data
			// (I.MD). The directory reinterprets the queued upgrade.
			p.state = tIMD
		}
		// The directory marks sharer invalidations whose ack rides the
		// hardware confirmation (Msg.Value doubles as the elide flag).
		if m.Value && l.tr.ConfirmationElision() {
			l.stats.ElidedAcks++
		} else {
			l.send(ack)
		}
	}
	l.fireWatch(m.Addr, now)
}

// onDwg implements the Dwg column.
func (l *L1) onDwg(m Msg, now sim.Cycle) {
	l.stats.Downgrades++
	ack := Msg{Type: DwgAck, Addr: m.Addr, From: l.id, To: m.From, Requester: m.Requester}
	if line := l.array.Peek(m.Addr); line != nil {
		switch line.State {
		case cache.Modified:
			ack.HasData = true
			line.State = cache.Shared
		case cache.Exclusive:
			line.State = cache.Shared
		}
	}
	l.send(ack)
}

// onNack retries the original request after a short randomized delay
// (Table 2's Retry column; NACKs probabilistically avoid fetch deadlock).
func (l *L1) onNack(m Msg, now sim.Cycle) {
	p := l.trans[m.Addr]
	if p == nil {
		return
	}
	l.stats.Nacks++
	var req MsgType
	switch p.state {
	case tISD:
		req = ReqSh
	case tIMD:
		req = ReqEx
	default:
		req = ReqUpg
	}
	delay := sim.Cycle(8 + l.rng.Intn(24))
	l.engine.At(now+delay, func(sim.Cycle) {
		if l.trans[m.Addr] == p {
			l.send(l.request(req, m.Addr))
		}
	})
}

// HasLine reports the stable state of addr (Invalid when absent),
// used by tests and the cpu spin loops.
func (l *L1) HasLine(addr cache.LineAddr) cache.State {
	if line := l.array.Peek(addr); line != nil {
		return line.State
	}
	return cache.Invalid
}
