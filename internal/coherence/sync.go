package coherence

import "fsoi/internal/sim"

// Tag layout for confirmation-lane boolean pushes: the high bit selects
// lock vs barrier, bit 0 selects reply vs update, the middle bits carry
// the object id.
const (
	tagBarrierBit = uint64(1) << 62
	tagUpdateBit  = uint64(1)
)

// LockTag returns the confirmation-lane tag for lock id.
func LockTag(id int, update bool) uint64 {
	t := uint64(id) << 1
	if update {
		t |= tagUpdateBit
	}
	return t
}

// BarrierTag returns the confirmation-lane tag for barrier id.
func BarrierTag(id int, update bool) uint64 {
	return LockTag(id, update) | tagBarrierBit
}

// DecodeTag splits a confirmation-lane tag.
func DecodeTag(tag uint64) (id int, barrier, update bool) {
	barrier = tag&tagBarrierBit != 0
	update = tag&tagUpdateBit != 0
	id = int((tag &^ tagBarrierBit) >> 1)
	return id, barrier, update
}

// lockVar is directory-side lock state: the boolean "line" of §5.1 whose
// single-bit value rides reserved confirmation mini-cycles.
type lockVar struct {
	held   bool
	holder int
	subs   uint64 // subscriber bitset awaiting an update push
}

// barrierVar is directory-side barrier state.
type barrierVar struct {
	count  int
	target int
	subs   uint64
}

// syncManager implements the §5.1 ll/sc optimization at the home
// directory: store-conditional values travel inside requests, replies and
// updates travel on reserved confirmation mini-cycles, and subscribers
// form the update set of the single-bit "cache line".
type syncManager struct {
	d        *Directory
	locks    map[int]*lockVar
	barriers map[int]*barrierVar
}

func newSyncManager(d *Directory) *syncManager {
	return &syncManager{d: d, locks: make(map[int]*lockVar), barriers: make(map[int]*barrierVar)}
}

func (s *syncManager) lock(id int) *lockVar {
	l := s.locks[id]
	if l == nil {
		l = &lockVar{holder: -1}
		s.locks[id] = l
	}
	return l
}

func (s *syncManager) barrier(id int) *barrierVar {
	b := s.barriers[id]
	if b == nil {
		b = &barrierVar{target: 1}
		s.barriers[id] = b
	}
	return b
}

// reply sends a single-bit response: over the confirmation lane when the
// transport supports it, as a meta packet otherwise.
func (s *syncManager) reply(to int, tag uint64, value bool) {
	s.d.stats.BitPushes++
	if s.d.tr.BooleanSubscription() {
		s.d.tr.SendBit(s.d.id, to, tag, value)
		return
	}
	s.d.send(Msg{Type: SyncResp, From: s.d.id, To: to, Value: value, SyncID: int(tag)})
}

// handle processes one SyncReq.
func (s *syncManager) handle(m Msg, now sim.Cycle) {
	s.d.stats.SyncOps++
	switch m.Op {
	case SyncAcquire:
		l := s.lock(m.SyncID)
		if !l.held {
			l.held = true
			l.holder = m.From
			s.reply(m.From, LockTag(m.SyncID, false), true)
			return
		}
		l.subs |= 1 << uint(m.From)
		s.reply(m.From, LockTag(m.SyncID, false), false)
	case SyncRelease:
		l := s.lock(m.SyncID)
		l.held = false
		l.holder = -1
		subs := l.subs
		l.subs = 0
		s.push(subs, LockTag(m.SyncID, true), false)
	case SyncArrive:
		b := s.barrier(m.SyncID)
		b.count++
		b.subs |= 1 << uint(m.From)
		if b.count >= b.target {
			b.count = 0
			subs := b.subs
			b.subs = 0
			s.push(subs, BarrierTag(m.SyncID, true), true)
			return
		}
		s.reply(m.From, BarrierTag(m.SyncID, false), false)
	case SyncWatch:
		l := s.lock(m.SyncID)
		l.subs |= 1 << uint(m.From)
	default:
		panic("coherence: unknown sync op")
	}
}

// push sends an update to every subscriber; §5.1's update protocol on the
// subscribed single-bit word.
func (s *syncManager) push(subs uint64, tag uint64, value bool) {
	for n := 0; n < 64; n++ {
		if subs&(1<<uint(n)) != 0 {
			s.reply(n, tag, value)
		}
	}
}

// SyncAPI is the system-facing configuration surface of a directory's
// synchronization manager.
type SyncAPI struct{ m *syncManager }

// SetBarrierTarget declares the arrival count that releases barrier id.
func (a *SyncAPI) SetBarrierTarget(id, target int) {
	a.m.barrier(id).target = target
}

// LockHeld reports lock state (tests).
func (a *SyncAPI) LockHeld(id int) bool { return a.m.lock(id).held }
