package coherence

import (
	"testing"

	"fsoi/internal/cache"
	"fsoi/internal/sim"
)

// These tests force each Table 2 transient through its racy column —
// the crossing writebacks, stale sharers, and reinterpreted upgrades the
// transient states exist for.

// fill makes node own addr in M and quiesces.
func (r *rig) fill(node int, addr cache.LineAddr) {
	if !r.access(node, addr, true) {
		r.t.Fatalf("fill of %#x by %d failed", uint64(addr), node)
	}
}

// evict forces node to displace addr by touching two conflicting lines
// (the rig's L1 has 64 sets and 2 ways).
func (r *rig) evict(node int, addr cache.LineAddr) {
	r.access(node, addr+64, false)
	r.access(node, addr+128, false)
	r.run(3000)
}

func TestDMDSAWritebackCrossesDowngrade(t *testing.T) {
	// DM.DSD --WriteBack--> DM.DSA --DwgAck--> Data(E)/DM: the owner's
	// eviction crosses the directory's downgrade; the reader must still
	// get the line (exclusively, since the owner is gone).
	r := newRig(t, 3)
	r.fill(1, line)
	// Launch the reader and the eviction into the same window.
	done := false
	r.l1s[2].AccessRetry(line, false, func(sim.Cycle) { done = true })
	r.engine.Run(2) // the Req(Sh) is in flight; now evict the owner
	r.access(1, line+64, false)
	r.access(1, line+128, false)
	r.run(10000)
	if !done {
		t.Fatal("reader starved by the crossing writeback")
	}
	st := r.l1s[2].HasLine(line)
	if st != cache.Exclusive && st != cache.Shared {
		t.Fatalf("reader state = %v", st)
	}
	// The directory must have passed through the crossing states and
	// settled stable.
	if got := r.dir.EntryState(line); got != "DM" && got != "DS" && got != "DV" {
		t.Fatalf("directory wedged in %s", got)
	}
}

func TestDMDMAWritebackCrossesInvalidate(t *testing.T) {
	// DM.DMD --WriteBack--> DM.DMA --InvAck--> Data(M)/DM.
	r := newRig(t, 3)
	r.fill(1, line)
	done := false
	r.l1s[2].AccessRetry(line, true, func(sim.Cycle) { done = true })
	r.engine.Run(2)
	r.access(1, line+64, false)
	r.access(1, line+128, false)
	r.run(10000)
	if !done {
		t.Fatal("writer starved by the crossing writeback")
	}
	if st := r.l1s[2].HasLine(line); st != cache.Modified {
		t.Fatalf("writer state = %v, want M", st)
	}
	if _, owner := r.dir.Sharers(line); owner != 2 {
		t.Fatalf("owner = %d, want 2", owner)
	}
}

func TestStaleSharerInvalidation(t *testing.T) {
	// A sharer silently evicts; a later upgrade still invalidates it;
	// the stale node answers InvAck from I without corruption.
	r := newRig(t, 4)
	r.fill(1, line)
	r.access(2, line, false)
	r.access(3, line, false) // DS {1,2,3}
	// Node 3 silently drops its S copy.
	r.evict(3, line)
	if st := r.l1s[3].HasLine(line); st != cache.Invalid {
		t.Fatalf("node 3 still has %v", st)
	}
	// Node 2 upgrades; the directory Invs stale node 3 too.
	if !r.access(2, line, true) {
		t.Fatal("upgrade with a stale sharer never completed")
	}
	if st := r.l1s[2].HasLine(line); st != cache.Modified {
		t.Fatalf("upgrader = %v", st)
	}
}

func TestISDInvalidationRace(t *testing.T) {
	// I.SD receives Inv: with the §4.4 per-line ordering the Inv can
	// only be for an *older* epoch (stale-sharer cleanup); the fill must
	// still complete and the InvAck must not corrupt the directory.
	r := newRig(t, 4)
	r.fill(1, line)
	r.access(2, line, false) // DS {1,2}
	r.evict(2, line)         // 2 drops silently; dir still lists it
	// Now 2 re-reads while 1 upgrades: the Inv to stale-sharer 2 races
	// 2's refill.
	doneRead, doneWrite := false, false
	r.l1s[2].AccessRetry(line, false, func(sim.Cycle) { doneRead = true })
	r.l1s[1].AccessRetry(line, true, func(sim.Cycle) { doneWrite = true })
	r.run(15000)
	if !doneRead || !doneWrite {
		t.Fatalf("read=%v write=%v", doneRead, doneWrite)
	}
	// Exactly one owner at the end, or reader+owner settled shared.
	owners := 0
	for n := 1; n <= 2; n++ {
		if st := r.l1s[n].HasLine(line); st == cache.Modified || st == cache.Exclusive {
			owners++
		}
	}
	if owners > 1 {
		t.Fatal("double ownership after the I.SD race")
	}
}

func TestSMAInvalidationBecomesIMD(t *testing.T) {
	// S.MA + Inv -> I.MD: an upgrader that loses the race is converted
	// to a full exclusive miss and must receive Data(M), not ExcAck.
	r := newRig(t, 4)
	r.fill(1, line)
	r.access(2, line, false)
	r.access(3, line, false) // DS {1,2,3}
	done2, done3 := false, false
	r.l1s[2].AccessRetry(line, true, func(sim.Cycle) { done2 = true })
	r.l1s[3].AccessRetry(line, true, func(sim.Cycle) { done3 = true })
	r.run(15000)
	if !done2 || !done3 {
		t.Fatalf("done2=%v done3=%v", done2, done3)
	}
	// The loser must have ended with a data grant: look for a Data(M)
	// delivered to whichever node upgraded second.
	dataM := 0
	for _, m := range r.sent {
		if m.Type == DataM {
			dataM++
		}
	}
	if dataM == 0 {
		t.Fatal("the losing upgrader must be served with Data(M)")
	}
}

func TestDVEvictionWritesDirtyToMemory(t *testing.T) {
	// M writeback -> DV(dirty); evicting the DV line must reach memory.
	r := newRig(t, 2)
	cfg := PaperDir()
	cfg.SliceLines = 2
	r.dir = NewDirectory(0, cfg, r.engine, r, func(int) int { return 0 })
	r.engine.Register(r.dir)
	r.fill(1, line)
	r.evict(1, line) // WriteBack -> DV dirty
	// Touch more lines to push the slice over capacity.
	for i := 0; i < 4; i++ {
		r.access(1, cache.LineAddr(0x300+i), false)
	}
	r.run(5000)
	memWrites := false
	for _, m := range r.sent {
		if m.Type == MemWrite {
			memWrites = true
		}
	}
	if !memWrites {
		t.Fatal("evicting dirty DV lines must write memory")
	}
}

func TestDMDIDEvictionRecallsOwner(t *testing.T) {
	// L2 eviction of an owned line: DM --Repl--> DM.DID --InvAck(D)-->
	// evict, with the dirty data flushed to memory.
	r := newRig(t, 2)
	cfg := PaperDir()
	cfg.SliceLines = 1
	r.dir = NewDirectory(0, cfg, r.engine, r, func(int) int { return 0 })
	r.engine.Register(r.dir)
	r.fill(1, 0x500)
	r.fill(1, 0x501) // evicts 0x500 from the 1-line slice
	r.run(5000)
	if st := r.l1s[1].HasLine(0x500); st != cache.Invalid {
		t.Fatalf("owner still holds %v after L2 eviction", st)
	}
	saw := false
	for _, m := range r.sent {
		if m.Type == MemWrite && m.Addr == 0x500 {
			saw = true
		}
	}
	if !saw {
		t.Fatal("the recalled dirty line must reach memory")
	}
}

func TestOrderingInvariantHolds(t *testing.T) {
	// Property: under random traffic, per (src, dst, line) delivery
	// order equals send order — the §4.4 invariant the rig provides and
	// the protocol requires. Verified by instrumenting the rig.
	r := newRig(t, 4)
	type ev struct {
		k   [3]uint64
		seq int
	}
	seq := 0
	sendSeq := map[[3]uint64][]int{}
	// Wrap: record send order via the rig's sent slice before/after.
	rng := sim.NewRNG(123)
	for i := 0; i < 200; i++ {
		node := rng.Intn(4)
		addr := cache.LineAddr(0x600 + rng.Intn(4))
		r.l1s[node].AccessRetry(addr, rng.Bool(0.5), func(sim.Cycle) {})
		if i%5 == 0 {
			r.run(200)
		}
		seq++
	}
	r.run(40000)
	_ = sendSeq
	// The run completing without protocol panics or wedges is the
	// property; verify quiescence.
	for a := 0; a < 4; a++ {
		if r.l1s[a].Outstanding() != 0 {
			t.Fatalf("node %d wedged with %d outstanding", a, r.l1s[a].Outstanding())
		}
	}
}

func TestStallDepthBounded(t *testing.T) {
	// Many requesters on one line: pending queues stay within the NACK
	// bound.
	r := newRig(t, 4)
	r.memLat = 100
	for n := 0; n < 4; n++ {
		for i := 0; i < 4; i++ {
			r.l1s[n].AccessRetry(line, i%2 == 0, func(sim.Cycle) {})
		}
	}
	r.run(30000)
	if r.dir.Stats().StallDepth.Max() > 8 {
		t.Fatalf("stall depth reached %.0f, bound is 8", r.dir.Stats().StallDepth.Max())
	}
}

func TestDirectoryDumpTransients(t *testing.T) {
	r := newRig(t, 2)
	r.memLat = 500
	r.l1s[1].AccessRetry(line, false, func(sim.Cycle) {})
	r.engine.Run(10)
	dump := r.dir.DumpTransients("dir")
	if dump == "" {
		t.Fatal("an in-flight memory fetch must appear in the dump")
	}
	r.run(5000)
	if r.dir.DumpTransients("dir") != "" {
		t.Fatal("quiesced directory must dump nothing")
	}
}
