package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
}

func TestDoZeroJobs(t *testing.T) {
	called := false
	Do(0, 4, func(int) { called = true })
	Do(-2, 4, func(int) { called = true })
	if called {
		t.Fatal("fn called with no jobs")
	}
}

func TestDoSerialRunsInOrder(t *testing.T) {
	var order []int
	Do(6, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order = %v", order)
		}
	}
	if len(order) != 6 {
		t.Fatalf("ran %d jobs, want 6", len(order))
	}
}

func TestDoWorkersExceedJobs(t *testing.T) {
	var ran [3]int32
	Do(3, 64, func(i int) { atomic.AddInt32(&ran[i], 1) })
	for i, n := range ran {
		if n != 1 {
			t.Fatalf("job %d ran %d times", i, n)
		}
	}
}

func TestMapEveryJobOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 32} {
		out := Map(100, workers, func(i int) int { return i * i })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestMapMergeOrderUnderReverseCompletion forces workers to finish in
// the exact reverse of submission order — job i blocks until job i+1
// has completed — and checks the merged results are still in submission
// order. This is the property the whole design rests on: completion
// order must be invisible in the output.
func TestMapMergeOrderUnderReverseCompletion(t *testing.T) {
	const jobs = 8
	done := make([]chan struct{}, jobs)
	for i := range done {
		done[i] = make(chan struct{})
	}
	out := Map(jobs, jobs, func(i int) int {
		defer close(done[i])
		if i < jobs-1 {
			<-done[i+1] // stall until the next-higher job is done
		}
		return i * 10
	})
	for i, v := range out {
		if v != i*10 {
			t.Fatalf("out[%d] = %d under reverse completion, want %d", i, v, i*10)
		}
	}
}

func TestDoPanicLowestJobWins(t *testing.T) {
	const jobs = 6
	// Barrier: every job reaches the panic point before any panics, so
	// both panicking jobs (2 and 5) definitely record, and the pool must
	// pick the lowest index rather than the first to arrive.
	var gate sync.WaitGroup
	gate.Add(jobs)
	defer func() {
		v := recover()
		pe, ok := v.(*PanicError)
		if !ok {
			t.Fatalf("recovered %T (%v), want *PanicError", v, v)
		}
		if pe.Job != 2 {
			t.Fatalf("PanicError.Job = %d, want 2 (lowest panicking index)", pe.Job)
		}
		if pe.Value != "boom-2" {
			t.Fatalf("PanicError.Value = %v, want boom-2", pe.Value)
		}
		if pe.Error() == "" {
			t.Fatal("empty Error() string")
		}
	}()
	Do(jobs, jobs, func(i int) {
		gate.Done()
		gate.Wait()
		if i == 2 {
			panic("boom-2")
		}
		if i == 5 {
			panic("boom-5")
		}
	})
	t.Fatal("Do returned despite worker panics")
}

func TestDoSerialPanicUnwrapped(t *testing.T) {
	defer func() {
		if v := recover(); v != "raw" {
			t.Fatalf("serial panic = %v, want the raw value", v)
		}
	}()
	Do(3, 1, func(i int) {
		if i == 1 {
			panic("raw")
		}
	})
}

func TestDoAbandonsAfterPanic(t *testing.T) {
	// With one effective dispenser, a panic in an early job must stop
	// later jobs from being handed out (they would be wasted work behind
	// a doomed merge). Run many jobs on 2 workers with job 0 panicking
	// immediately; the count of executed jobs should stay well short.
	var ran int32
	func() {
		defer func() { recover() }()
		Do(1000, 2, func(i int) {
			if i == 0 {
				panic("early")
			}
			atomic.AddInt32(&ran, 1)
		})
	}()
	if n := atomic.LoadInt32(&ran); n >= 999 {
		t.Fatalf("all %d remaining jobs ran after the panic; dispenser did not abandon", n)
	}
}
