// Package parallel is the repository's only sanctioned host
// concurrency: a bounded worker pool that fans independent jobs out to
// goroutines and merges their results **by submission index, never by
// completion order**, so any output assembled from the results is
// byte-identical to a serial run at every worker count.
//
// The contract callers must uphold is share-nothing: each job owns its
// own sim.Engine, its own sim.NewRNG seed tree, and writes only to its
// own result slot. The pool adds no synchronization around job state —
// it cannot make dependent jobs safe, only independent jobs fast.
//
// Every other internal package is forbidden (and lint-enforced:
// fsoilint's detsource analyzer) from using goroutines, select, or the
// sync primitives; concurrency is architecturally confined to this one
// audited package.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
)

// Workers resolves a worker-count setting: values <= 0 mean "one per
// available CPU" (GOMAXPROCS), anything else is taken literally.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// PanicError carries a worker panic back to the caller. When several
// jobs panic in one Do call, the one with the lowest job index wins, so
// the propagated failure is deterministic at any worker count.
type PanicError struct {
	Job   int // submission index of the panicking job
	Value any // the value passed to panic
}

// Error renders the panic for logs and test output.
func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: job %d panicked: %v", e.Job, e.Value)
}

// Do runs fn(0), fn(1), ..., fn(jobs-1) on at most workers goroutines
// and returns when every job has finished. With workers <= 1 (or fewer
// than two jobs) it degenerates to a plain serial loop on the calling
// goroutine — no goroutines are launched, so -j 1 is not merely
// equivalent to serial execution, it IS serial execution.
//
// Jobs are handed out in submission order. If any job panics, Do
// panics with a *PanicError for the lowest panicking job index after
// all workers have drained; serial mode propagates the original panic
// value unwrapped at the point it occurs, like the loop it replaces.
func Do(jobs, workers int, fn func(job int)) {
	if jobs <= 0 {
		return
	}
	if workers > jobs {
		workers = jobs
	}
	if workers <= 1 {
		for i := 0; i < jobs; i++ {
			fn(i)
		}
		return
	}

	var (
		mu      sync.Mutex
		next    int
		failure *PanicError
	)
	// take hands out the next job index, or -1 when none remain. After
	// a panic has been recorded the remaining jobs are abandoned: the
	// caller is about to unwind, and running more work behind a doomed
	// merge would only waste cycles.
	take := func() int {
		mu.Lock()
		defer mu.Unlock()
		if failure != nil || next >= jobs {
			return -1
		}
		i := next
		next++
		return i
	}
	record := func(job int, v any) {
		mu.Lock()
		defer mu.Unlock()
		if failure == nil || job < failure.Job {
			failure = &PanicError{Job: job, Value: v}
		}
	}
	runOne := func(job int) {
		defer func() {
			if v := recover(); v != nil {
				record(job, v)
			}
		}()
		fn(job)
	}

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				job := take()
				if job < 0 {
					return
				}
				runOne(job)
			}
		}()
	}
	wg.Wait()
	if failure != nil {
		panic(failure)
	}
}

// Map runs fn over every job index and returns the results in
// submission order: out[i] == fn(i) regardless of which worker computed
// it or when it completed.
func Map[T any](jobs, workers int, fn func(job int) T) []T {
	out := make([]T, jobs)
	Do(jobs, workers, func(i int) {
		out[i] = fn(i)
	})
	return out
}
