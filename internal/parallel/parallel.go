// Package parallel is the repository's only sanctioned host
// concurrency: a bounded worker pool that fans independent jobs out to
// goroutines and merges their results **by submission index, never by
// completion order**, so any output assembled from the results is
// byte-identical to a serial run at every worker count.
//
// The contract callers must uphold is share-nothing: each job owns its
// own sim.Engine, its own sim.NewRNG seed tree, and writes only to its
// own result slot. The pool adds no synchronization around job state —
// it cannot make dependent jobs safe, only independent jobs fast.
//
// Every other internal package is forbidden (and lint-enforced:
// fsoilint's detsource analyzer) from using goroutines, select, or the
// sync primitives; concurrency is architecturally confined to this one
// audited package.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
)

// Workers resolves a worker-count setting: values <= 0 mean "one per
// available CPU" (GOMAXPROCS), anything else is taken literally.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// PanicError carries a worker panic back to the caller. When several
// jobs panic in one Do call, the one with the lowest job index wins, so
// the propagated failure is deterministic at any worker count.
type PanicError struct {
	Job   int // submission index of the panicking job
	Value any // the value passed to panic
}

// Error renders the panic for logs and test output.
func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: job %d panicked: %v", e.Job, e.Value)
}

// Do runs fn(0), fn(1), ..., fn(jobs-1) on at most workers goroutines
// and returns when every job has finished. With workers <= 1 (or fewer
// than two jobs) it degenerates to a plain serial loop on the calling
// goroutine — no goroutines are launched, so -j 1 is not merely
// equivalent to serial execution, it IS serial execution.
//
// Jobs are handed out in submission order. If any job panics, Do
// panics with a *PanicError for the lowest panicking job index after
// all workers have drained; serial mode propagates the original panic
// value unwrapped at the point it occurs, like the loop it replaces.
func Do(jobs, workers int, fn func(job int)) {
	if jobs <= 0 {
		return
	}
	if workers > jobs {
		workers = jobs
	}
	if workers <= 1 {
		for i := 0; i < jobs; i++ {
			fn(i)
		}
		return
	}

	var (
		mu      sync.Mutex
		next    int
		failure *PanicError
	)
	// take hands out the next job index, or -1 when none remain. After
	// a panic has been recorded the remaining jobs are abandoned: the
	// caller is about to unwind, and running more work behind a doomed
	// merge would only waste cycles.
	take := func() int {
		mu.Lock()
		defer mu.Unlock()
		if failure != nil || next >= jobs {
			return -1
		}
		i := next
		next++
		return i
	}
	record := func(job int, v any) {
		mu.Lock()
		defer mu.Unlock()
		if failure == nil || job < failure.Job {
			failure = &PanicError{Job: job, Value: v}
		}
	}
	runOne := func(job int) {
		defer func() {
			if v := recover(); v != nil {
				record(job, v)
			}
		}()
		fn(job)
	}

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				job := take()
				if job < 0 {
					return
				}
				runOne(job)
			}
		}()
	}
	wg.Wait()
	if failure != nil {
		panic(failure)
	}
}

// Map runs fn over every job index and returns the results in
// submission order: out[i] == fn(i) regardless of which worker computed
// it or when it completed.
func Map[T any](jobs, workers int, fn func(job int) T) []T {
	out := make([]T, jobs)
	Do(jobs, workers, func(i int) {
		out[i] = fn(i)
	})
	return out
}

// Pool is a persistent worker pool for callers that fan out the same
// shape of work many times in a row — the sharded simulation engine's
// epoch barrier, which parallelizes shards thousands of times per run.
// Do spawns and joins its workers per call, which is fine across
// experiment jobs but far too heavy inside a simulation's epoch loop;
// Pool keeps its goroutines parked on channels between Run calls.
//
// The determinism contract is Do's: jobs are independent, results merge
// by index in the caller, and NewPool(workers <= 1) runs everything
// serially on the calling goroutine — no goroutines exist at all, so a
// one-worker pool IS serial execution, not an emulation of it.
//
// A Pool is owned by one goroutine: Run calls must not overlap.
type Pool struct {
	workers []chan *poolRun
	done    chan struct{}
}

// poolRun is the shared state of one Run call: a handout counter and
// the lowest-index panic, both guarded like Do's.
type poolRun struct {
	mu      sync.Mutex
	next    int
	jobs    int
	fn      func(job int)
	failure *PanicError
}

// take hands out the next job index, or -1 when none remain (or a
// panic has been recorded and the run is doomed).
func (r *poolRun) take() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.failure != nil || r.next >= r.jobs {
		return -1
	}
	i := r.next
	r.next++
	return i
}

// runOne executes one job, converting a panic into the run's failure.
func (r *poolRun) runOne(job int) {
	defer func() {
		if v := recover(); v != nil {
			r.mu.Lock()
			defer r.mu.Unlock()
			if r.failure == nil || job < r.failure.Job {
				r.failure = &PanicError{Job: job, Value: v}
			}
		}
	}()
	r.fn(job)
}

// NewPool parks `workers` goroutines waiting for Run calls. Values <= 1
// return a serial pool with no goroutines. Callers release the
// goroutines with Close when the pool's owner is done.
func NewPool(workers int) *Pool {
	p := &Pool{}
	if workers <= 1 {
		return p
	}
	p.done = make(chan struct{})
	p.workers = make([]chan *poolRun, workers)
	for i := range p.workers {
		c := make(chan *poolRun)
		p.workers[i] = c
		go func() {
			for r := range c {
				for {
					job := r.take()
					if job < 0 {
						break
					}
					r.runOne(job)
				}
				p.done <- struct{}{}
			}
		}()
	}
	return p
}

// Run executes fn(0)..fn(jobs-1) across the pool's workers and returns
// when all have finished — a barrier, exactly like Do, but without
// spawning. A serial pool (or a single job) runs on the calling
// goroutine. Panics propagate as *PanicError for the lowest panicking
// job index; serial mode propagates the original value unwrapped.
func (p *Pool) Run(jobs int, fn func(job int)) {
	if jobs <= 0 {
		return
	}
	if len(p.workers) == 0 || jobs == 1 {
		for i := 0; i < jobs; i++ {
			fn(i)
		}
		return
	}
	r := &poolRun{jobs: jobs, fn: fn}
	for _, c := range p.workers {
		c <- r
	}
	for range p.workers {
		<-p.done
	}
	if r.failure != nil {
		panic(r.failure)
	}
}

// Workers reports the pool's parallelism (1 for a serial pool).
func (p *Pool) Workers() int {
	if len(p.workers) == 0 {
		return 1
	}
	return len(p.workers)
}

// Close releases the pool's goroutines. The pool must not be used
// afterwards. Closing a serial pool is a no-op.
func (p *Pool) Close() {
	for _, c := range p.workers {
		close(c)
	}
	p.workers = nil
}
