package analytic

import (
	"math"
	"testing"
	"testing/quick"

	"fsoi/internal/sim"
)

func TestCollisionFormulaMatchesMonteCarlo(t *testing.T) {
	rng := sim.NewRNG(1)
	for _, r := range []int{1, 2, 3} {
		for _, p := range []float64{0.05, 0.15, 0.33} {
			c := CollisionParams{N: 16, R: r, P: p}
			mcPkt, mcNode := MonteCarloCollision(c, rng, 40000, 1)
			anPkt := PacketCollisionProbability(c)
			anNode := NodeCollisionProbability(c)
			if math.Abs(mcPkt-anPkt) > 0.02 {
				t.Errorf("R=%d p=%.2f: per-packet analytic %.4f vs MC %.4f", r, p, anPkt, mcPkt)
			}
			if math.Abs(mcNode-anNode) > 0.02 {
				t.Errorf("R=%d p=%.2f: per-node analytic %.4f vs MC %.4f", r, p, anNode, mcNode)
			}
		}
	}
}

func TestCollisionInverseInReceivers(t *testing.T) {
	// §4.3.2: collision frequency is roughly inversely proportional to
	// the number of receivers.
	p1 := PacketCollisionProbability(CollisionParams{N: 16, R: 1, P: 0.1})
	p2 := PacketCollisionProbability(CollisionParams{N: 16, R: 2, P: 0.1})
	p4 := PacketCollisionProbability(CollisionParams{N: 16, R: 4, P: 0.1})
	if ratio := p1 / p2; ratio < 1.7 || ratio > 2.3 {
		t.Errorf("R=1/R=2 ratio %.2f, want ~2", ratio)
	}
	if ratio := p1 / p4; ratio < 3.2 || ratio > 5.0 {
		t.Errorf("R=1/R=4 ratio %.2f, want ~4", ratio)
	}
}

func TestCollisionWeakDependenceOnN(t *testing.T) {
	// Figure 3 caption: the result depends only weakly on N.
	a := PacketCollisionProbability(CollisionParams{N: 16, R: 2, P: 0.2})
	b := PacketCollisionProbability(CollisionParams{N: 64, R: 2, P: 0.2})
	if math.Abs(a-b)/a > 0.15 {
		t.Errorf("N=16 %.4f vs N=64 %.4f differ too much", a, b)
	}
}

func TestCollisionMonotonicInP(t *testing.T) {
	err := quick.Check(func(raw uint8) bool {
		p := float64(raw%30)/100 + 0.01
		lo := PacketCollisionProbability(CollisionParams{N: 16, R: 2, P: p})
		hi := PacketCollisionProbability(CollisionParams{N: 16, R: 2, P: p + 0.02})
		return hi >= lo
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollisionProbabilityBounds(t *testing.T) {
	err := quick.Check(func(n, r, praw uint8) bool {
		c := CollisionParams{N: int(n%62) + 2, R: int(r%4) + 1, P: float64(praw) / 256}
		pp := PacketCollisionProbability(c)
		pn := NodeCollisionProbability(c)
		return pp >= 0 && pp <= 1 && pn >= 0 && pn <= 1
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestBandwidthOptimumNearPaper(t *testing.T) {
	m := PaperBandwidthModel()
	bm := m.OptimalMetaShare()
	if math.Abs(bm-0.285) > 0.01 {
		t.Fatalf("optimal meta share = %.4f, paper reports 0.285", bm)
	}
}

func TestBandwidthLaneAllocation(t *testing.T) {
	m := PaperBandwidthModel()
	meta, data := m.LaneAllocation(9)
	if meta != 3 || data != 6 {
		t.Fatalf("allocation = %d/%d, want 3/6", meta, data)
	}
}

func TestBandwidthLatencyConvex(t *testing.T) {
	m := PaperBandwidthModel()
	opt := m.OptimalMetaShare()
	for _, d := range []float64{0.05, 0.1, 0.2} {
		if m.Latency(opt) > m.Latency(opt+d) || m.Latency(opt) > m.Latency(opt-d) {
			t.Fatalf("latency not minimal at claimed optimum (d=%.2f)", d)
		}
	}
}

func TestBandwidthLatencyInfiniteAtEdges(t *testing.T) {
	m := PaperBandwidthModel()
	if !math.IsInf(m.Latency(0), 1) || !math.IsInf(m.Latency(1), 1) {
		t.Fatal("edge shares should cost infinite latency")
	}
}

func TestBackoffPaperPointBeatsClassicDoubling(t *testing.T) {
	rng := sim.NewRNG(5)
	paper := PaperBackoff(0.01)
	classic := paper
	classic.B = 2
	dPaper := paper.MeanResolutionDelay(rng.NewStream("a"), 30000, 1)
	dClassic := classic.MeanResolutionDelay(rng.NewStream("b"), 30000, 1)
	if dPaper >= dClassic {
		t.Fatalf("B=1.1 delay %.2f should beat B=2 delay %.2f in the common case", dPaper, dClassic)
	}
}

func TestBackoffDelayReasonableRange(t *testing.T) {
	// The paper computes 7.26 cycles and simulates ~7.4 for W=2.7 B=1.1;
	// our slot-level model should land in the same neighbourhood.
	rng := sim.NewRNG(7)
	d := PaperBackoff(0.01).MeanResolutionDelay(rng, 30000, 1)
	if d < 4 || d > 11 {
		t.Fatalf("mean resolution delay %.2f outside the plausible band", d)
	}
}

func TestBackoffBackgroundInsensitive(t *testing.T) {
	// Figure 4: background rates of 1% and 10% barely move the optimum.
	rng := sim.NewRNG(9)
	d1 := PaperBackoff(0.01).MeanResolutionDelay(rng.NewStream("a"), 30000, 1)
	d10 := PaperBackoff(0.10).MeanResolutionDelay(rng.NewStream("b"), 30000, 1)
	if d10 < d1 {
		t.Fatalf("more background should not reduce delay: %.2f vs %.2f", d1, d10)
	}
	if d10 > 2.5*d1 {
		t.Fatalf("background impact too strong: %.2f vs %.2f", d1, d10)
	}
}

func TestBackoffOptimumLocation(t *testing.T) {
	rng := sim.NewRNG(11)
	ws := []float64{1.5, 2.0, 2.7, 3.5, 4.5}
	bs := []float64{1.05, 1.1, 1.3, 1.6, 2.0}
	w, b, _ := OptimalWB(ws, bs, 0.01, rng, 8000, 1)
	if b > 1.3 {
		t.Errorf("optimal B = %.2f; the paper finds small bases (~1.1) win", b)
	}
	if w > 4 {
		t.Errorf("optimal W = %.2f; the paper finds small windows (~2.7) win", w)
	}
}

func TestPathologicalResolves(t *testing.T) {
	rng := sim.NewRNG(13)
	res := PaperBackoff(0).Pathological(rng, 64, 2, 100, 1<<17, 1)
	if !res.Resolved {
		t.Fatal("exponential backoff should resolve the 64-node burst")
	}
	if res.MeanRetriesFirst < 3 || res.MeanRetriesFirst > 80 {
		t.Fatalf("first-success retries %.1f implausible (paper: ~26)", res.MeanRetriesFirst)
	}
}

func TestPathologicalFixedWindowStruggles(t *testing.T) {
	rng := sim.NewRNG(17)
	fixed := BackoffModel{W: 3, B: 1, G: 0, SlotCycles: 2, DetectSlot: 0}
	exp := BackoffModel{W: 3, B: 2, G: 0, SlotCycles: 2, DetectSlot: 0}
	rf := fixed.Pathological(rng.NewStream("f"), 64, 2, 30, 1<<14, 1)
	re := exp.Pathological(rng.NewStream("e"), 64, 2, 30, 1<<14, 1)
	if !re.Resolved {
		t.Fatal("B=2 should resolve quickly")
	}
	if rf.Resolved && rf.MeanCyclesFirst < re.MeanCyclesFirst {
		t.Fatalf("fixed window (%.0f cyc) should not beat doubling (%.0f cyc) in the pathological burst",
			rf.MeanCyclesFirst, re.MeanCyclesFirst)
	}
}

func TestTwoReceiverRetransmitApproximation(t *testing.T) {
	// Footnote 4: the expression ~ pt/2 - pt^2/8 for moderate pt.
	for _, pt := range []float64{0.05, 0.1, 0.2} {
		exact := TwoReceiverRetransmitCollision(16, pt)
		approx := pt/2 - pt*pt/8
		if math.Abs(exact-approx) > 0.02 {
			t.Errorf("pt=%.2f: exact %.4f vs series %.4f", pt, exact, approx)
		}
	}
}

// TestMonteCarloWorkerCountInvariance is the sharding contract: every
// estimator must produce bit-identical float results at any worker
// count, because trials are dealt across fixed named sub-streams and
// reduced in shard order regardless of how many goroutines run them.
func TestMonteCarloWorkerCountInvariance(t *testing.T) {
	c := CollisionParams{N: 16, R: 2, P: 0.2}
	p1, n1 := MonteCarloCollision(c, sim.NewRNG(23), 10000, 1)
	for _, w := range []int{2, 4, 8} {
		pw, nw := MonteCarloCollision(c, sim.NewRNG(23), 10000, w)
		if pw != p1 || nw != n1 {
			t.Fatalf("workers=%d: (%v,%v) != workers=1 (%v,%v)", w, pw, nw, p1, n1)
		}
	}

	m := PaperBackoff(0.01)
	d1 := m.MeanResolutionDelay(sim.NewRNG(29), 10000, 1)
	for _, w := range []int{2, 8} {
		if dw := m.MeanResolutionDelay(sim.NewRNG(29), 10000, w); dw != d1 {
			t.Fatalf("MeanResolutionDelay workers=%d: %v != %v", w, dw, d1)
		}
	}

	r1 := PaperBackoff(0).Pathological(sim.NewRNG(31), 64, 2, 40, 1<<14, 1)
	r8 := PaperBackoff(0).Pathological(sim.NewRNG(31), 64, 2, 40, 1<<14, 8)
	if r1 != r8 {
		t.Fatalf("Pathological diverges across workers: %+v vs %+v", r1, r8)
	}

	ws := []float64{2, 2.7}
	bs := []float64{1.1, 1.6}
	s1 := ResolutionDelaySurface(ws, bs, 0.01, sim.NewRNG(37), 2000, 1)
	s8 := ResolutionDelaySurface(ws, bs, 0.01, sim.NewRNG(37), 2000, 8)
	for i := range s1 {
		for j := range s1[i] {
			if s1[i][j] != s8[i][j] {
				t.Fatalf("surface[%d][%d] diverges across workers: %v vs %v", i, j, s1[i][j], s8[i][j])
			}
		}
	}
}

func TestResolutionDelaySurfaceShape(t *testing.T) {
	rng := sim.NewRNG(19)
	ws := []float64{2, 3}
	bs := []float64{1.1, 2}
	s := ResolutionDelaySurface(ws, bs, 0.01, rng, 4000, 1)
	if len(s) != 2 || len(s[0]) != 2 {
		t.Fatalf("surface shape %dx%d", len(s), len(s[0]))
	}
	for i := range s {
		for j := range s[i] {
			if s[i][j] <= 0 || math.IsInf(s[i][j], 0) {
				t.Fatalf("surface[%d][%d] = %g", i, j, s[i][j])
			}
		}
	}
}
