package analytic

import (
	"math"

	"fsoi/internal/parallel"
	"fsoi/internal/sim"
)

// BackoffModel is the slot-level model behind Figure 4: senders whose
// packets collided retry in a uniformly random slot inside a window that
// grows exponentially with the retry count,
//
//	W_r = W * B^(r-1),
//
// while the rest of the system keeps transmitting at a background rate G
// that can cause secondary collisions and inject new contenders.
type BackoffModel struct {
	W          float64 // starting window, in slots (may be fractional, e.g. 2.7)
	B          float64 // exponential base (>= 1; the paper argues B=1.1 over the classic 2)
	G          float64 // background transmission probability per slot on this receiver
	SlotCycles int     // processor cycles per slot (2 for meta packets)
	DetectSlot int     // slots from end of a collided slot until the sender learns of it
}

// PaperBackoff returns the meta-lane configuration evaluated in §4.3.2:
// W=2.7, B=1.1, 2-cycle slots. The confirmation laser fires two cycles
// after a clean receipt, so its absence is known within the first backoff
// wait slot; DetectSlot is therefore 0 and detection overlaps the wait.
func PaperBackoff(g float64) BackoffModel {
	return BackoffModel{W: 2.7, B: 1.1, G: g, SlotCycles: 2, DetectSlot: 0}
}

// window returns the retry window, in slots, for the r-th retry (r >= 1).
func (m BackoffModel) window(r int) float64 {
	w := m.W * math.Pow(m.B, float64(r-1))
	if w < 1 {
		w = 1
	}
	return w
}

// drawWait picks the retry wait: a continuous point in (0, W_r] rounded up
// to a whole slot, so a window of 2.7 picks slot 3 with probability 0.7/2.7.
func (m BackoffModel) drawWait(rng *sim.RNG, retry int) int {
	w := m.window(retry)
	return int(math.Ceil(rng.Float64() * w))
}

// contender is one packet working through backoff.
type contender struct {
	nextTx int // slot index of the next transmission attempt
	retry  int // number of retries performed so far
	born   int // slot whose collision created this contender
}

// MeanResolutionDelay estimates, by Monte Carlo over trials independent
// collision episodes, the average collision-resolution delay in processor
// cycles: the time from the end of the originally collided slot until the
// end of the slot in which the packet finally goes through. Each episode
// starts with two packets colliding (the overwhelmingly common case) on
// one receiver. Episodes are sharded across fixed named sub-streams of
// rng and run on up to workers goroutines; partial sums reduce in shard
// order, so the float result is identical at every worker count.
func (m BackoffModel) MeanResolutionDelay(rng *sim.RNG, trials, workers int) float64 {
	if trials <= 0 {
		panic("analytic: trials must be positive")
	}
	type part struct {
		total    float64
		resolved int
	}
	counts := shardCounts(trials)
	streams := shardStreams(rng, len(counts))
	parts := parallel.Map(len(counts), workers, func(i int) part {
		var p part
		for t := 0; t < counts[i]; t++ {
			d, n := m.episode(streams[i], 2, 1<<14)
			p.total += d
			p.resolved += n
		}
		return p
	})
	total := 0.0
	resolved := 0
	for _, p := range parts { // fixed shard order keeps float addition stable
		total += p.total
		resolved += p.resolved
	}
	if resolved == 0 {
		return math.Inf(1)
	}
	return total / float64(resolved)
}

// episode simulates one collision episode with k initial colliders and
// returns the summed per-packet resolution delay in cycles and the number
// of packets resolved within maxSlots.
func (m BackoffModel) episode(rng *sim.RNG, k, maxSlots int) (totalCycles float64, resolved int) {
	var active []*contender
	for i := 0; i < k; i++ {
		c := &contender{born: 0, retry: 1}
		c.nextTx = m.DetectSlot + m.drawWait(rng, 1)
		active = append(active, c)
	}
	for slot := 1; slot <= maxSlots && len(active) > 0; slot++ {
		var txs []*contender
		for _, c := range active {
			if c.nextTx == slot {
				txs = append(txs, c)
			}
		}
		background := rng.Bool(m.G)
		switch {
		case len(txs) == 1 && !background:
			// Clean delivery: measure from end of the birth slot to the
			// end of this slot.
			c := txs[0]
			totalCycles += float64((slot - c.born) * m.SlotCycles)
			resolved++
			active = remove(active, c)
		case len(txs) > 0:
			// Collision (with each other and/or background). Everyone
			// transmitting backs off again; a colliding background packet
			// becomes a new contender.
			for _, c := range txs {
				c.retry++
				c.nextTx = slot + m.DetectSlot + m.drawWait(rng, c.retry)
			}
			if background {
				nc := &contender{born: slot, retry: 1}
				nc.nextTx = slot + m.DetectSlot + m.drawWait(rng, 1)
				active = append(active, nc)
			}
		}
	}
	return totalCycles, resolved
}

func remove(cs []*contender, target *contender) []*contender {
	out := cs[:0]
	for _, c := range cs {
		if c != target {
			out = append(out, c)
		}
	}
	return out
}

// ResolutionDelaySurface evaluates MeanResolutionDelay over a (W, B) grid,
// reproducing the Figure 4 surface. The rng is re-derived per grid point
// — serially, in row-major order, before any point runs — so the surface
// is smooth under a common random-number stream and independent of how
// many workers evaluate grid points concurrently. The grid is the
// parallel axis; each point's estimator runs serially on its own stream.
func ResolutionDelaySurface(ws, bs []float64, g float64, rng *sim.RNG, trials, workers int) [][]float64 {
	streams := make([]*sim.RNG, len(ws)*len(bs))
	for i := range streams {
		streams[i] = rng.NewStream("surface")
	}
	flat := parallel.Map(len(streams), workers, func(idx int) float64 {
		m := PaperBackoff(g)
		m.W, m.B = ws[idx/len(bs)], bs[idx%len(bs)]
		return m.MeanResolutionDelay(streams[idx], trials, 1)
	})
	out := make([][]float64, len(ws))
	for i := range ws {
		out[i] = flat[i*len(bs) : (i+1)*len(bs)]
	}
	return out
}

// OptimalWB scans a grid and returns the (W, B) with the lowest mean
// resolution delay; with the paper's parameters the optimum falls near
// W=2.7, B=1.1.
func OptimalWB(ws, bs []float64, g float64, rng *sim.RNG, trials, workers int) (bestW, bestB, bestDelay float64) {
	surface := ResolutionDelaySurface(ws, bs, g, rng, trials, workers)
	bestDelay = math.Inf(1)
	for i, w := range ws {
		for j, b := range bs {
			if surface[i][j] < bestDelay {
				bestDelay, bestW, bestB = surface[i][j], w, b
			}
		}
	}
	return bestW, bestB, bestDelay
}

// PathologicalResult reports the §4.3.2 worst case: in an N-node system
// every other node sends one packet to the same target nearly
// simultaneously.
type PathologicalResult struct {
	MeanRetriesFirst float64 // retries until the first packet gets through
	MeanCyclesFirst  float64 // cycles until the first clean delivery
	Resolved         bool    // whether any packet succeeded within the horizon
}

// Pathological simulates the all-to-one burst with nodes-1 simultaneous
// senders split across receivers receivers, and reports how long the first
// clean delivery takes. A fixed window (B=1) with small W may effectively
// never resolve; the horizon caps the search. Each trial already runs on
// its own derived stream, so trials parallelize across workers with the
// reduction in trial order — numerically identical to the serial loop.
func (m BackoffModel) Pathological(rng *sim.RNG, nodes, receivers, trials, horizonSlots, workers int) PathologicalResult {
	var sumRetries, sumCycles float64
	succeeded := 0
	perReceiver := (nodes - 1 + receivers - 1) / receivers
	subs := make([]*sim.RNG, trials)
	for i := range subs {
		subs[i] = rng.NewStream("patho")
	}
	type outcome struct {
		slots, retries int
		ok             bool
	}
	outcomes := parallel.Map(trials, workers, func(t int) outcome {
		slots, retries, ok := m.firstSuccess(subs[t], perReceiver, horizonSlots)
		return outcome{slots, retries, ok}
	})
	for _, o := range outcomes { // trial order keeps float addition stable
		if o.ok {
			succeeded++
			sumRetries += float64(o.retries)
			sumCycles += float64(o.slots * m.SlotCycles)
		}
	}
	if succeeded == 0 {
		return PathologicalResult{Resolved: false}
	}
	return PathologicalResult{
		MeanRetriesFirst: sumRetries / float64(succeeded),
		MeanCyclesFirst:  sumCycles / float64(succeeded),
		Resolved:         true,
	}
}

// firstSuccess runs one all-to-one episode until the first clean delivery
// and returns the slot of that delivery and the retry count of the winning
// packet.
func (m BackoffModel) firstSuccess(rng *sim.RNG, k, horizon int) (slots, retries int, ok bool) {
	active := make([]*contender, k)
	for i := range active {
		c := &contender{retry: 1}
		c.nextTx = m.DetectSlot + m.drawWait(rng, 1)
		active[i] = c
	}
	for slot := 1; slot <= horizon; slot++ {
		var txs []*contender
		for _, c := range active {
			if c.nextTx == slot {
				txs = append(txs, c)
			}
		}
		if len(txs) == 1 {
			return slot, txs[0].retry, true
		}
		for _, c := range txs {
			c.retry++
			c.nextTx = slot + m.DetectSlot + m.drawWait(rng, c.retry)
		}
	}
	return 0, 0, false
}
