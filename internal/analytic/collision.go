// Package analytic implements the paper's closed-form and Monte Carlo
// models: the §4.3.2 collision-probability expression (Figure 3), the
// bandwidth-allocation latency model (the C1..C4 expression whose optimum
// sets the meta-lane share to ~0.285), and the exponential-backoff
// collision-resolution-delay model behind Figure 4.
//
// These models exist so that early design decisions can be made without
// "blindly relying on expensive simulations" (§4.3.2); the simulator
// cross-validates them in the experiment suite.
package analytic

import (
	"fmt"
	"math"

	"fsoi/internal/parallel"
	"fsoi/internal/sim"
)

// mcShards is the fixed shard count for all Monte Carlo estimators in
// this package. Trials are dealt across mcShards independent named RNG
// sub-streams and the partial results reduced in shard order, so an
// estimate is a pure function of (seed, trials) — the worker count only
// decides how many shards run concurrently, never what they compute.
const mcShards = 16

// shardCounts deals trials across the fixed shard count, earlier shards
// absorbing the remainder. Fewer trials than shards degenerate to one
// trial per shard.
func shardCounts(trials int) []int {
	n := mcShards
	if n > trials {
		n = trials
	}
	if n < 1 {
		n = 1
	}
	counts := make([]int, n)
	base, rem := trials/n, trials%n
	for i := range counts {
		counts[i] = base
		if i < rem {
			counts[i]++
		}
	}
	return counts
}

// shardStreams derives one named sub-stream per shard, serially and in
// shard order, so the stream genealogy is independent of worker count.
func shardStreams(rng *sim.RNG, n int) []*sim.RNG {
	streams := make([]*sim.RNG, n)
	for i := range streams {
		streams[i] = rng.NewStream(fmt.Sprintf("shard/%d", i))
	}
	return streams
}

// CollisionParams describes the simplified transmission model of §4.3.2:
// every one of N nodes transmits with probability p per slot to a uniform
// random destination; each node owns R receivers and the N-1 potential
// senders are divided evenly among them.
type CollisionParams struct {
	N int     // number of nodes
	R int     // receivers per node per lane
	P float64 // per-node transmission probability per slot
}

// sendersPerReceiver returns n = (N-1)/R as a real number; the paper's
// formula treats it continuously for non-divisible R.
func (c CollisionParams) sendersPerReceiver() float64 {
	return float64(c.N-1) / float64(c.R)
}

// q is the probability that one particular sender targets one particular
// receiver in a slot: transmit (p) and pick that destination (1/(N-1)).
func (c CollisionParams) q() float64 {
	return c.P / float64(c.N-1)
}

// NodeCollisionProbability evaluates the paper's displayed expression:
// the probability that at least one of a node's R receivers sees two or
// more simultaneous packets in a slot,
//
//	1 - [ (1-q)^n + n*q*(1-q)^(n-1) ]^R,  q = p/(N-1), n = (N-1)/R.
func NodeCollisionProbability(c CollisionParams) float64 {
	n := c.sendersPerReceiver()
	if n <= 1 {
		return 0 // at most one sender per receiver: collisions impossible
	}
	q := c.q()
	clean := math.Pow(1-q, n) + n*q*math.Pow(1-q, n-1)
	return 1 - math.Pow(clean, float64(c.R))
}

// PacketCollisionProbability is the per-transmitted-packet collision
// probability — the quantity Figure 3 plots ("normalized to packet
// transmission probability"). A transmitted packet collides when any of
// the other n-1 senders sharing its receiver also targets it:
//
//	Pc = 1 - (1-q)^(n-1).
//
// To first order Pc is inversely proportional to R, the diminishing-
// returns observation of §4.3.2.
func PacketCollisionProbability(c CollisionParams) float64 {
	n := c.sendersPerReceiver()
	if n <= 1 {
		return 0 // a dedicated receiver per sender never collides
	}
	q := c.q()
	return 1 - math.Pow(1-q, n-1)
}

// TwoReceiverRetransmitCollision is footnote 4's expression for the
// collision probability of a retransmitted packet in a 2-receiver design
// given background transmission probability pt:
//
//	Pt * (1 - (1 - pt/(N-1))^((N-2)/2)) ≈ pt/2 - pt²/8 + ...
//
// It returns the exact form.
func TwoReceiverRetransmitCollision(n int, pt float64) float64 {
	return 1 - math.Pow(1-pt/float64(n-1), float64(n-2)/2)
}

// collisionTally holds one shard's raw counts.
type collisionTally struct {
	sent, collided, nodeSlots, nodeCollisions int
}

// MonteCarloCollision estimates the same two quantities by direct
// simulation of the slotted model: trials slots, each node transmitting
// independently. It returns the per-packet and per-node collision
// probabilities, validating the closed forms. Trials are sharded across
// fixed named sub-streams of rng and run on up to workers goroutines;
// the estimate is identical at every worker count.
func MonteCarloCollision(c CollisionParams, rng *sim.RNG, trials, workers int) (perPacket, perNode float64) {
	if c.N < 2 || c.R < 1 {
		panic("analytic: need N >= 2 and R >= 1")
	}
	counts := shardCounts(trials)
	streams := shardStreams(rng, len(counts))
	shards := parallel.Map(len(counts), workers, func(i int) collisionTally {
		return collisionShard(c, streams[i], counts[i])
	})
	var total collisionTally
	for _, sh := range shards { // reduce in shard order
		total.sent += sh.sent
		total.collided += sh.collided
		total.nodeSlots += sh.nodeSlots
		total.nodeCollisions += sh.nodeCollisions
	}
	if total.sent > 0 {
		perPacket = float64(total.collided) / float64(total.sent)
	}
	// perNode is the probability that a given node experiences >=1
	// receiver collision in a slot, averaged over nodes and slots.
	perNode = float64(total.nodeCollisions) / float64(total.nodeSlots)
	return perPacket, perNode
}

// collisionShard runs one shard's slots on its own stream.
func collisionShard(c CollisionParams, rng *sim.RNG, trials int) collisionTally {
	var sent, collided, nodeSlots, nodeCollisions int
	// receiverOf maps a sender to the receiver index it uses at any
	// destination: senders are statically divided among receivers.
	load := make(map[[2]int][]int) // (dst, receiver) -> senders this slot
	for t := 0; t < trials; t++ {
		for k := range load {
			delete(load, k)
		}
		type tx struct{ src, dst, rcv int }
		var txs []tx
		for s := 0; s < c.N; s++ {
			if !rng.Bool(c.P) {
				continue
			}
			d := rng.Intn(c.N - 1)
			if d >= s {
				d++
			}
			r := s % c.R
			txs = append(txs, tx{s, d, r})
			key := [2]int{d, r}
			load[key] = append(load[key], s)
		}
		sent += len(txs)
		for _, x := range txs {
			if len(load[[2]int{x.dst, x.rcv}]) > 1 {
				collided++
			}
		}
		nodeSlots += c.N
		seen := make(map[int]bool)
		for key, senders := range load {
			if len(senders) > 1 && !seen[key[0]] {
				seen[key[0]] = true
				nodeCollisions++
			}
		}
	}
	return collisionTally{sent, collided, nodeSlots, nodeCollisions}
}
