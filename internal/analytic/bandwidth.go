package analytic

import "math"

// BandwidthModel is the §4.3.2 "bandwidth allocation" latency model. With
// BM the fraction of total transmit bandwidth given to the meta lane (the
// rest goes to the data lane), expected packet latency is
//
//	L(BM) = C1/BM + C2/BM² + C3/(1-BM) + C4/(1-BM)²
//
// where the constants fold together application statistics: packet-type
// composition, the share of meta/data packets on the critical path, and
// the expected number of retries. The 1/B terms are serialization and
// basic transmission latency (inversely proportional to lane bandwidth);
// the 1/B² terms are collision-resolution latency, which is a product of
// collision probability and resolution time, both inversely proportional
// to lane bandwidth.
type BandwidthModel struct {
	C1, C2, C3, C4 float64
}

// PaperBandwidthModel returns constants calibrated so the model matches
// the paper's setup: meta packets are ~5x more frequent than data packets
// but 5x shorter, collisions contribute quadratically, and the optimum
// lands at BM ≈ 0.285 ("about 30% of the bandwidth should be allocated to
// transmit meta packets").
func PaperBandwidthModel() BandwidthModel {
	return BandwidthModel{C1: 1.0, C2: 0.2, C3: 6.31, C4: 3.155}
}

// Latency evaluates the model at meta share bm in (0,1).
func (m BandwidthModel) Latency(bm float64) float64 {
	if bm <= 0 || bm >= 1 {
		return math.Inf(1)
	}
	d := 1 - bm
	return m.C1/bm + m.C2/(bm*bm) + m.C3/d + m.C4/(d*d)
}

// OptimalMetaShare finds the bm in (0,1) minimizing Latency via golden-
// section search; the model is strictly convex on (0,1) for positive
// constants, so the optimum is unique.
func (m BandwidthModel) OptimalMetaShare() float64 {
	const phi = 0.6180339887498949
	lo, hi := 1e-4, 1-1e-4
	a := hi - phi*(hi-lo)
	b := lo + phi*(hi-lo)
	fa, fb := m.Latency(a), m.Latency(b)
	for hi-lo > 1e-9 {
		if fa < fb {
			hi, b, fb = b, a, fa
			a = hi - phi*(hi-lo)
			fa = m.Latency(a)
		} else {
			lo, a, fa = a, b, fb
			b = lo + phi*(hi-lo)
			fb = m.Latency(b)
		}
	}
	return (lo + hi) / 2
}

// LaneAllocation converts a meta-bandwidth share into whole VCSEL counts
// given a per-node transmit budget, preferring the rounding with lower
// modelled latency. The paper's 9-VCSEL budget at bm=0.285 yields 3 meta
// + 6 data VCSELs.
func (m BandwidthModel) LaneAllocation(totalVCSELs int) (meta, data int) {
	if totalVCSELs < 2 {
		panic("analytic: need at least 2 VCSELs to split lanes")
	}
	bm := m.OptimalMetaShare()
	lo := int(math.Floor(bm * float64(totalVCSELs)))
	if lo < 1 {
		lo = 1
	}
	hi := lo + 1
	if hi > totalVCSELs-1 {
		hi = totalVCSELs - 1
	}
	if m.Latency(float64(lo)/float64(totalVCSELs)) <= m.Latency(float64(hi)/float64(totalVCSELs)) {
		meta = lo
	} else {
		meta = hi
	}
	return meta, totalVCSELs - meta
}
