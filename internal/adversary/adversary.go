// Package adversary models hostile traffic on the FSOI shared medium
// (ROADMAP item 4, after arXiv:2303.01550's gain-competition attacks on
// optical NoCs). An adversary is a compromised node running a hostile
// operation stream (built by internal/workload) plus, for the roles that
// tamper with the optical layer itself, a Model the network consults on
// the paths an attacker can reach: PID/~PID header spoofing on arrival
// resolution and confirmation-beam starvation on clean delivery.
//
// Everything is deterministic under the repository's named-RNG-stream
// discipline: the model draws only from the per-node streams the network
// hands it, in simulation order, and a configuration with no adversaries
// draws nothing — attack-free runs are byte-identical to a build without
// adversary support.
package adversary

import (
	"fmt"
	"sort"

	"fsoi/internal/sim"
)

// Role selects the attack an adversary node mounts.
type Role int

const (
	// RoleJammer floods lines homed at its victims with always-missing
	// loads and stores, saturating the victims' receiver slots so honest
	// traffic collides and backs off (a collision storm). Pure traffic:
	// the optical layer is not tampered with.
	RoleJammer Role = iota
	// RoleSpoofer transmits corrupted PID/~PID headers: every arrival
	// from the spoofer is misdetected as a collision with probability
	// Intensity, burning victim receiver slots and dragging the
	// spoofer's own links into deep backoff (§4.3.1 misdetection paths).
	RoleSpoofer
	// RoleStarver suppresses the confirmation beam for packets cleanly
	// received at its victims: with probability Intensity the sender
	// never hears the confirmation and rides the timeout-retransmission
	// path, so traffic into the victim degenerates into a retransmit
	// storm.
	RoleStarver
	numRoles
)

// String names the role with its stable configuration identifier.
func (r Role) String() string {
	switch r {
	case RoleJammer:
		return "jammer"
	case RoleSpoofer:
		return "spoofer"
	case RoleStarver:
		return "starver"
	}
	return fmt.Sprintf("Role(%d)", int(r))
}

// ParseRole maps a configuration identifier back to its role.
func ParseRole(s string) (Role, bool) {
	for r := Role(0); r < numRoles; r++ {
		if r.String() == s {
			return r, true
		}
	}
	return 0, false
}

// Spec configures one adversary node.
type Spec struct {
	Role      Role
	Node      int       // the compromised node
	Victims   []int     // targeted nodes (non-empty, attacker excluded)
	Intensity float64   // attack probability per opportunity, in (0,1)
	Start     sim.Cycle // first active cycle
	Stop      sim.Cycle // first inactive cycle again (0 = never stops)
	Ops       int       // hostile op budget (0 = derive from the honest app)
}

// Validate rejects a spec the simulation cannot honour.
func (s Spec) Validate(nodes int) error {
	if s.Role < 0 || s.Role >= numRoles {
		return fmt.Errorf("adversary: unknown role %d", int(s.Role))
	}
	if s.Node < 0 || s.Node >= nodes {
		return fmt.Errorf("adversary: node %d out of range [0,%d)", s.Node, nodes)
	}
	if len(s.Victims) == 0 {
		return fmt.Errorf("adversary: node %d has no victims", s.Node)
	}
	for _, v := range s.Victims {
		if v < 0 || v >= nodes {
			return fmt.Errorf("adversary: victim %d out of range [0,%d)", v, nodes)
		}
		if v == s.Node {
			return fmt.Errorf("adversary: node %d cannot target itself", s.Node)
		}
	}
	if s.Intensity <= 0 || s.Intensity >= 1 {
		return fmt.Errorf("adversary: intensity %g outside (0,1)", s.Intensity)
	}
	if s.Stop > 0 && s.Stop <= s.Start {
		return fmt.Errorf("adversary: stop cycle %d not after start %d", s.Stop, s.Start)
	}
	if s.Ops < 0 {
		return fmt.Errorf("adversary: negative op budget %d", s.Ops)
	}
	return nil
}

// Validate checks a full adversary roster: each spec individually, and
// at most one spec per node (a node mounts one attack).
func Validate(specs []Spec, nodes int) error {
	seen := make(map[int]bool, len(specs))
	for _, s := range specs {
		if err := s.Validate(nodes); err != nil {
			return err
		}
		if seen[s.Node] {
			return fmt.Errorf("adversary: node %d configured twice", s.Node)
		}
		seen[s.Node] = true
	}
	return nil
}

// Nodes returns the sorted attacker node set.
func Nodes(specs []Spec) []int {
	out := make([]int, 0, len(specs))
	for _, s := range specs {
		out = append(out, s.Node)
	}
	sort.Ints(out)
	return out
}

// window is one active attack interval with its probability.
type window struct {
	p           float64
	start, stop sim.Cycle
}

func (w window) active(at sim.Cycle) bool {
	return at >= w.start && (w.stop == 0 || at < w.stop)
}

// Model is the optical-layer half of the roster: the network consults it
// on arrival resolution (spoofed headers, keyed by source) and on clean
// delivery (starved confirmations, keyed by destination). A query that
// matches no active window returns false without drawing randomness, so
// the draw schedule is a pure function of the configuration.
type Model struct {
	spoof  []window   // by attacker node; p == 0 means not a spoofer
	starve [][]window // by victim node; every starver targeting it
}

// NewModel compiles a validated roster for nodes nodes.
func NewModel(specs []Spec, nodes int) *Model {
	m := &Model{
		spoof:  make([]window, nodes),
		starve: make([][]window, nodes),
	}
	for _, s := range specs {
		w := window{p: s.Intensity, start: s.Start, stop: s.Stop}
		switch s.Role {
		case RoleSpoofer:
			m.spoof[s.Node] = w
		case RoleStarver:
			for _, v := range s.Victims {
				m.starve[v] = append(m.starve[v], w)
			}
		}
	}
	return m
}

// SpoofedHeader reports whether the arrival from src at cycle `at`
// carries a forged PID/~PID header. The draw runs on the receiving
// node's stream, passed in by the network from the receiver's context.
func (m *Model) SpoofedHeader(src int, at sim.Cycle, rng *sim.RNG) bool {
	w := m.spoof[src]
	if w.p == 0 || !w.active(at) { //lint:allow floateq zero-value-off sentinel on an assigned spec field
		return false
	}
	return rng.Bool(w.p)
}

// StarveConfirm reports whether the confirmation beam for a packet
// cleanly received at dst is suppressed. The draw runs on the receiving
// node's stream.
func (m *Model) StarveConfirm(dst int, at sim.Cycle, rng *sim.RNG) bool {
	for _, w := range m.starve[dst] {
		if w.active(at) && rng.Bool(w.p) {
			return true
		}
	}
	return false
}
