package adversary

import (
	"testing"

	"fsoi/internal/sim"
)

func TestParseRoleRoundTrip(t *testing.T) {
	for r := Role(0); r < numRoles; r++ {
		got, ok := ParseRole(r.String())
		if !ok || got != r {
			t.Fatalf("ParseRole(%q) = %v, %v", r.String(), got, ok)
		}
	}
	if _, ok := ParseRole("phaser"); ok {
		t.Fatal("unknown role must not parse")
	}
}

func TestSpecValidation(t *testing.T) {
	good := Spec{Role: RoleJammer, Node: 3, Victims: []int{0}, Intensity: 0.5}
	if err := good.Validate(16); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []Spec{
		{Role: numRoles, Node: 3, Victims: []int{0}, Intensity: 0.5},                        // unknown role
		{Role: RoleJammer, Node: 16, Victims: []int{0}, Intensity: 0.5},                     // node out of range
		{Role: RoleJammer, Node: 3, Intensity: 0.5},                                         // no victims
		{Role: RoleJammer, Node: 3, Victims: []int{16}, Intensity: 0.5},                     // victim out of range
		{Role: RoleJammer, Node: 3, Victims: []int{3}, Intensity: 0.5},                      // self-targeting
		{Role: RoleJammer, Node: 3, Victims: []int{0}, Intensity: 0},                        // intensity floor
		{Role: RoleJammer, Node: 3, Victims: []int{0}, Intensity: 1},                        // intensity ceiling
		{Role: RoleJammer, Node: 3, Victims: []int{0}, Intensity: 0.5, Start: 10, Stop: 10}, // empty window
		{Role: RoleJammer, Node: 3, Victims: []int{0}, Intensity: 0.5, Ops: -1},             // negative budget
	}
	for i, s := range bad {
		if err := s.Validate(16); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, s)
		}
	}
}

func TestRosterValidation(t *testing.T) {
	roster := []Spec{
		{Role: RoleJammer, Node: 15, Victims: []int{0}, Intensity: 0.5},
		{Role: RoleSpoofer, Node: 14, Victims: []int{0}, Intensity: 0.5},
	}
	if err := Validate(roster, 16); err != nil {
		t.Fatalf("valid roster rejected: %v", err)
	}
	dup := append(roster, Spec{Role: RoleStarver, Node: 15, Victims: []int{1}, Intensity: 0.5})
	if err := Validate(dup, 16); err == nil {
		t.Fatal("double-configured node 15 accepted")
	}
	if got := Nodes(roster); len(got) != 2 || got[0] != 14 || got[1] != 15 {
		t.Fatalf("Nodes not sorted attacker set: %v", got)
	}
}

// drawSchedule replays a fixed query sequence against a model and
// returns the outcomes; the schedule is deterministic so two identical
// models must agree draw for draw.
func drawSchedule(m *Model) []bool {
	rng := sim.NewRNG(7).NewStream("test")
	var out []bool
	for at := sim.Cycle(0); at < 4096; at += 64 {
		out = append(out, m.SpoofedHeader(14, at, rng))
		out = append(out, m.StarveConfirm(0, at, rng))
	}
	return out
}

func TestModelDeterminism(t *testing.T) {
	roster := []Spec{
		{Role: RoleSpoofer, Node: 14, Victims: []int{0}, Intensity: 0.6},
		{Role: RoleStarver, Node: 15, Victims: []int{0}, Intensity: 0.6},
	}
	a := drawSchedule(NewModel(roster, 16))
	b := drawSchedule(NewModel(roster, 16))
	hits := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs between identical models", i)
		}
		if a[i] {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("intensity 0.6 over 128 queries produced no hits")
	}
}

func TestModelWindowGating(t *testing.T) {
	// Outside [Start, Stop) the model must answer false WITHOUT drawing:
	// the two rngs stay in lockstep, so a draw inside the window after
	// gated queries proves the gated queries consumed nothing.
	roster := []Spec{
		{Role: RoleSpoofer, Node: 14, Victims: []int{0}, Intensity: 0.999, Start: 100, Stop: 200},
	}
	m := NewModel(roster, 16)
	rng := sim.NewRNG(7).NewStream("test")
	ref := sim.NewRNG(7).NewStream("test")
	if m.SpoofedHeader(14, 50, rng) || m.SpoofedHeader(14, 200, rng) {
		t.Fatal("spoof fired outside the active window")
	}
	if m.SpoofedHeader(13, 150, rng) {
		t.Fatal("spoof fired for a non-spoofer source")
	}
	if got, want := m.SpoofedHeader(14, 150, rng), ref.Bool(0.999); got != want {
		t.Fatal("gated queries consumed randomness: in-window draw diverged from reference")
	}
}
