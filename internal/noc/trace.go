package noc

import (
	"fmt"
	"sort"
	"strings"

	"fsoi/internal/sim"
)

// TraceStatus is a packet's terminal fate in the ring buffer.
type TraceStatus uint8

const (
	// StatusDelivered marks a packet that reached its destination.
	StatusDelivered TraceStatus = iota
	// StatusDropped marks a packet the network permanently gave up on
	// after retry exhaustion. Dropped packets used to be invisible to
	// -trace output — the ring buffer only ever saw deliveries — which
	// made drop storms indistinguishable from silence.
	StatusDropped
)

// String names the status.
func (s TraceStatus) String() string {
	if s == StatusDropped {
		return "DROPPED"
	}
	return "delivered"
}

// Tracer keeps the last N terminated packets (delivered or dropped) in a
// ring buffer for post-mortem inspection (fsoisim -trace).
type Tracer struct {
	ring []TraceEntry
	next int
	full bool
}

// TraceEntry is one terminated packet's summary.
type TraceEntry struct {
	At      sim.Cycle
	ID      uint64
	Src     int
	Dst     int
	Type    PacketType
	Status  TraceStatus
	Total   int64
	Queue   int64
	Sched   int64
	Net     int64
	Resolve int64
	Retries int
}

// NewTracer builds a tracer holding up to n entries.
func NewTracer(n int) *Tracer {
	if n <= 0 {
		n = 64
	}
	return &Tracer{ring: make([]TraceEntry, n)}
}

// Record captures one delivery.
func (t *Tracer) Record(p *Packet, now sim.Cycle) {
	t.RecordStatus(p, now, StatusDelivered)
}

// RecordStatus captures one terminated packet with its terminal fate.
func (t *Tracer) RecordStatus(p *Packet, now sim.Cycle, status TraceStatus) {
	t.ring[t.next] = TraceEntry{
		At: now, ID: p.ID, Src: p.Src, Dst: p.Dst, Type: p.Type, Status: status,
		Total: p.TotalLatency(), Queue: p.QueuingDelay, Sched: p.SchedulingDelay,
		Net: p.NetworkDelay, Resolve: p.ResolutionDelay, Retries: p.Retries,
	}
	t.next = (t.next + 1) % len(t.ring)
	if t.next == 0 {
		t.full = true
	}
}

// Entries returns the captured packets, oldest first.
func (t *Tracer) Entries() []TraceEntry {
	if !t.full {
		return t.ring[:t.next]
	}
	out := make([]TraceEntry, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// ShardedTracer keeps one terminated-packet ring per node, each the
// full requested size, so recording never crosses node (and therefore
// shard) boundaries: deliveries are recorded at the destination, drops
// at the source. Merged restores the single-ring view — the most
// recent n terminations across all nodes in a canonical order — for
// display.
type ShardedTracer struct {
	rings []*Tracer
	n     int
}

// NewShardedTracer builds per-node rings of up to n entries each.
func NewShardedTracer(nodes, n int) *ShardedTracer {
	if n <= 0 {
		n = 64
	}
	st := &ShardedTracer{rings: make([]*Tracer, nodes), n: n}
	for i := range st.rings {
		st.rings[i] = NewTracer(n)
	}
	return st
}

// For returns the ring owned by a node. A nil tracer returns nil, so
// call sites keep the single nil-check idiom.
func (t *ShardedTracer) For(node int) *Tracer {
	if t == nil || node < 0 || node >= len(t.rings) {
		return nil
	}
	return t.rings[node]
}

// Merged collapses the per-node rings into one ring of the requested
// size: all retained entries sorted by (At, ID, Src) — a total order,
// since packet IDs are unique — with the ring keeping the most recent
// n. The sort key never mentions a shard, so the merged trace is
// identical at every shard and worker count.
func (t *ShardedTracer) Merged() *Tracer {
	var all []TraceEntry
	for _, r := range t.rings {
		all = append(all, r.Entries()...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].At != all[j].At {
			return all[i].At < all[j].At
		}
		if all[i].ID != all[j].ID {
			return all[i].ID < all[j].ID
		}
		return all[i].Src < all[j].Src
	})
	out := NewTracer(t.n)
	for _, e := range all {
		out.ring[out.next] = e
		out.next = (out.next + 1) % len(out.ring)
		if out.next == 0 {
			out.full = true
		}
	}
	return out
}

// String renders the trace as a table.
func (t *Tracer) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-8s %-4s %-4s %-5s %-9s %-6s %-6s %-6s %-6s %-7s %s\n",
		"cycle", "id", "src", "dst", "type", "status", "total", "queue", "sched", "net", "resolve", "retries")
	for _, e := range t.Entries() {
		fmt.Fprintf(&b, "%-10d %-8d %-4d %-4d %-5s %-9s %-6d %-6d %-6d %-6d %-7d %d\n",
			e.At, e.ID, e.Src, e.Dst, e.Type, e.Status, e.Total, e.Queue, e.Sched, e.Net, e.Resolve, e.Retries)
	}
	return b.String()
}
