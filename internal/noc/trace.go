package noc

import (
	"fmt"
	"strings"

	"fsoi/internal/sim"
)

// Tracer keeps the last N delivered packets in a ring buffer for
// post-mortem inspection (fsoisim -trace).
type Tracer struct {
	ring []TraceEntry
	next int
	full bool
}

// TraceEntry is one delivered packet's summary.
type TraceEntry struct {
	At      sim.Cycle
	ID      uint64
	Src     int
	Dst     int
	Type    PacketType
	Total   int64
	Queue   int64
	Sched   int64
	Net     int64
	Resolve int64
	Retries int
}

// NewTracer builds a tracer holding up to n entries.
func NewTracer(n int) *Tracer {
	if n <= 0 {
		n = 64
	}
	return &Tracer{ring: make([]TraceEntry, n)}
}

// Record captures one delivery.
func (t *Tracer) Record(p *Packet, now sim.Cycle) {
	t.ring[t.next] = TraceEntry{
		At: now, ID: p.ID, Src: p.Src, Dst: p.Dst, Type: p.Type,
		Total: p.TotalLatency(), Queue: p.QueuingDelay, Sched: p.SchedulingDelay,
		Net: p.NetworkDelay, Resolve: p.ResolutionDelay, Retries: p.Retries,
	}
	t.next = (t.next + 1) % len(t.ring)
	if t.next == 0 {
		t.full = true
	}
}

// Entries returns the captured packets, oldest first.
func (t *Tracer) Entries() []TraceEntry {
	if !t.full {
		return t.ring[:t.next]
	}
	out := make([]TraceEntry, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// String renders the trace as a table.
func (t *Tracer) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-8s %-4s %-4s %-5s %-6s %-6s %-6s %-6s %-7s %s\n",
		"cycle", "id", "src", "dst", "type", "total", "queue", "sched", "net", "resolve", "retries")
	for _, e := range t.Entries() {
		fmt.Fprintf(&b, "%-10d %-8d %-4d %-4d %-5s %-6d %-6d %-6d %-6d %-7d %d\n",
			e.At, e.ID, e.Src, e.Dst, e.Type, e.Total, e.Queue, e.Sched, e.Net, e.Resolve, e.Retries)
	}
	return b.String()
}
