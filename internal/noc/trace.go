package noc

import (
	"fmt"
	"strings"

	"fsoi/internal/sim"
)

// TraceStatus is a packet's terminal fate in the ring buffer.
type TraceStatus uint8

const (
	// StatusDelivered marks a packet that reached its destination.
	StatusDelivered TraceStatus = iota
	// StatusDropped marks a packet the network permanently gave up on
	// after retry exhaustion. Dropped packets used to be invisible to
	// -trace output — the ring buffer only ever saw deliveries — which
	// made drop storms indistinguishable from silence.
	StatusDropped
)

// String names the status.
func (s TraceStatus) String() string {
	if s == StatusDropped {
		return "DROPPED"
	}
	return "delivered"
}

// Tracer keeps the last N terminated packets (delivered or dropped) in a
// ring buffer for post-mortem inspection (fsoisim -trace).
type Tracer struct {
	ring []TraceEntry
	next int
	full bool
}

// TraceEntry is one terminated packet's summary.
type TraceEntry struct {
	At      sim.Cycle
	ID      uint64
	Src     int
	Dst     int
	Type    PacketType
	Status  TraceStatus
	Total   int64
	Queue   int64
	Sched   int64
	Net     int64
	Resolve int64
	Retries int
}

// NewTracer builds a tracer holding up to n entries.
func NewTracer(n int) *Tracer {
	if n <= 0 {
		n = 64
	}
	return &Tracer{ring: make([]TraceEntry, n)}
}

// Record captures one delivery.
func (t *Tracer) Record(p *Packet, now sim.Cycle) {
	t.RecordStatus(p, now, StatusDelivered)
}

// RecordStatus captures one terminated packet with its terminal fate.
func (t *Tracer) RecordStatus(p *Packet, now sim.Cycle, status TraceStatus) {
	t.ring[t.next] = TraceEntry{
		At: now, ID: p.ID, Src: p.Src, Dst: p.Dst, Type: p.Type, Status: status,
		Total: p.TotalLatency(), Queue: p.QueuingDelay, Sched: p.SchedulingDelay,
		Net: p.NetworkDelay, Resolve: p.ResolutionDelay, Retries: p.Retries,
	}
	t.next = (t.next + 1) % len(t.ring)
	if t.next == 0 {
		t.full = true
	}
}

// Entries returns the captured packets, oldest first.
func (t *Tracer) Entries() []TraceEntry {
	if !t.full {
		return t.ring[:t.next]
	}
	out := make([]TraceEntry, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// String renders the trace as a table.
func (t *Tracer) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-8s %-4s %-4s %-5s %-9s %-6s %-6s %-6s %-6s %-7s %s\n",
		"cycle", "id", "src", "dst", "type", "status", "total", "queue", "sched", "net", "resolve", "retries")
	for _, e := range t.Entries() {
		fmt.Fprintf(&b, "%-10d %-8d %-4d %-4d %-5s %-9s %-6d %-6d %-6d %-6d %-7d %d\n",
			e.At, e.ID, e.Src, e.Dst, e.Type, e.Status, e.Total, e.Queue, e.Sched, e.Net, e.Resolve, e.Retries)
	}
	return b.String()
}
