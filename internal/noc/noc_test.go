package noc

import "testing"

func TestPacketTypeSizes(t *testing.T) {
	if Meta.Bits() != 72 || Data.Bits() != 360 {
		t.Fatalf("bits: meta=%d data=%d", Meta.Bits(), Data.Bits())
	}
	if Meta.Flits() != 1 || Data.Flits() != 5 {
		t.Fatalf("flits: meta=%d data=%d", Meta.Flits(), Data.Flits())
	}
}

func TestPacketTypeStrings(t *testing.T) {
	if Meta.String() != "meta" || Data.String() != "data" {
		t.Fatal("type names wrong")
	}
	if PacketType(9).String() == "" {
		t.Fatal("unknown type needs fallback")
	}
}

func TestTotalLatency(t *testing.T) {
	p := &Packet{QueuingDelay: 3, SchedulingDelay: 2, NetworkDelay: 5, ResolutionDelay: 1}
	if p.TotalLatency() != 11 {
		t.Fatalf("total = %d", p.TotalLatency())
	}
}

func TestLatencyStatsRecord(t *testing.T) {
	var l LatencyStats
	l.Record(&Packet{Type: Meta, QueuingDelay: 2, NetworkDelay: 4})
	l.Record(&Packet{Type: Data, NetworkDelay: 10, ResolutionDelay: 6, Retries: 2})
	if l.Delivered != 2 {
		t.Fatalf("delivered = %d", l.Delivered)
	}
	if l.Attempts != 4 { // 1 + 1+2 retries
		t.Fatalf("attempts = %d", l.Attempts)
	}
	q, s, n, r := l.Breakdown()
	if q != 1 || s != 0 || n != 7 || r != 3 {
		t.Fatalf("breakdown = %g %g %g %g", q, s, n, r)
	}
	if l.MeanTotal() != 11 {
		t.Fatalf("mean total = %g", l.MeanTotal())
	}
	if l.ByType[Meta].N() != 1 || l.ByType[Data].N() != 1 {
		t.Fatal("per-type accounting wrong")
	}
}

func TestTracerRing(t *testing.T) {
	tr := NewTracer(3)
	for i := 1; i <= 5; i++ {
		tr.Record(&Packet{ID: uint64(i), Type: Meta, NetworkDelay: int64(i)}, 0)
	}
	got := tr.Entries()
	if len(got) != 3 {
		t.Fatalf("ring holds %d, want 3", len(got))
	}
	if got[0].ID != 3 || got[2].ID != 5 {
		t.Fatalf("oldest-first order wrong: %v", got)
	}
	if !stringsContains(tr.String(), "retries") {
		t.Fatal("header missing")
	}
}

func TestTracerPartial(t *testing.T) {
	tr := NewTracer(8)
	tr.Record(&Packet{ID: 9}, 4)
	got := tr.Entries()
	if len(got) != 1 || got[0].ID != 9 || got[0].At != 4 {
		t.Fatalf("partial ring: %v", got)
	}
	if NewTracer(0).ring == nil {
		t.Fatal("default size must apply")
	}
}

func stringsContains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
