// Package noctest is the shared conformance harness for noc.Network
// implementations. Every interconnect in the repository — the FSOI
// core, the electrical mesh baselines, and each member of the optnet
// topology zoo — must uphold the same transport contract the coherence
// substrate assumes; this harness turns that contract into one
// reusable test:
//
//   - exactly-once delivery: every accepted packet is delivered exactly
//     once after the network drains, and none is invented;
//   - latency accounting: LatencyStats matches the delivery transcript
//     (Delivered count, per-packet non-negative latencies);
//   - in-order delivery per (src, dst) pair, for networks that declare
//     it (FSOI's collision backoff may reorder; the system layer
//     restores per-line order above it);
//   - deterministic replay: two runs from the same seed produce
//     identical delivery transcripts, cycle for cycle;
//   - shard invariance: when Shards is set, the same run on the exact
//     sharded engine (internal/sim/shard) reproduces the serial
//     transcript byte for byte at every shard count;
//   - windowed invariance: when Windowed is set, the same run on the
//     windowed parallel engine (shard.Windows) reproduces its own
//     1-worker replay byte for byte at every worker and shard count.
package noctest

import (
	"fmt"
	"sort"
	"testing"

	"fsoi/internal/noc"
	"fsoi/internal/sim"
	"fsoi/internal/sim/shard"
)

// Harness drives one noc.Network implementation through the
// conformance checks.
type Harness struct {
	// Name labels the subtests.
	Name string
	// Build constructs a fresh network over the engine. The RNG is the
	// run's root; deterministic networks ignore it.
	Build func(engine sim.Scheduler, rng *sim.RNG) noc.Network
	// Nodes is the endpoint count packets are addressed within.
	Nodes int
	// Shards lists sharded-engine shard counts to replay the run at.
	// Each must reproduce the serial transcript exactly — the sharded
	// engine's whole contract. Nil checks the serial engine only.
	Shards []int
	// Windowed lists windowed-engine worker counts to replay the run
	// at. The windowed engine executes a conservatively windowed
	// schedule — legally different from the serial one — so its
	// reference is its own 1-worker replay (same engine, no
	// goroutines): every listed worker count, and every shard count in
	// WindowedShards, must reproduce that transcript byte for byte.
	// Requires a network that declares noc.Lookaheader, ticks per node
	// (TickNode), and keeps every event in the touched node's context.
	Windowed []int
	// WindowedShards lists the windowed partitions to replay at; the
	// first entry is the reference partition (default: 4 shards).
	WindowedShards []int
	// Ordered enables the per-(src,dst) in-order check.
	Ordered bool
	// Seed feeds both the network and the traffic pattern.
	Seed uint64
	// Packets is the number of injection attempts (default 400).
	Packets int
	// DrainCycles bounds the run (default 200000).
	DrainCycles sim.Cycle
}

// delivery is one line of the run transcript.
type delivery struct {
	at       sim.Cycle
	id       uint64
	src, dst int
	latency  int64
}

// transcript is the full deterministic outcome of one run.
type transcript struct {
	accepted   []uint64
	deliveries []delivery
	sendOrder  map[[2]int][]uint64 // accepted ids per (src,dst), send order
	delivered  int64               // LatencyStats().Delivered after the run
	totalN     int64               // LatencyStats().Total.N()
}

// run executes one seeded traffic pattern against a fresh network on
// the serial engine (shards <= 1) or the exact sharded engine.
func (h Harness) run(t *testing.T, shards int) transcript {
	t.Helper()
	packets := h.Packets
	if packets == 0 {
		packets = 400
	}
	drain := h.DrainCycles
	if drain == 0 {
		drain = 200000
	}
	var engine sim.Driver
	if shards > 1 {
		se := shard.New(shards)
		se.AssignNodes(h.Nodes)
		engine = se
	} else {
		engine = sim.NewEngine()
	}
	net := h.Build(engine, sim.NewRNG(h.Seed))
	if la, ok := net.(noc.Lookaheader); ok {
		if se, isShard := engine.(*shard.Engine); isShard {
			se.SetLookahead(la.Lookahead())
		}
	}
	tr := transcript{sendOrder: map[[2]int][]uint64{}}
	net.SetDelivery(func(p *noc.Packet, now sim.Cycle) {
		tr.deliveries = append(tr.deliveries, delivery{
			at: now, id: p.ID, src: p.Src, dst: p.Dst, latency: p.TotalLatency(),
		})
	})
	engine.Register(sim.TickFunc(net.Tick))

	// The traffic stream is seeded independently of the network's RNG
	// tree so the pattern is identical for every implementation.
	traffic := sim.NewRNG(h.Seed ^ 0xda7a).NewStream("noctest-traffic")
	id := uint64(0)
	// Spread injections over time: a few packets every fourth cycle.
	for burst := 0; burst < packets/4; burst++ {
		at := sim.Cycle(1 + burst*4)
		// Draw the burst's packets now so the RNG consumption order is
		// fixed regardless of how the engine interleaves events.
		pkts := make([]*noc.Packet, 4)
		for i := range pkts {
			src := traffic.Intn(h.Nodes)
			dst := traffic.Intn(h.Nodes - 1)
			if dst >= src {
				dst++ // uniform over dst != src
			}
			typ := noc.Meta
			if traffic.Bool(0.4) {
				typ = noc.Data
			}
			id++
			pkts[i] = &noc.Packet{ID: id, Src: src, Dst: dst, Type: typ}
		}
		engine.At(at, func(now sim.Cycle) {
			for _, p := range pkts {
				if net.Send(p) {
					tr.accepted = append(tr.accepted, p.ID)
					key := [2]int{p.Src, p.Dst}
					tr.sendOrder[key] = append(tr.sendOrder[key], p.ID)
				}
			}
		})
	}
	engine.Run(drain)
	tr.delivered = net.LatencyStats().Delivered
	tr.totalN = net.LatencyStats().Total.N()
	return tr
}

// runWindowed executes the same seeded traffic pattern on the windowed
// parallel engine. Unlike run, every recording structure is owned by
// exactly one node — shards execute concurrently, so a shared append
// would race — and the injection events are scheduled on each source's
// own proxy so Send executes in the node context the engine requires.
func (h Harness) runWindowed(t *testing.T, shards, workers int) transcript {
	t.Helper()
	packets := h.Packets
	if packets == 0 {
		packets = 400
	}
	drain := h.DrainCycles
	if drain == 0 {
		drain = 200000
	}
	eng := shard.NewWindows(shards, workers)
	eng.AssignNodes(h.Nodes)
	defer eng.Close()
	net := h.Build(eng, sim.NewRNG(h.Seed))
	la, ok := net.(noc.Lookaheader)
	if !ok {
		t.Fatal("windowed replay needs the network to declare its lookahead (noc.Lookaheader)")
	}
	eng.SetLookahead(la.Lookahead())
	ticker, ok := net.(interface {
		TickNode(id int, now sim.Cycle)
	})
	if !ok {
		t.Fatal("windowed replay needs per-node ticking (TickNode)")
	}
	for i := 0; i < h.Nodes; i++ {
		id := i
		eng.ForNode(i).Register(sim.TickFunc(func(now sim.Cycle) { ticker.TickNode(id, now) }))
	}

	type sent struct {
		dst int
		id  uint64
	}
	acceptedBy := make([][]sent, h.Nodes)
	deliveredTo := make([][]delivery, h.Nodes)
	net.SetDelivery(func(p *noc.Packet, now sim.Cycle) {
		deliveredTo[p.Dst] = append(deliveredTo[p.Dst], delivery{
			at: now, id: p.ID, src: p.Src, dst: p.Dst, latency: p.TotalLatency(),
		})
	})

	// Same traffic stream, same draw order as the serial run.
	traffic := sim.NewRNG(h.Seed ^ 0xda7a).NewStream("noctest-traffic")
	id := uint64(0)
	for burst := 0; burst < packets/4; burst++ {
		at := sim.Cycle(1 + burst*4)
		for i := 0; i < 4; i++ {
			src := traffic.Intn(h.Nodes)
			dst := traffic.Intn(h.Nodes - 1)
			if dst >= src {
				dst++ // uniform over dst != src
			}
			typ := noc.Meta
			if traffic.Bool(0.4) {
				typ = noc.Data
			}
			id++
			p := &noc.Packet{ID: id, Src: src, Dst: dst, Type: typ}
			eng.ForNode(src).At(at, func(now sim.Cycle) {
				if net.Send(p) {
					acceptedBy[p.Src] = append(acceptedBy[p.Src], sent{p.Dst, p.ID})
				}
			})
		}
	}
	eng.Run(drain)

	// Merge the node-owned records into one transcript. Each node's
	// stream is invariant across worker and shard counts, so a stable
	// sort of their concatenation is too.
	tr := transcript{sendOrder: map[[2]int][]uint64{}}
	for src, list := range acceptedBy {
		for _, s := range list {
			tr.accepted = append(tr.accepted, s.id)
			key := [2]int{src, s.dst}
			tr.sendOrder[key] = append(tr.sendOrder[key], s.id)
		}
	}
	for _, list := range deliveredTo {
		tr.deliveries = append(tr.deliveries, list...)
	}
	sort.SliceStable(tr.deliveries, func(i, j int) bool {
		a, b := tr.deliveries[i], tr.deliveries[j]
		if a.at != b.at {
			return a.at < b.at
		}
		return a.id < b.id
	})
	tr.delivered = net.LatencyStats().Delivered
	tr.totalN = net.LatencyStats().Total.N()
	return tr
}

// Run executes the conformance suite as subtests of t.
func (h Harness) Run(t *testing.T) {
	t.Helper()
	t.Run(h.Name, func(t *testing.T) {
		first := h.run(t, 1)
		h.checkExactlyOnce(t, first)
		h.checkLatencyAccounting(t, first)
		if h.Ordered {
			h.checkInOrder(t, first)
		}
		h.checkReplay(t, first)
		for _, k := range h.Shards {
			h.checkShardInvariance(t, first, k)
		}
		if len(h.Windowed) > 0 {
			h.checkWindowedInvariance(t)
		}
	})
}

// checkWindowedInvariance runs the windowed suite: a 1-worker windowed
// reference (held to the exactly-once and accounting contracts), then
// byte-identical replays at every listed worker count and partition.
func (h Harness) checkWindowedInvariance(t *testing.T) {
	t.Helper()
	shards := h.WindowedShards
	if len(shards) == 0 {
		shards = []int{4}
	}
	ref := h.runWindowed(t, shards[0], 1)
	h.checkExactlyOnce(t, ref)
	h.checkLatencyAccounting(t, ref)
	for _, workers := range h.Windowed {
		if workers <= 1 {
			continue // the reference itself
		}
		got := h.runWindowed(t, shards[0], workers)
		h.compareTranscripts(t, fmt.Sprintf("windowed %d-worker run", workers), ref, got)
	}
	for _, k := range shards[1:] {
		got := h.runWindowed(t, k, 2)
		h.compareTranscripts(t, fmt.Sprintf("windowed %d-shard run", k), ref, got)
	}
}

// checkExactlyOnce verifies the drain delivered every accepted packet
// exactly once and nothing else.
func (h Harness) checkExactlyOnce(t *testing.T, tr transcript) {
	t.Helper()
	if len(tr.accepted) == 0 {
		t.Fatal("traffic pattern injected nothing; harness misconfigured")
	}
	seen := make(map[uint64]int, len(tr.deliveries))
	for _, d := range tr.deliveries {
		seen[d.id]++
	}
	for _, id := range tr.accepted {
		switch seen[id] {
		case 1:
		case 0:
			t.Fatalf("packet %d accepted but never delivered (%d of %d arrived)",
				id, len(tr.deliveries), len(tr.accepted))
		default:
			t.Fatalf("packet %d delivered %d times", id, seen[id])
		}
	}
	if len(tr.deliveries) != len(tr.accepted) {
		t.Fatalf("delivered %d packets but accepted %d", len(tr.deliveries), len(tr.accepted))
	}
}

// checkLatencyAccounting verifies LatencyStats agrees with the
// transcript.
func (h Harness) checkLatencyAccounting(t *testing.T, tr transcript) {
	t.Helper()
	if tr.delivered != int64(len(tr.deliveries)) {
		t.Fatalf("LatencyStats.Delivered = %d, transcript has %d", tr.delivered, len(tr.deliveries))
	}
	if tr.totalN != int64(len(tr.deliveries)) {
		t.Fatalf("LatencyStats.Total.N() = %d, transcript has %d", tr.totalN, len(tr.deliveries))
	}
	for _, d := range tr.deliveries {
		if d.latency < 0 {
			t.Fatalf("packet %d reports negative latency %d", d.id, d.latency)
		}
	}
}

// checkInOrder verifies per-(src,dst) delivery follows send order.
func (h Harness) checkInOrder(t *testing.T, tr transcript) {
	t.Helper()
	pos := map[[2]int]int{}
	for _, d := range tr.deliveries {
		key := [2]int{d.src, d.dst}
		want := tr.sendOrder[key]
		i := pos[key]
		if i >= len(want) || want[i] != d.id {
			t.Fatalf("pair %d->%d delivered packet %d out of send order (position %d of %v)",
				d.src, d.dst, d.id, i, want)
		}
		pos[key] = i + 1
	}
}

// checkReplay verifies a second run from the same seed reproduces the
// transcript exactly.
func (h Harness) checkReplay(t *testing.T, first transcript) {
	t.Helper()
	second := h.run(t, 1)
	h.compareTranscripts(t, "replay", first, second)
}

// checkShardInvariance verifies the same run on the exact sharded
// engine at the given shard count reproduces the serial transcript.
func (h Harness) checkShardInvariance(t *testing.T, first transcript, shards int) {
	t.Helper()
	sharded := h.run(t, shards)
	h.compareTranscripts(t, fmt.Sprintf("%d-shard run", shards), first, sharded)
}

// compareTranscripts fails on the first delivery where two transcripts
// of the same traffic pattern diverge.
func (h Harness) compareTranscripts(t *testing.T, label string, first, second transcript) {
	t.Helper()
	if len(first.deliveries) != len(second.deliveries) {
		t.Fatalf("%s delivered %d packets, first run %d", label, len(second.deliveries), len(first.deliveries))
	}
	for i := range first.deliveries {
		if first.deliveries[i] != second.deliveries[i] {
			t.Fatalf("%s diverges at delivery %d:\n first: %s\nsecond: %s",
				label, i, fmtDelivery(first.deliveries[i]), fmtDelivery(second.deliveries[i]))
		}
	}
}

// fmtDelivery renders one transcript line for failure messages.
func fmtDelivery(d delivery) string {
	return fmt.Sprintf("cycle %d id %d %d->%d latency %d", int64(d.at), d.id, d.src, d.dst, d.latency)
}
