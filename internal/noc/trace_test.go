package noc

import (
	"strings"
	"testing"

	"fsoi/internal/sim"
)

// TestTracerRingWraparound: a 4-entry ring fed 6 packets keeps the last
// 4, oldest first.
func TestTracerRingWraparound(t *testing.T) {
	tr := NewTracer(4)
	for i := 1; i <= 6; i++ {
		tr.Record(&Packet{ID: uint64(i), Src: i, Dst: i + 1}, sim.Cycle(i*10))
	}
	got := tr.Entries()
	if len(got) != 4 {
		t.Fatalf("entries = %d, want 4", len(got))
	}
	for i, want := range []uint64{3, 4, 5, 6} {
		if got[i].ID != want {
			t.Fatalf("entry %d id = %d, want %d (oldest-first order)", i, got[i].ID, want)
		}
	}
}

func TestTracerPartialFill(t *testing.T) {
	tr := NewTracer(8)
	tr.Record(&Packet{ID: 7}, 1)
	tr.Record(&Packet{ID: 8}, 2)
	got := tr.Entries()
	if len(got) != 2 || got[0].ID != 7 || got[1].ID != 8 {
		t.Fatalf("partial ring wrong: %+v", got)
	}
}

// TestTracerRecordsDrops pins the fix for the delivered-only blind
// spot: dropped packets land in the ring with a terminal status, so a
// drop storm is distinguishable from silence in -trace output.
func TestTracerRecordsDrops(t *testing.T) {
	tr := NewTracer(4)
	tr.Record(&Packet{ID: 1, Src: 0, Dst: 1}, 100)
	tr.RecordStatus(&Packet{ID: 2, Src: 2, Dst: 3, Retries: 9}, 200, StatusDropped)
	got := tr.Entries()
	if len(got) != 2 {
		t.Fatalf("entries = %d, want 2", len(got))
	}
	if got[0].Status != StatusDelivered || got[1].Status != StatusDropped {
		t.Fatalf("statuses = %v/%v, want delivered/DROPPED", got[0].Status, got[1].Status)
	}
	out := tr.String()
	if !strings.Contains(out, "delivered") || !strings.Contains(out, "DROPPED") {
		t.Fatalf("rendered trace must show both fates:\n%s", out)
	}
}
