// Package noc defines the abstractions shared by every interconnect
// implementation in this repository (the FSOI network, the electrical
// mesh baselines, the corona-style ring, and the ideal networks): packets,
// lanes, the Network interface the coherence substrate talks to, and the
// per-packet latency breakdown reported in the paper's Figures 6 and 7.
package noc

import (
	"fmt"

	"fsoi/internal/sim"
	"fsoi/internal/stats"
)

// PacketType separates the two traffic classes the paper slots
// independently: short meta packets (requests, acknowledgments) and long
// data packets (cache lines).
type PacketType uint8

const (
	// Meta is a 72-bit control packet: 1 mesh flit, a 2-cycle FSOI slot.
	Meta PacketType = iota
	// Data is a 360-bit cache-line packet: 5 mesh flits, a 5-cycle slot.
	Data
	numPacketTypes
)

// String names the packet type.
func (t PacketType) String() string {
	switch t {
	case Meta:
		return "meta"
	case Data:
		return "data"
	}
	return fmt.Sprintf("PacketType(%d)", uint8(t))
}

// Bits returns the packet length on the wire.
func (t PacketType) Bits() int {
	if t == Data {
		return 360
	}
	return 72
}

// FlitBits is the mesh flit width (Table 3).
const FlitBits = 72

// Flits returns the packet length in mesh flits.
func (t PacketType) Flits() int { return t.Bits() / FlitBits }

// Packet is one message in flight. Networks annotate the latency
// breakdown fields as the packet moves; the payload is opaque to the
// network layer (the coherence substrate stores its message there).
type Packet struct {
	ID      uint64
	Src     int
	Dst     int
	Type    PacketType
	Payload any

	// IsReply marks packets that answer an earlier request; the FSOI
	// receiver-scheduling optimization exploits the predictable timing of
	// replies (§5.2).
	IsReply bool
	// IsWriteback marks eviction data, which the split-transaction
	// optimization schedules explicitly.
	IsWriteback bool
	// IsMemory marks packets to or from the memory controllers.
	IsMemory bool
	// ExpectsDataReply marks requests whose answer is a data packet; the
	// FSOI receiver-scheduling optimization spaces such requests so the
	// replies land in free receiver slots.
	ExpectsDataReply bool
	// Created is the cycle the packet was handed to the network.
	Created sim.Cycle

	// Latency breakdown, in cycles, filled in by the network.
	QueuingDelay    int64 // waiting in the source queue for lane/port
	SchedulingDelay int64 // intentional delay (slot alignment, spacing)
	NetworkDelay    int64 // serialization + flight + router pipelines
	ResolutionDelay int64 // collision resolution (FSOI) / none elsewhere
	Retries         int   // transmission attempts beyond the first
}

// TotalLatency is the end-to-end packet latency in cycles.
func (p *Packet) TotalLatency() int64 {
	return p.QueuingDelay + p.SchedulingDelay + p.NetworkDelay + p.ResolutionDelay
}

// DeliveryFunc receives packets as they arrive at their destination.
type DeliveryFunc func(p *Packet, now sim.Cycle)

// Network is the contract between the coherence substrate and an
// interconnect. Implementations are single-threaded and driven by Tick.
type Network interface {
	// Send enqueues a packet at its source node's interface. It reports
	// false when the outgoing queue is full; the caller retries later
	// (the paper's outgoing queues hold 8 packets per lane).
	Send(p *Packet) bool
	// SetDelivery installs the destination callback. Must be called
	// before the first Tick.
	SetDelivery(fn DeliveryFunc)
	// Tick advances the network one cycle.
	Tick(now sim.Cycle)
	// Name identifies the configuration ("fsoi", "mesh4", "L0", ...).
	Name() string
	// LatencyStats exposes the accumulated per-packet measurements.
	LatencyStats() *LatencyStats
}

// Lookaheader is optionally implemented by networks that can declare a
// conservative lookahead window: a lower bound, in cycles, on how far
// in the future any cross-node interaction lands. The sharded engine
// (internal/sim/shard) sizes its epochs from this — FSOI declares its
// fixed +2-cycle confirmation delay, the mesh its 1-cycle link
// traversal. A network that cannot bound its interactions simply does
// not implement the interface and runs serial-only.
type Lookaheader interface {
	Lookahead() sim.Cycle
}

// ScheduleAt schedules fn at cycle at on the shard that owns node when
// the engine shards, falling back to a plain At on the serial engine.
// Networks route a packet's resolution, delivery, and confirmation
// events through it so each fires on the involved node's home shard;
// on the serial engine the two paths are the same queue, so behaviour
// is identical by construction.
func ScheduleAt(engine sim.Scheduler, node int, at sim.Cycle, fn func(now sim.Cycle)) {
	if s, ok := engine.(sim.Sharder); ok {
		s.Handoff(s.NodeShard(node), at, fn)
		return
	}
	engine.At(at, fn)
}

// LatencyStats accumulates the Figure 6/7 breakdown.
type LatencyStats struct {
	Queuing    stats.Summary
	Scheduling stats.Summary
	Network    stats.Summary
	Resolution stats.Summary
	Total      stats.Summary
	ByType     [numPacketTypes]stats.Summary
	Delivered  int64
	Collisions int64 // FSOI only
	Attempts   int64 // transmissions including retries
}

// Record folds one delivered packet into the statistics.
func (l *LatencyStats) Record(p *Packet) {
	l.Queuing.Add(float64(p.QueuingDelay))
	l.Scheduling.Add(float64(p.SchedulingDelay))
	l.Network.Add(float64(p.NetworkDelay))
	l.Resolution.Add(float64(p.ResolutionDelay))
	l.Total.Add(float64(p.TotalLatency()))
	l.ByType[p.Type].Add(float64(p.TotalLatency()))
	l.Delivered++
	l.Attempts += int64(1 + p.Retries)
}

// Merge folds other into l. Networks that keep per-node accumulators
// (so every Record happens on the recording node's own shard) merge
// them in node order at read time; the merge sequence is then a pure
// function of the node count, so the aggregate is identical at every
// shard and worker count.
func (l *LatencyStats) Merge(other *LatencyStats) {
	l.Queuing.Merge(&other.Queuing)
	l.Scheduling.Merge(&other.Scheduling)
	l.Network.Merge(&other.Network)
	l.Resolution.Merge(&other.Resolution)
	l.Total.Merge(&other.Total)
	for i := range l.ByType {
		l.ByType[i].Merge(&other.ByType[i])
	}
	l.Delivered += other.Delivered
	l.Collisions += other.Collisions
	l.Attempts += other.Attempts
}

// Breakdown returns the four mean components in figure order.
func (l *LatencyStats) Breakdown() (queuing, scheduling, network, resolution float64) {
	return l.Queuing.Mean(), l.Scheduling.Mean(), l.Network.Mean(), l.Resolution.Mean()
}

// MeanTotal returns the mean end-to-end latency.
func (l *LatencyStats) MeanTotal() float64 { return l.Total.Mean() }
