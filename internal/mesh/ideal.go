package mesh

import (
	"fmt"

	"fsoi/internal/noc"
	"fsoi/internal/sim"
)

// Ideal models the contention-free comparison networks of §7.1:
//
//   - L0: a packet experiences only source queuing plus serialization
//     (1 cycle for meta, 5 for data) — an idealized interconnect.
//   - Lr1/Lr2: L0 plus, per mesh hop, 1 cycle of link traversal and
//     RouterCycles (1 or 2) of router processing, with no contention or
//     queuing inside the network.
type Ideal struct {
	dim          int
	routerCycles int // per-hop router cycles; < 0 selects pure L0
	linkCycles   int
	injectQueue  int
	engine       sim.Scheduler
	deliverFn    noc.DeliveryFunc
	lat          noc.LatencyStats

	queues   [][]*noc.Packet
	busyTill []sim.Cycle // per-node serializer availability
}

// NewL0 builds the idealized zero-latency network.
func NewL0(dim int, engine sim.Scheduler) *Ideal {
	return &Ideal{dim: dim, routerCycles: -1, linkCycles: 0, injectQueue: 16, engine: engine,
		queues: make([][]*noc.Packet, dim*dim), busyTill: make([]sim.Cycle, dim*dim)}
}

// NewLr builds the hop-latency network with the given per-hop router
// cycles (1 => Lr1, 2 => Lr2).
func NewLr(dim, routerCycles int, engine sim.Scheduler) *Ideal {
	return &Ideal{dim: dim, routerCycles: routerCycles, linkCycles: 1, injectQueue: 16, engine: engine,
		queues: make([][]*noc.Packet, dim*dim), busyTill: make([]sim.Cycle, dim*dim)}
}

// Name identifies the configuration.
func (n *Ideal) Name() string {
	if n.routerCycles < 0 {
		return "L0"
	}
	return fmt.Sprintf("Lr%d", n.routerCycles)
}

// LatencyStats exposes accumulated measurements.
func (n *Ideal) LatencyStats() *noc.LatencyStats { return &n.lat }

// Lookahead declares the ideal networks' cross-shard window: delivery
// is never sooner than the one-cycle serialization of the first flit.
func (n *Ideal) Lookahead() sim.Cycle { return 1 }

// SetDelivery installs the destination callback.
func (n *Ideal) SetDelivery(fn noc.DeliveryFunc) { n.deliverFn = fn }

// Send enqueues a packet at its source NIC.
func (n *Ideal) Send(p *noc.Packet) bool {
	if len(n.queues[p.Src]) >= n.injectQueue {
		return false
	}
	p.Created = n.engine.Now()
	n.queues[p.Src] = append(n.queues[p.Src], p)
	return true
}

// hops returns the Manhattan distance between two nodes.
func (n *Ideal) hops(a, b int) int {
	ax, ay := a%n.dim, a/n.dim
	bx, by := b%n.dim, b/n.dim
	dx, dy := ax-bx, ay-by
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// Tick serializes at most one packet start per node per cycle and
// schedules its contention-free delivery.
func (n *Ideal) Tick(now sim.Cycle) {
	for node := range n.queues {
		if len(n.queues[node]) == 0 || n.busyTill[node] > now {
			continue
		}
		p := n.queues[node][0]
		n.queues[node] = n.queues[node][1:]
		ser := sim.Cycle(p.Type.Flits())
		n.busyTill[node] = now + ser
		p.QueuingDelay = int64(now - p.Created)
		network := ser
		if n.routerCycles >= 0 {
			h := n.hops(p.Src, p.Dst)
			network += sim.Cycle(h * (n.linkCycles + n.routerCycles))
		}
		p.NetworkDelay = int64(network)
		noc.ScheduleAt(n.engine, p.Dst, now+network, func(at sim.Cycle) {
			n.lat.Record(p)
			if n.deliverFn != nil {
				n.deliverFn(p, at)
			}
		})
	}
}
