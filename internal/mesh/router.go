// Package mesh implements the paper's electrical baselines: a 2-D mesh of
// canonical 4-stage virtual-channel wormhole routers with credit-based
// flow control and XY routing (the "MESH" configuration of Figures 6/7),
// and the idealized L0 / Lr1 / Lr2 networks used as loose upper bounds.
package mesh

import (
	"fsoi/internal/noc"
	"fsoi/internal/sim"
)

// port indices within a router.
const (
	portLocal = iota
	portNorth
	portSouth
	portEast
	portWest
	numPorts
)

// flit is the unit of buffering and link transfer.
type flit struct {
	pkt     *noc.Packet
	head    bool
	tail    bool
	readyAt sim.Cycle // cycle at which the router pipeline releases it
}

// vc is one virtual-channel input FIFO and its wormhole state.
type vc struct {
	fifo    []flit
	outPort int // routed output for the current packet (-1 = not routed)
	outVC   int // downstream VC held by the current packet (-1 = none)
}

// outputState tracks the downstream side of one output port.
type outputState struct {
	creditsPerVC []int  // credits available toward the downstream input VC
	vcHeld       []bool // whether a downstream VC is currently allocated
	lastVC       int    // round-robin pointer for VC allocation
	lastInput    int    // round-robin pointer for switch allocation
}

// router is a canonical input-queued VC router. The 4-stage pipeline
// (route computation, VC allocation, switch allocation, switch traversal)
// is modeled by delaying each flit RouterCycles after arrival before it
// may traverse, with allocation contention resolved cycle by cycle.
type router struct {
	id      int
	cfg     Config
	inputs  [numPorts][]*vc
	outputs [numPorts]*outputState
	// neighbor[p] is the router on port p, nil at mesh edges / local.
	neighbor [numPorts]*router
	// reverse[p] is the port index of this router as seen by neighbor[p].
	reverse [numPorts]int
	net     *Network
}

func newRouter(id int, cfg Config, net *Network) *router {
	r := &router{id: id, cfg: cfg, net: net}
	for p := 0; p < numPorts; p++ {
		r.inputs[p] = make([]*vc, cfg.VCs)
		for v := range r.inputs[p] {
			r.inputs[p][v] = &vc{outPort: -1, outVC: -1}
		}
		out := &outputState{
			creditsPerVC: make([]int, cfg.VCs),
			vcHeld:       make([]bool, cfg.VCs),
		}
		for v := range out.creditsPerVC {
			out.creditsPerVC[v] = cfg.BufferFlits
		}
		r.outputs[p] = out
	}
	return r
}

// xyRoute computes the output port for dst under dimension-order routing.
func (r *router) xyRoute(dst int) int {
	dim := r.cfg.Dim
	myX, myY := r.id%dim, r.id/dim
	dX, dY := dst%dim, dst/dim
	switch {
	case dX > myX:
		return portEast
	case dX < myX:
		return portWest
	case dY > myY:
		return portSouth
	case dY < myY:
		return portNorth
	default:
		return portLocal
	}
}

// acceptFlit buffers a flit arriving on input port p, VC v.
func (r *router) acceptFlit(p, v int, f flit, now sim.Cycle) {
	f.readyAt = now + sim.Cycle(r.cfg.RouterCycles)
	r.inputs[p][v].fifo = append(r.inputs[p][v].fifo, f)
}

// tick performs one cycle of allocation and traversal. Determinism comes
// from fixed iteration order with rotating round-robin pointers.
func (r *router) tick(now sim.Cycle) {
	// Stage 1: route computation + VC allocation for head flits at the
	// front of each input VC.
	for p := 0; p < numPorts; p++ {
		for v := 0; v < r.cfg.VCs; v++ {
			in := r.inputs[p][v]
			if len(in.fifo) == 0 {
				continue
			}
			f := in.fifo[0]
			if !f.head || f.readyAt > now {
				continue
			}
			if in.outPort < 0 {
				in.outPort = r.xyRoute(f.pkt.Dst)
			}
			if in.outVC < 0 && in.outPort != portLocal {
				out := r.outputs[in.outPort]
				for i := 0; i < r.cfg.VCs; i++ {
					cand := (out.lastVC + 1 + i) % r.cfg.VCs
					if !out.vcHeld[cand] {
						out.vcHeld[cand] = true
						out.lastVC = cand
						in.outVC = cand
						break
					}
				}
			}
		}
	}

	// Stage 2: switch allocation + traversal. Each output accepts at most
	// one flit per cycle; each input VC sends at most one flit per cycle.
	for outPort := 0; outPort < numPorts; outPort++ {
		out := r.outputs[outPort]
		claimed := false
		for i := 0; i < numPorts*r.cfg.VCs && !claimed; i++ {
			idx := (out.lastInput + 1 + i) % (numPorts * r.cfg.VCs)
			p, v := idx/r.cfg.VCs, idx%r.cfg.VCs
			in := r.inputs[p][v]
			if len(in.fifo) == 0 || in.outPort != outPort {
				continue
			}
			f := in.fifo[0]
			if f.readyAt > now {
				continue
			}
			if outPort == portLocal {
				// Ejection: consume the flit; deliver on tail.
				r.consume(in, p, v, f, now)
				out.lastInput = idx
				claimed = true
				continue
			}
			if in.outVC < 0 || out.creditsPerVC[in.outVC] <= 0 {
				continue
			}
			// Traverse switch and link: arrives downstream after link
			// latency.
			out.creditsPerVC[in.outVC]--
			r.forward(in, p, v, f, outPort, now)
			out.lastInput = idx
			claimed = true
		}
	}
}

// consume ejects a flit at the local port.
func (r *router) consume(in *vc, p, v int, f flit, now sim.Cycle) {
	in.fifo = in.fifo[1:]
	r.returnCredit(p, v)
	if f.tail {
		in.outPort, in.outVC = -1, -1
		r.net.deliver(f.pkt, now)
	}
}

// forward moves a flit to the downstream router.
func (r *router) forward(in *vc, p, v int, f flit, outPort int, now sim.Cycle) {
	in.fifo = in.fifo[1:]
	r.returnCredit(p, v)
	next := r.neighbor[outPort]
	dstPort := r.reverse[outPort]
	dstVC := in.outVC
	if f.tail {
		// Release the downstream VC once the tail is in flight; the
		// downstream hold is released when the tail leaves that buffer,
		// approximated here by releasing on hand-off, which is safe
		// because credits still bound buffer occupancy.
		r.outputs[outPort].vcHeld[dstVC] = false
		in.outPort, in.outVC = -1, -1
	}
	// The downstream router may live on another shard: hand the flit to
	// the engine through the shard-aware router so it lands on the
	// owner's queue. The link traversal is exactly the Lookahead()
	// window, so the hand-off always clears the epoch horizon.
	arrival := now + sim.Cycle(r.cfg.LinkCycles)
	noc.ScheduleAt(r.net.engine, next.id, arrival, func(at sim.Cycle) {
		next.acceptFlit(dstPort, dstVC, f, at)
	})
}

// returnCredit gives a buffer slot back to the upstream router.
func (r *router) returnCredit(p, v int) {
	if p == portLocal {
		r.net.injectCredit(r.id, v)
		return
	}
	up := r.neighbor[p]
	if up == nil {
		return
	}
	upPort := r.reverse[p]
	up.outputs[upPort].creditsPerVC[v]++
}
