package mesh

import (
	"fmt"

	"fsoi/internal/noc"
	"fsoi/internal/sim"
)

// Config parameterizes the mesh baseline.
type Config struct {
	Dim          int // nodes per edge (4 => 16 nodes)
	VCs          int // virtual channels per input port (Table 3: 4)
	BufferFlits  int // buffer depth per input VC, flits (Table 3: 12)
	RouterCycles int // router pipeline depth (baseline: 4)
	LinkCycles   int // link traversal (1)
	InjectQueue  int // packets buffered at the source NIC
	// BandwidthFrac (0 < f <= 1, default 1) throttles injection to model
	// the Figure 11 bandwidth sweep: narrower channels inject flits at a
	// fractional rate.
	BandwidthFrac float64
}

// PaperMesh returns the baseline configuration of Table 3.
func PaperMesh(dim int) Config {
	return Config{Dim: dim, VCs: 4, BufferFlits: 12, RouterCycles: 4, LinkCycles: 1, InjectQueue: 16}
}

// Network is a full contention-modeled 2-D mesh.
type Network struct {
	cfg       Config
	engine    sim.Scheduler
	routers   []*router
	deliverFn noc.DeliveryFunc
	lat       noc.LatencyStats

	// Per-node injection state.
	queues    [][]*noc.Packet
	inflight  []*injection
	vcFree    [][]bool  // whether local input VC v of node i is free for a new packet
	vcCredits [][]int   // credits toward local input VC buffers
	flitHops  int64     // flits x hops, for Orion-style energy accounting
	bwTokens  []float64 // fractional-bandwidth injection credits
}

// FlitHops reports accumulated flit-hop activity (router traversals
// including the ejection hop).
func (n *Network) FlitHops() int64 { return n.flitHops }

// injection tracks a packet mid-serialization into the local port.
type injection struct {
	pkt      *noc.Packet
	vc       int
	sentFlit int
	start    sim.Cycle
}

// New builds a mesh network over the engine.
func New(cfg Config, engine sim.Scheduler) *Network {
	n := &Network{cfg: cfg, engine: engine}
	count := cfg.Dim * cfg.Dim
	n.routers = make([]*router, count)
	for i := range n.routers {
		n.routers[i] = newRouter(i, cfg, n)
	}
	dim := cfg.Dim
	for i, r := range n.routers {
		x, y := i%dim, i/dim
		connect := func(port int, nx, ny int) {
			if nx < 0 || nx >= dim || ny < 0 || ny >= dim {
				return
			}
			r.neighbor[port] = n.routers[ny*dim+nx]
		}
		connect(portEast, x+1, y)
		connect(portWest, x-1, y)
		connect(portSouth, x, y+1)
		connect(portNorth, x, y-1)
		// reverse port mapping: east<->west, north<->south.
		r.reverse[portEast] = portWest
		r.reverse[portWest] = portEast
		r.reverse[portNorth] = portSouth
		r.reverse[portSouth] = portNorth
		r.reverse[portLocal] = portLocal
	}
	if n.cfg.BandwidthFrac <= 0 || n.cfg.BandwidthFrac > 1 {
		n.cfg.BandwidthFrac = 1
	}
	n.bwTokens = make([]float64, count)
	n.queues = make([][]*noc.Packet, count)
	n.inflight = make([]*injection, count)
	n.vcFree = make([][]bool, count)
	n.vcCredits = make([][]int, count)
	for i := 0; i < count; i++ {
		n.vcFree[i] = make([]bool, cfg.VCs)
		n.vcCredits[i] = make([]int, cfg.VCs)
		for v := 0; v < cfg.VCs; v++ {
			n.vcFree[i][v] = true
			n.vcCredits[i][v] = cfg.BufferFlits
		}
	}
	return n
}

// Name identifies the configuration.
func (n *Network) Name() string { return fmt.Sprintf("mesh%d", n.cfg.RouterCycles) }

// LatencyStats exposes accumulated measurements.
func (n *Network) LatencyStats() *noc.LatencyStats { return &n.lat }

// Lookahead declares the mesh's conservative cross-shard window: a
// flit takes at least one link cycle between adjacent routers, so no
// cross-node interaction lands sooner than that.
func (n *Network) Lookahead() sim.Cycle {
	if n.cfg.LinkCycles < 1 {
		return 1
	}
	return sim.Cycle(n.cfg.LinkCycles)
}

// SetDelivery installs the destination callback.
func (n *Network) SetDelivery(fn noc.DeliveryFunc) { n.deliverFn = fn }

// Send enqueues a packet at its source NIC.
func (n *Network) Send(p *noc.Packet) bool {
	q := n.queues[p.Src]
	if len(q) >= n.cfg.InjectQueue {
		return false
	}
	p.Created = n.engine.Now()
	n.queues[p.Src] = append(q, p)
	return true
}

// Tick advances every router and the injection machinery one cycle.
func (n *Network) Tick(now sim.Cycle) {
	for i := range n.routers {
		n.injectTick(i, now)
	}
	for _, r := range n.routers {
		r.tick(now)
	}
}

// injectTick pushes at most one flit of the node's current packet into
// the router's local input port.
func (n *Network) injectTick(node int, now sim.Cycle) {
	if n.cfg.BandwidthFrac < 1 {
		// A narrower channel stretches per-flit serialization (1/frac
		// cycles per flit); the token bank is capped so idle periods do
		// not accumulate burst credit.
		n.bwTokens[node] += n.cfg.BandwidthFrac
		if n.bwTokens[node] > 1 {
			n.bwTokens[node] = 1
		}
		if n.bwTokens[node] < 1 {
			return
		}
	}
	inj := n.inflight[node]
	if inj == nil {
		if len(n.queues[node]) == 0 {
			return
		}
		pkt := n.queues[node][0]
		// Local delivery without entering the network still pays
		// serialization through the local port, matching the baseline
		// simulator's treatment of same-node traffic.
		vc := -1
		for v := 0; v < n.cfg.VCs; v++ {
			if n.vcFree[node][v] && n.vcCredits[node][v] > 0 {
				vc = v
				break
			}
		}
		if vc < 0 {
			return
		}
		n.queues[node] = n.queues[node][1:]
		n.vcFree[node][vc] = false
		inj = &injection{pkt: pkt, vc: vc, start: now}
		n.inflight[node] = inj
		pkt.QueuingDelay = int64(now - pkt.Created)
	}
	if n.vcCredits[node][inj.vc] <= 0 {
		return
	}
	flits := inj.pkt.Type.Flits()
	f := flit{
		pkt:  inj.pkt,
		head: inj.sentFlit == 0,
		tail: inj.sentFlit == flits-1,
	}
	n.vcCredits[node][inj.vc]--
	n.routers[node].acceptFlit(portLocal, inj.vc, f, now)
	if n.cfg.BandwidthFrac < 1 {
		n.bwTokens[node]--
	}
	inj.sentFlit++
	if inj.sentFlit == flits {
		n.vcFree[node][inj.vc] = true
		n.inflight[node] = nil
	}
}

// injectCredit returns a local-port buffer slot for node's VC v.
func (n *Network) injectCredit(node, v int) {
	n.vcCredits[node][v]++
}

// deliver completes a packet at its destination.
func (n *Network) deliver(p *noc.Packet, now sim.Cycle) {
	p.NetworkDelay = int64(now-p.Created) - p.QueuingDelay
	dim := n.cfg.Dim
	dx := p.Src%dim - p.Dst%dim
	dy := p.Src/dim - p.Dst/dim
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	n.flitHops += int64(p.Type.Flits() * (dx + dy + 1))
	n.lat.Record(p)
	if n.deliverFn != nil {
		n.deliverFn(p, now)
	}
}

// NumNodes reports the node count.
func (n *Network) NumNodes() int { return n.cfg.Dim * n.cfg.Dim }
