package mesh

import (
	"testing"

	"fsoi/internal/noc"
	"fsoi/internal/sim"
	"fsoi/internal/sim/shard"
)

// meshTraffic drives an all-to-neighbor burst through a 4x4 mesh on the
// given scheduler and returns the delivered packets in delivery order.
func meshTraffic(t *testing.T, engine sim.Scheduler, run func(sim.Cycle) sim.Cycle, reg func(sim.Ticker)) []*noc.Packet {
	t.Helper()
	n := New(PaperMesh(4), engine)
	var delivered []*noc.Packet
	n.SetDelivery(func(p *noc.Packet, now sim.Cycle) { delivered = append(delivered, p) })
	reg(sim.TickFunc(n.Tick))
	for src := 0; src < 16; src++ {
		for _, dst := range []int{(src + 1) % 16, (src + 5) % 16} {
			typ := noc.Meta
			if src%3 == 0 {
				typ = noc.Data
			}
			if !n.Send(&noc.Packet{Src: src, Dst: dst, Type: typ}) {
				t.Fatalf("send %d->%d rejected", src, dst)
			}
		}
	}
	run(2000)
	return delivered
}

// TestForwardRoutesThroughOwnerShard is the regression test for the
// forward() hazard fsoilint's shardsafety pass flagged: flits crossing
// to a downstream router used to be scheduled with a bare engine.At
// wrapper, which never handed them to the shard owning the receiving
// router. Forward now routes through noc.ScheduleAt, so a sharded run
// must (a) record cross-shard handoffs and (b) stay byte-identical to
// the serial engine in delivery order and per-packet latency.
func TestForwardRoutesThroughOwnerShard(t *testing.T) {
	serialEngine := sim.NewEngine()
	serial := meshTraffic(t, serialEngine, serialEngine.Run, serialEngine.Register)
	if len(serial) != 32 {
		t.Fatalf("serial run delivered %d of 32", len(serial))
	}

	for _, shards := range []int{2, 4} {
		e := shard.New(shards)
		e.AssignNodes(16)
		sharded := meshTraffic(t, e, e.Run, e.Register)
		if e.Handoffs() == 0 {
			t.Fatalf("%d shards: no handoffs recorded — forward() is bypassing noc.ScheduleAt again", shards)
		}
		if len(sharded) != len(serial) {
			t.Fatalf("%d shards: delivered %d packets, serial delivered %d", shards, len(sharded), len(serial))
		}
		for i := range serial {
			s, p := serial[i], sharded[i]
			if s.Src != p.Src || s.Dst != p.Dst || s.TotalLatency() != p.TotalLatency() {
				t.Fatalf("%d shards: packet %d diverged: serial %d->%d lat %d, sharded %d->%d lat %d",
					shards, i, s.Src, s.Dst, s.TotalLatency(), p.Src, p.Dst, p.TotalLatency())
			}
		}
	}
}
