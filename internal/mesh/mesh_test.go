package mesh

import (
	"testing"

	"fsoi/internal/noc"
	"fsoi/internal/sim"
)

func testMesh(t *testing.T, cfg Config) (*Network, *sim.Engine, *[]*noc.Packet) {
	t.Helper()
	engine := sim.NewEngine()
	n := New(cfg, engine)
	delivered := &[]*noc.Packet{}
	n.SetDelivery(func(p *noc.Packet, now sim.Cycle) { *delivered = append(*delivered, p) })
	engine.Register(sim.TickFunc(n.Tick))
	return n, engine, delivered
}

func TestSingleHopDelivery(t *testing.T) {
	n, engine, delivered := testMesh(t, PaperMesh(4))
	p := &noc.Packet{Src: 0, Dst: 1, Type: noc.Meta}
	if !n.Send(p) {
		t.Fatal("send rejected")
	}
	engine.Run(100)
	if len(*delivered) != 1 {
		t.Fatalf("delivered %d", len(*delivered))
	}
	// One intermediate router (4 cycles) + ejection router + links.
	if p.TotalLatency() < 5 || p.TotalLatency() > 20 {
		t.Fatalf("1-hop latency = %d", p.TotalLatency())
	}
}

func TestDiagonalLatencyScalesWithHops(t *testing.T) {
	n, engine, delivered := testMesh(t, PaperMesh(4))
	near := &noc.Packet{Src: 0, Dst: 1, Type: noc.Meta}
	far := &noc.Packet{Src: 5, Dst: 15, Type: noc.Meta}
	n.Send(near)
	n.Send(far)
	engine.Run(200)
	if len(*delivered) != 2 {
		t.Fatal("packets lost")
	}
	if far.TotalLatency() <= near.TotalLatency() {
		t.Fatalf("far %d should exceed near %d", far.TotalLatency(), near.TotalLatency())
	}
}

func TestDataPacketSerialization(t *testing.T) {
	n, engine, delivered := testMesh(t, PaperMesh(4))
	meta := &noc.Packet{Src: 0, Dst: 3, Type: noc.Meta}
	data := &noc.Packet{Src: 12, Dst: 15, Type: noc.Data}
	n.Send(meta)
	n.Send(data)
	engine.Run(300)
	if len(*delivered) != 2 {
		t.Fatal("packets lost")
	}
	if data.TotalLatency() <= meta.TotalLatency() {
		t.Fatal("5-flit data packets must take longer than 1-flit meta on the same route length")
	}
}

func TestLocalDelivery(t *testing.T) {
	n, engine, delivered := testMesh(t, PaperMesh(4))
	p := &noc.Packet{Src: 5, Dst: 5, Type: noc.Meta}
	n.Send(p)
	engine.Run(100)
	if len(*delivered) != 1 {
		t.Fatal("local packet lost")
	}
}

func TestAllToAllStressNoLoss(t *testing.T) {
	n, engine, delivered := testMesh(t, PaperMesh(4))
	rng := sim.NewRNG(5)
	sent := 0
	for cyc := 0; cyc < 2000; cyc++ {
		engine.Run(1)
		for node := 0; node < 16; node++ {
			if rng.Bool(0.08) {
				dst := rng.Intn(16)
				typ := noc.Meta
				if rng.Bool(0.4) {
					typ = noc.Data
				}
				if n.Send(&noc.Packet{Src: node, Dst: dst, Type: typ}) {
					sent++
				}
			}
		}
	}
	engine.Run(20000)
	if len(*delivered) != sent {
		t.Fatalf("delivered %d of %d under stress", len(*delivered), sent)
	}
	if n.FlitHops() == 0 {
		t.Fatal("flit-hop accounting missing")
	}
}

func TestCongestionRaisesLatency(t *testing.T) {
	run := func(rate float64) float64 {
		n, engine, delivered := testMesh(t, PaperMesh(4))
		rng := sim.NewRNG(9)
		for cyc := 0; cyc < 3000; cyc++ {
			engine.Run(1)
			for node := 0; node < 16; node++ {
				if rng.Bool(rate) {
					n.Send(&noc.Packet{Src: node, Dst: rng.Intn(16), Type: noc.Data})
				}
			}
		}
		engine.Run(30000)
		_ = delivered
		return n.LatencyStats().MeanTotal()
	}
	light := run(0.01)
	heavy := run(0.15)
	if heavy <= light*1.2 {
		t.Fatalf("congestion must raise latency: light=%.1f heavy=%.1f", light, heavy)
	}
}

func TestInjectQueueBound(t *testing.T) {
	cfg := PaperMesh(4)
	cfg.InjectQueue = 3
	n, _, _ := testMesh(t, cfg)
	ok := 0
	for i := 0; i < 10; i++ {
		if n.Send(&noc.Packet{Src: 0, Dst: 15, Type: noc.Data}) {
			ok++
		}
	}
	if ok != 3 {
		t.Fatalf("accepted %d, want 3", ok)
	}
}

func TestBandwidthThrottleSlowsDelivery(t *testing.T) {
	run := func(frac float64) sim.Cycle {
		cfg := PaperMesh(4)
		cfg.BandwidthFrac = frac
		n, engine, delivered := testMesh(t, cfg)
		for i := 0; i < 8; i++ {
			n.Send(&noc.Packet{Src: 0, Dst: 3, Type: noc.Data})
		}
		for engine.Now() < 4000 && len(*delivered) < 8 {
			engine.Run(10)
		}
		return engine.Now()
	}
	full := run(1.0)
	half := run(0.5)
	if half <= full {
		t.Fatalf("halved bandwidth must slow the burst: full=%d half=%d", full, half)
	}
}

func TestRouterCyclesAffectLatency(t *testing.T) {
	run := func(rc int) int64 {
		cfg := PaperMesh(4)
		cfg.RouterCycles = rc
		n, engine, _ := testMesh(t, cfg)
		p := &noc.Packet{Src: 0, Dst: 15, Type: noc.Meta}
		n.Send(p)
		engine.Run(200)
		return p.TotalLatency()
	}
	if run(2) >= run(4) {
		t.Fatal("shallower router pipelines must reduce latency")
	}
}

func TestMeshName(t *testing.T) {
	n, _, _ := testMesh(t, PaperMesh(4))
	if n.Name() != "mesh4" {
		t.Fatalf("name = %s", n.Name())
	}
	if n.NumNodes() != 16 {
		t.Fatalf("nodes = %d", n.NumNodes())
	}
}

func TestL0OnlySerializationAndQueue(t *testing.T) {
	engine := sim.NewEngine()
	n := NewL0(4, engine)
	var got []*noc.Packet
	n.SetDelivery(func(p *noc.Packet, now sim.Cycle) { got = append(got, p) })
	engine.Register(sim.TickFunc(n.Tick))
	a := &noc.Packet{Src: 0, Dst: 15, Type: noc.Meta}
	b := &noc.Packet{Src: 0, Dst: 3, Type: noc.Data}
	n.Send(a)
	n.Send(b)
	engine.Run(50)
	if len(got) != 2 {
		t.Fatal("L0 lost packets")
	}
	if a.NetworkDelay != 1 {
		t.Fatalf("L0 meta network = %d, want serialization only", a.NetworkDelay)
	}
	if b.NetworkDelay != 5 {
		t.Fatalf("L0 data network = %d, want 5", b.NetworkDelay)
	}
	if b.QueuingDelay == 0 {
		t.Fatal("second packet must queue behind the serializer")
	}
	if n.Name() != "L0" {
		t.Fatalf("name = %s", n.Name())
	}
}

func TestLrHopLatency(t *testing.T) {
	for _, rc := range []int{1, 2} {
		engine := sim.NewEngine()
		n := NewLr(4, rc, engine)
		n.SetDelivery(func(*noc.Packet, sim.Cycle) {})
		engine.Register(sim.TickFunc(n.Tick))
		p := &noc.Packet{Src: 0, Dst: 15, Type: noc.Meta} // 6 hops
		n.Send(p)
		engine.Run(100)
		want := int64(1 + 6*(1+rc)) // serialization + hops*(link+router)
		if p.NetworkDelay != want {
			t.Fatalf("Lr%d network = %d, want %d", rc, p.NetworkDelay, want)
		}
	}
}

func TestLrContentionFree(t *testing.T) {
	engine := sim.NewEngine()
	n := NewLr(4, 1, engine)
	count := 0
	n.SetDelivery(func(*noc.Packet, sim.Cycle) { count++ })
	engine.Register(sim.TickFunc(n.Tick))
	// Many packets to one destination: no network contention, only the
	// source serializers matter.
	for src := 0; src < 8; src++ {
		n.Send(&noc.Packet{Src: src, Dst: 15, Type: noc.Data})
	}
	engine.Run(100)
	if count != 8 {
		t.Fatalf("delivered %d of 8", count)
	}
}
