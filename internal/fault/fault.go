// Package fault implements deterministic physical-fault injection for
// the FSOI network. The paper's Table 1 link budget leaves a finite
// margin (SNR 7.5 dB for BER 1e-10); this package models what happens
// when that margin erodes and which protocol mechanisms absorb the
// damage. Four fault models are provided:
//
//  1. BER-derived bit errors: a configurable link-margin penalty (dB) is
//     subtracted from the Table 1 Q factor and the resulting bit-error
//     rate — not a free parameter — corrupts packets per slot.
//  2. VCSEL aging/failure: each transmit VCSEL fails independently at
//     start-of-life with a configurable probability; a lane that loses
//     transmitters serializes over the survivors and its effective data
//     rate drops (the slot stretches instead of the lane wedging).
//  3. Thermal power droop: junction heating reduces VCSEL output power.
//     The steady-state temperature field comes from internal/thermal for
//     the configured cooling technology; each node's margin penalty ramps
//     toward DroopDBPerK x (its steady-state rise) with an exponential
//     time constant, so hot corner nodes degrade first.
//  4. Confirmation-channel drops: the collision-free confirmation beam
//     is still a physical link; a lost confirmation forces the sender
//     onto the confirmation-timeout retransmission path in internal/core.
//
// All randomness flows from named sim.RNG streams derived from one
// injector stream, preserving the repository's bit-identical-rerun
// discipline. A zero Config reports Enabled() == false and must not be
// attached at all: fault injection is strictly pay-for-what-you-use.
package fault

import (
	"fmt"
	"math"
	"strconv"

	"fsoi/internal/core"
	"fsoi/internal/obs"
	"fsoi/internal/optics"
	"fsoi/internal/sim"
	"fsoi/internal/stats"
	"fsoi/internal/thermal"
)

// ThermalSpec parameterizes the time-varying power-droop model.
type ThermalSpec struct {
	// Enabled switches the droop model on.
	Enabled bool
	// Cooling selects the §3.3 heat-removal technology whose steady-state
	// temperature field drives the droop.
	Cooling thermal.Cooling
	// PowerPerNodeW is the per-node dissipation fed to the thermal solver.
	PowerPerNodeW float64
	// TauCycles is the exponential time constant of the temperature ramp.
	TauCycles float64
	// DroopDBPerK converts a node's temperature rise over ambient into a
	// link-margin penalty (VCSEL L-I rollover: output power drops as the
	// junction heats, arXiv:1512.07491 measures ~0.02-0.05 dB/K).
	DroopDBPerK float64
}

// Config selects the fault models to inject. The zero value injects
// nothing and must not be attached (see Enabled).
type Config struct {
	// MarginPenaltyDB is a static link-margin penalty subtracted from the
	// Table 1 Q factor (in the optical 10*log10(Q) convention). The
	// penalized Q yields the injected bit-error rate.
	MarginPenaltyDB float64
	// VCSELFailProb is the independent start-of-life failure probability
	// of each transmit VCSEL. At least one VCSEL per lane survives: a
	// fully dark lane is a dead node, out of scope for graceful
	// degradation.
	VCSELFailProb float64
	// ConfirmDropProb is the probability that the confirmation beam for a
	// cleanly received packet is lost.
	ConfirmDropProb float64
	// Thermal adds the time-varying droop penalty on top of
	// MarginPenaltyDB.
	Thermal ThermalSpec
}

// Enabled reports whether any fault model is active. Callers must skip
// injector construction entirely when false so that fault-free runs stay
// bit-identical to builds without this package.
func (c Config) Enabled() bool {
	return c.MarginPenaltyDB != 0 || c.VCSELFailProb != 0 || //lint:allow floateq zero-value-off sentinels on assigned config fields
		c.ConfirmDropProb != 0 || c.Thermal.Enabled //lint:allow floateq zero-value-off sentinel on an assigned config field
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.MarginPenaltyDB < 0:
		return fmt.Errorf("fault: negative margin penalty %g dB", c.MarginPenaltyDB)
	case c.VCSELFailProb < 0 || c.VCSELFailProb >= 1:
		return fmt.Errorf("fault: VCSEL failure probability %g outside [0, 1)", c.VCSELFailProb)
	case c.ConfirmDropProb < 0 || c.ConfirmDropProb >= 1:
		return fmt.Errorf("fault: confirmation drop probability %g outside [0, 1)", c.ConfirmDropProb)
	case c.Thermal.Enabled && c.Thermal.TauCycles <= 0:
		return fmt.Errorf("fault: thermal ramp needs a positive time constant")
	case c.Thermal.Enabled && c.Thermal.PowerPerNodeW <= 0:
		return fmt.Errorf("fault: thermal ramp needs positive per-node power")
	case c.Thermal.Enabled && c.Thermal.DroopDBPerK < 0:
		return fmt.Errorf("fault: negative droop coefficient")
	}
	return nil
}

// berEpochCycles quantizes the thermal ramp: the per-node BER table is
// recomputed once per epoch rather than per packet. The ramp's time
// constants are >= 10k cycles in any physical scenario, so 4096-cycle
// quantization is invisible to the results while keeping the hot path to
// a table lookup.
const berEpochCycles = 4096

// Injector implements core.FaultModel: it perturbs an FSOI network
// according to its Config, deterministically under the stream it was
// built with.
type Injector struct {
	cfg   Config
	net   core.Config
	baseQ float64 // Table 1 Q factor before any penalty

	// confirmRNG is indexed by the *destination* node: DropConfirm is
	// drawn in the receiver's context, so each receiver owns its own
	// stream and no stream is ever advanced from two shards.
	confirmRNG []*sim.RNG

	// failed[lane][node] transmit VCSELs; ext[lane][node] extra
	// serialization cycles from transmitting over the survivors.
	// Both are written once at construction and read-only afterwards.
	failed [2][]int
	ext    [2][]int

	// riseK[node] is the steady-state temperature rise over ambient.
	riseK []float64

	// berEpoch[node]/berCache[node] memoize the injected BER per node;
	// BitErrorRate(src, ...) is called in src's context (at launch), so
	// each node refreshes only its own cache entry.
	berEpoch []sim.Cycle // epoch the entry was computed for (-1 = never)
	berCache []float64   // per-node injected BER
}

// New builds an injector for a network configuration. The rng must be a
// dedicated stream (conventionally parent.NewStream("fault")); New
// derives one sub-stream per fault model so the models stay decorrelated
// and insertion-order independent. It panics on an invalid Config —
// configs are produced by code, not user input.
func New(cfg Config, netCfg core.Config, rng *sim.RNG) *Injector {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	inj := &Injector{
		cfg:      cfg,
		net:      netCfg,
		baseQ:    optics.PaperLink().Budget().QFactor,
		berEpoch: make([]sim.Cycle, netCfg.Nodes),
		berCache: make([]float64, netCfg.Nodes),
	}
	confirmBase := rng.NewStream("confirm")
	inj.confirmRNG = make([]*sim.RNG, netCfg.Nodes)
	for i := range inj.confirmRNG {
		inj.confirmRNG[i] = confirmBase.NewStream("node-" + strconv.Itoa(i))
		inj.berEpoch[i] = -1
	}
	inj.drawVCSELFailures(rng.NewStream("vcsel"))
	if cfg.Thermal.Enabled {
		inj.solveThermal()
	}
	return inj
}

// drawVCSELFailures ages every transmit VCSEL once at start-of-life and
// precomputes the per-node slot extension of each lane.
func (inj *Injector) drawVCSELFailures(rng *sim.RNG) {
	lanes := [2]struct {
		lane   core.Lane
		vcsels int
	}{
		{core.LaneMeta, inj.net.MetaVCSELs},
		{core.LaneData, inj.net.DataVCSELs},
	}
	for _, l := range lanes {
		inj.failed[l.lane] = make([]int, inj.net.Nodes)
		inj.ext[l.lane] = make([]int, inj.net.Nodes)
	}
	for node := 0; node < inj.net.Nodes; node++ {
		for _, l := range lanes {
			dead := 0
			for v := 0; v < l.vcsels; v++ {
				if inj.cfg.VCSELFailProb > 0 && rng.Bool(inj.cfg.VCSELFailProb) {
					dead++
				}
			}
			if dead >= l.vcsels {
				dead = l.vcsels - 1 // the last survivor keeps the lane alive
			}
			inj.failed[l.lane][node] = dead
			if dead > 0 {
				degraded := inj.net
				if l.lane == core.LaneMeta {
					degraded.MetaVCSELs -= dead
				} else {
					degraded.DataVCSELs -= dead
				}
				inj.ext[l.lane][node] = degraded.SlotCycles(l.lane) - inj.net.SlotCycles(l.lane)
			}
		}
	}
}

// solveThermal computes each node's steady-state temperature rise from
// the configured cooling technology and per-node power.
func (inj *Injector) solveThermal() {
	dim := 1
	for dim*dim < inj.net.Nodes {
		dim++
	}
	res := thermal.ForCooling(inj.cfg.Thermal.Cooling, dim).
		Solve(thermal.UniformPower(dim, optics.Watts(inj.cfg.Thermal.PowerPerNodeW)))
	inj.riseK = make([]float64, inj.net.Nodes)
	for i := range inj.riseK {
		inj.riseK[i] = res.Temps[i%len(res.Temps)] - res.Ambient
	}
}

// penaltyDB returns a node's total margin penalty at the given cycle.
func (inj *Injector) penaltyDB(node int, now sim.Cycle) optics.DB {
	p := inj.cfg.MarginPenaltyDB
	if inj.cfg.Thermal.Enabled {
		ramp := 1 - math.Exp(-float64(now)/inj.cfg.Thermal.TauCycles)
		p += inj.cfg.Thermal.DroopDBPerK * inj.riseK[node] * ramp
	}
	return optics.DB(p)
}

// berFor derives the injected bit-error rate from the Table 1 Q factor
// under the node's current margin penalty: Q' = Q * 10^(-penalty/10)
// (the optical SNR-dB convention used throughout internal/optics).
func (inj *Injector) berFor(node int, now sim.Cycle) float64 {
	q := inj.baseQ * inj.penaltyDB(node, now).Ratio()
	ber := optics.BERFromQ(q)
	if ber > 0.5 {
		ber = 0.5
	}
	return ber
}

// BitErrorRate implements core.FaultModel. It serves from a per-node
// epoch cache: the network asks in the transmitting node's context, so
// each node refreshes only its own entry — recomputed when the thermal
// ramp crosses an epoch boundary, exactly once when the ramp is off.
func (inj *Injector) BitErrorRate(src int, now sim.Cycle) float64 {
	if !inj.cfg.Thermal.Enabled {
		if inj.berEpoch[src] < 0 {
			inj.berCache[src] = inj.berFor(src, 0)
			inj.berEpoch[src] = 0
		}
		return inj.berCache[src]
	}
	epoch := now / berEpochCycles
	if epoch != inj.berEpoch[src] {
		inj.berCache[src] = inj.berFor(src, epoch*berEpochCycles)
		inj.berEpoch[src] = epoch
	}
	return inj.berCache[src]
}

// SlotExtension implements core.FaultModel: the extra serialization
// cycles node src pays on lane l after its VCSEL failures.
func (inj *Injector) SlotExtension(src int, l core.Lane) int {
	return inj.ext[l][src]
}

// DropConfirm implements core.FaultModel: whether this packet's
// confirmation beam is lost. The draw runs in the receiver's context and
// comes from the receiver's own stream.
func (inj *Injector) DropConfirm(src, dst int, now sim.Cycle) bool {
	if inj.cfg.ConfirmDropProb == 0 { //lint:allow floateq zero-value-off sentinel; the guard also preserves RNG stream genealogy
		return false
	}
	return inj.confirmRNG[dst].Bool(inj.cfg.ConfirmDropProb)
}

// FailedVCSELs reports the total transmit VCSELs lost to aging.
func (inj *Injector) FailedVCSELs() int {
	total := 0
	for _, lane := range inj.failed {
		for _, n := range lane {
			total += n
		}
	}
	return total
}

// DegradedNodes reports how many nodes lost at least one VCSEL.
func (inj *Injector) DegradedNodes() int {
	n := 0
	for node := 0; node < inj.net.Nodes; node++ {
		if inj.failed[core.LaneMeta][node]+inj.failed[core.LaneData][node] > 0 {
			n++
		}
	}
	return n
}

// AnnotateTrace stamps the injector's start-of-life VCSEL-failure census
// into a lifecycle recorder as KindFault events at cycle 0, one per
// afflicted (node, lane), so a trace file is self-describing about the
// physical state the packets flew through. Nodes are walked in index
// order and lanes meta-then-data, so the annotation order is
// deterministic, and each annotation lands in the afflicted node's own
// recorder. A nil recorder family is a no-op.
func (inj *Injector) AnnotateTrace(rec *obs.Sharded) {
	if rec == nil {
		return
	}
	for node := 0; node < inj.net.Nodes; node++ {
		for _, l := range [2]core.Lane{core.LaneMeta, core.LaneData} {
			if n := inj.failed[l][node]; n > 0 {
				rec.For(node).Emit(obs.Event{
					Kind: obs.KindFault, Src: int32(node), Dst: -1,
					Lane: int8(l), Class: uint8(l), Aux: int64(n),
				})
			}
		}
	}
}

// Counters exports the injector's static fault census as a stats
// counter set; the per-event counters live in core.Stats.
func (inj *Injector) Counters() *stats.CounterSet {
	c := stats.NewCounterSet()
	c.Inc("vcsels_failed", int64(inj.FailedVCSELs()))
	c.Inc("nodes_degraded", int64(inj.DegradedNodes()))
	c.Inc("margin_penalty_mdb", int64(inj.cfg.MarginPenaltyDB*1000))
	return c
}
