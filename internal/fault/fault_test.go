package fault

import (
	"math"
	"testing"

	"fsoi/internal/core"
	"fsoi/internal/noc"
	"fsoi/internal/optics"
	"fsoi/internal/sim"
	"fsoi/internal/thermal"
)

func TestConfigEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Fatal("zero config must be disabled (pay-for-what-you-use)")
	}
	enabled := []Config{
		{MarginPenaltyDB: 1},
		{VCSELFailProb: 0.1},
		{ConfirmDropProb: 0.1},
		{Thermal: ThermalSpec{Enabled: true}},
	}
	for i, c := range enabled {
		if !c.Enabled() {
			t.Errorf("config %d should be enabled", i)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	good := Config{MarginPenaltyDB: 2, VCSELFailProb: 0.1, ConfirmDropProb: 0.05}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{MarginPenaltyDB: -1},
		{VCSELFailProb: -0.1},
		{VCSELFailProb: 1},
		{ConfirmDropProb: 1.5},
		{Thermal: ThermalSpec{Enabled: true, PowerPerNodeW: 4, DroopDBPerK: 0.02}}, // no tau
		{Thermal: ThermalSpec{Enabled: true, TauCycles: 1e5, DroopDBPerK: 0.02}},   // no power
		{Thermal: ThermalSpec{Enabled: true, TauCycles: 1e5, PowerPerNodeW: 4, DroopDBPerK: -1}},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("config %d should fail validation", i)
		}
	}
}

func TestBERDerivesFromLinkBudget(t *testing.T) {
	netCfg := core.PaperConfig(16)
	baseQ := optics.PaperLink().Budget().QFactor
	var prev float64 = -1
	for _, pen := range []float64{0, 1, 2, 3, 4} {
		inj := New(Config{MarginPenaltyDB: pen, ConfirmDropProb: 0.01},
			netCfg, sim.NewRNG(1).NewStream("fault"))
		got := inj.BitErrorRate(0, 0)
		want := optics.BERFromQ(baseQ * optics.DB(pen).Ratio())
		if math.Abs(got-want) > want*1e-9 {
			t.Fatalf("penalty %g dB: BER %g, want BERFromQ(Q*FromDB) = %g", pen, got, want)
		}
		if got <= prev {
			t.Fatalf("BER must grow with the penalty: %g !> %g at %g dB", got, prev, pen)
		}
		prev = got
	}
}

func TestMeasuredErrorRateMatchesConfiguredBER(t *testing.T) {
	// Attach a real injector at 3 dB and hammer the meta lane from one
	// sender (no collisions): the fraction of corrupted attempts must
	// match the analytic packet-error probability 1-(1-ber)^72.
	netCfg := core.PaperConfig(16)
	netCfg.Opt = core.Optimizations{}
	engine := sim.NewEngine()
	n := core.New(netCfg, engine, sim.NewRNG(1))
	n.SetBitErrorRate(0)
	n.SetDelivery(func(*noc.Packet, sim.Cycle) {})
	engine.Register(sim.TickFunc(n.Tick))
	inj := New(Config{MarginPenaltyDB: 3}, netCfg, sim.NewRNG(2).NewStream("fault"))
	n.SetFaultModel(inj)
	for cyc := 0; cyc < 8000; cyc += 2 {
		n.Send(&noc.Packet{Src: 1, Dst: 2, Type: noc.Meta})
		engine.Run(2)
	}
	engine.Run(1000)
	st := n.Stats()
	ber := inj.BitErrorRate(1, 0)
	want := 1 - math.Pow(1-ber, 72)
	got := float64(st.BitErrors) / float64(st.Attempts[core.LaneMeta])
	if st.Attempts[core.LaneMeta] < 2000 {
		t.Fatalf("only %d attempts, want a real sample", st.Attempts[core.LaneMeta])
	}
	if got < want*0.7 || got > want*1.3 {
		t.Fatalf("measured error rate %.4f vs configured %.4f (>30%% off)", got, want)
	}
}

func TestVCSELFailuresKeepLanesAlive(t *testing.T) {
	netCfg := core.PaperConfig(16)
	inj := New(Config{VCSELFailProb: 0.5}, netCfg, sim.NewRNG(7).NewStream("fault"))
	if inj.FailedVCSELs() == 0 || inj.DegradedNodes() == 0 {
		t.Fatal("50% aging must kill some VCSELs")
	}
	sawExtension := false
	for node := 0; node < netCfg.Nodes; node++ {
		for _, l := range []core.Lane{core.LaneMeta, core.LaneData} {
			vcsels := netCfg.MetaVCSELs
			if l == core.LaneData {
				vcsels = netCfg.DataVCSELs
			}
			if inj.failed[l][node] >= vcsels {
				t.Fatalf("node %d lane %v lost every VCSEL — lane must survive", node, l)
			}
			if ext := inj.SlotExtension(node, l); ext < 0 {
				t.Fatalf("negative slot extension %d", ext)
			} else if ext > 0 {
				sawExtension = true
			}
		}
	}
	if !sawExtension {
		t.Fatal("heavy aging must stretch some slot")
	}
	c := inj.Counters()
	if c.Get("vcsels_failed") != int64(inj.FailedVCSELs()) ||
		c.Get("nodes_degraded") != int64(inj.DegradedNodes()) {
		t.Fatal("counters disagree with the census")
	}
}

func TestThermalDroopRampsOverTime(t *testing.T) {
	cfg := Config{Thermal: ThermalSpec{
		Enabled: true, Cooling: thermal.AirCooled,
		PowerPerNodeW: 4, TauCycles: 50000, DroopDBPerK: 0.05,
	}}
	inj := New(cfg, core.PaperConfig(16), sim.NewRNG(1).NewStream("fault"))
	cold := inj.BitErrorRate(0, 0)
	warm := inj.BitErrorRate(0, 50000)
	hot := inj.BitErrorRate(0, 500000)
	if !(cold < warm && warm < hot) {
		t.Fatalf("droop must ramp the BER: %g, %g, %g", cold, warm, hot)
	}
	// The ramp saturates at the steady-state rise.
	steadier := inj.BitErrorRate(0, 5000000)
	if (steadier-hot)/hot > 0.05 {
		t.Fatalf("ramp should have saturated: %g -> %g", hot, steadier)
	}
}

func TestInjectorIsDeterministic(t *testing.T) {
	build := func() *Injector {
		return New(Config{VCSELFailProb: 0.2, ConfirmDropProb: 0.3},
			core.PaperConfig(16), sim.NewRNG(9).NewStream("fault"))
	}
	a, b := build(), build()
	if a.FailedVCSELs() != b.FailedVCSELs() {
		t.Fatal("VCSEL census must be seed-deterministic")
	}
	for i := 0; i < 1000; i++ {
		if a.DropConfirm(i%16, (i+1)%16, sim.Cycle(i)) != b.DropConfirm(i%16, (i+1)%16, sim.Cycle(i)) {
			t.Fatalf("confirm-drop sequence diverged at draw %d", i)
		}
	}
}

func TestNewPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New must panic on an invalid config")
		}
	}()
	New(Config{MarginPenaltyDB: -3}, core.PaperConfig(16), sim.NewRNG(1))
}
