package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, v := range []float64{1, 2, 3, 4} {
		s.Add(v)
	}
	if s.N() != 4 || s.Sum() != 10 || s.Mean() != 2.5 || s.Min() != 1 || s.Max() != 4 {
		t.Fatalf("summary wrong: n=%d sum=%g mean=%g min=%g max=%g", s.N(), s.Sum(), s.Mean(), s.Min(), s.Max())
	}
	want := math.Sqrt(1.25)
	if math.Abs(s.StdDev()-want) > 1e-12 {
		t.Fatalf("stddev = %g, want %g", s.StdDev(), want)
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.StdDev() != 0 || s.N() != 0 {
		t.Fatal("empty summary should report zeros")
	}
}

func TestSummaryMergeMatchesCombined(t *testing.T) {
	clamp := func(v float64) (float64, bool) {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
			return 0, false
		}
		return v, true
	}
	err := quick.Check(func(a, b []float64) bool {
		var s1, s2, all Summary
		for _, raw := range a {
			v, ok := clamp(raw)
			if !ok {
				continue
			}
			s1.Add(v)
			all.Add(v)
		}
		for _, raw := range b {
			v, ok := clamp(raw)
			if !ok {
				continue
			}
			s2.Add(v)
			all.Add(v)
		}
		s1.Merge(&s2)
		return s1.N() == all.N() &&
			math.Abs(s1.Sum()-all.Sum()) < 1e-6*(1+math.Abs(all.Sum()))
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(10, 5)
	h.Add(0)
	h.Add(9)
	h.Add(10)
	h.Add(49)
	h.Add(50) // overflow
	h.Add(-3) // clamps to bucket 0
	if h.Bucket(0) != 3 || h.Bucket(1) != 1 || h.Bucket(4) != 1 || h.Overflow() != 1 {
		t.Fatalf("bucket layout wrong: %d %d %d over=%d", h.Bucket(0), h.Bucket(1), h.Bucket(4), h.Overflow())
	}
	if h.Total() != 6 {
		t.Fatalf("total = %d", h.Total())
	}
}

func TestHistogramModeFraction(t *testing.T) {
	h := NewHistogram(5, 10)
	for i := 0; i < 41; i++ {
		h.Add(12)
	}
	for i := 0; i < 59; i++ {
		h.Add(int64(i % 50))
	}
	b, f := h.ModeFraction()
	if b != 2 {
		t.Fatalf("mode bucket = %d, want 2", b)
	}
	if f < 0.41 || f > 0.60 {
		t.Fatalf("mode fraction = %g", f)
	}
}

func TestHistogramPercentile(t *testing.T) {
	h := NewHistogram(1, 100)
	for i := int64(0); i < 100; i++ {
		h.Add(i)
	}
	if p := h.Percentile(0.5); p != 50 {
		t.Fatalf("p50 = %d", p)
	}
	if p := h.Percentile(0.99); p != 99 {
		t.Fatalf("p99 = %d", p)
	}
}

func TestHistogramAddN(t *testing.T) {
	a := NewHistogram(4, 8)
	b := NewHistogram(4, 8)
	for i := 0; i < 7; i++ {
		a.Add(13)
	}
	b.AddN(13, 7)
	if a.Bucket(3) != b.Bucket(3) || a.Total() != b.Total() || a.Mean() != b.Mean() {
		t.Fatal("AddN should equal repeated Add")
	}
}

func TestCounterSet(t *testing.T) {
	c := NewCounterSet()
	c.Inc("b", 2)
	c.Inc("a", 1)
	c.Inc("b", 3)
	if c.Get("b") != 5 || c.Get("a") != 1 || c.Get("missing") != 0 {
		t.Fatal("counter values wrong")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
	d := NewCounterSet()
	d.Inc("a", 10)
	c.Merge(d)
	if c.Get("a") != 11 {
		t.Fatal("merge failed")
	}
}

func TestGeoMean(t *testing.T) {
	got := GeoMean([]float64{1, 4})
	if math.Abs(got-2) > 1e-12 {
		t.Fatalf("GeoMean(1,4) = %g", got)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty GeoMean should be 0")
	}
}

func TestGeoMeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("GeoMean of 0 should panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("app", "speedup")
	tb.AddRowf("fft", 1.25)
	tb.AddRow("lu", "2.000", "extra-dropped")
	out := tb.String()
	if !strings.Contains(out, "app") || !strings.Contains(out, "1.250") {
		t.Fatalf("table output missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want header+sep+2 rows, got %d lines", len(lines))
	}
	if strings.Contains(out, "extra-dropped") {
		t.Fatal("cells beyond header width should be dropped")
	}
}
