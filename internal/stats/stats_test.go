package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, v := range []float64{1, 2, 3, 4} {
		s.Add(v)
	}
	if s.N() != 4 || s.Sum() != 10 || s.Mean() != 2.5 || s.Min() != 1 || s.Max() != 4 {
		t.Fatalf("summary wrong: n=%d sum=%g mean=%g min=%g max=%g", s.N(), s.Sum(), s.Mean(), s.Min(), s.Max())
	}
	want := math.Sqrt(1.25)
	if math.Abs(s.StdDev()-want) > 1e-12 {
		t.Fatalf("stddev = %g, want %g", s.StdDev(), want)
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.StdDev() != 0 || s.N() != 0 {
		t.Fatal("empty summary should report zeros")
	}
}

func TestSummaryMergeMatchesCombined(t *testing.T) {
	clamp := func(v float64) (float64, bool) {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
			return 0, false
		}
		return v, true
	}
	err := quick.Check(func(a, b []float64) bool {
		var s1, s2, all Summary
		for _, raw := range a {
			v, ok := clamp(raw)
			if !ok {
				continue
			}
			s1.Add(v)
			all.Add(v)
		}
		for _, raw := range b {
			v, ok := clamp(raw)
			if !ok {
				continue
			}
			s2.Add(v)
			all.Add(v)
		}
		s1.Merge(&s2)
		return s1.N() == all.N() &&
			math.Abs(s1.Sum()-all.Sum()) < 1e-6*(1+math.Abs(all.Sum()))
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

// TestSummaryStdDevLargeMean is the catastrophic-cancellation
// regression test. Cycle-stamped observations cluster near 1e8 with
// tiny spread; the pre-Welford sumSq/n - mean² formula loses the
// variance entirely there (the two squares agree to ~16 digits, so
// their difference is rounding noise — it reports 0, or the square
// root of a negative). Welford's update keeps the full precision; any
// return to the naive formula fails the 1e-6 tolerance immediately.
func TestSummaryStdDevLargeMean(t *testing.T) {
	var s Summary
	for i := 0; i < 1000; i++ {
		s.Add(1e8 + float64(i%2)) // alternating 1e8, 1e8+1: stddev exactly 0.5
	}
	if got := s.StdDev(); math.Abs(got-0.5) > 1e-6 {
		t.Fatalf("stddev of {1e8, 1e8+1}x500 = %.9g, want 0.5 (catastrophic cancellation)", got)
	}
	if got := s.Mean(); math.Abs(got-(1e8+0.5)) > 1e-6 {
		t.Fatalf("mean = %.12g, want 1e8+0.5", got)
	}
}

// TestSummaryMergeStdDevLargeMean checks the parallel (Chan et al.)
// merge form keeps the same robustness as the serial stream on the
// large-mean data that breaks the naive formula.
func TestSummaryMergeStdDevLargeMean(t *testing.T) {
	var a, b, all Summary
	for i := 0; i < 500; i++ {
		a.Add(1e8)
		b.Add(1e8 + 1)
		all.Add(1e8)
		all.Add(1e8 + 1)
	}
	a.Merge(&b)
	if a.N() != all.N() {
		t.Fatalf("merged n = %d, want %d", a.N(), all.N())
	}
	if got, want := a.StdDev(), all.StdDev(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("merged stddev = %.9g, serial stddev = %.9g", got, want)
	}
	if math.Abs(a.StdDev()-0.5) > 1e-6 {
		t.Fatalf("merged stddev = %.9g, want 0.5", a.StdDev())
	}
}

func TestSummaryMergeEmptySides(t *testing.T) {
	var empty, s Summary
	s.Add(3)
	s.Add(5)
	before := s
	s.Merge(&empty)
	if s != before {
		t.Fatal("merging an empty summary must be a no-op")
	}
	empty.Merge(&s)
	if empty.N() != 2 || empty.Mean() != 4 || empty.Min() != 3 || empty.Max() != 5 {
		t.Fatalf("merge into empty lost data: n=%d mean=%g", empty.N(), empty.Mean())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(10, 5)
	h.Add(0)
	h.Add(9)
	h.Add(10)
	h.Add(49)
	h.Add(50) // overflow
	h.Add(-3) // clamps to bucket 0
	if h.Bucket(0) != 3 || h.Bucket(1) != 1 || h.Bucket(4) != 1 || h.Overflow() != 1 {
		t.Fatalf("bucket layout wrong: %d %d %d over=%d", h.Bucket(0), h.Bucket(1), h.Bucket(4), h.Overflow())
	}
	if h.Total() != 6 {
		t.Fatalf("total = %d", h.Total())
	}
}

func TestHistogramModeFraction(t *testing.T) {
	h := NewHistogram(5, 10)
	for i := 0; i < 41; i++ {
		h.Add(12)
	}
	for i := 0; i < 59; i++ {
		h.Add(int64(i % 50))
	}
	b, f := h.ModeFraction()
	if b != 2 {
		t.Fatalf("mode bucket = %d, want 2", b)
	}
	if f < 0.41 || f > 0.60 {
		t.Fatalf("mode fraction = %g", f)
	}
}

func TestHistogramPercentile(t *testing.T) {
	h := NewHistogram(1, 100)
	for i := int64(0); i < 100; i++ {
		h.Add(i)
	}
	if p := h.Percentile(0.5); p != 50 {
		t.Fatalf("p50 = %d", p)
	}
	if p := h.Percentile(0.99); p != 99 {
		t.Fatalf("p99 = %d", p)
	}
}

// TestHistogramPercentileEmpty pins the edge-case fix: an empty
// histogram reports 0, not its bucket width (the old code returned
// width because the loop never ran and the fallthrough used bucket 1's
// bound).
func TestHistogramPercentileEmpty(t *testing.T) {
	h := NewHistogram(10, 5)
	if p := h.Percentile(0.5); p != 0 {
		t.Fatalf("empty histogram p50 = %d, want 0", p)
	}
	if bound, over := h.PercentileBound(0.99); bound != 0 || over {
		t.Fatalf("empty histogram PercentileBound = (%d, %v), want (0, false)", bound, over)
	}
}

// TestHistogramPercentileOverflow pins the other edge case: a
// percentile landing in the overflow bucket must be distinguishable
// from mass genuinely in the last real bucket — both report the same
// bound, but only the overflow sets the flag.
func TestHistogramPercentileOverflow(t *testing.T) {
	over := NewHistogram(10, 5)
	over.Add(500) // beyond the last bucket
	bound, isOver := over.PercentileBound(0.5)
	if bound != 50 || !isOver {
		t.Fatalf("overflow-only PercentileBound = (%d, %v), want (50, true)", bound, isOver)
	}

	last := NewHistogram(10, 5)
	last.Add(49) // last real bucket
	bound, isOver = last.PercentileBound(0.5)
	if bound != 50 || isOver {
		t.Fatalf("last-bucket PercentileBound = (%d, %v), want (50, false)", bound, isOver)
	}

	// Mixed mass: p50 in a real bucket, p99 in overflow.
	mixed := NewHistogram(10, 5)
	for i := 0; i < 98; i++ {
		mixed.Add(5)
	}
	mixed.Add(1000)
	mixed.Add(1000)
	if bound, isOver = mixed.PercentileBound(0.5); bound != 10 || isOver {
		t.Fatalf("mixed p50 = (%d, %v), want (10, false)", bound, isOver)
	}
	if bound, isOver = mixed.PercentileBound(0.999); bound != 50 || !isOver {
		t.Fatalf("mixed p99.9 = (%d, %v), want (50, true)", bound, isOver)
	}
}

func TestHistogramAddN(t *testing.T) {
	a := NewHistogram(4, 8)
	b := NewHistogram(4, 8)
	for i := 0; i < 7; i++ {
		a.Add(13)
	}
	b.AddN(13, 7)
	if a.Bucket(3) != b.Bucket(3) || a.Total() != b.Total() || a.Mean() != b.Mean() {
		t.Fatal("AddN should equal repeated Add")
	}
}

func TestCounterSet(t *testing.T) {
	c := NewCounterSet()
	c.Inc("b", 2)
	c.Inc("a", 1)
	c.Inc("b", 3)
	if c.Get("b") != 5 || c.Get("a") != 1 || c.Get("missing") != 0 {
		t.Fatal("counter values wrong")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
	d := NewCounterSet()
	d.Inc("a", 10)
	c.Merge(d)
	if c.Get("a") != 11 {
		t.Fatal("merge failed")
	}
}

// TestCounterSetMergeOrderIndependent checks sharded accumulation is
// deterministic: merging the same shards in any order yields identical
// names and values, so parallel experiment merges cannot leak
// completion order into output.
func TestCounterSetMergeOrderIndependent(t *testing.T) {
	shard := func(pairs ...any) *CounterSet {
		c := NewCounterSet()
		for i := 0; i < len(pairs); i += 2 {
			c.Inc(pairs[i].(string), int64(pairs[i+1].(int)))
		}
		return c
	}
	build := func(order []int) *CounterSet {
		shards := []*CounterSet{
			shard("collisions", 3, "drops", 1),
			shard("collisions", 5, "retries", 9),
			shard("drops", 2, "attempts", 100),
		}
		c := NewCounterSet()
		for _, i := range order {
			c.Merge(shards[i])
		}
		return c
	}
	a := build([]int{0, 1, 2})
	b := build([]int{2, 0, 1})
	na, nb := a.Names(), b.Names()
	if len(na) != len(nb) || len(na) != 4 {
		t.Fatalf("name sets differ: %v vs %v", na, nb)
	}
	for i, name := range na {
		if nb[i] != name || a.Get(name) != b.Get(name) {
			t.Fatalf("merge order leaked: %q %d vs %q %d", name, a.Get(name), nb[i], b.Get(nb[i]))
		}
	}
}

func TestGeoMean(t *testing.T) {
	got := GeoMean([]float64{1, 4})
	if math.Abs(got-2) > 1e-12 {
		t.Fatalf("GeoMean(1,4) = %g", got)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty GeoMean should be 0")
	}
}

func TestGeoMeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("GeoMean of 0 should panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("app", "speedup")
	tb.AddRowf("fft", 1.25)
	tb.AddRow("lu", "2.000", "extra-dropped")
	out := tb.String()
	if !strings.Contains(out, "app") || !strings.Contains(out, "1.250") {
		t.Fatalf("table output missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want header+sep+2 rows, got %d lines", len(lines))
	}
	if strings.Contains(out, "extra-dropped") {
		t.Fatal("cells beyond header width should be dropped")
	}
}
