// Package stats provides the measurement primitives shared by the
// simulator: counters, scalar summaries, histograms, and text tables that
// mirror the rows and series reported in the paper's figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary accumulates a stream of float64 observations and reports count,
// mean, min, max, and standard deviation without storing samples.
//
// The variance is carried as Welford's running (mean, M2) pair rather
// than the textbook sum-of-squares: cycle-stamped observations cluster
// near 1e8 with single-digit spread, and sumSq/n - mean² cancels
// catastrophically there (the squares agree to ~16 digits, so their
// difference is pure rounding noise). The plain sum is kept alongside so
// Sum and Mean stay bit-identical to the historical accumulation order.
type Summary struct {
	n        int64
	sum      float64
	mean, m2 float64 // Welford state: running mean and sum of squared deviations
	min, max float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	if s.n == 0 || x < s.min {
		s.min = x
	}
	if s.n == 0 || x > s.max {
		s.max = x
	}
	s.n++
	s.sum += x
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N reports the number of observations.
func (s *Summary) N() int64 { return s.n }

// Sum reports the running total.
func (s *Summary) Sum() float64 { return s.sum }

// Mean reports the average, or 0 when empty.
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Min reports the smallest observation, or 0 when empty.
func (s *Summary) Min() float64 { return s.min }

// Max reports the largest observation, or 0 when empty.
func (s *Summary) Max() float64 { return s.max }

// StdDev reports the population standard deviation, or 0 when empty.
func (s *Summary) StdDev() float64 {
	if s.n == 0 {
		return 0
	}
	v := s.m2 / float64(s.n)
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Merge folds other into s using the parallel (Chan et al.) form of
// Welford's update, so sharded accumulation keeps the same numerical
// robustness as the serial stream.
func (s *Summary) Merge(other *Summary) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *other
		return
	}
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
	n := s.n + other.n
	d := other.mean - s.mean
	s.m2 += other.m2 + d*d*float64(s.n)*float64(other.n)/float64(n)
	s.mean += d * float64(other.n) / float64(n)
	s.n = n
	s.sum += other.sum
}

// Histogram counts observations into fixed-width integer buckets
// [0,w), [w,2w), ...; values at or beyond the last bucket accumulate in an
// overflow bucket.
type Histogram struct {
	width   int64
	buckets []int64
	over    int64
	total   int64
	sum     int64
}

// NewHistogram builds a histogram with nbuckets buckets of the given
// width. It panics on non-positive arguments.
func NewHistogram(width int64, nbuckets int) *Histogram {
	if width <= 0 || nbuckets <= 0 {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{width: width, buckets: make([]int64, nbuckets)}
}

// Add records one observation. Negative values clamp to bucket 0.
func (h *Histogram) Add(v int64) { h.AddN(v, 1) }

// AddN records n identical observations.
func (h *Histogram) AddN(v, n int64) {
	h.total += n
	h.sum += v * n
	if v < 0 {
		v = 0
	}
	i := v / h.width
	if i >= int64(len(h.buckets)) {
		h.over += n
		return
	}
	h.buckets[i] += n
}

// Total reports the number of observations.
func (h *Histogram) Total() int64 { return h.total }

// Mean reports the mean of the raw observations.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Bucket reports the count in bucket i.
func (h *Histogram) Bucket(i int) int64 { return h.buckets[i] }

// Overflow reports the count beyond the last bucket.
func (h *Histogram) Overflow() int64 { return h.over }

// NumBuckets reports the number of regular buckets.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// Fraction reports bucket i's share of all observations.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.buckets[i]) / float64(h.total)
}

// ModeFraction reports the largest single-bucket share, as in the paper's
// Figure 5 annotation ("41%" concentrated at the modal latency).
func (h *Histogram) ModeFraction() (bucket int, frac float64) {
	best := int64(-1)
	for i, c := range h.buckets {
		if c > best {
			best = c
			bucket = i
		}
	}
	if h.total == 0 {
		return 0, 0
	}
	return bucket, float64(best) / float64(h.total)
}

// Percentile reports the smallest bucket upper bound covering at least
// frac of the mass, or 0 for an empty histogram. When the percentile
// lands in the overflow bucket the last real bound is returned; use
// PercentileBound to tell that apart from mass genuinely in the last
// bucket.
func (h *Histogram) Percentile(frac float64) int64 {
	bound, _ := h.PercentileBound(frac)
	return bound
}

// PercentileBound reports the smallest bucket upper bound covering at
// least frac of the mass, plus whether the percentile fell into the
// overflow bucket — in which case the bound is only a lower limit on the
// true value, and callers should render it as ">bound" rather than as a
// measured latency. An empty histogram reports (0, false).
func (h *Histogram) PercentileBound(frac float64) (bound int64, overflow bool) {
	if h.total == 0 {
		return 0, false
	}
	want := int64(math.Ceil(frac * float64(h.total)))
	if want < 1 {
		want = 1
	}
	var seen int64
	for i, c := range h.buckets {
		seen += c
		if seen >= want {
			return int64(i+1) * h.width, false
		}
	}
	return int64(len(h.buckets)) * h.width, true
}

// Merge folds other into h. Both histograms must share a shape (width
// and bucket count); bucket-wise addition is exact and commutative, so
// merged results are independent of merge order. It panics on a shape
// mismatch rather than resample.
func (h *Histogram) Merge(other *Histogram) {
	if h.width != other.width || len(h.buckets) != len(other.buckets) {
		panic("stats: histogram shape mismatch in Merge")
	}
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	h.over += other.over
	h.total += other.total
	h.sum += other.sum
}

// CounterSet is a named bag of int64 counters with deterministic listing.
type CounterSet struct {
	m map[string]int64
}

// NewCounterSet returns an empty counter set.
func NewCounterSet() *CounterSet {
	return &CounterSet{m: make(map[string]int64)}
}

// Inc adds delta to the named counter.
func (c *CounterSet) Inc(name string, delta int64) { c.m[name] += delta }

// Get reads the named counter (0 when unset).
func (c *CounterSet) Get(name string) int64 { return c.m[name] }

// Names lists counters in sorted order.
func (c *CounterSet) Names() []string {
	names := make([]string, 0, len(c.m))
	for k := range c.m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Merge folds other into c.
func (c *CounterSet) Merge(other *CounterSet) {
	for k, v := range other.m {
		c.m[k] += v
	}
}

// GeoMean returns the geometric mean of xs, the aggregation the paper
// uses for speedups. Non-positive inputs panic.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: GeoMean of non-positive value %g", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Table formats aligned text tables for experiment output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells beyond the header width are dropped.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.header) {
		cells = cells[:len(t.header)]
	}
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values: strings pass through,
// float64 format with %.3g unless fmtSpec overrides, ints with %d.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case string:
			row = append(row, v)
		case float64:
			row = append(row, fmt.Sprintf("%.3f", v))
		case int:
			row = append(row, fmt.Sprintf("%d", v))
		case int64:
			row = append(row, fmt.Sprintf("%d", v))
		default:
			row = append(row, fmt.Sprint(v))
		}
	}
	t.AddRow(row...)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
