package stats

import (
	"fmt"
	"math"
	"strings"
)

// BarChart renders labeled horizontal bars scaled to a fixed width, the
// terminal equivalent of the paper's per-application bar figures.
type BarChart struct {
	title  string
	width  int
	labels []string
	values []float64
}

// NewBarChart creates a chart; width is the maximum bar length in
// characters (default 40 when <= 0).
func NewBarChart(title string, width int) *BarChart {
	if width <= 0 {
		width = 40
	}
	return &BarChart{title: title, width: width}
}

// Add appends one bar.
func (c *BarChart) Add(label string, value float64) {
	c.labels = append(c.labels, label)
	c.values = append(c.values, value)
}

// String renders the chart.
func (c *BarChart) String() string {
	var b strings.Builder
	if c.title != "" {
		b.WriteString(c.title)
		b.WriteString("\n")
	}
	if len(c.values) == 0 {
		return b.String()
	}
	maxVal := c.values[0]
	maxLabel := 0
	for i, v := range c.values {
		if v > maxVal {
			maxVal = v
		}
		if len(c.labels[i]) > maxLabel {
			maxLabel = len(c.labels[i])
		}
	}
	if maxVal <= 0 {
		maxVal = 1
	}
	for i, v := range c.values {
		n := int(math.Round(v / maxVal * float64(c.width)))
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(&b, "%-*s %s %.3g\n", maxLabel, c.labels[i], strings.Repeat("#", n), v)
	}
	return b.String()
}

// StackedBar renders one bar split into named segments (the Figure 6a
// latency-breakdown style).
type StackedBar struct {
	width    int
	segments []string
	glyphs   []byte
}

// NewStackedBar builds a renderer; segments name the components in
// order, each drawn with a distinct glyph.
func NewStackedBar(width int, segments ...string) *StackedBar {
	if width <= 0 {
		width = 50
	}
	glyphs := []byte{'#', '=', '+', '.', '~', '%'}
	return &StackedBar{width: width, segments: segments, glyphs: glyphs}
}

// Render draws one labeled stacked bar for the given component values,
// scaled so that total==scaleMax fills the width.
func (s *StackedBar) Render(label string, scaleMax float64, values ...float64) string {
	var bar strings.Builder
	for i, v := range values {
		if i >= len(s.segments) {
			break
		}
		n := 0
		if scaleMax > 0 {
			n = int(math.Round(v / scaleMax * float64(s.width)))
		}
		bar.WriteString(strings.Repeat(string(s.glyphs[i%len(s.glyphs)]), n))
	}
	total := 0.0
	for _, v := range values {
		total += v
	}
	return fmt.Sprintf("%-12s %-*s %.1f", label, s.width+2, bar.String(), total)
}

// Legend describes the glyphs.
func (s *StackedBar) Legend() string {
	parts := make([]string, 0, len(s.segments))
	for i, name := range s.segments {
		parts = append(parts, fmt.Sprintf("%c=%s", s.glyphs[i%len(s.glyphs)], name))
	}
	return strings.Join(parts, "  ")
}

// Heatmap renders a 2-D grid of values with a density ramp — the text
// analogue of the Figure 4 surface plot.
type Heatmap struct {
	rowLabels []string
	colLabels []string
	cells     [][]float64
}

// NewHeatmap builds a heatmap from row/column labels and values
// (cells[row][col]).
func NewHeatmap(rowLabels, colLabels []string, cells [][]float64) *Heatmap {
	return &Heatmap{rowLabels: rowLabels, colLabels: colLabels, cells: cells}
}

// ramp maps a normalized value to a density glyph (low = sparse).
var ramp = []byte(" .:-=+*#%@")

// String renders the heatmap with the numeric minimum marked.
func (h *Heatmap) String() string {
	lo, hi := math.Inf(1), math.Inf(-1)
	var minR, minC int
	for r := range h.cells {
		for c, v := range h.cells[r] {
			if v < lo {
				lo, minR, minC = v, r, c
			}
			if v > hi {
				hi = v
			}
		}
	}
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	var b strings.Builder
	labW := 0
	for _, l := range h.rowLabels {
		if len(l) > labW {
			labW = len(l)
		}
	}
	fmt.Fprintf(&b, "%-*s ", labW, "")
	for _, cl := range h.colLabels {
		fmt.Fprintf(&b, "%4s", cl)
	}
	b.WriteString("\n")
	for r := range h.cells {
		fmt.Fprintf(&b, "%-*s ", labW, h.rowLabels[r])
		for c, v := range h.cells[r] {
			g := ramp[int((v-lo)/span*float64(len(ramp)-1))]
			mark := byte(' ')
			if r == minR && c == minC {
				mark = '<'
			}
			fmt.Fprintf(&b, " %c%c%c", g, g, mark)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "min %.3g at (%s, %s); max %.3g\n", lo, h.rowLabels[minR], h.colLabels[minC], hi)
	return b.String()
}

// Sparkline renders a one-line graph of a series (for distributions).
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	var b strings.Builder
	for _, v := range values {
		b.WriteRune(levels[int((v-lo)/span*float64(len(levels)-1))])
	}
	return b.String()
}
