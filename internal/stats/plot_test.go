package stats

import (
	"strings"
	"testing"
)

func TestBarChartScaling(t *testing.T) {
	c := NewBarChart("title", 10)
	c.Add("a", 10)
	c.Add("bb", 5)
	out := c.String()
	if !strings.HasPrefix(out, "title\n") {
		t.Fatal("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 lines, got %d", len(lines))
	}
	if strings.Count(lines[1], "#") != 10 {
		t.Fatalf("max bar should fill the width: %q", lines[1])
	}
	if strings.Count(lines[2], "#") != 5 {
		t.Fatalf("half bar should be half width: %q", lines[2])
	}
}

func TestBarChartEmptyAndZero(t *testing.T) {
	if out := NewBarChart("", 5).String(); out != "" {
		t.Fatalf("empty chart should render nothing: %q", out)
	}
	c := NewBarChart("", 5)
	c.Add("x", 0)
	if !strings.Contains(c.String(), "x") {
		t.Fatal("zero bars still show labels")
	}
}

func TestStackedBar(t *testing.T) {
	s := NewStackedBar(20, "queue", "net")
	row := s.Render("app", 10, 5, 5)
	if !strings.Contains(row, "##########") || !strings.Contains(row, "==========") {
		t.Fatalf("segments missing: %q", row)
	}
	if !strings.Contains(row, "10.0") {
		t.Fatalf("total missing: %q", row)
	}
	leg := s.Legend()
	if !strings.Contains(leg, "#=queue") || !strings.Contains(leg, "==net") {
		t.Fatalf("legend wrong: %q", leg)
	}
}

func TestHeatmapMarksMinimum(t *testing.T) {
	h := NewHeatmap([]string{"r0", "r1"}, []string{"c0", "c1"},
		[][]float64{{5, 3}, {9, 7}})
	out := h.String()
	if !strings.Contains(out, "min 3 at (r0, c1)") {
		t.Fatalf("minimum not located:\n%s", out)
	}
	if !strings.Contains(out, "max 9") {
		t.Fatalf("maximum missing:\n%s", out)
	}
}

func TestHeatmapUniform(t *testing.T) {
	h := NewHeatmap([]string{"r"}, []string{"c"}, [][]float64{{2}})
	if out := h.String(); !strings.Contains(out, "min 2") {
		t.Fatalf("uniform heatmap: %s", out)
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("want 4 glyphs, got %q", s)
	}
	if Sparkline(nil) != "" {
		t.Fatal("empty series renders empty")
	}
	flat := Sparkline([]float64{5, 5, 5})
	if len([]rune(flat)) != 3 {
		t.Fatal("flat series still renders")
	}
}
