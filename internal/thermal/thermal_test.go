package thermal

import (
	"math"
	"testing"
	"testing/quick"

	"fsoi/internal/optics"
)

func TestUniformFieldMatchesClosedForm(t *testing.T) {
	// With uniform power there is no lateral flow: T = Tamb + P*Rv.
	cfg := ForCooling(Microchannel, 4)
	res := cfg.Solve(UniformPower(4, 8))
	want := cfg.Ambient + 8*cfg.RVertical
	for i, v := range res.Temps {
		if math.Abs(v-want) > 1e-6 {
			t.Fatalf("node %d: %g K, want %g", i, v, want)
		}
	}
	if math.Abs(res.MaxK-res.MeanK) > 1e-6 {
		t.Fatal("uniform field must be flat")
	}
}

func TestLiquidCoolingBeatsAir(t *testing.T) {
	p := UniformPower(4, 9)
	air := ForCooling(AirCooled, 4).Solve(p)
	liquid := ForCooling(Microchannel, 4).Solve(p)
	if liquid.MaxK >= air.MaxK {
		t.Fatalf("microchannel (%.1f K) must run cooler than air (%.1f K)", liquid.MaxK, air.MaxK)
	}
}

func TestSpreaderFlattensHotspot(t *testing.T) {
	p := HotspotPower(4, 6, 25, 5)
	air := ForCooling(AirCooled, 4).Solve(p)
	diamond := ForCooling(DiamondSpreader, 4).Solve(p)
	if diamond.MaxK >= air.MaxK {
		t.Fatalf("a diamond spreader must cut the hotspot: %.1f vs %.1f K", diamond.MaxK, air.MaxK)
	}
	// The spreader flattens the field: smaller hot-to-cold span.
	spanOf := func(r Result) float64 {
		lo := r.Temps[0]
		for _, v := range r.Temps {
			lo = math.Min(lo, v)
		}
		return r.MaxK - lo
	}
	if spanOf(diamond) >= spanOf(air) {
		t.Fatalf("spreading must flatten the field: span %.2f vs %.2f K", spanOf(diamond), spanOf(air))
	}
}

func TestHotspotIsHottest(t *testing.T) {
	p := HotspotPower(4, 5, 20, 10)
	res := ForCooling(AirCooled, 4).Solve(p)
	for i, v := range res.Temps {
		if i != 10 && v >= res.Temps[10] {
			t.Fatalf("node %d (%.2f K) should not beat the hotspot (%.2f K)", i, v, res.Temps[10])
		}
	}
	if res.MaxK != res.Temps[10] {
		t.Fatal("MaxK must track the hotspot")
	}
}

func TestMonotoneInPower(t *testing.T) {
	cfg := ForCooling(Microchannel, 4)
	err := quick.Check(func(raw uint8) bool {
		p := optics.Watts(raw%20) + 1
		lo := cfg.Solve(UniformPower(4, p))
		hi := cfg.Solve(UniformPower(4, p+1))
		return hi.MaxK > lo.MaxK && lo.MaxK > cfg.Ambient
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestLinearSuperposition(t *testing.T) {
	// The network is linear: solving the sum of two power maps equals
	// the sum of the individual rises.
	cfg := ForCooling(AirCooled, 4)
	a := HotspotPower(4, 2, 10, 3)
	b := HotspotPower(4, 1, 8, 12)
	both := make([]optics.Watts, len(a))
	for i := range both {
		both[i] = a[i] + b[i]
	}
	ra, rb, rboth := cfg.Solve(a), cfg.Solve(b), cfg.Solve(both)
	for i := range both {
		riseSum := (ra.Temps[i] - cfg.Ambient) + (rb.Temps[i] - cfg.Ambient)
		rise := rboth.Temps[i] - cfg.Ambient
		if math.Abs(rise-riseSum) > 1e-4 {
			t.Fatalf("node %d: superposition violated (%.4f vs %.4f)", i, rise, riseSum)
		}
	}
}

func TestLeakageFactor(t *testing.T) {
	r := Result{MeanK: 360}
	f := r.LeakageFactor(330, 0.012)
	if math.Abs(f-1.36) > 1e-9 {
		t.Fatalf("leakage factor = %g, want 1.36", f)
	}
}

func TestPowerMapValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-size power map must panic")
		}
	}()
	ForCooling(AirCooled, 4).Solve(make([]optics.Watts, 3))
}

func TestCoolingStrings(t *testing.T) {
	if AirCooled.String() != "air" || Microchannel.String() != "microchannel" ||
		DiamondSpreader.String() != "diamond-spreader" {
		t.Fatal("names wrong")
	}
}

func TestSixtyFourNodeTilesRunHotter(t *testing.T) {
	// At equal per-node power, the smaller 64-node tiles concentrate
	// heat: per-tile vertical resistance grows with node count (§3.3).
	p16 := ForCooling(Microchannel, 4).Solve(UniformPower(4, 4))
	p64 := ForCooling(Microchannel, 8).Solve(UniformPower(8, 4))
	if p64.MaxK <= p16.MaxK {
		t.Fatalf("64-node tiles should run hotter at equal per-node power: %.1f vs %.1f K", p64.MaxK, p16.MaxK)
	}
}
