// Package thermal models the §3.3 heat-removal question: the free-space
// optical layer sits where a conventional heat sink would, so heat must
// leave through microchannel liquid cooling on the back side of each die
// in the 3-D stack, or laterally through high-conductivity spreaders
// (diamond / carbon nanotubes / graphene) to the stack's periphery.
//
// The model is a steady-state thermal resistance network over the node
// grid: each node injects its power, conducts vertically to the coolant
// through a per-cooling-technology resistance, and laterally to its grid
// neighbours through a spreading resistance. Temperatures come from a
// Jacobi relaxation of the resulting linear system — a deliberately
// HotSpot-shaped (if far smaller) substrate.
package thermal

import (
	"fmt"
	"math"

	"fsoi/internal/optics"
)

// Cooling selects the vertical heat-extraction technology.
type Cooling int

// Cooling technologies from §3.3.
const (
	// AirCooled is the conventional heat sink — obstructed by the
	// free-space layer, so its vertical resistance is poor.
	AirCooled Cooling = iota
	// Microchannel is liquid cooling through back-side channels fed by
	// fluidic TSVs.
	Microchannel
	// DiamondSpreader keeps air cooling but adds a diamond heat
	// spreader, cutting the lateral resistance (~2000 W/m·K).
	DiamondSpreader
)

// String names the technology.
func (c Cooling) String() string {
	switch c {
	case AirCooled:
		return "air"
	case Microchannel:
		return "microchannel"
	case DiamondSpreader:
		return "diamond-spreader"
	}
	return fmt.Sprintf("Cooling(%d)", int(c))
}

// Config parameterizes the network.
type Config struct {
	Dim     int     // nodes per die edge
	Ambient float64 // coolant / ambient temperature, K
	// RVertical is the junction-to-coolant resistance per node, K/W.
	RVertical float64
	// RLateral is the node-to-neighbour conduction resistance, K/W.
	RLateral float64
}

// ForCooling returns the calibrated configuration for a technology on a
// dim x dim grid. Resistances scale with node area (a 64-node die has
// smaller, hotter tiles).
func ForCooling(c Cooling, dim int) Config {
	scale := float64(dim*dim) / 16        // per-node resistance grows as tiles shrink
	cfg := Config{Dim: dim, Ambient: 318} // 45 C coolant/inlet
	switch c {
	case AirCooled:
		// The free-space layer displaces the heat sink: heat detours to
		// the package sides.
		cfg.RVertical = 3.0 * scale
		cfg.RLateral = 2.0
	case Microchannel:
		cfg.RVertical = 0.6 * scale
		cfg.RLateral = 2.0
	case DiamondSpreader:
		cfg.RVertical = 3.0 * scale
		cfg.RLateral = 0.25 // diamond: 1000-2200 W/m·K vs silicon's ~150
	}
	return cfg
}

// Result is the steady-state temperature field.
type Result struct {
	Temps   []float64 // K, per node
	MaxK    float64
	MeanK   float64
	Ambient float64
}

// MaxC reports the hottest junction in Celsius.
func (r Result) MaxC() float64 { return r.MaxK - 273.15 }

// LeakageFactor converts the mean temperature into the multiplicative
// leakage scaling used by the power model (coeff per kelvin above
// nominal).
func (r Result) LeakageFactor(nominalK, coeffPerK float64) float64 {
	return 1 + coeffPerK*(r.MeanK-nominalK)
}

// Solve computes the steady-state temperatures for the given per-node
// power map by Jacobi relaxation:
//
//	(T[i]-Tamb)/Rv + sum_j (T[i]-T[j])/Rl = P[i]
func (c Config) Solve(powerMap []optics.Watts) Result {
	n := c.Dim * c.Dim
	if len(powerMap) != n {
		panic(fmt.Sprintf("thermal: power map has %d entries, grid needs %d", len(powerMap), n))
	}
	// The Jacobi kernel mixes kelvins, K/W conductances, and watts in
	// every accumulator; units are enforced at the API boundary and the
	// kernel runs on bare float64s.
	power := make([]float64, n)
	for i := range powerMap {
		power[i] = float64(powerMap[i]) //lint:allow units solver kernel boundary: inside, W mixes with K and K/W by design
	}
	t := make([]float64, n)
	next := make([]float64, n)
	for i := range t {
		t[i] = c.Ambient + power[i]*c.RVertical // vertical-only initial guess
	}
	gv := 1 / c.RVertical
	gl := 1 / c.RLateral
	for iter := 0; iter < 10000; iter++ {
		delta := 0.0
		for i := 0; i < n; i++ {
			sumG := gv
			sumGT := gv*c.Ambient + power[i]
			for _, j := range c.neighbors(i) {
				sumG += gl
				sumGT += gl * t[j]
			}
			next[i] = sumGT / sumG
			delta += math.Abs(next[i] - t[i])
		}
		t, next = next, t
		if delta < 1e-9 {
			break
		}
	}
	res := Result{Temps: t, Ambient: c.Ambient}
	sum := 0.0
	for _, v := range t {
		if v > res.MaxK {
			res.MaxK = v
		}
		sum += v
	}
	res.MeanK = sum / float64(n)
	return res
}

// neighbors lists the grid neighbours of node i.
func (c Config) neighbors(i int) []int {
	var out []int
	x, y := i%c.Dim, i/c.Dim
	if x > 0 {
		out = append(out, i-1)
	}
	if x < c.Dim-1 {
		out = append(out, i+1)
	}
	if y > 0 {
		out = append(out, i-c.Dim)
	}
	if y < c.Dim-1 {
		out = append(out, i+c.Dim)
	}
	return out
}

// UniformPower builds a power map with the same wattage per node.
func UniformPower(dim int, perNode optics.Watts) []optics.Watts {
	p := make([]optics.Watts, dim*dim)
	for i := range p {
		p[i] = perNode
	}
	return p
}

// HotspotPower builds a power map with one elevated node, for spreading
// studies.
func HotspotPower(dim int, base, hotspot optics.Watts, at int) []optics.Watts {
	p := UniformPower(dim, base)
	p[at] = hotspot
	return p
}
